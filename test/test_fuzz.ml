(* The fuzzing oracle in bounded mode, plus the end-to-end acceptance
   scenario: a document exercising CDATA, Unicode character references
   and a DOCTYPE internal subset parses, materializes, persists,
   maintains and re-serializes without data loss. *)

let check_report label r =
  Alcotest.(check string) label
    (Printf.sprintf "%s: %d/%d ok" label r.Fuzz_oracle.iterations
       r.Fuzz_oracle.iterations)
    (Fuzz_oracle.summary label r)

let test_tree_roundtrip () =
  check_report "tree roundtrip" (Fuzz_oracle.roundtrip_trees ~seed:7 ~count:2500)

let test_codec_corrupt () =
  check_report "codec corrupt-or-correct"
    (Fuzz_oracle.codec_corrupt ~seed:7 ~count:2500)

(* Deterministic mutation corpus on top of the random one: every
   truncation point and every single-byte corruption of a valid image
   must raise [Corrupt] or load the exact original view. *)
let test_exhaustive_truncations () =
  let root = Xml_parse.document {|<a><c><b>v</b><b>w</b></c><c><b>u</b></c></a>|} in
  let store = Store.of_document root in
  let pat =
    Pattern.compile ~name:"t"
      (Pattern.n "a" ~id:true [ Pattern.n "b" ~id:true ~value:true [] ])
  in
  let mv = Mview.materialize store pat in
  let data = Mview_codec.save mv in
  for n = 0 to String.length data - 1 do
    match Mview_codec.load store pat (String.sub data 0 n) with
    | exception Mview_codec.Corrupt _ -> ()
    | exception e ->
      Alcotest.failf "truncation at %d escaped: %s" n (Printexc.to_string e)
    | _ -> Alcotest.failf "truncation at %d accepted" n
  done;
  for i = 0 to String.length data - 1 do
    let b = Bytes.of_string data in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    match Mview_codec.load store pat (Bytes.to_string b) with
    | exception Mview_codec.Corrupt _ -> ()
    | exception e ->
      Alcotest.failf "byte flip at %d escaped: %s" i (Printexc.to_string e)
    | loaded -> (
      match Recompute.diff mv loaded with
      | None -> ()
      | Some d -> Alcotest.failf "byte flip at %d accepted garbage: %s" i d)
  done

let acceptance_doc =
  {|<?xml version="1.0" encoding="UTF-8"?>
<!DOCTYPE catalog [
  <!ELEMENT catalog (entry*)>
  <!ENTITY deg "&#xB0;">
]>
<!-- hardened-boundary acceptance document -->
<catalog season="winter &#x2603;">
  <entry kind="note"><b>snow: &#x2603; at -5&#xB0;C</b></entry>
  <entry kind="cdata"><b><![CDATA[1 < 2 && "raw" ]]]]><![CDATA[> here]]></b></entry>
  <entry kind="mixed"><b>caf&#xE9;</b>trailing <b>g-clef &#x1D11E;</b></entry>
</catalog>|}

let test_acceptance_scenario () =
  let root = Xml_parse.document acceptance_doc in
  (* CDATA and character references decoded to the exact byte content. *)
  let entries = Xml_tree.element_children root in
  Alcotest.(check int) "entries" 3 (List.length entries);
  let value i = Xml_tree.string_value (List.nth entries i) in
  Alcotest.(check string) "unicode refs" "snow: \xE2\x98\x83 at -5\xC2\xB0C" (value 0);
  Alcotest.(check string) "cdata" {|1 < 2 && "raw" ]]> here|} (value 1);
  Alcotest.(check string) "mixed + astral" "caf\xC3\xA9trailing g-clef \xF0\x9D\x84\x9E" (value 2);
  (* Serialization round-trips losslessly from here on. *)
  let s = Xml_tree.serialize root in
  Alcotest.(check bool) "reserialized tree identical" true
    (Xml_tree.equal root (Xml_parse.document s));
  (* Store → view → save → load → maintain under an update. *)
  let store = Store.of_document root in
  let pat =
    Pattern.compile ~name:"acc"
      (Pattern.n "catalog" ~id:true
         [ Pattern.n "entry" ~id:true [ Pattern.n "b" ~id:true ~value:true [] ] ])
  in
  let mv = Mview.materialize store pat in
  Alcotest.(check int) "view sees all b leaves" 4 (Mview.cardinality mv);
  let loaded = Mview_codec.load store pat (Mview_codec.save mv) in
  (match Recompute.diff mv loaded with
  | None -> ()
  | Some d -> Alcotest.fail ("persisted view diverged: " ^ d));
  let stmt = Update.parse {|insert into //entry <b>new &#x2603;</b>|} in
  let _ = Maint.propagate loaded stmt in
  let store2 = Store.of_document (Xml_parse.document acceptance_doc) in
  let oracle, _ = Recompute.recompute_after store2 stmt ~pat in
  (match Recompute.diff loaded oracle with
  | None -> ()
  | Some d -> Alcotest.fail ("maintained view diverged: " ^ d));
  (* The updated document still round-trips byte-for-byte. *)
  let s2 = Xml_tree.serialize (Store.root store) in
  Alcotest.(check string) "updated document serialization fixpoint" s2
    (Xml_tree.serialize (Xml_parse.document s2))

let () =
  Alcotest.run "fuzz"
    [
      ( "oracle",
        [
          Alcotest.test_case "tree roundtrip (seeded)" `Quick test_tree_roundtrip;
          Alcotest.test_case "codec corrupt-or-correct (seeded)" `Quick
            test_codec_corrupt;
          Alcotest.test_case "exhaustive truncations & byte flips" `Quick
            test_exhaustive_truncations;
        ] );
      ( "acceptance",
        [ Alcotest.test_case "CDATA+unicode+DOCTYPE end-to-end" `Quick
            test_acceptance_scenario ] );
    ]
