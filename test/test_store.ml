(* Tests for the document store: ID assignment, canonical relations, and
   the staged attach/detach/commit update discipline. *)

let fixture () =
  Store.of_document
    (Xml_parse.document {|<a><c><b>x</b><b/></c><f><c><b>y</b></c><b/></f></a>|})

let ids_sorted entries =
  let ids = Array.map (fun e -> e.Store.id) entries in
  Array.for_all (fun _ -> true) ids
  &&
  let ok = ref true in
  for i = 0 to Array.length ids - 2 do
    if Dewey.compare ids.(i) ids.(i + 1) >= 0 then ok := false
  done;
  !ok

let test_indexing () =
  let s = fixture () in
  Alcotest.(check int) "node count" 10 (Store.node_count s);
  let rb = Store.relation s "b" in
  Alcotest.(check int) "four b nodes" 4 (Array.length rb);
  Alcotest.(check bool) "relation in document order" true (ids_sorted rb);
  Alcotest.(check int) "two c nodes" 2 (Array.length (Store.relation s "c"));
  Alcotest.(check int) "unknown label" 0 (Array.length (Store.relation s "zzz"));
  Alcotest.(check bool) "labels include #text" true
    (List.mem "#text" (Store.relation_labels s))

let test_id_node_inverse () =
  let s = fixture () in
  Xml_tree.iter
    (fun n ->
      let id = Store.id_of s n in
      match Store.node_of s id with
      | Some n' -> Alcotest.(check bool) "inverse" true (n == n')
      | None -> Alcotest.fail "node_of failed")
    (Store.root s)

let test_ids_structural () =
  let s = fixture () in
  Xml_tree.iter
    (fun n ->
      match n.Xml_tree.parent with
      | None -> ()
      | Some p ->
        Alcotest.(check bool) "parent id is parent" true
          (Dewey.is_parent (Store.id_of s p) (Store.id_of s n)))
    (Store.root s)

let test_attach_commit () =
  let s = fixture () in
  let f = List.nth (Xml_tree.element_children (Store.root s)) 1 in
  let fresh = Xml_parse.fragment "<b>new</b><c/>" in
  Store.attach s ~parent:f fresh;
  (* IDs are assigned immediately... *)
  let new_b = List.hd fresh in
  let id = Store.id_of s new_b in
  Alcotest.(check bool) "new node resolvable" true
    (match Store.node_of s id with Some n -> n == new_b | None -> false);
  Alcotest.(check bool) "after existing siblings" true
    (Dewey.compare (Store.id_of s (List.hd f.Xml_tree.children)) id < 0);
  (* ...but relations only change at commit. *)
  Alcotest.(check int) "relation unchanged before commit" 4
    (Array.length (Store.relation s "b"));
  Store.commit s;
  Alcotest.(check int) "relation updated" 5 (Array.length (Store.relation s "b"));
  Alcotest.(check bool) "still sorted" true (ids_sorted (Store.relation s "b"))

let test_detach_commit () =
  let s = fixture () in
  let c1 = List.hd (Xml_tree.element_children (Store.root s)) in
  let before = Store.node_count s in
  Store.detach s c1;
  (* Detached nodes are dead for the outside world immediately… *)
  Alcotest.(check bool) "mem is false after detach" false (Store.mem s c1);
  Alcotest.(check bool) "node_of misses after detach" true
    (let id = Store.id_of s c1 in
     Store.node_of s id = None);
  Alcotest.(check int) "relation unchanged before commit" 4
    (Array.length (Store.relation s "b"));
  Store.commit s;
  Alcotest.(check int) "live count drops at commit" (before - 4)
    (Store.node_count s);
  Alcotest.(check int) "b relation purged" 2 (Array.length (Store.relation s "b"));
  Alcotest.(check int) "c relation purged" 1 (Array.length (Store.relation s "c"))

let test_attach_then_detach_before_commit () =
  let s = fixture () in
  let f = List.nth (Xml_tree.element_children (Store.root s)) 1 in
  let fresh = Xml_parse.fragment "<b>ghost</b>" in
  Store.attach s ~parent:f fresh;
  Store.detach s (List.hd fresh);
  Store.commit s;
  Alcotest.(check int) "ghost never enters the relation" 4
    (Array.length (Store.relation s "b"))

(* Boundary cases of the binary-searched relation spans: spans touching
   the first and last rows of the relation, single-node subtrees, and
   empty relations. *)
let test_relation_span_boundaries () =
  let s = fixture () in
  let rb = Store.relation s "b" in
  let id_list entries =
    Array.to_list (Array.map (fun e -> Dewey.encode e.Store.id) entries)
  in
  let span ~root = id_list (Store.relation_span s "b" ~root) in
  let root_id = Store.id_of s (Store.root s) in
  Alcotest.(check (list string)) "whole document = first through last row"
    (id_list rb) (span ~root:root_id);
  let c0 = (Store.relation s "c").(0).Store.id in
  Alcotest.(check (list string)) "span starting at the first row"
    [ Dewey.encode rb.(0).Store.id; Dewey.encode rb.(1).Store.id ]
    (span ~root:c0);
  let f = (Store.relation s "f").(0).Store.id in
  Alcotest.(check (list string)) "span ending at the last row"
    [ Dewey.encode rb.(2).Store.id; Dewey.encode rb.(3).Store.id ]
    (span ~root:f);
  Alcotest.(check (list string)) "subtree at the first row"
    [ Dewey.encode rb.(0).Store.id ]
    (span ~root:rb.(0).Store.id);
  Alcotest.(check (list string)) "single-node subtree at the last row"
    [ Dewey.encode rb.(3).Store.id ]
    (span ~root:rb.(3).Store.id);
  let t0 = (Store.relation s "#text").(0).Store.id in
  Alcotest.(check (list string)) "single-node subtree without hits" []
    (span ~root:t0);
  Alcotest.(check int) "empty relation" 0
    (Array.length (Store.relation_span s "zzz" ~root:root_id))

(* {1 Heavy-light partition} *)

let test_label_stats () =
  let s = fixture () in
  let st = Store.label_stat s "b" in
  Alcotest.(check int) "b count" 4 st.Store.ls_count;
  (* Parents of the four [b]s: the two [c]s and [f]. *)
  Alcotest.(check int) "b parents" 3 st.Store.ls_parents;
  Alcotest.(check int) "b max fan-out" 2 st.Store.ls_max_fanout;
  let st = Store.label_stat s "zzz" in
  Alcotest.(check int) "empty label count" 0 st.Store.ls_count

let test_partition_tail_and_drain () =
  let s = fixture () in
  (* Label [b] is heavy: committed adds buffer in its pending tail;
     readers still see the merged relation (fresh copy, never mutating
     shared state); an explicit drain folds the tail into the main run. *)
  Store.set_partition s (Some (( = ) "b"));
  let g0 = Store.generation s in
  let f = List.nth (Xml_tree.element_children (Store.root s)) 1 in
  Store.attach s ~parent:f (Xml_parse.fragment "<b>new</b><c/>");
  Store.commit s;
  Alcotest.(check bool) "generation bumped" true (Store.generation s > g0);
  Alcotest.(check int) "b adds buffered in tail" 1 (Store.pending_rows s);
  Alcotest.(check int) "reader sees merged relation" 5
    (Array.length (Store.relation s "b"));
  Alcotest.(check bool) "merged view sorted" true (ids_sorted (Store.relation s "b"));
  Alcotest.(check int) "light label merged eagerly" 3
    (Array.length (Store.relation s "c"));
  Alcotest.(check int) "relation_size counts the tail" 5
    (Store.relation_size s "b");
  Store.drain_label s "b";
  Alcotest.(check int) "drain empties the tail" 0 (Store.pending_rows s);
  Alcotest.(check int) "relation unchanged by drain" 5
    (Array.length (Store.relation s "b"));
  (* Removing the partition drains implicitly. *)
  Store.attach s ~parent:f (Xml_parse.fragment "<b>again</b>");
  Store.commit s;
  Alcotest.(check int) "buffered again" 1 (Store.pending_rows s);
  Store.set_partition s None;
  Alcotest.(check int) "detach drains" 0 (Store.pending_rows s);
  Alcotest.(check int) "all rows present" 6 (Array.length (Store.relation s "b"))

let test_partition_tail_budget () =
  let s = fixture () in
  (* A tail budget of 1 force-merges at commit once the tail would hold
     more than one row: two buffered adds must land drained. *)
  Store.set_partition s ~tail_budget:1 (Some (( = ) "b"));
  let f = List.nth (Xml_tree.element_children (Store.root s)) 1 in
  Store.attach s ~parent:f (Xml_parse.fragment "<b>p</b><b>q</b>");
  Store.commit s;
  Alcotest.(check int) "budget forced the merge" 0 (Store.pending_rows s);
  Alcotest.(check int) "rows all in the main run" 6
    (Array.length (Store.relation s "b"))

let test_shared_dict () =
  let dict = Label_dict.create () in
  let s1 = Store.of_document ~dict (Xml_parse.document "<a><b/></a>") in
  let s2 = Store.of_document ~dict (Xml_parse.document "<a><b/></a>") in
  Alcotest.(check bool) "same codes across stores" true
    (Dewey.label (Store.id_of s1 (Store.root s1))
    = Dewey.label (Store.id_of s2 (Store.root s2)))

let () =
  Alcotest.run "store"
    [
      ( "indexing",
        [
          Alcotest.test_case "canonical relations" `Quick test_indexing;
          Alcotest.test_case "id/node inverse" `Quick test_id_node_inverse;
          Alcotest.test_case "ids are structural" `Quick test_ids_structural;
          Alcotest.test_case "shared dictionary" `Quick test_shared_dict;
          Alcotest.test_case "relation span boundaries" `Quick
            test_relation_span_boundaries;
        ] );
      ( "updates",
        [
          Alcotest.test_case "attach + commit" `Quick test_attach_commit;
          Alcotest.test_case "detach + commit" `Quick test_detach_commit;
          Alcotest.test_case "attach then detach" `Quick
            test_attach_then_detach_before_commit;
        ] );
      ( "partition",
        [
          Alcotest.test_case "label statistics" `Quick test_label_stats;
          Alcotest.test_case "heavy tail buffering + drain" `Quick
            test_partition_tail_and_drain;
          Alcotest.test_case "tail budget forces merge" `Quick
            test_partition_tail_budget;
        ] );
    ]
