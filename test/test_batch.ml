(* Tests for batch view-set maintenance: the name index, the relevance
   pre-filter (skip safety), the domain fan-out's determinism, and the
   flat-in-N scan counters of the shared update-region index. *)

let n = Pattern.n

let doc_text =
  {|<r><a>x<b>1</b><b>2</b></a><c><d>y</d></c><a><b>3</b></a><e k="v">z</e></r>|}

let fresh_store () = Store.of_document (Xml_parse.document doc_text)

(* Id-only views (empty [cvn]): eligible for the relevance skip. *)
let v_ab name = Pattern.compile ~name (n "a" ~id:true [ n "b" ~id:true [] ])
let v_cd name = Pattern.compile ~name (n "c" ~id:true [ n "d" ~id:true [] ])
let v_b name = Pattern.compile ~name (n "b" ~id:true [])
let v_star name = Pattern.compile ~name (n "*" ~id:true [])

let names set = List.map (fun mv -> mv.Mview.pat.Pattern.name) (View_set.views set)

(* {1 Name index} *)

let test_name_index () =
  let set = View_set.create (fresh_store ()) in
  let _ = View_set.add set (v_ab "one") in
  let _ = View_set.add set (v_cd "two") in
  (match View_set.find set "one" with
  | Some mv -> Alcotest.(check string) "found one" "one" mv.Mview.pat.Pattern.name
  | None -> Alcotest.fail "view 'one' not found");
  Alcotest.(check bool) "absent name" true (View_set.find set "zzz" = None);
  (match View_set.add set (v_b "one") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate name accepted");
  Alcotest.(check (list string)) "insertion order" [ "one"; "two" ] (names set);
  View_set.remove set "one";
  Alcotest.(check bool) "removed" true (View_set.find set "one" = None);
  Alcotest.(check (list string)) "order after remove" [ "two" ] (names set);
  let _ = View_set.add set (v_b "one") in
  Alcotest.(check bool) "name reusable after remove" true
    (View_set.find set "one" <> None);
  Alcotest.(check (list string)) "re-added goes last" [ "two"; "one" ] (names set)

(* {1 Relevance skip} *)

let check_against_recompute mv pat stmt =
  let store = Store.of_document (Xml_parse.document doc_text) in
  let mv2, _ = Recompute.recompute_after store stmt ~pat in
  match Recompute.diff mv mv2 with
  | None -> ()
  | Some d -> Alcotest.fail ("batched view diverged from recompute: " ^ d)

let test_skip_irrelevant () =
  (* Inserted fragment holds only f/g nodes: disjoint from the a/b
     footprint, and the view stores no payloads, so it is skipped — and
     the skip must be invisible in the view's extent. *)
  let stmt = Update.insert ~into:"/r/c" "<f><g/></f>" in
  let set = View_set.create (fresh_store ()) in
  let mv = View_set.add set (v_ab "w") in
  let reports = View_set.update set stmt in
  let r = List.assq mv reports in
  Alcotest.(check bool) "skipped" true r.Maint.skipped_irrelevant;
  Alcotest.(check int) "no terms developed" 0 r.Maint.terms_developed;
  check_against_recompute mv (v_ab "w") stmt

let test_star_never_skipped () =
  (* A [*] pattern tag matches any element: the same irrelevant-looking
     insert must not be skipped for a star view. *)
  let stmt = Update.insert ~into:"/r/c" "<f><g/></f>" in
  let set = View_set.create (fresh_store ()) in
  let mv = View_set.add set (v_star "s") in
  let reports = View_set.update set stmt in
  let r = List.assq mv reports in
  Alcotest.(check bool) "not skipped" false r.Maint.skipped_irrelevant;
  Alcotest.(check bool) "view grew" true (r.Maint.embeddings_added > 0);
  check_against_recompute mv (v_star "s") stmt

(* Property form of skip safety: on random documents, whether or not the
   pre-filter fires, every view in the batched set matches a fresh
   recomputation. The insert's f/g labels are outside the generator's
   vocabulary, so insert runs exercise the skip path; deletes of [e]
   subtrees may or may not touch each view's footprint. *)
let prop_skip_safety =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"batched set = recompute (incl. skipped views)"
       ~count:120 Tutil.arb_doc (fun doc ->
         let pats = [ v_cd "p0"; v_ab "p1" ] in
         List.for_all
           (fun stmt ->
             let store = Store.of_document (Xml_tree.copy doc) in
             let set = View_set.create store in
             let mvs = List.map (fun p -> View_set.add set p) pats in
             ignore (View_set.update set stmt);
             List.for_all2
               (fun mv pat ->
                 let store2 = Store.of_document (Xml_tree.copy doc) in
                 let mv2, _ = Recompute.recompute_after store2 stmt ~pat in
                 Recompute.diff mv mv2 = None)
               mvs pats)
           [ Update.insert ~into:"//a" "<f><g/></f>"; Update.delete "//e" ]))

(* {1 Domain fan-out} *)

let report_sig (r : Maint.report) =
  ( r.Maint.terms_developed,
    r.Maint.terms_surviving,
    r.Maint.embeddings_added,
    r.Maint.embeddings_removed,
    r.Maint.tuples_modified,
    r.Maint.fallback_recompute,
    r.Maint.skipped_irrelevant )

(* One batched run: per-view dumps, non-timing report fields, and the
   counter snapshot. [jobs > 1] must be bit-identical to [jobs = 1] on
   all three (the snapshot also exercises the per-domain Obs buffers). *)
let batched_run ~jobs stmt =
  let pats = [ v_ab "d0"; v_cd "d1"; v_star "d2"; v_b "d3" ] in
  let set = View_set.create (fresh_store ()) in
  let mvs = List.map (fun p -> View_set.add set p) pats in
  let reports, snap = Obs.with_scope (fun () -> View_set.update ~jobs set stmt) in
  ( List.map Mview.dump mvs,
    List.map (fun (_, r) -> report_sig r) reports,
    Obs.nonzero_counters snap )

let test_jobs_deterministic () =
  List.iter
    (fun stmt ->
      let d1, r1, c1 = batched_run ~jobs:1 stmt in
      let d3, r3, c3 = batched_run ~jobs:3 stmt in
      Alcotest.(check bool) "dumps identical" true (d1 = d3);
      Alcotest.(check bool) "reports identical" true (r1 = r3);
      Alcotest.(check bool) "counters identical" true (c1 = c3))
    [ Update.insert ~into:"/r/a" "<b>9</b>"; Update.delete "//b" ]

(* Regression: zero and negative job counts must be clamped to the
   sequential path everywhere — never handed to [Domain.spawn] as a
   stripe count — and produce the same extents as [jobs = 1]. *)
let test_jobs_clamped () =
  let stmt = Update.insert ~into:"/r/a" "<b>9</b>" in
  let d1, r1, _ = batched_run ~jobs:1 stmt in
  List.iter
    (fun jobs ->
      let d, r, _ = batched_run ~jobs stmt in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d dumps = jobs=1" jobs)
        true (d = d1);
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d reports = jobs=1" jobs)
        true (r = r1))
    [ 0; -3 ];
  let tasks = Array.init 5 (fun i () -> i * i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "parallel_map jobs=%d" jobs)
        [| 0; 1; 4; 9; 16 |]
        (Batch.parallel_map ~jobs tasks))
    [ -1; 0; 100 ]

let test_parallel_map () =
  let tasks = Array.init 10 (fun i () -> i * i) in
  Alcotest.(check (array int))
    "results in task order"
    (Array.init 10 (fun i -> i * i))
    (Batch.parallel_map ~jobs:4 tasks);
  match
    Batch.parallel_map ~jobs:3 [| (fun () -> 1); (fun () -> failwith "boom") |]
  with
  | exception Failure m -> Alcotest.(check string) "exception propagated" "boom" m
  | _ -> Alcotest.fail "worker exception swallowed"

(* {1 Adaptive (heavy-light) maintenance} *)

let test_adaptive_defer_and_drain () =
  (* Thresholds tuned so label [b] (sibling fan-out 2 under the first
     [a]) classifies heavy: an insert whose delta reaches the view
     through [b] defers (zeroed skipped report, view stale); a read
     drains back to exactly the eager/recompute result. *)
  let store = fresh_store () in
  let set = View_set.create store in
  let mv = View_set.add set (v_ab "w") in
  let config =
    { Hl.default_config with Hl.heavy_fanout = 2; Hl.heavy_count = 1 lsl 20 }
  in
  View_set.set_adaptive set (Some (Hl.create ~config store));
  (match View_set.adaptive set with
  | Some hl ->
    Alcotest.(check bool) "b classified heavy" true (Hl.is_heavy hl "b")
  | None -> Alcotest.fail "classifier not installed");
  let stmt = Update.insert ~into:"/r/a" "<b>9</b>" in
  let reports = View_set.update set stmt in
  let r = List.assq mv reports in
  Alcotest.(check bool) "deferred: zeroed skipped report" true
    r.Maint.skipped_irrelevant;
  Alcotest.(check (list string)) "view stale" [ "w" ] (View_set.stale set);
  Alcotest.(check bool) "drain rebuilt the view" true (View_set.drain_view set "w");
  Alcotest.(check (list string)) "nothing stale after drain" [] (View_set.stale set);
  Alcotest.(check bool) "second drain is a no-op" false
    (View_set.drain_view set "w");
  check_against_recompute mv (v_ab "w") stmt;
  (* Detaching the classifier drains implicitly and restores pure eager
     behavior. *)
  View_set.set_adaptive set None;
  let reports = View_set.update set (Update.insert ~into:"/r/a" "<b>10</b>") in
  let r = List.assq mv reports in
  Alcotest.(check bool) "eager again after detach" false r.Maint.skipped_irrelevant

let test_adaptive_light_stays_eager () =
  (* No label crosses the (default, huge) thresholds: the adaptive path
     must be observationally the eager path — no deferral, no stale
     views, identical extent. *)
  let store = fresh_store () in
  let set = View_set.create store in
  let mv = View_set.add set (v_ab "w") in
  View_set.set_adaptive set (Some (Hl.create store));
  let stmt = Update.insert ~into:"/r/a" "<b>9</b>" in
  let reports = View_set.update set stmt in
  let r = List.assq mv reports in
  Alcotest.(check bool) "not deferred" false r.Maint.skipped_irrelevant;
  Alcotest.(check (list string)) "nothing stale" [] (View_set.stale set);
  check_against_recompute mv (v_ab "w") stmt

(* {1 Worker pool reuse}

   Regression for the persistent domain pool behind [parallel_map]: a
   fan-out leases parked workers instead of spawning fresh domains per
   call, so after the first map the pool is warm and a second identical
   map leaves its size unchanged — while results, task order and
   exception propagation stay exactly as in the cold path (the
   bit-identical jobs>1 ≡ jobs=1 property above runs through the same
   pool). *)

let test_pool_reuse () =
  let tasks = Array.init 9 (fun i () -> i + 1) in
  ignore (Batch.parallel_map ~jobs:4 tasks);
  let warm = Batch.pool_size () in
  Alcotest.(check bool) "pool retains workers" true (warm >= 3);
  ignore (Batch.parallel_map ~jobs:4 tasks);
  Alcotest.(check int) "second run reuses workers" warm (Batch.pool_size ());
  Alcotest.(check (array int))
    "pooled results in task order"
    (Array.init 9 (fun i -> i + 1))
    (Batch.parallel_map ~jobs:4 tasks);
  (match
     Batch.parallel_map ~jobs:4
       [| (fun () -> 1); (fun () -> failwith "pow"); (fun () -> 3) |]
   with
  | exception Failure m ->
    Alcotest.(check string) "exception via pooled worker" "pow" m
  | _ -> Alcotest.fail "pooled worker exception swallowed");
  (* A worker that carried an exception is released back parked, not
     poisoned: the next map over it still computes. *)
  Alcotest.(check (array int))
    "pool alive after exception" [| 2; 4; 6 |]
    (Batch.parallel_map ~jobs:3 [| (fun () -> 2); (fun () -> 4); (fun () -> 6) |]);
  Alcotest.(check int) "exception did not grow the pool" warm (Batch.pool_size ())

let par_scope = Obs.Scope.v "test.batch"
let par_ticks = Obs.Scope.counter par_scope "ticks"

let test_par_counter_merge () =
  let _, snap =
    Obs.with_scope (fun () ->
        ignore
          (Batch.parallel_map ~jobs:4
             (Array.init 8 (fun _ () -> Obs.Counter.incr par_ticks))))
  in
  let got =
    try List.assoc "test.batch.ticks" (Obs.nonzero_counters snap)
    with Not_found -> 0
  in
  Alcotest.(check int) "child-domain increments merged" 8 got

(* {1 Shared-index counters flat in N} *)

let delta_counters pats stmt =
  let set = View_set.create (fresh_store ()) in
  List.iter (fun p -> ignore (View_set.add set p)) pats;
  let _, snap = Obs.with_scope (fun () -> View_set.update set stmt) in
  let get k = try List.assoc k (Obs.nonzero_counters snap) with Not_found -> 0 in
  (get "maint.delta.nodes", get "maint.delta.extractions")

let test_insert_counters_flat () =
  let stmt = Update.insert ~into:"/r/a" "<b>new</b>" in
  let one = delta_counters [ v_b "f0" ] stmt in
  let four = delta_counters [ v_b "f0"; v_ab "f1"; v_star "f2"; v_cd "f3" ] stmt in
  Alcotest.(check (pair int int)) "insert scan work independent of view count"
    one four

let test_delete_counters_flat () =
  (* Same-footprint views, so the shared delete build's wanted-label
     narrowing extracts the same slices whatever the view count. *)
  let stmt = Update.delete "//b" in
  let one = delta_counters [ v_b "g0" ] stmt in
  let four =
    delta_counters
      [ v_b "g0"; v_b "g1"; v_b "g2"; Pattern.compile ~name:"g3" (n "a" [ n "b" ~id:true [] ]) ]
      stmt
  in
  Alcotest.(check (pair int int)) "delete scan work independent of view count"
    one four

let () =
  Alcotest.run "batch"
    [
      ( "view_set",
        [
          Alcotest.test_case "name index" `Quick test_name_index;
          Alcotest.test_case "irrelevant view skipped" `Quick test_skip_irrelevant;
          Alcotest.test_case "star view never skipped" `Quick
            test_star_never_skipped;
          prop_skip_safety;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "heavy delta defers; drain reconciles" `Quick
            test_adaptive_defer_and_drain;
          Alcotest.test_case "no heavy labels = eager behavior" `Quick
            test_adaptive_light_stays_eager;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "jobs>1 bit-identical to jobs=1" `Quick
            test_jobs_deterministic;
          Alcotest.test_case "jobs<=0 clamped to sequential" `Quick
            test_jobs_clamped;
          Alcotest.test_case "parallel_map order & exceptions" `Quick
            test_parallel_map;
          Alcotest.test_case "child-domain counter merge" `Quick
            test_par_counter_merge;
          Alcotest.test_case "worker pool reused across maps" `Quick
            test_pool_reuse;
        ] );
      ( "counters",
        [
          Alcotest.test_case "insert delta work flat in N" `Quick
            test_insert_counters_flat;
          Alcotest.test_case "delete delta work flat in N" `Quick
            test_delete_counters_flat;
        ] );
    ]
