(* Tests for tree patterns, the reference embedding semantics, the
   algebraic evaluator, and the Fig. 3 view-dialect parser. *)

let doc () =
  Xml_parse.document {|<a><c><b v="1">x</b><b/></c><f><c><b>y</b></c><b/></f></a>|}

let setup pat_spec =
  let store = Store.of_document (doc ()) in
  (store, Pattern.compile ~name:"t" pat_spec)

let sorted_bindings l =
  List.sort compare
    (List.map (fun arr -> Array.to_list (Array.map Dewey.encode arr)) l)

let table_bindings pat t =
  Array.to_list (Tuple_table.rows t)
  |> List.map (fun row ->
         List.init (Pattern.node_count pat) (fun i ->
             Dewey.encode row.(Tuple_table.col_pos t i)))
  |> List.sort compare

let check_equiv store pat =
  let emb = sorted_bindings (Embed.embeddings store pat) in
  let alg = table_bindings pat (Plan.eval store pat) in
  Alcotest.(check int) ("cardinality of " ^ Pattern.to_string pat)
    (List.length emb) (List.length alg);
  Alcotest.(check bool) ("bindings of " ^ Pattern.to_string pat) true (emb = alg)

let test_compile () =
  let pat =
    Pattern.compile ~name:"v"
      (Pattern.n "a" ~id:true
         [ Pattern.n ~axis:Pattern.Child "b" ~value:true [ Pattern.n "c" [] ] ])
  in
  Alcotest.(check int) "node count" 3 (Pattern.node_count pat);
  Alcotest.(check (list int)) "children of root" [ 1 ] (Pattern.children pat 0);
  Alcotest.(check (list int)) "descendants of root" [ 1; 2 ] (Pattern.descendants pat 0);
  Alcotest.(check (list int)) "stored nodes" [ 0; 1 ] (Pattern.stored_nodes pat);
  Alcotest.(check (list int)) "cvn" [ 1 ] (Pattern.cvn pat);
  (* val/cont forces ID storage *)
  Alcotest.(check bool) "cvn stores id" true pat.Pattern.annots.(1).Pattern.store_id;
  Alcotest.(check string) "render" "//a{id}[/b{id,val}[//c]]" (Pattern.to_string pat)

let test_embed_basics () =
  let store, pat = setup (Pattern.n "a" ~id:true [ Pattern.n "b" ~id:true [] ]) in
  Alcotest.(check int) "a//b embeddings" 4 (List.length (Embed.embeddings store pat))

let test_vpred () =
  let store, pat = setup (Pattern.n "b" ~id:true ~vpred:"x" []) in
  Alcotest.(check int) "value predicate filters" 1
    (List.length (Embed.embeddings store pat));
  check_equiv store pat

let test_attr_pattern () =
  let store, pat =
    setup (Pattern.n "b" ~id:true [ Pattern.n ~axis:Pattern.Child "@v" ~id:true [] ])
  in
  Alcotest.(check int) "attribute child" 1 (List.length (Embed.embeddings store pat));
  check_equiv store pat

let test_star () =
  let store, pat =
    setup (Pattern.n ~axis:Pattern.Child "a" ~id:true [ Pattern.n ~axis:Pattern.Child "*" ~id:true [] ])
  in
  Alcotest.(check int) "star children" 2 (List.length (Embed.embeddings store pat));
  check_equiv store pat

let test_child_root_anchor () =
  (* A Child-axis root only binds the document root. *)
  let store, pat = setup (Pattern.n ~axis:Pattern.Child "c" ~id:true []) in
  Alcotest.(check int) "no c at the root" 0 (List.length (Embed.embeddings store pat));
  check_equiv store pat

let test_equiv_random =
  Tutil.qtest ~count:300 "embeddings = algebraic evaluation"
    (QCheck.pair Tutil.arb_doc Tutil.arb_pattern) (fun (d, pat) ->
      let store = Store.of_document d in
      sorted_bindings (Embed.embeddings store pat)
      = table_bindings pat (Plan.eval store pat))

(* {1 View parser} *)

let test_view_parser_paper_example () =
  (* The sample view of Fig. 3. *)
  let pat =
    View_parser.parse ~name:"sample"
      {|for $p in doc("confs")//confs//paper, $a in $p/affiliation
        return <result><pid>{id($p)}</pid><aid>{id($a)}</aid><acont>{$a}</acont></result>|}
  in
  Alcotest.(check int) "three nodes" 3 (Pattern.node_count pat);
  Alcotest.(check string) "shape" "//confs[//paper{id}[/affiliation{id,cont}]]"
    (Pattern.to_string pat)

let test_view_parser_q1_style () =
  let pat =
    View_parser.parse ~name:"q1"
      {|let $auction := doc("auction.xml") return
        for $b in $auction/site/people/person[@id]
        return $b/name/text()|}
  in
  Alcotest.(check int) "five nodes" 5 (Pattern.node_count pat);
  (* name stores the value, @id is an existential branch *)
  let name_idx = 4 in
  Alcotest.(check string) "leaf tag" "name" pat.Pattern.tags.(name_idx);
  Alcotest.(check bool) "value stored" true
    pat.Pattern.annots.(name_idx).Pattern.store_val

let test_view_parser_where () =
  let pat =
    View_parser.parse ~name:"w"
      {|for $b in doc("d")//open_auction, $i in $b/bidder/increase
        where $i = "4.50"
        return <r>{id($b)}</r>|}
  in
  Alcotest.(check string) "vpred lands on increase"
    "//open_auction{id}[/bidder[/increase[val='4.50']]]" (Pattern.to_string pat)

let test_view_parser_semantics () =
  (* The compiled pattern evaluates like the hand-built one. *)
  let store = Store.of_document (doc ()) in
  let parsed =
    View_parser.parse ~name:"p" {|for $x in doc("d")//a, $y in $x//b return id($y)|}
  in
  let manual =
    Pattern.compile ~name:"m" (Pattern.n "a" [ Pattern.n "b" ~id:true [] ])
  in
  Alcotest.(check int) "same results"
    (List.length (Embed.embeddings store manual))
    (List.length (Embed.embeddings store parsed))

let test_view_parser_errors () =
  let bad q =
    match View_parser.parse ~name:"x" q with
    | exception View_parser.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing for" true (bad {|return $x|});
  Alcotest.(check bool) "unknown variable" true
    (bad {|for $x in doc("d")//a return $y|});
  Alcotest.(check bool) "disjunctive predicate rejected" true
    (bad {|for $x in doc("d")//a[b or c] return $x|});
  Alcotest.(check bool) "two absolute anchors" true
    (bad {|for $x in doc("d")//a, $y in doc("d")//b return $x|})

let () =
  Alcotest.run "pattern"
    [
      ( "patterns",
        [
          Alcotest.test_case "compile" `Quick test_compile;
          Alcotest.test_case "embeddings" `Quick test_embed_basics;
          Alcotest.test_case "value predicates" `Quick test_vpred;
          Alcotest.test_case "attribute nodes" `Quick test_attr_pattern;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "child root anchor" `Quick test_child_root_anchor;
          test_equiv_random;
        ] );
      ( "view parser",
        [
          Alcotest.test_case "paper sample" `Quick test_view_parser_paper_example;
          Alcotest.test_case "Q1 style" `Quick test_view_parser_q1_style;
          Alcotest.test_case "where clause" `Quick test_view_parser_where;
          Alcotest.test_case "semantics" `Quick test_view_parser_semantics;
          Alcotest.test_case "errors" `Quick test_view_parser_errors;
        ] );
    ]
