(* Tests for DTD handling and schema-violation detection (Section 3.3). *)

open Dtd

(* DTD d1 of Fig. 5(a): d1 → a+, a → b+, b → c, c → ε. *)
let d1 =
  create ~root:"d1"
    [ ("d1", Plus (Sym "a")); ("a", Plus (Sym "b")); ("b", Sym "c"); ("c", Epsilon) ]

(* DTD d2 of Fig. 5(b): d2 → (a,b,c)+, a → b+? No — a → BS, BS → x | ε,
   x → x | ε, b → ε, c → ε. We inline the non-terminals. *)
let d2 =
  create ~root:"d2"
    [
      ("d2", Plus (Seq (Sym "a", Seq (Sym "b", Sym "c"))));
      ("a", Opt (Sym "x"));
      ("x", Opt (Sym "x"));
      ("b", Epsilon);
      ("c", Epsilon);
    ]

let test_regex_semantics () =
  let re = Seq (Sym "a", Alt (Sym "b", Epsilon)) in
  Alcotest.(check bool) "ab" true (word_matches re [ "a"; "b" ]);
  Alcotest.(check bool) "a" true (word_matches re [ "a" ]);
  Alcotest.(check bool) "b" false (word_matches re [ "b" ]);
  Alcotest.(check bool) "nullable star" true (word_matches (Star (Sym "a")) []);
  Alcotest.(check bool) "plus needs one" false (word_matches (Plus (Sym "a")) []);
  Alcotest.(check bool) "plus repeats" true (word_matches (Plus (Sym "a")) [ "a"; "a" ])

let test_mandatory () =
  Alcotest.(check (list string)) "seq unions" [ "a"; "b" ]
    (mandatory (Seq (Sym "a", Sym "b")));
  Alcotest.(check (list string)) "alt intersects" []
    (mandatory (Alt (Sym "a", Sym "b")));
  Alcotest.(check (list string)) "alt common" [ "a" ]
    (mandatory (Alt (Seq (Sym "a", Sym "b"), Sym "a")));
  Alcotest.(check (list string)) "star optional" [] (mandatory (Star (Sym "a")));
  Alcotest.(check (list string)) "plus mandatory" [ "a" ] (mandatory (Plus (Sym "a")))

let test_delta_constraints_d1 () =
  let cs = delta_constraints d1 in
  (* b ⇒ c directly; a ⇒ b directly; a ⇒ c transitively; d1 ⇒ a, b, c. *)
  List.iter
    (fun pair ->
      Alcotest.(check bool)
        (Printf.sprintf "(%s,%s)" (fst pair) (snd pair))
        true (List.mem pair cs))
    [ ("b", "c"); ("a", "b"); ("a", "c"); ("d1", "a"); ("d1", "b"); ("d1", "c") ]

let test_example_3_9 () =
  (* Inserting <a><b/></a>: Δ⁺c = ∅ while Δ⁺b ≠ ∅ — rejected. *)
  let forest = Xml_parse.fragment "<a><b></b></a>" in
  let labels =
    List.concat_map
      (fun t -> List.map Xml_tree.label (Xml_tree.descendants_or_self t))
      forest
  in
  let present l = List.mem l labels in
  let violations = check_delta d1 ~present in
  Alcotest.(check bool) "(b,c) violated" true (List.mem ("b", "c") violations);
  (* A valid insertion passes. *)
  let ok_forest = Xml_parse.fragment "<a><b><c/></b></a>" in
  let ok_labels =
    List.concat_map
      (fun t -> List.map Xml_tree.label (Xml_tree.descendants_or_self t))
      ok_forest
  in
  Alcotest.(check (list (pair string string))) "no violation" []
    (check_delta d1 ~present:(fun l -> List.mem l ok_labels))

let test_example_3_10 () =
  (* Under d2, an inserted a must come with b and c. *)
  let cs = delta_constraints d2 in
  Alcotest.(check bool) "d2 ⇒ a" true (List.mem ("d2", "a") cs);
  Alcotest.(check bool) "d2 ⇒ b" true (List.mem ("d2", "b") cs);
  Alcotest.(check bool) "d2 ⇒ c" true (List.mem ("d2", "c") cs);
  (* Sequence-level check: appending a lone <a/> under the d2 root breaks
     the (a,b,c)+ model. *)
  let root = Xml_parse.document "<d2><a/><b/><c/></d2>" in
  let bad = Xml_parse.fragment "<a/>" in
  (match check_insert d2 ~parent:root ~forest:bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "lone <a/> should violate d2");
  let good = Xml_parse.fragment "<a/><b/><c/>" in
  match check_insert d2 ~parent:root ~forest:good with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("valid insertion rejected: " ^ e)

let test_validate_tree () =
  let ok = Xml_parse.document "<d1><a><b><c/></b></a></d1>" in
  (match validate_tree d1 ok with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let bad = Xml_parse.document "<d1><a><b/></a></d1>" in
  match validate_tree d1 bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "invalid tree accepted"

let test_check_insert_inner_validity () =
  (* The inserted forest itself must be valid. *)
  let root = Xml_parse.document "<d1><a><b><c/></b></a></d1>" in
  let a = List.hd (Xml_tree.element_children root) in
  match check_insert d1 ~parent:a ~forest:(Xml_parse.fragment "<b/>") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "b without c accepted"

let test_parse () =
  let t =
    parse
      {|# the Fig. 5(a) grammar, inlined
        d1 = a+
        a = b+
        b = c
        c = EMPTY|}
  in
  Alcotest.(check string) "root" "d1" (root t);
  Alcotest.(check bool) "rule exists" true (rule t "b" <> None);
  Alcotest.(check bool) "word check" true
    (word_matches (Option.get (rule t "a")) [ "b"; "b" ]);
  let t2 = parse "r = (a | b), c?" in
  Alcotest.(check bool) "alt/opt" true
    (word_matches (Option.get (rule t2 "r")) [ "a" ]
    && word_matches (Option.get (rule t2 "r")) [ "b"; "c" ]
    && not (word_matches (Option.get (rule t2 "r")) [ "c" ]))

let test_parse_errors () =
  let bad s = match parse s with exception Parse_error _ -> true | _ -> false in
  Alcotest.(check bool) "no equals" true (bad "abc");
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "unclosed paren" true (bad "a = (b");
  Alcotest.(check bool) "trailing" true (bad "a = b c")

(* {1 Edge cases: recursion, mixed content, optional/star models} *)

let test_recursive_declarations () =
  (* A self-referential content model is an ordinary regex over labels;
     nothing in validation or delta reasoning may loop on it. *)
  let t = parse "a = (a | b)*\nb = EMPTY" in
  Alcotest.(check string) "root" "a" (root t);
  (match validate_tree t (Xml_parse.document "<a><a><b/></a><b/><a/></a>") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match validate_tree t (Xml_parse.document "<a><c/></a>") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undeclared child accepted");
  Alcotest.(check (list (pair string string))) "star content ⇒ no constraints" []
    (delta_constraints t)

let test_delta_constraints_cycle () =
  (* Mutually-mandatory labels: the transitive closure must terminate and
     must contain both orientations but no self-pairs. *)
  let t = create ~root:"r" [ ("r", Sym "a"); ("a", Sym "b"); ("b", Sym "a") ] in
  let cs = delta_constraints t in
  List.iter
    (fun pair ->
      Alcotest.(check bool)
        (Printf.sprintf "(%s,%s)" (fst pair) (snd pair))
        true (List.mem pair cs))
    [ ("a", "b"); ("b", "a"); ("r", "a"); ("r", "b") ];
  Alcotest.(check bool) "no self-pair" false
    (List.exists (fun (x, y) -> x = y) cs)

let test_mixed_content_transparency () =
  (* Text and attributes are transparent to content models: only element
     children are matched against the rule. *)
  let t = create ~root:"a" [ ("a", Sym "b"); ("b", Epsilon) ] in
  (match validate_tree t (Xml_parse.document "<a>t<b/>u</a>") with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("mixed content rejected: " ^ e));
  (match validate_tree t (Xml_parse.document {|<a k="v"><b/></a>|}) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("attribute rejected: " ^ e));
  match validate_tree t (Xml_parse.document "<a>t</a>") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing mandatory b accepted"

let test_optional_star_models () =
  let t = parse "r = a?, b*\na = EMPTY\nb = EMPTY" in
  List.iter
    (fun s ->
      match validate_tree t (Xml_parse.document s) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (s ^ ": " ^ e))
    [ "<r/>"; "<r><a/></r>"; "<r><b/><b/><b/></r>"; "<r><a/><b/></r>" ];
  (match validate_tree t (Xml_parse.document "<r><a/><a/></r>") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "two a's accepted by a?");
  (* check_insert replays the whole child word: a second a is rejected,
     while more b's always fit the star. *)
  let root = Xml_parse.document "<r><a/><b/></r>" in
  (match check_insert t ~parent:root ~forest:(Xml_parse.fragment "<a/>") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "insert breaking a? accepted");
  match check_insert t ~parent:root ~forest:(Xml_parse.fragment "<b/><b/>") with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("star insert rejected: " ^ e)

let test_infer_shape () =
  (* [infer] collects element children only — text/attributes must not
     leak into the content models — and the document validates against
     its own inferred DTD. *)
  let doc = Xml_parse.document {|<r k="v">t<a>u<b/></a><a/>w</r>|} in
  let t = infer doc in
  Alcotest.(check string) "root" "r" (root t);
  (match validate_tree t doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("doc invalid for own inferred DTD: " ^ e));
  let al =
    labels t
    @ List.concat_map
        (fun l -> match rule t l with None -> [] | Some re -> alphabet re)
        (labels t)
  in
  Alcotest.(check bool) "no #text in any model" false (List.mem "#text" al);
  Alcotest.(check bool) "no attribute in any model" false (List.mem "@k" al);
  (* Inferred models are Star(Alt …): repetition is always allowed. *)
  match check_insert t ~parent:doc ~forest:(Xml_parse.fragment "<a/><a/>") with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("repetition rejected by inferred model: " ^ e)

let test_infer_validates_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"validate_tree (infer doc) doc = Ok"
       Tutil.arb_doc (fun doc ->
         match validate_tree (infer doc) doc with
         | Ok () -> true
         | Error e -> QCheck.Test.fail_report e))

let () =
  Alcotest.run "dtd"
    [
      ( "regex",
        [
          Alcotest.test_case "derivative matching" `Quick test_regex_semantics;
          Alcotest.test_case "mandatory symbols" `Quick test_mandatory;
        ] );
      ( "delta reasoning",
        [
          Alcotest.test_case "constraints of d1" `Quick test_delta_constraints_d1;
          Alcotest.test_case "Example 3.9" `Quick test_example_3_9;
          Alcotest.test_case "Example 3.10" `Quick test_example_3_10;
        ] );
      ( "validation",
        [
          Alcotest.test_case "validate_tree" `Quick test_validate_tree;
          Alcotest.test_case "inner validity" `Quick test_check_insert_inner_validity;
        ] );
      ( "parser",
        [
          Alcotest.test_case "syntax" `Quick test_parse;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "recursive declarations" `Quick
            test_recursive_declarations;
          Alcotest.test_case "constraint-closure cycle" `Quick
            test_delta_constraints_cycle;
          Alcotest.test_case "mixed content" `Quick test_mixed_content_transparency;
          Alcotest.test_case "optional/star models" `Quick test_optional_star_models;
          Alcotest.test_case "infer shape" `Quick test_infer_shape;
          test_infer_validates_qcheck;
        ] );
    ]
