(* Tests for the serving layer: epoch-tagged snapshot publication,
   snapshot isolation under concurrent commits (deterministic and
   randomized via the difftest serve oracle), structure sharing across
   epochs, the admission queue's drain-on-stop contract, the Prometheus
   endpoint, and the load driver's accounting. *)

let n = Pattern.n

let doc_text =
  {|<r><a>x<b>1</b><b>2</b></a><c><d>y</d></c><a><b>3</b></a><e k="v">z</e></r>|}

let v_ab name = Pattern.compile ~name (n "a" ~id:true [ n "b" ~id:true [] ])
let v_cd name = Pattern.compile ~name (n "c" ~id:true [ n "d" ~id:true [] ])

let fresh_set () =
  let store = Store.of_document (Xml_parse.document doc_text) in
  let set = View_set.create store in
  ignore (View_set.add set (v_ab "ab"));
  ignore (View_set.add set (v_cd "cd"));
  set

let stmts =
  [
    Update.insert ~into:"/r/a" "<b>9</b>";
    Update.delete "/r/c/d";
    Update.insert ~into:"/r" "<c><d>w</d></c>";
    Update.delete "//b";
  ]

(* Sequential oracle: a fresh set with the first [k] statements
   applied, captured as a snapshot. *)
let oracle_at k =
  let set = fresh_set () in
  List.iteri (fun i u -> if i < k then ignore (View_set.update set u)) stmts;
  Snapshot.initial set

let check_views_equal what got want =
  Array.iter2
    (fun (g : Snapshot.view) (w : Snapshot.view) ->
      match Snapshot.view_diff g w with
      | None -> ()
      | Some d ->
        Alcotest.failf "%s: view %s diverged from oracle: %s" what
          g.Snapshot.v_name d)
    got.Snapshot.views want.Snapshot.views

(* {1 Snapshot isolation, deterministic}

   A reader holds the epoch-0 snapshot across every subsequent commit;
   it must stay tuple-for-tuple identical to the pre-update oracle, and
   every published epoch must equal the sequential oracle at its
   [applied] watermark. *)

let test_isolation_across_commits () =
  let server = Server.create ~max_batch:1 (fresh_set ()) in
  let held = Server.snapshot server in
  Alcotest.(check int) "initial epoch" 0 held.Snapshot.epoch;
  List.iteri
    (fun i u ->
      Alcotest.(check bool) "admitted" true (Server.submit server u);
      Alcotest.(check int) "batch of one" 1 (Server.step server);
      let s = Server.snapshot server in
      Alcotest.(check int) "epoch bumps by one" (i + 1) s.Snapshot.epoch;
      Alcotest.(check int) "applied watermark" (i + 1) s.Snapshot.applied;
      check_views_equal
        (Printf.sprintf "epoch %d" (i + 1))
        s
        (oracle_at (i + 1));
      (* The held epoch-0 snapshot is immutable: still pre-update. *)
      check_views_equal "held epoch 0" held (oracle_at 0))
    stmts;
  Alcotest.(check int) "empty step is a no-op" 0 (Server.step server)

(* {1 view_diff on adversarial inputs}

   The comparison oracle itself must be trustworthy at its edges: empty
   views, single tuples, and views that agree everywhere except the very
   last tuple (the off-by-one a naive loop bound would miss). Views are
   built by hand — the point is the comparator, not the capture path. *)

let mk_view tuples =
  {
    Snapshot.v_name = "v";
    v_pattern = "-";
    v_tuples = Array.of_list tuples;
    v_total = List.fold_left (fun a t -> a + t.Snapshot.t_count) 0 tuples;
  }

let tup ?(count = 1) key cells =
  { Snapshot.t_key = key; t_count = count; t_cells = Array.of_list cells }

let test_view_diff_adversarial () =
  let id1 = Dewey.root ~lab:1 in
  let id2 = Dewey.child id1 ~lab:2 ~ord:[| 1 |] in
  let id3 = Dewey.child id1 ~lab:2 ~ord:[| 2 |] in
  let cell ?v ?c id = (id, v, c) in
  (* Empty vs empty, empty vs single. *)
  let empty = mk_view [] in
  let single = mk_view [ tup "k" [ cell ~v:"x" id1 ] ] in
  Alcotest.(check (option string)) "empty = empty" None
    (Snapshot.view_diff empty empty);
  Alcotest.(check bool) "empty = empty (equal)" true
    (Snapshot.view_equal empty empty);
  Alcotest.(check (option string)) "single = single" None
    (Snapshot.view_diff single single);
  (match Snapshot.view_diff empty single with
  | Some d ->
    Alcotest.(check bool) "0 vs 1 names cardinality" true
      (d = "cardinality 0 vs 1")
  | None -> Alcotest.fail "empty vs single-tuple not detected");
  (match Snapshot.view_diff single empty with
  | Some d ->
    Alcotest.(check bool) "1 vs 0 names cardinality" true
      (d = "cardinality 1 vs 0")
  | None -> Alcotest.fail "single-tuple vs empty not detected");
  (* Same cardinality, divergence only in the LAST tuple — once per
     divergence channel: payload, derivation count, identifier, key. *)
  let base = [ tup "a" [ cell id1 ]; tup "b" [ cell id2 ] ] in
  let with_last t = mk_view (base @ [ t ]) in
  let check_last what a b =
    Alcotest.(check bool) (what ^ ": equal is false") false
      (Snapshot.view_equal a b);
    match Snapshot.view_diff a b with
    | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: diff points at last tuple (%s)" what d)
        true
        (String.length d >= 7 && String.sub d 0 7 = "tuple 2")
    | None -> Alcotest.failf "%s: last-tuple divergence missed" what
  in
  check_last "payload"
    (with_last (tup "z" [ cell ~v:"1" id3 ]))
    (with_last (tup "z" [ cell ~v:"2" id3 ]));
  check_last "count"
    (with_last (tup ~count:1 "z" [ cell id3 ]))
    (with_last (tup ~count:2 "z" [ cell id3 ]));
  check_last "identifier"
    (with_last (tup "z" [ cell id2 ]))
    (with_last (tup "z" [ cell id3 ]));
  check_last "key"
    (with_last (tup "z1" [ cell id3 ]))
    (with_last (tup "z2" [ cell id3 ]));
  (* None-vs-Some payloads must not compare equal. *)
  check_last "absent payload"
    (with_last (tup "z" [ cell id3 ]))
    (with_last (tup "z" [ cell ~c:"" id3 ]))

(* {1 Structure sharing}

   A view the statement provably cannot touch keeps its physical tuple
   array across the epoch bump; a touched view gets fresh arrays. *)

let test_structure_sharing () =
  let server = Server.create ~max_batch:1 (fresh_set ()) in
  let s0 = Server.snapshot server in
  (* /r/c/d insertion of <f/> is irrelevant to both a/b and c/d?  No:
     it touches the c/d subtree but inserts only f-labeled nodes, so
     both footprints are disjoint — both views must share. *)
  ignore (Server.submit server (Update.insert ~into:"/r/c/d" "<f/>"));
  ignore (Server.step server);
  let s1 = Server.snapshot server in
  Alcotest.(check int) "epoch advanced" 1 s1.Snapshot.epoch;
  Array.iter2
    (fun (v0 : Snapshot.view) (v1 : Snapshot.view) ->
      Alcotest.(check bool)
        (Printf.sprintf "view %s shares tuples across epochs"
           v0.Snapshot.v_name)
        true
        (v0.Snapshot.v_tuples == v1.Snapshot.v_tuples))
    s0.Snapshot.views s1.Snapshot.views;
  (* A b-insertion touches ab but not cd: ab re-captured, cd shared. *)
  ignore (Server.submit server (Update.insert ~into:"/r/a" "<b>8</b>"));
  ignore (Server.step server);
  let s2 = Server.snapshot server in
  let find s name =
    match Snapshot.find_view s name with
    | Some v -> v
    | None -> Alcotest.failf "view %s missing" name
  in
  Alcotest.(check bool) "touched view re-captured" false
    ((find s1 "ab").Snapshot.v_tuples == (find s2 "ab").Snapshot.v_tuples);
  Alcotest.(check bool) "untouched view still shared" true
    ((find s1 "cd").Snapshot.v_tuples == (find s2 "cd").Snapshot.v_tuples);
  check_views_equal "epoch 2 contents" s2
    (let set = fresh_set () in
     ignore (View_set.update set (Update.insert ~into:"/r/c/d" "<f/>"));
     ignore (View_set.update set (Update.insert ~into:"/r/a" "<b>8</b>"));
     Snapshot.initial set)

(* {1 Admission queue: run drains, stop refuses} *)

let test_run_drains_and_stop_refuses () =
  let server = Server.create ~max_batch:3 (fresh_set ()) in
  List.iter (fun u -> ignore (Server.submit server u)) stmts;
  Alcotest.(check int) "queue holds the batch" (List.length stmts)
    (Server.pending server);
  Server.stop server;
  Alcotest.(check bool) "submit after stop refused" false
    (Server.submit server (Update.delete "//b"));
  Server.run server;
  let s = Server.snapshot server in
  Alcotest.(check int) "run drained everything" (List.length stmts)
    s.Snapshot.applied;
  Alcotest.(check int) "nothing pending" 0 (Server.pending server);
  Alcotest.(check int) "max_batch respected" 2 (Server.batches server);
  check_views_equal "drained contents" s (oracle_at (List.length stmts));
  (* The publication log is consistent: monotone epochs and watermarks. *)
  let log = Server.publish_log server in
  Alcotest.(check int) "one log entry per batch" (Server.batches server)
    (List.length log);
  ignore
    (List.fold_left
       (fun (pe, pa, pt) p ->
         let e = p.Server.p_epoch
         and a = p.Server.p_applied
         and t = p.Server.p_time in
         Alcotest.(check bool) "epochs increase" true (e > pe);
         Alcotest.(check bool) "applied increases" true (a > pa);
         Alcotest.(check bool) "publication times non-decreasing" true
           (t >= pt);
         Alcotest.(check int) "non-durable watermark" (-1) p.Server.p_durable_seq;
         (e, a, t))
       (0, 0, 0.) log)

(* {1 Randomized concurrent oracle} *)

let test_serve_difftest () =
  let r = Difftest.run_serve ~jobs:2 ~seed:7 ~iters:40 () in
  List.iter print_endline r.Qgen.failures;
  Alcotest.(check int) "iterations" 40 r.Qgen.iterations;
  Alcotest.(check int) "isolation violations" 0 r.Qgen.failed

(* {1 Prometheus endpoint} *)

let test_prometheus_endpoint () =
  let prev = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled prev)
    (fun () ->
      let server = Server.create (fresh_set ()) in
      ignore (Server.submit server (Update.insert ~into:"/r/a" "<b>7</b>"));
      ignore (Server.step server);
      let contains hay needle =
        let n = String.length needle and l = String.length hay in
        let rec at i = i + n <= l && (String.sub hay i n = needle || at (i + 1)) in
        at 0
      in
      let body = Server.prometheus server in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "exposition has %s" needle)
            true (contains body needle))
        [
          "xvm_serve_epoch 1";
          "xvm_serve_applied_statements 1";
          "xvm_serve_pending_updates 0";
          "xvm_dewey_arena_";
          "xvm_maint_work_";
          "xvm_serve_view_tuples{view=\"ab\"}";
        ];
      let ep = Metrics_http.start ~port:0 (fun () -> Server.prometheus server) in
      Fun.protect
        ~finally:(fun () -> Metrics_http.stop ep)
        (fun () ->
          let code, got = Metrics_http.get ~port:(Metrics_http.port ep) "/metrics" in
          Alcotest.(check int) "GET /metrics is 200" 200 code;
          Alcotest.(check bool) "scraped body is the exposition" true
            (contains got "xvm_serve_epoch 1");
          let code404, _ = Metrics_http.get ~port:(Metrics_http.port ep) "/nope" in
          Alcotest.(check int) "unknown path is 404" 404 code404);
      Metrics_http.stop ep (* idempotent *))

(* {1 Load driver} *)

let test_percentiles () =
  let sorted = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. |] in
  Alcotest.(check (float 1e-9)) "p50" 5. (Load.percentile sorted 0.5);
  Alcotest.(check (float 1e-9)) "p95" 10. (Load.percentile sorted 0.95);
  Alcotest.(check (float 1e-9)) "p99" 10. (Load.percentile sorted 0.99);
  Alcotest.(check (float 1e-9)) "p0 clamps" 1. (Load.percentile sorted 0.);
  Alcotest.(check (float 1e-9)) "singleton" 7. (Load.percentile [| 7. |] 0.99)

let test_load_driver () =
  let gen i =
    if i mod 2 = 0 then Update.insert ~into:"/r/a" "<b>l</b>"
    else Update.delete "/r/a/b[1]"
  in
  let config =
    {
      Load.default with
      Load.readers = 2;
      duration = 0.3;
      write_rate = 100.;
      max_batch = 8;
      seed = 42;
    }
  in
  let r = Load.run config (fresh_set ()) ~gen in
  Alcotest.(check bool) "readers made progress" true (r.Load.reads > 0);
  Alcotest.(check bool) "read latencies recorded" true (r.Load.read_ms <> None);
  Alcotest.(check bool) "writer made progress" true (r.Load.writes_applied > 0);
  Alcotest.(check int) "no statement lost" r.Load.writes_submitted
    r.Load.writes_applied;
  Alcotest.(check bool) "visibility latencies recorded" true
    (r.Load.write_visible_ms <> None);
  (match r.Load.read_ms with
  | Some l ->
    Alcotest.(check bool) "p50 <= p95 <= p99 <= max" true
      (l.Load.p50 <= l.Load.p95 && l.Load.p95 <= l.Load.p99
     && l.Load.p99 <= l.Load.max)
  | None -> ());
  Alcotest.(check bool) "epochs published" true (r.Load.epochs > 0);
  Alcotest.(check bool) "batch fill within bound" true
    (r.Load.max_batch_fill <= 8);
  (* Closed loop: every submission waits for visibility. *)
  let rc =
    Load.run
      { config with Load.write_rate = 0.; closed_loop = true; readers = 1 }
      (fresh_set ()) ~gen
  in
  Alcotest.(check bool) "closed loop applied writes" true
    (rc.Load.writes_applied > 0)

let () =
  Alcotest.run "serve"
    [
      ( "snapshots",
        [
          Alcotest.test_case "isolation across commits" `Quick
            test_isolation_across_commits;
          Alcotest.test_case "view_diff adversarial" `Quick
            test_view_diff_adversarial;
          Alcotest.test_case "structure sharing" `Quick test_structure_sharing;
          Alcotest.test_case "run drains, stop refuses" `Quick
            test_run_drains_and_stop_refuses;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "difftest serve oracle" `Quick test_serve_difftest;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "prometheus endpoint" `Quick
            test_prometheus_endpoint;
        ] );
      ( "load",
        [
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "load driver smoke" `Quick test_load_driver;
        ] );
    ]
