(* Tests for the observability layer itself: counters, timers, the
   disabled fast path, scope snapshots and the export formats. Every
   test runs against the process-wide registry, so each uses its own
   scope names and restores the enabled flag. *)

let scope = Obs.Scope.v "test.obs"
let c_hits = Obs.Scope.counter scope "hits"
let t_work = Obs.Scope.timer scope "work"

let with_enabled b f =
  let prev = Obs.enabled () in
  Obs.set_enabled b;
  Fun.protect ~finally:(fun () -> Obs.set_enabled prev) f

let test_counter_basics () =
  with_enabled true @@ fun () ->
  let before = Obs.Counter.value c_hits in
  Obs.Counter.incr c_hits;
  Obs.Counter.add c_hits 41;
  Alcotest.(check int) "incr + add" (before + 42) (Obs.Counter.value c_hits);
  Alcotest.(check string) "full key" "test.obs.hits" (Obs.Counter.key c_hits)

let test_disabled_is_inert () =
  with_enabled false @@ fun () ->
  let c = Obs.Counter.value c_hits and s = Obs.Timer.seconds t_work in
  Obs.Counter.incr c_hits;
  Obs.Counter.add c_hits 7;
  Obs.Timer.add_span t_work 1.0;
  let x = Obs.Timer.time t_work (fun () -> 42) in
  Alcotest.(check int) "timed thunk still runs" 42 x;
  Alcotest.(check int) "counter unchanged when disabled" c
    (Obs.Counter.value c_hits);
  Alcotest.(check (float 0.0)) "timer unchanged when disabled" s
    (Obs.Timer.seconds t_work)

let test_timer_accumulates () =
  with_enabled true @@ fun () ->
  let spans = Obs.Timer.spans t_work in
  Obs.Timer.add_span t_work 0.25;
  Obs.Timer.add_span t_work 0.75;
  Alcotest.(check int) "two more spans" (spans + 2) (Obs.Timer.spans t_work);
  Alcotest.(check bool) "seconds monotone" true (Obs.Timer.seconds t_work >= 1.0)

let test_with_scope_diff_and_restore () =
  Obs.set_enabled false;
  let (), snap =
    Obs.with_scope (fun () ->
        Obs.Counter.add c_hits 3;
        let (), inner =
          Obs.with_scope (fun () -> Obs.Counter.add c_hits 2)
        in
        Alcotest.(check int) "inner scope sees only its own increments" 2
          (Obs.counter_value inner "test.obs.hits"))
  in
  Alcotest.(check int) "outer scope sees both" 5
    (Obs.counter_value snap "test.obs.hits");
  Alcotest.(check bool) "flag restored after with_scope" false (Obs.enabled ());
  Alcotest.(check int) "absent key reads as zero" 0
    (Obs.counter_value snap "no.such.counter")

let test_with_scope_restores_on_exception () =
  Obs.set_enabled false;
  (try ignore (Obs.with_scope (fun () -> failwith "boom")) with Failure _ -> ());
  Alcotest.(check bool) "flag restored after an exception" false (Obs.enabled ())

let test_monotonic_now () =
  let rec loop i prev =
    if i = 0 then ()
    else
      let t = Obs.now () in
      Alcotest.(check bool) "now never goes backwards" true (t >= prev);
      loop (i - 1) t
  in
  loop 1000 (Obs.now ())

(* The clock must actually advance (it is a real monotonic source, not a
   constant passing the non-decreasing check) and measure a sleep with
   sane magnitude. *)
let test_clock_advances () =
  let t0 = Obs.now () in
  Unix.sleepf 0.02;
  let elapsed = Obs.now () -. t0 in
  Alcotest.(check bool) "sleep measured as > 5 ms" true (elapsed > 0.005);
  Alcotest.(check bool) "sleep measured as < 10 s" true (elapsed < 10.)

let contains haystack needle =
  let n = String.length needle and l = String.length haystack in
  let rec at i = i + n <= l && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let test_prometheus_export () =
  Alcotest.(check string) "name sanitization" "a_b_c_d"
    (Obs.prometheus_name "a.b-c d");
  let ((), snap) =
    Obs.with_scope (fun () ->
        Obs.Counter.add c_hits 3;
        Obs.Timer.add_span t_work 0.25)
  in
  let prom = Obs.to_prometheus ~snapshot:snap () in
  List.iter
    (fun needle ->
      if not (contains prom needle) then
        Alcotest.failf "prometheus dump missing %S in:\n%s" needle prom)
    [
      "# TYPE xvm_test_obs_hits_total counter";
      "xvm_test_obs_hits_total 3\n";
      "xvm_test_obs_work_seconds_total 0.250000000\n";
      "xvm_test_obs_work_spans_total 1\n";
    ];
  (* Every non-comment line is "<name> <value>". *)
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] <> '#' then
        match String.split_on_char ' ' line with
        | [ name; value ] ->
          Alcotest.(check string) "metric name is sanitized" name
            (Obs.prometheus_name name);
          Alcotest.(check bool)
            (Printf.sprintf "value %S parses" value)
            true
            (float_of_string_opt value <> None)
        | _ -> Alcotest.failf "malformed exposition line %S" line)
    (String.split_on_char '\n' prom)

let test_export_formats () =
  let ((), snap) =
    Obs.with_scope (fun () ->
        Obs.Counter.add c_hits 9;
        Obs.Timer.add_span t_work 0.5)
  in
  let json = Obs.to_json ~snapshot:snap () in
  Alcotest.(check bool) "single line" false (String.contains json '\n');
  List.iter
    (fun needle ->
      if
        not
          (let n = String.length needle and l = String.length json in
           let rec at i = i + n <= l && (String.sub json i n = needle || at (i + 1)) in
           at 0)
      then Alcotest.failf "JSON dump missing %S in %s" needle json)
    [ "\"version\":1"; "\"test.obs\""; "\"hits\":9"; "\"work\""; "\"spans\":1" ];
  let kv = Obs.dump_kv ~snapshot:snap () in
  Alcotest.(check bool) "kv dump has the counter line" true
    (List.mem "test.obs.hits=9" (String.split_on_char '\n' kv));
  Alcotest.(check string) "kv digest of nonzero counters" "test.obs.hits=9"
    (Obs.kv_line snap)

let test_registry_listing () =
  let names = Obs.scopes () in
  Alcotest.(check bool) "registered scope listed" true
    (List.mem "test.obs" names);
  Alcotest.(check bool) "listing is sorted" true
    (names = List.sort compare names);
  (* create-or-find: same name yields the same cell *)
  let again = Obs.Scope.counter (Obs.Scope.v "test.obs") "hits" in
  with_enabled true @@ fun () ->
  let v = Obs.Counter.value c_hits in
  Obs.Counter.incr again;
  Alcotest.(check int) "same underlying cell" (v + 1) (Obs.Counter.value c_hits)

let test_stats_median () =
  Alcotest.(check (float 1e-9)) "odd length" 3.0
    (Obs.Stats.median [ 5.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "even length" 2.5
    (Obs.Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  let m = Obs.Stats.time_median ~repeats:3 ~iters:5 (fun () -> ()) in
  Alcotest.(check bool) "time_median non-negative" true (m >= 0.0)

let () =
  Alcotest.run "obs"
    [
      ( "cells",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "disabled path is inert" `Quick
            test_disabled_is_inert;
          Alcotest.test_case "timer accumulates" `Quick test_timer_accumulates;
        ] );
      ( "scopes",
        [
          Alcotest.test_case "with_scope diffs and restores" `Quick
            test_with_scope_diff_and_restore;
          Alcotest.test_case "with_scope restores on exception" `Quick
            test_with_scope_restores_on_exception;
          Alcotest.test_case "registry listing" `Quick test_registry_listing;
        ] );
      ( "clock+export",
        [
          Alcotest.test_case "monotonic now" `Quick test_monotonic_now;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "prometheus export" `Quick test_prometheus_export;
          Alcotest.test_case "export formats" `Quick test_export_formats;
          Alcotest.test_case "stats median" `Quick test_stats_median;
        ] );
    ]
