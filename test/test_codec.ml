(* Tests for materialized-view persistence. *)

let doc () = Xmark_gen.document ~seed:33 ~target_kb:60

let test_roundtrip () =
  let store = Store.of_document (doc ()) in
  let mv = Mview.materialize store Xmark_views.q13 in
  let data = Mview_codec.save mv in
  let loaded = Mview_codec.load store Xmark_views.q13 data in
  match Recompute.diff mv loaded with
  | None -> ()
  | Some d -> Alcotest.fail ("roundtrip diverged: " ^ d)

let test_loaded_view_maintains () =
  (* A reloaded view keeps maintaining correctly (snowcaps are rebuilt at
     load time). *)
  let stmt = Xmark_updates.insert (Xmark_updates.find "X17_L") in
  let store = Store.of_document (doc ()) in
  let mv = Mview.materialize store Xmark_views.q13 in
  let data = Mview_codec.save mv in
  let loaded = Mview_codec.load store Xmark_views.q13 data in
  let _ = Maint.propagate loaded stmt in
  let store2 = Store.of_document (doc ()) in
  let oracle, _ = Recompute.recompute_after store2 stmt ~pat:Xmark_views.q13 in
  match Recompute.diff loaded oracle with
  | None -> ()
  | Some d -> Alcotest.fail ("loaded view diverged after update: " ^ d)

let test_file_roundtrip () =
  let store = Store.of_document (doc ()) in
  let mv = Mview.materialize store Xmark_views.q1 in
  let path = Filename.temp_file "xvm" ".view" in
  Mview_codec.save_to_file mv path;
  let loaded = Mview_codec.load_from_file store Xmark_views.q1 path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (Recompute.equal mv loaded)

let test_corrupt () =
  let store = Store.of_document (doc ()) in
  let mv = Mview.materialize store Xmark_views.q1 in
  let data = Mview_codec.save mv in
  let corrupt s =
    match Mview_codec.load store Xmark_views.q1 s with
    | exception Mview_codec.Corrupt _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad magic" true (corrupt ("ZZZZ" ^ data));
  Alcotest.(check bool) "truncated" true
    (corrupt (String.sub data 0 (String.length data - 3)));
  Alcotest.(check bool) "trailing" true (corrupt (data ^ "x"));
  Alcotest.(check bool) "wrong pattern" true
    (match Mview_codec.load store Xmark_views.q4 data with
    | exception Mview_codec.Corrupt _ -> true
    | _ -> false)

(* Append a valid CRC-32 footer to an arbitrary body — used to craft
   adversarial images that get past the checksum gate and into the
   decoder's own validation. *)
let with_footer body =
  let crc = Crc32.string body in
  body ^ String.init 4 (fun i -> Char.chr ((crc lsr (8 * (3 - i))) land 0xff))

let test_format_v2 () =
  let store = Store.of_document (doc ()) in
  let mv = Mview.materialize store Xmark_views.q1 in
  let data = Mview_codec.save mv in
  Alcotest.(check string) "v2 magic" "XVM2" (String.sub data 0 4);
  let corrupt ?msg s =
    match Mview_codec.load store Xmark_views.q1 s with
    | exception Mview_codec.Corrupt m ->
      (match msg with
      | Some expected -> Alcotest.(check string) "corrupt reason" expected m
      | None -> ())
    | exception e -> Alcotest.failf "escaped exception: %s" (Printexc.to_string e)
    | _ -> Alcotest.fail "corrupt image accepted"
  in
  (* A v1 image is refused with a version message, not misparsed. *)
  corrupt ~msg:"unsupported codec version 1 (re-save the view)"
    ("XVM1" ^ String.sub data 4 (String.length data - 4));
  (* One flipped bit in the middle of the body trips the checksum. *)
  let b = Bytes.of_string data in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x10));
  corrupt ~msg:"checksum mismatch" (Bytes.to_string b);
  (* Overlong varints fail bounded decoding instead of shifting into
     undefined [lsl] territory. *)
  corrupt ~msg:"varint overflow" (with_footer ("XVM2" ^ String.make 10 '\xff'));
  (* A huge declared entry count is rejected up front — before the
     decoder allocates or loops on it. *)
  let huge = Buffer.create 16 in
  Buffer.add_string huge "XVM2";
  Buffer.add_char huge '\x02' (* node count of the a[b] pattern *);
  Buffer.add_char huge '\x01' (* one stored attribute *);
  Buffer.add_string huge "\xff\xff\xff\xff\xff\xff\x03" (* ~2^46 entries *);
  let pat =
    Pattern.compile ~name:"a[b]" (Pattern.n "a" ~id:true [ Pattern.n "b" [] ])
  in
  (match Mview_codec.load store pat (with_footer (Buffer.contents huge)) with
  | exception Mview_codec.Corrupt m ->
    Alcotest.(check string) "entry count validated"
      "declared entry count exceeds remaining bytes" m
  | exception e -> Alcotest.failf "escaped exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "absurd entry count accepted");
  (* Crc32 known-answer check (IEEE vector). *)
  Alcotest.(check int) "crc32 of '123456789'" 0xCBF43926 (Crc32.string "123456789")

let test_counts_preserved () =
  (* Derivation counts survive the roundtrip. *)
  let root = Xml_parse.document {|<a><c><b/><b/></c><f><b/></f></a>|} in
  let store = Store.of_document root in
  let pat =
    Pattern.compile ~name:"a[b]" (Pattern.n "a" ~id:true [ Pattern.n "b" [] ])
  in
  let mv = Mview.materialize store pat in
  Alcotest.(check int) "count 3" 3 (Mview.total_count mv);
  let loaded = Mview_codec.load store pat (Mview_codec.save mv) in
  Alcotest.(check int) "count preserved" 3 (Mview.total_count loaded);
  Alcotest.(check int) "one tuple" 1 (Mview.cardinality loaded)

let () =
  Alcotest.run "codec"
    [
      ( "persistence",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "loaded view maintains" `Quick test_loaded_view_maintains;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_corrupt;
          Alcotest.test_case "format v2 hardening" `Quick test_format_v2;
          Alcotest.test_case "derivation counts preserved" `Quick
            test_counts_preserved;
        ] );
    ]
