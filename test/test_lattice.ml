(* Tests for the snowcap lattice (Definition 3.11, Prop 3.12). *)

(* The Fig. 6 view: //a[//b//c]//d  (preorder: a=0, b=1, c=2, d=3). *)
let v1 =
  Pattern.compile ~name:"v1"
    (Pattern.n "a" ~id:true
       [ Pattern.n "b" ~id:true [ Pattern.n "c" ~id:true [] ]; Pattern.n "d" ~id:true [] ])

(* The Fig. 7 view: //a[//b][//c]//d. *)
let v2 =
  Pattern.compile ~name:"v2"
    (Pattern.n "a" ~id:true
       [ Pattern.n "b" ~id:true []; Pattern.n "c" ~id:true []; Pattern.n "d" ~id:true [] ])

let set_names pat s = Lattice.to_string pat s

let test_snowcaps_v1 () =
  let scs = Lattice.snowcaps v1 in
  (* Parent-closed subtrees of a[b[c]][d]: a, ab, ad, abc, abd, abcd. *)
  Alcotest.(check int) "six snowcaps" 6 (List.length scs);
  let names = List.map (set_names v1) scs in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected names))
    [ "{a}"; "{a,b}"; "{a,d}"; "{a,b,c}"; "{a,b,d}"; "{a,b,c,d}" ];
  (* Ascending size. *)
  let sizes = List.map Lattice.size scs in
  Alcotest.(check (list int)) "sorted by size" (List.sort compare sizes) sizes

let test_snowcaps_v2 () =
  (* Subtrees of a[b][c][d]: a plus any subset of {b,c,d} = 8. *)
  Alcotest.(check int) "eight snowcaps" 8 (List.length (Lattice.snowcaps v2));
  Alcotest.(check int) "seven proper" 7 (List.length (Lattice.proper_snowcaps v2))

let test_chain () =
  let chain = Lattice.chain v1 in
  Alcotest.(check (list string)) "preorder prefixes"
    [ "{a}"; "{a,b}"; "{a,b,c}" ]
    (List.map (set_names v1) chain);
  (* Every chain element is a snowcap. *)
  let all = Lattice.snowcaps v1 in
  List.iter
    (fun c ->
      Alcotest.(check bool) "chain element is a snowcap" true
        (List.exists (Lattice.equal c) all))
    chain

let test_parent_closed_property =
  Tutil.qtest ~count:200 "snowcaps are exactly the parent-closed sets"
    Tutil.arb_pattern (fun pat ->
      let k = Pattern.node_count pat in
      QCheck.assume (k <= 6);
      (* Brute-force all subsets containing the root. *)
      let closed mask =
        mask land 1 = 1
        &&
        let ok = ref true in
        for i = 1 to k - 1 do
          if mask land (1 lsl i) <> 0 && mask land (1 lsl pat.Pattern.parents.(i)) = 0
          then ok := false
        done;
        !ok
      in
      let expected = ref 0 in
      for mask = 1 to (1 lsl k) - 1 do
        if closed mask then incr expected
      done;
      List.length (Lattice.snowcaps pat) = !expected)

(* After any maintenance step, the auxiliary snowcap tables must stay
   consistent with the store: every materialized set is still a snowcap
   of the pattern, and no table row or view cell holds a Dewey ID that
   the [Store.commit] purge left dangling. *)
let test_no_dangling_after_maintenance =
  Tutil.qtest ~count:300 "maintenance leaves no dangling IDs in snowcap tables"
    QCheck.(triple Tutil.arb_doc Tutil.arb_pattern Tutil.arb_update)
    (fun (doc, pat, stmt) ->
      let store = Store.of_document (Xml_tree.copy doc) in
      let mv = Mview.materialize ~policy:Mview.Snowcaps store pat in
      let _ = Maint.propagate mv stmt in
      let live id = Store.node_of store id <> None in
      List.for_all
        (fun (nset, t) ->
          List.exists (Lattice.equal nset) mv.Mview.all_snowcaps
          && Array.for_all (Array.for_all live) (Tuple_table.rows t))
        mv.Mview.mats
      && List.for_all
           (fun (_, _, cells) ->
             Array.for_all (fun c -> live c.Mview.cell_id) cells)
           (Mview.dump mv))

let test_tops () =
  (* Complement of snowcap {a,b} in v1 is {c,d}; its forest roots are c
     and d. *)
  let s = [| true; true; false; false |] in
  let inside = Array.map not s in
  Alcotest.(check (list int)) "tops" [ 2; 3 ] (Lattice.tops v1 ~inside)

let test_subset () =
  let a = [| true; false; false; false |] in
  let b = [| true; true; false; false |] in
  Alcotest.(check bool) "a ⊆ b" true (Lattice.subset a b);
  Alcotest.(check bool) "b ⊄ a" false (Lattice.subset b a);
  Alcotest.(check bool) "refl" true (Lattice.subset a a);
  Alcotest.(check int) "size" 2 (Lattice.size b);
  Alcotest.(check bool) "mem" true (Lattice.mem b 1 && not (Lattice.mem b 2))

let () =
  Alcotest.run "lattice"
    [
      ( "snowcaps",
        [
          Alcotest.test_case "Fig. 6 view" `Quick test_snowcaps_v1;
          Alcotest.test_case "Fig. 7 view" `Quick test_snowcaps_v2;
          Alcotest.test_case "chain" `Quick test_chain;
          test_parent_closed_property;
        ] );
      ("maintenance consistency", [ test_no_dangling_after_maintenance ]);
      ( "sets",
        [
          Alcotest.test_case "tops" `Quick test_tops;
          Alcotest.test_case "subset/size/mem" `Quick test_subset;
        ] );
    ]
