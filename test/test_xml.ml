(* Tests for the XML tree model and the parser/serializer. *)

let el ?(children = []) name = Xml_tree.element ~children name
let txt = Xml_tree.text
let attr = Xml_tree.attribute

let fixture () =
  el "a"
    ~children:
      [
        attr "k" "v";
        el "b" ~children:[ txt "hello" ];
        txt " world";
        el "c" ~children:[ el "d"; txt "!" ];
      ]

let test_labels () =
  let d = fixture () in
  Alcotest.(check string) "element" "a" (Xml_tree.label d);
  Alcotest.(check string) "attribute" "@k"
    (Xml_tree.label (Option.get (Xml_tree.attribute_node d "k")));
  Alcotest.(check string) "text" "#text" (Xml_tree.label (txt "x"))

let test_string_value () =
  let d = fixture () in
  Alcotest.(check string) "concat of text descendants" "hello world!"
    (Xml_tree.string_value d);
  Alcotest.(check string) "attribute value" "v"
    (Xml_tree.string_value (Option.get (Xml_tree.attribute_node d "k")))

let test_structure () =
  let d = fixture () in
  Alcotest.(check int) "size" 8 (Xml_tree.size d);
  Alcotest.(check int) "element children" 2 (List.length (Xml_tree.element_children d));
  let c = List.nth (Xml_tree.element_children d) 1 in
  Alcotest.(check bool) "ancestor" true (Xml_tree.is_ancestor d c);
  Alcotest.(check bool) "not reflexive" false (Xml_tree.is_ancestor d d);
  Alcotest.(check int) "descendants_or_self" 8
    (List.length (Xml_tree.descendants_or_self d))

let test_append_remove () =
  let d = el "root" in
  let k = el "kid" in
  Xml_tree.append_child d k;
  Alcotest.(check int) "one child" 1 (List.length d.Xml_tree.children);
  Alcotest.(check bool) "parent set" true
    (match k.Xml_tree.parent with Some p -> p == d | None -> false);
  Alcotest.check_raises "double attach"
    (Invalid_argument "Xml_tree.append_child: child already attached") (fun () ->
      Xml_tree.append_child d k);
  Xml_tree.remove_child d k;
  Alcotest.(check int) "removed" 0 (List.length d.Xml_tree.children);
  Alcotest.(check bool) "parent cleared" true (k.Xml_tree.parent = None)

let test_copy () =
  let d = fixture () in
  let c = Xml_tree.copy d in
  Alcotest.(check string) "same serialization" (Xml_tree.serialize d)
    (Xml_tree.serialize c);
  Alcotest.(check bool) "fresh serials" true (c.Xml_tree.serial <> d.Xml_tree.serial);
  Alcotest.(check bool) "no parent" true (c.Xml_tree.parent = None)

let test_serialize () =
  let d = fixture () in
  Alcotest.(check string) "rendering"
    {|<a k="v"><b>hello</b> world<c><d/>!</c></a>|}
    (Xml_tree.serialize d);
  Alcotest.(check bool) "decl" true
    (String.length (Xml_tree.serialize ~decl:true d)
    > String.length (Xml_tree.serialize d))

let test_escaping () =
  let d = el "a" ~children:[ attr "k" "a\"b<c"; txt "x<y&z" ] in
  let s = Xml_tree.serialize d in
  Alcotest.(check string) "escaped" {|<a k="a&quot;b&lt;c">x&lt;y&amp;z</a>|} s;
  let back = Xml_parse.document s in
  Alcotest.(check string) "roundtrip value" "x<y&z" (Xml_tree.string_value back)

let test_parse_roundtrip () =
  let src = {|<a k="v"><b>hello</b><c><d/>!</c></a>|} in
  let d = Xml_parse.document src in
  Alcotest.(check string) "parse-serialize identity" src (Xml_tree.serialize d)

let test_parse_misc () =
  let d =
    Xml_parse.document
      "<?xml version=\"1.0\"?>\n<!-- c --><a>\n  <b/> <!-- inner -->\n</a>"
  in
  Alcotest.(check string) "prolog and comments skipped" "<a><b/></a>"
    (Xml_tree.serialize d)

let test_parse_entities () =
  let d = Xml_parse.document "<a>&lt;&amp;&gt;&quot;&apos;&#65;</a>" in
  Alcotest.(check string) "entities" "<&>\"'A" (Xml_tree.string_value d)

let test_parse_cdata () =
  let d = Xml_parse.document {|<a>pre<![CDATA[1 < 2 & "raw"]]>post</a>|} in
  Alcotest.(check string) "cdata merges with text" {|pre1 < 2 & "raw"post|}
    (Xml_tree.string_value d);
  Alcotest.(check int) "one text node" 1 (List.length d.Xml_tree.children);
  (* The classic "]]>" escape: split across two CDATA sections. *)
  let d = Xml_parse.document "<a><![CDATA[x]]]]><![CDATA[>y]]></a>" in
  Alcotest.(check string) "]]> via split sections" "x]]>y" (Xml_tree.string_value d)

let test_parse_unicode_refs () =
  let d = Xml_parse.document "<a>&#x2603;&#233;&#x1D11E;</a>" in
  Alcotest.(check string) "2/3/4-byte UTF-8 output"
    "\xE2\x98\x83\xC3\xA9\xF0\x9D\x84\x9E" (Xml_tree.string_value d);
  let d = Xml_parse.document {|<a k="&#xB0;"/>|} in
  Alcotest.(check string) "refs in attribute values" "\xC2\xB0"
    (Xml_tree.string_value (Option.get (Xml_tree.attribute_node d "k")));
  let bad s =
    match Xml_parse.document s with
    | exception Xml_parse.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "surrogate rejected" true (bad "<a>&#xD800;</a>");
  Alcotest.(check bool) "past Unicode rejected" true (bad "<a>&#x110000;</a>");
  Alcotest.(check bool) "NUL rejected" true (bad "<a>&#0;</a>");
  Alcotest.(check bool) "underscored digits rejected" true (bad "<a>&#2_0;</a>");
  Alcotest.(check bool) "negative rejected" true (bad "<a>&#-33;</a>")

let test_parse_doctype_subset () =
  let d =
    Xml_parse.document
      {|<!DOCTYPE a [ <!ELEMENT a (b*)> <!ENTITY x "1>2"> <!-- ]> --> ]><a><b/></a>|}
  in
  Alcotest.(check string) "internal subset with > skipped" "<a><b/></a>"
    (Xml_tree.serialize d);
  match Xml_parse.document "<!DOCTYPE a [ <!ELEMENT a (b*)> <a/>" with
  | exception Xml_parse.Parse_error _ -> ()
  | _ -> Alcotest.fail "unterminated doctype accepted"

let test_parse_pi () =
  let d = Xml_parse.document {|<?xml version="1.0"?><?pi data="a>b" q='?>'?><a>x<?mid s="?>"?>y</a>|} in
  Alcotest.(check string) "quote-aware PI skipping" "<a>xy</a>"
    (Xml_tree.serialize d);
  Alcotest.(check int) "text around PI merges" 1 (List.length d.Xml_tree.children)

let test_error_positions () =
  let pos s =
    match Xml_parse.document s with
    | exception Xml_parse.Parse_error m -> m
    | _ -> Alcotest.fail "expected a parse error"
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let m = pos "<a>\n  <b>\n</c></a>" in
  Alcotest.(check bool) ("line tracked in: " ^ m) true (contains m "line 3");
  let m = pos "<a>&nope;</a>" in
  Alcotest.(check bool) ("column tracked in: " ^ m) true
    (contains m "line 1, column 10")

let test_parse_fragment () =
  let f = Xml_parse.fragment "<a/><b>x</b>" in
  Alcotest.(check int) "two roots" 2 (List.length f)

let test_parse_errors () =
  let bad s =
    match Xml_parse.document s with
    | exception Xml_parse.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "mismatched tag" true (bad "<a></b>");
  Alcotest.(check bool) "unterminated" true (bad "<a>");
  Alcotest.(check bool) "trailing garbage" true (bad "<a/>junk");
  Alcotest.(check bool) "bad entity" true (bad "<a>&nope;</a>")

let test_serialized_size =
  Tutil.qtest ~count:100 "serialized_size matches serialize length" Tutil.arb_doc
    (fun d -> Xml_tree.serialized_size d = String.length (Xml_tree.serialize d))

let test_roundtrip_random =
  Tutil.qtest ~count:100 "parse(serialize(d)) = d (modulo whitespace)" Tutil.arb_doc
    (fun d ->
      let s = Xml_tree.serialize d in
      Xml_tree.serialize (Xml_parse.document s) = s)

(* The fuzz oracle's rich generator (entities, CDATA-worthy text,
   multi-byte UTF-8, mixed content) doubles as a QCheck generator; on
   its canonical trees the round trip is the identity node-for-node. *)
let test_roundtrip_rich =
  Tutil.qtest ~count:500 "parse(serialize(t)) = t on rich trees"
    (QCheck.make Fuzz_oracle.random_document ~print:Xml_tree.serialize)
    (fun t -> Xml_tree.equal t (Xml_parse.document (Xml_tree.serialize t)))

let () =
  Alcotest.run "xml"
    [
      ( "tree",
        [
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "string_value" `Quick test_string_value;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "append/remove" `Quick test_append_remove;
          Alcotest.test_case "copy" `Quick test_copy;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "serialize" `Quick test_serialize;
          Alcotest.test_case "escaping" `Quick test_escaping;
          test_serialized_size;
        ] );
      ( "parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "prolog/comments" `Quick test_parse_misc;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "CDATA" `Quick test_parse_cdata;
          Alcotest.test_case "unicode references" `Quick test_parse_unicode_refs;
          Alcotest.test_case "doctype internal subset" `Quick
            test_parse_doctype_subset;
          Alcotest.test_case "processing instructions" `Quick test_parse_pi;
          Alcotest.test_case "error positions" `Quick test_error_positions;
          Alcotest.test_case "fragment" `Quick test_parse_fragment;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          test_roundtrip_random;
          test_roundtrip_rich;
        ] );
    ]
