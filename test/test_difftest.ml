(* The differential maintenance oracle under test: bounded seeded runs
   must be clean, the replay pipeline must be lossless, degenerate
   updates must leave all three engines in agreement, an intentionally
   broken engine must be caught and shrunk to a tiny reproducer, and
   the three engines must agree tuple-for-tuple on every XMark
   view/update pair of the paper's evaluation. *)

(* {1 Bounded seeded run} *)

let test_bounded_run () =
  let r = Difftest.run ~seed:7 ~iters:400 () in
  List.iter print_endline r.Qgen.failures;
  Alcotest.(check int) "iterations" 400 r.Qgen.iterations;
  Alcotest.(check int) "mismatches" 0 r.Qgen.failed

(* The multi-view set oracle: batched [View_set.update] against
   one-by-one propagation, with the [jobs = 2] cross-check against
   [jobs = 1] inside every iteration. *)
let test_bounded_set_run () =
  let r = Difftest.run_sets ~jobs:2 ~seed:7 ~iters:150 () in
  List.iter print_endline r.Qgen.failures;
  Alcotest.(check int) "iterations" 150 r.Qgen.iterations;
  Alcotest.(check int) "mismatches" 0 r.Qgen.failed

(* The heavy-light oracle: adaptive (deferred, partitioned) maintenance
   against eager, tuple-for-tuple at every seeded read point, under
   deliberately tiny thresholds that force rebalance storms and budget
   drains. *)
let test_bounded_heavy_run () =
  let r = Difftest.run_heavy ~seed:7 ~iters:150 () in
  List.iter print_endline r.Qgen.failures;
  Alcotest.(check int) "iterations" 150 r.Qgen.iterations;
  Alcotest.(check int) "mismatches" 0 r.Qgen.failed

let test_heavy_repro_roundtrip () =
  let rnd = Random.State.make [| 0x4ea7; 29 |] in
  for _ = 1 to 50 do
    let c = Difftest.gen_heavy_case rnd in
    let c' = Difftest.heavy_of_repro (Difftest.repro_of_heavy c) in
    Alcotest.(check int) "view count preserved"
      (List.length c.Difftest.hc_set.Difftest.sviews)
      (List.length c'.Difftest.hc_set.Difftest.sviews);
    Alcotest.(check (list string)) "statements preserved" c.Difftest.hc_stmts
      c'.Difftest.hc_stmts;
    Alcotest.(check (list (pair int int))) "read points preserved"
      c.Difftest.hc_reads c'.Difftest.hc_reads;
    Alcotest.(check (list int)) "thresholds preserved"
      [ c.Difftest.hc_count; c.Difftest.hc_fanout; c.Difftest.hc_budget;
        c.Difftest.hc_tailb ]
      [ c'.Difftest.hc_count; c'.Difftest.hc_fanout; c'.Difftest.hc_budget;
        c'.Difftest.hc_tailb ];
    Alcotest.(check string) "document preserved"
      (Xml_tree.serialize c.Difftest.hc_set.Difftest.sdoc)
      (Xml_tree.serialize c'.Difftest.hc_set.Difftest.sdoc)
  done;
  List.iter
    (fun s ->
      match Difftest.heavy_of_repro s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "malformed heavy reproducer %S accepted" s)
    [
      "";
      "xvmdth1|";
      "xvmdth1|7:1,2,3,4|0:|0|4:<a/>";
      "xvmdth1|8:0,2,3,4|0:|1|4://a|1|9:delete //a|4:<a/>";
    ]

let test_set_repro_roundtrip () =
  let rnd = Random.State.make [| 0x5e7; 13 |] in
  for _ = 1 to 50 do
    let t = Difftest.gen_set_triple rnd in
    let t' = Difftest.set_of_repro (Difftest.repro_of_set t) in
    Alcotest.(check int) "view count preserved"
      (List.length t.Difftest.sviews)
      (List.length t'.Difftest.sviews);
    List.iter2
      (fun a b ->
        Alcotest.(check string) "view preserved" (Pattern.to_string a)
          (Pattern.to_string b))
      t.Difftest.sviews t'.Difftest.sviews;
    Alcotest.(check string) "update preserved" t.Difftest.supdate
      t'.Difftest.supdate;
    Alcotest.(check string) "document preserved"
      (Xml_tree.serialize t.Difftest.sdoc)
      (Xml_tree.serialize t'.Difftest.sdoc)
  done

(* {1 Compact view syntax} *)

let compact_roundtrip pat =
  let s = Pattern.to_string pat in
  Pattern.to_string (Difftest.view_of_compact ~name:"rt" s) = s

let test_compact_examples () =
  List.iter
    (fun s ->
      let pat = Difftest.view_of_compact ~name:"ex" s in
      Alcotest.(check string) ("round-trip " ^ s) s (Pattern.to_string pat))
    [
      "//a";
      "/a{id}";
      "//a{id,val}";
      "//a[val='x y']{id}";
      "//site{id}[/people[//person[val='z']{id,cont}]][//item{id}]";
      "//*{id,cont}[/@k{id,val}]";
    ];
  List.iter
    (fun s ->
      match Difftest.view_of_compact ~name:"bad" s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "malformed %S accepted" s)
    [ ""; "a"; "//"; "//a{id"; "//a[val='x]"; "//a[b]"; "//a{id}junk" ]

let test_compact_qcheck =
  Tutil.qtest ~count:500 "view_of_compact inverts Pattern.to_string"
    Tutil.arb_pattern compact_roundtrip

(* {1 Reproducer round-trip} *)

let test_repro_roundtrip () =
  let rnd = Random.State.make [| 2718 |] in
  for _ = 1 to 200 do
    let t = Difftest.gen_triple rnd in
    let t' = Difftest.triple_of_repro (Difftest.repro_of_triple t) in
    Alcotest.(check string) "view survives" (Pattern.to_string t.Difftest.view)
      (Pattern.to_string t'.Difftest.view);
    Alcotest.(check string) "update survives" t.Difftest.update t'.Difftest.update;
    Alcotest.(check bool) "document survives" true
      (Xml_tree.equal t.Difftest.doc t'.Difftest.doc)
  done;
  List.iter
    (fun s ->
      match Difftest.triple_of_repro s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "malformed reproducer %S accepted" s)
    [
      "";
      "xvmdt1|";
      "xvmdt2|4://a|9:delete //a|4:<a/>";
      "xvmdt1|4://a|9:delete //a|5:<a/>";
      "xvmdt1|4://a|9:delete //a|4:<a/>|";
      "xvmdt1|99://a|9:delete //a|4:<a/>";
    ]

(* {1 Degenerate updates: all engines agree, known cardinality} *)

let known_case name ~doc ~view ~update ~cards () =
  let t =
    {
      Difftest.doc = Xml_parse.document doc;
      view = Difftest.view_of_compact ~name:"view" view;
      update;
    }
  in
  (match Difftest.check t with
  | None -> ()
  | Some m -> Alcotest.fail (Difftest.describe m));
  let mv =
    Difftest.recompute_engine.Difftest.eval
      (Xml_tree.copy t.Difftest.doc)
      t.Difftest.view (Update.parse update)
  in
  Alcotest.(check int) (name ^ " cardinality") cards (Mview.cardinality mv)

let degenerate_cases =
  List.map
    (fun (name, doc, view, update, cards) ->
      Alcotest.test_case name `Quick
        (known_case name ~doc ~view ~update ~cards))
    [
      (* empty target set: the update is a no-op *)
      ("empty target delete", "<a><b/><b/></a>", "//b{id}", "delete //zz", 2);
      ("empty target insert", "<a><b/></a>", "//b{id}", "insert into //zz <b/>", 1);
      (* root children *)
      ("insert under root", "<a><b/></a>", "//b{id}", "insert into /a <b/><b/>", 3);
      ("delete root child", "<a><b/><c><b/></c></a>", "//b{id}", "delete /a/c", 1);
      (* the document root itself *)
      ("delete root", "<a><b/></a>", "//b{id}", "delete /a", 0);
      (* nested/overlapping target subtrees *)
      ( "overlapping delete",
        "<a><b><b><c/></b></b><c/></a>",
        "//c{id}",
        "delete //b",
        1 );
      ( "nested insert targets",
        "<a><b><b/></b></a>",
        "//c{id}",
        "insert into //b <c/>",
        2 );
      (* same node bound at several view positions after one insert *)
      ("self-join insert", "<d/>", "/d[//d{id}][//d{id}]", "insert into //d <d/>", 1);
    ]

(* {1 An intentionally broken engine is caught and shrunk} *)

(* "Maintenance" that never maintains: it evaluates the view over the
   pre-update document and ignores the update entirely. *)
let broken_engine =
  {
    Difftest.ename = "frozen";
    eval =
      (fun doc pat _u -> Mview.materialize (Store.of_document doc) pat);
  }

let test_broken_engine_shrunk () =
  let engines = [ Difftest.recompute_engine; broken_engine ] in
  let rnd = Random.State.make [| 2024 |] in
  let rec find n =
    if n = 0 then Alcotest.fail "no mismatch against the broken engine in 300 triples"
    else
      let t = Difftest.gen_triple rnd in
      match Difftest.check ~engines t with Some m -> m | None -> find (n - 1)
  in
  let m = Difftest.shrink ~engines (find 300) in
  let cx = m.Difftest.cx in
  let nodes = Difftest.doc_nodes cx in
  if nodes > 5 then
    Alcotest.failf "shrunk reproducer still has %d nodes:\n%s" nodes
      (Difftest.describe m);
  (* The reproducer replays: same verdict after an encode/decode trip. *)
  let cx' = Difftest.triple_of_repro (Difftest.repro_of_triple cx) in
  Alcotest.(check bool) "replayed triple still fails the broken engine" true
    (Difftest.check ~engines cx' <> None);
  Alcotest.(check bool) "replayed triple passes the real engines" true
    (Difftest.check cx' = None);
  (* The report names both engines and carries the replay line. *)
  let d = Difftest.describe m in
  let contains needle =
    let nl = String.length needle and dl = String.length d in
    let rec at i = i + nl <= dl && (String.sub d i nl = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "describe mentions %S" needle)
        true (contains needle))
    [ "frozen"; "recompute"; "replay: xvmcli difftest --replay" ]

(* {1 XMark: all three engines agree on every paper pair} *)

let xmark_doc = lazy (Xmark_gen.document ~seed:11 ~target_kb:16)

let three_engines vname uname stmt () =
  let doc = Lazy.force xmark_doc in
  let pat = Xmark_views.find vname in
  let eval (e : Difftest.engine) = e.Difftest.eval (Xml_tree.copy doc) pat stmt in
  let ref_mv = eval Difftest.recompute_engine in
  List.iter
    (fun e ->
      match Recompute.diff (eval e) ref_mv with
      | None -> ()
      | Some d ->
        Alcotest.failf "%s vs recompute on %s/%s: %s" e.Difftest.ename vname
          uname d)
    [ Difftest.maint_engine; Difftest.ivma_engine ]

let xmark_cases =
  List.concat_map
    (fun (vname, uname) ->
      let u = Xmark_updates.find uname in
      [
        Alcotest.test_case
          (Printf.sprintf "%s + insert %s" vname uname)
          `Quick
          (three_engines vname uname (Xmark_updates.insert u));
        Alcotest.test_case
          (Printf.sprintf "%s + delete %s" vname uname)
          `Quick
          (three_engines vname uname (Xmark_updates.delete u));
      ])
    Xmark_updates.figure20_pairs

(* {1 Work-profile replay}

   [Difftest.work_profile] is the counter profile of checking a triple.
   It must be a pure function of the triple and engine list: replaying
   the same seed -- directly or through the reproducer codec -- performs
   byte-for-byte the same work. This is what makes the "work:" line of a
   shrunk counterexample report trustworthy as a reproduction recipe. *)
let test_work_profile_replay () =
  let rnd = Random.State.make [| 0xd1ff; 42 |] in
  for _ = 1 to 5 do
    let t = Difftest.gen_triple rnd in
    let p1 = Difftest.work_profile t in
    Alcotest.(check bool) "checking a triple counts some work" true (p1 <> []);
    Alcotest.(check (list (pair string int))) "second run, same work" p1
      (Difftest.work_profile t);
    let t' = Difftest.triple_of_repro (Difftest.repro_of_triple t) in
    Alcotest.(check (list (pair string int)))
      "replay through the reproducer codec, same work" p1
      (Difftest.work_profile t')
  done

(* A mismatch carries the work profile of the failing check, and
   [describe] prints it. *)
let test_mismatch_carries_work () =
  let engines = [ Difftest.recompute_engine; broken_engine ] in
  let rnd = Random.State.make [| 0xd1ff; 43 |] in
  (* Not every random triple exposes the frozen engine (a no-op update
     doesn't); scan until one does. *)
  let rec find n =
    if n = 0 then Alcotest.fail "broken engine not caught in 100 triples"
    else
      let t = Difftest.gen_triple rnd in
      match Difftest.check ~engines t with Some m -> m | None -> find (n - 1)
  in
  (match find 100 with
  | m ->
    Alcotest.(check bool) "mismatch has a work profile" true (m.Difftest.work <> []);
    let d = Difftest.describe m in
    let needle = "\n  work:   " in
    let nl = String.length needle and dl = String.length d in
    let rec at i = i + nl <= dl && (String.sub d i nl = needle || at (i + 1)) in
    Alcotest.(check bool) "describe prints the work line" true (at 0))

let () =
  Alcotest.run "difftest"
    [
      ( "oracle",
        [
          Alcotest.test_case "bounded seeded run is clean" `Quick test_bounded_run;
          Alcotest.test_case "bounded multi-view set run is clean" `Quick
            test_bounded_set_run;
          Alcotest.test_case "bounded heavy-light run is clean" `Quick
            test_bounded_heavy_run;
          Alcotest.test_case "work profile replays identically" `Quick
            test_work_profile_replay;
          Alcotest.test_case "mismatch carries its work profile" `Quick
            test_mismatch_carries_work;
        ] );
      ( "replay",
        [
          Alcotest.test_case "compact view syntax examples" `Quick
            test_compact_examples;
          test_compact_qcheck;
          Alcotest.test_case "reproducer encode/decode round-trip" `Quick
            test_repro_roundtrip;
          Alcotest.test_case "set reproducer encode/decode round-trip" `Quick
            test_set_repro_roundtrip;
          Alcotest.test_case "heavy reproducer encode/decode round-trip" `Quick
            test_heavy_repro_roundtrip;
        ] );
      ("degenerate updates", degenerate_cases);
      ( "shrinker",
        [
          Alcotest.test_case "broken engine caught, shrunk to ≤5 nodes" `Quick
            test_broken_engine_shrunk;
        ] );
      ("xmark three-engine agreement", xmark_cases);
    ]
