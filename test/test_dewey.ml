(* Unit and property tests for the dynamic Dewey identifiers. *)

let ord = QCheck.Gen.(map Array.of_list (list_size (int_range 1 4) (int_range (-3) 5)))

let arb_ord =
  QCheck.make ord ~print:(fun o ->
      String.concat "_" (Array.to_list (Array.map string_of_int o)))

let arb_ord_pair = QCheck.pair arb_ord arb_ord

(* A small random identifier builder. *)
let gen_id =
  QCheck.Gen.(
    let* depth = int_range 1 5 in
    let rec build i acc =
      if i >= depth then pure acc
      else
        let* lab = int_range 0 6 in
        let* o = ord in
        build (i + 1) (Dewey.child acc ~lab ~ord:o)
    in
    let* root_lab = int_range 0 6 in
    build 1 (Dewey.root ~lab:root_lab))

let arb_id = QCheck.make gen_id ~print:(fun id -> Dewey.to_string id)

let test_ord_between =
  Tutil.qtest "Ord.between is strictly between" arb_ord_pair (fun (a, b) ->
      let c = Dewey.Ord.compare a b in
      QCheck.assume (c <> 0);
      let lo, hi = if c < 0 then (a, b) else (b, a) in
      let m = Dewey.Ord.between lo hi in
      Dewey.Ord.compare lo m < 0 && Dewey.Ord.compare m hi < 0)

let test_ord_after_before =
  Tutil.qtest "Ord.after/before bracket their input" arb_ord (fun o ->
      Dewey.Ord.compare o (Dewey.Ord.after o) < 0
      && Dewey.Ord.compare (Dewey.Ord.before o) o < 0)

let test_codec =
  Tutil.qtest "encode/decode roundtrip" arb_id (fun id ->
      Dewey.equal (Dewey.decode (Dewey.encode id)) id)

let test_codec_injective =
  Tutil.qtest "distinct ids encode distinctly" (QCheck.pair arb_id arb_id)
    (fun (a, b) ->
      QCheck.assume (not (Dewey.equal a b));
      Dewey.encode a <> Dewey.encode b)

let test_parent_ancestor =
  Tutil.qtest "child/parent/ancestor coherence" arb_id (fun id ->
      let c = Dewey.child id ~lab:3 ~ord:Dewey.Ord.first in
      Dewey.is_parent id c
      && Dewey.is_ancestor id c
      && Dewey.is_ancestor_or_self id c
      && Dewey.is_ancestor_or_self id id
      && (not (Dewey.is_ancestor id id))
      && (match Dewey.parent c with Some p -> Dewey.equal p id | None -> false)
      && Dewey.compare id c < 0)

let test_order_total =
  Tutil.qtest "document order is antisymmetric" (QCheck.pair arb_id arb_id)
    (fun (a, b) ->
      let c1 = Dewey.compare a b and c2 = Dewey.compare b a in
      if Dewey.equal a b then c1 = 0 && c2 = 0 else c1 = -c2 && c1 <> 0)

let test_siblings_order () =
  let p = Dewey.root ~lab:0 in
  let o1 = Dewey.Ord.first in
  let o2 = Dewey.Ord.after o1 in
  let mid = Dewey.Ord.between o1 o2 in
  let c1 = Dewey.child p ~lab:1 ~ord:o1 in
  let c2 = Dewey.child p ~lab:1 ~ord:o2 in
  let cm = Dewey.child p ~lab:1 ~ord:mid in
  Alcotest.(check bool) "c1 < cm" true (Dewey.compare c1 cm < 0);
  Alcotest.(check bool) "cm < c2" true (Dewey.compare cm c2 < 0);
  Alcotest.(check bool) "siblings are not ancestors" false (Dewey.is_ancestor c1 c2)

let test_label_path () =
  let id =
    Dewey.child (Dewey.child (Dewey.root ~lab:5) ~lab:2 ~ord:[| 1 |]) ~lab:9 ~ord:[| 4 |]
  in
  Alcotest.(check (array int)) "label path" [| 5; 2; 9 |] (Dewey.label_path id);
  Alcotest.(check int) "own label" 9 (Dewey.label id);
  Alcotest.(check int) "depth" 3 (Dewey.depth id);
  Alcotest.(check bool) "has ancestor 5" true (Dewey.has_ancestor_label id ~lab:5);
  Alcotest.(check bool) "has ancestor 2" true (Dewey.has_ancestor_label id ~lab:2);
  Alcotest.(check bool) "self label needs ~self" false (Dewey.has_ancestor_label id ~lab:9);
  Alcotest.(check bool) "self label with ~self" true
    (Dewey.has_ancestor_label ~self:true id ~lab:9)

let test_ancestors () =
  let a = Dewey.root ~lab:0 in
  let b = Dewey.child a ~lab:1 ~ord:[| 1 |] in
  let c = Dewey.child b ~lab:2 ~ord:[| 2 |] in
  let ancs = Dewey.ancestors c in
  Alcotest.(check int) "two ancestors" 2 (List.length ancs);
  Alcotest.(check bool) "root first" true (Dewey.equal (List.nth ancs 0) a);
  Alcotest.(check bool) "then parent" true (Dewey.equal (List.nth ancs 1) b)

let test_no_relabel () =
  (* Inserting between any two adjacent siblings never requires touching
     existing identifiers: fresh ordinals keep fitting. *)
  let p = Dewey.root ~lab:0 in
  let o1 = ref Dewey.Ord.first in
  let o2 = ref (Dewey.Ord.after !o1) in
  for _ = 1 to 64 do
    let m = Dewey.Ord.between !o1 !o2 in
    assert (Dewey.Ord.compare !o1 m < 0 && Dewey.Ord.compare m !o2 < 0);
    o2 := m
  done;
  Alcotest.(check bool) "still ordered" true
    (Dewey.compare (Dewey.child p ~lab:1 ~ord:!o1) (Dewey.child p ~lab:1 ~ord:!o2) < 0)

let test_decode_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Dewey.decode: empty") (fun () ->
      ignore (Dewey.decode "\x00"));
  Alcotest.check_raises "overdeclared steps"
    (Invalid_argument "Dewey.decode: step count exceeds input") (fun () ->
      ignore (Dewey.decode "\x02\x01"));
  Alcotest.check_raises "truncated" (Invalid_argument "Dewey.decode: truncated")
    (fun () -> ignore (Dewey.decode "\x01\x01"));
  (* Ten continuation bytes would shift past the 63-bit range; the codec
     must fail rather than decode an unspecified value. *)
  Alcotest.check_raises "varint overflow"
    (Invalid_argument "Dewey.decode: varint overflow") (fun () ->
      ignore (Dewey.decode (String.make 10 '\xff')))

let () =
  Alcotest.run "dewey"
    [
      ( "ordinals",
        [
          test_ord_between;
          test_ord_after_before;
          Alcotest.test_case "sibling insertion order" `Quick test_siblings_order;
          Alcotest.test_case "no relabeling under splits" `Quick test_no_relabel;
        ] );
      ( "structure",
        [
          test_parent_ancestor;
          test_order_total;
          Alcotest.test_case "label paths" `Quick test_label_path;
          Alcotest.test_case "ancestors" `Quick test_ancestors;
        ] );
      ( "codec",
        [
          test_codec;
          test_codec_injective;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
        ] );
    ]
