(* Unit and property tests for the dynamic Dewey identifiers. *)

let ord = QCheck.Gen.(map Array.of_list (list_size (int_range 1 4) (int_range (-3) 5)))

let arb_ord =
  QCheck.make ord ~print:(fun o ->
      String.concat "_" (Array.to_list (Array.map string_of_int o)))

let arb_ord_pair = QCheck.pair arb_ord arb_ord

(* A small random identifier builder. *)
let gen_id =
  QCheck.Gen.(
    let* depth = int_range 1 5 in
    let rec build i acc =
      if i >= depth then pure acc
      else
        let* lab = int_range 0 6 in
        let* o = ord in
        build (i + 1) (Dewey.child acc ~lab ~ord:o)
    in
    let* root_lab = int_range 0 6 in
    build 1 (Dewey.root ~lab:root_lab))

let arb_id = QCheck.make gen_id ~print:(fun id -> Dewey.to_string id)

let test_ord_between =
  Tutil.qtest "Ord.between is strictly between" arb_ord_pair (fun (a, b) ->
      let c = Dewey.Ord.compare a b in
      QCheck.assume (c <> 0);
      let lo, hi = if c < 0 then (a, b) else (b, a) in
      let m = Dewey.Ord.between lo hi in
      Dewey.Ord.compare lo m < 0 && Dewey.Ord.compare m hi < 0)

let test_ord_after_before =
  Tutil.qtest "Ord.after/before bracket their input" arb_ord (fun o ->
      Dewey.Ord.compare o (Dewey.Ord.after o) < 0
      && Dewey.Ord.compare (Dewey.Ord.before o) o < 0)

let test_codec =
  Tutil.qtest "encode/decode roundtrip" arb_id (fun id ->
      Dewey.equal (Dewey.decode (Dewey.encode id)) id)

let test_codec_injective =
  Tutil.qtest "distinct ids encode distinctly" (QCheck.pair arb_id arb_id)
    (fun (a, b) ->
      QCheck.assume (not (Dewey.equal a b));
      Dewey.encode a <> Dewey.encode b)

let test_parent_ancestor =
  Tutil.qtest "child/parent/ancestor coherence" arb_id (fun id ->
      let c = Dewey.child id ~lab:3 ~ord:Dewey.Ord.first in
      Dewey.is_parent id c
      && Dewey.is_ancestor id c
      && Dewey.is_ancestor_or_self id c
      && Dewey.is_ancestor_or_self id id
      && (not (Dewey.is_ancestor id id))
      && (match Dewey.parent c with Some p -> Dewey.equal p id | None -> false)
      && Dewey.compare id c < 0)

let test_order_total =
  Tutil.qtest "document order is antisymmetric" (QCheck.pair arb_id arb_id)
    (fun (a, b) ->
      let c1 = Dewey.compare a b and c2 = Dewey.compare b a in
      if Dewey.equal a b then c1 = 0 && c2 = 0 else c1 = -c2 && c1 <> 0)

let test_siblings_order () =
  let p = Dewey.root ~lab:0 in
  let o1 = Dewey.Ord.first in
  let o2 = Dewey.Ord.after o1 in
  let mid = Dewey.Ord.between o1 o2 in
  let c1 = Dewey.child p ~lab:1 ~ord:o1 in
  let c2 = Dewey.child p ~lab:1 ~ord:o2 in
  let cm = Dewey.child p ~lab:1 ~ord:mid in
  Alcotest.(check bool) "c1 < cm" true (Dewey.compare c1 cm < 0);
  Alcotest.(check bool) "cm < c2" true (Dewey.compare cm c2 < 0);
  Alcotest.(check bool) "siblings are not ancestors" false (Dewey.is_ancestor c1 c2)

let test_label_path () =
  let id =
    Dewey.child (Dewey.child (Dewey.root ~lab:5) ~lab:2 ~ord:[| 1 |]) ~lab:9 ~ord:[| 4 |]
  in
  Alcotest.(check (array int)) "label path" [| 5; 2; 9 |] (Dewey.label_path id);
  Alcotest.(check int) "own label" 9 (Dewey.label id);
  Alcotest.(check int) "depth" 3 (Dewey.depth id);
  Alcotest.(check bool) "has ancestor 5" true (Dewey.has_ancestor_label id ~lab:5);
  Alcotest.(check bool) "has ancestor 2" true (Dewey.has_ancestor_label id ~lab:2);
  Alcotest.(check bool) "self label needs ~self" false (Dewey.has_ancestor_label id ~lab:9);
  Alcotest.(check bool) "self label with ~self" true
    (Dewey.has_ancestor_label ~self:true id ~lab:9)

let test_ancestors () =
  let a = Dewey.root ~lab:0 in
  let b = Dewey.child a ~lab:1 ~ord:[| 1 |] in
  let c = Dewey.child b ~lab:2 ~ord:[| 2 |] in
  let ancs = Dewey.ancestors c in
  Alcotest.(check int) "two ancestors" 2 (List.length ancs);
  Alcotest.(check bool) "root first" true (Dewey.equal (List.nth ancs 0) a);
  Alcotest.(check bool) "then parent" true (Dewey.equal (List.nth ancs 1) b)

let test_no_relabel () =
  (* Inserting between any two adjacent siblings never requires touching
     existing identifiers: fresh ordinals keep fitting. *)
  let p = Dewey.root ~lab:0 in
  let o1 = ref Dewey.Ord.first in
  let o2 = ref (Dewey.Ord.after !o1) in
  for _ = 1 to 64 do
    let m = Dewey.Ord.between !o1 !o2 in
    assert (Dewey.Ord.compare !o1 m < 0 && Dewey.Ord.compare m !o2 < 0);
    o2 := m
  done;
  Alcotest.(check bool) "still ordered" true
    (Dewey.compare (Dewey.child p ~lab:1 ~ord:!o1) (Dewey.child p ~lab:1 ~ord:!o2) < 0)

(* Deep ordinals: repeated sibling splits grow ordinal sequences well
   past the shallow 1–4 range above; the codec and the ordering must not
   degrade there. *)
let ord_deep =
  QCheck.Gen.(map Array.of_list (list_size (int_range 9 14) (int_range (-70) 70)))

let arb_ord_deep =
  QCheck.make ord_deep ~print:(fun o ->
      String.concat "_" (Array.to_list (Array.map string_of_int o)))

let gen_id_deep =
  QCheck.Gen.(
    let* depth = int_range 1 4 in
    let rec build i acc =
      if i >= depth then pure acc
      else
        let* lab = int_range 0 200 in
        let* o = ord_deep in
        build (i + 1) (Dewey.child acc ~lab ~ord:o)
    in
    let* root_lab = int_range 0 6 in
    build 1 (Dewey.root ~lab:root_lab))

let arb_id_deep = QCheck.make gen_id_deep ~print:(fun id -> Dewey.to_string id)

let arb_id_any =
  QCheck.make
    QCheck.Gen.(oneof [ gen_id; gen_id_deep ])
    ~print:(fun id -> Dewey.to_string id)

let test_ord_between_deep =
  Tutil.qtest "Ord.between is strictly between (deep ordinals)"
    (QCheck.pair arb_ord_deep arb_ord_deep) (fun (a, b) ->
      let c = Dewey.Ord.compare a b in
      QCheck.assume (c <> 0);
      let lo, hi = if c < 0 then (a, b) else (b, a) in
      let m = Dewey.Ord.between lo hi in
      Dewey.Ord.compare lo m < 0 && Dewey.Ord.compare m hi < 0)

let test_ord_after_before_deep =
  Tutil.qtest "Ord.after/before bracket their input (deep ordinals)" arb_ord_deep
    (fun o ->
      Dewey.Ord.compare o (Dewey.Ord.after o) < 0
      && Dewey.Ord.compare (Dewey.Ord.before o) o < 0)

let test_codec_deep =
  Tutil.qtest "encode/decode roundtrip at ordinal depth > 8" arb_id_deep (fun id ->
      Dewey.equal (Dewey.decode (Dewey.encode id)) id)

(* Known answers at the varint byte boundaries. Layout: varint step
   count, then per step varint label, varint ordinal length, zig-zag
   varint ordinals. Zig-zag maps 63→126 and -64→127 (the last one-byte
   values), 64→128 and -65→129 (the first two-byte ones), and
   8192→16384 (the first three-byte one). *)
let test_codec_known () =
  let enc lab o = Dewey.encode (Dewey.of_steps [| { Dewey.lab; ord = [| o |] } |]) in
  let check name want lab o =
    Alcotest.(check string) name want (enc lab o);
    Alcotest.(check bool) (name ^ " decodes back") true
      (Dewey.equal (Dewey.decode want)
         (Dewey.of_steps [| { Dewey.lab; ord = [| o |] } |]))
  in
  check "ord 0" "\x01\x00\x01\x00" 0 0;
  check "ord 63: last 1-byte positive" "\x01\x00\x01\x7e" 0 63;
  check "ord 64: first 2-byte positive" "\x01\x00\x01\x80\x01" 0 64;
  check "ord -64: last 1-byte negative" "\x01\x00\x01\x7f" 0 (-64);
  check "ord -65: first 2-byte negative" "\x01\x00\x01\x81\x01" 0 (-65);
  check "ord 8191: last 2-byte" "\x01\x00\x01\xfe\x7f" 0 8191;
  check "ord 8192: first 3-byte" "\x01\x00\x01\x80\x80\x01" 0 8192;
  check "label 127: last 1-byte (not zig-zagged)" "\x01\x7f\x01\x00" 127 0;
  check "label 128: first 2-byte" "\x01\x80\x01\x01\x00" 128 0

let test_decode_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Dewey.decode: empty") (fun () ->
      ignore (Dewey.decode "\x00"));
  Alcotest.check_raises "overdeclared steps"
    (Invalid_argument "Dewey.decode: step count exceeds input") (fun () ->
      ignore (Dewey.decode "\x02\x01"));
  Alcotest.check_raises "truncated" (Invalid_argument "Dewey.decode: truncated")
    (fun () -> ignore (Dewey.decode "\x01\x01"));
  (* Ten continuation bytes would shift past the 63-bit range; the codec
     must fail rather than decode an unspecified value. *)
  Alcotest.check_raises "varint overflow"
    (Invalid_argument "Dewey.decode: varint overflow") (fun () ->
      ignore (Dewey.decode (String.make 10 '\xff')))

(* {1 Intern arena}

   The arena's int-arithmetic predicates must agree with the boxed
   reference implementation on arbitrary identifiers, and interning
   must be canonical (same id, same handle) and closed under parents. *)

let test_arena_agrees =
  Tutil.qtest "arena predicates agree with Dewey" (QCheck.pair arb_id_any arb_id_any)
    (fun (x, y) ->
      let a = Dewey_arena.create () in
      let hx = Dewey_arena.intern a x and hy = Dewey_arena.intern a y in
      let sgn c = compare c 0 in
      sgn (Dewey_arena.compare a hx hy) = sgn (Dewey.compare x y)
      && Dewey_arena.is_prefix a hx hy = Dewey.is_ancestor_or_self x y
      && Dewey_arena.is_ancestor a hx hy = Dewey.is_ancestor x y
      && Dewey_arena.is_parent a hx hy = Dewey.is_parent x y)

let test_arena_canonical =
  Tutil.qtest "interning is canonical and parent-closed" arb_id_any (fun id ->
      let a = Dewey_arena.create () in
      let h = Dewey_arena.intern a id in
      Dewey_arena.intern a id = h
      && Dewey.equal (Dewey_arena.to_dewey a h) id
      && Dewey_arena.depth a h = Dewey.depth id
      && Dewey_arena.label a h = Dewey.label id
      && (match Dewey.parent id with
         | None -> Dewey_arena.parent a h = -1
         | Some p -> (
           match Dewey_arena.find a p with
           | Some hp -> Dewey_arena.parent a h = hp
           | None -> false)))

let test_arena_sorts_like_dewey =
  Tutil.qtest "arena sort order = Dewey sort order"
    (QCheck.list_of_size (QCheck.Gen.int_range 2 20) arb_id_any) (fun ids ->
      let a = Dewey_arena.create () in
      let hs = List.map (Dewey_arena.intern a) ids in
      let by_id = List.sort Dewey.compare ids in
      let by_handle =
        List.map (Dewey_arena.to_dewey a)
          (List.sort (Dewey_arena.compare a) hs)
      in
      List.for_all2 Dewey.equal by_id by_handle)

let test_arena_ancestor_at () =
  let a = Dewey_arena.create () in
  let i1 = Dewey.root ~lab:3 in
  let i2 = Dewey.child i1 ~lab:5 ~ord:[| 1; -2 |] in
  let i3 = Dewey.child i2 ~lab:7 ~ord:[| 4 |] in
  let h3 = Dewey_arena.intern a i3 in
  (* Closure: ancestors were interned along the way. *)
  Alcotest.(check int) "three ids interned" 3 (Dewey_arena.size a);
  let h2 = Dewey_arena.ancestor_at a h3 2 in
  let h1 = Dewey_arena.ancestor_at a h3 1 in
  Alcotest.(check bool) "depth-2 ancestor" true
    (Dewey.equal (Dewey_arena.to_dewey a h2) i2);
  Alcotest.(check bool) "depth-1 ancestor" true
    (Dewey.equal (Dewey_arena.to_dewey a h1) i1);
  Alcotest.(check int) "root parent is -1" (-1) (Dewey_arena.parent a h1);
  Alcotest.(check bool) "is_prefix root of leaf" true (Dewey_arena.is_prefix a h1 h3);
  Alcotest.(check bool) "leaf not prefix of root" false
    (Dewey_arena.is_prefix a h3 h1)

let () =
  Alcotest.run "dewey"
    [
      ( "ordinals",
        [
          test_ord_between;
          test_ord_after_before;
          test_ord_between_deep;
          test_ord_after_before_deep;
          Alcotest.test_case "sibling insertion order" `Quick test_siblings_order;
          Alcotest.test_case "no relabeling under splits" `Quick test_no_relabel;
        ] );
      ( "structure",
        [
          test_parent_ancestor;
          test_order_total;
          Alcotest.test_case "label paths" `Quick test_label_path;
          Alcotest.test_case "ancestors" `Quick test_ancestors;
        ] );
      ( "codec",
        [
          test_codec;
          test_codec_injective;
          test_codec_deep;
          Alcotest.test_case "varint known answers" `Quick test_codec_known;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
        ] );
      ( "arena",
        [
          test_arena_agrees;
          test_arena_canonical;
          test_arena_sorts_like_dewey;
          Alcotest.test_case "ancestor navigation" `Quick test_arena_ancestor_at;
        ] );
    ]
