(* The answering subsystem under test: the containment checker against
   brute-force homomorphism enumeration (with semantic witness replay
   through [Embed]), the rewriting planner's three plan shapes on
   handcrafted views, the seeded answer-from-views and independence
   differential oracles, and the static independence analysis on
   authored DTDs. *)

let doc_of = Xml_parse.document

let compact = Difftest.view_of_compact

(* {1 Containment vs brute force} *)

(* Small patterns: a root with at most three descendants over a tiny
   alphabet, so exhaustive map enumeration stays trivial (<= 4^4). *)
let gen_small_pattern =
  let open QCheck.Gen in
  let label = frequency [ (4, oneofl [ "a"; "b"; "c" ]); (1, pure "*") ] in
  let axis = oneofl [ Pattern.Child; Pattern.Descendant ] in
  let vpred =
    frequency [ (4, pure None); (1, map (fun w -> Some w) (oneofl [ "x"; "y" ])) ]
  in
  let leaf =
    let* tag = label in
    let* ax = axis in
    let* vp = vpred in
    pure (Pattern.n ~axis:ax ~id:true ?vpred:vp tag [])
  in
  let* tag = label in
  let* ax = axis in
  let* vp = vpred in
  let* shape = int_range 0 3 in
  let* kids =
    match shape with
    | 0 -> pure []
    | 1 -> map (fun k -> [ k ]) leaf
    | 2 -> map (fun (a, b) -> [ a; b ]) (pair leaf leaf)
    | _ ->
      (* one nested chain: root -> mid -> leaf *)
      let* mid_tag = label in
      let* mid_ax = axis in
      let* l = leaf in
      pure [ Pattern.n ~axis:mid_ax ~id:true mid_tag [ l ] ]
  in
  pure (Pattern.compile ~name:"p" (Pattern.n ~axis:ax ~id:true ?vpred:vp tag kids))

let arb_small_pattern = QCheck.make gen_small_pattern ~print:Pattern.to_string

(* Independently-written validity predicate for a candidate map
   [h : p -> q] — the oracle the search is checked against. *)
let valid_hom (p : Pattern.t) (q : Pattern.t) h =
  let ok_tag general specific =
    general = specific
    || general = "*"
       && specific <> "#text"
       && not (String.length specific > 0 && specific.[0] = '@')
  in
  let strict_desc j anc =
    let rec up k = k >= 0 && (k = anc || up q.Pattern.parents.(k)) in
    j <> anc && up q.Pattern.parents.(j)
  in
  let ok = ref true in
  for i = 0 to Pattern.node_count p - 1 do
    let j = h.(i) in
    if not (ok_tag p.Pattern.tags.(i) q.Pattern.tags.(j)) then ok := false;
    (match p.Pattern.vpreds.(i) with
    | None -> ()
    | Some c -> if q.Pattern.vpreds.(j) <> Some c then ok := false);
    if i = 0 then begin
      if
        p.Pattern.axes.(0) = Pattern.Child
        && not (j = 0 && q.Pattern.axes.(0) = Pattern.Child)
      then ok := false
    end
    else begin
      let pj = h.(p.Pattern.parents.(i)) in
      match p.Pattern.axes.(i) with
      | Pattern.Child ->
        if not (q.Pattern.parents.(j) = pj && q.Pattern.axes.(j) = Pattern.Child)
        then ok := false
      | Pattern.Descendant -> if not (strict_desc j pj) then ok := false
    end
  done;
  !ok

(* Every map p -> q, exhaustively. *)
let all_maps np nq =
  let rec go i acc =
    if i = np then [ Array.of_list (List.rev acc) ]
    else
      List.concat (List.init nq (fun j -> go (i + 1) (j :: acc)))
  in
  go 0 []

let hom_set hs =
  List.sort compare (List.map Array.to_list hs)

let test_containment_vs_brute =
  QCheck.Test.make ~count:500 ~name:"homomorphisms = brute-force enumeration"
    (QCheck.pair arb_small_pattern arb_small_pattern)
    (fun (p, q) ->
      let got = hom_set (Containment.homomorphisms ~from:p ~into:q) in
      let want =
        hom_set
          (List.filter (valid_hom p q)
             (all_maps (Pattern.node_count p) (Pattern.node_count q)))
      in
      if got <> want then
        QCheck.Test.fail_reportf "checker %d maps, oracle %d maps"
          (List.length got) (List.length want);
      true)

(* Witness replay: a homomorphism [h : p -> q] composed with any document
   embedding of [q] must be a document embedding of [p]. *)
let test_containment_witness_replay =
  QCheck.Test.make ~count:300 ~name:"witness replay over random documents"
    (QCheck.triple Tutil.arb_doc arb_small_pattern arb_small_pattern)
    (fun (doc, p, q) ->
      match Containment.homomorphism ~from:p ~into:q with
      | None -> true
      | Some h ->
        let store = Store.of_document doc in
        let p_embs = Embed.embeddings store p in
        List.iter
          (fun eq ->
            let composed = Array.map (fun i -> eq.(i)) h in
            let mem =
              List.exists
                (fun ep ->
                  Array.length ep = Array.length composed
                  && Array.for_all2 Dewey.equal ep composed)
                p_embs
            in
            if not mem then
              QCheck.Test.fail_reportf
                "composed q-embedding is not a p-embedding (hom %s)"
                (String.concat ","
                   (List.map string_of_int (Array.to_list h))))
          (Embed.embeddings store q);
        true)

let test_contains_basics () =
  let p s = compact ~name:"p" s in
  Alcotest.(check bool) "//a contains /a" true
    (Containment.contains (p "//a{id}") (p "/a{id}"));
  Alcotest.(check bool) "/a does not contain //a" false
    (Containment.contains (p "/a{id}") (p "//a{id}"));
  Alcotest.(check bool) "star generalizes" true
    (Containment.contains (p "//*{id}") (p "//b{id}"));
  Alcotest.(check bool) "star never matches text" false
    (Containment.contains (p "//*{id}") (p "//#text{id}"));
  Alcotest.(check bool) "dropping a predicate generalizes" true
    (Containment.contains (p "//a{id}") (p "//a{id}[/b]"));
  Alcotest.(check bool) "vpred must be preserved" false
    (Containment.contains (p "//a[val='x']{id}") (p "//a{id}"))

(* {1 Answering plans on handcrafted views} *)

let tdoc = "<r><a><b>x</b></a><a><b>y</b><c>w</c></a><b>z</b></r>"

(* Each case: one store, the listed views materialized, the query
   answered, the plan's describe-prefix asserted, and the rows compared
   tuple-for-tuple against base recomputation. *)
let check_plan ~views ~query ~expect () =
  let store = Store.of_document (doc_of tdoc) in
  let set = View_set.create store in
  List.iteri
    (fun i s ->
      ignore (View_set.add set (compact ~name:(Printf.sprintf "v%d" i) s)))
    views;
  let q = compact ~name:"q" query in
  let sources = List.map Answer.source_of_mview (View_set.views set) in
  match Answer.answer ~store ~sources q with
  | None -> Alcotest.fail "no answer despite a store"
  | Some (plan, rows) ->
    let d = Answer.describe plan in
    if
      String.length d < String.length expect
      || String.sub d 0 (String.length expect) <> expect
    then Alcotest.failf "expected a %s… plan, got %s" expect d;
    (match Answer.diff ~expect:(Answer.base_rows store q) ~got:rows with
    | None -> ()
    | Some msg -> Alcotest.failf "views vs base: %s" msg)

let test_single_exact =
  check_plan ~views:[ "//a{id}[/b{id,val}]" ] ~query:"//a{id}[/b{id,val}]"
    ~expect:"single("

let test_single_val_eq =
  check_plan ~views:[ "//a{id}[/b{id,val}]" ]
    ~query:"//a{id}[/b[val='x']{id,val}]" ~expect:"single("

let test_single_child_of =
  check_plan ~views:[ "//r{id}[//b{id}]" ] ~query:"//r{id}[/b{id}]"
    ~expect:"single("

let test_single_root_at =
  check_plan ~views:[ "//r{id}" ] ~query:"/r{id}" ~expect:"single("

let test_single_projection =
  check_plan ~views:[ "//b{id,val,cont}" ] ~query:"//b{id}" ~expect:"single("

let test_count_merge =
  (* The query stores only [r]; the three [b] bindings must merge into
     one tuple of derivation count 3 on both sides. *)
  check_plan ~views:[ "//r{id}[//b{id}]" ] ~query:"//r{id}[//b]"
    ~expect:"single("

let test_no_weakening_match =
  (* A query [//] edge must not be answered from a view's stricter [/]
     edge: with only that view, the planner falls back. *)
  check_plan ~views:[ "//a{id}[/b{id}]" ] ~query:"//a{id}[//b{id}]"
    ~expect:"fallback("

let test_join () =
  (* The split node must carry a subtree, or the pruned top leg would
     already be the whole query and [single] legitimately wins. *)
  let q = compact ~name:"q" "//a{id}[/b{id}[/#text{id,val}]][/c{id}]" in
  let store = Store.of_document (doc_of tdoc) in
  let set = View_set.create store in
  ignore (View_set.add set (Pattern.prune q 1 ~name:"v0"));
  ignore (View_set.add set (Pattern.subpattern q 1 ~name:"v1"));
  let sources = List.map Answer.source_of_mview (View_set.views set) in
  match Answer.answer ~store ~sources q with
  | None -> Alcotest.fail "no answer despite a store"
  | Some (plan, rows) ->
    let d = Answer.describe plan in
    if String.length d < 5 || String.sub d 0 5 <> "join(" then
      Alcotest.failf "expected a join(… plan, got %s" d;
    (match Answer.diff ~expect:(Answer.base_rows store q) ~got:rows with
    | None -> ()
    | Some msg -> Alcotest.failf "views vs base: %s" msg)

let test_fallback = check_plan ~views:[ "//c{id}" ] ~query:"//b{id,val}" ~expect:"fallback("

(* [Root_at] rests on the document root having no Dewey parent. *)
let test_root_parent_none () =
  let store = Store.of_document (doc_of tdoc) in
  let rid = Store.id_of store (Store.root store) in
  Alcotest.(check bool) "root has no parent" true (Dewey.parent rid = None);
  match Xpath.eval (Store.root store) (Xpath.parse "//b") with
  | [] -> Alcotest.fail "no b nodes"
  | n :: _ ->
    Alcotest.(check bool) "non-root has a parent" true
      (Dewey.parent (Store.id_of store n) <> None)

(* {1 prune / subpattern} *)

let test_prune_subpattern () =
  let q = compact ~name:"q" "//a{id}[/b{id,val}[/d]][/c{id}]" in
  let top = Pattern.prune q 1 ~name:"t" in
  let bottom = Pattern.subpattern q 1 ~name:"s" in
  Alcotest.(check int) "prune drops b's subtree only" 3 (Pattern.node_count top);
  Alcotest.(check int) "subpattern keeps b's subtree" 2
    (Pattern.node_count bottom);
  Alcotest.(check bool) "subpattern root is //-anchored" true
    (bottom.Pattern.axes.(0) = Pattern.Descendant);
  Alcotest.(check bool) "split keeps its ID in the top leg" true
    top.Pattern.annots.(1).Pattern.store_id

(* Degenerate split points — the pattern root, a leaf, and a node that
   already stores a payload. The two legs re-enter the planner as views
   of the original query; whatever plan shape it picks (join, single
   with compensation, fallback), the rows must match base evaluation.
   Locks in the join-emit index fix for splits where one leg is trivial
   or the split node carries stored attributes. *)

let rec subtree_size q i =
  List.fold_left (fun acc c -> acc + subtree_size q c) 1 (Pattern.children q i)

let degenerate_splits q =
  let n = Pattern.node_count q in
  let rec leaf i =
    if i >= n then 0 else if Pattern.children q i = [] then i else leaf (i + 1)
  in
  let stored = ref 0 in
  Array.iteri
    (fun i (a : Pattern.annot) ->
      if !stored = 0 && (a.Pattern.store_val || a.Pattern.store_cont) then
        stored := i)
    q.Pattern.annots;
  List.sort_uniq compare [ 0; leaf 0; !stored ]

let prop_degenerate_splits =
  Tutil.qtest ~count:150 "prune ⋈ subpattern answers q at degenerate splits"
    (QCheck.pair Tutil.arb_doc Tutil.arb_pattern) (fun (doc, q) ->
      List.for_all
        (fun i ->
          let top = Pattern.prune q i ~name:"t" in
          let bottom = Pattern.subpattern q i ~name:"s" in
          (* Structural invariants of the split itself: the join key is
             stored on both sides, the bottom leg is //-anchored, and
             node counts partition the query (the split node counted in
             both legs). *)
          top.Pattern.annots.(i).Pattern.store_id
          && bottom.Pattern.axes.(0) = Pattern.Descendant
          && bottom.Pattern.annots.(0).Pattern.store_id
          && Pattern.node_count bottom = subtree_size q i
          && Pattern.node_count top
             = Pattern.node_count q - subtree_size q i + 1
          && (i <> 0 || Pattern.node_count top = 1)
          &&
          let store = Store.of_document (Xml_tree.copy doc) in
          let set = View_set.create store in
          ignore (View_set.add set top);
          ignore (View_set.add set bottom);
          let sources = List.map Answer.source_of_mview (View_set.views set) in
          match Answer.answer ~store ~sources q with
          | None -> false
          | Some (_, rows) ->
            Answer.diff ~expect:(Answer.base_rows store q) ~got:rows = None)
        (degenerate_splits q))

(* {1 Seeded differential oracles} *)

let test_answer_oracle () =
  let r = Difftest.run_answer ~seed:7 ~iters:400 () in
  List.iter print_endline r.Qgen.failures;
  Alcotest.(check int) "iterations" 400 r.Qgen.iterations;
  Alcotest.(check int) "mismatches" 0 r.Qgen.failed

let test_answer_repro_roundtrip () =
  let rnd = Random.State.make [| 0xa45; 11 |] in
  for _ = 1 to 50 do
    let c = Difftest.gen_answer_case rnd in
    let c' = Difftest.answer_of_repro (Difftest.repro_of_answer c) in
    Alcotest.(check string) "query preserved"
      (Pattern.to_string c.Difftest.aquery)
      (Pattern.to_string c'.Difftest.aquery);
    Alcotest.(check int) "view count preserved"
      (List.length c.Difftest.aset.Difftest.sviews)
      (List.length c'.Difftest.aset.Difftest.sviews);
    Alcotest.(check string) "document preserved"
      (Xml_tree.serialize c.Difftest.aset.Difftest.sdoc)
      (Xml_tree.serialize c'.Difftest.aset.Difftest.sdoc)
  done

(* The acceptance bar: >= 1000 seeded cases, all clean. *)
let test_indep_oracle () =
  let r = Difftest.run_indep ~seed:7 ~iters:1000 () in
  List.iter print_endline r.Qgen.failures;
  Alcotest.(check int) "iterations" 1000 r.Qgen.iterations;
  Alcotest.(check int) "mismatches" 0 r.Qgen.failed

(* A deliberately unsound analyzer must be caught and its
   counterexamples shrunk into replayable reports. *)
let test_indep_broken_analyzer_caught () =
  let r =
    Difftest.run_indep ~analyzer:(fun _ _ _ -> true) ~seed:7 ~iters:400 ()
  in
  Alcotest.(check bool) "violations found" true (r.Qgen.failed > 0);
  List.iter
    (fun f ->
      Alcotest.(check bool) "report labels the violation" true
        (String.length f > 0
        && String.sub f 0 (String.length "independence-safety")
           = "independence-safety"))
    r.Qgen.failures

(* The default analyzer discharges a real fraction of generated pairs —
   the safety oracle is not vacuously green. *)
let test_indep_not_vacuous () =
  let rnd = Random.State.make [| 7; 0x1dec |] in
  let n = 500 and indep = ref 0 in
  for _ = 1 to n do
    let t = Difftest.gen_indep_triple rnd in
    let dtd = Dtd.infer t.Difftest.doc in
    if
      Independence.independent dtd
        (Update.parse t.Difftest.update)
        t.Difftest.view
    then incr indep
  done;
  Alcotest.(check bool)
    (Printf.sprintf "discharge rate > 20%% (got %d/%d)" !indep n)
    true
    (!indep * 5 > n)

(* {1 Static analysis on an authored DTD} *)

let adtd =
  Dtd.create ~root:"r"
    [
      ("r", Dtd.Star (Dtd.Alt (Dtd.Sym "a", Dtd.Sym "b")));
      ("a", Dtd.Star (Dtd.Sym "c"));
      ("b", Dtd.Epsilon);
      ("c", Dtd.Epsilon);
    ]

let verdict_indep = function Independence.Independent _ -> true | _ -> false

let test_analyze_delete () =
  let view = compact ~name:"v" "//c{id}" in
  Alcotest.(check bool) "delete //b cannot reach c" true
    (verdict_indep (Independence.analyze adtd (Update.parse "delete //b") view));
  Alcotest.(check bool) "delete //a deletes c's subtree" false
    (verdict_indep (Independence.analyze adtd (Update.parse "delete //a") view));
  Alcotest.(check bool) "unsatisfiable path" true
    (verdict_indep (Independence.analyze adtd (Update.parse "delete //zz") view))

let test_analyze_insert () =
  let v_cont = compact ~name:"v" "//a{id,cont}" in
  Alcotest.(check bool) "insert below a dirties a's cont" false
    (verdict_indep
       (Independence.analyze adtd (Update.parse "insert into //c <d/>") v_cont));
  Alcotest.(check bool) "insert below b cannot touch a" true
    (verdict_indep
       (Independence.analyze adtd (Update.parse "insert into //b <d/>") v_cont));
  let v_a = compact ~name:"v" "//b{id}" in
  Alcotest.(check bool) "inserted fragment mentioning the view tag" false
    (verdict_indep
       (Independence.analyze adtd (Update.parse "insert into //a <b/>") v_a))

let test_analyze_replace () =
  let v_id = compact ~name:"v" "//a{id}" in
  let v_val = compact ~name:"v" "//a{id,val}" in
  let v_text = compact ~name:"v" "//a{id}[/#text{id}]" in
  let u = Update.parse "replace value of //c with \"q\"" in
  Alcotest.(check bool) "no payload, no text binding" true
    (verdict_indep (Independence.analyze adtd u v_id));
  Alcotest.(check bool) "val on an ancestor of the target" false
    (verdict_indep (Independence.analyze adtd u v_val));
  Alcotest.(check bool) "view binds #text" false
    (verdict_indep (Independence.analyze adtd u v_text))

let test_analyze_recursive_dtd () =
  (* A recursive content model must not diverge; with every label
     reachable from every other, nothing structural is independent. *)
  let dtd =
    Dtd.create ~root:"a"
      [ ("a", Dtd.Star (Dtd.Alt (Dtd.Sym "a", Dtd.Sym "b"))); ("b", Dtd.Epsilon) ]
  in
  let view = compact ~name:"v" "//b{id}" in
  Alcotest.(check bool) "recursive delete reaches b" false
    (verdict_indep (Independence.analyze dtd (Update.parse "delete //a") view));
  Alcotest.(check bool) "deleting leaf b cannot reach a" true
    (verdict_indep
       (Independence.analyze dtd (Update.parse "delete //b")
          (compact ~name:"v" "//a{id}")))

(* An update statically proven independent must be skippable inside
   [View_set.update] without the view diverging from recomputation. *)
let test_view_set_static_skip () =
  let store = Store.of_document (doc_of tdoc) in
  let set = View_set.create store in
  let mv = View_set.add set (compact ~name:"v" "//c{id,val}") in
  let hits = ref 0 in
  View_set.set_independence set
    (Some
       (fun u mv ->
         let r = Independence.prover (Dtd.infer (Store.root store)) u mv in
         if r then incr hits;
         r));
  let reports = View_set.update set (Update.parse "delete //b") in
  Alcotest.(check int) "prover discharged the view" 1 !hits;
  (match reports with
  | [ (_, r) ] ->
    Alcotest.(check bool) "skipped report" true r.Maint.skipped_irrelevant
  | _ -> Alcotest.fail "expected one report");
  let fresh = Mview.materialize store mv.Mview.pat in
  match Recompute.diff mv fresh with
  | None -> ()
  | Some d -> Alcotest.failf "skipped view diverged: %s" d

let () =
  Alcotest.run "answer"
    [
      ( "containment",
        [
          QCheck_alcotest.to_alcotest test_containment_vs_brute;
          QCheck_alcotest.to_alcotest test_containment_witness_replay;
          Alcotest.test_case "basic pairs" `Quick test_contains_basics;
        ] );
      ( "plans",
        [
          Alcotest.test_case "single exact" `Quick test_single_exact;
          Alcotest.test_case "val compensation" `Quick test_single_val_eq;
          Alcotest.test_case "child-of compensation" `Quick test_single_child_of;
          Alcotest.test_case "root-at compensation" `Quick test_single_root_at;
          Alcotest.test_case "payload projection" `Quick test_single_projection;
          Alcotest.test_case "count merge" `Quick test_count_merge;
          Alcotest.test_case "no //-from-/ weakening" `Quick test_no_weakening_match;
          Alcotest.test_case "two-view join" `Quick test_join;
          Alcotest.test_case "base fallback" `Quick test_fallback;
          Alcotest.test_case "root parent is None" `Quick test_root_parent_none;
          Alcotest.test_case "prune/subpattern shapes" `Quick test_prune_subpattern;
          prop_degenerate_splits;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "answer-from-views clean" `Quick test_answer_oracle;
          Alcotest.test_case "reproducer roundtrip" `Quick test_answer_repro_roundtrip;
          Alcotest.test_case "independence clean (1000)" `Quick test_indep_oracle;
          Alcotest.test_case "broken analyzer caught" `Quick
            test_indep_broken_analyzer_caught;
          Alcotest.test_case "analysis not vacuous" `Quick test_indep_not_vacuous;
        ] );
      ( "independence analysis",
        [
          Alcotest.test_case "delete" `Quick test_analyze_delete;
          Alcotest.test_case "insert" `Quick test_analyze_insert;
          Alcotest.test_case "replace value" `Quick test_analyze_replace;
          Alcotest.test_case "recursive DTD" `Quick test_analyze_recursive_dtd;
          Alcotest.test_case "View_set static skip" `Quick test_view_set_static_skip;
        ] );
    ]
