(* Tests for tuple tables, structural joins and the ID-based physical
   operators. *)

let store_of s = Store.of_document (Xml_parse.document s)

let fixture () =
  store_of {|<a><c><b>x</b><b/></c><f><c><b>y</b></c><b/></f><c/></a>|}

let atom store pat i = Plan.atom_of_store store pat i

let pat_cb =
  Pattern.compile ~name:"cb" (Pattern.n "c" ~id:true [ Pattern.n "b" ~id:true [] ])

(* Naive nested-loop structural join used as the oracle. *)
let naive_join left right ~ppos ~cpos ~axis =
  let out = ref [] in
  Array.iter
    (fun l ->
      Array.iter
        (fun r ->
          let ok =
            match axis with
            | Pattern.Child -> Dewey.is_parent l.(ppos) r.(cpos)
            | Pattern.Descendant -> Dewey.is_ancestor l.(ppos) r.(cpos)
          in
          if ok then out := Array.append l r :: !out)
        right)
    left;
  List.sort compare (List.map (Array.map Dewey.encode) !out) |> List.map Array.to_list

let join_result t =
  List.sort compare
    (Array.to_list
       (Array.map
          (fun r -> Array.to_list (Array.map Dewey.encode r))
          (Tuple_table.rows t)))

let test_join_fixture () =
  let s = fixture () in
  let c = atom s pat_cb 0 and b = atom s pat_cb 1 in
  let joined = Struct_join.join c b ~parent:0 ~child:1 ~axis:Pattern.Descendant in
  Alcotest.(check int) "c ancestor of b pairs" 3 (Tuple_table.length joined);
  let joined_child = Struct_join.join c b ~parent:0 ~child:1 ~axis:Pattern.Child in
  Alcotest.(check int) "c parent of b pairs" 3 (Tuple_table.length joined_child);
  Alcotest.(check (list (list string))) "same as naive"
    (naive_join (Tuple_table.rows c) (Tuple_table.rows b) ~ppos:0 ~cpos:0
       ~axis:Pattern.Descendant)
    (join_result joined)

(* Atoms are sorted canonical-relation scans, so this drives the
   sort-merge path of the dispatching join on both axes. *)
let test_join_random =
  Tutil.qtest ~count:200 "structural join = nested loop"
    (QCheck.triple Tutil.arb_doc
       (QCheck.oneofl [ Pattern.Child; Pattern.Descendant ])
       (QCheck.pair (QCheck.oneofa Tutil.labels) (QCheck.oneofa Tutil.labels)))
    (fun (d, axis, (l1, l2)) ->
      let store = Store.of_document d in
      let pat =
        Pattern.compile ~name:"j" (Pattern.n l1 ~id:true [ Pattern.n ~axis l2 ~id:true [] ])
      in
      let left = atom store pat 0 and right = atom store pat 1 in
      Tuple_table.sorted_on left 0
      && Tuple_table.sorted_on right 1
      &&
      let joined = Struct_join.join left right ~parent:0 ~child:1 ~axis in
      join_result joined
      = naive_join (Tuple_table.rows left) (Tuple_table.rows right) ~ppos:0 ~cpos:0
          ~axis)

(* Both physical implementations against the oracle on the same inputs,
   including the hash join on shuffled (unsorted) inputs. *)
let test_join_impls_random =
  Tutil.qtest ~count:200 "merge join = hash join = nested loop"
    (QCheck.triple Tutil.arb_doc
       (QCheck.oneofl [ Pattern.Child; Pattern.Descendant ])
       (QCheck.pair (QCheck.oneofa Tutil.labels) (QCheck.oneofa Tutil.labels)))
    (fun (d, axis, (l1, l2)) ->
      let store = Store.of_document d in
      let pat =
        Pattern.compile ~name:"j" (Pattern.n l1 ~id:true [ Pattern.n ~axis l2 ~id:true [] ])
      in
      let left = atom store pat 0 and right = atom store pat 1 in
      let oracle =
        naive_join (Tuple_table.rows left) (Tuple_table.rows right) ~ppos:0 ~cpos:0
          ~axis
      in
      let merged = Struct_join.merge_join left right ~parent:0 ~child:1 ~axis in
      let shuffle t =
        let rows = Array.copy (Tuple_table.rows t) in
        let n = Array.length rows in
        for i = n - 1 downto 1 do
          let j = (i * 7919 + 13) mod (i + 1) in
          let tmp = rows.(i) in
          rows.(i) <- rows.(j);
          rows.(j) <- tmp
        done;
        Tuple_table.of_rows ~cols:(Tuple_table.cols t) rows
      in
      let sl = shuffle left and sr = shuffle right in
      let hashed = Struct_join.hash_join sl sr ~parent:0 ~child:1 ~axis in
      (* The dispatcher must not take the merge path on unsorted inputs of
         more than one row (their metadata is unknown). *)
      let dispatched = Struct_join.join sl sr ~parent:0 ~child:1 ~axis in
      join_result merged = oracle
      && join_result hashed = oracle
      && join_result dispatched = oracle)

(* Regression: output column order is left-columns-then-right-columns and
   the merge output is sorted on the child column. *)
let test_join_column_order () =
  let s = fixture () in
  let pat =
    Pattern.compile ~name:"p"
      (Pattern.n "a" ~id:true [ Pattern.n "c" ~id:true [ Pattern.n "b" ~id:true [] ] ])
  in
  let ac =
    Struct_join.join (atom s pat 0) (atom s pat 1) ~parent:0 ~child:1
      ~axis:Pattern.Descendant
  in
  Alcotest.(check (list int)) "two-way cols" [ 0; 1 ]
    (Array.to_list (Tuple_table.cols ac));
  let acb =
    Struct_join.join ac (atom s pat 2) ~parent:1 ~child:2 ~axis:Pattern.Descendant
  in
  Alcotest.(check (list int)) "three-way cols" [ 0; 1; 2 ]
    (Array.to_list (Tuple_table.cols acb));
  Alcotest.(check bool) "merge output sorted on child" true
    (Tuple_table.sorted_by ac = Some 1);
  (* Rows bind each column to a node of the matching label. *)
  let dict = Store.dict s in
  Tuple_table.iter
    (fun row ->
      let lab p = Label_dict.label dict (Dewey.label row.(p)) in
      Alcotest.(check (list string)) "row labels follow cols" [ "a"; "c"; "b" ]
        [ lab 0; lab 1; lab 2 ])
    acb

(* XVM_BOXED_TABLES: only the explicit truthy spellings request the
   boxed layout; everything else — unset, empty, "0", "no", garbage —
   keeps the columnar default. *)
let test_boxed_env_parse () =
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%S requests boxed"
           (Option.value ~default:"<unset>" v))
        true
        (Tuple_table.boxed_requested v))
    [ Some "1"; Some "true"; Some "TRUE"; Some "True"; Some " 1 "; Some "\ttrue\n" ];
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%S stays columnar"
           (Option.value ~default:"<unset>" v))
        false
        (Tuple_table.boxed_requested v))
    [ None; Some ""; Some "0"; Some "false"; Some "no"; Some "yes"; Some "2"; Some "on"; Some "boxed" ]

let test_tuple_table () =
  let t = Tuple_table.of_ids ~node:7 [| Dewey.root ~lab:1 |] in
  Alcotest.(check int) "col_pos" 0 (Tuple_table.col_pos t 7);
  Alcotest.(check bool) "missing col raises" true
    (match Tuple_table.col_pos t 3 with exception Not_found -> true | _ -> false);
  Alcotest.(check int) "length" 1 (Tuple_table.length t);
  Tuple_table.filter t (fun _ -> false);
  Alcotest.(check bool) "filter empties" true (Tuple_table.is_empty t)

let test_append_growth () =
  let a = Dewey.root ~lab:0 in
  let kids = Array.init 100 (fun i -> Dewey.child a ~lab:1 ~ord:[| i + 1 |]) in
  let t = Tuple_table.create ~cols:[| 3 |] in
  Array.iter (fun id -> Tuple_table.append_row t [| id |]) kids;
  Alcotest.(check int) "appended length" 100 (Tuple_table.length t);
  Alcotest.(check bool) "rows snapshot exact" true
    (Array.length (Tuple_table.rows t) = 100);
  Tuple_table.append_rows t (Array.map (fun id -> [| id |]) kids);
  Alcotest.(check int) "bulk appended" 200 (Tuple_table.length t);
  Alcotest.(check bool) "row content survives growth" true
    (Dewey.equal (Tuple_table.get t 0).(0) kids.(0)
    && Dewey.equal (Tuple_table.get t 99).(0) kids.(99)
    && Dewey.equal (Tuple_table.get t 100).(0) kids.(0))

let test_sortedness_metadata () =
  let a = Dewey.root ~lab:0 in
  let k i = Dewey.child a ~lab:1 ~ord:[| i |] in
  let t = Tuple_table.of_ids ~sorted:true ~node:0 [| k 1; k 2 |] in
  Alcotest.(check bool) "declared sorted" true (Tuple_table.sorted_on t 0);
  Tuple_table.append_row t [| k 5 |];
  Alcotest.(check bool) "in-order append keeps metadata" true
    (Tuple_table.sorted_by t = Some 0);
  Tuple_table.append_row t [| k 3 |];
  Alcotest.(check bool) "out-of-order append drops metadata" true
    (Tuple_table.sorted_by t = None);
  Tuple_table.sort_by_node t 0;
  Alcotest.(check bool) "sort restores metadata" true
    (Tuple_table.sorted_by t = Some 0);
  Tuple_table.filter t (fun row -> not (Dewey.equal row.(0) (k 2)));
  Alcotest.(check bool) "filter keeps metadata" true
    (Tuple_table.sorted_by t = Some 0);
  Alcotest.(check int) "filter in place" 3 (Tuple_table.length t)

let test_sort_by_node () =
  let a = Dewey.root ~lab:0 in
  let b = Dewey.child a ~lab:1 ~ord:[| 1 |] in
  let c = Dewey.child a ~lab:1 ~ord:[| 2 |] in
  let t = Tuple_table.of_ids ~node:0 [| c; a; b |] in
  Tuple_table.sort_by_node t 0;
  Alcotest.(check bool) "sorted" true
    (Dewey.equal (Tuple_table.get t 0).(0) a
    && Dewey.equal (Tuple_table.get t 1).(0) b
    && Dewey.equal (Tuple_table.get t 2).(0) c)

let test_id_region () =
  let a = Dewey.root ~lab:0 in
  let b = Dewey.child a ~lab:1 ~ord:[| 1 |] in
  let c = Dewey.child b ~lab:2 ~ord:[| 1 |] in
  let other = Dewey.child a ~lab:1 ~ord:[| 2 |] in
  let region = Id_region.of_roots [ b ] in
  Alcotest.(check bool) "root in region" true (Id_region.mem region b);
  Alcotest.(check bool) "descendant in region" true (Id_region.mem region c);
  Alcotest.(check bool) "ancestor not in region" false (Id_region.mem region a);
  Alcotest.(check bool) "sibling not in region" false (Id_region.mem region other);
  Alcotest.(check bool) "strictly inside excludes the root" false
    (Id_region.strictly_inside region b);
  Alcotest.(check bool) "strictly inside descendant" true
    (Id_region.strictly_inside region c);
  Alcotest.(check bool) "empty region" true
    (Id_region.is_empty (Id_region.of_roots []) && not (Id_region.mem (Id_region.of_roots []) a));
  Alcotest.(check int) "nested roots normalize" 1
    (Array.length (Id_region.roots (Id_region.of_roots [ b; c ])))

(* Region-pruned relation spans against the naive full-scan filter. *)
let test_relation_span () =
  let s = fixture () in
  let all_b = Store.relation s "b" in
  let c_roots = Array.map (fun e -> e.Store.id) (Store.relation s "c") in
  Array.iter
    (fun root ->
      let span = Store.relation_span s "b" ~root in
      let naive =
        Array.of_seq
          (Seq.filter
             (fun e -> Dewey.is_ancestor_or_self root e.Store.id)
             (Array.to_seq all_b))
      in
      Alcotest.(check (list string)) "span = filtered scan"
        (Array.to_list (Array.map (fun e -> Dewey.encode e.Store.id) naive))
        (Array.to_list (Array.map (fun e -> Dewey.encode e.Store.id) span)))
    c_roots;
  Alcotest.(check int) "span of unknown label" 0
    (Array.length (Store.relation_span s "zzz" ~root:c_roots.(0)))

let test_region_scan_random =
  Tutil.qtest ~count:200 "region-pruned scan = filtered full scan"
    (QCheck.pair Tutil.arb_doc (QCheck.pair (QCheck.oneofa Tutil.labels) QCheck.small_int))
    (fun (d, (target, pick)) ->
      let store = Store.of_document d in
      let pat = Pattern.compile ~name:"r" (Pattern.n target ~id:true []) in
      (* Region: a pseudo-random subset of the document's element nodes. *)
      let all = Plan.entries_matching store pat 0 in
      let every = max 1 ((pick mod 3) + 1) in
      let roots = ref [] in
      Array.iteri
        (fun i e -> if i mod every = 0 then roots := e.Store.id :: !roots)
        (Store.relation store "a");
      Array.iteri
        (fun i e -> if i mod 2 = 0 then roots := e.Store.id :: !roots)
        (Store.relation store "c");
      let region = Id_region.of_roots !roots in
      let pruned = Plan.entries_in_region store pat 0 region in
      let naive =
        Array.of_seq
          (Seq.filter (fun e -> Id_region.mem region e.Store.id) (Array.to_seq all))
      in
      Array.to_list (Array.map (fun e -> Dewey.encode e.Store.id) pruned)
      = Array.to_list (Array.map (fun e -> Dewey.encode e.Store.id) naive))

(* Boundary cases of the region-pruned scans: empty relations, empty
   regions, and single-node regions at the first/last relation rows. *)
let test_entries_in_region_boundaries () =
  let s = fixture () in
  let pat_b = Pattern.compile ~name:"b" (Pattern.n "b" ~id:true []) in
  let all = Plan.entries_matching s pat_b 0 in
  let enc e = Dewey.encode e.Store.id in
  let scan region =
    Array.to_list (Array.map enc (Plan.entries_in_region s pat_b 0 region))
  in
  let root_id = Store.id_of s (Store.root s) in
  Alcotest.(check (list string)) "whole-document region = full relation"
    (Array.to_list (Array.map enc all))
    (scan (Id_region.of_roots [ root_id ]));
  Alcotest.(check (list string)) "empty region" [] (scan (Id_region.of_roots []));
  let first = all.(0).Store.id and last = all.(Array.length all - 1).Store.id in
  Alcotest.(check (list string)) "single-node region at the first row"
    [ Dewey.encode first ]
    (scan (Id_region.of_roots [ first ]));
  Alcotest.(check (list string)) "single-node region at the last row"
    [ Dewey.encode last ]
    (scan (Id_region.of_roots [ last ]));
  Alcotest.(check (list string)) "single-node regions at both extremes"
    [ Dewey.encode first; Dewey.encode last ]
    (scan (Id_region.of_roots [ first; last ]));
  let pat_z = Pattern.compile ~name:"z" (Pattern.n "zzz" ~id:true []) in
  Alcotest.(check int) "empty relation" 0
    (Array.length
       (Plan.entries_in_region s pat_z 0 (Id_region.of_roots [ root_id ])))

let test_path_ops () =
  let s = fixture () in
  let dict = Store.dict s in
  let rb = Store.relation s "b" in
  let ids = Array.map (fun e -> e.Store.id) rb in
  (* Path Filter: b nodes below a c. *)
  let c_code = Option.get (Label_dict.find dict "c") in
  let under_c =
    Path_ops.path_filter ids (fun path ->
        Array.exists (fun l -> l = c_code) (Array.sub path 0 (Array.length path - 1)))
  in
  Alcotest.(check int) "path filter" 3 (Array.length under_c);
  Alcotest.(check bool) "has_label_ancestor agrees" true
    (Array.for_all (fun id -> Path_ops.has_label_ancestor dict ~label:"c" id) under_c);
  Alcotest.(check bool) "star label always true" true
    (Path_ops.has_label_ancestor dict ~label:"*" ids.(0));
  (* Path Navigate: parents of the b nodes are the two c's and f. *)
  let parents = Path_ops.path_navigate ids in
  Alcotest.(check int) "navigate dedups" 3 (Array.length parents)

let test_plan_scope () =
  (* eval_subtree with a restricted scope only joins the included nodes. *)
  let s = fixture () in
  let pat =
    Pattern.compile ~name:"p"
      (Pattern.n "a" ~id:true [ Pattern.n "c" ~id:true [ Pattern.n "b" ~id:true [] ] ])
  in
  let within = [| true; true; false |] in
  let t =
    Plan.eval_subtree pat ~atom:(atom s pat) ~within:(fun i -> within.(i)) ~root:0
  in
  Alcotest.(check int) "a-c pairs only" 3 (Tuple_table.length t);
  Alcotest.(check bool) "no b column" true
    (match Tuple_table.col_pos t 2 with exception Not_found -> true | _ -> false)

(* {1 Counter-based complexity regression tests}

   The observability counters turn the join's complexity contract into
   an executable assertion. [algebra.join.comparisons] counts Dewey
   comparisons on the merge path and prefix probes on the hash path, so
   the budget below constrains whichever implementation actually ran:
   on this adversarial deep-descendant input the stack-based merge join
   measures ~1.7*(|L|+|R|+|out|) comparisons, the hash-prefix baseline
   ~12800 and a nested loop 160000 against a budget of 7200 -- swapping
   the dispatched join for either blows the bound by an order of
   magnitude. *)

(* [chains] root-level sections, each a [depth]-deep chain of wrap
   elements ending in a para: maximal ancestor-stack churn per output
   pair, the worst case for a structural merge join. *)
let deep_doc ~chains ~depth =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<root>";
  for i = 1 to chains do
    Buffer.add_string buf "<section>";
    for _ = 1 to depth do
      Buffer.add_string buf "<wrap>"
    done;
    Buffer.add_string buf (Printf.sprintf "<para>p%d</para>" i);
    for _ = 1 to depth do
      Buffer.add_string buf "</wrap>"
    done;
    Buffer.add_string buf "</section>"
  done;
  Buffer.add_string buf "</root>";
  Xml_parse.document (Buffer.contents buf)

let comparisons snap = Obs.counter_value snap "algebra.join.comparisons"

let deep_atoms () =
  let store = Store.of_document (deep_doc ~chains:400 ~depth:30) in
  let pat =
    Pattern.compile ~name:"sp"
      (Pattern.n "section" ~id:true
         [ Pattern.n ~axis:Pattern.Descendant "para" ~id:true [] ])
  in
  (atom store pat 0, atom store pat 1)

let linear_budget ~left ~right ~out =
  6 * (Tuple_table.length left + Tuple_table.length right + Tuple_table.length out)

let test_merge_join_comparison_bound () =
  let left, right = deep_atoms () in
  let joined, snap =
    Obs.with_scope (fun () ->
        Struct_join.join left right ~parent:0 ~child:1 ~axis:Pattern.Descendant)
  in
  let budget = linear_budget ~left ~right ~out:joined in
  let c = comparisons snap in
  if c > budget then
    Alcotest.failf
      "structural join did %d comparisons on |L|=%d |R|=%d |out|=%d, over the \
       linear budget %d: not a sort-merge join any more?"
      c (Tuple_table.length left) (Tuple_table.length right)
      (Tuple_table.length joined) budget;
  Alcotest.(check int) "no hash fallback on sorted inputs" 0
    (Obs.counter_value snap "algebra.join.hash_fallbacks");
  Alcotest.(check bool) "merge path taken" true
    (Obs.counter_value snap "algebra.join.merge_calls" >= 1)

(* The same budget rejects the hash-prefix baseline on the same input:
   it probes one hash entry per ancestor prefix of every right row, so
   deep documents cost depth*|R| probes. This keeps the bound above
   honest -- it genuinely discriminates between the implementations. *)
let test_hash_join_exceeds_linear_budget () =
  let left, right = deep_atoms () in
  let joined, snap =
    Obs.with_scope (fun () ->
        Struct_join.hash_join left right ~parent:0 ~child:1
          ~axis:Pattern.Descendant)
  in
  let budget = linear_budget ~left ~right ~out:joined in
  Alcotest.(check bool) "hash-prefix join exceeds the merge budget" true
    (comparisons snap > budget)

(* Dispatcher counters across both axes on sorted store atoms: every
   call must take the merge path, never the fallback. *)
let test_sorted_inputs_never_fall_back () =
  let s = fixture () in
  let c = atom s pat_cb 0 and b = atom s pat_cb 1 in
  let (), snap =
    Obs.with_scope (fun () ->
        List.iter
          (fun axis ->
            ignore (Struct_join.join c b ~parent:0 ~child:1 ~axis))
          [ Pattern.Child; Pattern.Descendant ])
  in
  Alcotest.(check int) "zero fallbacks" 0
    (Obs.counter_value snap "algebra.join.hash_fallbacks");
  Alcotest.(check int) "two merge calls" 2
    (Obs.counter_value snap "algebra.join.merge_calls");
  Alcotest.(check int) "row counters flushed" (2 * Tuple_table.length c)
    (Obs.counter_value snap "algebra.join.rows_left")

(* {1 Columnar layout equivalence}

   The arena-handle columnar layout must be observationally identical to
   the boxed row layout: same rows through the compatibility API, same
   join outputs and sortedness metadata, same table-op results. *)

let boxed_atom store node label =
  Tuple_table.of_ids ~sorted:true ~node
    (Array.map (fun e -> e.Store.id) (Store.relation store label))

let cols_atom store node label =
  let _, handles = Store.relation_handles store label in
  Tuple_table.of_handles ~sorted:true ~arena:(Store.arena store) ~node
    (Array.copy handles)

let arb_doc_label =
  QCheck.pair Tutil.arb_doc (QCheck.oneofa Tutil.labels)

let test_columnar_join_equiv =
  Tutil.qtest ~count:200 "columnar merge join = boxed merge join"
    (QCheck.triple Tutil.arb_doc
       (QCheck.oneofl [ Pattern.Child; Pattern.Descendant ])
       (QCheck.pair (QCheck.oneofa Tutil.labels) (QCheck.oneofa Tutil.labels)))
    (fun (d, axis, (l1, l2)) ->
      let store = Store.of_document d in
      let bl = boxed_atom store 0 l1 and br = boxed_atom store 1 l2 in
      let cl = cols_atom store 0 l1 and cr = cols_atom store 1 l2 in
      let boxed, snap_b =
        Obs.with_scope (fun () ->
            Struct_join.merge_join bl br ~parent:0 ~child:1 ~axis)
      in
      let cols, snap_c =
        Obs.with_scope (fun () ->
            Struct_join.merge_join cl cr ~parent:0 ~child:1 ~axis)
      in
      join_result cols = join_result boxed
      && Tuple_table.sorted_by cols = Tuple_table.sorted_by boxed
      (* counter parity: the complexity regression tests must not depend
         on the physical layout *)
      && comparisons snap_c = comparisons snap_b)

let test_columnar_table_ops =
  Tutil.qtest ~count:200 "columnar table ops mirror boxed" arb_doc_label
    (fun (d, lab) ->
      let store = Store.of_document d in
      let b = boxed_atom store 0 lab and c = cols_atom store 0 lab in
      join_result b = join_result c
      && (let n = Tuple_table.length b in
          let ok = ref (Tuple_table.length c = n) in
          for i = 0 to n - 1 do
            if
              not
                (Dewey.equal (Tuple_table.cell_id b i 0)
                   (Tuple_table.cell_id c i 0))
            then ok := false
          done;
          !ok)
      && (let b2 = Tuple_table.copy b and c2 = Tuple_table.copy c in
          Tuple_table.append_table b2 b;
          Tuple_table.append_table c2 c;
          join_result b2 = join_result c2
          && Tuple_table.sorted_by b2 = Tuple_table.sorted_by c2)
      &&
      let b3 = Tuple_table.copy b and c3 = Tuple_table.copy c in
      let keep row = Dewey.depth row.(0) mod 2 = 0 in
      Tuple_table.filter b3 keep;
      Tuple_table.filter c3 keep;
      join_result b3 = join_result c3)

let test_columnar_sort =
  Tutil.qtest ~count:100 "columnar sort_by_node = boxed order" arb_doc_label
    (fun (d, lab) ->
      let store = Store.of_document d in
      let _, handles = Store.relation_handles store lab in
      let shuf = Array.copy handles in
      let n = Array.length shuf in
      for i = n - 1 downto 1 do
        let j = ((i * 7919) + 13) mod (i + 1) in
        let t = shuf.(i) in
        shuf.(i) <- shuf.(j);
        shuf.(j) <- t
      done;
      let c = Tuple_table.of_handles ~arena:(Store.arena store) ~node:0 shuf in
      Tuple_table.sort_by_node c 0;
      join_result c = join_result (boxed_atom store 0 lab))

let () =
  Alcotest.run "algebra"
    [
      ( "joins",
        [
          Alcotest.test_case "fixture join" `Quick test_join_fixture;
          Alcotest.test_case "merge join comparison bound" `Quick
            test_merge_join_comparison_bound;
          Alcotest.test_case "hash join exceeds linear budget" `Quick
            test_hash_join_exceeds_linear_budget;
          Alcotest.test_case "sorted inputs never fall back" `Quick
            test_sorted_inputs_never_fall_back;
          Alcotest.test_case "column order" `Quick test_join_column_order;
          test_join_random;
          test_join_impls_random;
        ] );
      ( "tables",
        [
          Alcotest.test_case "boxed env parse" `Quick test_boxed_env_parse;
          Alcotest.test_case "tuple table" `Quick test_tuple_table;
          Alcotest.test_case "append growth" `Quick test_append_growth;
          Alcotest.test_case "sortedness metadata" `Quick test_sortedness_metadata;
          Alcotest.test_case "sort by node" `Quick test_sort_by_node;
        ] );
      ( "columnar",
        [
          test_columnar_join_equiv;
          test_columnar_table_ops;
          test_columnar_sort;
        ] );
      ( "id ops",
        [
          Alcotest.test_case "id region" `Quick test_id_region;
          Alcotest.test_case "relation span" `Quick test_relation_span;
          Alcotest.test_case "region scan boundaries" `Quick
            test_entries_in_region_boundaries;
          test_region_scan_random;
          Alcotest.test_case "path filter/navigate" `Quick test_path_ops;
          Alcotest.test_case "scoped plan" `Quick test_plan_scope;
        ] );
    ]
