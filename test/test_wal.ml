(* Tests for the durability layer's edges: the WAL scanner on empty,
   header-only, torn and mis-sequenced logs, and the checkpoint+replay
   walk at its sequence-number boundaries — recovery of an empty log, a
   checkpoint exactly at the log head (nothing to replay), idempotent
   skipping of records a checkpoint already covers, and on-disk
   truncation of a torn tail. The bulk randomized coverage lives in the
   difftest kill-and-recover oracle and the WAL fuzz corpus; these are
   the deterministic corner cases. *)

let n = Pattern.n

let doc_text =
  {|<r><a>x<b>1</b><b>2</b></a><c><d>y</d></c><a><b>3</b></a><e k="v">z</e></r>|}

let v_ab name = Pattern.compile ~name (n "a" ~id:true [ n "b" ~id:true [] ])
let v_cd name = Pattern.compile ~name (n "c" ~id:true [ n "d" ~id:true [] ])

let fresh_set () =
  let store = Store.of_document (Xml_parse.document doc_text) in
  let set = View_set.create store in
  ignore (View_set.add set (v_ab "ab"));
  ignore (View_set.add set (v_cd "cd"));
  set

(* All journalable forms: constant-forest inserts, a delete, a value
   replacement. *)
let stmts =
  [|
    Update.insert ~into:"/r/a" "<b>9</b>";
    Update.delete "/r/c/d";
    Update.insert ~into:"/r" "<c><d>w</d></c>";
    Update.replace_value ~target:"//e" "q";
  |]

(* Sequential oracle: a fresh set with the first [k] statements applied,
   captured as a snapshot. *)
let oracle_at k =
  let set = fresh_set () in
  Array.iteri (fun i u -> if i < k then ignore (View_set.update set u)) stmts;
  Snapshot.initial set

let check_against_oracle what set k =
  let got = Snapshot.initial set and want = oracle_at k in
  Array.iter2
    (fun (g : Snapshot.view) (w : Snapshot.view) ->
      match Snapshot.view_diff g w with
      | None -> ()
      | Some d ->
        Alcotest.failf "%s: view %s diverged from oracle: %s" what
          g.Snapshot.v_name d)
    got.Snapshot.views want.Snapshot.views

let parse_pattern ~name s = Difftest.view_of_compact ~name s

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_tmp_dir f =
  let dir = Filename.temp_file "xvmwal" ".test" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let write_raw path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* {1 Scanner edge cases} *)

let test_scan_edges () =
  with_tmp_dir @@ fun dir ->
  (* A missing file is an empty, undamaged log. *)
  let s = Wal.scan_file (Filename.concat dir "missing.log") in
  Alcotest.(check int) "missing: records" 0 (Array.length s.Wal.records);
  Alcotest.(check bool) "missing: clean" true (s.Wal.damage = None);
  (* A zero-byte file has no header — damaged — but repair must leave it
     empty rather than promote it to a valid log. *)
  let empty = Filename.concat dir "empty.log" in
  write_raw empty "";
  let s = Wal.repair_file empty in
  Alcotest.(check bool) "empty: bad header" true
    (s.Wal.damage = Some Wal.Bad_header);
  Alcotest.(check int) "empty: stays zero bytes" 0
    (Unix.stat empty).Unix.st_size;
  (* A header-only file is a valid empty log. *)
  let hdr = Filename.concat dir "hdr.log" in
  write_raw hdr Wal.header;
  let s = Wal.scan_file hdr in
  Alcotest.(check bool) "header-only: clean" true (s.Wal.damage = None);
  Alcotest.(check int) "header-only: records" 0 (Array.length s.Wal.records);
  (* Round trip, and sequence pinning. *)
  let data =
    Wal.header ^ Wal.encode_record ~seq:5 "alpha"
    ^ Wal.encode_record ~seq:6 "beta"
  in
  let s = Wal.scan_bytes data in
  Alcotest.(check (array (pair int string)))
    "roundtrip"
    [| (5, "alpha"); (6, "beta") |]
    s.Wal.records;
  Alcotest.(check bool) "roundtrip: clean" true (s.Wal.damage = None);
  Alcotest.(check int) "roundtrip: whole file valid" (String.length data)
    s.Wal.valid_bytes;
  let s = Wal.scan_bytes ~expect_seq:1 data in
  (match s.Wal.damage with
  | Some (Wal.Bad_sequence (_, 1, 5)) -> ()
  | d ->
    Alcotest.failf "expected Bad_sequence(_,1,5), got %s"
      (match d with None -> "no damage" | Some d -> Wal.damage_to_string d));
  Alcotest.(check int) "pinned seq keeps nothing" 0
    (Array.length s.Wal.records);
  (* A torn final record: scan keeps the prefix, repair truncates to it,
     and the repaired file scans clean. *)
  let torn = Filename.concat dir "torn.log" in
  write_raw torn (String.sub data 0 (String.length data - 3));
  let s = Wal.repair_file torn in
  Alcotest.(check int) "torn: prefix kept" 1 (Array.length s.Wal.records);
  Alcotest.(check bool) "torn: damage reported" true (s.Wal.damage <> None);
  let s = Wal.scan_file torn in
  Alcotest.(check bool) "repaired: clean" true (s.Wal.damage = None);
  Alcotest.(check (array (pair int string)))
    "repaired: first record intact"
    [| (5, "alpha") |]
    s.Wal.records

(* {1 Recovery at sequence boundaries} *)

(* An empty log above checkpoint 0: recovery is a pure checkpoint load. *)
let test_recover_empty_log () =
  with_tmp_dir @@ fun dir ->
  let set = fresh_set () in
  let d = Durable.init ~dir set in
  Durable.crash d;
  match Durable.recover ~dir ~parse_pattern () with
  | None -> Alcotest.fail "no checkpoint found"
  | Some o ->
    Alcotest.(check int) "ck_seq" 0 o.Durable.ck_seq;
    Alcotest.(check int) "replayed" 0 o.Durable.replayed;
    Alcotest.(check int) "skipped" 0 o.Durable.skipped;
    Alcotest.(check bool) "no truncation" true (o.Durable.truncated = []);
    check_against_oracle "empty log" o.Durable.set 0;
    Durable.close o.Durable.engine

(* Checkpoint exactly at the log head: every journaled statement is
   covered, the continuing segment is empty, and the recovered engine
   resumes at the checkpoint sequence. *)
let test_checkpoint_at_log_head () =
  with_tmp_dir @@ fun dir ->
  let set = fresh_set () in
  let d = Durable.init ~dir set in
  for i = 0 to 2 do
    ignore (View_set.update set stmts.(i));
    Durable.sync d
  done;
  Durable.checkpoint d set;
  Durable.crash d;
  match Durable.recover ~dir ~parse_pattern () with
  | None -> Alcotest.fail "no checkpoint found"
  | Some o ->
    Alcotest.(check int) "ck_seq" 3 o.Durable.ck_seq;
    Alcotest.(check int) "replayed" 0 o.Durable.replayed;
    Alcotest.(check int) "skipped" 0 o.Durable.skipped;
    Alcotest.(check int) "resumes at checkpoint seq" 3
      (Durable.last_seq o.Durable.engine);
    check_against_oracle "checkpoint at head" o.Durable.set 3;
    Durable.close o.Durable.engine

(* Records at or below the checkpoint sequence are checked no-ops: a
   crash between the manifest rename and segment GC can leave a fully
   covered segment behind, and replaying it twice must change nothing. *)
let test_duplicate_records_skipped () =
  with_tmp_dir @@ fun dir ->
  let set = fresh_set () in
  let d = Durable.init ~dir set in
  ignore (View_set.update set stmts.(0));
  Durable.sync d;
  ignore (View_set.update set stmts.(1));
  Durable.sync d;
  Durable.checkpoint d set;
  (* ck-2 committed; journal continues in wal-3.log *)
  ignore (View_set.update set stmts.(2));
  Durable.sync d;
  Durable.crash d;
  (* Resurrect the pre-checkpoint segment as the GC-interrupted crash
     would have left it. *)
  let stale = Wal.create_writer ~path:(Filename.concat dir "wal-1.log") ~next_seq:1 in
  ignore (Wal.append stale (Update.to_string stmts.(0)));
  ignore (Wal.append stale (Update.to_string stmts.(1)));
  Wal.close_writer stale;
  match Durable.recover ~dir ~parse_pattern () with
  | None -> Alcotest.fail "no checkpoint found"
  | Some o ->
    Alcotest.(check int) "ck_seq" 2 o.Durable.ck_seq;
    Alcotest.(check int) "covered records skipped" 2 o.Durable.skipped;
    Alcotest.(check int) "replayed above checkpoint" 1 o.Durable.replayed;
    check_against_oracle "duplicate replay" o.Durable.set 3;
    Durable.close o.Durable.engine

(* A torn append bolted onto a synced segment: recovery replays the
   intact prefix, reports the truncation, and repairs the file on disk. *)
let test_torn_tail_truncated () =
  with_tmp_dir @@ fun dir ->
  let set = fresh_set () in
  let d = Durable.init ~dir set in
  ignore (View_set.update set stmts.(0));
  Durable.sync d;
  ignore (View_set.update set stmts.(1));
  Durable.sync d;
  Durable.crash d;
  let seg = Filename.concat dir "wal-1.log" in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 seg in
  output_string oc "\x00\x00\x00\x09GARBAGE";
  close_out oc;
  match Durable.recover ~dir ~parse_pattern () with
  | None -> Alcotest.fail "no checkpoint found"
  | Some o ->
    Alcotest.(check int) "intact prefix replayed" 2 o.Durable.replayed;
    Alcotest.(check int) "one segment truncated" 1
      (List.length o.Durable.truncated);
    check_against_oracle "torn tail" o.Durable.set 2;
    let s = Wal.scan_file seg in
    Alcotest.(check bool) "repaired on disk" true (s.Wal.damage = None);
    Alcotest.(check int) "both records survive repair" 2
      (Array.length s.Wal.records);
    Durable.close o.Durable.engine

let () =
  Alcotest.run "wal"
    [
      ( "scanner",
        [ Alcotest.test_case "edge cases" `Quick test_scan_edges ] );
      ( "recovery",
        [
          Alcotest.test_case "empty log" `Quick test_recover_empty_log;
          Alcotest.test_case "checkpoint at log head" `Quick
            test_checkpoint_at_log_head;
          Alcotest.test_case "duplicate records skipped" `Quick
            test_duplicate_records_skipped;
          Alcotest.test_case "torn tail truncated" `Quick
            test_torn_tail_truncated;
        ] );
    ]
