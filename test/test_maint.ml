(* Tests for the maintenance algorithms: the paper's worked examples
   (Sections 3 and 4) plus the golden property — incremental maintenance
   equals full recomputation on random documents, views and updates. *)

let n = Pattern.n

(* //a//b//c with all IDs stored (view v1 of Example 3.1). *)
let v_abc =
  Pattern.compile ~name:"v1" (n "a" ~id:true [ n "b" ~id:true [ n "c" ~id:true [] ] ])

let check_matches_recompute ?policy doc_text pat stmt =
  let store = Store.of_document (Xml_parse.document doc_text) in
  let mv = Mview.materialize ?policy store pat in
  let r = Maint.propagate mv stmt in
  let store2 = Store.of_document (Xml_parse.document doc_text) in
  let mv2, _ = Recompute.recompute_after store2 stmt ~pat in
  (match Recompute.diff mv mv2 with
  | None -> ()
  | Some d -> Alcotest.fail ("maintained view diverged: " ^ d));
  (mv, r)

let test_example_3_1_insert () =
  (* Insert <a><b/><b><c/></b></a>; only terms whose R-part is a snowcap
     and whose Δ tables are non-empty survive: RaRbΔc, RaΔbΔc, ΔaΔbΔc. *)
  let doc = {|<r><a><b><c/></b></a><x/></r>|} in
  let mv, r =
    check_matches_recompute doc v_abc
      (Update.insert ~into:"/r/a/b" "<a><b/><b><c/></b></a>")
  in
  Alcotest.(check int) "three surviving terms" 3 r.Maint.terms_surviving;
  Alcotest.(check int) "developed = proper snowcaps + all-delta" 3
    r.Maint.terms_developed;
  Alcotest.(check bool) "view grew" true (Mview.cardinality mv > 1)

let test_example_3_4_no_c () =
  (* xml2 has no c element: every term is pruned, the view is unaffected. *)
  let doc = {|<r><a><b><c/></b></a></r>|} in
  let _, r =
    check_matches_recompute doc v_abc (Update.insert ~into:"/r/a" "<a><b/><b/></a>")
  in
  Alcotest.(check int) "no surviving terms" 0 r.Maint.terms_surviving;
  Alcotest.(check int) "nothing added" 0 r.Maint.embeddings_added

let test_example_3_5_vpred () =
  (* //a[val=5]//b: the inserted a has value "3…", so σ(Δa) is empty and
     the view is unaffected. *)
  let v = Pattern.compile ~name:"v2" (n "a" ~vpred:"3" ~id:true [ n "b" ~id:true [] ]) in
  let doc = {|<r><a>3<b/></a></r>|} in
  let _, r =
    check_matches_recompute doc v (Update.insert ~into:"/r" "<a>5<b/><b/></a>")
  in
  Alcotest.(check int) "no embeddings added" 0 r.Maint.embeddings_added

let test_example_3_7_id_pruning () =
  (* Insert <b><c/></b> under an a-node with no b ancestor: the term
     RaRbΔc is pruned by the ID-driven rule, leaving only RaΔbΔc (Δa is
     empty, killing the all-Δ term too). *)
  let doc = {|<r><a><d/></a></r>|} in
  let _, r =
    check_matches_recompute doc v_abc (Update.insert ~into:"/r/a/d" "<b><c/></b>")
  in
  Alcotest.(check int) "single surviving term" 1 r.Maint.terms_surviving

let test_example_3_14_pimt () =
  (* Insertion below a stored-content node modifies existing tuples
     without adding any. *)
  let v =
    Pattern.compile ~name:"vc"
      (n ~axis:Pattern.Child "a" ~id:true
         [ n ~axis:Pattern.Child "b" ~id:true [ n "c" ~id:true ~content:true [] ] ])
  in
  let doc = {|<a><b><c><d><c>t</c></d></c></b></a>|} in
  let mv, r =
    check_matches_recompute doc v (Update.insert ~into:"//d//c" "<extra>some value</extra>")
  in
  Alcotest.(check int) "no new tuples" 0 r.Maint.embeddings_added;
  Alcotest.(check bool) "contents refreshed" true (r.Maint.tuples_modified >= 1);
  let contains_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let has_extra =
    List.exists
      (fun (_, _, cells) ->
        Array.exists
          (fun c ->
            match c.Mview.cell_content with
            | Some s -> contains_sub s "<extra>some value</extra>"
            | None -> false)
          cells)
      (Mview.dump mv)
  in
  Alcotest.(check bool) "refreshed content holds the insertion" true has_extra

(* The document of Fig. 11 / Fig. 12. *)
let fig11 = {|<a><c><b/></c><f><b/></f></a>|}
let fig12 = {|<a><c><b/><b/></c><f><c><b/></c><b/></f></a>|}

let test_example_4_1 () =
  let v = Pattern.compile ~name:"ab" (n "a" ~id:true [ n "b" ~id:true [] ]) in
  let mv, r = check_matches_recompute fig11 v (Update.delete "//c//b") in
  Alcotest.(check int) "one embedding removed" 1 r.Maint.embeddings_removed;
  Alcotest.(check int) "one tuple left" 1 (Mview.cardinality mv)

let test_example_4_5 () =
  (* View //a[//c]//b with IDs on a, c and b; delete //a/f/c. Of the 8
     tuples, only 1, 2 and 4 survive. *)
  let v =
    Pattern.compile ~name:"v2"
      (n "a" ~id:true [ n "c" ~id:true []; n "b" ~id:true [] ])
  in
  let store = Store.of_document (Xml_parse.document fig12) in
  let mv = Mview.materialize store v in
  Alcotest.(check int) "eight tuples initially" 8 (Mview.cardinality mv);
  let mv, r = check_matches_recompute fig12 v (Update.delete "//a/f/c") in
  Alcotest.(check int) "five embeddings removed" 5 r.Maint.embeddings_removed;
  Alcotest.(check int) "three tuples remain" 3 (Mview.cardinality mv)

let test_example_4_8_derivation_counts () =
  (* //a[//b]: the single tuple has derivation count 2; the first deletion
     decrements it, the second removes the tuple. *)
  let v = Pattern.compile ~name:"aexb" (n "a" ~id:true [ n "b" [] ]) in
  let store = Store.of_document (Xml_parse.document fig11) in
  let mv = Mview.materialize store v in
  Alcotest.(check int) "one tuple" 1 (Mview.cardinality mv);
  Alcotest.(check int) "count two" 2 (Mview.total_count mv);
  let _ = Maint.propagate mv (Update.delete "//c//b") in
  Alcotest.(check int) "tuple kept" 1 (Mview.cardinality mv);
  Alcotest.(check int) "count decremented" 1 (Mview.total_count mv);
  let _ = Maint.propagate mv (Update.delete "//f//b") in
  Alcotest.(check int) "tuple removed" 0 (Mview.cardinality mv)

let test_pdmt_content () =
  (* Deleting below a stored-content node refreshes the ancestor's
     payload. *)
  let v =
    Pattern.compile ~name:"cont" (n ~axis:Pattern.Child "a" ~id:true ~content:true [])
  in
  let doc = {|<a><b>x</b><c/></a>|} in
  let mv, r = check_matches_recompute doc v (Update.delete "//b") in
  Alcotest.(check bool) "payload refreshed" true (r.Maint.tuples_modified >= 1);
  let (_, _, cells) = List.hd (Mview.dump mv) in
  Alcotest.(check (option string)) "content shrank" (Some "<a><c/></a>")
    cells.(0).Mview.cell_content

let test_multi_view_shared_store () =
  (* One document update propagated to two views over the same store. *)
  let v1 = Pattern.compile ~name:"ab" (n "a" ~id:true [ n "b" ~id:true [] ]) in
  let v2 = Pattern.compile ~name:"ac" (n "a" ~id:true [ n "c" ~id:true [] ]) in
  let doc = {|<a><c><b/></c><f><b/></f></a>|} in
  let store = Store.of_document (Xml_parse.document doc) in
  let mv1 = Mview.materialize store v1 in
  let mv2 = Mview.materialize store v2 in
  let stmt = Update.insert ~into:"//f" "<c><b/></c>" in
  let applied, _ = Maint.apply_only store stmt in
  let _ = Maint.propagate_applied ~commit:false mv1 applied in
  let _ = Maint.propagate_applied ~commit:true mv2 applied in
  let fresh pat =
    let s2 = Store.of_document (Xml_parse.document doc) in
    let m, _ = Recompute.recompute_after s2 stmt ~pat in
    m
  in
  Alcotest.(check bool) "view 1 consistent" true (Recompute.equal mv1 (fresh v1));
  Alcotest.(check bool) "view 2 consistent" true (Recompute.equal mv2 (fresh v2))

let test_view_set () =
  let doc = {|<a><c><b/>z</c><f><b/></f></a>|} in
  let store = Store.of_document (Xml_parse.document doc) in
  let set = View_set.create store in
  let v1 = Pattern.compile ~name:"ab" (n "a" ~id:true [ n "b" ~id:true [] ]) in
  (* v2 watches c's value: the text-bearing insertion below c flips it. *)
  let v2 = Pattern.compile ~name:"cz" (n "c" ~vpred:"z" ~id:true ~content:true []) in
  let mv1 = View_set.add set v1 in
  let mv2 = View_set.add set v2 in
  Alcotest.(check bool) "find" true
    (match View_set.find set "ab" with Some m -> m == mv1 | None -> false);
  Alcotest.(check bool) "duplicate name rejected" true
    (match View_set.add set v1 with exception Invalid_argument _ -> true | _ -> false);
  let stmts =
    [
      Update.insert ~into:"//f" "<b/>";
      Update.insert ~into:"//c" "<t>q</t>";  (* flips v2's [val='z'] *)
      Update.delete "//c//b";
    ]
  in
  List.iter
    (fun stmt ->
      let reports = View_set.update set stmt in
      Alcotest.(check int) "one report per view" 2 (List.length reports))
    stmts;
  List.iter
    (fun (mv, pat) ->
      let store2 = Store.of_document (Xml_parse.document doc) in
      let oracle =
        List.fold_left
          (fun _ stmt ->
            let m, _ = Recompute.recompute_after store2 stmt ~pat in
            m)
          (Mview.materialize store2 pat) stmts
      in
      match Recompute.diff mv oracle with
      | None -> ()
      | Some d -> Alcotest.fail (pat.Pattern.name ^ " diverged in set: " ^ d))
    [ (mv1, v1); (mv2, v2) ];
  View_set.remove set "ab";
  Alcotest.(check int) "one view left" 1 (List.length (View_set.views set))

let test_dispatch_errors () =
  let v = Pattern.compile ~name:"a" (n "a" ~id:true []) in
  let store = Store.of_document (Xml_parse.document "<a/>") in
  let mv = Mview.materialize store v in
  Alcotest.check_raises "insert guard"
    (Invalid_argument "Maint.propagate_insert: not an insertion") (fun () ->
      ignore (Maint.propagate_insert mv (Update.delete "//a")));
  Alcotest.check_raises "delete guard"
    (Invalid_argument "Maint.propagate_delete: not a deletion") (fun () ->
      ignore (Maint.propagate_delete mv (Update.insert ~into:"//a" "<b/>")))

let test_replace_value () =
  (* Pure value change: no tuples appear or vanish; payloads refresh. *)
  let v =
    Pattern.compile ~name:"rv"
      (n ~axis:Pattern.Child "a" ~id:true
         [ n ~axis:Pattern.Child "b" ~id:true ~value:true ~content:true [] ])
  in
  let doc = {|<a><b>old</b><b>keep<c/></b></a>|} in
  let mv, r =
    check_matches_recompute doc v (Update.replace_value ~target:"/a/b" "new")
  in
  Alcotest.(check bool) "no fallback" false r.Maint.fallback_recompute;
  Alcotest.(check int) "no tuples added" 0 r.Maint.embeddings_added;
  Alcotest.(check int) "no tuples removed" 0 r.Maint.embeddings_removed;
  Alcotest.(check bool) "payloads refreshed" true (r.Maint.tuples_modified >= 2);
  Alcotest.(check int) "same cardinality" 2 (Mview.cardinality mv);
  (* Non-text children survive a replace (XQuery replaces the value, our
     semantics swaps the text children). *)
  let has_c =
    List.exists
      (fun (_, _, cells) ->
        match cells.(1).Mview.cell_content with
        | Some s -> s = "<b><c/>new</b>" (* fresh text is appended last *)
        | None -> false)
      (Mview.dump mv)
  in
  Alcotest.(check bool) "element children kept" true has_c;
  (* Replace flipping a value predicate takes the guarded rebuild. *)
  let v2 = Pattern.compile ~name:"rvp" (n "b" ~vpred:"hot" ~id:true []) in
  let mv2, r2 =
    check_matches_recompute doc v2 (Update.replace_value ~target:"/a/b" "hot")
  in
  Alcotest.(check bool) "flip detected" true r2.Maint.fallback_recompute;
  Alcotest.(check int) "both b's now match" 2 (Mview.cardinality mv2)

let test_vpred_flip_fallback () =
  (* Inserting text below an existing node watched by a value predicate
     flips its selection status: the delta model cannot express this, so
     the propagation must detect it and fall back to an exact rebuild. *)
  let v =
    Pattern.compile ~name:"flip"
      (n ~axis:Pattern.Child "b" ~vpred:"z" ~id:true ~content:true [])
  in
  let doc = {|<b>z<a/></b>|} in
  let mv, r = check_matches_recompute doc v (Update.insert ~into:"//a" "<t>q</t>") in
  Alcotest.(check bool) "fallback taken" true r.Maint.fallback_recompute;
  Alcotest.(check int) "tuple dropped: value is now zq" 0 (Mview.cardinality mv);
  (* Deletion flipping a predicate back on. *)
  let doc2 = {|<b>z<a>q</a></b>|} in
  let mv2, r2 = check_matches_recompute doc2 v (Update.delete "//a") in
  Alcotest.(check bool) "fallback taken on delete" true r2.Maint.fallback_recompute;
  Alcotest.(check int) "tuple appears: value is now z" 1 (Mview.cardinality mv2)

let test_no_fallback_on_plain_updates () =
  (* Structural updates that cannot flip any predicate stay on the
     incremental path. *)
  let v = Pattern.compile ~name:"p" (n "a" ~vpred:"z" ~id:true [ n "b" ~id:true [] ]) in
  let doc = {|<r><a>z<b/></a><c/></r>|} in
  let _, r = check_matches_recompute doc v (Update.insert ~into:"/r/c" "<b/>") in
  Alcotest.(check bool) "no fallback" false r.Maint.fallback_recompute

(* {1 The golden property} *)

let golden ?policy name =
  Tutil.qtest ~count:300 name
    (QCheck.triple Tutil.arb_doc Tutil.arb_pattern Tutil.arb_update)
    (fun (doc, pat, stmt) ->
      let store = Store.of_document (Xml_tree.copy doc) in
      let mv = Mview.materialize ?policy store pat in
      let _ = Maint.propagate mv stmt in
      let store2 = Store.of_document (Xml_tree.copy doc) in
      let mv2, _ = Recompute.recompute_after store2 stmt ~pat in
      match Recompute.diff mv mv2 with
      | None -> true
      | Some d -> QCheck.Test.fail_reportf "diverged: %s" d)

let golden_snowcaps = golden ~policy:Mview.Snowcaps "maintain = recompute (snowcaps)"
let golden_leaves = golden ~policy:Mview.Leaves "maintain = recompute (leaves)"

let golden_no_pruning =
  (* Pruning is an optimization: with it disabled the same view results
     must come out. *)
  Tutil.qtest ~count:150 "maintain without pruning = recompute"
    (QCheck.triple Tutil.arb_doc Tutil.arb_pattern Tutil.arb_update)
    (fun (doc, pat, stmt) ->
      let store = Store.of_document (Xml_tree.copy doc) in
      let mv = Mview.materialize store pat in
      let _ = Maint.propagate ~prune:false mv stmt in
      let store2 = Store.of_document (Xml_tree.copy doc) in
      let mv2, _ = Recompute.recompute_after store2 stmt ~pat in
      match Recompute.diff mv mv2 with
      | None -> true
      | Some d -> QCheck.Test.fail_reportf "diverged: %s" d)

let pruning_soundness =
  (* Props 3.6 / 3.8 / 4.7 as an executable statement: every term rejected
     by the data-driven pruning evaluates to the empty table. *)
  Tutil.qtest ~count:200 "pruned terms are provably empty"
    (QCheck.triple Tutil.arb_doc Tutil.arb_pattern Tutil.arb_update)
    (fun (doc, pat, stmt) ->
      let store = Store.of_document (Xml_tree.copy doc) in
      let mv = Mview.materialize store pat in
      let targets = Update.targets store stmt in
      QCheck.assume
        (match stmt with Update.Replace_value _ -> false | _ -> true);
      let kind, delta, survivors_only =
        match stmt with
        | Update.Insert _ ->
          let app = Update.apply_insert store stmt ~targets in
          (`Insert, Delta.of_insert store pat app, false)
        | Update.Delete _ ->
          let app = Update.apply_delete store ~targets in
          (`Delete, Delta.of_delete store pat app, true)
        | Update.Replace_value _ -> assert false
      in
      let scope = Lattice.full pat in
      List.for_all
        (fun s ->
          Maint.Terms.survives mv delta ~scope ~kind s
          || Tuple_table.is_empty
               (Maint.Terms.eval mv delta ~scope ~s_set:s ~survivors_only))
        (Maint.Terms.candidates mv ~scope))

let golden_sequence =
  (* Several updates in a row keep the view consistent. *)
  Tutil.qtest ~count:150 "update sequences stay consistent"
    (QCheck.triple Tutil.arb_doc Tutil.arb_pattern
       (QCheck.list_of_size (QCheck.Gen.int_range 1 4) Tutil.arb_update))
    (fun (doc, pat, stmts) ->
      let store = Store.of_document (Xml_tree.copy doc) in
      let mv = Mview.materialize store pat in
      List.iter (fun stmt -> ignore (Maint.propagate mv stmt)) stmts;
      let store2 = Store.of_document (Xml_tree.copy doc) in
      let mv2 =
        List.fold_left
          (fun _ stmt ->
            let m, _ = Recompute.recompute_after store2 stmt ~pat in
            m)
          (Mview.materialize store2 pat) stmts
      in
      match Recompute.diff mv mv2 with
      | None -> true
      | Some d -> QCheck.Test.fail_reportf "diverged after sequence: %s" d)

let mats_integrity =
  (* Invariant: after any propagation, every materialized snowcap table
     equals a fresh evaluation of its sub-pattern over the committed
     relations. *)
  Tutil.qtest ~count:200 "snowcap tables stay exact"
    (QCheck.triple Tutil.arb_doc Tutil.arb_pattern Tutil.arb_update)
    (fun (doc, pat, stmt) ->
      let store = Store.of_document (Xml_tree.copy doc) in
      let mv = Mview.materialize ~policy:Mview.Snowcaps store pat in
      let _ = Maint.propagate mv stmt in
      List.for_all
        (fun (s, table) ->
          let fresh =
            Plan.eval_subtree pat
              ~atom:(fun i -> Plan.atom_of_store store pat i)
              ~within:(Lattice.mem s) ~root:0
          in
          let dump (t : Tuple_table.t) =
            let cols = Tuple_table.cols t in
            Array.to_list (Tuple_table.rows t)
            |> List.map (fun row ->
                   List.sort compare
                     (Array.to_list
                        (Array.mapi (fun p id -> (cols.(p), Dewey.encode id)) row)))
            |> List.sort compare
          in
          dump table = dump fresh)
        mv.Mview.mats)

(* {1 Maintenance work bounds}

   The paper's efficiency claim is that delta extraction scales with the
   update region, not the document: region-pruned relation scans mean
   the maintenance joins only ever see tuples inside (or straddling) the
   inserted subtrees. The [maint.delta] counters make that executable:
   [nodes] is the number of update-region nodes scanned, [rows] the
   total delta-table output. *)

let propagate_profile ~kb ~view stmt =
  let store = Store.of_document (Xmark_gen.document ~seed:7 ~target_kb:kb) in
  let mv = Mview.materialize store view in
  let (), snap = Obs.with_scope (fun () -> ignore (Maint.propagate mv stmt)) in
  snap

(* Every Figure-20 view/update pair: delta output is linearly bounded by
   the scanned update-region nodes (factor = pattern size), and the
   region itself is a fraction of the document. *)
let test_delta_work_bounded_by_region () =
  List.iter
    (fun (vname, uname) ->
      let view = Xmark_views.find vname and u = Xmark_updates.find uname in
      let doc = Xmark_gen.document ~seed:7 ~target_kb:16 in
      let doc_nodes = Xml_tree.size doc in
      let store = Store.of_document doc in
      let mv = Mview.materialize store view in
      let (), snap =
        Obs.with_scope (fun () ->
            ignore (Maint.propagate mv (Xmark_updates.insert u)))
      in
      let nodes = Obs.counter_value snap "maint.delta.nodes"
      and rows = Obs.counter_value snap "maint.delta.rows" in
      if rows > Pattern.node_count view * nodes then
        Alcotest.failf "%s/%s: %d delta rows from %d region nodes (pattern %d)"
          vname uname rows nodes (Pattern.node_count view);
      if nodes > doc_nodes / 4 then
        Alcotest.failf
          "%s/%s: scanned %d nodes of a %d-node document -- region pruning \
           regressed to a full scan?"
          vname uname nodes doc_nodes)
    Xmark_updates.figure20_pairs

(* A single-target insert of a k-node fragment costs the same whether
   the document is 16 KB or 256 KB, and scales linearly in k. *)
let test_delta_work_doc_size_independent () =
  let frag n =
    String.concat ""
      (List.init n (fun i ->
           Printf.sprintf
             "<person id=\"pX%d\"><name>Zed %d</name></person>" i i))
  in
  let counts ~kb n =
    let snap =
      propagate_profile ~kb ~view:Xmark_views.q1
        (Update.insert ~into:"/site/people" (frag n))
    in
    ( Obs.counter_value snap "maint.delta.nodes",
      Obs.counter_value snap "maint.delta.rows" )
  in
  let small = counts ~kb:16 1 in
  Alcotest.(check (pair int int)) "same work on a 4x document" small
    (counts ~kb:64 1);
  Alcotest.(check (pair int int)) "same work on a 16x document" small
    (counts ~kb:256 1);
  let n5, r5 = counts ~kb:16 5 and n1, r1 = small in
  Alcotest.(check bool) "5x fragment, work grows" true (n5 > n1 && r5 > r1);
  Alcotest.(check bool) "5x fragment, at most linear growth" true
    (n5 <= 5 * n1 + 5 && r5 <= 5 * r1 + 5)

(* Every phase timer of the Figure 18/19 taxonomy reports a span for a
   plain propagate, and the phase timing embedded in the report agrees
   with the [maint.phase] timers. *)
let test_phase_timers_cover_taxonomy () =
  let snap =
    propagate_profile ~kb:16 ~view:Xmark_views.q1
      (Xmark_updates.insert (Xmark_updates.find "X1_L"))
  in
  List.iter
    (fun phase ->
      let key = "maint.phase." ^ phase in
      if Obs.timer_spans snap key = 0 then
        Alcotest.failf "phase timer %s recorded no span" key)
    [
      "find_target"; "apply_doc"; "compute_delta"; "get_expression";
      "execute"; "update_aux";
    ]

let () =
  Alcotest.run "maint"
    [
      ( "paper examples (insert)",
        [
          Alcotest.test_case "Example 3.1/3.2 terms" `Quick test_example_3_1_insert;
          Alcotest.test_case "Example 3.4 data pruning" `Quick test_example_3_4_no_c;
          Alcotest.test_case "Example 3.5 value pruning" `Quick test_example_3_5_vpred;
          Alcotest.test_case "Example 3.7 ID pruning" `Quick test_example_3_7_id_pruning;
          Alcotest.test_case "Example 3.14 PIMT" `Quick test_example_3_14_pimt;
        ] );
      ( "paper examples (delete)",
        [
          Alcotest.test_case "Example 4.1" `Quick test_example_4_1;
          Alcotest.test_case "Example 4.5" `Quick test_example_4_5;
          Alcotest.test_case "Example 4.8 derivation counts" `Quick
            test_example_4_8_derivation_counts;
          Alcotest.test_case "PDMT content refresh" `Quick test_pdmt_content;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "multi-view shared store" `Quick test_multi_view_shared_store;
          Alcotest.test_case "delta work bounded by region" `Quick
            test_delta_work_bounded_by_region;
          Alcotest.test_case "delta work doc-size independent" `Quick
            test_delta_work_doc_size_independent;
          Alcotest.test_case "phase timers cover the taxonomy" `Quick
            test_phase_timers_cover_taxonomy;
          Alcotest.test_case "view set" `Quick test_view_set;
          Alcotest.test_case "dispatch guards" `Quick test_dispatch_errors;
          Alcotest.test_case "replace value" `Quick test_replace_value;
          Alcotest.test_case "vpred flip fallback" `Quick test_vpred_flip_fallback;
          Alcotest.test_case "no fallback on plain updates" `Quick
            test_no_fallback_on_plain_updates;
        ] );
      ( "golden properties",
        [ golden_snowcaps; golden_leaves; golden_sequence; golden_no_pruning;
          pruning_soundness; mats_integrity ] );
    ]
