lib/dewey/label_dict.mli:
