lib/dewey/dewey.ml: Array Buffer Char Label_dict Stdlib String Sys
