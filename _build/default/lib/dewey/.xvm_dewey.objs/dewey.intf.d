lib/dewey/dewey.mli: Label_dict
