lib/dewey/label_dict.ml: Array Hashtbl
