(** Dictionary mapping XML node labels (element names, ["@attr"] attribute
    names, ["#text"]) to dense integer codes, as used inside structural
    Dewey identifiers. A dictionary is mutable and grows on demand. *)

type t

val create : unit -> t

(** [code dict label] returns the code for [label], allocating a fresh one
    if the label was never seen. *)
val code : t -> string -> int

(** [find dict label] returns the code for [label] if already allocated. *)
val find : t -> string -> int option

(** [label dict code] returns the label for [code].
    @raise Invalid_argument if [code] was never allocated. *)
val label : t -> int -> string

(** Number of distinct labels registered so far. *)
val size : t -> int
