(** Dynamic Dewey structural identifiers.

    Stand-in for the Compact Dynamic Dewey IDs of Xu et al. (2009), keeping
    the four properties the maintenance algorithms rely on:

    - structural comparisons: parent / ancestor tests by step-prefix;
    - the IDs and labels of all ancestors are recoverable from an ID;
    - no relabeling under updates: sibling ordinals are non-empty integer
      sequences ordered lexicographically, so a fresh ordinal strictly
      between any two existing ones (or after the last one) always exists;
    - compact encoding: zig-zag varint packing into a byte string.

    An identifier is a sequence of steps, one per ancestor-or-self node;
    each step carries the label code of that node and its dynamic ordinal
    among its siblings. *)

type step = { lab : int; ord : int array }

type t = private step array

(** {1 Ordinals} *)

module Ord : sig
  type o = int array

  (** Ordinal of a first child. *)
  val first : o

  (** [after o] is an ordinal strictly greater than [o]. *)
  val after : o -> o

  (** [before o] is an ordinal strictly smaller than [o]. *)
  val before : o -> o

  (** [between a b] is an ordinal strictly between [a] and [b].
      @raise Invalid_argument if [compare a b >= 0]. *)
  val between : o -> o -> o

  (** Lexicographic order; a strict prefix sorts before its extensions. *)
  val compare : o -> o -> int
end

(** {1 Construction} *)

(** [root ~lab] is the identifier of a document root labeled [lab]. *)
val root : lab:int -> t

(** [child parent ~lab ~ord] extends [parent] with one step. *)
val child : t -> lab:int -> ord:Ord.o -> t

(** [of_steps steps] validates and casts a raw step array.
    @raise Invalid_argument on an empty array. *)
val of_steps : step array -> t

(** {1 Structure} *)

val depth : t -> int

(** Label code of the node itself (last step). *)
val label : t -> int

(** Label codes from the root down to the node itself. *)
val label_path : t -> int array

(** Ordinal of the node among its siblings (last step). *)
val last_ord : t -> Ord.o

(** [parent id] is [None] on a root identifier. *)
val parent : t -> t option

(** All strict-ancestor identifiers, root first. *)
val ancestors : t -> t list

(** [has_ancestor_label ?self id ~lab] tells whether some strict ancestor
    (or the node itself when [self] is [true]) carries label [lab]. *)
val has_ancestor_label : ?self:bool -> t -> lab:int -> bool

(** {1 Comparisons} *)

(** Document order: ancestors sort before their descendants, siblings by
    ordinal. Total on the identifiers of one document. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int

(** [prefix_hash id k] hashes the first [k] steps of [id]; agrees with
    {!hash} on full length. Used for allocation-free ancestor probing. *)
val prefix_hash : t -> int -> int

(** [prefix_equal a ka b kb]: the first [ka] steps of [a] equal the first
    [kb] steps of [b] (hence [ka = kb]). *)
val prefix_equal : t -> int -> t -> int -> bool

(** [is_parent p c]: [p] is the parent of [c]. *)
val is_parent : t -> t -> bool

(** [is_ancestor a d]: [a] is a strict ancestor of [d]. *)
val is_ancestor : t -> t -> bool

val is_ancestor_or_self : t -> t -> bool

(** {1 Codec} *)

(** Compact binary encoding; injective, so usable as a hash key. *)
val encode : t -> string

(** Inverse of {!encode}.
    @raise Invalid_argument on malformed input. *)
val decode : string -> t

(** [to_string ?dict id] renders e.g. ["a1.c1.b2"]; label codes are printed
    numerically when no dictionary is given. *)
val to_string : ?dict:Label_dict.t -> t -> string
