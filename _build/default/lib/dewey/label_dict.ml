type t = {
  codes : (string, int) Hashtbl.t;
  mutable labels : string array;
  mutable count : int;
}

let create () = { codes = Hashtbl.create 64; labels = Array.make 64 ""; count = 0 }

let code t label =
  match Hashtbl.find_opt t.codes label with
  | Some c -> c
  | None ->
    let c = t.count in
    if c >= Array.length t.labels then begin
      let grown = Array.make (2 * Array.length t.labels) "" in
      Array.blit t.labels 0 grown 0 c;
      t.labels <- grown
    end;
    t.labels.(c) <- label;
    t.count <- c + 1;
    Hashtbl.add t.codes label c;
    c

let find t label = Hashtbl.find_opt t.codes label

let label t c =
  if c < 0 || c >= t.count then invalid_arg "Label_dict.label: unknown code";
  t.labels.(c)

let size t = t.count
