(** The trivial maintenance baseline (Section 6.5): apply the update to
    the document and re-evaluate the view from scratch. *)

(** [recompute_after store u ~pat] applies [u], commits, and materializes
    [pat] anew. Returns the fresh view and the recomputation time alone
    (excluding target location and document mutation), in seconds. *)
val recompute_after :
  Store.t -> Update.t -> pat:Pattern.t -> Mview.t * float

(** [equal a b]: same projected tuples, derivation counts and payloads —
    the oracle used by the test suite. *)
val equal : Mview.t -> Mview.t -> bool

(** Human-readable first difference, for test diagnostics. *)
val diff : Mview.t -> Mview.t -> string option
