(** Node-at-a-time incremental view maintenance — a re-implementation of
    the IVMA algorithm of Sawires et al. (SIGMOD 2005) on our store, used
    as the paper's closest competitor (Section 6.6).

    IVMA propagates {e one node} insertion/removal per invocation: a bulk
    update adding or removing [n] nodes triggers [n] consecutive
    maintenance calls, each of which checks the node against every view
    position and recomputes the matching bindings. Use it on a view
    materialized with the [Leaves] policy (it maintains no snowcaps). *)

type report = {
  elapsed : float;  (** total propagation time, seconds *)
  invocations : int;  (** number of per-node maintenance calls *)
  embeddings_added : int;
  embeddings_removed : int;
}

(** [propagate mv u] applies [u] to the document and maintains [mv] by
    repeated node-level propagation. *)
val propagate : Mview.t -> Update.t -> report
