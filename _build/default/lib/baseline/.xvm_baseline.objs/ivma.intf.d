lib/baseline/ivma.mli: Mview Update
