lib/baseline/recompute.mli: Mview Pattern Store Update
