lib/baseline/recompute.ml: Array Char Dewey List Mview Printf Store String Timing Update
