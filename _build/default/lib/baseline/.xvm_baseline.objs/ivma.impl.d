lib/baseline/ivma.ml: Array Buffer Dewey Hashtbl Lazy List Maint Mview Pattern Plan Seq Store Timing Tuple_table Update Xml_tree
