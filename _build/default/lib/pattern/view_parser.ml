exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Mutable pattern nodes under construction. *)
type bnode = {
  tag : string;
  axis : Pattern.axis;
  mutable store_id : bool;
  mutable store_val : bool;
  mutable store_cont : bool;
  mutable vpred : string option;
  mutable kids : bnode list;
}

let bnode tag axis =
  { tag; axis; store_id = false; store_val = false; store_cont = false;
    vpred = None; kids = [] }

let tag_of_test = function
  | Xpath.Name s -> s
  | Xpath.Star -> "*"
  | Xpath.Attr a -> "@" ^ a

let axis_of = function Xpath.Child -> Pattern.Child | Xpath.Descendant -> Pattern.Descendant

(* Attach an XPath path below [anchor]; returns the node bound to the last
   step. Predicates become existential branches (conjunctive only). *)
let rec attach_path anchor (path : Xpath.path) =
  match path with
  | [] -> anchor
  | step :: rest ->
    let child = bnode (tag_of_test step.Xpath.test) (axis_of step.Xpath.axis) in
    anchor.kids <- anchor.kids @ [ child ];
    List.iter (attach_pred child) step.Xpath.preds;
    attach_path child rest

and attach_pred node = function
  | Xpath.Exists p -> ignore (attach_path node p)
  | Xpath.Eq ([], lit) -> node.vpred <- Some lit
  | Xpath.Eq (p, lit) ->
    let last = attach_path node p in
    last.vpred <- Some lit
  | Xpath.And (a, b) ->
    attach_pred node a;
    attach_pred node b
  | Xpath.Or _ -> fail "disjunctive predicates are not allowed in views"

let to_spec root =
  let rec conv b =
    Pattern.n ~axis:b.axis ~id:b.store_id ~value:b.store_val ~content:b.store_cont
      ?vpred:b.vpred b.tag (List.map conv b.kids)
  in
  conv root

(* {1 Lexical helpers over the raw statement} *)

type lexer = { src : string; mutable pos : int }

let skip_ws lx =
  while
    lx.pos < String.length lx.src
    && (match lx.src.[lx.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    lx.pos <- lx.pos + 1
  done

let looking_at lx s =
  let n = String.length s in
  lx.pos + n <= String.length lx.src && String.sub lx.src lx.pos n = s

let eat lx s =
  if looking_at lx s then begin
    lx.pos <- lx.pos + String.length s;
    true
  end
  else false

let expect lx s = if not (eat lx s) then fail "expected %S at offset %d" s lx.pos

let is_word_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true | _ -> false

let keyword lx kw =
  skip_ws lx;
  let n = String.length kw in
  if
    looking_at lx kw
    && (lx.pos + n = String.length lx.src || not (is_word_char lx.src.[lx.pos + n]))
  then begin
    lx.pos <- lx.pos + n;
    true
  end
  else false

let read_var lx =
  skip_ws lx;
  expect lx "$";
  let start = lx.pos in
  while lx.pos < String.length lx.src && is_word_char lx.src.[lx.pos] do
    lx.pos <- lx.pos + 1
  done;
  if lx.pos = start then fail "expected a variable name at offset %d" start;
  String.sub lx.src start (lx.pos - start)

let read_literal lx =
  skip_ws lx;
  let quote =
    if eat lx "\"" then '"'
    else if eat lx "'" then '\''
    else fail "expected a string literal at offset %d" lx.pos
  in
  let start = lx.pos in
  while lx.pos < String.length lx.src && lx.src.[lx.pos] <> quote do
    lx.pos <- lx.pos + 1
  done;
  if lx.pos >= String.length lx.src then fail "unterminated literal";
  let s = String.sub lx.src start (lx.pos - start) in
  lx.pos <- lx.pos + 1;
  s

(* Read a path (starting with '/' or '//') up to a delimiter that cannot
   belong to it. Bracket depth tracks predicates. *)
let read_path_text lx =
  skip_ws lx;
  let start = lx.pos in
  let depth = ref 0 in
  let continue = ref true in
  while !continue && lx.pos < String.length lx.src do
    (match lx.src.[lx.pos] with
    | '[' -> incr depth
    | ']' -> if !depth = 0 then continue := false else decr depth
    | ',' | '}' | '<' | '\n' when !depth = 0 -> continue := false
    | ' ' | '\t' | '\r' when !depth = 0 -> continue := false
    | '=' when !depth = 0 -> continue := false
    | _ -> ());
    if !continue then lx.pos <- lx.pos + 1
  done;
  String.sub lx.src start (lx.pos - start)

let parse_xpath s =
  try Xpath.parse s with Xpath.Parse_error m -> fail "bad path %S: %s" s m

(* {1 The statement parser} *)

type env = {
  vars : (string, bnode) Hashtbl.t;  (* variable -> bound pattern node *)
  mutable root : bnode option;  (* the single absolute anchor *)
  mutable doc_vars : string list;  (* let-bound document variables *)
}

let anchor_absolute env path =
  match (env.root, path) with
  | _, [] -> fail "empty absolute path"
  | Some _, _ -> fail "views must have a single absolute anchor"
  | None, first :: rest ->
    let root = bnode (tag_of_test first.Xpath.test) (axis_of first.Xpath.axis) in
    List.iter (attach_pred root) first.Xpath.preds;
    env.root <- Some root;
    attach_path root rest

let parse_for_binding env lx =
  let var = read_var lx in
  skip_ws lx;
  if not (keyword lx "in") then fail "expected 'in' after $%s" var;
  skip_ws lx;
  if looking_at lx "doc(" then begin
    expect lx "doc(";
    let _uri = read_literal lx in
    expect lx ")";
    let path = parse_xpath (read_path_text lx) in
    Hashtbl.replace env.vars var (anchor_absolute env path)
  end
  else begin
    let base = read_var lx in
    if List.mem base env.doc_vars then begin
      let path = parse_xpath (read_path_text lx) in
      Hashtbl.replace env.vars var (anchor_absolute env path)
    end
    else
      match Hashtbl.find_opt env.vars base with
      | None -> fail "unknown variable $%s" base
      | Some node ->
        let path = parse_xpath (read_path_text lx) in
        Hashtbl.replace env.vars var (attach_path node path)
  end

let parse_where_cond env lx =
  skip_ws lx;
  let target =
    if looking_at lx "string(" then begin
      expect lx "string(";
      let var = read_var lx in
      expect lx ")";
      match Hashtbl.find_opt env.vars var with
      | None -> fail "unknown variable $%s" var
      | Some node -> node
    end
    else begin
      let var = read_var lx in
      match Hashtbl.find_opt env.vars var with
      | None -> fail "unknown variable $%s" var
      | Some node ->
        skip_ws lx;
        if looking_at lx "/" then attach_path node (parse_xpath (read_path_text lx))
        else node
    end
  in
  skip_ws lx;
  expect lx "=";
  let lit = read_literal lx in
  target.vpred <- Some lit

(* Scan the return clause for view expressions; anything else (element
   constructors, literal text, braces) is structural noise. *)
let parse_return env lx =
  let len = String.length lx.src in
  while lx.pos < len do
    skip_ws lx;
    if lx.pos >= len then ()
    else if looking_at lx "id(" then begin
      expect lx "id(";
      let var = read_var lx in
      expect lx ")";
      match Hashtbl.find_opt env.vars var with
      | None -> fail "unknown variable $%s" var
      | Some node -> node.store_id <- true
    end
    else if looking_at lx "string(" then begin
      expect lx "string(";
      let var = read_var lx in
      expect lx ")";
      match Hashtbl.find_opt env.vars var with
      | None -> fail "unknown variable $%s" var
      | Some node -> node.store_val <- true
    end
    else if looking_at lx "$" then begin
      let var = read_var lx in
      match Hashtbl.find_opt env.vars var with
      | None -> fail "unknown variable $%s" var
      | Some node ->
        skip_ws lx;
        if looking_at lx "/" then begin
          let text = read_path_text lx in
          (* A trailing /text() selects the string value. *)
          let wants_val, text =
            let suffix = "/text()" in
            if
              String.length text >= String.length suffix
              && String.sub text
                   (String.length text - String.length suffix)
                   (String.length suffix)
                 = suffix
            then (true, String.sub text 0 (String.length text - String.length suffix))
            else (false, text)
          in
          let target =
            if text = "" then node else attach_path node (parse_xpath text)
          in
          if wants_val then target.store_val <- true else target.store_cont <- true
        end
        else node.store_cont <- true
    end
    else lx.pos <- lx.pos + 1
  done

let parse ~name q =
  let lx = { src = q; pos = 0 } in
  let env = { vars = Hashtbl.create 8; root = None; doc_vars = [] } in
  skip_ws lx;
  if keyword lx "let" then begin
    let var = read_var lx in
    skip_ws lx;
    expect lx ":=";
    skip_ws lx;
    expect lx "doc(";
    let _uri = read_literal lx in
    expect lx ")";
    env.doc_vars <- var :: env.doc_vars;
    skip_ws lx;
    if not (keyword lx "return") then fail "expected 'return' after let clause"
  end;
  if not (keyword lx "for") then fail "expected 'for'";
  parse_for_binding env lx;
  skip_ws lx;
  while eat lx "," do
    parse_for_binding env lx;
    skip_ws lx
  done;
  if keyword lx "where" then begin
    parse_where_cond env lx;
    while keyword lx "and" do
      parse_where_cond env lx
    done
  end;
  if not (keyword lx "return") then fail "expected 'return'";
  parse_return env lx;
  match env.root with
  | None -> fail "view has no absolute anchor"
  | Some root -> Pattern.compile ~name (to_spec root)
