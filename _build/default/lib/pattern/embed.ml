let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
    let tails = cartesian rest in
    List.concat_map (fun c -> List.map (fun t -> c @ t) tails) choices

let strict_descendants node =
  match Xml_tree.descendants_or_self node with
  | [] -> []
  | _self :: rest -> rest

(* Bindings of the pattern subtree rooted at [i], with [i] bound to [dn];
   each binding is an association list (pattern index, document node). *)
let rec bind pat i dn =
  if not (Pattern.tag_matches pat.Pattern.tags.(i) dn && Pattern.vpred_holds pat i dn)
  then []
  else
    let per_child =
      List.map
        (fun j ->
          let candidates =
            match pat.Pattern.axes.(j) with
            | Pattern.Child -> dn.Xml_tree.children
            | Pattern.Descendant -> strict_descendants dn
          in
          List.concat_map (fun c -> bind pat j c) candidates)
        (Pattern.children pat i)
    in
    List.map (fun tail -> (i, dn) :: tail) (cartesian per_child)

let embeddings store pat =
  let root = Store.root store in
  let top_candidates =
    match pat.Pattern.axes.(0) with
    | Pattern.Child -> [ root ]
    | Pattern.Descendant -> Xml_tree.descendants_or_self root
  in
  let bindings = List.concat_map (fun c -> bind pat 0 c) top_candidates in
  let k = Pattern.node_count pat in
  List.map
    (fun binding ->
      Array.init k (fun i -> Store.id_of store (List.assoc i binding)))
    bindings
