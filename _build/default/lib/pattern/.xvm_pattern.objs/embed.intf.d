lib/pattern/embed.mli: Dewey Pattern Store
