lib/pattern/pattern.ml: Array Buffer List Printf String Xml_tree
