lib/pattern/view_parser.mli: Pattern
