lib/pattern/pattern.mli: Xml_tree
