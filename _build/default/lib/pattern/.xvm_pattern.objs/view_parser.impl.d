lib/pattern/view_parser.ml: Hashtbl List Pattern Printf String Xpath
