lib/pattern/embed.ml: Array List Pattern Store Xml_tree
