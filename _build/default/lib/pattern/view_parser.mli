(** Parser for the conjunctive XQuery view dialect of Figure 3 of the
    paper, compiled into a tree pattern.

    Supported shape (whitespace-insensitive, case-sensitive keywords):
    {[
      [let $d := doc("uri") return]
      for $x1 in [doc("uri") | $d | $xj] PATH
          [, $xi in [$d | $xj] PATH] ...
      [where COND [and COND] ...]
      return RETURN
    ]}
    where [PATH] is an XPath{/,//,*,[]} path whose predicates are
    conjunctive; [COND] is [$x = "c"], [string($x) = "c"] or
    [$x/PATH = "c"]; and [RETURN] is arbitrary element-constructor text in
    which the expressions [$x], [id($x)], [string($x)], [$x/PATH] and
    [$x/PATH/text()] select what the view stores ([cont], [ID], [val],
    descendant [cont], descendant [val] respectively). *)

exception Parse_error of string

(** [parse ~name q] compiles a view statement to its tree pattern.
    @raise Parse_error on malformed input or non-conjunctive predicates. *)
val parse : name:string -> string -> Pattern.t
