(** Reference (naive) tree-embedding semantics of patterns, including
    derivation counts — used as the correctness oracle for the algebraic
    evaluator and the maintenance algorithms.

    An embedding maps every pattern node to a document node such that
    labels match, value predicates hold and [/] / [//] edges are respected
    (Section 2.2). *)

(** [embeddings store pat] enumerates all embeddings; each result array is
    indexed by pattern-node index and holds the identifier of the bound
    document node. Exponential in the worst case: meant for small
    documents and tests. *)
val embeddings : Store.t -> Pattern.t -> Dewey.t array list
