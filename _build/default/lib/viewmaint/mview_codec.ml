exception Corrupt of string

let magic = "XVM1"

let add_varint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let add_opt buf = function
  | None -> Buffer.add_char buf '\x00'
  | Some s ->
    Buffer.add_char buf '\x01';
    add_string buf s

let save mv =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  add_varint buf (Pattern.node_count mv.Mview.pat);
  add_varint buf (Array.length mv.Mview.stored);
  add_varint buf (Mview.cardinality mv);
  Mview.iter_entries mv (fun e ->
      add_varint buf e.Mview.count;
      Array.iter
        (fun c ->
          add_string buf (Dewey.encode c.Mview.cell_id);
          add_opt buf c.Mview.cell_value;
          add_opt buf c.Mview.cell_content)
        e.Mview.cells);
  Buffer.contents buf

type reader = { src : string; mutable pos : int }

let read_byte r =
  if r.pos >= String.length r.src then raise (Corrupt "truncated");
  let b = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  b

let read_varint r =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let byte = read_byte r in
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
  done;
  !v

let read_string r =
  let n = read_varint r in
  if r.pos + n > String.length r.src then raise (Corrupt "truncated string");
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let read_opt r =
  match read_byte r with
  | 0 -> None
  | 1 -> Some (read_string r)
  | _ -> raise (Corrupt "bad option tag")

let load ?policy store pat data =
  let r = { src = data; pos = 0 } in
  if String.length data < 4 || String.sub data 0 4 <> magic then
    raise (Corrupt "bad magic");
  r.pos <- 4;
  let k = read_varint r in
  if k <> Pattern.node_count pat then raise (Corrupt "pattern node count mismatch");
  let stored = read_varint r in
  if stored <> List.length (Pattern.stored_nodes pat) then
    raise (Corrupt "stored-attribute arity mismatch");
  let entries = read_varint r in
  let mv = Mview.empty_shell ?policy store pat in
  for _ = 1 to entries do
    let count = read_varint r in
    let cells =
      Array.init stored (fun _ ->
          let id =
            try Dewey.decode (read_string r)
            with Invalid_argument m -> raise (Corrupt m)
          in
          let value = read_opt r in
          let content = read_opt r in
          { Mview.cell_id = id; cell_value = value; cell_content = content })
    in
    Mview.restore_entry mv ~count ~cells
  done;
  if r.pos <> String.length data then raise (Corrupt "trailing bytes");
  mv

let save_to_file mv path =
  let oc = open_out_bin path in
  output_string oc (save mv);
  close_out oc

let load_from_file ?policy store pat path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  load ?policy store pat data
