(** Cost-based choice of the snowcaps to materialize — the optimization
    the paper sketches in Section 3.5 ("Optimal choice of snowcaps") and
    delegates to the database's cost-based machinery.

    The decision weighs, per candidate snowcap [S]:

    - {e how often} [S] would serve as the R-part of a surviving union
      term, derived from an {e update profile} — the expected relative
      update rate per element label (Section 3.5's workload statistics);
      a term with R-part [S] fires when the update produces Δs for every
      node outside [S], so its frequency is bounded by the scarcest such
      rate;
    - {e what it saves}: recomputing [S] from the lattice leaves costs on
      the order of the summed canonical-relation sizes of its nodes;
    - {e what it costs}: keeping [S] materialized costs upkeep and space
      proportional to its estimated cardinality.

    The estimates use the store's relation statistics only — no view
    evaluation happens here. *)

(** Relative update rate per element label; labels not listed get
    {!default_rate}. *)
type profile = (string * float) list

val default_rate : float

(** The uniform profile: every label equally likely to be updated. *)
val uniform : profile

(** [score store pat ~profile s] — the estimated net benefit of
    materializing snowcap [s]; positive means worth keeping. *)
val score : Store.t -> Pattern.t -> profile:profile -> Lattice.nset -> float

(** [choose ?max_mats store pat ~profile] returns the snowcaps with
    positive score, best first, at most [max_mats] (default: one per
    lattice level, as in the paper's experiments). *)
val choose :
  ?max_mats:int -> Store.t -> Pattern.t -> profile:profile -> Lattice.nset list

(** [policy ?max_mats store pat ~profile] wraps {!choose} as a
    materialization policy; an empty choice degenerates to [Leaves]. *)
val policy :
  ?max_mats:int -> Store.t -> Pattern.t -> profile:profile -> Mview.policy
