type t = { store : Store.t; mutable views : Mview.t list (* reverse order *) }

let create store = { store; views = [] }

let store t = t.store

let name_of mv = mv.Mview.pat.Pattern.name

let find t name = List.find_opt (fun mv -> name_of mv = name) t.views

let add t ?policy pat =
  (match find t pat.Pattern.name with
  | Some _ ->
    invalid_arg
      (Printf.sprintf "View_set.add: a view named %S already exists" pat.Pattern.name)
  | None -> ());
  let mv = Mview.materialize ?policy t.store pat in
  t.views <- mv :: t.views;
  mv

let remove t name = t.views <- List.filter (fun mv -> name_of mv <> name) t.views

let views t = List.rev t.views

let update t u =
  let views = views t in
  match views with
  | [] ->
    (* No views: still apply the document side. *)
    let _, _ = Maint.apply_only t.store u in
    Store.commit t.store;
    []
  | _ ->
    let b = Timing.zero () in
    let targets =
      Timing.timed b
        (fun b v -> b.Timing.find_target <- v)
        (fun () -> Update.targets t.store u)
    in
    (* Predicate watches must be recorded per view before the mutation. *)
    let watched = List.map (fun mv -> (mv, Maint.vpred_watches mv targets)) views in
    let applied =
      Timing.timed b
        (fun b v -> b.Timing.apply_doc <- v)
        (fun () ->
          match u with
          | Update.Insert _ -> Maint.Ins (Update.apply_insert t.store u ~targets)
          | Update.Delete _ -> Maint.Del (Update.apply_delete t.store ~targets)
          | Update.Replace_value { text; _ } ->
            let d, i = Update.apply_replace t.store ~text ~targets in
            Maint.Repl (d, i))
    in
    (* A view whose value predicate flipped takes the rebuild path, which
       commits the store — so all incremental propagations (needing the
       pre-update relations) must run first. *)
    let clean, flipped =
      List.partition (fun (mv, watches) -> not (Maint.watches_flipped mv watches)) watched
    in
    let n_clean = List.length clean in
    let clean_reports =
      List.mapi
        (fun i (mv, watches) ->
          let commit = flipped = [] && i = n_clean - 1 in
          (mv, Maint.propagate_applied ~commit ~watches mv applied))
        clean
    in
    let flipped_reports =
      List.map
        (fun (mv, watches) -> (mv, Maint.propagate_applied ~watches mv applied))
        flipped
    in
    (* Restore the set's insertion order. *)
    let all = clean_reports @ flipped_reports in
    let reports =
      List.filter_map (fun mv -> List.find_opt (fun (m, _) -> m == mv) all) views
    in
    (* Attribute the shared phases to the first report. *)
    (match reports with
    | (_, first) :: _ ->
      first.Maint.timing.Timing.find_target <- b.Timing.find_target;
      first.Maint.timing.Timing.apply_doc <- b.Timing.apply_doc
    | [] -> ());
    reports
