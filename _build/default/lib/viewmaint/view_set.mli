(** A set of materialized views over one store, maintained together: each
    update statement locates its targets and mutates the document {e
    once}, then propagates to every view (the canonical relations commit
    after the last propagation). This is the "several views materialized"
    deployment the paper's Section 3.5 discusses. *)

type t

val create : Store.t -> t

val store : t -> Store.t

(** [add set ?policy pat] materializes a new view in the set and returns
    it. Views are keyed by their pattern's [name].
    @raise Invalid_argument if a view with the same name exists. *)
val add : t -> ?policy:Mview.policy -> Pattern.t -> Mview.t

(** [find set name] — the view named [name], if any. *)
val find : t -> string -> Mview.t option

(** [remove set name] drops a view from the set (the store is
    untouched). *)
val remove : t -> string -> unit

(** Views in insertion order. *)
val views : t -> Mview.t list

(** [update set u] applies [u] to the document once and incrementally
    maintains every view; reports are in view insertion order. The
    find-targets and document-mutation times appear in the first report
    only (they are shared work). *)
val update : t -> Update.t -> (Mview.t * Maint.report) list
