(** Per-phase timing of one update-propagation run — the five components
    reported by the paper's experiments (Section 6.1), plus the document
    update itself (which the paper attributes to the update process, not
    to view maintenance). All times in seconds. *)

type breakdown = {
  mutable find_target : float;  (** locate the update's target nodes *)
  mutable apply_doc : float;  (** mutate the document, assign new IDs *)
  mutable compute_delta : float;  (** build the Δ⁺ / Δ⁻ tables *)
  mutable get_expression : float;  (** develop and prune the union terms *)
  mutable execute : float;  (** evaluate terms, add/remove/modify tuples *)
  mutable update_aux : float;  (** refresh snowcaps and canonical relations *)
}

val zero : unit -> breakdown

(** Sum of the five view-maintenance phases (excludes [apply_doc]),
    matching the paper's reported totals. *)
val maintenance_total : breakdown -> float

(** [timed b setter f] runs [f], adds the elapsed wall-clock time into the
    field selected by [setter], and returns [f]'s result. *)
val timed : breakdown -> (breakdown -> float -> unit) -> (unit -> 'a) -> 'a

(** Wall-clock duration of a thunk, in seconds. *)
val duration : (unit -> 'a) -> 'a * float
