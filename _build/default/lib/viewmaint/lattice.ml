type nset = bool array

let full pat = Array.make (Pattern.node_count pat) true
let empty pat = Array.make (Pattern.node_count pat) false
let size s = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 s
let mem s i = s.(i)
let equal a b = a = b

let subset a b =
  let n = Array.length a in
  let rec go i = i >= n || ((not a.(i)) || b.(i)) && go (i + 1) in
  go 0

(* Enumerate parent-closed inclusion masks over the preorder array: node 0
   is always in; node i may be in only if its parent is. *)
let snowcaps pat =
  let k = Pattern.node_count pat in
  let acc = ref [] in
  let mask = Array.make k false in
  mask.(0) <- true;
  let rec go i =
    if i >= k then acc := Array.copy mask :: !acc
    else begin
      (* excluded *)
      mask.(i) <- false;
      go (i + 1);
      (* included, if the parent is *)
      if mask.(pat.Pattern.parents.(i)) then begin
        mask.(i) <- true;
        go (i + 1);
        mask.(i) <- false
      end
    end
  in
  go 1;
  List.sort (fun a b -> Stdlib.compare (size a) (size b)) !acc

let proper_snowcaps pat =
  let k = Pattern.node_count pat in
  List.filter (fun s -> size s < k) (snowcaps pat)

let chain pat =
  let k = Pattern.node_count pat in
  let prefixes = ref [] in
  for len = k - 1 downto 1 do
    prefixes := Array.init k (fun i -> i < len) :: !prefixes
  done;
  !prefixes

let tops pat ~inside =
  let out = ref [] in
  for i = Array.length inside - 1 downto 0 do
    if inside.(i) then begin
      let p = pat.Pattern.parents.(i) in
      if p = -1 || not inside.(p) then out := i :: !out
    end
  done;
  !out

let to_string pat s =
  let parts = ref [] in
  for i = Array.length s - 1 downto 0 do
    if s.(i) then parts := pat.Pattern.tags.(i) :: !parts
  done;
  "{" ^ String.concat "," !parts ^ "}"
