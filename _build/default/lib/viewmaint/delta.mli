(** Δ⁺ / Δ⁻ tables (algorithm CD+ of Section 3.5 and its deletion
    counterpart CD-): for every view node, the inserted (resp. deleted)
    document nodes that match the node's tag and value predicate, in
    document order. Also carries the ID-level context used by the
    data-driven pruning rules (Props 3.6, 3.8 and 4.7). *)

type t = {
  tables : Tuple_table.t array;
      (** indexed by pattern node: single-column table σ_n(Δ_n) *)
  region : Id_region.t;  (** inserted / deleted subtree roots *)
  target_ids : Dewey.t list;
      (** insertion points (parents of new trees) or deletion roots *)
}

(** [of_insert store pat applied] extracts Δ⁺ from a pending update list
    whose forests are already attached (so every new node has an ID). *)
val of_insert : Store.t -> Pattern.t -> Update.applied_insert -> t

(** [of_delete store pat applied] extracts Δ⁻ from the snapshot of the
    deleted subtrees. *)
val of_delete : Store.t -> Pattern.t -> Update.applied_delete -> t

(** [nonempty d i]: Δ table of pattern node [i] is non-empty. *)
val nonempty : t -> int -> bool
