(** Binary persistence for materialized views: tuples, derivation counts
    and val/cont payloads are serialized compactly (Dewey identifiers use
    their varint codec); auxiliary snowcap tables are re-derived at load
    time from the view policy. Views can thus be shut down and reopened
    with a store without re-evaluating the pattern. *)

(** [save mv] serializes the view contents. *)
val save : Mview.t -> string

exception Corrupt of string

(** [load ?policy store pat data] reconstructs a materialized view saved
    from an equal pattern over an equally-identified document.
    @raise Corrupt on malformed input or a pattern/arity mismatch. *)
val load : ?policy:Mview.policy -> Store.t -> Pattern.t -> string -> Mview.t

(** [save_to_file mv path] / [load_from_file ?policy store pat path] —
    file-based convenience wrappers. *)
val save_to_file : Mview.t -> string -> unit

val load_from_file :
  ?policy:Mview.policy -> Store.t -> Pattern.t -> string -> Mview.t
