type profile = (string * float) list

let default_rate = 1.0

let uniform = []

let rate profile label =
  match List.assoc_opt label profile with Some r -> r | None -> default_rate

(* Relation cardinality for a pattern node's tag; [*] counts all element
   relations. *)
let relation_size store pat i =
  let tag = pat.Pattern.tags.(i) in
  if tag = "*" then
    List.fold_left
      (fun acc label ->
        if String.length label > 0 && (label.[0] = '@' || label.[0] = '#') then acc
        else acc + Array.length (Store.relation store label))
      0
      (Store.relation_labels store)
  else Array.length (Store.relation store tag)

let score store pat ~profile s =
  let k = Pattern.node_count pat in
  (* Term frequency: a term with R-part [s] needs Δs on every outside
     node simultaneously; bound it by the scarcest outside rate. *)
  let freq = ref infinity in
  let saved = ref 0. in
  let smallest_inside = ref infinity in
  for i = 0 to k - 1 do
    let tag = pat.Pattern.tags.(i) in
    if Lattice.mem s i then begin
      let size = float_of_int (relation_size store pat i) in
      saved := !saved +. size;
      if size < !smallest_inside then smallest_inside := size
    end
    else freq := min !freq (rate profile tag)
  done;
  let freq = if !freq = infinity then 0. else !freq in
  (* Cardinality estimate for the materialized result: joins are
     selective, so the smallest participating relation bounds it. *)
  let est_size = if !smallest_inside = infinity then 0. else !smallest_inside in
  (* Upkeep is paid on every update that touches the snowcap's labels. *)
  let upkeep_rate =
    let total = ref 0. in
    for i = 0 to k - 1 do
      if Lattice.mem s i then total := !total +. rate profile pat.Pattern.tags.(i)
    done;
    !total
  in
  (freq *. !saved) -. (0.1 *. ((upkeep_rate *. est_size) +. est_size))

let choose ?max_mats store pat ~profile =
  let limit =
    match max_mats with Some m -> m | None -> max 0 (Pattern.node_count pat - 1)
  in
  let scored =
    List.filter_map
      (fun s ->
        (* A single-node snowcap duplicates a lattice leaf (the canonical
           relation itself); never worth materializing. *)
        if Lattice.size s <= 1 then None
        else
          let v = score store pat ~profile s in
          if v > 0. then Some (s, v) else None)
      (Lattice.proper_snowcaps pat)
  in
  let sorted = List.sort (fun (_, a) (_, b) -> Stdlib.compare b a) scored in
  List.filteri (fun i _ -> i < limit) (List.map fst sorted)

let policy ?max_mats store pat ~profile =
  match choose ?max_mats store pat ~profile with
  | [] -> Mview.Leaves
  | sets -> Mview.Chosen sets
