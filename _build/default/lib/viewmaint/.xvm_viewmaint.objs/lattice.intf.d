lib/viewmaint/lattice.mli: Pattern
