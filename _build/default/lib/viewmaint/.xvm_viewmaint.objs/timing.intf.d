lib/viewmaint/timing.mli:
