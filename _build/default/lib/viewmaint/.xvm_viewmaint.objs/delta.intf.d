lib/viewmaint/delta.mli: Dewey Id_region Pattern Store Tuple_table Update
