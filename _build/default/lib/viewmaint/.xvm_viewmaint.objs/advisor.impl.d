lib/viewmaint/advisor.ml: Array Lattice List Mview Pattern Stdlib Store String
