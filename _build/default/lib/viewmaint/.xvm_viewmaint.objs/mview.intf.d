lib/viewmaint/mview.mli: Dewey Hashtbl Lattice Pattern Store Tuple_table
