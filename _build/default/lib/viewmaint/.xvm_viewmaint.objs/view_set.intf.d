lib/viewmaint/view_set.mli: Maint Mview Pattern Store Update
