lib/viewmaint/delta.ml: Array Dewey Id_region List Pattern Plan Store Tuple_table Update Xml_tree
