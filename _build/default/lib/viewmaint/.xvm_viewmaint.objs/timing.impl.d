lib/viewmaint/timing.ml: Unix
