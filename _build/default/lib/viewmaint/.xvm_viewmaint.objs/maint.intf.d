lib/viewmaint/maint.mli: Delta Lattice Mview Store Timing Tuple_table Update Xml_tree
