lib/viewmaint/advisor.mli: Lattice Mview Pattern Store
