lib/viewmaint/mview_codec.mli: Mview Pattern Store
