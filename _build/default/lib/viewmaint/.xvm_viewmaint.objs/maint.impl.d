lib/viewmaint/maint.ml: Array Delta Dewey Hashtbl Id_region Label_dict Lattice List Mview Path_ops Pattern Plan Store String Struct_join Timing Tuple_table Update Xml_tree
