lib/viewmaint/mview.ml: Array Buffer Dewey Hashtbl Lattice List Option Pattern Plan Stdlib Store Tuple_table Xml_tree
