lib/viewmaint/view_set.ml: List Maint Mview Pattern Printf Store Timing Update
