lib/viewmaint/lattice.ml: Array List Pattern Stdlib String
