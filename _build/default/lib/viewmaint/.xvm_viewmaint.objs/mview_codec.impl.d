lib/viewmaint/mview_codec.ml: Array Buffer Char Dewey List Mview Pattern String
