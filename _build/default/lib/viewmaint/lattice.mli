(** The sub-pattern lattice of a view (Section 3.5) restricted to what the
    maintenance algorithms consume: its {e snowcaps}.

    A snowcap is a non-empty subtree of the view pattern closed under
    parents (Definition 3.11). By Proposition 3.12, the union terms that
    survive update-independent pruning are exactly those whose
    [R]-sub-expression is a snowcap, so enumerating snowcaps enumerates
    the surviving terms. *)

(** A set of pattern-node indices, as an inclusion mask. *)
type nset = bool array

val full : Pattern.t -> nset
val empty : Pattern.t -> nset
val size : nset -> int
val mem : nset -> int -> bool
val equal : nset -> nset -> bool

(** [subset a b]: every node of [a] is in [b]. *)
val subset : nset -> nset -> bool

(** All snowcaps of the pattern, ascending size; the last one is the full
    pattern. Exponential in pattern width — view patterns are small. *)
val snowcaps : Pattern.t -> nset list

(** Snowcaps other than the full pattern. *)
val proper_snowcaps : Pattern.t -> nset list

(** One snowcap per lattice level (sizes 1 … k-1): the preorder prefixes.
    This is the "minimal yet sufficient set, one per level, first at each
    level" materialization policy of Section 6.7. *)
val chain : Pattern.t -> nset list

(** [tops pat ~inside]: nodes of [inside] whose parent is outside — the
    roots of the forest induced by a downward-closed complement. *)
val tops : Pattern.t -> inside:nset -> int list

val to_string : Pattern.t -> nset -> string
