(** Answering queries from materialized views without touching the base
    document — the reason the paper's views store structural IDs in the
    first place: "storing IDs in views enables combining several views in
    order to answer a query" (Section 2.2).

    Three rewriting situations are covered:

    - {e exact}: the query pattern is structurally identical to the view
      and asks only for attributes the view stores;
    - {e filter}: additionally, the query carries extra [[val = c]]
      predicates on nodes whose value the view stores — answered by
      filtering the view's tuples;
    - {e ID join}: two views are stitched on a shared stored node, one
      providing the node itself, the other an ancestor/descendant
      context (the "tree-pattern stitching" enabled by structural IDs). *)

(** One answer row: the cells of the query's stored nodes (in preorder),
    with its derivation count. *)
type row = { count : int; cells : Mview.cell array }

(** [match_view ~query ~view] checks that [view] can answer [query]:
    same tree shape, tags and axes; every view predicate present in the
    query; every query-stored attribute stored by the view; and any
    extra query predicate sits on a node whose value the view stores.
    Returns the positions, within the view's stored-node list, of the
    query's stored nodes. *)
val match_view : query:Pattern.t -> view:Pattern.t -> int array option

(** [answer mv query] answers [query] from the view alone; [None] when
    {!match_view} fails. *)
val answer : Mview.t -> Pattern.t -> row list option

(** [id_join left right ~on:(i, j)] joins the tuples of two views over
    one document, on equality of the IDs stored at [left] pattern node
    [i] and [right] pattern node [j]. Derivation counts multiply. The
    result rows concatenate the left cells with the right cells.
    @raise Invalid_argument if [i] (resp. [j]) is not a stored node. *)
val id_join : Mview.t -> Mview.t -> on:int * int -> row list

(** [structural_join left right ~ancestor ~descendant ~axis] stitches two
    views on a structural predicate between stored IDs: the node at
    [left] position [ancestor] must be the parent ([Child]) or an
    ancestor ([Descendant]) of the node at [right] position
    [descendant].
    @raise Invalid_argument if either position is not stored. *)
val structural_join :
  Mview.t -> Mview.t -> ancestor:int -> descendant:int -> axis:Pattern.axis ->
  row list
