type row = { count : int; cells : Mview.cell array }

(* Structural identity of two patterns: same preorder tags, axes and
   parent links. *)
let same_shape (q : Pattern.t) (v : Pattern.t) =
  Pattern.node_count q = Pattern.node_count v
  && q.Pattern.tags = v.Pattern.tags
  && q.Pattern.axes = v.Pattern.axes
  && q.Pattern.parents = v.Pattern.parents

let match_view ~query ~view =
  if not (same_shape query view) then None
  else begin
    let k = Pattern.node_count query in
    let ok = ref true in
    for i = 0 to k - 1 do
      let qa = query.Pattern.annots.(i) and va = view.Pattern.annots.(i) in
      (* Everything the query stores, the view must store. *)
      if
        (qa.Pattern.store_id && not va.Pattern.store_id)
        || (qa.Pattern.store_val && not va.Pattern.store_val)
        || (qa.Pattern.store_cont && not va.Pattern.store_cont)
      then ok := false;
      (* Predicates: the view may only be less selective; an extra query
         predicate must be checkable on a stored value. *)
      match (query.Pattern.vpreds.(i), view.Pattern.vpreds.(i)) with
      | None, None -> ()
      | Some q, Some v -> if q <> v then ok := false
      | Some _, None -> if not view.Pattern.annots.(i).Pattern.store_val then ok := false
      | None, Some _ -> ok := false
    done;
    if not !ok then None
    else begin
      (* Positions of the query's stored nodes inside the view's stored
         list. *)
      let view_stored = Array.of_list (Pattern.stored_nodes view) in
      let pos_of node =
        let rec go p = if view_stored.(p) = node then p else go (p + 1) in
        go 0
      in
      Some (Array.of_list (List.map pos_of (Pattern.stored_nodes query)))
    end
  end

let answer mv query =
  let view = mv.Mview.pat in
  match match_view ~query ~view with
  | None -> None
  | Some positions ->
    (* Residual predicates of the query, as (stored-position, literal). *)
    let residual = ref [] in
    Array.iteri
      (fun vpos node ->
        match (query.Pattern.vpreds.(node), view.Pattern.vpreds.(node)) with
        | Some c, None -> residual := (vpos, c) :: !residual
        | _ -> ())
      (Array.of_list (Pattern.stored_nodes view));
    let rows = ref [] in
    Mview.iter_entries mv (fun e ->
        let keep =
          List.for_all
            (fun (vpos, c) ->
              match e.Mview.cells.(vpos).Mview.cell_value with
              | Some v -> v = c
              | None -> false)
            !residual
        in
        if keep then begin
          let cells = Array.map (fun p -> e.Mview.cells.(p)) positions in
          rows := { count = e.Mview.count; cells } :: !rows
        end);
    Some !rows

let stored_position mv node =
  let stored = mv.Mview.stored in
  let rec go p =
    if p >= Array.length stored then
      invalid_arg "Rewrite: pattern node does not store its ID"
    else if stored.(p) = node then p
    else go (p + 1)
  in
  go 0

module Dewey_tbl = Hashtbl.Make (struct
  type t = Dewey.t

  let equal = Dewey.equal
  let hash = Dewey.hash
end)

let join_rows left right ~lpos ~rpos ~matches =
  (* Hash the left side on its join ID, probe with the right side using
     [matches] to enumerate candidate keys. *)
  let tbl = Dewey_tbl.create (max 16 (Mview.cardinality left)) in
  Mview.iter_entries left (fun e ->
      let key = e.Mview.cells.(lpos).Mview.cell_id in
      let prev = try Dewey_tbl.find tbl key with Not_found -> [] in
      Dewey_tbl.replace tbl key (e :: prev));
  let out = ref [] in
  Mview.iter_entries right (fun re ->
      let rid = re.Mview.cells.(rpos).Mview.cell_id in
      List.iter
        (fun key ->
          match Dewey_tbl.find_opt tbl key with
          | None -> ()
          | Some les ->
            List.iter
              (fun le ->
                out :=
                  {
                    count = le.Mview.count * re.Mview.count;
                    cells = Array.append le.Mview.cells re.Mview.cells;
                  }
                  :: !out)
              les)
        (matches rid));
  !out

let id_join left right ~on:(i, j) =
  let lpos = stored_position left i and rpos = stored_position right j in
  join_rows left right ~lpos ~rpos ~matches:(fun rid -> [ rid ])

let structural_join left right ~ancestor ~descendant ~axis =
  let lpos = stored_position left ancestor in
  let rpos = stored_position right descendant in
  let matches rid =
    match axis with
    | Pattern.Child -> ( match Dewey.parent rid with None -> [] | Some p -> [ p ])
    | Pattern.Descendant -> Dewey.ancestors rid
  in
  join_rows left right ~lpos ~rpos ~matches
