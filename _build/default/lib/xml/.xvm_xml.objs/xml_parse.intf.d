lib/xml/xml_parse.mli: Xml_tree
