lib/xml/xml_tree.ml: Buffer List String
