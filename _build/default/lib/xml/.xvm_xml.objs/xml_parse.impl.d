lib/xml/xml_parse.ml: Buffer Char List Printf String Xml_tree
