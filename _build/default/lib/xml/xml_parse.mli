(** Minimal XML parser covering the documents and update fragments used in
    this project: elements, attributes, text, character entities, comments
    and an optional prolog. Namespaces, CDATA and DTD-internal subsets are
    out of scope. *)

exception Parse_error of string

(** [document s] parses a full document (one root element).
    Whitespace-only text between elements is dropped.
    @raise Parse_error on malformed input. *)
val document : string -> Xml_tree.node

(** [fragment s] parses a forest of sibling elements, e.g. the [xml]
    operand of an insertion statement.
    @raise Parse_error on malformed input. *)
val fragment : string -> Xml_tree.node list
