exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let expect st prefix =
  if looking_at st prefix then st.pos <- st.pos + String.length prefix
  else fail st (Printf.sprintf "expected %S" prefix)

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | Some _ | None -> false
  do
    advance st
  done

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name st =
  let start = st.pos in
  while (match peek st with Some c -> is_name_char c | None -> false) do
    advance st
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

let read_entity st =
  expect st "&";
  let name = ref "" in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some ';' ->
      advance st;
      continue := false
    | Some c when is_name_char c || c = '#' ->
      name := !name ^ String.make 1 c;
      advance st
    | Some _ | None -> fail st "malformed entity reference"
  done;
  match !name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | n when String.length n > 1 && n.[0] = '#' ->
    let code =
      try
        if n.[1] = 'x' then int_of_string ("0x" ^ String.sub n 2 (String.length n - 2))
        else int_of_string (String.sub n 1 (String.length n - 1))
      with Failure _ -> fail st "malformed character reference"
    in
    if code < 0x80 then String.make 1 (Char.chr code) else "?"
  | _ -> fail st "unknown entity"

let read_quoted st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
      advance st;
      q
    | Some _ | None -> fail st "expected a quoted value"
  in
  let buf = Buffer.create 16 in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some c when c = quote ->
      advance st;
      continue := false
    | Some '&' -> Buffer.add_string buf (read_entity st)
    | Some c ->
      Buffer.add_char buf c;
      advance st
    | None -> fail st "unterminated attribute value"
  done;
  Buffer.contents buf

let skip_misc st =
  let continue = ref true in
  while !continue do
    skip_ws st;
    if looking_at st "<!--" then begin
      let rec find i =
        if i + 3 > String.length st.src then None
        else if String.sub st.src i 3 = "-->" then Some (i + 3)
        else find (i + 1)
      in
      match find (st.pos + 4) with
      | Some p -> st.pos <- p
      | None -> fail st "unterminated comment"
    end
    else if looking_at st "<?" then begin
      match String.index_from_opt st.src st.pos '>' with
      | Some p -> st.pos <- p + 1
      | None -> fail st "unterminated processing instruction"
    end
    else if looking_at st "<!DOCTYPE" then begin
      match String.index_from_opt st.src st.pos '>' with
      | Some p -> st.pos <- p + 1
      | None -> fail st "unterminated doctype"
    end
    else continue := false
  done

let is_blank s =
  let n = String.length s in
  let rec go i =
    i >= n || (match s.[i] with ' ' | '\t' | '\n' | '\r' -> go (i + 1) | _ -> false)
  in
  go 0

let rec read_element st =
  expect st "<";
  let name = read_name st in
  let attrs = ref [] in
  let rec read_attrs () =
    skip_ws st;
    match peek st with
    | Some c when is_name_char c ->
      let attr_name = read_name st in
      skip_ws st;
      expect st "=";
      skip_ws st;
      let value = read_quoted st in
      attrs := Xml_tree.attribute attr_name value :: !attrs;
      read_attrs ()
    | Some _ | None -> ()
  in
  read_attrs ();
  skip_ws st;
  if looking_at st "/>" then begin
    expect st "/>";
    Xml_tree.element ~children:(List.rev !attrs) name
  end
  else begin
    expect st ">";
    let content = read_content st in
    expect st "</";
    let close = read_name st in
    if close <> name then fail st (Printf.sprintf "mismatched </%s>" close);
    skip_ws st;
    expect st ">";
    Xml_tree.element ~children:(List.rev !attrs @ content) name
  end

and read_content st =
  let items = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      if not (is_blank s) then items := Xml_tree.text s :: !items
    end
  in
  let continue = ref true in
  while !continue do
    if looking_at st "</" then begin
      flush_text ();
      continue := false
    end
    else if looking_at st "<!--" then begin
      flush_text ();
      skip_misc st
    end
    else
      match peek st with
      | Some '<' ->
        flush_text ();
        items := read_element st :: !items
      | Some '&' -> Buffer.add_string buf (read_entity st)
      | Some c ->
        Buffer.add_char buf c;
        advance st
      | None -> fail st "unterminated element content"
  done;
  List.rev !items

let document s =
  let st = { src = s; pos = 0 } in
  skip_misc st;
  let root = read_element st in
  skip_misc st;
  if st.pos <> String.length s then fail st "trailing content after root element";
  root

let fragment s =
  let st = { src = s; pos = 0 } in
  let roots = ref [] in
  skip_misc st;
  while st.pos < String.length s do
    roots := read_element st :: !roots;
    skip_misc st
  done;
  List.rev !roots
