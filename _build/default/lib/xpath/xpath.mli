(** XPath{/,//,*,[]} — the fragment used by the paper's update statements:
    child and descendant axes, name and [*] node tests, attribute steps,
    and predicates combining relative paths, string-value comparisons,
    [and], [or] and parentheses.

    Examples accepted by {!parse}:
    {[
      /site/people/person/@id
      //open_auction[privacy and bidder]/bidder
      /site/regions[namerica or samerica]//item
      //item[description and (name or mailbox)]
      /site/people/person[@id='person0']
    ]} *)

type axis = Child | Descendant

type test =
  | Name of string  (** element name test *)
  | Star  (** [*]: any element *)
  | Attr of string  (** [@name]: attribute step *)

type pred =
  | Exists of path  (** a relative path with a non-empty result *)
  | Eq of path * string
      (** [path = 'lit']; the empty path compares the context node itself *)
  | And of pred * pred
  | Or of pred * pred

and step = { axis : axis; test : test; preds : pred list }

and path = step list

exception Parse_error of string

(** [parse s] parses an absolute path (leading [/] or [//]).
    @raise Parse_error on malformed input. *)
val parse : string -> path

(** [to_string p] renders a parsed path back to XPath syntax. *)
val to_string : path -> string

(** [eval root p] evaluates [p] against the document rooted at [root];
    the first step's axis is taken relative to a virtual root above
    [root]. Results are distinct nodes in document order. *)
val eval : Xml_tree.node -> path -> Xml_tree.node list

(** [matches_from node p] evaluates the relative path [p] with [node] as
    context (first step axis relative to [node]). *)
val matches_from : Xml_tree.node -> path -> Xml_tree.node list

(** [holds node pred] evaluates a predicate with [node] as context. *)
val holds : Xml_tree.node -> pred -> bool
