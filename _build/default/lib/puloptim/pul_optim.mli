(** Optimization of sequences of atomic update operations — the subset of
    the Cavalieri et al. rules used in Section 5 of the paper: reduction
    rules O1, O3 and I5; conflict rules IO, LO and NLO for parallel PULs;
    aggregation rules A1, A2 and D6 for sequential PULs.

    An atomic operation targets a node by structural identifier:
    [ins↘(n, F)] appends the forest [F] as last children of [n]; [del(n)]
    removes [n] with its subtree. Statement-level updates are lowered to
    such operations with {!atomic_ops} (the paper's CP / compute-pul step),
    optimized, and then propagated one by one with {!propagate_op}. *)

type op =
  | Ins of { target : Dewey.t; forest : Xml_tree.node list }
  | Del of { target : Dewey.t }

val op_to_string : op -> string

(** Target identifier of an operation. *)
val target : op -> Dewey.t

(** {1 compute-pul} *)

(** [atomic_ops store u] locates the targets of the statement [u] and
    lowers it to atomic operations (no document mutation; insertion
    forests are fresh copies). *)
val atomic_ops : Store.t -> Update.t -> op list

(** {1 Reduction (rules O1, O3, I5)} *)

(** [reduce ops] simplifies a sequence:
    - O1 — an insertion-into or deletion of [n] followed by [del(n)] is
      dropped in favour of the deletion;
    - O3 — an operation on [n] followed by the deletion of an ancestor of
      [n] is dropped;
    - I5 — two insertions into the same node merge into one (forests
      concatenated in order). *)
val reduce : op list -> op list

(** {1 Conflicts between parallel PULs (rules IO, LO, NLO)} *)

type conflict_kind =
  | Insertion_order  (** IO: two insertions into the same target *)
  | Local_override  (** LO: a deletion and an insertion on the same target *)
  | Non_local_override
      (** NLO: a deletion whose target is an ancestor of an insertion's *)

type conflict = { kind : conflict_kind; left : int; right : int }
    (** indices into the two PULs *)

(** [conflicts pul1 pul2] lists the conflicts preventing a blind parallel
    integration of the two PULs. *)
val conflicts : op list -> op list -> conflict list

(** {1 Aggregation of sequential PULs (rules A1, A2, D6)} *)

(** [aggregate store pul1 pul2] merges [pul1; pul2] into one sequence:
    same-target insertions are combined (A1/A2) and operations of [pul2]
    whose target lies inside a forest inserted by [pul1] are folded into
    that insertion's parameter (D6). [store] resolves identifiers when
    checking containment; operations folded by D6 mutate the forest
    template in place. *)
val aggregate : Store.t -> op list -> op list -> op list

(** {1 Propagation} *)

(** [propagate_op ?commit ?on_missing mv op] applies one atomic operation
    to the document and incrementally maintains [mv] through the
    machinery of {!Maint}. An operation whose target no longer resolves
    (e.g. a duplicate deletion in an unreduced sequence) raises
    [Invalid_argument] under [`Fail] (the default) or becomes a no-op
    under [`Skip].
    @return [None] only when a missing target was skipped. *)
val propagate_op :
  ?commit:bool -> ?on_missing:[ `Fail | `Skip ] -> Mview.t -> op -> Maint.report option
