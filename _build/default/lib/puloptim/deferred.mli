(** Deferred (lazy) view maintenance — Section 5's motivating mode: when a
    sequence of updates hits the document, their propagation to the view
    can be deferred and applied only when the view is consulted, after
    the pending-update-list optimizations have shrunk the work.

    A deferred session queues statement-level updates {e without} touching
    the document. Each statement is lowered to atomic operations against
    the current snapshot when queued; the queue preserves statement
    order, so this is sound except when a new statement targets a node
    the queue already deletes (an override in the sense of the LO / NLO
    conflict rules) — then the queue is flushed first, falling back to
    immediate semantics. At flush time the whole queue is reduced with
    rules O1 / O3 / I5 and the surviving operations are applied and
    propagated one by one.

    Readers of the {e document} between queue and flush see the
    pre-update snapshot; readers of the {e view} trigger a flush. *)

type t

type flush_report = {
  ops_queued : int;  (** atomic operations accumulated since last flush *)
  ops_propagated : int;  (** operations left after reduction *)
  conflicts_forced_flush : int;  (** times a conflicting statement flushed early *)
  elapsed : float;  (** seconds spent in the last flush *)
}

(** [create ?reduce mv] starts a deferred session over a materialized
    view. [reduce] (default [true]) controls whether flushes apply the
    reduction rules — disable it to measure their benefit. *)
val create : ?reduce:bool -> Mview.t -> t

(** Number of queued atomic operations. *)
val pending : t -> int

(** [update t u] queues [u]; flushes first if [u] conflicts with the
    queued operations. *)
val update : t -> Update.t -> unit

(** [flush t] propagates the queued operations (reduced when enabled) and
    empties the queue. *)
val flush : t -> flush_report

(** [view t] flushes if needed and returns the now-fresh view. *)
val view : t -> Mview.t

(** Cumulative statistics since [create]. *)
val totals : t -> flush_report
