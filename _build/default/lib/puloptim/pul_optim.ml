type op =
  | Ins of { target : Dewey.t; forest : Xml_tree.node list }
  | Del of { target : Dewey.t }

let target_of = function Ins { target; _ } -> target | Del { target } -> target

let target = target_of

let op_to_string = function
  | Ins { target; forest } ->
    Printf.sprintf "ins↘(%s, %d trees)" (Dewey.to_string target) (List.length forest)
  | Del { target } -> Printf.sprintf "del(%s)" (Dewey.to_string target)

let atomic_ops store u =
  let targets = Update.targets store u in
  match u with
  | Update.Delete _ ->
    List.map (fun n -> Del { target = Store.id_of store n }) targets
  | Update.Insert { placement = Update.Into; forest; _ } ->
    List.map
      (fun n -> Ins { target = Store.id_of store n; forest = forest n })
      targets
  | Update.Insert _ | Update.Replace_value _ ->
    (* The Cavalieri et al. operation set covers ins↘ and del only. *)
    invalid_arg "Pul_optim.atomic_ops: only into-insertions and deletions lower"

(* {1 Reduction} *)

let reduce ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let dropped = Array.make n false in
  (* O1 / O3: a later deletion erases earlier operations on the same node
     or on its descendants. *)
  for j = 0 to n - 1 do
    match arr.(j) with
    | Del { target = dj } ->
      for i = 0 to j - 1 do
        if not dropped.(i) then begin
          let ti = target_of arr.(i) in
          if Dewey.equal ti dj || Dewey.is_ancestor dj ti then dropped.(i) <- true
        end
      done
    | Ins _ -> ()
  done;
  (* I5: merge insertions sharing a target into the earliest one. *)
  let first_ins : (string, int) Hashtbl.t = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    if not dropped.(i) then
      match arr.(i) with
      | Ins { target; forest } -> (
        let key = Dewey.encode target in
        match Hashtbl.find_opt first_ins key with
        | None -> Hashtbl.add first_ins key i
        | Some k -> (
          match arr.(k) with
          | Ins { target = t0; forest = f0 } ->
            arr.(k) <- Ins { target = t0; forest = f0 @ forest };
            dropped.(i) <- true
          | Del _ -> assert false))
      | Del _ -> ()
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if not dropped.(i) then out := arr.(i) :: !out
  done;
  !out

(* {1 Conflicts} *)

type conflict_kind = Insertion_order | Local_override | Non_local_override

type conflict = { kind : conflict_kind; left : int; right : int }

let conflicts pul1 pul2 =
  let a1 = Array.of_list pul1 and a2 = Array.of_list pul2 in
  let out = ref [] in
  Array.iteri
    (fun i op1 ->
      Array.iteri
        (fun j op2 ->
          let t1 = target_of op1 and t2 = target_of op2 in
          match (op1, op2) with
          | Ins _, Ins _ when Dewey.equal t1 t2 ->
            out := { kind = Insertion_order; left = i; right = j } :: !out
          | Del _, Ins _ when Dewey.equal t1 t2 ->
            out := { kind = Local_override; left = i; right = j } :: !out
          | Ins _, Del _ when Dewey.equal t1 t2 ->
            out := { kind = Local_override; left = i; right = j } :: !out
          | Del _, Ins _ when Dewey.is_ancestor t1 t2 ->
            out := { kind = Non_local_override; left = i; right = j } :: !out
          | Ins _, Del _ when Dewey.is_ancestor t2 t1 ->
            out := { kind = Non_local_override; left = i; right = j } :: !out
          | (Ins _ | Del _), (Ins _ | Del _) -> ())
        a2)
    a1;
  List.rev !out

(* {1 Aggregation} *)

(* Does [id] belong to a forest inserted by [op1]? Only decidable once the
   forest's roots carry identifiers (i.e. after ∆1 has been applied);
   resolve through the store and test physical containment. *)
let inside_forest store op1 id =
  match op1 with
  | Del _ -> None
  | Ins { forest; _ } -> (
    match Store.node_of store id with
    | None -> None
    | Some node ->
      if
        List.exists
          (fun root -> root == node || Xml_tree.is_ancestor root node)
          forest
      then Some node
      else None)

let aggregate store pul1 pul2 =
  let a1 = Array.of_list pul1 in
  let remaining2 = ref [] in
  List.iter
    (fun op2 ->
      let folded = ref false in
      Array.iteri
        (fun i op1 ->
          if not !folded then
            match (op1, op2) with
            (* A1 / A2: combine same-target insertions. *)
            | Ins { target = t1; forest = f1 }, Ins { target = t2; forest = f2 }
              when Dewey.equal t1 t2 ->
              a1.(i) <- Ins { target = t1; forest = f1 @ f2 };
              folded := true
            | _ -> (
              (* D6: an op2 referencing a node of an op1-inserted tree is
                 performed on the tree parameter and dropped from ∆2. *)
              match inside_forest store op1 (target_of op2) with
              | None -> ()
              | Some node ->
                (match op2 with
                | Ins { forest; _ } -> Xml_tree.append_children node forest
                | Del _ -> (
                  match node.Xml_tree.parent with
                  | Some p -> Xml_tree.remove_child p node
                  | None -> ()));
                folded := true))
        a1;
      if not !folded then remaining2 := op2 :: !remaining2)
    pul2;
  Array.to_list a1 @ List.rev !remaining2

(* {1 Propagation} *)

let propagate_op ?(commit = true) ?(on_missing = `Fail) mv op =
  let store = mv.Mview.store in
  let missing what =
    match on_missing with
    | `Skip -> None
    | `Fail -> invalid_arg (Printf.sprintf "Pul_optim.propagate_op: unresolved %s target" what)
  in
  match op with
  | Ins { target; forest } -> (
    match Store.node_of store target with
    | None -> missing "insertion"
    | Some node ->
      let app = Update.apply_insert_at store ~target:node forest in
      Some (Maint.propagate_applied ~commit mv (Maint.Ins app)))
  | Del { target } -> (
    match Store.node_of store target with
    | None -> missing "deletion"
    | Some node ->
      let app = Update.apply_delete store ~targets:[ node ] in
      Some (Maint.propagate_applied ~commit mv (Maint.Del app)))
