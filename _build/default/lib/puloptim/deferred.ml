type flush_report = {
  ops_queued : int;
  ops_propagated : int;
  conflicts_forced_flush : int;
  elapsed : float;
}

type t = {
  mv : Mview.t;
  reduce : bool;
  mutable queue : Pul_optim.op list; (* in statement order *)
  mutable forced : int;
  mutable total_queued : int;
  mutable total_propagated : int;
  mutable total_elapsed : float;
}

let create ?(reduce = true) mv =
  {
    mv;
    reduce;
    queue = [];
    forced = 0;
    total_queued = 0;
    total_propagated = 0;
    total_elapsed = 0.;
  }

let pending t = List.length t.queue

let flush t =
  let queued = List.length t.queue in
  let ops = t.queue in
  t.queue <- [];
  let propagated = ref 0 in
  let (), elapsed =
    Timing.duration (fun () ->
        let ops = if t.reduce then Pul_optim.reduce ops else ops in
        List.iter
          (fun op ->
            (* A queued operation whose target vanished through an earlier
               one in the same batch is a no-op (its view effect was
               subsumed); only materialized propagations count. *)
            match Pul_optim.propagate_op ~on_missing:`Skip t.mv op with
            | Some _ -> incr propagated
            | None -> ())
          ops)
  in
  t.total_queued <- t.total_queued + queued;
  t.total_propagated <- t.total_propagated + !propagated;
  t.total_elapsed <- t.total_elapsed +. elapsed;
  {
    ops_queued = queued;
    ops_propagated = !propagated;
    conflicts_forced_flush = t.forced;
    elapsed;
  }

(* Statements are lowered against the unflushed snapshot, in order; the
   only unsound case is a new operation targeting a node the queue
   already deletes (the statement should have seen it gone). *)
let unsafe_wrt_queue queue ops =
  List.exists
    (fun op_new ->
      let tid = Pul_optim.target op_new in
      List.exists
        (function
          | Pul_optim.Del { target } ->
            Dewey.equal target tid || Dewey.is_ancestor target tid
          | Pul_optim.Ins _ -> false)
        queue)
    ops

let update t u =
  let store = t.mv.Mview.store in
  let ops = Pul_optim.atomic_ops store u in
  if t.queue <> [] && unsafe_wrt_queue t.queue ops then begin
    t.forced <- t.forced + 1;
    ignore (flush t);
    (* Re-lower against the now-updated document. *)
    let ops = Pul_optim.atomic_ops store u in
    t.queue <- ops
  end
  else t.queue <- t.queue @ ops

let view t =
  if t.queue <> [] then ignore (flush t);
  t.mv

let totals t =
  {
    ops_queued = t.total_queued;
    ops_propagated = t.total_propagated;
    conflicts_forced_flush = t.forced;
    elapsed = t.total_elapsed;
  }
