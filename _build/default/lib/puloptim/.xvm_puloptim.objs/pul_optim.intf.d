lib/puloptim/pul_optim.mli: Dewey Maint Mview Store Update Xml_tree
