lib/puloptim/pul_optim.ml: Array Dewey Hashtbl List Maint Mview Printf Store Update Xml_tree
