lib/puloptim/deferred.ml: Dewey List Mview Pul_optim Timing
