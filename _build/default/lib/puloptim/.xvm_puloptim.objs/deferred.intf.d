lib/puloptim/deferred.mli: Mview Update
