lib/xmark/xmark_gen.ml: Array Buffer List Printf Random Xml_tree
