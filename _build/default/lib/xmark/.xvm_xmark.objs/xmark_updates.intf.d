lib/xmark/xmark_updates.mli: Update
