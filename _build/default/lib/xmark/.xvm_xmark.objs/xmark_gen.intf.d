lib/xmark/xmark_gen.mli: Xml_tree
