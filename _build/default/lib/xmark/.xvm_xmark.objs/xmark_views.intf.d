lib/xmark/xmark_views.mli: Pattern
