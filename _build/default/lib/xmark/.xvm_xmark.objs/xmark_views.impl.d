lib/xmark/xmark_views.ml: List Pattern String
