lib/xmark/xmark_updates.ml: List Printf Update
