(** The update test set of Appendix A: XPathMark-style target paths in
    five syntactic classes — Linear (L), Linear-Boolean (LB), And (A),
    Or (O) and And-Or (AO) — each usable as an insertion (append the
    fragment under every target, as in the appendix) or as a deletion
    (delete every target, as in Section 6). *)

type t = {
  name : string;  (** e.g. ["X1_L"] *)
  cls : string;  (** "L", "LB", "A", "O" or "AO" *)
  path : string;  (** the target XPath *)
  fragment : string;  (** the XML forest inserted under each target *)
}

val all : t list

(** [find name] looks an update up by name.
    @raise Not_found on unknown names. *)
val find : string -> t

(** [insert u] / [delete u] build the two statement variants. *)
val insert : t -> Update.t

val delete : t -> Update.t

(** The 35 (view, update) pairs of Figures 20 / 21, as
    [(view-name, update-name)]. *)
val figure20_pairs : (string * string) list

(** The (view, update) pairs broken down per view in Figures 18 / 19. *)
val breakdown_pairs : (string * string list) list
