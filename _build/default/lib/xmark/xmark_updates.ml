type t = { name : string; cls : string; path : string; fragment : string }

let name_fragment first =
  Printf.sprintf
    "<name>%s<name>and</name><name>some</name><name>test</name><name>nodes</name></name>"
    first

let increase_fragment amount =
  Printf.sprintf
    "<increase>inserted %s<increase>and</increase><increase>some</increase><increase>test</increase><increase>nodes</increase></increase>"
    amount

let item_fragment ?(location = "Unknown") ?(description = false) label =
  Printf.sprintf
    "<item><location>%s</location><quantity>1</quantity><name>%s Item</name><payment>Creditcard, Personal Check, Cash</payment>%s</item>"
    location label
    (if description then "<description>Test description</description>" else "")

let all =
  [
    (* Linear *)
    { name = "X1_L"; cls = "L"; path = "/site/people/person"; fragment = name_fragment "Martin" };
    { name = "X2_L"; cls = "L"; path = "/site/open_auctions/open_auction/bidder";
      fragment = increase_fragment "100.00" };
    { name = "B3_L"; cls = "L"; path = "//open_auction/bidder";
      fragment = increase_fragment "300.00" };
    { name = "E6_L"; cls = "L"; path = "/site/regions/*/item";
      fragment = item_fragment "E6_L" };
    { name = "X17_L"; cls = "L"; path = "/site/regions//item";
      fragment = item_fragment ~description:true "X17_L" };
    (* Linear with boolean filter *)
    { name = "B7_LB"; cls = "LB"; path = "//person[profile/@income]";
      fragment = name_fragment "Jim" };
    { name = "B3_LB"; cls = "LB";
      path = "/site/open_auctions/open_auction[reserve]/bidder";
      fragment = increase_fragment "4.50" };
    { name = "B5_LB"; cls = "LB"; path = "/site/regions/*/item[name]";
      fragment = item_fragment "B5_LB" };
    (* AND predicates *)
    { name = "A6_A"; cls = "A"; path = "/site/people/person[phone and homepage]";
      fragment = name_fragment "Mimma" };
    { name = "X3_A"; cls = "A";
      path = "/site/open_auctions/open_auction[privacy and bidder]/bidder";
      fragment = increase_fragment "150.00" };
    { name = "B1_A"; cls = "A"; path = "/site/regions[namerica or samerica]//item";
      fragment = item_fragment ~location:"Canada" "B1_A" };
    { name = "E6_A"; cls = "A"; path = "/site/regions/*/item[description][name]";
      fragment = item_fragment "E6_A" };
    { name = "X20_A"; cls = "A"; path = "/site/regions//item[description][name]";
      fragment = item_fragment ~description:true "X20_A" };
    { name = "X16_A"; cls = "A"; path = "/site/regions/namerica/item[description and name]";
      fragment = item_fragment ~description:true "X16_A" };
    (* OR predicates *)
    { name = "A7_O"; cls = "O"; path = "/site/people/person[phone or homepage]";
      fragment = name_fragment "Ioana" };
    { name = "X4_O"; cls = "O";
      path = "/site/open_auctions/open_auction[bidder or privacy]/bidder";
      fragment = increase_fragment "200.00" };
    { name = "X7_O"; cls = "O"; path = "/site/regions//item[description or name]";
      fragment = item_fragment "X7_O" };
    { name = "B1_O"; cls = "O"; path = "/site/regions[namerica or samerica]/item";
      fragment = item_fragment ~location:"Canada" ~description:true "B1_O" };
    (* AND + OR predicates *)
    { name = "A8_AO"; cls = "AO";
      path = "/site/people/person[address and (phone or homepage) and (creditcard or profile)]";
      fragment = name_fragment "Angela" };
    { name = "X5_AO"; cls = "AO";
      path = "/site/open_auctions/open_auction[current and (bidder or reserve)]/bidder";
      fragment = increase_fragment "250.00" };
    { name = "X8_AO"; cls = "AO";
      path = "/site/regions//item[description and (name or mailbox)]";
      fragment = item_fragment ~location:"New Zealand" "X8_AO" };
  ]

let find name =
  match List.find_opt (fun u -> u.name = name) all with
  | Some u -> u
  | None -> raise Not_found

let insert u = Update.insert ~into:u.path u.fragment
let delete u = Update.delete u.path

let breakdown_pairs =
  [
    ("Q1", [ "X1_L"; "A6_A"; "A7_O"; "A8_AO"; "B7_LB" ]);
    ("Q2", [ "X2_L"; "X3_A"; "X4_O"; "X5_AO"; "B3_LB" ]);
    ("Q3", [ "X2_L"; "X3_A"; "X4_O"; "X5_AO"; "B3_LB" ]);
    ("Q4", [ "X2_L"; "X3_A"; "X4_O"; "X5_AO"; "B3_LB" ]);
    ("Q6", [ "B1_A"; "B5_LB"; "E6_L"; "X7_O"; "X8_AO" ]);
    ("Q13", [ "B1_O"; "B5_LB"; "X16_A"; "X17_L"; "X8_AO" ]);
    ("Q17", [ "X1_L"; "A6_A"; "A7_O"; "A8_AO"; "B7_LB" ]);
  ]

let figure20_pairs =
  List.concat_map
    (fun (view, updates) -> List.map (fun u -> (view, u)) updates)
    breakdown_pairs
