(** The XMark benchmark queries used as views in the paper's evaluation
    (Section 6.2 and Appendix A.6), expressed in the tree-pattern dialect.
    Every node stores its ID; the return expressions of the original
    queries determine the [val] / [cont] annotations. *)

val q1 : Pattern.t  (** persons with an [@id]; returns the name value *)

val q2 : Pattern.t  (** bidder increases of open auctions (content) *)

val q3 : Pattern.t
(** increases of auctions having some increase equal to ["4.50"] *)

val q4 : Pattern.t
(** increases of auctions with a bidder referencing person12 *)

val q6 : Pattern.t  (** all items under regions (content) *)

val q13 : Pattern.t  (** North-American items: name value + description *)

val q17 : Pattern.t  (** persons with a homepage; returns the name value *)

(** All views, keyed by name ("Q1" … "Q17"). *)
val all : (string * Pattern.t) list

(** [find name] looks a view up by name (case-insensitive).
    @raise Not_found on unknown names. *)
val find : string -> Pattern.t

(** The annotation variants of Q1 used by the Fig. 24 experiment: IDs
    only, val+cont on the leaf, on the root, on all nodes but the root,
    and on all nodes. *)
val q1_annotation_variants : (string * Pattern.t) list
