(** Deterministic XMark-style document generator.

    Emits auction documents with the element vocabulary the paper's views
    and updates touch — [site/people/person] (with optional [phone],
    [address], [homepage], [creditcard], [profile@income]),
    [site/open_auctions/open_auction] (with [bidder/increase],
    [personref], [privacy], [reserve], …), [site/regions/<continent>/item]
    (with [name], [description], [mailbox], …), categories and closed
    auctions — scaled to an approximate serialized size. Same seed and
    size ⇒ same document. *)

(** [document ~seed ~target_kb] generates a document whose serialization
    is roughly [target_kb] kilobytes. *)
val document : seed:int -> target_kb:int -> Xml_tree.node

(** Serialized size of a generated document, in bytes (convenience
    re-export of [Xml_tree.serialized_size]). *)
val actual_bytes : Xml_tree.node -> int
