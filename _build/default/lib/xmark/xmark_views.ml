let n = Pattern.n
let child = Pattern.Child

(* Q1: for $b in /site/people/person[@id] return $b/name/text() *)
let q1 =
  Pattern.compile ~name:"Q1"
    (n ~axis:child ~id:true "site"
       [
         n ~axis:child ~id:true "people"
           [
             n ~axis:child ~id:true "person"
               [
                 n ~axis:child ~id:true "@id" [];
                 n ~axis:child ~id:true ~value:true "name" [];
               ];
           ];
       ])

(* Q2: for $b in /site/open_auctions/open_auction return $b/bidder/increase *)
let q2 =
  Pattern.compile ~name:"Q2"
    (n ~axis:child ~id:true "site"
       [
         n ~axis:child ~id:true "open_auctions"
           [
             n ~axis:child ~id:true "open_auction"
               [
                 n ~axis:child ~id:true "bidder"
                   [ n ~axis:child ~id:true ~content:true "increase" [] ];
               ];
           ];
       ])

(* Q3: … where $b/bidder/increase/text() = "4.50" return that text. The
   existential branch and the returned branch are distinct, as in the
   XQuery semantics. *)
let q3 =
  Pattern.compile ~name:"Q3"
    (n ~axis:child ~id:true "site"
       [
         n ~axis:child ~id:true "open_auctions"
           [
             n ~axis:child ~id:true "open_auction"
               [
                 n ~axis:child "bidder"
                   [ n ~axis:child ~vpred:"4.50" "increase" [] ];
                 n ~axis:child ~id:true "bidder"
                   [ n ~axis:child ~id:true ~value:true "increase" [] ];
               ];
           ];
       ])

(* Q4: … where $b/bidder/personref[@person = "person12"] return increases *)
let q4 =
  Pattern.compile ~name:"Q4"
    (n ~axis:child ~id:true "site"
       [
         n ~axis:child ~id:true "open_auctions"
           [
             n ~axis:child ~id:true "open_auction"
               [
                 n ~axis:child "bidder"
                   [
                     n ~axis:child "personref"
                       [ n ~axis:child ~vpred:"person12" "@person" [] ];
                   ];
                 n ~axis:child ~id:true "bidder"
                   [ n ~axis:child ~id:true ~value:true "increase" [] ];
               ];
           ];
       ])

(* Q6: for $b in /site/regions return $b//item *)
let q6 =
  Pattern.compile ~name:"Q6"
    (n ~axis:child ~id:true "site"
       [
         n ~axis:child ~id:true "regions"
           [ n ~id:true ~content:true "item" [] ];
       ])

(* Q13: for $i in /site/regions/namerica/item
        return $i/name/text(), $i/description *)
let q13 =
  Pattern.compile ~name:"Q13"
    (n ~axis:child ~id:true "site"
       [
         n ~axis:child ~id:true "regions"
           [
             n ~axis:child ~id:true "namerica"
               [
                 n ~axis:child ~id:true "item"
                   [
                     n ~axis:child ~id:true ~value:true "name" [];
                     n ~axis:child ~id:true ~content:true "description" [];
                   ];
               ];
           ];
       ])

(* Q17: for $b in /site/people/person[homepage] return $b/name/text() *)
let q17 =
  Pattern.compile ~name:"Q17"
    (n ~axis:child ~id:true "site"
       [
         n ~axis:child ~id:true "people"
           [
             n ~axis:child ~id:true "person"
               [
                 n ~axis:child "homepage" [];
                 n ~axis:child ~id:true ~value:true "name" [];
               ];
           ];
       ])

let all =
  [ ("Q1", q1); ("Q2", q2); ("Q3", q3); ("Q4", q4); ("Q6", q6); ("Q13", q13); ("Q17", q17) ]

let find name =
  let target = String.uppercase_ascii name in
  match List.assoc_opt target all with
  | Some v -> v
  | None -> raise Not_found

(* Fig. 24: /site/people/person[@id]/name with varying val+cont
   placement. Node order (preorder): site, people, person, @id, name. *)
let q1_annotation_variants =
  let id_only = { Pattern.store_id = true; store_val = false; store_cont = false } in
  let vc = { Pattern.store_id = true; store_val = true; store_cont = true } in
  let variant name annots = Pattern.rename (Pattern.with_annots q1 annots) name in
  [
    ("IDs", variant "Q1-IDs" [| id_only; id_only; id_only; id_only; id_only |]);
    ("VC Leaf", variant "Q1-VC-Leaf" [| id_only; id_only; id_only; id_only; vc |]);
    ("VC Root", variant "Q1-VC-Root" [| vc; id_only; id_only; id_only; id_only |]);
    ( "VC All Nodes but Root",
      variant "Q1-VC-NotRoot" [| id_only; vc; vc; vc; vc |] );
    ("VC All Nodes", variant "Q1-VC-All" [| vc; vc; vc; vc; vc |]);
  ]
