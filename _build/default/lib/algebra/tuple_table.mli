(** Tuple tables: the intermediate results of the algebraic evaluation.

    A table binds a fixed set of pattern-node indices (its columns) to
    structural identifiers; every row is one partial embedding. *)

type t = { cols : int array; mutable rows : Dewey.t array array }

val create : cols:int array -> t
val of_rows : cols:int array -> Dewey.t array array -> t

(** Single-column table over pattern node [node]. *)
val of_ids : node:int -> Dewey.t array -> t

val length : t -> int
val is_empty : t -> bool

(** [col_pos t node] is the row offset of pattern node [node].
    @raise Not_found if the node is not a column. *)
val col_pos : t -> int -> int

val append_row : t -> Dewey.t array -> unit
val append_rows : t -> Dewey.t array array -> unit

(** [filter t keep] drops rows not satisfying [keep], in place. *)
val filter : t -> (Dewey.t array -> bool) -> unit

(** [sort_by_node t node] sorts rows by document order of the [node]
    column. *)
val sort_by_node : t -> int -> unit

val copy : t -> t
