lib/algebra/path_ops.ml: Array Dewey Hashtbl Label_dict Seq
