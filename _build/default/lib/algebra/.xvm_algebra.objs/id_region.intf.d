lib/algebra/id_region.mli: Dewey
