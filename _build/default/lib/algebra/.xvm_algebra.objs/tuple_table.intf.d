lib/algebra/tuple_table.mli: Dewey
