lib/algebra/plan.ml: Array Dewey List Pattern Seq Store String Struct_join Tuple_table Xml_tree
