lib/algebra/plan.mli: Dewey Pattern Store Tuple_table
