lib/algebra/id_region.ml: Array Dewey List
