lib/algebra/struct_join.mli: Pattern Tuple_table
