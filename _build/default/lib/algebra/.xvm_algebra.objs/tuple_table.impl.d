lib/algebra/tuple_table.ml: Array Dewey Seq
