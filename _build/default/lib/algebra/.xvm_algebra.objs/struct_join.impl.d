lib/algebra/struct_join.ml: Array Dewey Hashtbl List Pattern Tuple_table
