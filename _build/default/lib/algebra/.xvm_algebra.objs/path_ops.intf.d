lib/algebra/path_ops.mli: Dewey Label_dict
