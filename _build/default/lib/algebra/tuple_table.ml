type t = { cols : int array; mutable rows : Dewey.t array array }

let create ~cols = { cols; rows = [||] }
let of_rows ~cols rows = { cols; rows }

let of_ids ~node ids = { cols = [| node |]; rows = Array.map (fun id -> [| id |]) ids }

let length t = Array.length t.rows
let is_empty t = Array.length t.rows = 0

let col_pos t node =
  let n = Array.length t.cols in
  let rec go i =
    if i >= n then raise Not_found else if t.cols.(i) = node then i else go (i + 1)
  in
  go 0

let append_row t row = t.rows <- Array.append t.rows [| row |]
let append_rows t rows = t.rows <- Array.append t.rows rows

let filter t keep =
  if not (Array.for_all keep t.rows) then
    t.rows <- Array.of_seq (Seq.filter keep (Array.to_seq t.rows))

let sort_by_node t node =
  let pos = col_pos t node in
  let rows = Array.copy t.rows in
  Array.sort (fun a b -> Dewey.compare a.(pos) b.(pos)) rows;
  t.rows <- rows

let copy t = { cols = Array.copy t.cols; rows = Array.copy t.rows }
