(* The ancestor side is hashed by join column; each descendant-side
   binding probes with its identifier's step-prefixes. Keys are (id,
   prefix-length) pairs hashed structurally, so no intermediate prefix or
   string is ever materialized. *)

module Prefix_key = struct
  type t = Dewey.t * int

  let equal (a, ka) (b, kb) = Dewey.prefix_equal a ka b kb
  let hash (id, k) = Dewey.prefix_hash id k
end

module Prefix_tbl = Hashtbl.Make (Prefix_key)

let join left right ~parent ~child ~axis =
  let ppos = Tuple_table.col_pos left parent in
  let cpos = Tuple_table.col_pos right child in
  let cols = Array.append left.Tuple_table.cols right.Tuple_table.cols in
  let by_parent : Dewey.t array list Prefix_tbl.t =
    Prefix_tbl.create (max 16 (Tuple_table.length left))
  in
  Array.iter
    (fun row ->
      let id = row.(ppos) in
      let key = (id, Dewey.depth id) in
      let prev = try Prefix_tbl.find by_parent key with Not_found -> [] in
      Prefix_tbl.replace by_parent key (row :: prev))
    left.Tuple_table.rows;
  let out = ref [] in
  let probe rrow cid k =
    match Prefix_tbl.find_opt by_parent (cid, k) with
    | None -> ()
    | Some lrows -> List.iter (fun lrow -> out := Array.append lrow rrow :: !out) lrows
  in
  Array.iter
    (fun rrow ->
      let cid = rrow.(cpos) in
      let depth = Dewey.depth cid in
      match axis with
      | Pattern.Child -> if depth > 1 then probe rrow cid (depth - 1)
      | Pattern.Descendant ->
        for k = depth - 1 downto 1 do
          probe rrow cid k
        done)
    right.Tuple_table.rows;
  Tuple_table.of_rows ~cols (Array.of_list (List.rev !out))
