(** Structural joins over tuple tables, exploiting the prefix structure of
    Dewey identifiers: the ancestors of a node are exactly the step-prefixes
    of its identifier, so an ancestor–descendant join probes a hash of the
    ancestor side with the (few) prefixes of each descendant-side binding —
    the ID-based equivalent of the Stack-Tree structural join the paper
    builds on. *)

(** [join left right ~parent ~child ~axis] joins on the structural
    predicate [left.parent ≺ right.child] (axis [Child]) or
    [left.parent ≺≺ right.child] (axis [Descendant]). Output columns are
    [left.cols @ right.cols].
    @raise Not_found if [parent] (resp. [child]) is not a column of
    [left] (resp. [right]). *)
val join :
  Tuple_table.t ->
  Tuple_table.t ->
  parent:int ->
  child:int ->
  axis:Pattern.axis ->
  Tuple_table.t
