let path_filter ids cond =
  Array.of_seq (Seq.filter (fun id -> cond (Dewey.label_path id)) (Array.to_seq ids))

let has_label_ancestor ?(self = false) dict ~label id =
  label = "*"
  ||
  match Label_dict.find dict label with
  | None -> false
  | Some lab -> Dewey.has_ancestor_label ~self id ~lab

let path_navigate ids =
  let seen = Hashtbl.create (Array.length ids) in
  let out = ref [] in
  Array.iter
    (fun id ->
      match Dewey.parent id with
      | None -> ()
      | Some p ->
        let key = Dewey.encode p in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          out := p :: !out
        end)
    ids;
  let arr = Array.of_list !out in
  Array.sort Dewey.compare arr;
  arr
