(** The ID-based physical operators of Section 3.4: {e Path Filter} checks
    that a node lies on a path satisfying a label condition, {e Path
    Navigate} maps node identifiers to their parents' — both using only
    the identifiers, never the tree. *)

(** [path_filter ids cond] keeps the identifiers whose root-to-node label
    path satisfies [cond]. *)
val path_filter : Dewey.t array -> (int array -> bool) -> Dewey.t array

(** [has_label_ancestor ?self dict ~label id] — label-path test used by the
    pruning rules (Props 3.8 and 4.7): does some strict ancestor (or the
    node itself with [self]) carry [label]? A [*] label matches any. *)
val has_label_ancestor :
  ?self:bool -> Label_dict.t -> label:string -> Dewey.t -> bool

(** [path_navigate ids] is the deduplicated list of parent identifiers in
    document order. *)
val path_navigate : Dewey.t array -> Dewey.t array
