(* Schema-violation detection at update time (Section 3.3): the Δ⁺ tables
   extracted from a pending insertion are checked against constraints
   derived from a DTD before the update touches the document.

   Run with: dune exec examples/schema_guard.exe *)

let forest_labels forest =
  List.concat_map
    (fun t -> List.map Xml_tree.label (Xml_tree.descendants_or_self t))
    forest

let guard dtd ~parent ~fragment =
  let forest = Xml_parse.fragment fragment in
  (* Fast Δ⁺-level reasoning first (Examples 3.9 / 3.10)… *)
  let labels = forest_labels forest in
  match Dtd.check_delta dtd ~present:(fun l -> List.mem l labels) with
  | (a, b) :: _ ->
    Error (Printf.sprintf "Δ⁺ constraint violated: inserting <%s> requires a <%s>" a b)
  | [] -> (
    (* …then the full content-model check at the insertion point. *)
    match Dtd.check_insert dtd ~parent ~forest with
    | Ok () -> Ok forest
    | Error e -> Error e)

let () =
  (* DTD d1 of Fig. 5(a): every b must contain a c. *)
  let d1 = Dtd.parse {|d1 = a+
                       a = b+
                       b = c
                       c = EMPTY|} in
  Printf.printf "DTD d1 constraints (Δ⁺a ≠ ∅ ⇒ Δ⁺x ≠ ∅):\n";
  List.iter
    (fun (a, b) -> Printf.printf "  %s ⇒ %s\n" a b)
    (Dtd.delta_constraints d1);
  print_newline ();

  let store = Store.of_document (Xml_parse.document "<d1><a><b><c/></b></a></d1>") in
  let a_node = List.hd (Xpath.eval (Store.root store) (Xpath.parse "//a")) in

  let attempt label parent fragment =
    match guard d1 ~parent ~fragment with
    | Ok forest ->
      Store.attach store ~parent forest;
      Store.commit store;
      Printf.printf "%-28s ACCEPTED -> %s\n" label
        (Xml_tree.serialize (Store.root store))
    | Error e -> Printf.printf "%-28s REJECTED (%s)\n" label e
  in

  (* Example 3.9: a b without its mandatory c is rejected up front. *)
  attempt "insert <b/> under a:" a_node "<b/>";
  attempt "insert <b><c/></b> under a:" a_node "<b><c/></b>";

  (* DTD d2 of Fig. 5(b): the root's children follow (a, b, c)+. *)
  print_newline ();
  let d2 = Dtd.parse {|d2 = (a, b, c)+
                       a = x?
                       x = x?
                       b = EMPTY
                       c = EMPTY|} in
  let store2 = Store.of_document (Xml_parse.document "<d2><a/><b/><c/></d2>") in
  let root2 = Store.root store2 in
  let attempt2 label fragment =
    match guard d2 ~parent:root2 ~fragment with
    | Ok _ -> Printf.printf "%-28s ACCEPTED\n" label
    | Error e -> Printf.printf "%-28s REJECTED (%s)\n" label e
  in
  (* Example 3.10: an a must come with b and c. *)
  attempt2 "insert <a/> under root:" "<a/>";
  attempt2 "insert <a/><b/><c/>:" "<a/><b/><c/>"
