(* Quickstart: define a view over a document, materialize it, and watch
   incremental maintenance track insertions and deletions.

   Run with: dune exec examples/quickstart.exe *)

let document =
  {|<library>
      <shelf theme="databases">
        <book year="2011"><title>XML Views</title><author>Bonifati</author></book>
        <book year="2009"><title>Structural Joins</title><author>Al-Khalifa</author></book>
      </shelf>
      <shelf theme="systems">
        <book year="2013"><title>Dewey IDs</title><author>Xu</author></book>
      </shelf>
    </library>|}

let print_view mv =
  let dict = Store.dict mv.Mview.store in
  List.iter
    (fun (_key, count, cells) ->
      let cell_str (c : Mview.cell) =
        let id = Dewey.to_string ~dict c.Mview.cell_id in
        match (c.Mview.cell_value, c.Mview.cell_content) with
        | Some v, _ -> Printf.sprintf "%s=%S" id v
        | None, Some ct -> Printf.sprintf "%s cont=%s" id ct
        | None, None -> id
      in
      Printf.printf "  [count %d] %s\n" count
        (String.concat "  " (Array.to_list (Array.map cell_str cells))))
    (Mview.dump mv)

let () =
  (* 1. Parse and index the document: every node gets a structural ID. *)
  let store = Store.of_document (Xml_parse.document document) in
  Printf.printf "indexed %d nodes\n\n" (Store.node_count store);

  (* 2. Define a view in the conjunctive XQuery dialect of the paper and
        compile it to a tree pattern. *)
  let view =
    View_parser.parse ~name:"titles"
      {|for $b in doc("library.xml")//shelf//book, $t in $b/title
        return <r><b>{id($b)}</b><t>{string($t)}</t></r>|}
  in
  Printf.printf "view pattern: %s\n\n" (Pattern.to_string view);

  (* 3. Materialize it (with its auxiliary snowcap tables). *)
  let mv = Mview.materialize store view in
  Printf.printf "materialized %d tuples:\n" (Mview.cardinality mv);
  print_view mv;

  (* 4. A statement-level insertion: each databases shelf gains a book. *)
  let ins =
    Update.insert ~into:{|//shelf[@theme='databases']|}
      {|<book year="2026"><title>Incremental Maintenance</title><author>You</author></book>|}
  in
  let r = Maint.propagate mv ins in
  Printf.printf "\nafter insertion (+%d embeddings, %d/%d terms evaluated):\n"
    r.Maint.embeddings_added r.Maint.terms_surviving r.Maint.terms_developed;
  print_view mv;

  (* 5. A deletion: drop every book older than we care about. *)
  let del = Update.delete {|//book[@year='2009']|} in
  let r = Maint.propagate mv del in
  Printf.printf "\nafter deletion (-%d embeddings):\n" r.Maint.embeddings_removed;
  print_view mv;

  (* 6. The incremental view always equals recomputation. *)
  let fresh = Mview.materialize ~policy:Mview.Leaves store view in
  Printf.printf "\nconsistent with recomputation: %b\n" (Recompute.equal mv fresh)
