(* Optimizing sequences of updates before propagating them to a view
   (Section 5): statement-level updates are lowered to atomic operations
   (compute-pul), the Cavalieri et al. reduction rules O1/O3/I5 shrink the
   sequence, and the reduced sequence is propagated — same final view,
   less work.

   Run with: dune exec examples/pul_pipeline.exe *)

let build () =
  let doc = Xmark_gen.document ~seed:9 ~target_kb:150 in
  let store = Store.of_document doc in
  let mv = Mview.materialize store (Xmark_views.find "Q1") in
  (store, mv)

(* A redundant update sequence: names are inserted under every person,
   then some of those persons are deleted (erasing the insertions on them
   — rule O1), and two insertions hit the same bidders twice (merged by
   rule I5). *)
let make_ops store =
  let lower u = Pul_optim.atomic_ops store u in
  lower (Update.insert ~into:"/site/people/person" "<name>draft</name>")
  @ lower (Update.delete "/site/people/person[profile/@income]")
  @ lower (Update.insert ~into:"//open_auction/bidder" "<increase>v1</increase>")
  @ lower (Update.insert ~into:"//open_auction/bidder" "<increase>v2</increase>")

let run label ops mv =
  let (), elapsed =
    Timing.duration (fun () ->
        List.iter (fun op -> ignore (Pul_optim.propagate_op mv op)) ops)
  in
  Printf.printf "%-12s %3d operations propagated in %6.1f ms -> %d tuples\n" label
    (List.length ops) (elapsed *. 1000.) (Mview.cardinality mv);
  Mview.dump mv |> List.map (fun (k, c, _) -> (k, c))

let () =
  (* Original sequence. *)
  let store1, mv1 = build () in
  let ops1 = make_ops store1 in
  let dump1 = run "original:" ops1 mv1 in

  (* Reduced sequence on an identical document (identical IDs, so the ops
     transfer verbatim). *)
  let store2, mv2 = build () in
  let ops2 = Pul_optim.reduce (make_ops store2) in
  let dump2 = run "reduced:" ops2 mv2 in

  Printf.printf "\nreduction removed %d operations; views identical: %b\n"
    (List.length ops1 - List.length ops2)
    (dump1 = dump2);

  (* Conflict detection for parallel PULs (rules IO / LO / NLO). *)
  let store3, _ = build () in
  let pul_a = Pul_optim.atomic_ops store3 (Update.delete "/site/people/person[homepage]") in
  let pul_b =
    Pul_optim.atomic_ops store3
      (Update.insert ~into:"/site/people/person[homepage]" "<name>late</name>")
  in
  let conflicts = Pul_optim.conflicts pul_a pul_b in
  Printf.printf "\nparallel PULs: %d conflicts detected (e.g. local overrides)\n"
    (List.length conflicts)
