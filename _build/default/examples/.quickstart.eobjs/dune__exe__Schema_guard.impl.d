examples/schema_guard.ml: Dtd List Printf Store Xml_parse Xml_tree Xpath
