examples/quickstart.mli:
