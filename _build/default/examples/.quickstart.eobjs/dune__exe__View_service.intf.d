examples/view_service.mli:
