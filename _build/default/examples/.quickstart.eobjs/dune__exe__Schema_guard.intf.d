examples/schema_guard.mli:
