examples/view_service.ml: Array Dewey Filename List Maint Mview Mview_codec Option Pattern Printf Rewrite Store Sys Timing Unix Update Xmark_gen
