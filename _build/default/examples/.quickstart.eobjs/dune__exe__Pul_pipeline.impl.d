examples/pul_pipeline.ml: List Mview Printf Pul_optim Store Timing Update Xmark_gen Xmark_views
