examples/quickstart.ml: Array Dewey List Maint Mview Pattern Printf Recompute Store String Update View_parser Xml_parse
