examples/auction_site.ml: List Maint Mview Pattern Printf Recompute Store Timing Update View_set Xmark_gen Xmark_views
