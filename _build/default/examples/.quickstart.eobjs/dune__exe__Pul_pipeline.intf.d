examples/pul_pipeline.mli:
