(* An auction site maintaining several materialized views under a stream
   of updates — the scenario motivating the paper: views answer queries
   fast, incremental propagation keeps them fresh far cheaper than
   recomputation.

   Run with: dune exec examples/auction_site.exe *)

let () =
  let doc = Xmark_gen.document ~seed:2026 ~target_kb:400 in
  Printf.printf "auction document: %d KB, " (Xmark_gen.actual_bytes doc / 1024);
  let store = Store.of_document doc in
  Printf.printf "%d nodes\n\n" (Store.node_count store);

  (* Three views sharing the store: person names (Q1), bidder increases
     (Q2), and North-American items (Q13), managed as one set. *)
  let set = View_set.create store in
  List.iter
    (fun name ->
      let pat = Xmark_views.find name in
      let mv, t = Timing.duration (fun () -> View_set.add set pat) in
      Printf.printf "materialized %-4s %5d tuples in %6.1f ms\n" name
        (Mview.cardinality mv) (t *. 1000.))
    [ "Q1"; "Q2"; "Q13" ];
  print_newline ();

  (* A stream of statement-level updates: registrations, bids, listings,
     and the corresponding retirements. *)
  let stream =
    [
      Update.insert ~into:"/site/people"
        {|<person id="person90001"><name>fresh bidder</name>
          <emailaddress>mailto:f@example.org</emailaddress><homepage>h</homepage></person>|};
      Update.insert ~into:"/site/open_auctions/open_auction[privacy]"
        {|<bidder><date>07/05/2026</date><time>12:00:00</time>
          <personref person="person12"/><increase>4.50</increase></bidder>|};
      Update.insert ~into:"/site/regions/namerica"
        {|<item id="item90001"><location>Ottawa</location><quantity>1</quantity>
          <name>maple desk</name><payment>Cash</payment>
          <description><parlist><listitem>mint</listitem></parlist></description></item>|};
      Update.delete "/site/people/person[@id='person3']";
      Update.delete "//open_auction[reserve]/bidder";
    ]
  in

  (* The set applies each statement to the document once and maintains
     every view. *)
  List.iter
    (fun stmt ->
      Printf.printf "update: %s\n" (Update.to_string stmt);
      List.iter
        (fun (mv, r) ->
          Printf.printf
            "  %-4s +%d -%d tuples, %d payload refreshes, %d/%d terms, %.1f ms\n"
            mv.Mview.pat.Pattern.name r.Maint.embeddings_added
            r.Maint.embeddings_removed r.Maint.tuples_modified
            r.Maint.terms_surviving r.Maint.terms_developed
            (Timing.maintenance_total r.Maint.timing *. 1000.))
        (View_set.update set stmt))
    stream;

  (* Final sanity: each view still equals a from-scratch evaluation. *)
  print_newline ();
  List.iter
    (fun mv ->
      let fresh = Mview.materialize ~policy:Mview.Leaves store mv.Mview.pat in
      Printf.printf "%-4s consistent with recomputation: %b (%d tuples)\n"
        mv.Mview.pat.Pattern.name (Recompute.equal mv fresh) (Mview.cardinality mv))
    (View_set.views set)
