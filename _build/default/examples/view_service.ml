(* A "view service": materialized views persisted to disk, reloaded, kept
   fresh incrementally, and used to answer queries — including by joining
   two views on structural IDs — without re-touching the base document.

   Run with: dune exec examples/view_service.exe *)

let n = Pattern.n

(* Two views over the auction document: person names, person homepages. *)
let names_view =
  Pattern.compile ~name:"names"
    (n ~axis:Pattern.Child "site"
       [
         n ~axis:Pattern.Child "people"
           [
             n ~axis:Pattern.Child ~id:true "person"
               [ n ~axis:Pattern.Child ~id:true ~value:true "name" [] ];
           ];
       ])

let homepages_view =
  Pattern.compile ~name:"homepages"
    (n ~axis:Pattern.Child "site"
       [
         n ~axis:Pattern.Child "people"
           [
             n ~axis:Pattern.Child ~id:true "person"
               [ n ~axis:Pattern.Child ~id:true ~value:true "homepage" [] ];
           ];
       ])

let () =
  let store = Store.of_document (Xmark_gen.document ~seed:7 ~target_kb:200) in
  let dict = Store.dict store in

  (* Materialize and persist. *)
  let names = Mview.materialize store names_view in
  let homepages = Mview.materialize store homepages_view in
  let dir = Filename.temp_file "xvm" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Mview_codec.save_to_file names (Filename.concat dir "names.view");
  Mview_codec.save_to_file homepages (Filename.concat dir "homepages.view");
  Printf.printf "persisted %d + %d tuples to %s\n\n" (Mview.cardinality names)
    (Mview.cardinality homepages) dir;

  (* A new session: reload instead of re-evaluating. *)
  let names, t_load =
    Timing.duration (fun () ->
        Mview_codec.load_from_file store names_view (Filename.concat dir "names.view"))
  in
  Printf.printf "reloaded names view (%d tuples) in %.1f ms\n" (Mview.cardinality names)
    (t_load *. 1000.);

  (* Keep it fresh under updates. *)
  let upd = Update.insert ~into:"/site/people/person[@id='person1']" "<name>alias</name>" in
  let r = Maint.propagate names upd in
  Printf.printf "update propagated: +%d tuples\n\n" r.Maint.embeddings_added;

  (* Answer a filtered query from the view alone. *)
  let some_name =
    match Mview.dump names with
    | (_, _, cells) :: _ -> Option.get cells.(1).Mview.cell_value
    | [] -> assert false
  in
  let query =
    Pattern.compile ~name:"by-name"
      (n ~axis:Pattern.Child "site"
         [
           n ~axis:Pattern.Child "people"
             [
               n ~axis:Pattern.Child ~id:true "person"
                 [ n ~axis:Pattern.Child ~id:true ~value:true ~vpred:some_name "name" [] ];
             ];
         ])
  in
  (match Rewrite.answer names query with
  | Some rows ->
    Printf.printf "query name=%S answered from the view: %d rows\n" some_name
      (List.length rows)
  | None -> print_endline "query not answerable (unexpected)");

  (* Stitch the two views on the person ID: who has a homepage? *)
  let homepages =
    Mview_codec.load_from_file store homepages_view (Filename.concat dir "homepages.view")
  in
  let joined = Rewrite.id_join names homepages ~on:(2, 2) in
  Printf.printf "\nname ⋈_id homepage: %d joined rows, e.g.:\n" (List.length joined);
  List.iteri
    (fun i row ->
      if i < 3 then begin
        let cell p = row.Rewrite.cells.(p) in
        Printf.printf "  %s: %s -> %s\n"
          (Dewey.to_string ~dict (cell 0).Mview.cell_id)
          (Option.value ~default:"?" (cell 1).Mview.cell_value)
          (Option.value ~default:"?" (cell 3).Mview.cell_value)
      end)
    joined;

  (* Clean up. *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir
