(* Tests for the PUL optimization rules of Section 5 (reduction, conflict
   and aggregation rules) and for atomic-op propagation. *)

(* A document shaped like Fig. 17's relevant core:
   a / c / b with three d children, each holding a b. *)
let doc_text = {|<a><c><b><d><b/></d><d><b/></d><d><b/></d></b></c></a>|}

let setup () =
  let store = Store.of_document (Xml_parse.document doc_text) in
  let node path = List.hd (Xpath.eval (Store.root store) (Xpath.parse path)) in
  let nodes path = Xpath.eval (Store.root store) (Xpath.parse path) in
  (store, node, nodes)

let ins store target frag =
  Pul_optim.Ins { target = Store.id_of store target; forest = Xml_parse.fragment frag }

let del store target = Pul_optim.Del { target = Store.id_of store target }

let test_example_5_1_reduce () =
  let store, _, nodes = setup () in
  let ds = nodes "/a/c/b/d" in
  let d1 = List.nth ds 0 and d2 = List.nth ds 1 and d3 = List.nth ds 2 in
  let b_of d = List.hd (Xml_tree.element_children d) in
  let ops =
    [
      ins store (b_of d1) "<b><d/></b>";  (* op1: erased by O1 *)
      del store (b_of d1);                (* op2 *)
      ins store (b_of d2) "<b/>";         (* op3: erased by O3 *)
      del store d2;                       (* op4 *)
      ins store d3 "<b/>";                (* op5: merged by I5… *)
      ins store d3 "<d><b/></d>";         (* …with op6 *)
    ]
  in
  let reduced = Pul_optim.reduce ops in
  Alcotest.(check int) "three operations remain" 3 (List.length reduced);
  (match reduced with
  | [ Pul_optim.Del _; Pul_optim.Del _; Pul_optim.Ins { forest; _ } ] ->
    Alcotest.(check int) "merged forest" 2 (List.length forest)
  | _ -> Alcotest.fail "unexpected reduction shape");
  (* Reduction preserves the final document. *)
  let run ops =
    let store = Store.of_document (Xml_parse.document doc_text) in
    List.iter
      (fun op ->
        match op with
        | Pul_optim.Ins { target; forest } ->
          let node = Option.get (Store.node_of store target) in
          ignore
            (Update.apply_insert_at store ~target:node (List.map Xml_tree.copy forest))
        | Pul_optim.Del { target } ->
          let node = Option.get (Store.node_of store target) in
          ignore (Update.apply_delete store ~targets:[ node ]))
      ops;
    Store.commit store;
    Xml_tree.serialize (Store.root store)
  in
  Alcotest.(check string) "same final document" (run ops) (run reduced)

let test_example_5_2_conflicts () =
  let store, _, nodes = setup () in
  let ds = nodes "/a/c/b/d" in
  let d1 = List.nth ds 0 and d2 = List.nth ds 1 and d3 = List.nth ds 2 in
  let b3 = List.hd (Xml_tree.element_children d3) in
  let pul1 =
    [ ins store d1 "<d><b/></d>"; del store d2; del store d3 ]
  in
  let pul2 =
    [ ins store d1 "<b/>"; ins store d2 "<b/>"; ins store b3 "<b/>" ]
  in
  let cs = Pul_optim.conflicts pul1 pul2 in
  let has kind = List.exists (fun c -> c.Pul_optim.kind = kind) cs in
  Alcotest.(check int) "three conflicts" 3 (List.length cs);
  Alcotest.(check bool) "IO" true (has Pul_optim.Insertion_order);
  Alcotest.(check bool) "LO" true (has Pul_optim.Local_override);
  Alcotest.(check bool) "NLO" true (has Pul_optim.Non_local_override);
  Alcotest.(check (list (pair string string))) "no self conflicts" []
    (List.map (fun _ -> ("", "")) (Pul_optim.conflicts pul2 []))

let test_example_5_3_aggregate () =
  let store, _, nodes = setup () in
  let ds = nodes "/a/c/b/d" in
  let d1 = List.nth ds 0 and d2 = List.nth ds 1 and d3 = List.nth ds 2 in
  (* ∆1's third op inserts under d3; apply it so its forest carries IDs,
     then ∆2 references a node inside that inserted tree (rule D6). *)
  let f3 = Xml_parse.fragment "<d><b/></d>" in
  ignore (Update.apply_insert_at store ~target:d3 f3);
  Store.commit store;
  let inserted_d = List.hd f3 in
  let pul1 =
    [
      ins store d1 "<c><b/></c>";
      ins store d2 "<b/>";
      Pul_optim.Ins { target = Store.id_of store d3; forest = f3 };
    ]
  in
  let pul2 =
    [
      ins store d1 "<b/>";  (* A1: merges into pul1's first op *)
      ins store d2 "<d><b/></d>";  (* A2: merges into pul1's second op *)
      ins store inserted_d "<b/>";  (* D6: folded into the forest parameter *)
    ]
  in
  let merged = Pul_optim.aggregate store pul1 pul2 in
  Alcotest.(check int) "three operations" 3 (List.length merged);
  (match merged with
  | [ Pul_optim.Ins { forest = f1; _ }; Pul_optim.Ins { forest = f2; _ };
      Pul_optim.Ins { forest = f3; _ } ] ->
    Alcotest.(check int) "A1 merged forests" 2 (List.length f1);
    Alcotest.(check int) "A2 merged forests" 2 (List.length f2);
    Alcotest.(check int) "D6 keeps one tree" 1 (List.length f3);
    (* D6 grew the tree parameter itself. *)
    Alcotest.(check int) "folded insertion visible" 2
      (List.length (Xml_tree.element_children (List.hd f3)))
  | _ -> Alcotest.fail "unexpected aggregation shape")

let test_atomic_ops_and_propagation () =
  (* Lowering a statement to atomic ops and propagating them one by one
     yields the same view as the statement-level propagation. *)
  let pat =
    Pattern.compile ~name:"cb"
      (Pattern.n "c" ~id:true [ Pattern.n "b" ~id:true [] ])
  in
  let stmt = Update.insert ~into:"//d" "<c><b/></c>" in
  (* Statement-level. *)
  let store1 = Store.of_document (Xml_parse.document doc_text) in
  let mv1 = Mview.materialize store1 pat in
  let _ = Maint.propagate mv1 stmt in
  (* Node-level via the PUL machinery. *)
  let store2 = Store.of_document (Xml_parse.document doc_text) in
  let mv2 = Mview.materialize store2 pat in
  let ops = Pul_optim.atomic_ops store2 stmt in
  Alcotest.(check int) "one op per target" 3 (List.length ops);
  List.iter (fun op -> ignore (Pul_optim.propagate_op mv2 op)) ops;
  match Recompute.diff mv1 mv2 with
  | None -> ()
  | Some d -> Alcotest.fail ("op-wise propagation diverged: " ^ d)

let test_reduced_propagation_consistency () =
  (* Propagating a reduced op list leaves the view identical to full
     recomputation after the reduced list. *)
  let pat =
    Pattern.compile ~name:"ab" (Pattern.n "a" ~id:true [ Pattern.n "b" ~id:true [] ])
  in
  let build () =
    let store = Store.of_document (Xml_parse.document doc_text) in
    let ds = Xpath.eval (Store.root store) (Xpath.parse "/a/c/b/d") in
    let d1 = List.nth ds 0 and d2 = List.nth ds 1 in
    let ops =
      [
        ins store d1 "<b/>";
        del store d1;
        ins store d2 "<b/>";
        ins store d2 "<b><b/></b>";
      ]
    in
    (store, ops)
  in
  let store, ops = build () in
  let reduced = Pul_optim.reduce ops in
  Alcotest.(check int) "two ops" 2 (List.length reduced);
  let mv = Mview.materialize store pat in
  List.iter (fun op -> ignore (Pul_optim.propagate_op mv op)) reduced;
  let fresh = Mview.materialize ~policy:Mview.Leaves store pat in
  match Recompute.diff mv fresh with
  | None -> ()
  | Some d -> Alcotest.fail ("reduced propagation diverged: " ^ d)

let test_propagate_errors () =
  let pat = Pattern.compile ~name:"a" (Pattern.n "a" ~id:true []) in
  let store = Store.of_document (Xml_parse.document "<a><b/></a>") in
  let mv = Mview.materialize store pat in
  let b = List.hd (Xml_tree.element_children (Store.root store)) in
  let op = del store b in
  ignore (Pul_optim.propagate_op mv op);
  Alcotest.(check bool) "second application fails" true
    (match Pul_optim.propagate_op mv op with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* {1 Deferred maintenance} *)

let q1_like =
  Pattern.compile ~name:"ab" (Pattern.n "a" ~id:true [ Pattern.n "b" ~id:true [] ])

let test_deferred_basic () =
  let store = Store.of_document (Xml_parse.document doc_text) in
  let mv = Mview.materialize store q1_like in
  let before = Mview.cardinality mv in
  let d = Deferred.create mv in
  Deferred.update d (Update.insert ~into:"/a/c/b/d" "<b>one</b>");
  Deferred.update d (Update.insert ~into:"/a/c" "<b>two</b>");
  Alcotest.(check bool) "operations queued" true (Deferred.pending d > 0);
  (* The view is stale until consulted. *)
  Alcotest.(check int) "stale before flush" before (Mview.cardinality mv);
  let fresh = Deferred.view d in
  Alcotest.(check int) "nothing pending after view" 0 (Deferred.pending d);
  (* Same statements propagated immediately on a twin instance. *)
  let store2 = Store.of_document (Xml_parse.document doc_text) in
  let mv2 = Mview.materialize store2 q1_like in
  ignore (Maint.propagate mv2 (Update.insert ~into:"/a/c/b/d" "<b>one</b>"));
  ignore (Maint.propagate mv2 (Update.insert ~into:"/a/c" "<b>two</b>"));
  match Recompute.diff fresh mv2 with
  | None -> ()
  | Some diff -> Alcotest.fail ("deferred diverged from immediate: " ^ diff)

let test_deferred_reduction () =
  let run reduce =
    let store = Store.of_document (Xml_parse.document doc_text) in
    let mv = Mview.materialize store q1_like in
    let d = Deferred.create ~reduce mv in
    (* Two insertion rounds on the same targets (merged by I5), then a
       deletion of those targets (erasing the insertions — rule O1). *)
    Deferred.update d (Update.insert ~into:"/a/c/b/d" "<b>x</b>");
    Deferred.update d (Update.insert ~into:"/a/c/b/d" "<b>y</b>");
    Deferred.update d (Update.delete "/a/c/b/d");
    let r = Deferred.flush d in
    (mv, r)
  in
  let mv_red, r_red = run true in
  let mv_raw, r_raw = run false in
  Alcotest.(check int) "nine queued" 9 r_raw.Deferred.ops_queued;
  Alcotest.(check int) "nine propagated without reduction" 9
    r_raw.Deferred.ops_propagated;
  Alcotest.(check int) "three propagated with reduction" 3
    r_red.Deferred.ops_propagated;
  match Recompute.diff mv_red mv_raw with
  | None -> ()
  | Some diff -> Alcotest.fail ("reduced flush diverged: " ^ diff)

let test_deferred_conflict_forces_flush () =
  let store = Store.of_document (Xml_parse.document doc_text) in
  let mv = Mview.materialize store q1_like in
  let d = Deferred.create mv in
  Deferred.update d (Update.delete "/a/c/b/d");
  (* Inserting under a node the queue deletes is a NLO/LO conflict. *)
  Deferred.update d (Update.insert ~into:"/a/c/b/d" "<b>late</b>");
  let t = Deferred.totals d in
  Alcotest.(check int) "one forced flush" 1 t.Deferred.conflicts_forced_flush;
  (* The late insertion re-lowered against the updated document finds no
     targets: the queue is empty. *)
  Alcotest.(check int) "nothing re-queued" 0 (Deferred.pending d);
  let fresh = Deferred.view d in
  let oracle = Mview.materialize ~policy:Mview.Leaves store q1_like in
  Alcotest.(check bool) "consistent" true (Recompute.equal fresh oracle)

let () =
  Alcotest.run "puloptim"
    [
      ( "rules",
        [
          Alcotest.test_case "Example 5.1: reduce (O1, O3, I5)" `Quick
            test_example_5_1_reduce;
          Alcotest.test_case "Example 5.2: conflicts (IO, LO, NLO)" `Quick
            test_example_5_2_conflicts;
          Alcotest.test_case "Example 5.3: aggregate (A1, A2, D6)" `Quick
            test_example_5_3_aggregate;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "atomic ops = statement" `Quick
            test_atomic_ops_and_propagation;
          Alcotest.test_case "reduced list consistency" `Quick
            test_reduced_propagation_consistency;
          Alcotest.test_case "unresolved targets" `Quick test_propagate_errors;
        ] );
      ( "deferred",
        [
          Alcotest.test_case "queue, stale view, flush on read" `Quick
            test_deferred_basic;
          Alcotest.test_case "reduction shrinks the flush" `Quick
            test_deferred_reduction;
          Alcotest.test_case "override forces a flush" `Quick
            test_deferred_conflict_forces_flush;
        ] );
    ]
