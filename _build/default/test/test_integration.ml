(* End-to-end integration: every (view, update) pair of the paper's
   evaluation, both as insertion and deletion, maintained incrementally
   and checked against full recomputation; plus the IVMA baseline and the
   two snowcap policies. *)

let doc () = Xmark_gen.document ~seed:42 ~target_kb:80

let check_pair ?policy vname uname stmt () =
  let pat = Xmark_views.find vname in
  let store = Store.of_document (doc ()) in
  let mv = Mview.materialize ?policy store pat in
  let _ = Maint.propagate mv stmt in
  let store2 = Store.of_document (doc ()) in
  let mv2, _ = Recompute.recompute_after store2 stmt ~pat in
  match Recompute.diff mv mv2 with
  | None -> ()
  | Some d -> Alcotest.fail (Printf.sprintf "%s/%s diverged: %s" vname uname d)

let pair_cases =
  List.concat_map
    (fun (vname, uname) ->
      let u = Xmark_updates.find uname in
      [
        Alcotest.test_case
          (Printf.sprintf "%s + insert %s" vname uname)
          `Quick
          (check_pair vname uname (Xmark_updates.insert u));
        Alcotest.test_case
          (Printf.sprintf "%s + delete %s" vname uname)
          `Quick
          (check_pair vname uname (Xmark_updates.delete u));
      ])
    Xmark_updates.figure20_pairs

let leaves_cases =
  List.map
    (fun (vname, uname) ->
      let u = Xmark_updates.find uname in
      Alcotest.test_case
        (Printf.sprintf "%s + %s (leaves policy)" vname uname)
        `Quick
        (check_pair ~policy:Mview.Leaves vname uname (Xmark_updates.insert u)))
    [ ("Q1", "X1_L"); ("Q3", "B3_LB"); ("Q6", "X7_O"); ("Q13", "X17_L") ]

let ivma_case vname uname mk =
  Alcotest.test_case (Printf.sprintf "IVMA %s + %s" vname uname) `Quick (fun () ->
      let pat = Xmark_views.find vname in
      let u = Xmark_updates.find uname in
      let stmt = mk u in
      let store = Store.of_document (doc ()) in
      let mv = Mview.materialize ~policy:Mview.Leaves store pat in
      let r = Ivma.propagate mv stmt in
      Alcotest.(check bool) "at least one invocation" true (r.Ivma.invocations >= 1);
      let store2 = Store.of_document (doc ()) in
      let mv2, _ = Recompute.recompute_after store2 stmt ~pat in
      match Recompute.diff mv mv2 with
      | None -> ()
      | Some d -> Alcotest.fail ("IVMA diverged: " ^ d))

let annotation_variant_cases =
  List.map
    (fun (label, pat) ->
      Alcotest.test_case ("Fig24 variant " ^ label) `Quick (fun () ->
          let stmt = Update.delete "/site/people/person[@id='person0']" in
          let store = Store.of_document (doc ()) in
          let mv = Mview.materialize store pat in
          let _ = Maint.propagate mv stmt in
          let store2 = Store.of_document (doc ()) in
          let mv2, _ = Recompute.recompute_after store2 stmt ~pat in
          match Recompute.diff mv mv2 with
          | None -> ()
          | Some d -> Alcotest.fail (label ^ " diverged: " ^ d)))
    Xmark_views.q1_annotation_variants

let deep_path_cases =
  (* The Fig. 22/23 experiment paths, including deleting the root. *)
  List.map
    (fun path ->
      Alcotest.test_case ("delete " ^ path) `Quick (fun () ->
          let pat = Xmark_views.q1 in
          let stmt = Update.delete path in
          let store = Store.of_document (doc ()) in
          let mv = Mview.materialize store pat in
          let _ = Maint.propagate mv stmt in
          let expected =
            if path = "/site" then 0
            else begin
              let store2 = Store.of_document (doc ()) in
              let mv2, _ = Recompute.recompute_after store2 stmt ~pat in
              Mview.cardinality mv2
            end
          in
          Alcotest.(check int) "cardinality" expected (Mview.cardinality mv)))
    [
      "/site"; "/site/people"; "/site/people/person"; "/site/people/person/@id";
      "/site/people/person/name";
    ]

let () =
  Alcotest.run "integration"
    [
      ("figure 20/21 pairs", pair_cases);
      ("leaves policy", leaves_cases);
      ( "ivma baseline",
        [
          ivma_case "Q1" "X1_L" Xmark_updates.insert;
          ivma_case "Q1" "X1_L" Xmark_updates.delete;
          ivma_case "Q3" "B3_LB" Xmark_updates.insert;
          ivma_case "Q6" "E6_L" Xmark_updates.delete;
        ] );
      ("fig 24 annotation variants", annotation_variant_cases);
      ("fig 22/23 path depths", deep_path_cases);
    ]
