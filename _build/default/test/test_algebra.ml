(* Tests for tuple tables, structural joins and the ID-based physical
   operators. *)

let store_of s = Store.of_document (Xml_parse.document s)

let fixture () =
  store_of {|<a><c><b>x</b><b/></c><f><c><b>y</b></c><b/></f><c/></a>|}

let atom store pat i = Plan.atom_of_store store pat i

let pat_cb =
  Pattern.compile ~name:"cb" (Pattern.n "c" ~id:true [ Pattern.n "b" ~id:true [] ])

(* Naive nested-loop structural join used as the oracle. *)
let naive_join left right ~ppos ~cpos ~axis =
  let out = ref [] in
  Array.iter
    (fun l ->
      Array.iter
        (fun r ->
          let ok =
            match axis with
            | Pattern.Child -> Dewey.is_parent l.(ppos) r.(cpos)
            | Pattern.Descendant -> Dewey.is_ancestor l.(ppos) r.(cpos)
          in
          if ok then out := Array.append l r :: !out)
        right)
    left;
  List.sort compare (List.map (Array.map Dewey.encode) !out) |> List.map Array.to_list

let join_result t =
  List.sort compare
    (Array.to_list (Array.map (fun r -> Array.to_list (Array.map Dewey.encode r)) t.Tuple_table.rows))

let test_join_fixture () =
  let s = fixture () in
  let c = atom s pat_cb 0 and b = atom s pat_cb 1 in
  let joined = Struct_join.join c b ~parent:0 ~child:1 ~axis:Pattern.Descendant in
  Alcotest.(check int) "c ancestor of b pairs" 3 (Tuple_table.length joined);
  let joined_child = Struct_join.join c b ~parent:0 ~child:1 ~axis:Pattern.Child in
  Alcotest.(check int) "c parent of b pairs" 3 (Tuple_table.length joined_child);
  Alcotest.(check (list (list string))) "same as naive"
    (naive_join c.Tuple_table.rows b.Tuple_table.rows ~ppos:0 ~cpos:0
       ~axis:Pattern.Descendant)
    (join_result joined)

let test_join_random =
  Tutil.qtest ~count:200 "structural join = nested loop"
    (QCheck.triple Tutil.arb_doc
       (QCheck.oneofl [ Pattern.Child; Pattern.Descendant ])
       (QCheck.pair (QCheck.oneofa Tutil.labels) (QCheck.oneofa Tutil.labels)))
    (fun (d, axis, (l1, l2)) ->
      let store = Store.of_document d in
      let pat =
        Pattern.compile ~name:"j" (Pattern.n l1 ~id:true [ Pattern.n ~axis l2 ~id:true [] ])
      in
      let left = atom store pat 0 and right = atom store pat 1 in
      let joined = Struct_join.join left right ~parent:0 ~child:1 ~axis in
      join_result joined
      = naive_join left.Tuple_table.rows right.Tuple_table.rows ~ppos:0 ~cpos:0 ~axis)

let test_tuple_table () =
  let t = Tuple_table.of_ids ~node:7 [| Dewey.root ~lab:1 |] in
  Alcotest.(check int) "col_pos" 0 (Tuple_table.col_pos t 7);
  Alcotest.(check bool) "missing col raises" true
    (match Tuple_table.col_pos t 3 with exception Not_found -> true | _ -> false);
  Alcotest.(check int) "length" 1 (Tuple_table.length t);
  Tuple_table.filter t (fun _ -> false);
  Alcotest.(check bool) "filter empties" true (Tuple_table.is_empty t)

let test_sort_by_node () =
  let a = Dewey.root ~lab:0 in
  let b = Dewey.child a ~lab:1 ~ord:[| 1 |] in
  let c = Dewey.child a ~lab:1 ~ord:[| 2 |] in
  let t = Tuple_table.of_ids ~node:0 [| c; a; b |] in
  Tuple_table.sort_by_node t 0;
  Alcotest.(check bool) "sorted" true
    (Dewey.equal t.Tuple_table.rows.(0).(0) a
    && Dewey.equal t.Tuple_table.rows.(1).(0) b
    && Dewey.equal t.Tuple_table.rows.(2).(0) c)

let test_id_region () =
  let a = Dewey.root ~lab:0 in
  let b = Dewey.child a ~lab:1 ~ord:[| 1 |] in
  let c = Dewey.child b ~lab:2 ~ord:[| 1 |] in
  let other = Dewey.child a ~lab:1 ~ord:[| 2 |] in
  let region = Id_region.of_roots [ b ] in
  Alcotest.(check bool) "root in region" true (Id_region.mem region b);
  Alcotest.(check bool) "descendant in region" true (Id_region.mem region c);
  Alcotest.(check bool) "ancestor not in region" false (Id_region.mem region a);
  Alcotest.(check bool) "sibling not in region" false (Id_region.mem region other);
  Alcotest.(check bool) "strictly inside excludes the root" false
    (Id_region.strictly_inside region b);
  Alcotest.(check bool) "strictly inside descendant" true
    (Id_region.strictly_inside region c);
  Alcotest.(check bool) "empty region" true
    (Id_region.is_empty (Id_region.of_roots []) && not (Id_region.mem (Id_region.of_roots []) a))

let test_path_ops () =
  let s = fixture () in
  let dict = Store.dict s in
  let rb = Store.relation s "b" in
  let ids = Array.map (fun e -> e.Store.id) rb in
  (* Path Filter: b nodes below a c. *)
  let c_code = Option.get (Label_dict.find dict "c") in
  let under_c =
    Path_ops.path_filter ids (fun path ->
        Array.exists (fun l -> l = c_code) (Array.sub path 0 (Array.length path - 1)))
  in
  Alcotest.(check int) "path filter" 3 (Array.length under_c);
  Alcotest.(check bool) "has_label_ancestor agrees" true
    (Array.for_all (fun id -> Path_ops.has_label_ancestor dict ~label:"c" id) under_c);
  Alcotest.(check bool) "star label always true" true
    (Path_ops.has_label_ancestor dict ~label:"*" ids.(0));
  (* Path Navigate: parents of the b nodes are the two c's and f. *)
  let parents = Path_ops.path_navigate ids in
  Alcotest.(check int) "navigate dedups" 3 (Array.length parents)

let test_plan_scope () =
  (* eval_subtree with a restricted scope only joins the included nodes. *)
  let s = fixture () in
  let pat =
    Pattern.compile ~name:"p"
      (Pattern.n "a" ~id:true [ Pattern.n "c" ~id:true [ Pattern.n "b" ~id:true [] ] ])
  in
  let within = [| true; true; false |] in
  let t =
    Plan.eval_subtree pat ~atom:(atom s pat) ~within:(fun i -> within.(i)) ~root:0
  in
  Alcotest.(check int) "a-c pairs only" 3 (Tuple_table.length t);
  Alcotest.(check bool) "no b column" true
    (match Tuple_table.col_pos t 2 with exception Not_found -> true | _ -> false)

let () =
  Alcotest.run "algebra"
    [
      ( "joins",
        [
          Alcotest.test_case "fixture join" `Quick test_join_fixture;
          test_join_random;
        ] );
      ( "tables",
        [
          Alcotest.test_case "tuple table" `Quick test_tuple_table;
          Alcotest.test_case "sort by node" `Quick test_sort_by_node;
        ] );
      ( "id ops",
        [
          Alcotest.test_case "id region" `Quick test_id_region;
          Alcotest.test_case "path filter/navigate" `Quick test_path_ops;
          Alcotest.test_case "scoped plan" `Quick test_plan_scope;
        ] );
    ]
