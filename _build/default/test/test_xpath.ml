(* Tests for the XPath{/,//,*,[]} parser and evaluator. *)

let doc () =
  Xml_parse.document
    {|<site><people>
        <person id="p0"><name>ann</name><phone>1</phone><homepage>h</homepage></person>
        <person id="p1"><name>bob</name><phone>2</phone></person>
        <person id="p2"><name>cid</name><homepage>h2</homepage></person>
        <person id="p3"><name>dee</name></person>
      </people>
      <regions><namerica><item><name>car</name><description>old</description></item>
        <item><name>pen</name></item></namerica>
        <europe><item><description>new</description></item></europe></regions>
     </site>|}

let names root path =
  Xpath.eval root (Xpath.parse path)
  |> List.map (fun n ->
         match Xml_tree.attribute_node n "id" with
         | Some a -> Xml_tree.string_value a
         | None -> Xml_tree.string_value n)

let check_names msg path expected =
  Alcotest.(check (list string)) msg expected (names (doc ()) path)

let test_linear () =
  check_names "absolute child path" "/site/people/person" [ "p0"; "p1"; "p2"; "p3" ];
  check_names "descendant" "//person" [ "p0"; "p1"; "p2"; "p3" ];
  check_names "star" "/site/regions/*/item/name" [ "car"; "pen" ];
  check_names "mixed" "//namerica//name" [ "car"; "pen" ];
  check_names "no match" "/nothing" []

let test_attributes () =
  let hits = Xpath.eval (doc ()) (Xpath.parse "/site/people/person/@id") in
  Alcotest.(check int) "four id attributes" 4 (List.length hits);
  Alcotest.(check bool) "attribute kind" true
    (List.for_all (fun n -> n.Xml_tree.kind = Xml_tree.Attribute) hits)

let test_predicates () =
  check_names "existence" "//person[homepage]" [ "p0"; "p2" ];
  check_names "and" "//person[phone and homepage]" [ "p0" ];
  check_names "or" "//person[phone or homepage]" [ "p0"; "p1"; "p2" ];
  check_names "and-or" "//person[name and (phone or homepage)]" [ "p0"; "p1"; "p2" ];
  check_names "value equality" "//person[@id='p2']" [ "p2" ];
  check_names "path value equality" "//person[name='bob']" [ "p1" ];
  check_names "nested predicate path" "//item[description]/name" [ "car" ]

let test_nested_predicates () =
  check_names "descendant path in predicate" "/site[//item]/people/person"
    [ "p0"; "p1"; "p2"; "p3" ];
  check_names "predicate inside predicate" "//person[name[.='bob']]" [ "p1" ];
  check_names "attribute in nested path" "//regions//item[name='car']/name" [ "car" ];
  check_names "empty nested predicate" "//person[address]" []

let test_doc_order_dedup () =
  (* //item reached through two region elements stays deduplicated and in
     document order. *)
  let items = Xpath.eval (doc ()) (Xpath.parse "//regions//item") in
  Alcotest.(check int) "three items" 3 (List.length items);
  let sorted = List.sort compare (List.map (fun n -> n.Xml_tree.serial) items) in
  Alcotest.(check (list int)) "document order"
    sorted
    (List.map (fun n -> n.Xml_tree.serial) items)

let test_holds () =
  let p0 = List.hd (Xpath.eval (doc ()) (Xpath.parse "//person")) in
  Alcotest.(check bool) "holds exists" true
    (Xpath.holds p0 (Xpath.Exists (Xpath.parse "//name" |> fun p -> p)));
  Alcotest.(check bool) "holds eq self" false (Xpath.holds p0 (Xpath.Eq ([], "nope")))

let test_roundtrip () =
  let cases =
    [
      "/site/people/person";
      "//person[phone and homepage]";
      "/site/regions[namerica or samerica]//item";
      "//item[description and (name or mailbox)]";
      "/site/people/person[@id='person0']/name";
      "//open_auction[reserve]/bidder";
    ]
  in
  List.iter
    (fun s ->
      let printed = Xpath.to_string (Xpath.parse s) in
      let reparsed = Xpath.to_string (Xpath.parse printed) in
      Alcotest.(check string) ("stable print of " ^ s) printed reparsed)
    cases

let test_parse_errors () =
  let bad s =
    match Xpath.parse s with exception Xpath.Parse_error _ -> true | _ -> false
  in
  Alcotest.(check bool) "relative" true (bad "person");
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "unclosed predicate" true (bad "//a[b");
  Alcotest.(check bool) "trailing" true (bad "//a]");
  Alcotest.(check bool) "bad literal" true (bad "//a[@x=unquoted]")

(* Oracle: a naive evaluator via descendants_or_self filtering, for linear
   descendant paths. *)
let test_against_naive =
  Tutil.qtest ~count:100 "//lab agrees with a direct scan" Tutil.arb_doc (fun d ->
      List.for_all
        (fun lab ->
          let via_xpath = Xpath.eval d (Xpath.parse ("//" ^ lab)) in
          let naive =
            List.filter
              (fun n -> n.Xml_tree.kind = Xml_tree.Element && n.Xml_tree.name = lab)
              (Xml_tree.descendants_or_self d)
          in
          List.map (fun n -> n.Xml_tree.serial) via_xpath
          = List.map (fun n -> n.Xml_tree.serial) naive)
        (Array.to_list Tutil.labels))

let () =
  Alcotest.run "xpath"
    [
      ( "eval",
        [
          Alcotest.test_case "linear paths" `Quick test_linear;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "nested predicates" `Quick test_nested_predicates;
          Alcotest.test_case "doc order + dedup" `Quick test_doc_order_dedup;
          Alcotest.test_case "holds" `Quick test_holds;
          test_against_naive;
        ] );
      ( "parser",
        [
          Alcotest.test_case "print roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
    ]
