(* Tests for materialized-view persistence. *)

let doc () = Xmark_gen.document ~seed:33 ~target_kb:60

let test_roundtrip () =
  let store = Store.of_document (doc ()) in
  let mv = Mview.materialize store Xmark_views.q13 in
  let data = Mview_codec.save mv in
  let loaded = Mview_codec.load store Xmark_views.q13 data in
  match Recompute.diff mv loaded with
  | None -> ()
  | Some d -> Alcotest.fail ("roundtrip diverged: " ^ d)

let test_loaded_view_maintains () =
  (* A reloaded view keeps maintaining correctly (snowcaps are rebuilt at
     load time). *)
  let stmt = Xmark_updates.insert (Xmark_updates.find "X17_L") in
  let store = Store.of_document (doc ()) in
  let mv = Mview.materialize store Xmark_views.q13 in
  let data = Mview_codec.save mv in
  let loaded = Mview_codec.load store Xmark_views.q13 data in
  let _ = Maint.propagate loaded stmt in
  let store2 = Store.of_document (doc ()) in
  let oracle, _ = Recompute.recompute_after store2 stmt ~pat:Xmark_views.q13 in
  match Recompute.diff loaded oracle with
  | None -> ()
  | Some d -> Alcotest.fail ("loaded view diverged after update: " ^ d)

let test_file_roundtrip () =
  let store = Store.of_document (doc ()) in
  let mv = Mview.materialize store Xmark_views.q1 in
  let path = Filename.temp_file "xvm" ".view" in
  Mview_codec.save_to_file mv path;
  let loaded = Mview_codec.load_from_file store Xmark_views.q1 path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (Recompute.equal mv loaded)

let test_corrupt () =
  let store = Store.of_document (doc ()) in
  let mv = Mview.materialize store Xmark_views.q1 in
  let data = Mview_codec.save mv in
  let corrupt s =
    match Mview_codec.load store Xmark_views.q1 s with
    | exception Mview_codec.Corrupt _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad magic" true (corrupt ("ZZZZ" ^ data));
  Alcotest.(check bool) "truncated" true
    (corrupt (String.sub data 0 (String.length data - 3)));
  Alcotest.(check bool) "trailing" true (corrupt (data ^ "x"));
  Alcotest.(check bool) "wrong pattern" true
    (match Mview_codec.load store Xmark_views.q4 data with
    | exception Mview_codec.Corrupt _ -> true
    | _ -> false)

let test_counts_preserved () =
  (* Derivation counts survive the roundtrip. *)
  let root = Xml_parse.document {|<a><c><b/><b/></c><f><b/></f></a>|} in
  let store = Store.of_document root in
  let pat =
    Pattern.compile ~name:"a[b]" (Pattern.n "a" ~id:true [ Pattern.n "b" [] ])
  in
  let mv = Mview.materialize store pat in
  Alcotest.(check int) "count 3" 3 (Mview.total_count mv);
  let loaded = Mview_codec.load store pat (Mview_codec.save mv) in
  Alcotest.(check int) "count preserved" 3 (Mview.total_count loaded);
  Alcotest.(check int) "one tuple" 1 (Mview.cardinality loaded)

let () =
  Alcotest.run "codec"
    [
      ( "persistence",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "loaded view maintains" `Quick test_loaded_view_maintains;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_corrupt;
          Alcotest.test_case "derivation counts preserved" `Quick
            test_counts_preserved;
        ] );
    ]
