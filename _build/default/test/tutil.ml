(* Shared helpers and QCheck generators for the test suites. *)

let labels = [| "a"; "b"; "c"; "d"; "e" |]
let words = [| "x"; "y"; "z" |]

(* {1 Random documents} *)

let gen_doc_tree =
  let open QCheck.Gen in
  let label = oneofa labels in
  let word = oneofa words in
  let rec tree depth =
    let* lab = label in
    let* kids =
      if depth <= 0 then pure []
      else
        let* n = int_range 0 3 in
        list_repeat n (tree (depth - 1))
    in
    let* texts = frequency [ (2, pure []); (1, (fun st -> [ Xml_tree.text (word st) ])) ] in
    let* attrs =
      frequency
        [
          (3, pure []);
          (1, (fun st -> [ Xml_tree.attribute "k" (word st) ]));
        ]
    in
    pure (Xml_tree.element ~children:(attrs @ texts @ kids) lab)
  in
  QCheck.Gen.(int_range 1 3 >>= tree)

let arb_doc =
  QCheck.make gen_doc_tree ~print:(fun d -> Xml_tree.serialize d)

(* {1 Random patterns} *)

let gen_pattern =
  let open QCheck.Gen in
  let label = frequency [ (6, oneofa labels); (1, pure "*") ] in
  let axis = oneofl [ Pattern.Child; Pattern.Descendant ] in
  let annot =
    frequency
      [
        (3, pure (fun spec -> spec true false false));
        (1, pure (fun spec -> spec true true false));
        (1, pure (fun spec -> spec true false true));
        (1, pure (fun spec -> spec false false false));
      ]
  in
  let vpred = frequency [ (5, pure None); (1, map (fun w -> Some w) (oneofa words)) ] in
  let rec node depth =
    let* tag = label in
    let* ax = axis in
    let* mk = annot in
    let* vp = vpred in
    let* kids =
      if depth <= 0 then pure []
      else
        let* n = int_range 0 2 in
        list_repeat n (node (depth - 1))
    in
    pure
      (mk (fun id value content ->
           Pattern.n ~axis:ax ~id ~value ~content ?vpred:vp tag kids))
  in
  let* root = node 2 in
  pure (Pattern.compile ~name:"rand" root)

let arb_pattern = QCheck.make gen_pattern ~print:Pattern.to_string

(* {1 Random updates} *)

let gen_path =
  QCheck.Gen.(
    oneofl
      [
        "//a"; "//b"; "//c"; "//d"; "//a//b"; "//b//c"; "/a"; "/a/b"; "//a/b";
        "//c[d]"; "//a[b or c]"; "//b[c and d]"; "//e";
      ])

let gen_fragment =
  let open QCheck.Gen in
  let* tree = gen_doc_tree in
  let* extra = frequency [ (2, pure []); (1, map (fun t -> [ t ]) gen_doc_tree) ] in
  pure (tree :: extra)

let fragment_text frag =
  String.concat "" (List.map Xml_tree.serialize frag)

let gen_update =
  let open QCheck.Gen in
  frequency
    [
      ( 2,
        let* path = gen_path in
        let* frag = gen_fragment in
        pure
          (Update.insert_forest ~into:(Xpath.parse path) (fun _ ->
               List.map Xml_tree.copy frag)) );
      ( 1,
        let* path = gen_path in
        let* frag = gen_fragment in
        let* before = bool in
        pure
          (if before then Update.insert_before ~target:path (fragment_text frag)
           else Update.insert_after ~target:path (fragment_text frag)) );
      ( 2,
        let* path = gen_path in
        pure (Update.delete path) );
      ( 1,
        let* path = gen_path in
        let* text = frequency [ (3, map Fun.id (oneofa words)); (1, pure "") ] in
        pure (Update.replace_value ~target:path text) );
    ]

let arb_update = QCheck.make gen_update ~print:Update.to_string

(* {1 Oracles} *)

(* Reference view computation: naive embeddings with derivation counts,
   producing the same dump shape as [Mview.dump]-based comparison. *)
let reference_dump store pat =
  let embeddings = Embed.embeddings store pat in
  let stored = Pattern.stored_nodes pat in
  let tally = Hashtbl.create 64 in
  List.iter
    (fun binding ->
      let key =
        String.concat ""
          (List.map (fun i -> Dewey.encode binding.(i)) stored)
      in
      let prev = try Hashtbl.find tally key with Not_found -> 0 in
      Hashtbl.replace tally key (prev + 1))
    embeddings;
  List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) tally [])

let mview_count_dump mv =
  List.map (fun (key, count, _) -> (key, count)) (Mview.dump mv)
  |> List.sort compare

(* Fresh (store, mview) over a copy of [doc]. *)
let setup ?policy doc pat =
  let store = Store.of_document (Xml_tree.copy doc) in
  let mv = Mview.materialize ?policy store pat in
  (store, mv)

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)
