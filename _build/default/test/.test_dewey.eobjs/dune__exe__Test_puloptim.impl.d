test/test_puloptim.ml: Alcotest Deferred List Maint Mview Option Pattern Pul_optim Recompute Store Update Xml_parse Xml_tree Xpath
