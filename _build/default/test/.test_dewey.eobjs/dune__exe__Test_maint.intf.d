test/test_maint.mli:
