test/test_algebra.ml: Alcotest Array Dewey Id_region Label_dict List Option Path_ops Pattern Plan QCheck Store Struct_join Tuple_table Tutil Xml_parse
