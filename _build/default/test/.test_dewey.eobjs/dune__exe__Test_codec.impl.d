test/test_codec.ml: Alcotest Filename Maint Mview Mview_codec Pattern Recompute Store String Sys Xmark_gen Xmark_updates Xmark_views Xml_parse
