test/test_xpath.ml: Alcotest Array List Tutil Xml_parse Xml_tree Xpath
