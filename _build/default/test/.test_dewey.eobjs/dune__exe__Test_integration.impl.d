test/test_integration.ml: Alcotest Ivma List Maint Mview Printf Recompute Store Update Xmark_gen Xmark_updates Xmark_views
