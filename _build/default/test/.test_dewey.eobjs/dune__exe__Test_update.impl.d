test/test_update.ml: Alcotest Array Dewey Label_dict Lazy List Store String Update Xml_parse Xml_tree Xpath
