test/test_dewey.mli:
