test/test_xml.ml: Alcotest List Option String Tutil Xml_parse Xml_tree
