test/test_rewrite.ml: Alcotest Array List Mview Pattern Rewrite Store Xml_parse
