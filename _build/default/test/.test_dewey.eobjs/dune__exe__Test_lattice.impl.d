test/test_lattice.ml: Alcotest Array Lattice List Pattern QCheck Tutil
