test/test_pattern.ml: Alcotest Array Dewey Embed List Pattern Plan QCheck Store Tuple_table Tutil View_parser Xml_parse
