test/test_xmark.ml: Alcotest List Mview Store Update Xmark_gen Xmark_updates Xmark_views Xml_parse Xml_tree Xpath
