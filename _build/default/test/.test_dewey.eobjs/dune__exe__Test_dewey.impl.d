test/test_dewey.ml: Alcotest Array Dewey List QCheck String Tutil
