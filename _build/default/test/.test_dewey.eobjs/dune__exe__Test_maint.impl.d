test/test_maint.ml: Alcotest Array Delta Dewey Lattice List Maint Mview Pattern Plan QCheck Recompute Store String Tuple_table Tutil Update View_set Xml_parse Xml_tree
