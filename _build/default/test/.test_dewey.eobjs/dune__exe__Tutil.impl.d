test/tutil.ml: Array Dewey Embed Fun Hashtbl List Mview Pattern QCheck QCheck_alcotest Store String Update Xml_tree Xpath
