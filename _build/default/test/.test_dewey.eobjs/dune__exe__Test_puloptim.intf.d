test/test_puloptim.mli:
