test/test_advisor.ml: Advisor Alcotest Array Lattice List Maint Mview Pattern QCheck Recompute Store Tutil Xmark_gen Xmark_updates Xmark_views Xml_tree
