test/test_store.ml: Alcotest Array Dewey Label_dict List Store Xml_parse Xml_tree
