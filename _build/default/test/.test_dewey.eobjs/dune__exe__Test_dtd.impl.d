test/test_dtd.ml: Alcotest Dtd List Option Printf Xml_parse Xml_tree
