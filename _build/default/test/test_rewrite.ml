(* Tests for answering queries from materialized views. *)

let doc_text =
  {|<site><people>
      <person id="p0"><name>ann</name><homepage>h0</homepage></person>
      <person id="p1"><name>bob</name></person>
      <person id="p2"><name>ann</name><homepage>h2</homepage></person>
    </people></site>|}

let n = Pattern.n

(* View: all persons with id + name value stored. *)
let person_view =
  Pattern.compile ~name:"persons"
    (n ~axis:Pattern.Child "site"
       [
         n ~axis:Pattern.Child "people"
           [
             n ~axis:Pattern.Child ~id:true "person"
               [ n ~axis:Pattern.Child ~id:true ~value:true "name" [] ];
           ];
       ])

(* Second view: persons (ids) with homepages. *)
let homepage_view =
  Pattern.compile ~name:"homepages"
    (n ~axis:Pattern.Child "site"
       [
         n ~axis:Pattern.Child "people"
           [
             n ~axis:Pattern.Child ~id:true "person"
               [ n ~axis:Pattern.Child ~id:true ~value:true "homepage" [] ];
           ];
       ])

let setup () =
  let store = Store.of_document (Xml_parse.document doc_text) in
  (store, Mview.materialize store person_view, Mview.materialize store homepage_view)

let test_exact () =
  let _, mv, _ = setup () in
  match Rewrite.answer mv person_view with
  | None -> Alcotest.fail "view should answer itself"
  | Some rows -> Alcotest.(check int) "three persons" 3 (List.length rows)

let test_projection () =
  let _, mv, _ = setup () in
  (* Same shape, but only the name value is asked for. *)
  let query =
    Pattern.compile ~name:"names-only"
      (n ~axis:Pattern.Child "site"
         [
           n ~axis:Pattern.Child "people"
             [
               n ~axis:Pattern.Child "person"
                 [ n ~axis:Pattern.Child ~value:true "name" [] ];
             ];
         ])
  in
  match Rewrite.answer mv query with
  | None -> Alcotest.fail "projected query should be answerable"
  | Some rows ->
    Alcotest.(check int) "three rows" 3 (List.length rows);
    let cells = (List.hd rows).Rewrite.cells in
    Alcotest.(check int) "one stored node" 1 (Array.length cells)

let test_residual_filter () =
  let _, mv, _ = setup () in
  (* Extra predicate on the stored value: name = 'ann'. *)
  let query =
    Pattern.compile ~name:"anns"
      (n ~axis:Pattern.Child "site"
         [
           n ~axis:Pattern.Child "people"
             [
               n ~axis:Pattern.Child ~id:true "person"
                 [ n ~axis:Pattern.Child ~id:true ~value:true ~vpred:"ann" "name" [] ];
             ];
         ])
  in
  match Rewrite.answer mv query with
  | None -> Alcotest.fail "filterable query should be answerable"
  | Some rows -> Alcotest.(check int) "two anns" 2 (List.length rows)

let test_not_answerable () =
  let _, mv, _ = setup () in
  (* Asking for content the view does not store. *)
  let query =
    Pattern.compile ~name:"contents"
      (n ~axis:Pattern.Child "site"
         [
           n ~axis:Pattern.Child "people"
             [
               n ~axis:Pattern.Child ~content:true "person"
                 [ n ~axis:Pattern.Child "name" [] ];
             ];
         ])
  in
  Alcotest.(check bool) "content not stored" true (Rewrite.answer mv query = None);
  (* Different shape. *)
  let other = Pattern.compile ~name:"other" (n "person" ~id:true []) in
  Alcotest.(check bool) "different shape" true (Rewrite.answer mv other = None);
  (* The view is more selective than the query. *)
  let narrow =
    Pattern.compile ~name:"narrow"
      (n ~axis:Pattern.Child "site"
         [
           n ~axis:Pattern.Child "people"
             [
               n ~axis:Pattern.Child ~id:true "person"
                 [ n ~axis:Pattern.Child ~id:true ~value:true ~vpred:"x" "name" [] ];
             ];
         ])
  in
  let store = Store.of_document (Xml_parse.document doc_text) in
  let mv_narrow = Mview.materialize store narrow in
  ignore narrow;
  Alcotest.(check bool) "narrow view cannot answer broad query" true
    (Rewrite.answer mv_narrow person_view = None)

let test_id_join () =
  let _, persons, homepages = setup () in
  (* Stitch: persons with their homepages, joined on the person ID
     (pattern node 2 in both views). *)
  let rows = Rewrite.id_join persons homepages ~on:(2, 2) in
  Alcotest.(check int) "two persons have homepages" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int) "cells from both views" 4 (Array.length r.Rewrite.cells);
      Alcotest.(check int) "count product" 1 r.Rewrite.count)
    rows

let test_structural_join () =
  let _, persons, homepages = setup () in
  (* The name node (position 3 of person_view) and the homepage node
     (position 3 of homepage_view) are siblings under the same person:
     join homepage-nodes below person-nodes. *)
  let rows =
    Rewrite.structural_join persons homepages ~ancestor:2 ~descendant:3
      ~axis:Pattern.Child
  in
  Alcotest.(check int) "homepages under persons" 2 (List.length rows)

let test_join_errors () =
  let _, persons, homepages = setup () in
  Alcotest.(check bool) "unstored node rejected" true
    (match Rewrite.id_join persons homepages ~on:(0, 2) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "rewrite"
    [
      ( "single view",
        [
          Alcotest.test_case "exact" `Quick test_exact;
          Alcotest.test_case "projection" `Quick test_projection;
          Alcotest.test_case "residual filter" `Quick test_residual_filter;
          Alcotest.test_case "not answerable" `Quick test_not_answerable;
        ] );
      ( "view joins",
        [
          Alcotest.test_case "id join" `Quick test_id_join;
          Alcotest.test_case "structural join" `Quick test_structural_join;
          Alcotest.test_case "errors" `Quick test_join_errors;
        ] );
    ]
