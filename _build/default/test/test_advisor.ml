(* Tests for the cost-based snowcap advisor and the Chosen policy. *)

let doc () = Xmark_gen.document ~seed:21 ~target_kb:80

let test_choose_valid () =
  let store = Store.of_document (doc ()) in
  let pat = Xmark_views.q4 in
  let chosen = Advisor.choose store pat ~profile:Advisor.uniform in
  let all = Lattice.snowcaps pat in
  List.iter
    (fun s ->
      Alcotest.(check bool) "is a snowcap" true (List.exists (Lattice.equal s) all);
      Alcotest.(check bool) "not a leaf duplicate" true (Lattice.size s > 1);
      Alcotest.(check bool) "proper" true (Lattice.size s < Pattern.node_count pat))
    chosen;
  Alcotest.(check bool) "bounded by lattice levels" true
    (List.length chosen <= Pattern.node_count pat - 1)

let test_profile_sensitivity () =
  let store = Store.of_document (doc ()) in
  let pat = Xmark_views.q1 in
  (* If nothing ever changes, no snowcap is worth keeping. *)
  let dead_profile =
    List.map (fun tag -> (tag, 0.)) (Array.to_list pat.Pattern.tags)
  in
  Alcotest.(check int) "no updates, no snowcaps" 0
    (List.length (Advisor.choose store pat ~profile:dead_profile));
  Alcotest.(check bool) "degenerates to Leaves" true
    (Advisor.policy store pat ~profile:dead_profile = Mview.Leaves);
  (* Frequent leaf-level updates make ancestor snowcaps attractive. *)
  let name_heavy = [ ("name", 100.); ("site", 0.); ("people", 0.) ] in
  let chosen = Advisor.choose store pat ~profile:name_heavy in
  Alcotest.(check bool) "some snowcap chosen" true (chosen <> []);
  (* The best snowcap excludes the hot node (terms fire for Δname). *)
  let name_idx = 4 in
  let best = List.hd chosen in
  Alcotest.(check bool) "hot leaf outside the R-part" false (Lattice.mem best name_idx)

let test_max_mats () =
  let store = Store.of_document (doc ()) in
  let pat = Xmark_views.q4 in
  let profile = [ ("increase", 50.); ("bidder", 10.) ] in
  let chosen = Advisor.choose ~max_mats:2 store pat ~profile in
  Alcotest.(check bool) "at most two" true (List.length chosen <= 2)

let test_chosen_policy_maintains () =
  let pat = Xmark_views.q1 in
  let run policy stmt =
    let store = Store.of_document (doc ()) in
    let mv = Mview.materialize ~policy store pat in
    let r = Maint.propagate mv stmt in
    ignore r;
    mv
  in
  List.iter
    (fun stmt ->
      let store0 = Store.of_document (doc ()) in
      let policy = Advisor.policy store0 pat ~profile:[ ("name", 10.) ] in
      let mv = run policy stmt in
      let store2 = Store.of_document (doc ()) in
      let oracle, _ = Recompute.recompute_after store2 stmt ~pat in
      match Recompute.diff mv oracle with
      | None -> ()
      | Some d -> Alcotest.fail ("Chosen policy diverged: " ^ d))
    [
      Xmark_updates.insert (Xmark_updates.find "X1_L");
      Xmark_updates.delete (Xmark_updates.find "A6_A");
    ]

let test_chosen_rejects_non_snowcap () =
  let store = Store.of_document (doc ()) in
  let pat = Xmark_views.q1 in
  (* {site, person} without people is not parent-closed. *)
  let bad = [| true; false; true; false; false |] in
  Alcotest.(check bool) "invalid set rejected" true
    (match Mview.materialize ~policy:(Mview.Chosen [ bad ]) store pat with
    | exception Invalid_argument _ -> true
    | _ -> false)

let golden_chosen =
  Tutil.qtest ~count:150 "maintain = recompute (advisor-chosen policy)"
    (QCheck.triple Tutil.arb_doc Tutil.arb_pattern Tutil.arb_update)
    (fun (doc, pat, stmt) ->
      let store = Store.of_document (Xml_tree.copy doc) in
      let policy = Advisor.policy store pat ~profile:Advisor.uniform in
      let mv = Mview.materialize ~policy store pat in
      let _ = Maint.propagate mv stmt in
      let store2 = Store.of_document (Xml_tree.copy doc) in
      let mv2, _ = Recompute.recompute_after store2 stmt ~pat in
      match Recompute.diff mv mv2 with
      | None -> true
      | Some d -> QCheck.Test.fail_reportf "diverged: %s" d)

let () =
  Alcotest.run "advisor"
    [
      ( "choice",
        [
          Alcotest.test_case "valid snowcaps" `Quick test_choose_valid;
          Alcotest.test_case "profile sensitivity" `Quick test_profile_sensitivity;
          Alcotest.test_case "max_mats" `Quick test_max_mats;
        ] );
      ( "chosen policy",
        [
          Alcotest.test_case "maintains correctly" `Quick test_chosen_policy_maintains;
          Alcotest.test_case "rejects non-snowcaps" `Quick
            test_chosen_rejects_non_snowcap;
          golden_chosen;
        ] );
    ]
