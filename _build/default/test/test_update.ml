(* Tests for the update statements, PUL construction and phased
   application. *)

let doc_text = {|<a><c><b>x</b><b/></c><f><c><b>y</b></c><b/></f></a>|}

let setup () = Store.of_document (Xml_parse.document doc_text)

let test_parse () =
  (match Update.parse "delete //c//b" with
  | Update.Delete p -> Alcotest.(check string) "path" "//c//b" (Xpath.to_string p)
  | Update.Insert _ | Update.Replace_value _ -> Alcotest.fail "expected a deletion");
  (match Update.parse "insert into /a/f <b>new</b><c/>" with
  | Update.Insert { target; forest; _ } ->
    Alcotest.(check string) "target" "/a/f" (Xpath.to_string target);
    Alcotest.(check int) "two trees" 2
      (List.length (forest (Xml_tree.element "dummy")))
  | Update.Delete _ | Update.Replace_value _ -> Alcotest.fail "expected an insertion");
  (match Update.parse "for $p in /site/people/person insert <name>x</name> into $p" with
  | Update.Insert { target; forest; _ } ->
    Alcotest.(check string) "for-form target" "/site/people/person"
      (Xpath.to_string target);
    Alcotest.(check int) "for-form fragment" 1
      (List.length (forest (Xml_tree.element "dummy")))
  | Update.Delete _ | Update.Replace_value _ -> Alcotest.fail "expected an insertion");
  Alcotest.(check bool) "garbage rejected" true
    (match Update.parse "replace //a" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "missing fragment rejected" true
    (match Update.parse "insert into //a" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_to_string () =
  Alcotest.(check string) "delete" "delete //c//b"
    (Update.to_string (Update.delete "//c//b"));
  Alcotest.(check bool) "insert mentions target" true
    (let s = Update.to_string (Update.insert ~into:"//f" "<x/>") in
     String.length s > 0 && String.sub s 0 11 = "insert into")

let test_targets () =
  let store = setup () in
  let u = Update.delete "//c//b" in
  Alcotest.(check int) "three targets" 3 (List.length (Update.targets store u))

let test_insert_fresh_copies () =
  (* Each target receives its own copy of the fragment. *)
  let store = setup () in
  let u = Update.insert ~into:"//c" "<b>fresh</b>" in
  let targets = Update.targets store u in
  let app = Update.apply_insert store u ~targets in
  let roots = List.concat_map snd app.Update.pairs in
  Alcotest.(check int) "two copies" 2 (List.length roots);
  let serials = List.map (fun n -> n.Xml_tree.serial) roots in
  Alcotest.(check bool) "distinct nodes" true
    (List.length (List.sort_uniq compare serials) = 2);
  (* Inserted roots got IDs below their targets. *)
  List.iter
    (fun (tid, forest) ->
      List.iter
        (fun root ->
          Alcotest.(check bool) "child of target" true
            (Dewey.is_parent tid (Store.id_of store root)))
        forest)
    app.Update.pairs

let test_insert_forest_per_target () =
  (* The general form: the inserted forest may depend on the target. *)
  let store = setup () in
  let u =
    Update.insert_forest ~into:(Xpath.parse "//c") (fun target ->
        [ Xml_tree.element ~children:[ Xml_tree.text (Xml_tree.string_value target) ] "echo" ])
  in
  let targets = Update.targets store u in
  let app = Update.apply_insert store u ~targets in
  let values =
    List.concat_map
      (fun (_, forest) -> List.map Xml_tree.string_value forest)
      app.Update.pairs
  in
  Alcotest.(check (list string)) "per-target content" [ "x"; "y" ] values

let test_delete_nested_targets () =
  (* Deleting //c and //c//b at once: the nested b-targets are covered by
     their ancestor and must not be double-collected. *)
  let store = setup () in
  let targets =
    Xpath.eval (Store.root store) (Xpath.parse "//c")
    @ Xpath.eval (Store.root store) (Xpath.parse "//c//b")
  in
  let app = Update.apply_delete store ~targets in
  Alcotest.(check int) "two roots" 2 (List.length app.Update.roots);
  let deleted = Lazy.force app.Update.deleted in
  let serials =
    List.map (fun (_, n) -> n.Xml_tree.serial) deleted |> List.sort_uniq compare
  in
  Alcotest.(check int) "each node once" (List.length deleted) (List.length serials)

let test_delete_snapshot_resolvable () =
  (* IDs inside detached subtrees must resolve for Δ⁻ extraction until
     the store commits. *)
  let store = setup () in
  let targets = Xpath.eval (Store.root store) (Xpath.parse "//f") in
  let app = Update.apply_delete store ~targets in
  let deleted = Lazy.force app.Update.deleted in
  Alcotest.(check int) "f subtree has 5 nodes" 5 (List.length deleted);
  List.iter
    (fun (id, node) ->
      Alcotest.(check string) "id labels match node" (Xml_tree.label node)
        (Label_dict.label (Store.dict store) (Dewey.label id)))
    deleted

let test_sibling_insertions () =
  let store = setup () in
  (* Insert a marker before every b under c, and another after them. *)
  let u1 = Update.insert_before ~target:"//c/b" "<m1/>" in
  let t1 = Update.targets store u1 in
  let app1 = Update.apply_insert store u1 ~targets:t1 in
  (* Content-change pairs point at the parents (the c nodes). *)
  List.iter
    (fun (pid, forest) ->
      Alcotest.(check string) "pair is the parent" "c"
        (Label_dict.label (Store.dict store) (Dewey.label pid));
      List.iter
        (fun root ->
          let id = Store.id_of store root in
          Alcotest.(check bool) "new node is a child of the pair" true
            (Dewey.is_parent pid id))
        forest)
    app1.Update.pairs;
  let u2 = Update.insert_after ~target:"//c/b" "<m2/>" in
  let t2 = Update.targets store u2 in
  let _ = Update.apply_insert store u2 ~targets:t2 in
  Store.commit store;
  (* Sibling order in the tree and in ID space. *)
  let first_c = List.hd (Xpath.eval (Store.root store) (Xpath.parse "/a/c")) in
  let labels = List.map Xml_tree.label first_c.Xml_tree.children in
  Alcotest.(check (list string)) "document order"
    [ "m1"; "b"; "m2"; "m1"; "b"; "m2" ] labels;
  let ids = List.map (Store.id_of store) first_c.Xml_tree.children in
  let rec sorted = function
    | a :: (b :: _ as rest) -> Dewey.compare a b < 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "IDs follow document order without relabeling" true
    (sorted ids);
  (* The relation view agrees. *)
  Alcotest.(check int) "m1 relation" 3 (Array.length (Store.relation store "m1"))

let test_sibling_insert_at_root_is_noop () =
  let store = setup () in
  let u = Update.insert_before ~target:"/a" "<x/>" in
  let targets = Update.targets store u in
  let app = Update.apply_insert store u ~targets in
  Alcotest.(check int) "no pairs" 0 (List.length app.Update.pairs)

let test_apply_insert_guard () =
  let store = setup () in
  Alcotest.check_raises "delete is not an insertion"
    (Invalid_argument "Update.apply_insert: not an insertion") (fun () ->
      ignore (Update.apply_insert store (Update.delete "//b") ~targets:[]))

let () =
  Alcotest.run "update"
    [
      ( "statements",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "targets" `Quick test_targets;
        ] );
      ( "application",
        [
          Alcotest.test_case "fresh copies per target" `Quick test_insert_fresh_copies;
          Alcotest.test_case "forest per target" `Quick test_insert_forest_per_target;
          Alcotest.test_case "nested delete targets" `Quick test_delete_nested_targets;
          Alcotest.test_case "snapshot resolvable" `Quick
            test_delete_snapshot_resolvable;
          Alcotest.test_case "sibling insertions" `Quick test_sibling_insertions;
          Alcotest.test_case "sibling insert at root" `Quick
            test_sibling_insert_at_root_is_noop;
          Alcotest.test_case "guards" `Quick test_apply_insert_guard;
        ] );
    ]
