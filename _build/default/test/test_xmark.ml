(* Tests for the XMark-style generator and the benchmark views/updates. *)

let test_determinism () =
  let d1 = Xmark_gen.document ~seed:7 ~target_kb:50 in
  let d2 = Xmark_gen.document ~seed:7 ~target_kb:50 in
  Alcotest.(check string) "same seed, same document" (Xml_tree.serialize d1)
    (Xml_tree.serialize d2);
  let d3 = Xmark_gen.document ~seed:8 ~target_kb:50 in
  Alcotest.(check bool) "different seed, different document" true
    (Xml_tree.serialize d1 <> Xml_tree.serialize d3)

let test_size_scaling () =
  let bytes kb = Xmark_gen.actual_bytes (Xmark_gen.document ~seed:1 ~target_kb:kb) in
  let b50 = bytes 50 and b200 = bytes 200 in
  Alcotest.(check bool) "bigger target, bigger document" true (b200 > b50);
  (* Within a factor 2 of the target. *)
  Alcotest.(check bool) "roughly calibrated" true
    (b200 > 200 * 1024 / 2 && b200 < 200 * 1024 * 2)

let test_wellformed () =
  let d = Xmark_gen.document ~seed:3 ~target_kb:80 in
  let s = Xml_tree.serialize d in
  let d' = Xml_parse.document s in
  Alcotest.(check string) "parse-serialize roundtrip" s (Xml_tree.serialize d')

let test_schema_shape () =
  let d = Xmark_gen.document ~seed:5 ~target_kb:80 in
  let count path = List.length (Xpath.eval d (Xpath.parse path)) in
  Alcotest.(check bool) "persons" true (count "/site/people/person" >= 14);
  Alcotest.(check bool) "items in regions" true (count "/site/regions/*/item" >= 6);
  Alcotest.(check bool) "open auctions" true (count "/site/open_auctions/open_auction" >= 4);
  Alcotest.(check bool) "bidders have increases" true
    (count "//bidder/increase" = count "//bidder");
  Alcotest.(check bool) "closed auctions" true (count "//closed_auction" >= 2);
  Alcotest.(check bool) "person ids" true
    (count "/site/people/person/@id" = count "/site/people/person")

let test_views_nonempty () =
  let d = Xmark_gen.document ~seed:11 ~target_kb:150 in
  let store = Store.of_document d in
  List.iter
    (fun (name, pat) ->
      let mv = Mview.materialize ~policy:Mview.Leaves store pat in
      Alcotest.(check bool) (name ^ " non-empty") true (Mview.cardinality mv > 0))
    Xmark_views.all

let test_view_lookup () =
  Alcotest.(check bool) "case-insensitive" true (Xmark_views.find "q1" == Xmark_views.q1);
  Alcotest.(check bool) "unknown raises" true
    (match Xmark_views.find "Q99" with exception Not_found -> true | _ -> false);
  Alcotest.(check int) "seven views" 7 (List.length Xmark_views.all);
  Alcotest.(check int) "five Q1 annotation variants" 5
    (List.length Xmark_views.q1_annotation_variants)

let test_updates_parse_and_hit () =
  let d = Xmark_gen.document ~seed:13 ~target_kb:150 in
  let store = Store.of_document d in
  List.iter
    (fun u ->
      let stmt = Xmark_updates.insert u in
      let targets = Update.targets store stmt in
      (* B1_O transcribes an appendix path that cannot match (items are
         not direct children of regions); every other update has
         targets. *)
      if u.Xmark_updates.name <> "B1_O" then
        Alcotest.(check bool)
          (u.Xmark_updates.name ^ " has targets")
          true (targets <> []))
    Xmark_updates.all

let test_pairs_wellformed () =
  Alcotest.(check int) "35 figure-20 pairs" 35 (List.length Xmark_updates.figure20_pairs);
  List.iter
    (fun (v, u) ->
      ignore (Xmark_views.find v);
      ignore (Xmark_updates.find u))
    Xmark_updates.figure20_pairs

let test_q3_predicate_hits () =
  (* The generator must produce increases with the Q3 literal "4.50". *)
  let d = Xmark_gen.document ~seed:17 ~target_kb:150 in
  let hits = Xpath.eval d (Xpath.parse "//increase[.='4.50']") in
  Alcotest.(check bool) "some 4.50 increases" true (hits <> [])

let () =
  Alcotest.run "xmark"
    [
      ( "generator",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "size scaling" `Quick test_size_scaling;
          Alcotest.test_case "well-formedness" `Quick test_wellformed;
          Alcotest.test_case "schema shape" `Quick test_schema_shape;
          Alcotest.test_case "Q3 predicate hits" `Quick test_q3_predicate_hits;
        ] );
      ( "workload",
        [
          Alcotest.test_case "views non-empty" `Quick test_views_nonempty;
          Alcotest.test_case "view lookup" `Quick test_view_lookup;
          Alcotest.test_case "updates hit targets" `Quick test_updates_parse_and_hit;
          Alcotest.test_case "figure pairs" `Quick test_pairs_wellformed;
        ] );
    ]
