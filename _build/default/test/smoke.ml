(* Quick end-to-end exercise used during development; kept as a sanity
   executable (not part of the alcotest suites). *)

let doc_text =
  {|<a><c><b><d>x</d></b><b/></c><f><c><b>y</b></c><b/></f></a>|}

let () =
  let root = Xml_parse.document doc_text in
  let store = Store.of_document root in
  Printf.printf "nodes: %d\n" (Store.node_count store);
  (* XPath *)
  let hits = Xpath.eval root (Xpath.parse "//c//b") in
  Printf.printf "//c//b hits: %d\n" (List.length hits);
  (* Pattern: //a{id}[//c]//b{id} *)
  let pat =
    Pattern.compile ~name:"v"
      (Pattern.n "a" ~id:true [ Pattern.n "c" []; Pattern.n "b" ~id:true [] ])
  in
  let emb = Embed.embeddings store pat in
  let alg = Plan.eval store pat in
  Printf.printf "embeddings: %d algebraic: %d\n" (List.length emb)
    (Tuple_table.length alg);
  let mv = Mview.materialize store pat in
  Printf.printf "view tuples: %d total count: %d\n" (Mview.cardinality mv)
    (Mview.total_count mv);
  (* Insert under //f a subtree with a c/b chain. *)
  let u = Update.insert ~into:"//f" "<c><b>new</b></c>" in
  let r = Maint.propagate mv u in
  Printf.printf "insert: terms %d/%d added %d modified %d\n" r.Maint.terms_surviving
    r.Maint.terms_developed r.Maint.embeddings_added r.Maint.tuples_modified;
  (* Compare with recomputation on a fresh copy of the original document. *)
  let root2 = Xml_parse.document doc_text in
  let store2 = Store.of_document root2 in
  let mv2, _ = Recompute.recompute_after store2 (Update.insert ~into:"//f" "<c><b>new</b></c>") ~pat in
  (match Recompute.diff mv mv2 with
  | None -> print_endline "insert: maintained == recomputed"
  | Some d -> Printf.printf "MISMATCH: %s\n" d);
  (* Delete //c//b and compare again. *)
  let del = Update.delete "//c//b" in
  let rd = Maint.propagate mv del in
  Printf.printf "delete: terms %d/%d removed %d modified %d\n"
    rd.Maint.terms_surviving rd.Maint.terms_developed rd.Maint.embeddings_removed
    rd.Maint.tuples_modified;
  let root3 = Xml_parse.document doc_text in
  let store3 = Store.of_document root3 in
  let _ = Recompute.recompute_after store3 (Update.insert ~into:"//f" "<c><b>new</b></c>") ~pat in
  let mv3, _ = Recompute.recompute_after store3 del ~pat in
  (match Recompute.diff mv mv3 with
  | None -> print_endline "delete: maintained == recomputed"
  | Some d -> Printf.printf "MISMATCH: %s\n" d)

(* XMark pipeline sanity: generate, materialize every view, run one
   insert+delete pair per view and compare against recomputation. *)
let () =
  print_endline "--- xmark sanity ---";
  let doc () = Xmark_gen.document ~seed:42 ~target_kb:60 in
  Printf.printf "doc bytes: %d\n" (Xmark_gen.actual_bytes (doc ()));
  List.iter
    (fun (vname, upds) ->
      let uname = List.hd upds in
      let u = Xmark_updates.find uname in
      let pat = Xmark_views.find vname in
      List.iter
        (fun (tag, stmt) ->
          let store = Store.of_document (doc ()) in
          let mv = Mview.materialize store pat in
          let before = Mview.cardinality mv in
          let r = Maint.propagate mv stmt in
          let store2 = Store.of_document (doc ()) in
          let mv2, _ = Recompute.recompute_after store2 stmt ~pat in
          let verdict =
            match Recompute.diff mv mv2 with
            | None -> "ok"
            | Some d -> "MISMATCH " ^ d
          in
          Printf.printf
            "%-4s %-6s %-6s tuples %4d -> %4d (added %d removed %d mod %d terms %d/%d) %s\n"
            vname uname tag before (Mview.cardinality mv) r.Maint.embeddings_added
            r.Maint.embeddings_removed r.Maint.tuples_modified r.Maint.terms_surviving
            r.Maint.terms_developed verdict)
        [ ("ins", Xmark_updates.insert u); ("del", Xmark_updates.delete u) ])
    Xmark_updates.breakdown_pairs
