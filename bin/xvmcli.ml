(* xvmcli — inspect documents, evaluate paths, materialize views and run
   incremental maintenance from the command line. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_store path = Store.of_document (Xml_parse.document (read_file path))

let resolve_view ~name ~query =
  match (name, query) with
  | Some n, None -> Xmark_views.find n
  | None, Some q -> View_parser.parse ~name:"cli" q
  | _ -> invalid_arg "give exactly one of --name or --query"

(* {1 --metrics / --boxed}

   Shared by every subcommand. [--metrics] enables the process-wide
   [Obs] registry for the whole run and dumps it afterwards — flat
   [key=value] lines by default, or a single JSON line with
   [--metrics=json] (always the last line of stdout, so pipelines can
   [tail -n 1] it). [--boxed] is the columnar-layout escape hatch:
   tuple tables are built row-major over boxed identifiers instead of
   as arena-handle columns, with identical results. *)

let metrics_fmt_term =
  let fmt = Arg.enum [ ("flat", `Flat); ("json", `Json) ] in
  Arg.(
    value
    & opt ~vopt:(Some `Flat) (some fmt) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Collect operator-level metrics during the run and print the \
           registry afterwards; $(docv) is $(b,flat) (default) or $(b,json).")

let boxed_term =
  Arg.(
    value & flag
    & info [ "boxed" ]
        ~doc:
          "Build tuple tables in the boxed row-major layout instead of the \
           default columnar arena-handle layout (same effect as setting \
           XVM_BOXED_TABLES=1); results are identical, only the physical \
           representation changes.")

let metrics_term =
  Term.(const (fun metrics boxed -> (metrics, boxed)) $ metrics_fmt_term $ boxed_term)

let with_metrics (metrics, boxed) f =
  if boxed then Tuple_table.set_columnar false;
  match metrics with
  | None -> f ()
  | Some fmt ->
    Obs.set_enabled true;
    let dump () =
      match fmt with
      | `Json -> print_endline (Obs.to_json ())
      | `Flat -> print_string (Obs.dump_kv ())
    in
    Fun.protect ~finally:dump f

(* {1 gen} *)

let gen_cmd =
  let run metrics size_kb seed output =
    with_metrics metrics @@ fun () ->
    let doc = Xmark_gen.document ~seed ~target_kb:size_kb in
    let text = Xml_tree.serialize ~decl:true doc in
    (match output with
    | None -> print_string text
    | Some path ->
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc);
    Printf.eprintf "generated %d bytes\n" (String.length text)
  in
  let size =
    Arg.(value & opt int 100 & info [ "size-kb" ] ~doc:"Approximate size in KB.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate an XMark-style auction document.")
    Term.(const run $ metrics_term $ size $ seed $ output)

(* Parse→serialize→parse the raw document text and verify the second
   pass is the identity, reporting where ingestion would lose data. *)
let check_roundtrip_text text =
  let t = Xml_parse.document text in
  let s = Xml_tree.serialize t in
  let t' = Xml_parse.document s in
  if not (Xml_tree.equal t t') then begin
    prerr_endline "roundtrip: FAILED (reparse differs structurally)";
    exit 1
  end;
  let s' = Xml_tree.serialize t' in
  if s' <> s then begin
    prerr_endline "roundtrip: FAILED (serialization is not a fixpoint)";
    exit 1
  end;
  Printf.printf "roundtrip: ok (%d bytes in, %d canonical bytes, %d nodes)\n"
    (String.length text) (String.length s) (Xml_tree.size t)

(* {1 eval} *)

let eval_cmd =
  let run metrics doc path limit check_roundtrip =
    with_metrics metrics @@ fun () ->
    if check_roundtrip then check_roundtrip_text (read_file doc);
    let store = load_store doc in
    let hits = Xpath.eval (Store.root store) (Xpath.parse path) in
    Printf.printf "%d nodes match %s\n" (List.length hits) path;
    List.iteri
      (fun i n ->
        if i < limit then
          Printf.printf "  %s  %s\n"
            (Dewey.to_string ~dict:(Store.dict store) (Store.id_of store n))
            (let s = Xml_tree.serialize n in
             if String.length s > 100 then String.sub s 0 100 ^ "…" else s))
      hits
  in
  let doc = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC") in
  let path = Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH") in
  let limit =
    Arg.(value & opt int 10 & info [ "limit" ] ~doc:"Max nodes to print.")
  in
  let check_roundtrip =
    Arg.(
      value & flag
      & info [ "check-roundtrip" ]
          ~doc:
            "First verify that parse/serialize round-trips the document \
             without data loss (exit 1 otherwise).")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate an XPath over a document.")
    Term.(const run $ metrics_term $ doc $ path $ limit $ check_roundtrip)

(* {1 view} *)

let print_view ~limit store mv =
  Printf.printf "%d tuples (%d embeddings)\n" (Mview.cardinality mv)
    (Mview.total_count mv);
  let dict = Store.dict store in
  List.iteri
    (fun i (_, count, cells) ->
      if i < limit then begin
        let cell (c : Mview.cell) =
          let id = Dewey.to_string ~dict c.Mview.cell_id in
          match (c.Mview.cell_value, c.Mview.cell_content) with
          | Some v, _ -> Printf.sprintf "%s=%S" id v
          | None, Some ct ->
            Printf.sprintf "%s cont=%s" id
              (if String.length ct > 40 then String.sub ct 0 40 ^ "…" else ct)
          | None, None -> id
        in
        Printf.printf "  [%d] %s\n" count
          (String.concat " " (Array.to_list (Array.map cell cells)))
      end)
    (Mview.dump mv)

let view_cmd =
  let run metrics doc vname vquery limit save load =
    with_metrics metrics @@ fun () ->
    let store = load_store doc in
    let pat = resolve_view ~name:vname ~query:vquery in
    Printf.printf "view: %s\n" (Pattern.to_string pat);
    let mv, t =
      Timing.duration (fun () ->
          match load with
          | Some path -> Mview_codec.load_from_file store pat path
          | None -> Mview.materialize store pat)
    in
    Printf.printf "%s in %.1f ms; "
      (match load with Some _ -> "loaded" | None -> "materialized")
      (t *. 1000.);
    print_view ~limit store mv;
    match save with
    | Some path ->
      Mview_codec.save_to_file mv path;
      Printf.printf "saved to %s\n" path
    | None -> ()
  in
  let doc = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC") in
  let vname =
    Arg.(value & opt (some string) None & info [ "name" ] ~doc:"Built-in view (Q1…Q17).")
  in
  let vquery =
    Arg.(value & opt (some string) None & info [ "query" ] ~doc:"View statement.")
  in
  let limit = Arg.(value & opt int 10 & info [ "limit" ] ~doc:"Max tuples to print.") in
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~doc:"Persist the view to a file.")
  in
  let load =
    Arg.(value & opt (some file) None & info [ "load" ] ~doc:"Load the view from a file instead of evaluating.")
  in
  Cmd.v
    (Cmd.info "view" ~doc:"Materialize (or load) a view over a document.")
    Term.(const run $ metrics_term $ doc $ vname $ vquery $ limit $ save $ load)

(* {1 maintain} *)

let maintain_cmd =
  let run metrics doc vnames vqueries jobs updates check =
    with_metrics metrics @@ fun () ->
    let store = load_store doc in
    let pats =
      List.map Xmark_views.find vnames
      @ List.mapi
          (fun i q -> View_parser.parse ~name:(Printf.sprintf "cli%d" (i + 1)) q)
          vqueries
    in
    if pats = [] then invalid_arg "give at least one --name or --query";
    let set = View_set.create store in
    let mvs = List.map (fun pat -> View_set.add set pat) pats in
    List.iter
      (fun mv ->
        Printf.printf "view %s: %d tuples\n"
          (Pattern.to_string mv.Mview.pat)
          (Mview.cardinality mv))
      mvs;
    List.iter
      (fun text ->
        let stmt = Update.parse text in
        Printf.printf "%s\n" (Update.to_string stmt);
        let reports = View_set.update ~jobs set stmt in
        List.iter
          (fun (mv, r) ->
            let b = r.Maint.timing in
            Printf.printf
              "  %-6s +%d -%d tuples, %d refreshed, %d/%d terms%s%s\n\
              \         find %.1f ms | delta %.1f ms | expr %.1f ms | exec %.1f ms | aux %.1f ms\n"
              mv.Mview.pat.Pattern.name r.Maint.embeddings_added
              r.Maint.embeddings_removed r.Maint.tuples_modified
              r.Maint.terms_surviving r.Maint.terms_developed
              (if r.Maint.fallback_recompute then " [fallback recompute]" else "")
              (if r.Maint.skipped_irrelevant then " [skipped: irrelevant]" else "")
              (b.Timing.find_target *. 1000.) (b.Timing.compute_delta *. 1000.)
              (b.Timing.get_expression *. 1000.) (b.Timing.execute *. 1000.)
              (b.Timing.update_aux *. 1000.))
          reports)
      updates;
    List.iter
      (fun mv ->
        Printf.printf "final view %s: %d tuples\n" mv.Mview.pat.Pattern.name
          (Mview.cardinality mv))
      mvs;
    if check then
      List.iter
        (fun mv ->
          let fresh =
            Mview.materialize ~policy:Mview.Leaves store mv.Mview.pat
          in
          Printf.printf "view %s consistent with recomputation: %b\n"
            mv.Mview.pat.Pattern.name
            (Recompute.equal mv fresh))
        mvs
  in
  let doc = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC") in
  let vnames =
    Arg.(
      value & opt_all string []
      & info [ "name" ] ~doc:"Built-in view (Q1…Q17); repeatable.")
  in
  let vqueries =
    Arg.(
      value & opt_all string [] & info [ "query" ] ~doc:"View statement; repeatable.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ]
          ~doc:
            "Propagate clean views across this many OCaml domains (results \
             are identical to --jobs 1).")
  in
  let updates =
    Arg.(
      value & opt_all string []
      & info [ "u"; "update" ]
          ~doc:"Update statement: 'delete PATH' or 'insert into PATH FRAGMENT'.")
  in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Verify against recomputation.")
  in
  Cmd.v
    (Cmd.info "maintain"
       ~doc:
         "Apply updates and maintain one or more views incrementally (batch \
          engine: shared update-region index, relevance skipping, optional \
          domain-parallel propagation).")
    Term.(
      const run $ metrics_term $ doc $ vnames $ vqueries $ jobs $ updates $ check)

(* {1 fuzz} *)

let fuzz_cmd =
  let run metrics seed trees codec =
    with_metrics metrics @@ fun () ->
    Printf.printf "fuzzing the ingestion & persistence boundary (seed %d)\n%!" seed;
    let rt, t_rt =
      Timing.duration (fun () -> Fuzz_oracle.roundtrip_trees ~seed ~count:trees)
    in
    Printf.printf "  %s  (%.1f ms)\n%!"
      (Fuzz_oracle.summary "parse∘serialize=id" rt)
      (t_rt *. 1000.);
    let cc, t_cc =
      Timing.duration (fun () -> Fuzz_oracle.codec_corrupt ~seed ~count:codec)
    in
    Printf.printf "  %s  (%.1f ms)\n%!"
      (Fuzz_oracle.summary "codec corrupt-or-correct" cc)
      (t_cc *. 1000.);
    if not (Fuzz_oracle.ok rt && Fuzz_oracle.ok cc) then exit 1
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let trees =
    Arg.(
      value & opt int 10000
      & info [ "trees" ] ~doc:"Randomized trees for the round-trip property.")
  in
  let codec =
    Arg.(
      value & opt int 10000
      & info [ "codec" ]
          ~doc:"Random/mutated byte inputs for the view-codec property.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run the round-trip fuzzing oracle: parse/serialize identity over \
          random trees and Corrupt-or-correct over mutated view images. \
          Exits 1 on any failure.")
    Term.(const run $ metrics_term $ seed $ trees $ codec)

(* {1 difftest} *)

let difftest_cmd =
  let run metrics seed iters replay multiview jobs =
    with_metrics metrics @@ fun () ->
    match replay with
    | Some repro when String.length repro >= 8 && String.sub repro 0 8 = "xvmdtm1|"
      ->
      let t =
        try Difftest.set_of_repro repro
        with Invalid_argument msg ->
          Printf.eprintf "difftest: %s\n" msg;
          exit 2
      in
      Printf.printf "replaying: %d views, update %s, %d-node document\n%!"
        (List.length t.Difftest.sviews)
        t.Difftest.supdate
        (Xml_tree.size t.Difftest.sdoc);
      (match Difftest.check_set ~jobs t with
      | None -> print_endline "batched = one-by-one (all jobs)"
      | Some m ->
        print_endline (Difftest.describe_set m);
        exit 1)
    | Some repro ->
      let t =
        try Difftest.triple_of_repro repro
        with Invalid_argument msg ->
          Printf.eprintf "difftest: %s\n" msg;
          exit 2
      in
      Printf.printf "replaying: view %s, update %s, %d-node document\n%!"
        (Pattern.to_string t.Difftest.view)
        t.Difftest.update (Difftest.doc_nodes t);
      (match Difftest.check t with
      | None -> print_endline "all engines agree"
      | Some m ->
        print_endline (Difftest.describe m);
        exit 1)
    | None when multiview ->
      Printf.printf
        "multi-view batch oracle: View_set.update (jobs 1%s) vs one-by-one \
         maint (seed %d, %d iterations)\n\
         %!"
        (if jobs > 1 then Printf.sprintf " and %d" jobs else "")
        seed iters;
      let rep, t =
        Timing.duration (fun () -> Difftest.run_sets ~jobs ~seed ~iters ())
      in
      List.iter print_endline rep.Qgen.failures;
      Printf.printf "  %s  (%.1f ms)\n%!"
        (Qgen.summary "batched=one-by-one" rep)
        (t *. 1000.);
      if not (Qgen.ok rep) then exit 1
    | None ->
      Printf.printf
        "differential maintenance oracle: recompute vs maint vs ivma (seed \
         %d, %d iterations)\n\
         %!"
        seed iters;
      let rep, t =
        Timing.duration (fun () -> Difftest.run ~seed ~iters ())
      in
      List.iter print_endline rep.Qgen.failures;
      Printf.printf "  %s  (%.1f ms)\n%!"
        (Qgen.summary "maint=recompute=ivma" rep)
        (t *. 1000.);
      if not (Qgen.ok rep) then exit 1
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let iters =
    Arg.(
      value & opt int 2000
      & info [ "iters" ] ~doc:"Random (document, view, update) triples to check.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ]
          ~doc:
            "Re-check one reproducer (the string a failure report prints) \
             instead of running randomized iterations; multi-view \
             reproducers (xvmdtm1 prefix) are dispatched automatically.")
  in
  let multiview =
    Arg.(
      value & flag
      & info [ "multiview" ]
          ~doc:
            "Check 2-4-view sets: batched View_set.update against one-by-one \
             propagation on fresh stores, at --jobs and at 1.")
  in
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "jobs" ]
          ~doc:
            "Domain count for the multiview oracle's parallel run (also \
             cross-checked against jobs=1).")
  in
  Cmd.v
    (Cmd.info "difftest"
       ~doc:
         "Cross-check the three maintenance engines on random (document, \
          view, update) triples — or, with $(b,--multiview), batched \
          View_set maintenance against one-by-one propagation; failing \
          inputs are shrunk and printed as replayable reproducers. Exits 1 \
          on any mismatch.")
    Term.(const run $ metrics_term $ seed $ iters $ replay $ multiview $ jobs)

(* {1 workload} *)

let workload_cmd =
  let run metrics () =
    with_metrics metrics @@ fun () ->
    Printf.printf "views:\n";
    List.iter
      (fun (n, p) -> Printf.printf "  %-4s %s\n" n (Pattern.to_string p))
      Xmark_views.all;
    Printf.printf "updates:\n";
    List.iter
      (fun u ->
        Printf.printf "  %-7s (%-2s) %s\n" u.Xmark_updates.name u.Xmark_updates.cls
          u.Xmark_updates.path)
      Xmark_updates.all
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"List the built-in benchmark views and updates.")
    Term.(const run $ metrics_term $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "xvmcli" ~doc:"Algebraic XML view maintenance toolbox." in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            gen_cmd;
            eval_cmd;
            view_cmd;
            maintain_cmd;
            workload_cmd;
            fuzz_cmd;
            difftest_cmd;
          ]))
