(* xvmcli — inspect documents, evaluate paths, materialize views and run
   incremental maintenance from the command line. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_store path = Store.of_document (Xml_parse.document (read_file path))

(* [--jobs] must be a positive domain count: 0 or negative values are
   rejected at parse time instead of flowing into the fan-out machinery
   (View_set.update additionally clamps, so the library API is safe
   too). *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "expected a positive integer, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let resolve_view ~name ~query =
  match (name, query) with
  | Some n, None -> Xmark_views.find n
  | None, Some q -> View_parser.parse ~name:"cli" q
  | _ -> invalid_arg "give exactly one of --name or --query"

(* {1 --metrics / --boxed}

   Shared by every subcommand. [--metrics] enables the process-wide
   [Obs] registry for the whole run and dumps it afterwards — flat
   [key=value] lines by default, or a single JSON line with
   [--metrics=json] (always the last line of stdout, so pipelines can
   [tail -n 1] it). [--boxed] is the columnar-layout escape hatch:
   tuple tables are built row-major over boxed identifiers instead of
   as arena-handle columns, with identical results. *)

let metrics_fmt_term =
  let fmt = Arg.enum [ ("flat", `Flat); ("json", `Json) ] in
  Arg.(
    value
    & opt ~vopt:(Some `Flat) (some fmt) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Collect operator-level metrics during the run and print the \
           registry afterwards; $(docv) is $(b,flat) (default) or $(b,json).")

let boxed_term =
  Arg.(
    value & flag
    & info [ "boxed" ]
        ~doc:
          "Build tuple tables in the boxed row-major layout instead of the \
           default columnar arena-handle layout (same effect as setting \
           XVM_BOXED_TABLES=1); results are identical, only the physical \
           representation changes.")

let metrics_term =
  Term.(const (fun metrics boxed -> (metrics, boxed)) $ metrics_fmt_term $ boxed_term)

let with_metrics (metrics, boxed) f =
  if boxed then Tuple_table.set_columnar false;
  match metrics with
  | None -> f ()
  | Some fmt ->
    Obs.set_enabled true;
    let dump () =
      match fmt with
      | `Json -> print_endline (Obs.to_json ())
      | `Flat -> print_string (Obs.dump_kv ())
    in
    Fun.protect ~finally:dump f

(* {1 gen} *)

let gen_cmd =
  let run metrics size_kb seed skewed zipf_alpha hot_share value_alpha output =
    with_metrics metrics @@ fun () ->
    let doc =
      if skewed || zipf_alpha <> None || hot_share <> None || value_alpha <> None
      then begin
        let d = Xmark_gen.default_skew in
        let skew =
          {
            Xmark_gen.zipf_alpha =
              Option.value zipf_alpha ~default:d.Xmark_gen.zipf_alpha;
            hot_share = Option.value hot_share ~default:d.Xmark_gen.hot_share;
            value_alpha =
              Option.value value_alpha ~default:d.Xmark_gen.value_alpha;
          }
        in
        Xmark_gen.document_skewed ~skew ~seed ~target_kb:size_kb ()
      end
      else Xmark_gen.document ~seed ~target_kb:size_kb
    in
    let text = Xml_tree.serialize ~decl:true doc in
    (match output with
    | None -> print_string text
    | Some path ->
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc);
    Printf.eprintf "generated %d bytes\n" (String.length text)
  in
  let size =
    Arg.(value & opt int 100 & info [ "size-kb" ] ~doc:"Approximate size in KB.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let skewed =
    Arg.(
      value & flag
      & info [ "skewed" ]
          ~doc:
            "Generate a skewed document (Zipfian sibling fan-out, hot-label \
             concentration, skewed values) with the default skew knobs; any \
             explicit knob below implies this flag.")
  in
  let zipf_alpha =
    Arg.(
      value
      & opt (some float) None
      & info [ "zipf-alpha" ]
          ~doc:"Zipf exponent for sibling fan-out (default 1.1; higher = more skew).")
  in
  let hot_share =
    Arg.(
      value
      & opt (some float) None
      & info [ "hot-share" ]
          ~doc:
            "Fraction of the node budget concentrated under hot parents \
             (default 0.5).")
  in
  let value_alpha =
    Arg.(
      value
      & opt (some float) None
      & info [ "value-alpha" ]
          ~doc:"Zipf exponent for drawing text values (default 1.2).")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate an XMark-style auction document.")
    Term.(
      const run $ metrics_term $ size $ seed $ skewed $ zipf_alpha $ hot_share
      $ value_alpha $ output)

(* Parse→serialize→parse the raw document text and verify the second
   pass is the identity, reporting where ingestion would lose data. *)
let check_roundtrip_text text =
  let t = Xml_parse.document text in
  let s = Xml_tree.serialize t in
  let t' = Xml_parse.document s in
  if not (Xml_tree.equal t t') then begin
    prerr_endline "roundtrip: FAILED (reparse differs structurally)";
    exit 1
  end;
  let s' = Xml_tree.serialize t' in
  if s' <> s then begin
    prerr_endline "roundtrip: FAILED (serialization is not a fixpoint)";
    exit 1
  end;
  Printf.printf "roundtrip: ok (%d bytes in, %d canonical bytes, %d nodes)\n"
    (String.length text) (String.length s) (Xml_tree.size t)

(* {1 eval} *)

let eval_cmd =
  let run metrics doc path limit check_roundtrip =
    with_metrics metrics @@ fun () ->
    if check_roundtrip then check_roundtrip_text (read_file doc);
    let store = load_store doc in
    let hits = Xpath.eval (Store.root store) (Xpath.parse path) in
    Printf.printf "%d nodes match %s\n" (List.length hits) path;
    List.iteri
      (fun i n ->
        if i < limit then
          Printf.printf "  %s  %s\n"
            (Dewey.to_string ~dict:(Store.dict store) (Store.id_of store n))
            (let s = Xml_tree.serialize n in
             if String.length s > 100 then String.sub s 0 100 ^ "…" else s))
      hits
  in
  let doc = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC") in
  let path = Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH") in
  let limit =
    Arg.(value & opt int 10 & info [ "limit" ] ~doc:"Max nodes to print.")
  in
  let check_roundtrip =
    Arg.(
      value & flag
      & info [ "check-roundtrip" ]
          ~doc:
            "First verify that parse/serialize round-trips the document \
             without data loss (exit 1 otherwise).")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate an XPath over a document.")
    Term.(const run $ metrics_term $ doc $ path $ limit $ check_roundtrip)

(* {1 view} *)

let print_view ~limit store mv =
  Printf.printf "%d tuples (%d embeddings)\n" (Mview.cardinality mv)
    (Mview.total_count mv);
  let dict = Store.dict store in
  List.iteri
    (fun i (_, count, cells) ->
      if i < limit then begin
        let cell (c : Mview.cell) =
          let id = Dewey.to_string ~dict c.Mview.cell_id in
          match (c.Mview.cell_value, c.Mview.cell_content) with
          | Some v, _ -> Printf.sprintf "%s=%S" id v
          | None, Some ct ->
            Printf.sprintf "%s cont=%s" id
              (if String.length ct > 40 then String.sub ct 0 40 ^ "…" else ct)
          | None, None -> id
        in
        Printf.printf "  [%d] %s\n" count
          (String.concat " " (Array.to_list (Array.map cell cells)))
      end)
    (Mview.dump mv)

let view_cmd =
  let run metrics doc vname vquery limit save load =
    with_metrics metrics @@ fun () ->
    let store = load_store doc in
    let pat = resolve_view ~name:vname ~query:vquery in
    Printf.printf "view: %s\n" (Pattern.to_string pat);
    let mv, t =
      Timing.duration (fun () ->
          match load with
          | Some path -> Mview_codec.load_from_file store pat path
          | None -> Mview.materialize store pat)
    in
    Printf.printf "%s in %.1f ms; "
      (match load with Some _ -> "loaded" | None -> "materialized")
      (t *. 1000.);
    print_view ~limit store mv;
    match save with
    | Some path ->
      Mview_codec.save_to_file mv path;
      Printf.printf "saved to %s\n" path
    | None -> ()
  in
  let doc = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC") in
  let vname =
    Arg.(value & opt (some string) None & info [ "name" ] ~doc:"Built-in view (Q1…Q17).")
  in
  let vquery =
    Arg.(value & opt (some string) None & info [ "query" ] ~doc:"View statement.")
  in
  let limit = Arg.(value & opt int 10 & info [ "limit" ] ~doc:"Max tuples to print.") in
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~doc:"Persist the view to a file.")
  in
  let load =
    Arg.(value & opt (some file) None & info [ "load" ] ~doc:"Load the view from a file instead of evaluating.")
  in
  Cmd.v
    (Cmd.info "view" ~doc:"Materialize (or load) a view over a document.")
    Term.(const run $ metrics_term $ doc $ vname $ vquery $ limit $ save $ load)

(* {1 maintain} *)

let maintain_cmd =
  let run metrics doc vnames vqueries jobs updates check =
    with_metrics metrics @@ fun () ->
    let store = load_store doc in
    let pats =
      List.map Xmark_views.find vnames
      @ List.mapi
          (fun i q -> View_parser.parse ~name:(Printf.sprintf "cli%d" (i + 1)) q)
          vqueries
    in
    if pats = [] then invalid_arg "give at least one --name or --query";
    let set = View_set.create store in
    let mvs = List.map (fun pat -> View_set.add set pat) pats in
    List.iter
      (fun mv ->
        Printf.printf "view %s: %d tuples\n"
          (Pattern.to_string mv.Mview.pat)
          (Mview.cardinality mv))
      mvs;
    List.iter
      (fun text ->
        let stmt = Update.parse text in
        Printf.printf "%s\n" (Update.to_string stmt);
        let reports = View_set.update ~jobs set stmt in
        List.iter
          (fun (mv, r) ->
            let b = r.Maint.timing in
            Printf.printf
              "  %-6s +%d -%d tuples, %d refreshed, %d/%d terms%s%s\n\
              \         find %.1f ms | delta %.1f ms | expr %.1f ms | exec %.1f ms | aux %.1f ms\n"
              mv.Mview.pat.Pattern.name r.Maint.embeddings_added
              r.Maint.embeddings_removed r.Maint.tuples_modified
              r.Maint.terms_surviving r.Maint.terms_developed
              (if r.Maint.fallback_recompute then " [fallback recompute]" else "")
              (if r.Maint.skipped_irrelevant then " [skipped: irrelevant]" else "")
              (b.Timing.find_target *. 1000.) (b.Timing.compute_delta *. 1000.)
              (b.Timing.get_expression *. 1000.) (b.Timing.execute *. 1000.)
              (b.Timing.update_aux *. 1000.))
          reports)
      updates;
    List.iter
      (fun mv ->
        Printf.printf "final view %s: %d tuples\n" mv.Mview.pat.Pattern.name
          (Mview.cardinality mv))
      mvs;
    if check then
      List.iter
        (fun mv ->
          let fresh =
            Mview.materialize ~policy:Mview.Leaves store mv.Mview.pat
          in
          Printf.printf "view %s consistent with recomputation: %b\n"
            mv.Mview.pat.Pattern.name
            (Recompute.equal mv fresh))
        mvs
  in
  let doc = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC") in
  let vnames =
    Arg.(
      value & opt_all string []
      & info [ "name" ] ~doc:"Built-in view (Q1…Q17); repeatable.")
  in
  let vqueries =
    Arg.(
      value & opt_all string [] & info [ "query" ] ~doc:"View statement; repeatable.")
  in
  let jobs =
    Arg.(
      value & opt pos_int 1
      & info [ "jobs" ]
          ~doc:
            "Propagate clean views across this many OCaml domains (results \
             are identical to --jobs 1; must be positive).")
  in
  let updates =
    Arg.(
      value & opt_all string []
      & info [ "u"; "update" ]
          ~doc:"Update statement: 'delete PATH' or 'insert into PATH FRAGMENT'.")
  in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Verify against recomputation.")
  in
  Cmd.v
    (Cmd.info "maintain"
       ~doc:
         "Apply updates and maintain one or more views incrementally (batch \
          engine: shared update-region index, relevance skipping, optional \
          domain-parallel propagation).")
    Term.(
      const run $ metrics_term $ doc $ vnames $ vqueries $ jobs $ updates $ check)

(* {1 fuzz} *)

let fuzz_cmd =
  let run metrics seed trees codec wal =
    with_metrics metrics @@ fun () ->
    Printf.printf "fuzzing the ingestion & persistence boundary (seed %d)\n%!" seed;
    let rt, t_rt =
      Timing.duration (fun () -> Fuzz_oracle.roundtrip_trees ~seed ~count:trees)
    in
    Printf.printf "  %s  (%.1f ms)\n%!"
      (Fuzz_oracle.summary "parse∘serialize=id" rt)
      (t_rt *. 1000.);
    let cc, t_cc =
      Timing.duration (fun () -> Fuzz_oracle.codec_corrupt ~seed ~count:codec)
    in
    Printf.printf "  %s  (%.1f ms)\n%!"
      (Fuzz_oracle.summary "codec corrupt-or-correct" cc)
      (t_cc *. 1000.);
    let wc, t_wc =
      Timing.duration (fun () -> Fuzz_oracle.wal_corrupt ~seed ~count:wal)
    in
    Printf.printf "  %s  (%.1f ms)\n%!"
      (Fuzz_oracle.summary "wal corrupt-or-correct" wc)
      (t_wc *. 1000.);
    if not (Fuzz_oracle.ok rt && Fuzz_oracle.ok cc && Fuzz_oracle.ok wc) then
      exit 1
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let trees =
    Arg.(
      value & opt int 10000
      & info [ "trees" ] ~doc:"Randomized trees for the round-trip property.")
  in
  let codec =
    Arg.(
      value & opt int 10000
      & info [ "codec" ]
          ~doc:"Random/mutated byte inputs for the view-codec property.")
  in
  let wal =
    Arg.(
      value & opt int 2000
      & info [ "wal" ]
          ~doc:
            "Torn/truncated/bit-flipped/checksum-forged write-ahead-log \
             images for the WAL scanner property.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run the round-trip fuzzing oracle: parse/serialize identity over \
          random trees, Corrupt-or-correct over mutated view images, and \
          scanner robustness over damaged write-ahead-log images. Exits 1 on \
          any failure.")
    Term.(const run $ metrics_term $ seed $ trees $ codec $ wal)

(* {1 difftest} *)

let difftest_cmd =
  let run metrics seed iters replay multiview recover answer indep heavy jobs =
    with_metrics metrics @@ fun () ->
    match replay with
    | None when heavy ->
      Printf.printf
        "heavy-light oracle: adaptive (deferred, partitioned) maintenance vs \
         eager at every read point (seed %d, %d iterations)\n\
         %!"
        seed iters;
      let rep, t =
        Timing.duration (fun () -> Difftest.run_heavy ~seed ~iters ())
      in
      List.iter print_endline rep.Qgen.failures;
      Printf.printf "  %s  (%.1f ms)\n%!"
        (Qgen.summary "adaptive=eager" rep)
        (t *. 1000.);
      if not (Qgen.ok rep) then exit 1
    | None when answer ->
      Printf.printf
        "answer-from-views oracle: Answer.answer vs brute-force embeddings, \
         before and after maintenance (seed %d, %d iterations)\n\
         %!"
        seed iters;
      let rep, t =
        Timing.duration (fun () -> Difftest.run_answer ~seed ~iters ())
      in
      List.iter print_endline rep.Qgen.failures;
      Printf.printf "  %s  (%.1f ms)\n%!"
        (Qgen.summary "views=base" rep)
        (t *. 1000.);
      if not (Qgen.ok rep) then exit 1
    | None when indep ->
      Printf.printf
        "independence-safety oracle: declared independent => maintenance \
         no-op (seed %d, %d iterations)\n\
         %!"
        seed iters;
      let rep, t =
        Timing.duration (fun () -> Difftest.run_indep ~seed ~iters ())
      in
      List.iter print_endline rep.Qgen.failures;
      Printf.printf "  %s  (%.1f ms)\n%!"
        (Qgen.summary "independent=no-op" rep)
        (t *. 1000.);
      if not (Qgen.ok rep) then exit 1
    | None when recover ->
      Printf.printf
        "kill-and-recover oracle: checkpoint + WAL replay vs uninterrupted \
         run (seed %d, %d iterations)\n\
         %!"
        seed iters;
      let rep, t =
        Timing.duration (fun () -> Difftest.run_recover ~jobs ~seed ~iters ())
      in
      List.iter print_endline rep.Qgen.failures;
      Printf.printf "  %s  (%.1f ms)\n%!"
        (Qgen.summary "recovered=uninterrupted" rep)
        (t *. 1000.);
      if not (Qgen.ok rep) then exit 1
    | Some repro when String.length repro >= 8 && String.sub repro 0 8 = "xvmdta1|"
      ->
      let c =
        try Difftest.answer_of_repro repro
        with Invalid_argument msg ->
          Printf.eprintf "difftest: %s\n" msg;
          exit 2
      in
      Printf.printf
        "replaying: %d views, query %s, update %s, %d-node document\n%!"
        (List.length c.Difftest.aset.Difftest.sviews)
        (Pattern.to_string c.Difftest.aquery)
        c.Difftest.aset.Difftest.supdate
        (Xml_tree.size c.Difftest.aset.Difftest.sdoc);
      (match Difftest.check_answer c with
      | None -> print_endline "answer-from-views = brute force (both phases)"
      | Some m ->
        print_endline (Difftest.describe_answer m);
        exit 1)
    | Some repro when String.length repro >= 8 && String.sub repro 0 8 = "xvmdth1|"
      ->
      let c =
        try Difftest.heavy_of_repro repro
        with Invalid_argument msg ->
          Printf.eprintf "difftest: %s\n" msg;
          exit 2
      in
      Printf.printf
        "replaying: %d views, %d statement(s), %d read(s), thresholds \
         %d/%d/%d/%d, %d-node document\n\
         %!"
        (List.length c.Difftest.hc_set.Difftest.sviews)
        (List.length c.Difftest.hc_stmts)
        (List.length c.Difftest.hc_reads)
        c.Difftest.hc_count c.Difftest.hc_fanout c.Difftest.hc_budget
        c.Difftest.hc_tailb
        (Xml_tree.size c.Difftest.hc_set.Difftest.sdoc);
      (match Difftest.check_heavy c with
      | None -> print_endline "adaptive = eager (every read point)"
      | Some m ->
        print_endline (Difftest.describe_heavy m);
        exit 1)
    | Some repro when String.length repro >= 8 && String.sub repro 0 8 = "xvmdtm1|"
      ->
      let t =
        try Difftest.set_of_repro repro
        with Invalid_argument msg ->
          Printf.eprintf "difftest: %s\n" msg;
          exit 2
      in
      Printf.printf "replaying: %d views, update %s, %d-node document\n%!"
        (List.length t.Difftest.sviews)
        t.Difftest.supdate
        (Xml_tree.size t.Difftest.sdoc);
      (match Difftest.check_set ~jobs t with
      | None -> print_endline "batched = one-by-one (all jobs)"
      | Some m ->
        print_endline (Difftest.describe_set m);
        exit 1)
    | Some repro ->
      let t =
        try Difftest.triple_of_repro repro
        with Invalid_argument msg ->
          Printf.eprintf "difftest: %s\n" msg;
          exit 2
      in
      Printf.printf "replaying: view %s, update %s, %d-node document\n%!"
        (Pattern.to_string t.Difftest.view)
        t.Difftest.update (Difftest.doc_nodes t);
      (match Difftest.check t with
      | None -> print_endline "all engines agree"
      | Some m ->
        print_endline (Difftest.describe m);
        exit 1)
    | None when multiview ->
      Printf.printf
        "multi-view batch oracle: View_set.update (jobs 1%s) vs one-by-one \
         maint (seed %d, %d iterations)\n\
         %!"
        (if jobs > 1 then Printf.sprintf " and %d" jobs else "")
        seed iters;
      let rep, t =
        Timing.duration (fun () -> Difftest.run_sets ~jobs ~seed ~iters ())
      in
      List.iter print_endline rep.Qgen.failures;
      Printf.printf "  %s  (%.1f ms)\n%!"
        (Qgen.summary "batched=one-by-one" rep)
        (t *. 1000.);
      if not (Qgen.ok rep) then exit 1
    | None ->
      Printf.printf
        "differential maintenance oracle: recompute vs maint vs ivma (seed \
         %d, %d iterations)\n\
         %!"
        seed iters;
      let rep, t =
        Timing.duration (fun () -> Difftest.run ~seed ~iters ())
      in
      List.iter print_endline rep.Qgen.failures;
      Printf.printf "  %s  (%.1f ms)\n%!"
        (Qgen.summary "maint=recompute=ivma" rep)
        (t *. 1000.);
      if not (Qgen.ok rep) then exit 1
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let iters =
    Arg.(
      value & opt int 2000
      & info [ "iters" ] ~doc:"Random (document, view, update) triples to check.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ]
          ~doc:
            "Re-check one reproducer (the string a failure report prints) \
             instead of running randomized iterations; multi-view \
             reproducers (xvmdtm1 prefix) are dispatched automatically.")
  in
  let multiview =
    Arg.(
      value & flag
      & info [ "multiview" ]
          ~doc:
            "Check 2-4-view sets: batched View_set.update against one-by-one \
             propagation on fresh stores, at --jobs and at 1.")
  in
  let recover =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "Check the durability engine: kill a durable run at a seeded \
             statement boundary, recover from checkpoint + write-ahead log, \
             and require tuple-for-tuple agreement with an uninterrupted \
             run (then once more after finishing the statement sequence).")
  in
  let answer =
    Arg.(
      value & flag
      & info [ "answer" ]
          ~doc:
            "Check the rewriting planner: queries answered from the \
             materialized view set (single view with compensations, \
             two-view intersection, or base fallback) against brute-force \
             embedding enumeration, before and after a maintenance round.")
  in
  let indep =
    Arg.(
      value & flag
      & info [ "indep" ]
          ~doc:
            "Check independence safety: whenever the DTD-based analysis \
             declares an (update, view) pair independent, maintenance must \
             be a no-op and equal recomputation from scratch.")
  in
  let heavy =
    Arg.(
      value & flag
      & info [ "heavy" ]
          ~doc:
            "Check heavy-light adaptive maintenance: a view set with the \
             partition classifier installed (deliberately tiny thresholds, \
             forcing rebalance storms and budget drains) against eager \
             maintenance of the same statement sequence — tuple-for-tuple \
             equality at every seeded read point and after the final \
             drain.")
  in
  let jobs =
    Arg.(
      value & opt pos_int 2
      & info [ "jobs" ]
          ~doc:
            "Domain count for the multiview oracle's parallel run (also \
             cross-checked against jobs=1; must be positive).")
  in
  Cmd.v
    (Cmd.info "difftest"
       ~doc:
         "Cross-check the three maintenance engines on random (document, \
          view, update) triples — with $(b,--multiview), batched View_set \
          maintenance against one-by-one propagation; with $(b,--recover), \
          kill-and-recover durability against an uninterrupted run; with \
          $(b,--heavy), adaptive heavy-light maintenance against eager at \
          every read point; failing inputs are shrunk and printed as \
          replayable reproducers. Exits 1 on any mismatch.")
    Term.(
      const run $ metrics_term $ seed $ iters $ replay $ multiview $ recover
      $ answer $ indep $ heavy $ jobs)

(* {1 answer} *)

(* A query argument is a built-in view name (Q1…Q17), a view statement
   (View_parser dialect), or a compact pattern (Pattern.to_string
   syntax) — tried in that order. *)
let parse_query ~name s =
  match Xmark_views.find s with
  | pat -> Pattern.rename pat name
  | exception _ -> (
    match View_parser.parse ~name s with
    | pat -> pat
    | exception _ -> Difftest.view_of_compact ~name s)

let answer_cmd =
  let run metrics doc gen_kb seed vnames vqueries query update check limit =
    with_metrics metrics @@ fun () ->
    let root =
      match doc with
      | Some path -> Xml_parse.document (read_file path)
      | None -> Xmark_gen.document ~seed ~target_kb:gen_kb
    in
    let store = Store.of_document root in
    let pats =
      List.map Xmark_views.find vnames
      @ List.mapi
          (fun i q -> parse_query ~name:(Printf.sprintf "cli%d" (i + 1)) q)
          vqueries
    in
    let pats = if pats = [] then [ Xmark_views.find "Q1" ] else pats in
    let set = View_set.create store in
    List.iter (fun pat -> ignore (View_set.add set pat)) pats;
    let q = parse_query ~name:"query" query in
    let dict = Store.dict store in
    let show_answer () =
      let sources = List.map Answer.source_of_mview (View_set.views set) in
      match Answer.answer ~store ~sources q with
      | None -> assert false (* a store is at hand: fallback always runs *)
      | Some (plan, rows) ->
        let total = List.fold_left (fun a r -> a + r.Answer.count) 0 rows in
        Printf.printf "plan: %s\n%d tuple(s), %d embedding(s)\n"
          (Answer.describe plan) (List.length rows) total;
        List.iteri
          (fun i r ->
            if i < limit then print_endline ("  " ^ Answer.row_to_string ~dict r))
          rows;
        if List.length rows > limit then
          Printf.printf "  … %d more (raise --limit)\n" (List.length rows - limit);
        if check then begin
          match Answer.diff ~expect:(Answer.base_rows store q) ~got:rows with
          | None -> print_endline "check: views = base recomputation"
          | Some d ->
            Printf.printf "check FAILED: %s\n" d;
            exit 1
        end
    in
    show_answer ();
    match update with
    | None -> ()
    | Some stmt ->
      (* Apply one statement with the DTD-based independence prover
         installed, report which views it discharged, and re-answer. *)
      let dtd = Dtd.infer root in
      View_set.set_independence set (Some (Independence.prover dtd));
      let reports = View_set.update set (Update.parse stmt) in
      let skipped =
        List.filter (fun (_, r) -> r.Maint.skipped_irrelevant) reports
      in
      Printf.printf "\napplied %s: %d/%d view(s) proven independent (%s)\n"
        stmt (List.length skipped) (List.length reports)
        (match skipped with
        | [] -> "none skipped"
        | l ->
          String.concat ", "
            (List.map (fun (mv, _) -> mv.Mview.pat.Pattern.name) l));
      show_answer ()
  in
  let query =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:
            "Query to answer: a built-in view name (Q1…Q17), a view \
             statement, or a compact pattern.")
  in
  let doc =
    Arg.(
      value & opt (some file) None
      & info [ "doc" ] ~docv:"FILE"
          ~doc:"Document; omitted, one is generated ($(b,--gen-kb)).")
  in
  let gen_kb =
    Arg.(
      value & opt int 64
      & info [ "gen-kb" ]
          ~doc:"Without $(b,--doc), generate an XMark document of this size (KB).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.") in
  let vnames =
    Arg.(
      value & opt_all string []
      & info [ "name" ]
          ~doc:"Built-in view (Q1…Q17) to materialize; repeatable. Default Q1.")
  in
  let vqueries =
    Arg.(
      value & opt_all string []
      & info [ "view" ] ~doc:"View statement to materialize; repeatable.")
  in
  let update =
    Arg.(
      value & opt (some string) None
      & info [ "update" ] ~docv:"STMT"
          ~doc:
            "After answering, apply this update statement through the view \
             set with the DTD-based independence prover installed (the DTD \
             is inferred from the document), report which views were \
             statically skipped, and answer again.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Cross-check every answer against base-document recomputation; \
             exit 1 on any discrepancy.")
  in
  let limit =
    Arg.(value & opt int 20 & info [ "limit" ] ~doc:"Tuples to print.")
  in
  Cmd.v
    (Cmd.info "answer"
       ~doc:
         "Answer a fresh tree-pattern query from materialized views — a \
          single view with residual compensations, the intersection of two \
          views joined on a shared node, or base-document recomputation \
          when no rewriting exists.")
    Term.(
      const run $ metrics_term $ doc $ gen_kb $ seed $ vnames $ vqueries
      $ query $ update $ check $ limit)

(* {1 serve} *)

(* Shared by serve/bench-serve: a document from a file or the XMark
   generator, and a view set over it. *)
let serve_set ~doc ~gen_kb ~seed ~vnames ~vqueries =
  let root =
    match doc with
    | Some path -> Xml_parse.document (read_file path)
    | None -> Xmark_gen.document ~seed ~target_kb:gen_kb
  in
  let store = Store.of_document root in
  let pats =
    List.map Xmark_views.find vnames
    @ List.mapi
        (fun i q -> View_parser.parse ~name:(Printf.sprintf "cli%d" (i + 1)) q)
        vqueries
  in
  let pats = if pats = [] then [ Xmark_views.find "Q1" ] else pats in
  let set = View_set.create store in
  List.iter (fun pat -> ignore (View_set.add set pat)) pats;
  set

let start_endpoint server port =
  let ep = Metrics_http.start ~port (fun () -> Server.prometheus server) in
  Printf.eprintf "metrics endpoint: http://127.0.0.1:%d/metrics\n%!"
    (Metrics_http.port ep);
  ep

let serve_cmd =
  let run metrics doc gen_kb seed vnames vqueries jobs max_batch port wal =
    with_metrics metrics @@ fun () ->
    (* With --wal, an existing manifest wins over the command-line
       document/view flags: the directory IS the state, and startup is a
       recovery. A fresh directory is initialized from the flags. *)
    let set, durable =
      match wal with
      | None -> (serve_set ~doc ~gen_kb ~seed ~vnames ~vqueries, None)
      | Some dir -> (
        let parse_pattern ~name s = Difftest.view_of_compact ~name s in
        match Durable.recover ~dir ~parse_pattern ~jobs () with
        | Some o ->
          Printf.eprintf
            "recovered from %s: checkpoint %d, %d statement(s) replayed%s%s\n%!"
            dir o.Durable.ck_seq o.Durable.replayed
            (match o.Durable.rebuilt_views with
            | [] -> ""
            | vs -> Printf.sprintf ", %d view image(s) rebuilt" (List.length vs))
            (match o.Durable.truncated with
            | [] -> ""
            | ts ->
              String.concat ""
                (List.map
                   (fun (f, d) ->
                     Printf.sprintf "\n  truncated %s: %s" f
                       (Wal.damage_to_string d))
                   ts));
          (o.Durable.set, Some o.Durable.engine)
        | None ->
          let set = serve_set ~doc ~gen_kb ~seed ~vnames ~vqueries in
          Printf.eprintf "initialized durability in %s\n%!" dir;
          (set, Some (Durable.init ~dir set)))
    in
    let server = Server.create ~jobs ~max_batch ?durable set in
    let endpoint = Option.map (start_endpoint server) port in
    let s0 = Server.snapshot server in
    Printf.eprintf
      "serving %d view(s) over %d nodes; statements on stdin (also: query \
       NAME | epoch | metrics%s | quit)\n\
       %!"
      (Array.length s0.Snapshot.views)
      s0.Snapshot.node_count
      (if durable <> None then " | checkpoint" else "");
    (* The console runs on its own domain: it only submits to the
       admission queue and reads published snapshots. The main domain —
       the store's writer — runs the serving loop. *)
    let console =
      Domain.spawn (fun () ->
          let rec loop () =
            match In_channel.input_line In_channel.stdin with
            | None -> Server.stop server
            | Some line -> (
              match String.trim line with
              | "" -> loop ()
              | "quit" | "exit" -> Server.stop server
              | "epoch" ->
                let s = Server.snapshot server in
                Printf.printf "epoch %d; %d applied; %d pending%s\n%!"
                  s.Snapshot.epoch s.Snapshot.applied (Server.pending server)
                  (if durable = None then ""
                   else Printf.sprintf "; durable seq %d" (Server.durable_seq server));
                loop ()
              | "checkpoint" ->
                if durable = None then
                  Printf.printf "no --wal directory: nothing to checkpoint\n%!"
                else begin
                  Server.request_checkpoint server;
                  Printf.printf "checkpoint requested\n%!"
                end;
                loop ()
              | "metrics" ->
                print_string (Server.prometheus server);
                flush stdout;
                loop ()
              | line when String.length line > 6 && String.sub line 0 6 = "query "
                ->
                let name = String.trim (String.sub line 6 (String.length line - 6)) in
                let s = Server.snapshot server in
                (match Snapshot.find_view s name with
                | Some v ->
                  Printf.printf
                    "view %s @ epoch %d: %d tuples, %d embeddings\n%!" name
                    s.Snapshot.epoch (Snapshot.cardinality v) v.Snapshot.v_total
                | None -> (
                  (* Not a view name: a fresh query, answered from the
                     snapshot's immutable view images — never the live
                     store, so this is safe on the console domain and
                     reads one consistent epoch. *)
                  match parse_query ~name:"query" name with
                  | exception _ ->
                    Printf.printf
                      "no view %S at epoch %d (and not a parseable query)\n%!"
                      name s.Snapshot.epoch
                  | q -> (
                    let sources =
                      Array.to_list s.Snapshot.views
                      |> List.map (fun v ->
                             Answer.source ~name:v.Snapshot.v_name
                               (Difftest.view_of_compact ~name:v.Snapshot.v_name
                                  v.Snapshot.v_pattern)
                               (fun () ->
                                 Array.to_list v.Snapshot.v_tuples
                                 |> List.map (fun t ->
                                        {
                                          Answer.count = t.Snapshot.t_count;
                                          cells = t.Snapshot.t_cells;
                                        })))
                    in
                    match Answer.answer ~sources q with
                    | None ->
                      Printf.printf
                        "no rewriting from the materialized views at epoch \
                         %d (base fallback is not available on a reader)\n%!"
                        s.Snapshot.epoch
                    | Some (plan, rows) ->
                      let total =
                        List.fold_left (fun a r -> a + r.Answer.count) 0 rows
                      in
                      Printf.printf
                        "%s @ epoch %d: %d tuples, %d embeddings\n"
                        (Answer.describe plan) s.Snapshot.epoch
                        (List.length rows) total;
                      List.iteri
                        (fun i r ->
                          if i < 10 then
                            print_endline ("  " ^ Answer.row_to_string r))
                        rows;
                      if List.length rows > 10 then
                        Printf.printf "  … %d more\n" (List.length rows - 10);
                      flush stdout)));
                loop ()
              | line ->
                let stmt =
                  if String.length line > 7 && String.sub line 0 7 = "update " then
                    String.sub line 7 (String.length line - 7)
                  else line
                in
                (match Update.parse stmt with
                | exception e ->
                  Printf.printf "parse error: %s\n%!" (Printexc.to_string e)
                | u ->
                  if Server.submit server u then
                    Printf.printf "queued (%d pending)\n%!" (Server.pending server)
                  else Printf.printf "rejected: server is stopping\n%!");
                loop ())
          in
          loop ())
    in
    Server.run server;
    Domain.join console;
    Option.iter Metrics_http.stop endpoint;
    Option.iter Durable.close durable;
    let s = Server.snapshot server in
    Printf.printf "served %d epoch(s), %d statement(s) applied%s\n"
      s.Snapshot.epoch s.Snapshot.applied
      (if durable = None then ""
       else Printf.sprintf ", durable through seq %d" (Server.durable_seq server))
  in
  let doc =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"DOC"
          ~doc:"Document to serve; omitted, one is generated ($(b,--gen-kb)).")
  in
  let gen_kb =
    Arg.(
      value & opt int 64
      & info [ "gen-kb" ]
          ~doc:"Without $(docv), generate an XMark document of this size (KB).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.") in
  let vnames =
    Arg.(
      value & opt_all string []
      & info [ "name" ] ~doc:"Built-in view (Q1…Q17); repeatable. Default Q1.")
  in
  let vqueries =
    Arg.(
      value & opt_all string [] & info [ "query" ] ~doc:"View statement; repeatable.")
  in
  let jobs =
    Arg.(
      value & opt pos_int 1
      & info [ "jobs" ]
          ~doc:"Domain fan-out for clean-view propagation (must be positive).")
  in
  let max_batch =
    Arg.(
      value & opt pos_int 64
      & info [ "max-batch" ]
          ~doc:"Maximum statements coalesced into one published epoch.")
  in
  let port =
    Arg.(
      value & opt (some int) None
      & info [ "port" ]
          ~doc:"Serve Prometheus metrics on this TCP port (0 = ephemeral).")
  in
  let wal =
    Arg.(
      value & opt (some string) None
      & info [ "wal" ] ~docv:"DIR"
          ~doc:
            "Durability directory: journal every admitted statement to a \
             write-ahead log before applying it (a batch is acknowledged \
             only after its records are fsynced), and on startup recover \
             automatically from the directory's last checkpoint plus log — \
             an existing $(docv) overrides the document/view flags. The \
             $(b,checkpoint) console command persists the current state and \
             truncates the log.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the view set as a long-lived server: update statements read \
          from stdin are admitted into a pending queue and coalesced into \
          batched maintenance passes, while queries are answered from \
          epoch-tagged immutable snapshots — readers never block on the \
          store commit. With $(b,--port), expose Prometheus metrics over \
          HTTP; with $(b,--wal), journal statements durably and recover on \
          restart.")
    Term.(
      const run $ metrics_term $ doc $ gen_kb $ seed $ vnames $ vqueries $ jobs
      $ max_batch $ port $ wal)

(* {1 bench-serve} *)

let bench_serve_cmd =
  let run metrics gen_kb seed vnames vqueries readers duration write_rate
      closed_loop jobs max_batch port prom_out json =
    with_metrics metrics @@ fun () ->
    let set = serve_set ~doc:None ~gen_kb ~seed ~vnames ~vqueries in
    let endpoint = ref None in
    let on_server server =
      match (port, prom_out) with
      | None, None -> ()
      | _ ->
        endpoint := Some (start_endpoint server (Option.value ~default:0 port))
    in
    let config =
      {
        Load.readers;
        duration;
        write_rate;
        closed_loop;
        jobs;
        max_batch;
        seed;
      }
    in
    let r = Load.run ~on_server config set ~gen:Xmark_mix.statement in
    (* Self-scrape over real TCP after the run: the endpoint serves the
       final published snapshot and counters. *)
    (match (!endpoint, prom_out) with
    | Some ep, Some file ->
      let code, body = Metrics_http.get ~port:(Metrics_http.port ep) "/metrics" in
      if code <> 200 then Printf.eprintf "self-scrape failed: HTTP %d\n" code
      else begin
        let oc = open_out_bin file in
        output_string oc body;
        close_out oc;
        Printf.eprintf "wrote %d bytes of metrics to %s\n" (String.length body)
          file
      end
    | _ -> ());
    Option.iter Metrics_http.stop !endpoint;
    let lat_fields l =
      match l with
      | None -> []
      | Some l ->
        [
          ("p50_ms", l.Load.p50);
          ("p95_ms", l.Load.p95);
          ("p99_ms", l.Load.p99);
          ("mean_ms", l.Load.mean);
          ("max_ms", l.Load.max);
        ]
    in
    if json then begin
      let b = Buffer.create 256 in
      Buffer.add_char b '{';
      let first = ref true in
      let field k v =
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b (Printf.sprintf "%S:%s" k v)
      in
      field "wall_s" (Printf.sprintf "%.3f" r.Load.wall_s);
      field "epochs" (string_of_int r.Load.epochs);
      field "reads" (string_of_int r.Load.reads);
      field "read_rps" (Printf.sprintf "%.1f" r.Load.read_rps);
      List.iter
        (fun (k, v) -> field ("read_" ^ k) (Printf.sprintf "%.4f" v))
        (lat_fields r.Load.read_ms);
      field "writes_submitted" (string_of_int r.Load.writes_submitted);
      field "writes_rejected" (string_of_int r.Load.writes_rejected);
      field "writes_applied" (string_of_int r.Load.writes_applied);
      List.iter
        (fun (k, v) -> field ("write_visible_" ^ k) (Printf.sprintf "%.4f" v))
        (lat_fields r.Load.write_visible_ms);
      field "max_batch_fill" (string_of_int r.Load.max_batch_fill);
      Buffer.add_char b '}';
      print_endline (Buffer.contents b)
    end
    else begin
      Printf.printf
        "serve bench: %.2f s wall, %d epoch(s), %d reader(s), %s writer\n"
        r.Load.wall_s r.Load.epochs readers
        (if closed_loop then "closed-loop"
         else if write_rate > 0. then Printf.sprintf "%.0f/s open-loop" write_rate
         else "no");
      Printf.printf "  reads: %d (%.0f/s)\n" r.Load.reads r.Load.read_rps;
      (match r.Load.read_ms with
      | Some l ->
        Printf.printf
          "  read latency: p50 %.4f ms | p95 %.4f ms | p99 %.4f ms | mean \
           %.4f ms | max %.2f ms\n"
          l.Load.p50 l.Load.p95 l.Load.p99 l.Load.mean l.Load.max
      | None -> ());
      Printf.printf
        "  writes: %d submitted, %d applied, %d rejected at admission, max \
         batch fill %d\n"
        r.Load.writes_submitted r.Load.writes_applied r.Load.writes_rejected
        r.Load.max_batch_fill;
      match r.Load.write_visible_ms with
      | Some l ->
        Printf.printf
          "  write visibility: p50 %.3f ms | p95 %.3f ms | p99 %.3f ms | max \
           %.2f ms\n"
          l.Load.p50 l.Load.p95 l.Load.p99 l.Load.max
      | None -> ()
    end
  in
  let gen_kb =
    Arg.(
      value & opt int 64
      & info [ "gen-kb" ] ~doc:"XMark document size to generate (KB).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let vnames =
    Arg.(
      value & opt_all string []
      & info [ "name" ] ~doc:"Built-in view (Q1…Q17); repeatable. Default Q1.")
  in
  let vqueries =
    Arg.(
      value & opt_all string [] & info [ "query" ] ~doc:"View statement; repeatable.")
  in
  let readers =
    Arg.(
      value & opt int 2
      & info [ "readers" ] ~doc:"Concurrent reader domains.")
  in
  let duration =
    Arg.(
      value & opt float 2.0
      & info [ "duration" ] ~doc:"Wall-clock seconds of load.")
  in
  let write_rate =
    Arg.(
      value & opt float 50.0
      & info [ "write-rate" ]
          ~doc:
            "Open-loop statement arrival rate (statements/second); 0 disables \
             the writer.")
  in
  let closed_loop =
    Arg.(
      value & flag
      & info [ "closed-loop" ]
          ~doc:
            "Closed-loop writer: submit the next statement only once the \
             previous one is visible in a published snapshot (overrides \
             $(b,--write-rate) pacing).")
  in
  let jobs =
    Arg.(
      value & opt pos_int 1
      & info [ "jobs" ]
          ~doc:"Domain fan-out for clean-view propagation (must be positive).")
  in
  let max_batch =
    Arg.(
      value & opt pos_int 64
      & info [ "max-batch" ]
          ~doc:"Maximum statements coalesced into one published epoch.")
  in
  let port =
    Arg.(
      value & opt (some int) None
      & info [ "port" ]
          ~doc:"Expose Prometheus metrics during the run (0 = ephemeral).")
  in
  let prom_out =
    Arg.(
      value & opt (some string) None
      & info [ "prom-out" ]
          ~doc:
            "After the run, scrape the run's own metrics endpoint over TCP \
             and write the Prometheus exposition to $(docv).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as one JSON line.")
  in
  Cmd.v
    (Cmd.info "bench-serve"
       ~doc:
         "pgbench-style load driver for the serving loop: reader domains \
          answering snapshot queries, an open- or closed-loop writer feeding \
          the bounded XMark update mix, throughput and p50/p95/p99 latency \
          reporting, and an optional Prometheus self-scrape.")
    Term.(
      const run $ metrics_term $ gen_kb $ seed $ vnames $ vqueries $ readers
      $ duration $ write_rate $ closed_loop $ jobs $ max_batch $ port $ prom_out
      $ json)

(* {1 workload} *)

let workload_cmd =
  let run metrics () =
    with_metrics metrics @@ fun () ->
    Printf.printf "views:\n";
    List.iter
      (fun (n, p) -> Printf.printf "  %-4s %s\n" n (Pattern.to_string p))
      Xmark_views.all;
    Printf.printf "updates:\n";
    List.iter
      (fun u ->
        Printf.printf "  %-7s (%-2s) %s\n" u.Xmark_updates.name u.Xmark_updates.cls
          u.Xmark_updates.path)
      Xmark_updates.all;
    (* Same registry the bench harness validates and dispatches from —
       one definition, so this listing cannot drift from `--only`. *)
    Printf.printf "bench sections (bench/main.exe --only <name>,...):\n";
    List.iter
      (fun (n, doc) -> Printf.printf "  %-10s %s\n" n doc)
      Bench_sections.all
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "List the built-in benchmark views, updates, and bench harness \
          sections (the section list is generated from the same registry \
          the bench's $(b,--only) flag validates against).")
    Term.(const run $ metrics_term $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "xvmcli" ~doc:"Algebraic XML view maintenance toolbox." in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            gen_cmd;
            eval_cmd;
            view_cmd;
            maintain_cmd;
            answer_cmd;
            serve_cmd;
            bench_serve_cmd;
            workload_cmd;
            fuzz_cmd;
            difftest_cmd;
          ]))
