type handle = int

(* Arena behaviour is observable like every operator: [interned] counts
   fresh handles, [hits] intern calls resolved by lookup, [bytes] the
   approximate flat-array footprint of the interned data. *)
let obs = Obs.Scope.v "dewey.arena"
let c_interned = Obs.Scope.counter obs "interned"
let c_hits = Obs.Scope.counter obs "hits"
let c_bytes = Obs.Scope.counter obs "bytes"

module Dewey_tbl = Hashtbl.Make (struct
  type t = Dewey.t

  let equal = Dewey.equal
  let hash = Dewey.hash
end)

(* Struct-of-arrays: one slot per handle in each side array; the last
   step's ordinal digits live as a slice of [pack]. Everything before
   [n] (resp. [pack_len]) is immutable once written, so concurrent
   readers are safe while only the main domain appends. *)
type t = {
  mutable pack : int array; (* concatenated last-step ordinals *)
  mutable pack_len : int;
  mutable off : int array; (* handle -> start of its ordinal slice *)
  mutable nord : int array; (* handle -> ordinal digit count *)
  mutable par : int array; (* handle -> parent handle, -1 for roots *)
  mutable dep : int array; (* handle -> depth, >= 1 *)
  mutable lab : int array; (* handle -> label code *)
  mutable boxed : Dewey.t array; (* handle -> canonical boxed id *)
  mutable n : int;
  index : handle Dewey_tbl.t;
}

let create () =
  {
    pack = [||];
    pack_len = 0;
    off = [||];
    nord = [||];
    par = [||];
    dep = [||];
    lab = [||];
    boxed = [||];
    n = 0;
    index = Dewey_tbl.create 4096;
  }

let size t = t.n

let grow_int arr len need =
  if need <= Array.length arr then arr
  else begin
    let cap = max need (max 64 (2 * Array.length arr)) in
    let arr' = Array.make cap 0 in
    Array.blit arr 0 arr' 0 len;
    arr'
  end

let dummy_id : Dewey.t = Dewey.root ~lab:0

let add t (id : Dewey.t) ph =
  let steps = (id :> Dewey.step array) in
  let last = steps.(Array.length steps - 1) in
  let no = Array.length last.Dewey.ord in
  t.pack <- grow_int t.pack t.pack_len (t.pack_len + no);
  Array.blit last.Dewey.ord 0 t.pack t.pack_len no;
  let h = t.n in
  let need = h + 1 in
  t.off <- grow_int t.off h need;
  t.nord <- grow_int t.nord h need;
  t.par <- grow_int t.par h need;
  t.dep <- grow_int t.dep h need;
  t.lab <- grow_int t.lab h need;
  if need > Array.length t.boxed then begin
    let cap = max need (max 64 (2 * Array.length t.boxed)) in
    let b = Array.make cap dummy_id in
    Array.blit t.boxed 0 b 0 h;
    t.boxed <- b
  end;
  t.off.(h) <- t.pack_len;
  t.nord.(h) <- no;
  t.par.(h) <- ph;
  t.dep.(h) <- Array.length steps;
  t.lab.(h) <- last.Dewey.lab;
  t.boxed.(h) <- id;
  t.pack_len <- t.pack_len + no;
  t.n <- h + 1;
  Dewey_tbl.replace t.index id h;
  if Obs.enabled () then begin
    Obs.Counter.incr c_interned;
    (* Ordinal slice plus the six per-handle side slots, in bytes. *)
    Obs.Counter.add c_bytes ((no + 6) * (Sys.word_size / 8))
  end;
  h

let rec intern_new t id =
  match Dewey_tbl.find_opt t.index id with
  | Some h -> h
  | None ->
    let ph = match Dewey.parent id with None -> -1 | Some p -> intern_new t p in
    add t id ph

let intern t id =
  match Dewey_tbl.find_opt t.index id with
  | Some h ->
    Obs.Counter.incr c_hits;
    h
  | None ->
    (* Same contract as [Store.commit]: child domains read the arena
       under the guarantee that nobody writes it concurrently, so a
       miss-driven insertion is a main-domain-only operation. *)
    if not (Domain.is_main_domain ()) then
      invalid_arg "Dewey_arena.intern: new identifier off the main domain";
    intern_new t id

let find t id = Dewey_tbl.find_opt t.index id
let to_dewey t h = t.boxed.(h)
let depth t h = t.dep.(h)
let label t h = t.lab.(h)
let parent t h = t.par.(h)

let ancestor_at t h d =
  let x = ref h in
  while t.dep.(!x) > d do
    x := t.par.(!x)
  done;
  !x

(* Compare the last steps of two handles at equal depth: ordinal digits
   lexicographically, a strict digit-prefix first, then the label —
   exactly [Dewey.compare]'s per-step rule, over the flat buffers. *)
let step_compare t x y =
  let p = t.pack in
  let ox = t.off.(x) and nx = t.nord.(x) in
  let oy = t.off.(y) and ny = t.nord.(y) in
  let m = if nx < ny then nx else ny in
  let rec go j =
    if j >= m then
      if nx <> ny then (if nx < ny then -1 else 1)
      else begin
        let la = t.lab.(x) and lb = t.lab.(y) in
        if la < lb then -1 else if la > lb then 1 else 0
      end
    else
      let a = Array.unsafe_get p (ox + j) and b = Array.unsafe_get p (oy + j) in
      if a < b then -1 else if a > b then 1 else go (j + 1)
  in
  go 0

(* Document order without touching boxed steps: lift the deeper handle
   to the shallower one's depth; identical handles there mean an
   ancestor relation (ancestors sort first), otherwise walk both up in
   lockstep to the first diverging step and compare it. *)
let compare t a b =
  if a = b then 0
  else begin
    let da = t.dep.(a) and db = t.dep.(b) in
    let m = if da < db then da else db in
    let a' = ancestor_at t a m and b' = ancestor_at t b m in
    if a' = b' then (if da < db then -1 else 1)
    else begin
      let x = ref a' and y = ref b' in
      while t.par.(!x) <> t.par.(!y) do
        x := t.par.(!x);
        y := t.par.(!y)
      done;
      step_compare t !x !y
    end
  end

let is_prefix t a d = t.dep.(a) <= t.dep.(d) && ancestor_at t d t.dep.(a) = a
let is_ancestor t a d = t.dep.(a) < t.dep.(d) && ancestor_at t d t.dep.(a) = a
let is_parent t p c = t.par.(c) = p
