type step = { lab : int; ord : int array }
type t = step array

module Ord = struct
  type o = int array

  let first = [| 1 |]
  let after o = [| o.(0) + 1 |]
  let before o = [| o.(0) - 1 |]

  let compare a b =
    let la = Array.length a and lb = Array.length b in
    let rec go i =
      if i >= la && i >= lb then 0
      else if i >= la then -1
      else if i >= lb then 1
      else
        let c = Stdlib.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

  (* An ordinal strictly between [a] and [b] always exists: either there is
     room at the first diverging component, or we extend [a] (extensions of
     [a] sort after [a] and, sharing [a]'s diverging component, before
     [b]). *)
  let between a b =
    if compare a b >= 0 then invalid_arg "Dewey.Ord.between: a >= b";
    let la = Array.length a in
    let rec go i =
      if i >= la then
        (* [a] is a strict prefix of [b]. *)
        Array.append a [| b.(i) - 1; 1 |]
      else if a.(i) < b.(i) then
        if b.(i) - a.(i) >= 2 then Array.append (Array.sub a 0 i) [| a.(i) + 1 |]
        else Array.append a [| 1 |]
      else go (i + 1)
    in
    go 0
end

let of_steps steps =
  if Array.length steps = 0 then invalid_arg "Dewey.of_steps: empty";
  steps

let root ~lab = [| { lab; ord = Ord.first } |]
let child parent ~lab ~ord = Array.append parent [| { lab; ord } |]
let depth t = Array.length t
let label t = t.(Array.length t - 1).lab
let label_path t = Array.map (fun s -> s.lab) t
let last_ord t = t.(Array.length t - 1).ord

let parent t =
  let n = Array.length t in
  if n <= 1 then None else Some (Array.sub t 0 (n - 1))

let ancestors t =
  let n = Array.length t in
  let rec go i acc = if i = 0 then acc else go (i - 1) (Array.sub t 0 i :: acc) in
  go (n - 1) []

let has_ancestor_label ?(self = false) t ~lab =
  let n = Array.length t in
  let stop = if self then n else n - 1 in
  let rec go i = i < stop && (t.(i).lab = lab || go (i + 1)) in
  go 0

(* [a.ord = b.ord] would be a generic structural-equality call on every
   step; ordinals sit on the hot path of every structural predicate, so
   compare them as int arrays directly. *)
let ord_equal (a : int array) (b : int array) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let step_equal a b = a.lab = b.lab && ord_equal a.ord b.ord

(* Document-order comparison is the single hottest operation in the
   system (sorting relations, merge joins, region spans), so the step
   and ordinal loops are fused into one with direct int comparisons. *)
let compare (a : t) (b : t) =
  if a == b then 0
  else begin
    let la = Array.length a and lb = Array.length b in
    let n = if la < lb then la else lb in
    let rec go i =
      if i >= n then Stdlib.compare (la : int) lb
      else begin
        let sa = Array.unsafe_get a i and sb = Array.unsafe_get b i in
        let oa = sa.ord and ob = sb.ord in
        let loa = Array.length oa and lob = Array.length ob in
        let m = if loa < lob then loa else lob in
        let rec gord j =
          if j >= m then
            if loa <> lob then (if loa < lob then -1 else 1)
            else if sa.lab <> sb.lab then (if sa.lab < sb.lab then -1 else 1)
            else go (i + 1)
          else
            let x = Array.unsafe_get oa j and y = Array.unsafe_get ob j in
            if x < y then -1 else if x > y then 1 else gord (j + 1)
        in
        gord 0
      end
    in
    go 0
  end

let equal a b = Array.length a = Array.length b && Array.for_all2 step_equal a b

let prefix_hash t k =
  let h = ref 17 in
  for i = 0 to k - 1 do
    let s = t.(i) in
    h := (!h * 31) + s.lab;
    for j = 0 to Array.length s.ord - 1 do
      h := (!h * 31) + s.ord.(j)
    done
  done;
  !h

let hash t = prefix_hash t (Array.length t)

let prefix_equal a ka b kb =
  ka = kb
  &&
  let rec go i = i >= ka || (step_equal a.(i) b.(i) && go (i + 1)) in
  go 0

let is_prefix a d =
  a == d
  ||
  let la = Array.length a in
  la <= Array.length d
  &&
  let rec go i =
    i >= la
    ||
    let sa = Array.unsafe_get a i and sd = Array.unsafe_get d i in
    sa.lab = sd.lab && ord_equal sa.ord sd.ord && go (i + 1)
  in
  go 0

let is_parent p c = Array.length c = Array.length p + 1 && is_prefix p c
let is_ancestor a d = Array.length a < Array.length d && is_prefix a d
let is_ancestor_or_self a d = Array.length a <= Array.length d && is_prefix a d

(* Zig-zag varint codec. *)

let add_varint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let zigzag v = (v lsl 1) lxor (v asr (Sys.int_size - 1))
let unzigzag v = (v lsr 1) lxor (-(v land 1))

let encode t =
  let buf = Buffer.create (Array.length t * 4) in
  add_varint buf (Array.length t);
  Array.iter
    (fun s ->
      add_varint buf s.lab;
      add_varint buf (Array.length s.ord);
      Array.iter (fun o -> add_varint buf (zigzag o)) s.ord)
    t;
  Buffer.contents buf

let decode s =
  let pos = ref 0 in
  (* Bounded at 9 bytes: 8 × 7 payload bits plus a final byte limited to
     bits 56–61, so [lsl] stays within the defined range for a 63-bit
     int and overlong encodings fail instead of decoding garbage. *)
  let read_varint () =
    let v = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      if !pos >= String.length s then invalid_arg "Dewey.decode: truncated";
      let byte = Char.code s.[!pos] in
      incr pos;
      if !shift = 56 then begin
        if byte land 0xc0 <> 0 then invalid_arg "Dewey.decode: varint overflow";
        v := !v lor (byte lsl 56);
        continue := false
      end
      else begin
        v := !v lor ((byte land 0x7f) lsl !shift);
        shift := !shift + 7;
        if byte land 0x80 = 0 then continue := false
      end
    done;
    !v
  in
  (* Every step/ordinal costs at least one byte, so a declared count
     larger than the bytes left is corrupt — checked before Array.init
     can allocate from an attacker-controlled length. *)
  let check_count what n =
    if n > String.length s - !pos then
      invalid_arg (Printf.sprintf "Dewey.decode: %s count exceeds input" what)
  in
  let nsteps = read_varint () in
  if nsteps = 0 then invalid_arg "Dewey.decode: empty";
  check_count "step" nsteps;
  let steps =
    Array.init nsteps (fun _ ->
        let lab = read_varint () in
        let nord = read_varint () in
        check_count "ordinal" nord;
        let ord = Array.init nord (fun _ -> unzigzag (read_varint ())) in
        { lab; ord })
  in
  if !pos <> String.length s then invalid_arg "Dewey.decode: trailing bytes";
  steps

let to_string ?dict t =
  let step_str s =
    let lab =
      match dict with Some d -> Label_dict.label d s.lab | None -> string_of_int s.lab
    in
    let ord =
      String.concat "_" (Array.to_list (Array.map string_of_int s.ord))
    in
    lab ^ ord
  in
  String.concat "." (Array.to_list (Array.map step_str t))
