(** Intern arena for Dewey identifiers.

    Every distinct identifier interned into an arena gets a dense [int]
    {e handle}; the arena stores, per handle, the last step of the
    identifier packed into one growable flat [int] buffer plus flat int
    side-arrays (ordinal offset/length, parent handle, label code,
    depth). Handles are canonical — two handles of one arena are equal
    iff the identifiers are — so equality is [(=)] on ints, and
    [compare] / [is_prefix] / ancestor navigation are branchy int
    arithmetic over contiguous arrays with no allocation.

    Ancestor closure invariant: interning an identifier interns all its
    step-prefixes, so {!parent} always yields a valid handle (or [-1]
    for roots) and lifting a handle to any ancestor depth stays inside
    the arena.

    Concurrency contract (matching [Store]'s read-only parallel fan-out):
    {!intern} may add to the arena only on the main domain; calling it
    off the main domain is allowed only when the identifier is already
    present (a pure lookup). All other operations are read-only. *)

type t

(** Dense handle. Valid handles are [0 .. size arena - 1]. *)
type handle = int

val create : unit -> t

(** Number of interned identifiers (= smallest invalid handle). *)
val size : t -> int

(** [intern a id] is the canonical handle of [id], interning [id] and
    all its ancestors on first sight.
    @raise Invalid_argument when [id] is not yet interned and the caller
    is not the main domain. *)
val intern : t -> Dewey.t -> handle

(** Pure lookup; never mutates, safe from any domain. *)
val find : t -> Dewey.t -> handle option

(** [to_dewey a h] is the boxed identifier of [h] (O(1), cached). *)
val to_dewey : t -> handle -> Dewey.t

val depth : t -> handle -> int

(** Label code of the node itself. *)
val label : t -> handle -> int

(** Parent handle, [-1] for roots. *)
val parent : t -> handle -> handle

(** [ancestor_at a h d] is the ancestor-or-self of [h] at depth [d];
    requires [1 <= d <= depth a h]. *)
val ancestor_at : t -> handle -> int -> handle

(** Document order; agrees with [Dewey.compare] on {!to_dewey}. *)
val compare : t -> handle -> handle -> int

(** [is_prefix a h d]: [h] is an ancestor-or-self of [d]. *)
val is_prefix : t -> handle -> handle -> bool

val is_ancestor : t -> handle -> handle -> bool
val is_parent : t -> handle -> handle -> bool
