type placement = Into | Before | After

type t =
  | Delete of Xpath.path
  | Insert of {
      target : Xpath.path;
      forest : Xml_tree.node -> Xml_tree.node list;
      placement : placement;
      template : Xml_tree.node list option;
    }
  | Replace_value of { target : Xpath.path; text : string }

let delete s = Delete (Xpath.parse s)

let insert_at placement path fragment =
  let target = Xpath.parse path in
  let template = Xml_parse.fragment fragment in
  Insert
    {
      target;
      forest = (fun _ -> List.map Xml_tree.copy template);
      placement;
      template = Some template;
    }

let insert ~into fragment = insert_at Into into fragment
let insert_before ~target fragment = insert_at Before target fragment
let insert_after ~target fragment = insert_at After target fragment

let insert_forest ~into forest =
  Insert { target = into; forest; placement = Into; template = None }

let replace_value ~target text = Replace_value { target = Xpath.parse target; text }

let parse s =
  let s = String.trim s in
  let prefix p =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  let after p = String.trim (String.sub s (String.length p) (String.length s - String.length p)) in
  let split_on_fragment what rest =
    match String.index_opt rest '<' with
    | None -> invalid_arg (Printf.sprintf "Update.parse: missing fragment in %s" what)
    | Some i ->
      (String.trim (String.sub rest 0 i), String.sub rest i (String.length rest - i))
  in
  if prefix "delete" then delete (after "delete")
  else if prefix "insert into" then begin
    let path, frag = split_on_fragment "'insert into'" (after "insert into") in
    insert ~into:path frag
  end
  else if prefix "insert before" then begin
    let path, frag = split_on_fragment "'insert before'" (after "insert before") in
    insert_before ~target:path frag
  end
  else if prefix "insert after" then begin
    let path, frag = split_on_fragment "'insert after'" (after "insert after") in
    insert_after ~target:path frag
  end
  else if prefix "replace value of" then begin
    (* replace value of PATH with TEXT — the text is an OCaml-escaped,
       quoted string literal (the exact rendering of [to_string]). Split
       at the rightmost quote-opening separator so paths containing the
       word with inside a value predicate cannot confuse the scan. *)
    let rest = after "replace value of" in
    let sep = " with \"" in
    let sep_len = String.length sep in
    let rec find_last i best =
      if i + sep_len > String.length rest then best
      else if String.sub rest i sep_len = sep then find_last (i + 1) (Some i)
      else find_last (i + 1) best
    in
    match find_last 0 None with
    | None -> invalid_arg "Update.parse: expected 'with \"TEXT\"' in replace"
    | Some i ->
      let path = String.trim (String.sub rest 0 i) in
      let lit = String.sub rest (i + 6) (String.length rest - i - 6) in
      let text =
        try Scanf.sscanf lit "%S%!" (fun s -> s)
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          invalid_arg "Update.parse: malformed string literal in replace"
      in
      replace_value ~target:path text
  end
  else if prefix "for" then begin
    (* The statement form of Section 2.3:
       for $x in PATH insert FRAGMENT [into $x] *)
    let rest = after "for" in
    match String.index_opt rest ' ' with
    | None -> invalid_arg "Update.parse: malformed for clause"
    | Some i ->
      let _var = String.sub rest 0 i in
      let rest = String.trim (String.sub rest i (String.length rest - i)) in
      if not (prefix "for" || String.length rest > 3 && String.sub rest 0 3 = "in ") then
        invalid_arg "Update.parse: expected 'in' after the variable";
      let rest = String.trim (String.sub rest 2 (String.length rest - 2)) in
      let insert_kw = " insert " in
      let rec find_kw i =
        if i + String.length insert_kw > String.length rest then
          invalid_arg "Update.parse: expected 'insert' in for clause"
        else if String.sub rest i (String.length insert_kw) = insert_kw then i
        else find_kw (i + 1)
      in
      let k = find_kw 0 in
      let path = String.trim (String.sub rest 0 k) in
      let tail = String.sub rest (k + String.length insert_kw) (String.length rest - k - String.length insert_kw) in
      let _, frag = split_on_fragment "'for … insert'" tail in
      (* A trailing "into $x" after the fragment is implied and ignored. *)
      let frag =
        match String.rindex_opt frag '>' with
        | Some j -> String.sub frag 0 (j + 1)
        | None -> frag
      in
      insert ~into:path frag
  end
  else
    invalid_arg
      "Update.parse: expected 'delete …', 'insert into|before|after …', \
       'replace value of … with \"…\"' or 'for … insert …'"

let to_string = function
  | Delete p -> "delete " ^ Xpath.to_string p
  | Replace_value { target; text } ->
    Printf.sprintf "replace value of %s with %S" (Xpath.to_string target) text
  | Insert { target; placement; template; _ } ->
    let mode =
      match placement with Into -> "into" | Before -> "before" | After -> "after"
    in
    let frag =
      match template with
      | Some nodes -> String.concat "" (List.map Xml_tree.serialize nodes)
      | None -> "<...>"
    in
    Printf.sprintf "insert %s %s %s" mode (Xpath.to_string target) frag

let journalable = function
  | Delete _ | Replace_value _ -> true
  | Insert { template; _ } -> template <> None

let targets store u =
  let path =
    match u with
    | Delete p -> p
    | Insert { target; _ } | Replace_value { target; _ } -> target
  in
  (* After a root deletion the store's tree handle dangles; only live
     (still indexed) nodes are valid targets. *)
  List.filter (Store.mem store) (Xpath.eval (Store.root store) path)

type applied_insert = { pairs : (Dewey.t * Xml_tree.node list) list }

type applied_delete = {
  roots : Dewey.t list;
  root_nodes : Xml_tree.node list;
  deleted : (Dewey.t * Xml_tree.node) list Lazy.t;
}

let apply_insert store u ~targets =
  let forest, placement =
    match u with
    | Insert { forest; placement; _ } -> (forest, placement)
    | Delete _ | Replace_value _ -> invalid_arg "Update.apply_insert: not an insertion"
  in
  let pairs =
    List.filter_map
      (fun target ->
        (* The pair records the node whose content changes: the target for
           into-insertions, its parent for sibling insertions. A sibling
           insertion at the document root is a no-op (no siblings). *)
        match placement with
        | Into ->
          let copies = forest target in
          Store.attach store ~parent:target copies;
          Some (Store.id_of store target, copies)
        | Before | After -> (
          match target.Xml_tree.parent with
          | None -> None
          | Some parent ->
            let copies = forest target in
            let where = match placement with Before -> `Before | _ -> `After in
            Store.attach_beside store ~sibling:target ~where copies;
            Some (Store.id_of store parent, copies)))
      targets
  in
  { pairs }

let apply_insert_at store ~target forest =
  Store.attach store ~parent:target forest;
  { pairs = [ (Store.id_of store target, forest) ] }

let apply_replace store ~text ~targets =
  let text_children =
    List.concat_map
      (fun target ->
        List.filter
          (fun c -> c.Xml_tree.kind = Xml_tree.Text)
          target.Xml_tree.children)
      targets
  in
  let pairs =
    List.map
      (fun target ->
        let fresh = if text = "" then [] else [ Xml_tree.text text ] in
        (Store.id_of store target, fresh))
      targets
  in
  (* Detach the old text, then attach the replacement. *)
  let roots = List.map (Store.id_of store) text_children in
  List.iter (Store.detach store) text_children;
  let deleted = lazy (List.map2 (fun id n -> (id, n)) roots text_children) in
  List.iter2
    (fun target (_, fresh) -> if fresh <> [] then Store.attach store ~parent:target fresh)
    targets pairs;
  ({ roots; root_nodes = text_children; deleted }, { pairs })

let apply_delete store ~targets =
  (* Skip targets nested below an earlier target: detaching the ancestor
     already removes them, and their nodes must be collected only once. *)
  let picked = Hashtbl.create 16 in
  let root_nodes = ref [] in
  List.iter
    (fun target ->
      let rec inside n =
        Hashtbl.mem picked n.Xml_tree.serial
        || match n.Xml_tree.parent with None -> false | Some p -> inside p
      in
      if not (inside target) then begin
        Hashtbl.replace picked target.Xml_tree.serial ();
        root_nodes := target :: !root_nodes
      end)
    targets;
  let root_nodes = List.rev !root_nodes in
  let roots = List.map (Store.id_of store) root_nodes in
  List.iter (Store.detach store) root_nodes;
  (* Identifiers inside detached subtrees resolve until the commit, so the
     full enumeration can run lazily, during Δ⁻ computation. *)
  let deleted =
    lazy
      (List.concat_map
         (fun root ->
           List.map (fun n -> (Store.id_of store n, n)) (Xml_tree.descendants_or_self root))
         root_nodes)
  in
  { roots; root_nodes; deleted }
