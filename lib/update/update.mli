(** Statement-level XML updates (Section 2.3):

    - [delete q] — remove every node returned by [q] (with its subtree);
    - [for $x in q insert xml into $x] — append a copy of the forest [xml]
      as last children of every node returned by [q]; the forest may be a
      function of the target to cover the general [insert q2 into q1]
      form.

    Applying an update is split into target location, pending-update-list
    construction, and side-effecting application on the store, so that the
    view-maintenance code can time and interleave these phases exactly as
    in the paper. *)

(** Where an insertion lands relative to its target: as last children
    ([Into], the paper's statement form), or as preceding/following
    siblings ([Before] / [After], the XQuery Update extension enabled by
    the dynamic ordinals — no existing ID is relabeled). *)
type placement = Into | Before | After

type t =
  | Delete of Xpath.path
  | Insert of {
      target : Xpath.path;
      forest : Xml_tree.node -> Xml_tree.node list;
      placement : placement;
      template : Xml_tree.node list option;
          (** The parsed fragment behind [forest] when the insertion was
              built from text ([insert]/[insert_before]/[insert_after]/
              [parse]); [None] for the opaque [insert_forest] form. A
              [Some] template makes the statement journalable: [to_string]
              round-trips through [parse]. *)
    }
  | Replace_value of { target : Xpath.path; text : string }
      (** XQuery Update's [replace value of node q with "text"]: every
          target's text children are removed and one fresh text node is
          appended (after any element children). Node identity is
          untouched (IDs never change), so views see it as a deletion
          followed by an insertion. *)

(** {1 Constructors} *)

(** [delete path] parses [path] and builds a deletion.
    @raise Xpath.Parse_error on a malformed path. *)
val delete : string -> t

(** [insert ~into fragment] parses both arguments; the forest is constant.
    @raise Xpath.Parse_error / @raise Xml_parse.Parse_error accordingly. *)
val insert : into:string -> string -> t

(** [insert_before ~target fragment] / [insert_after ~target fragment] —
    sibling insertions at every node returned by [target]. *)
val insert_before : target:string -> string -> t

val insert_after : target:string -> string -> t

val insert_forest : into:Xpath.path -> (Xml_tree.node -> Xml_tree.node list) -> t

(** [replace_value ~target text] parses [target].
    @raise Xpath.Parse_error on a malformed path. *)
val replace_value : target:string -> string -> t

(** [parse s] accepts the textual forms ["delete PATH"],
    ["insert into|before|after PATH FRAGMENT"],
    ["replace value of PATH with \"TEXT\""] (TEXT an OCaml-escaped string
    literal) and ["for $x in PATH insert FRAGMENT [into $x]"] (the
    statement shape of Section 2.3; the trailing [into $x] is implied).
    @raise Invalid_argument on other shapes. *)
val parse : string -> t

(** [to_string u] renders the statement back to [parse]d syntax. For every
    [journalable] statement the round trip is faithful:
    [parse (to_string u)] applies identically to [u] — the property the
    write-ahead log relies on. Opaque [insert_forest] statements render
    their fragment as ["<...>"], which [parse] rejects. *)
val to_string : t -> string

(** [journalable u] is [true] iff [to_string u] round-trips through
    [parse] — every statement except the opaque [insert_forest] form. *)
val journalable : t -> bool

(** {1 Phased application} *)

(** [targets store u] evaluates the update's target path — the "find
    target nodes" phase. *)
val targets : Store.t -> t -> Xml_tree.node list

(** Result of applying an insertion: for every target, the identifier of
    the node whose {e content} changed (the target itself for [Into], its
    parent for sibling placements) and the freshly attached forest roots
    (carrying their new identifiers). *)
type applied_insert = { pairs : (Dewey.t * Xml_tree.node list) list }

(** Result of applying a deletion: the detached subtree roots, plus all
    deleted nodes (descendants included) with their identifiers. The full
    enumeration is lazy — detached subtrees stay internally resolvable
    until the store commits — so its cost lands where the paper puts it:
    in the Δ⁻-table computation, not in the document update. *)
type applied_delete = {
  roots : Dewey.t list;
  root_nodes : Xml_tree.node list;
  deleted : (Dewey.t * Xml_tree.node) list Lazy.t;
}

(** [apply_insert store u ~targets] copies and attaches the forest under
    every target; canonical relations are staged, not committed. *)
val apply_insert : Store.t -> t -> targets:Xml_tree.node list -> applied_insert

(** [apply_delete store ~targets] detaches every target subtree (nested
    targets are handled once); staged, not committed. *)
val apply_delete : Store.t -> targets:Xml_tree.node list -> applied_delete

(** [apply_insert_at store ~target forest] attaches the given (detached)
    trees as last children of [target] — the atomic [ins↘] operation used
    by the pending-update-list machinery. The forest nodes are attached as
    is, not copied. *)
val apply_insert_at :
  Store.t -> target:Xml_tree.node -> Xml_tree.node list -> applied_insert

(** [apply_replace store ~text ~targets] detaches every target's text
    children and attaches one fresh text node (none when [text] is
    empty); returns the two halves of the composite update. Every target
    appears in the insertion pairs even when nothing was attached, so
    payload refreshing covers it. *)
val apply_replace :
  Store.t -> text:string -> targets:Xml_tree.node list ->
  applied_delete * applied_insert
