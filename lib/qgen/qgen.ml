(* Shared substrate of the randomized harnesses: seeded-RNG helpers,
   the bounded failure recorder, and the canonical-tree generator that
   Fuzz_oracle and Difftest both draw their documents from. *)

(* {1 Reports} *)

type report = {
  iterations : int;
  failed : int;
  failures : string list;
}

let max_reported = 5

let ok r = r.failed = 0

let summary label r =
  if ok r then Printf.sprintf "%s: %d/%d ok" label r.iterations r.iterations
  else
    Printf.sprintf "%s: %d/%d FAILED\n%s" label r.failed r.iterations
      (String.concat "\n" (List.map (fun f -> "  " ^ f) r.failures))

type recorder = { mutable n : int; mutable msgs : string list }

let fresh_recorder () = { n = 0; msgs = [] }

let record rc msg =
  rc.n <- rc.n + 1;
  if rc.n <= max_reported then rc.msgs <- msg :: rc.msgs

let report_of rc ~iterations =
  { iterations; failed = rc.n; failures = List.rev rc.msgs }

(* {1 RNG helpers} *)

let pick rnd arr = arr.(Random.State.int rnd (Array.length arr))

let abbrev s =
  if String.length s <= 160 then s else String.sub s 0 160 ^ "…"

(* {1 Canonical trees} *)

type profile = {
  labels : string array;
  attr_names : string array;
  text_pieces : string array;
}

(* Every text piece is non-blank, so any concatenation survives the
   parser's whitespace-only-text dropping. The ingestion pieces cover
   the escaping-critical alphabet: markup characters, both quote kinds,
   "]]>" (CDATA-worthy), a CDATA opener as plain text, and 2/3/4-byte
   UTF-8 sequences. *)
let ingestion =
  {
    labels = [| "a"; "site"; "item-x"; "n.s"; "long_name2"; "B"; "p:q" |];
    attr_names = [| "k"; "id"; "data-v"; "x.y" |];
    text_pieces =
      [|
        "x"; "hello world"; "<&>"; "\"q\" & 'a'"; "]]>"; "a]]>b"; "<![CDATA[";
        "\xC3\xA9t\xC3\xA9"; "\xE2\x98\x83"; "\xF0\x9D\x84\x9E"; "tab\there";
        "line\nbreak"; "1 < 2 && 3 > 2"; "--"; "?>";
      |];
  }

(* Small pools so that random tree patterns actually match random
   documents; the words double as value-predicate constants. No quotes
   in any piece: the compact view syntax delimits predicate constants
   with single quotes, and reproducer command lines shell-quote more
   readably without them. *)
let plain =
  {
    labels = [| "a"; "b"; "c"; "d"; "e" |];
    attr_names = [| "k"; "id" |];
    text_pieces = [| "x"; "y"; "z"; "w" |];
  }

let gen_text profile rnd =
  let n = 1 + Random.State.int rnd 3 in
  let b = Buffer.create 16 in
  for _ = 1 to n do
    if Buffer.length b > 0 then Buffer.add_char b ' ';
    Buffer.add_string b (pick rnd profile.text_pieces)
  done;
  Buffer.contents b

let gen_attrs profile rnd =
  let pool = profile.attr_names in
  let n = Random.State.int rnd (Array.length pool + 1) in
  (* Distinct names: walk a rotated copy of the pool. *)
  let start = Random.State.int rnd (Array.length pool) in
  List.init n (fun i ->
      let name = pool.((start + i) mod Array.length pool) in
      Xml_tree.attribute name (gen_text profile rnd))

let rec gen_element profile rnd depth =
  let attrs = gen_attrs profile rnd in
  let n_items = Random.State.int rnd (if depth = 0 then 2 else 5) in
  let items = ref [] and last_text = ref false in
  for _ = 1 to n_items do
    if depth > 0 && (!last_text || Random.State.bool rnd) then begin
      items := gen_element profile rnd (depth - 1) :: !items;
      last_text := false
    end
    else if not !last_text then begin
      items := Xml_tree.text (gen_text profile rnd) :: !items;
      last_text := true
    end
  done;
  Xml_tree.element ~children:(attrs @ List.rev !items) (pick rnd profile.labels)

let random_document ?(profile = ingestion) rnd =
  gen_element profile rnd (1 + Random.State.int rnd 3)

(* Zipf draw over 0..n-1: P(i) ∝ 1/(i+1)^alpha. O(n) inversion — the
   pools here are tiny. *)
let zipf rnd ~alpha ~n =
  let w i = 1. /. Float.pow (float_of_int (i + 1)) alpha in
  let total = ref 0. in
  for i = 0 to n - 1 do
    total := !total +. w i
  done;
  let u = Random.State.float rnd !total in
  let acc = ref 0. and chosen = ref (n - 1) and i = ref 0 in
  while !i < n && !chosen = n - 1 do
    acc := !acc +. w !i;
    if u < !acc && !chosen = n - 1 then chosen := !i;
    incr i
  done;
  !chosen

(* A canonical tree with a skewed label law: labels are drawn Zipfian
   (hot-label concentration) and some nodes grow a large run of
   same-label children (extreme sibling fan-out) — the degenerate
   shapes the heavy-light classifier must handle. Stays canonical: the
   fan-out runs are element-only, so no adjacent text siblings. *)
let skewed_document ?(profile = plain) rnd =
  let hot_label () = profile.labels.(zipf rnd ~alpha:1.3 ~n:(Array.length profile.labels)) in
  let hot_leaf () =
    Xml_tree.element
      ~children:[ Xml_tree.text (gen_text profile rnd) ]
      (hot_label ())
  in
  let rec build depth =
    let base = gen_element profile rnd depth in
    if Random.State.int rnd 3 = 0 then begin
      (* Graft a fan-out run of 8–40 same-label children. *)
      let lab = hot_label () in
      let n = 8 + Random.State.int rnd 33 in
      let run =
        List.init n (fun _ ->
            if depth > 0 && Random.State.int rnd 8 = 0 then build (depth - 1)
            else
              Xml_tree.element
                ~children:(if Random.State.bool rnd then [ hot_leaf () ] else [])
                lab)
      in
      Xml_tree.element
        ~children:(base :: run)
        (hot_label ())
    end
    else base
  in
  build (1 + Random.State.int rnd 2)
