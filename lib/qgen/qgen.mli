(** Shared substrate of the randomized harnesses ([Fuzz_oracle] and
    [Difftest]): the seeded-RNG helpers, the bounded failure recorder
    both report through, and the canonical-tree generator — so the two
    harnesses draw their documents from one definition of "canonical"
    and cannot drift apart.

    Trees are generated {e canonical} — attributes before content, no
    adjacent text siblings, no whitespace-only text — because those are
    exactly the invariants the parser normalizes to; on canonical trees
    [parse ∘ serialize] must be the identity node-for-node, and two
    stores built from a tree and its reparse index the same nodes. *)

(** {1 Reports}

    The shape every randomized harness reports in: how many inputs ran,
    how many failed, and the first few failure descriptions. *)

type report = {
  iterations : int;
  failed : int;
  failures : string list;  (** capped at {!max_reported} *)
}

val max_reported : int

val ok : report -> bool

(** [summary label r] — one line when green, failure details otherwise. *)
val summary : string -> report -> string

(** A mutable failure accumulator feeding {!report_of}. *)
type recorder

val fresh_recorder : unit -> recorder
val record : recorder -> string -> unit
val report_of : recorder -> iterations:int -> report

(** {1 RNG helpers} *)

(** [pick rnd arr] — uniform draw from a non-empty array. *)
val pick : Random.State.t -> 'a array -> 'a

(** [abbrev s] truncates long strings for failure messages. *)
val abbrev : string -> string

(** {1 Canonical trees}

    A profile fixes the vocabulary a generated tree draws from. The
    {!ingestion} profile stresses the parser (exotic names,
    escaping-critical text, multi-byte UTF-8); the {!plain} profile
    uses the small label/word pools the pattern-matching harnesses
    need so that random views actually hit random documents. *)

type profile = {
  labels : string array;
  attr_names : string array;
  text_pieces : string array;
}

val ingestion : profile
val plain : profile

(** [gen_text profile rnd] — 1–3 space-joined pieces (never blank). *)
val gen_text : profile -> Random.State.t -> string

(** [gen_attrs profile rnd] — distinct-named attribute nodes. *)
val gen_attrs : profile -> Random.State.t -> Xml_tree.node list

(** [gen_element profile rnd depth] — one canonical element of the
    given maximum depth. *)
val gen_element : profile -> Random.State.t -> int -> Xml_tree.node

(** [random_document ?profile rnd] — one randomized canonical tree of
    depth 1–4 (default profile: {!ingestion}). *)
val random_document : ?profile:profile -> Random.State.t -> Xml_tree.node

(** [zipf rnd ~alpha ~n] draws [0..n-1] with P(i) ∝ 1/(i+1)^alpha. *)
val zipf : Random.State.t -> alpha:float -> n:int -> int

(** [skewed_document ?profile rnd] — a canonical tree with Zipfian
    label concentration and occasional large same-label sibling runs:
    the degenerate shapes the heavy-light classifier and its
    differential oracle need to exercise (default profile:
    {!plain}). *)
val skewed_document : ?profile:profile -> Random.State.t -> Xml_tree.node
