(* Shared-work batch maintenance helpers: the relevance pre-filter and the
   domain pool used by View_set.update. See batch.mli for the contracts. *)

type update_labels =
  | Labels of Delta.Shared.t
  | Text_only

let touches labels tag =
  match labels with
  | Labels sh ->
    if tag = "*" then Delta.Shared.has_elements sh
    else Delta.Shared.mem_label sh tag
  | Text_only -> tag = "#text"

(* Star views are always considered relevant — maximally conservative and
   cheap to decide; the interesting savings are on exact-tag views. *)
let relevant mv labels =
  let fp = mv.Mview.footprint in
  fp.Mview.fp_star || Array.exists (touches labels) fp.Mview.fp_tags

(* Skip-safety (the argument is spelled out in DESIGN.md): with a disjoint
   footprint every Δ table of the view is empty, so every union term is
   pruned and no embedding is added or removed; no footprint-labeled node
   lies inside a deleted region, so no view entry or snowcap row is
   purged; [cvn = ∅] means no val/cont payload can go stale; and value-
   predicate flips are guarded separately by the caller's watches. *)
let can_skip mv labels =
  Array.length mv.Mview.cvn = 0 && not (relevant mv labels)

(* Round-robin striping: task [i] runs on domain [i mod jobs], stripe 0 on
   the calling (main) domain. Results are reassembled by index and any
   task exception is re-raised (first in stripe order) after every domain
   has been joined, so [jobs] never changes observable behavior — only
   wall-clock. Child domains hand their buffered Obs increments back to
   be merged on the main domain. *)
let parallel_map ~jobs tasks =
  let n = Array.length tasks in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.map (fun f -> f ()) tasks
  else begin
    let run_stripe k =
      let acc = ref [] and exn = ref None and i = ref k in
      while !i < n && !exn = None do
        (match tasks.(!i) () with
        | v -> acc := (!i, v) :: !acc
        | exception e -> exn := Some e);
        i := !i + jobs
      done;
      (!acc, !exn, Obs.Par.drain ())
    in
    let doms =
      Array.init (jobs - 1) (fun d -> Domain.spawn (fun () -> run_stripe (d + 1)))
    in
    let acc0, exn0, _ = run_stripe 0 in
    let results = Array.make n None in
    List.iter (fun (i, v) -> results.(i) <- Some v) acc0;
    let first_exn = ref exn0 in
    Array.iter
      (fun d ->
        let acc, exn, contrib = Domain.join d in
        Obs.Par.merge contrib;
        List.iter (fun (i, v) -> results.(i) <- Some v) acc;
        if !first_exn = None then first_exn := exn)
      doms;
    (match !first_exn with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end
