(* Shared-work batch maintenance helpers: the relevance pre-filter and the
   domain pool used by View_set.update. See batch.mli for the contracts. *)

type update_labels =
  | Labels of Delta.Shared.t
  | Text_only

let touches labels tag =
  match labels with
  | Labels sh ->
    if tag = "*" then Delta.Shared.has_elements sh
    else Delta.Shared.mem_label sh tag
  | Text_only -> tag = "#text"

(* Star views are always considered relevant — maximally conservative and
   cheap to decide; the interesting savings are on exact-tag views. *)
let relevant mv labels =
  let fp = mv.Mview.footprint in
  fp.Mview.fp_star || Array.exists (touches labels) fp.Mview.fp_tags

(* Skip-safety (the argument is spelled out in DESIGN.md): with a disjoint
   footprint every Δ table of the view is empty, so every union term is
   pruned and no embedding is added or removed; no footprint-labeled node
   lies inside a deleted region, so no view entry or snowcap row is
   purged; [cvn = ∅] means no val/cont payload can go stale; and value-
   predicate flips are guarded separately by the caller's watches. *)
let can_skip mv labels =
  Array.length mv.Mview.cvn = 0 && not (relevant mv labels)

(* Heavy-routing test for adaptive maintenance: the update's delta
   enters the view through a heavy label. Exact tags check the delta's
   label map against [heavy]; a star node routes heavy as soon as any
   heavy element label was touched (conservative: the star column would
   scan those entries). Replace-value updates route through the text
   partition only. *)
let routes_heavy ~heavy mv labels =
  match labels with
  | Text_only ->
    heavy "#text"
    && (mv.Mview.footprint.Mview.fp_star
       || Array.exists (( = ) "#text") mv.Mview.footprint.Mview.fp_tags)
  | Labels sh ->
    let fp = mv.Mview.footprint in
    (fp.Mview.fp_star && Delta.Shared.exists_label sh heavy)
    || Array.exists
         (fun tag -> heavy tag && Delta.Shared.mem_label sh tag)
         fp.Mview.fp_tags

(* {2 Reusable domain pool}

   [Domain.spawn] costs hundreds of microseconds — comparable to the
   whole propagation work of a small update batch — so spawning fresh
   domains on every [View_set.update ~jobs] dominated the parallel
   path's latency. Workers are instead spawned once, parked on a
   per-worker mutex/condition, and handed one stripe closure per call;
   completion is signalled through a result cell the caller awaits.
   Stripe assignment, Obs contribution merge order and first-exception
   selection are all by stripe index, exactly as with fresh domains, so
   pooling never changes observable behavior — only wall-clock. *)
module Pool = struct
  (* Beyond this many persistent workers, extra stripes fall back to a
     throwaway [Domain.spawn] (OCaml domains are a bounded resource). *)
  let max_workers = 15

  type worker = {
    mu : Mutex.t;
    cv : Condition.t;
    mutable job : (unit -> unit) option;
    mutable stop : bool;
    mutable busy : bool; (* guarded by [lock], not [mu] *)
  }

  let lock = Mutex.create ()
  let workers : (worker * unit Domain.t) list ref = ref []
  let exit_hook = ref false

  let worker_loop w =
    let running = ref true in
    while !running do
      Mutex.lock w.mu;
      while Option.is_none w.job && not w.stop do
        Condition.wait w.cv w.mu
      done;
      let j = w.job in
      w.job <- None;
      let stopping = w.stop in
      Mutex.unlock w.mu;
      match j with
      | Some job -> job ()
      | None -> if stopping then running := false
    done

  let submit w job =
    Mutex.lock w.mu;
    w.job <- Some job;
    Condition.signal w.cv;
    Mutex.unlock w.mu

  let stop_all () =
    let ws = !workers in
    List.iter
      (fun (w, _) ->
        Mutex.lock w.mu;
        w.stop <- true;
        Condition.signal w.cv;
        Mutex.unlock w.mu)
      ws;
    List.iter (fun (_, d) -> Domain.join d) ws;
    workers := []

  (* Lease [k] workers: idle pooled ones first, growing the pool up to
     [max_workers]; the returned count may fall short, in which case the
     caller covers the remaining stripes with throwaway domains. *)
  let lease k =
    Mutex.lock lock;
    if not !exit_hook then begin
      exit_hook := true;
      at_exit stop_all
    end;
    let leased = ref [] and got = ref 0 in
    List.iter
      (fun (w, _) ->
        if !got < k && not w.busy then begin
          w.busy <- true;
          leased := w :: !leased;
          incr got
        end)
      !workers;
    while !got < k && List.length !workers < max_workers do
      let w =
        {
          mu = Mutex.create ();
          cv = Condition.create ();
          job = None;
          stop = false;
          busy = true;
        }
      in
      let d = Domain.spawn (fun () -> worker_loop w) in
      workers := (w, d) :: !workers;
      leased := w :: !leased;
      incr got
    done;
    Mutex.unlock lock;
    List.rev !leased

  let release ws =
    Mutex.lock lock;
    List.iter (fun w -> w.busy <- false) ws;
    Mutex.unlock lock

  let size () =
    Mutex.lock lock;
    let n = List.length !workers in
    Mutex.unlock lock;
    n
end

(* A one-shot result slot: the worker fills it, the caller awaits it. *)
type 'a cell = {
  c_mu : Mutex.t;
  c_cv : Condition.t;
  mutable c_val : ('a, exn) result option;
}

let cell () = { c_mu = Mutex.create (); c_cv = Condition.create (); c_val = None }

let fill c v =
  Mutex.lock c.c_mu;
  c.c_val <- Some v;
  Condition.signal c.c_cv;
  Mutex.unlock c.c_mu

let await c =
  Mutex.lock c.c_mu;
  while Option.is_none c.c_val do
    Condition.wait c.c_cv c.c_mu
  done;
  let v = c.c_val in
  Mutex.unlock c.c_mu;
  match v with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> assert false

let pool_size = Pool.size

(* Round-robin striping: task [i] runs on stripe [i mod jobs], stripe 0 on
   the calling (main) domain, stripes 1.. on pooled worker domains (plus
   throwaway domains past the pool cap). Results are reassembled by index
   and any task exception is re-raised (first in stripe order) after every
   stripe has been awaited, so [jobs] never changes observable behavior —
   only wall-clock. Worker domains hand their buffered Obs increments back
   to be merged on the main domain, in stripe order. *)
let parallel_map ~jobs tasks =
  let n = Array.length tasks in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.map (fun f -> f ()) tasks
  else begin
    let run_stripe k =
      let acc = ref [] and exn = ref None and i = ref k in
      while !i < n && !exn = None do
        (match tasks.(!i) () with
        | v -> acc := (!i, v) :: !acc
        | exception e -> exn := Some e);
        i := !i + jobs
      done;
      (!acc, !exn, Obs.Par.drain ())
    in
    let leased = Pool.lease (jobs - 1) in
    let pooled = List.length leased in
    let cells = Array.init (jobs - 1) (fun _ -> cell ()) in
    List.iteri
      (fun d w ->
        Pool.submit w (fun () ->
            fill cells.(d)
              (match run_stripe (d + 1) with
              | v -> Ok v
              | exception e -> Error e)))
      leased;
    (* Stripes past the pool capacity run on throwaway domains. *)
    let doms =
      Array.init
        (jobs - 1 - pooled)
        (fun d -> Domain.spawn (fun () -> run_stripe (pooled + d + 1)))
    in
    let acc0, exn0, _ = run_stripe 0 in
    let results = Array.make n None in
    List.iter (fun (i, v) -> results.(i) <- Some v) acc0;
    let first_exn = ref exn0 in
    let absorb (acc, exn, contrib) =
      Obs.Par.merge contrib;
      List.iter (fun (i, v) -> results.(i) <- Some v) acc;
      if !first_exn = None then first_exn := exn
    in
    for d = 0 to pooled - 1 do
      absorb (await cells.(d))
    done;
    Pool.release leased;
    Array.iter (fun d -> absorb (Domain.join d)) doms;
    (match !first_exn with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end
