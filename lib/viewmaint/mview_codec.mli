(** Binary persistence for materialized views — format v2.

    Layout: a 4-byte magic/version tag ["XVM2"], the varint-framed tuple
    stream (derivation counts, Dewey-encoded cell ids, optional val/cont
    payloads), and a CRC-32 footer over everything before it. Auxiliary
    snowcap tables are re-derived at load time from the view policy, so
    views can be shut down and reopened with a store without
    re-evaluating the pattern.

    Robustness contract: {!load} on arbitrary bytes either reconstructs
    a correct view or raises {!Corrupt} — never any other exception.
    Varints are bounded (9 bytes max for a 63-bit int), every declared
    length and entry count is validated against the bytes remaining
    before allocation, and the checksum rejects truncations and
    bit-flips up front. v1 images (magic ["XVM1"]) are rejected with a
    [Corrupt] explaining that the view must be re-saved. *)

(** [save mv] serializes the view contents in format v2. *)
val save : Mview.t -> string

exception Corrupt of string

(** [load ?policy store pat data] reconstructs a materialized view saved
    from an equal pattern over an equally-identified document.
    @raise Corrupt on malformed/corrupted input, an unsupported format
    version, or a pattern/arity mismatch. *)
val load : ?policy:Mview.policy -> Store.t -> Pattern.t -> string -> Mview.t

(** [save_to_file mv path] / [load_from_file ?policy store pat path] —
    file-based convenience wrappers. [save_to_file] writes to
    [path ^ ".tmp"], fsyncs, and atomically renames over [path], so a
    crash mid-save never clobbers the previous good image. *)
val save_to_file : Mview.t -> string -> unit

val load_from_file :
  ?policy:Mview.policy -> Store.t -> Pattern.t -> string -> Mview.t
