(** Δ⁺ / Δ⁻ tables (algorithm CD+ of Section 3.5 and its deletion
    counterpart CD-): for every view node, the inserted (resp. deleted)
    document nodes that match the node's tag and value predicate, in
    document order. Also carries the ID-level context used by the
    data-driven pruning rules (Props 3.6, 3.8 and 4.7). *)

type t = {
  tables : Tuple_table.t array;
      (** indexed by pattern node: single-column table σ_n(Δ_n) *)
  region : Id_region.t;  (** inserted / deleted subtree roots *)
  target_ids : Dewey.t list;
      (** insertion points (parents of new trees) or deletion roots *)
}

(** Shared update-region index: a label → document-ordered entries map
    over the update region, built {e once per applied update} and then
    consumed per view by lookup ({!of_shared}).  The [maint.delta]
    [nodes]/[extractions] counters are charged at build time, so the
    per-update scan work they report is independent of how many views
    consume the index; each consuming view still charges [rows]. *)
module Shared : sig
  type t

  (** One [Xml_tree.iter] pass over the attached forests, one sort by ID,
      one stable group-by-label. *)
  val of_insert : Store.t -> Update.applied_insert -> t

  (** Region-span extraction keyed by label: each relation's slice inside
      the deleted region via binary-searched {!Store.relation_span}s.

      [wanted] narrows the indexed labels to the consuming views' pattern
      tags (["*"] standing for every element label); labels outside it
      are absent from the index and must not be looked up. Default: every
      label in the store. *)
  val of_delete : ?wanted:string list -> Store.t -> Update.applied_delete -> t

  val region : t -> Id_region.t
  val target_ids : t -> Dewey.t list

  val mem_label : t -> string -> bool
  (** The update region contains at least one node with this label
      (["@name"] for attributes, ["#text"] for text). *)

  val has_elements : t -> bool
  (** The update region contains at least one element node — i.e. a [*]
      pattern tag is touched. *)

  val exists_label : t -> (string -> bool) -> bool
  (** Some label in the update region satisfies the predicate. The
      heavy-light router uses it to decide whether a delta touches the
      heavy partition at all. *)

  val label_counts : t -> (string * int) list
  (** Indexed labels with their region entry counts — the unit of the
      heavy-light amortization (deferred delta work) accounting. *)
end

(** [of_shared sh pat] extracts the view-specific Δ tables from the shared
    index: per pattern node, a label lookup plus the view's vpred /
    root-anchor filter.  Equivalent to {!of_insert} / {!of_delete} on the
    same applied update.  Reads only the index (and the nodes it already
    references), so it is safe to call from multiple domains in
    parallel. *)
val of_shared : Shared.t -> Pattern.t -> t

(** [of_insert store pat applied] extracts Δ⁺ from a pending update list
    whose forests are already attached (so every new node has an ID).
    Builds a throwaway {!Shared} index — single-view convenience. *)
val of_insert : Store.t -> Pattern.t -> Update.applied_insert -> t

(** [of_delete store pat applied] extracts Δ⁻ from the snapshot of the
    deleted subtrees. *)
val of_delete : Store.t -> Pattern.t -> Update.applied_delete -> t

(** [nonempty d i]: Δ table of pattern node [i] is non-empty. *)
val nonempty : t -> int -> bool
