type breakdown = {
  mutable find_target : float;
  mutable apply_doc : float;
  mutable compute_delta : float;
  mutable get_expression : float;
  mutable execute : float;
  mutable update_aux : float;
}

let zero () =
  {
    find_target = 0.;
    apply_doc = 0.;
    compute_delta = 0.;
    get_expression = 0.;
    execute = 0.;
    update_aux = 0.;
  }

let maintenance_total b =
  b.find_target +. b.compute_delta +. b.get_expression +. b.execute +. b.update_aux

(* Monotonic read: delegates to the shared observability clock so every
   layer (bench included) derives durations from the same non-decreasing
   source. *)
let now () = Obs.now ()

let duration f =
  let start = now () in
  let result = f () in
  (result, now () -. start)

let timed b setter f =
  let result, elapsed = duration f in
  setter b elapsed;
  result
