(** The paper's update-propagation algorithms.

    Insertions run the combined PINT/PIMT driver (Algorithms 1–4): develop
    the union terms (Proposition 3.12: one per snowcap, plus the all-Δ
    term), prune them with the update semantics and the Δ⁺-driven rules
    (Props 3.3, 3.6, 3.8), evaluate the survivors with structural joins
    (ET-INS), add the resulting embeddings to the view with derivation
    counting, refresh the [val]/[cont] payloads whose nodes gained
    descendants (PIMT), and finally maintain the materialized snowcaps
    bottom-up (Proposition 3.13) and commit the canonical relations.

    Deletions run the combined PDDT/PDMT driver (Algorithms 5–6): the
    deletion expression is evaluated in its derivation-count-exact form —
    for every proper snowcap [S], the term [⋈_{n∈S}(R_n \ Δ⁻_n) ⋈
    ⋈_{n∉S}Δ⁻_n] — pruned by Props 4.2, 4.3 and 4.7; every resulting
    embedding decrements its tuple's derivation count, removing the tuple
    at zero; payloads of surviving ancestors are refreshed (PDMT); snowcap
    tables and relations are purged. *)

type report = {
  timing : Timing.breakdown;
  terms_developed : int;  (** candidate union terms for the view *)
  terms_surviving : int;  (** terms left after data-driven pruning *)
  embeddings_added : int;
  embeddings_removed : int;
  tuples_modified : int;  (** payload refreshes by PIMT / PDMT *)
  fallback_recompute : bool;
      (** [true] when a value-predicate flip forced a full rebuild *)
  skipped_irrelevant : bool;
      (** [true] when the batch engine's relevance pre-filter proved the
          update could not touch this view and skipped propagation *)
}

(** Zeroed report for a view skipped by the relevance pre-filter
    ([skipped_irrelevant] set); counted in
    [maint.work.skipped_irrelevant]. *)
val skipped_report : unit -> report

(** [propagate ?prune mv u] applies [u] to the underlying document {e and}
    incrementally maintains [mv]. When several views share one store,
    apply the update through one of them and use {!propagate_applied} for
    the others. [prune] (default [true]) controls the {e data-driven}
    pruning rules (Props 3.6 / 3.8 / 4.7); disabling it evaluates every
    candidate term — still correct (pruned terms are provably empty),
    only slower. The update-independent pruning of Props 3.3 / 4.2 is
    structural and always applies. *)
val propagate : ?prune:bool -> Mview.t -> Update.t -> report

val propagate_insert : ?prune:bool -> Mview.t -> Update.t -> report
val propagate_delete : ?prune:bool -> Mview.t -> Update.t -> report

(** {1 Sharing one document update across several views}

    [apply_only store u] performs the document side of [u] (find targets,
    mutate, assign IDs) without touching any view; the returned
    application can then be propagated to any number of views over the
    same store with [propagate_applied]. The store is committed by the
    {e last} propagation ([~commit:true]). *)

type applied =
  | Ins of Update.applied_insert
  | Del of Update.applied_delete
  | Repl of Update.applied_delete * Update.applied_insert
      (** replace-value: the removed text nodes and the content-changed
          targets with their fresh text *)

val apply_only : Store.t -> Update.t -> applied * Timing.breakdown

(** {1 Value-predicate guard}

    The paper's delta model assumes that an update only {e adds to} or
    {e removes from} the canonical relations; but inserting or deleting
    text below an {e existing} node watched by a [[val = c]] predicate can
    flip that node's selection status. Watches record, before the
    document mutates, the predicate status of the (rare) candidate nodes
    — the target ancestors carrying a vpred-matching tag. If a flip is
    detected after application, the propagation falls back to an exact
    full rebuild of the view ([fallback_recompute] is set). *)

type watches

(** [vpred_watches mv targets] must be called {e before} the document is
    mutated. *)
val vpred_watches : Mview.t -> Xml_tree.node list -> watches

(** [watches_flipped mv watches] — re-check the watches after the
    document mutated; [true] means the incremental path is unsound for
    this view and propagation will rebuild instead. *)
val watches_flipped : Mview.t -> watches -> bool

(** [propagate_applied ?commit ?watches ?shared mv applied] incrementally
    maintains [mv]. Without [watches], predicate flips are assumed absent
    (true whenever updates never put text below a vpred-matching
    ancestor). [shared] supplies a prebuilt {!Delta.Shared} index for the
    same applied update, so Δ extraction is a per-pattern-node lookup
    instead of a fresh scan — the batch engine builds one index per
    update and passes it to every view.

    Read-only-store contract: with [~commit:false] and non-flipped
    [watches], propagation of an [Ins]/[Del] application only {e reads}
    the store (relations, spans, node resolution) and mutates
    view-private state — this is what makes domain-parallel propagation
    across distinct views sound (see [Batch]). The [Repl] rebuild path
    (a ["#text"] structural view) and flipped watches both commit, so
    the batch engine runs those views sequentially on the main domain;
    {!Store.commit} itself rejects being called off the main domain. *)
val propagate_applied :
  ?commit:bool -> ?watches:watches -> ?prune:bool -> ?shared:Delta.Shared.t ->
  Mview.t -> applied -> report

(** {1 Union-term introspection}

    The term machinery, exposed for tests (pruning-soundness oracles) and
    ablation benchmarks. *)
module Terms : sig
  (** Candidate terms for maintaining the sub-pattern [scope]: the
      R-parts, i.e. one snowcap strictly inside [scope] per term, plus the
      all-Δ term (the empty set). *)
  val candidates : Mview.t -> scope:Lattice.nset -> Lattice.nset list

  (** Data-driven pruning verdict for one term. *)
  val survives :
    Mview.t -> Delta.t -> scope:Lattice.nset -> kind:[ `Insert | `Delete ] ->
    Lattice.nset -> bool

  (** Evaluate one term; [survivors_only] restricts the R-part to
      [R \ Δ⁻] (the deletion reading). *)
  val eval :
    Mview.t -> Delta.t -> scope:Lattice.nset -> s_set:Lattice.nset ->
    survivors_only:bool -> Tuple_table.t
end

(** The tuple-modification pass alone (PIMT for insertions, PDMT for
    deletions): refresh the [val]/[cont] payloads affected by [applied];
    returns the number of refreshed cells. Exposed for baselines that
    maintain tuples by other means. *)
val refresh_payloads : Mview.t -> applied -> int
