(* Heavy-light label classifier and rebalancer. See hl.mli. *)

let obs_hl = Obs.Scope.v "maint.hl"
let c_promotions = Obs.Scope.counter obs_hl "promotions"
let c_demotions = Obs.Scope.counter obs_hl "demotions"
let c_rescans = Obs.Scope.counter obs_hl "rescans"
let c_rescan_rows = Obs.Scope.counter obs_hl "rescan_rows"

type config = {
  heavy_count : int;
  heavy_fanout : int;
  demote_factor : float;
  drain_budget : int;
  tail_budget : int;
}

let default_config =
  {
    heavy_count = 1 lsl 20;
    heavy_fanout = 64;
    demote_factor = 0.5;
    drain_budget = 256;
    tail_budget = 4096;
  }

(* Cached per-label view of the store statistics: [lc_count] is refreshed
   on every rebalance (O(1) per label from the relation arrays); the
   fan-out is an O(|R_label|) rescan and therefore only refreshed after
   the count has drifted by a constant fraction since the last rescan —
   the classic amortization argument: total rescan work is O(total rows
   inserted), a constant factor over the updates that caused it. *)
type cache = {
  mutable lc_count : int;
  mutable lc_scanned : int; (* count at last fan-out rescan *)
  mutable lc_fanout : int;
}

type t = {
  cfg : config;
  store : Store.t;
  heavy : (string, unit) Hashtbl.t;
  cached : (string, cache) Hashtbl.t;
  mutable migrations : int;
}

let config t = t.cfg
let is_heavy t lab = Hashtbl.mem t.heavy lab
let migrations t = t.migrations

let heavy_labels t =
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) t.heavy [])

let cache_of t lab =
  match Hashtbl.find_opt t.cached lab with
  | Some c -> c
  | None ->
    let c = { lc_count = 0; lc_scanned = -1; lc_fanout = 0 } in
    Hashtbl.add t.cached lab c;
    c

let rescan t lab c =
  let st = Store.label_stat t.store lab in
  c.lc_scanned <- st.Store.ls_count;
  c.lc_count <- st.Store.ls_count;
  c.lc_fanout <- st.Store.ls_max_fanout;
  Obs.Counter.incr c_rescans;
  Obs.Counter.add c_rescan_rows st.Store.ls_count

(* Refresh [lab]'s cache and flip its partition if a threshold was
   crossed (with hysteresis on the way down so a label oscillating
   around a threshold does not migrate every update). Returns whether
   the label migrated. *)
let classify t lab =
  let cfg = t.cfg in
  let c = cache_of t lab in
  c.lc_count <- Store.relation_size t.store lab;
  if abs (c.lc_count - c.lc_scanned) >= max 8 (abs c.lc_scanned / 4) then
    rescan t lab c;
  let was = Hashtbl.mem t.heavy lab in
  let demote_count = float_of_int cfg.heavy_count *. cfg.demote_factor in
  let demote_fanout = float_of_int cfg.heavy_fanout *. cfg.demote_factor in
  let now =
    if was then
      not
        (float_of_int c.lc_count < demote_count
        && float_of_int c.lc_fanout < demote_fanout)
    else c.lc_count >= cfg.heavy_count || c.lc_fanout >= cfg.heavy_fanout
  in
  if now && not was then begin
    Hashtbl.replace t.heavy lab ();
    t.migrations <- t.migrations + 1;
    Obs.Counter.incr c_promotions;
    true
  end
  else if was && not now then begin
    Hashtbl.remove t.heavy lab;
    t.migrations <- t.migrations + 1;
    Obs.Counter.incr c_demotions;
    (* A demoted label goes back on the eager path; its buffered rows
       must be folded in now so readers stop paying the merged view. *)
    Store.drain_label t.store lab;
    true
  end
  else false

let rebalance t =
  (* Labels currently classified heavy may have emptied out of
     [relation_labels]; visit them too so they can demote. *)
  let seen = Hashtbl.create 64 in
  let visit lab =
    if not (Hashtbl.mem seen lab) then begin
      Hashtbl.add seen lab ();
      ignore (classify t lab)
    end
  in
  List.iter visit (Store.relation_labels t.store);
  List.iter visit (heavy_labels t)

let create ?(config = default_config) store =
  let t =
    {
      cfg = config;
      store;
      heavy = Hashtbl.create 16;
      cached = Hashtbl.create 64;
      migrations = 0;
    }
  in
  List.iter
    (fun lab ->
      let c = cache_of t lab in
      rescan t lab c;
      ignore (classify t lab))
    (Store.relation_labels store);
  (* Initial classification is not a migration. *)
  t.migrations <- 0;
  Store.set_partition store ~tail_budget:config.tail_budget
    (Some (fun lab -> Hashtbl.mem t.heavy lab));
  t

let detach t = Store.set_partition t.store None
