let obs_defer = Obs.Scope.v "maint.defer"
let c_deferrals = Obs.Scope.counter obs_defer "deferrals"
let c_defer_work = Obs.Scope.counter obs_defer "deferred_work"
let c_drains = Obs.Scope.counter obs_defer "drains"
let c_budget_drains = Obs.Scope.counter obs_defer "budget_drains"

(* Per-view deferral state of the adaptive (heavy-light) path: [stale]
   means the materialized image no longer reflects the committed
   document; [work] is the accumulated deferred delta work (shared-index
   entry counts), compared against the drain budget. No update payload
   is buffered — a drain is an exact [Mview.rebuild] from the committed
   store, which covers any mix of deferred inserts, deletes, replaces
   and value-predicate flips. *)
type buf = { mutable stale : bool; mutable work : int }

type adaptive = { hl : Hl.t; bufs : (string, buf) Hashtbl.t }

(* Views live in [views] (reverse insertion order, as before) for ordered
   traversal, and in [index] for O(1) name lookup. *)
type t = {
  store : Store.t;
  mutable views : Mview.t list; (* reverse order *)
  index : (string, Mview.t) Hashtbl.t;
  mutable journal : (Update.t -> unit) option;
  mutable indep : (Update.t -> Mview.t -> bool) option;
  mutable adaptive : adaptive option;
}

let create store =
  {
    store;
    views = [];
    index = Hashtbl.create 16;
    journal = None;
    indep = None;
    adaptive = None;
  }

let store t = t.store

let set_journal t j = t.journal <- j

let set_independence t p = t.indep <- p

let name_of mv = mv.Mview.pat.Pattern.name

let find t name = Hashtbl.find_opt t.index name

let register t mv =
  let name = name_of mv in
  if Hashtbl.mem t.index name then
    invalid_arg
      (Printf.sprintf "View_set.add: a view named %S already exists" name);
  t.views <- mv :: t.views;
  Hashtbl.replace t.index name mv

let add t ?policy pat =
  let mv = Mview.materialize ?policy t.store pat in
  register t mv;
  mv

let add_view t mv =
  if mv.Mview.store != t.store then
    invalid_arg "View_set.add_view: view materialized over a different store";
  register t mv

let remove t name =
  Hashtbl.remove t.index name;
  t.views <- List.filter (fun mv -> name_of mv <> name) t.views;
  match t.adaptive with
  | None -> ()
  | Some a -> Hashtbl.remove a.bufs name

let views t = List.rev t.views

(* {2 Adaptive (heavy-light) maintenance} *)

let buf_of a name =
  match Hashtbl.find_opt a.bufs name with
  | Some b -> b
  | None ->
    let b = { stale = false; work = 0 } in
    Hashtbl.add a.bufs name b;
    b

let stale t =
  match t.adaptive with
  | None -> []
  | Some a ->
    List.filter_map
      (fun mv ->
        match Hashtbl.find_opt a.bufs (name_of mv) with
        | Some b when b.stale -> Some (name_of mv)
        | Some _ | None -> None)
      (views t)

let drain_view t name =
  match t.adaptive with
  | None -> false
  | Some a -> (
    match (find t name, Hashtbl.find_opt a.bufs name) with
    | Some mv, Some b when b.stale ->
      (* Fold the store's pending tails in first so the rebuild scans
         plain main runs instead of paying a merged copy per lookup. *)
      Store.drain_all t.store;
      Mview.rebuild mv;
      b.stale <- false;
      b.work <- 0;
      Obs.Counter.incr c_drains;
      true
    | _ -> false)

let drain_all t =
  List.filter (fun name -> drain_view t name) (List.map name_of (views t))

let set_adaptive t hl =
  (* Leaving adaptive mode (or swapping classifiers) must not leave
     stale images behind. *)
  ignore (drain_all t);
  (match t.adaptive with
  | Some a -> Hl.detach a.hl
  | None -> ());
  t.adaptive <-
    (match hl with
    | None -> None
    | Some hl -> Some { hl; bufs = Hashtbl.create 16 })

let adaptive t = Option.map (fun a -> a.hl) t.adaptive

(* One update, N views. The work that does not depend on the view — find
   targets, mutate the document, extract the update region — runs once;
   per-view propagation consumes the shared index by lookup. Views are
   then split three ways:

   - [skipped]: the relevance pre-filter proves propagation a no-op
     (disjoint label footprint, no stored payloads, watches clean);
   - [clean]: incremental propagation against the pre-update relations,
     read-only on the store — safe to fan out across domains;
   - [committing]: a flipped value-predicate watch, or a replace-value
     against a view with structural "#text" nodes; both take the exact
     rebuild path, which commits the store, so they run sequentially on
     the main domain after the shared commit.

   The store commit is hoisted out of per-view propagation ([~commit:
   false] for every clean view) and performed exactly once, between the
   parallel section and the committing views. *)
let update ?(jobs = 1) t u =
  (* Zero or negative job counts mean "no fan-out", never a bogus stripe
     count handed to [Batch.parallel_map]. *)
  let jobs = max 1 jobs in
  (* Write-ahead: the statement reaches the journal before any document
     mutation, so a crash mid-update replays it in full. *)
  (match t.journal with None -> () | Some j -> j u);
  let views = views t in
  match views with
  | [] ->
    (* No views: still apply the document side. *)
    let _, _ = Maint.apply_only t.store u in
    Store.commit t.store;
    (match t.adaptive with None -> () | Some a -> Hl.rebalance a.hl);
    []
  | _ ->
    let b = Timing.zero () in
    (* Static schema-based independence (when a prover is installed via
       [set_independence]): decided from the statement and the view
       pattern alone, before target location, document mutation, watch
       recording or any delta work. A statically-skipped view records no
       watches either — if the prover is wrong, the view diverges
       detectably instead of being silently rescued by a rebuild. *)
    let static_skip =
      match t.indep with None -> fun _ -> false | Some prove -> fun mv -> prove u mv
    in
    let pre = List.map (fun mv -> (mv, static_skip mv)) views in
    let live = List.filter_map (fun (mv, sk) -> if sk then None else Some mv) pre in
    let targets =
      Timing.timed b
        (fun b v -> b.Timing.find_target <- v)
        (fun () -> Update.targets t.store u)
    in
    (* Predicate watches must be recorded per view before the mutation. *)
    let watched =
      List.map
        (fun (mv, sk) ->
          (mv, if sk then None else Some (Maint.vpred_watches mv targets)))
        pre
    in
    let applied =
      Timing.timed b
        (fun b v -> b.Timing.apply_doc <- v)
        (fun () ->
          match u with
          | Update.Insert _ -> Maint.Ins (Update.apply_insert t.store u ~targets)
          | Update.Delete _ -> Maint.Del (Update.apply_delete t.store ~targets)
          | Update.Replace_value { text; _ } ->
            let d, i = Update.apply_replace t.store ~text ~targets in
            Maint.Repl (d, i))
    in
    (* Shared update-region index: built once, consumed per view. The
       delete build is narrowed to the union of the {e live} views' label
       footprints — statically-independent views never consult it, so
       their labels add nothing; when the prover discharges every view
       the build is skipped outright. *)
    let wanted =
      let star = ref false in
      let tags = Hashtbl.create 16 in
      List.iter
        (fun mv ->
          let fp = mv.Mview.footprint in
          if fp.Mview.fp_star then star := true;
          Array.iter (fun tag -> Hashtbl.replace tags tag ()) fp.Mview.fp_tags)
        live;
      let l = Hashtbl.fold (fun k () acc -> k :: acc) tags [] in
      if !star then "*" :: l else l
    in
    let shared, labels =
      Timing.timed b
        (fun b v -> b.Timing.compute_delta <- v)
        (fun () ->
          (* [Text_only] is a placeholder when every view was discharged
             statically: classification below never consults [labels] for
             those views. *)
          if live = [] then (None, Batch.Text_only)
          else
            match applied with
            | Maint.Ins app ->
              let sh = Delta.Shared.of_insert t.store app in
              (Some sh, Batch.Labels sh)
            | Maint.Del app ->
              let sh = Delta.Shared.of_delete ~wanted t.store app in
              (Some sh, Batch.Labels sh)
            | Maint.Repl _ -> (None, Batch.Text_only))
    in
    let text_structural mv =
      match applied with
      | Maint.Repl _ ->
        Array.exists (( = ) "#text") mv.Mview.pat.Pattern.tags
      | Maint.Ins _ | Maint.Del _ -> false
    in
    (* [`Skip] / [`Clean] / [`Commit] / [`Defer] per view, in insertion
       order; statically-discharged views (no recorded watches) skip
       outright. [`Defer] exists only in adaptive mode: the update's
       delta reaches the view through a heavy-partitioned label, or the
       view is already stale — either way propagation is deferred (the
       view is marked stale and the work accounted against its drain
       budget) instead of paying the eager path. A stale view must
       never run incremental propagation or the exact-rebuild-now path:
       both assume the image matches the pre-update document. *)
    let heavy_route =
      match t.adaptive with
      | None -> fun _ -> false
      | Some a -> fun mv -> Batch.routes_heavy ~heavy:(Hl.is_heavy a.hl) mv labels
    in
    let classified =
      List.map
        (fun (mv, watches) ->
          let cls =
            match watches with
            | None -> `Skip
            | Some w -> (
              let is_stale =
                match t.adaptive with
                | Some a -> (buf_of a (name_of mv)).stale
                | None -> false
              in
              let forced = Maint.watches_flipped mv w || text_structural mv in
              match is_stale with
              | true -> if (not forced) && Batch.can_skip mv labels then `Skip else `Defer
              | false ->
                let defer = heavy_route mv in
                if forced then if defer then `Defer else `Commit
                else if Batch.can_skip mv labels then `Skip
                else if defer then `Defer
                else `Clean)
          in
          (mv, watches, cls))
        watched
    in
    let clean =
      List.filter_map
        (fun (mv, w, c) ->
          match (c, w) with `Clean, Some w -> Some (mv, w) | _ -> None)
        classified
    in
    (* Read-only fan-out: no commit, no document mutation; Obs increments
       from child domains are merged back by [Batch.parallel_map]. *)
    let clean_reports =
      Batch.parallel_map ~jobs
        (Array.map
           (fun (mv, watches) () ->
             (mv, Maint.propagate_applied ~commit:false ~watches ?shared mv applied))
           (Array.of_list clean))
    in
    Timing.timed b
      (fun b v -> b.Timing.update_aux <- v)
      (fun () -> Store.commit t.store);
    (* Deferred work units: the shared index's total entry count — the
       delta rows a drain will have to reconcile — plus one for the
       statement itself (replace-value deltas are single-row). *)
    let stmt_work =
      match labels with
      | Batch.Text_only -> 1
      | Batch.Labels sh ->
        List.fold_left
          (fun acc (_, n) -> acc + n)
          1
          (Delta.Shared.label_counts sh)
    in
    let reports =
      List.map
        (fun (mv, watches, cls) ->
          match cls with
          | `Skip -> (mv, Maint.skipped_report ())
          | `Defer ->
            (match t.adaptive with
            | Some a ->
              let b = buf_of a (name_of mv) in
              b.stale <- true;
              b.work <- b.work + stmt_work;
              Obs.Counter.incr c_deferrals;
              Obs.Counter.add c_defer_work stmt_work
            | None -> assert false);
            (mv, Maint.skipped_report ())
          | `Commit ->
            let watches = match watches with Some w -> w | None -> assert false in
            (mv, Maint.propagate_applied ~watches mv applied)
          | `Clean ->
            (match Array.find_opt (fun (m, _) -> m == mv) clean_reports with
            | Some r -> r
            | None -> assert false))
        classified
    in
    (* Attribute the shared phases — target location, document mutation,
       shared-index build, store commit — to the first report. *)
    (match reports with
    | (_, first) :: _ ->
      first.Maint.timing.Timing.find_target <-
        first.Maint.timing.Timing.find_target +. b.Timing.find_target;
      first.Maint.timing.Timing.apply_doc <-
        first.Maint.timing.Timing.apply_doc +. b.Timing.apply_doc;
      first.Maint.timing.Timing.compute_delta <-
        first.Maint.timing.Timing.compute_delta +. b.Timing.compute_delta;
      first.Maint.timing.Timing.update_aux <-
        first.Maint.timing.Timing.update_aux +. b.Timing.update_aux
    | [] -> ());
    (* Adaptive post-step, on the committed store: drain any view whose
       accumulated deferred work crossed its amortization budget, then
       let the classifier migrate threshold-crossing labels. *)
    (match t.adaptive with
    | None -> ()
    | Some a ->
      let budget = (Hl.config a.hl).Hl.drain_budget in
      List.iter
        (fun mv ->
          let name = name_of mv in
          match Hashtbl.find_opt a.bufs name with
          | Some bf when bf.stale && bf.work >= budget ->
            Obs.Counter.incr c_budget_drains;
            ignore (drain_view t name)
          | Some _ | None -> ())
        views;
      Hl.rebalance a.hl);
    reports
