(* Binary view persistence, format v2.

   Layout:  "XVM2" | body | crc32(magic+body) as 4 big-endian bytes
   where body is the v1 tuple stream (varint-framed counts, Dewey-encoded
   cell ids, optional val/cont payloads). The decoder is written so that
   [load] on ARBITRARY bytes either reconstructs a correct view or raises
   [Corrupt] — it must never crash with another exception, loop, or
   allocate unboundedly from attacker-controlled lengths:

   - the CRC-32 footer rejects accidental corruption up front;
   - varints are capped at 9 bytes (an OCaml int has 63 bits; the 9th
     byte must terminate with its top two bits clear), so shifting never
     leaves the defined range of [lsl];
   - every declared length/count is validated against the bytes that
     remain before anything is allocated or looped over;
   - residual decoder exceptions (e.g. [Dewey.decode] on a stale-but-
     CRC-valid image) are converted to [Corrupt]. *)

exception Corrupt of string

let magic = "XVM2"
let magic_v1 = "XVM1"
let footer_len = 4

let add_varint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let add_opt buf = function
  | None -> Buffer.add_char buf '\x00'
  | Some s ->
    Buffer.add_char buf '\x01';
    add_string buf s

let obs = Obs.Scope.v "codec"
let c_saves = Obs.Scope.counter obs "saves"
let c_save_bytes = Obs.Scope.counter obs "save_bytes"
let c_loads = Obs.Scope.counter obs "loads"
let c_load_bytes = Obs.Scope.counter obs "load_bytes"

let save mv =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  add_varint buf (Pattern.node_count mv.Mview.pat);
  add_varint buf (Array.length mv.Mview.stored);
  add_varint buf (Mview.cardinality mv);
  Mview.iter_entries mv (fun e ->
      add_varint buf e.Mview.count;
      Array.iter
        (fun c ->
          add_string buf (Dewey.encode c.Mview.cell_id);
          add_opt buf c.Mview.cell_value;
          add_opt buf c.Mview.cell_content)
        e.Mview.cells);
  let body = Buffer.contents buf in
  let crc = Crc32.string body in
  let footer = Bytes.create footer_len in
  Bytes.set footer 0 (Char.chr ((crc lsr 24) land 0xff));
  Bytes.set footer 1 (Char.chr ((crc lsr 16) land 0xff));
  Bytes.set footer 2 (Char.chr ((crc lsr 8) land 0xff));
  Bytes.set footer 3 (Char.chr (crc land 0xff));
  let image = body ^ Bytes.to_string footer in
  Obs.Counter.incr c_saves;
  Obs.Counter.add c_save_bytes (String.length image);
  image

(* [limit] is the end of the body (total length minus the footer): no
   read may cross it. *)
type reader = { src : string; limit : int; mutable pos : int }

let remaining r = r.limit - r.pos

let read_byte r =
  if r.pos >= r.limit then raise (Corrupt "truncated");
  let b = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  b

(* At most 9 bytes: 8 × 7 payload bits plus a final byte contributing
   bits 56–61. The final byte must have bit 7 (continuation) and bit 6
   (would set bit 62, overflowing a 63-bit int) clear. *)
let read_varint r =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let byte = read_byte r in
    if !shift = 56 then begin
      if byte land 0xc0 <> 0 then raise (Corrupt "varint overflow");
      v := !v lor (byte lsl 56);
      continue := false
    end
    else begin
      v := !v lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte land 0x80 = 0 then continue := false
    end
  done;
  !v

let read_string r =
  let n = read_varint r in
  if n > remaining r then
    raise (Corrupt (Printf.sprintf "declared length %d exceeds %d remaining bytes" n (remaining r)));
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let read_opt r =
  match read_byte r with
  | 0 -> None
  | 1 -> Some (read_string r)
  | _ -> raise (Corrupt "bad option tag")

let load ?policy store pat data =
  Obs.Counter.incr c_loads;
  Obs.Counter.add c_load_bytes (String.length data);
  let n = String.length data in
  if n < 4 then raise (Corrupt "truncated header");
  (match String.sub data 0 4 with
  | m when m = magic -> ()
  | m when m = magic_v1 ->
    raise (Corrupt "unsupported codec version 1 (re-save the view)")
  | _ -> raise (Corrupt "bad magic"));
  if n < 4 + footer_len then raise (Corrupt "truncated header");
  let body_len = n - footer_len in
  let stored_crc =
    (Char.code data.[body_len] lsl 24)
    lor (Char.code data.[body_len + 1] lsl 16)
    lor (Char.code data.[body_len + 2] lsl 8)
    lor Char.code data.[body_len + 3]
  in
  if Crc32.string ~len:body_len data <> stored_crc then
    raise (Corrupt "checksum mismatch");
  let r = { src = data; limit = body_len; pos = 4 } in
  try
    let k = read_varint r in
    if k <> Pattern.node_count pat then raise (Corrupt "pattern node count mismatch");
    let stored = read_varint r in
    if stored <> List.length (Pattern.stored_nodes pat) then
      raise (Corrupt "stored-attribute arity mismatch");
    let entries = read_varint r in
    (* Each entry occupies at least one count byte plus, per cell, an id
       length byte and two option tags — reject impossible counts before
       entering the loop. *)
    let min_entry = 1 + (3 * stored) in
    if min_entry > 0 && entries > remaining r / min_entry then
      raise (Corrupt "declared entry count exceeds remaining bytes");
    let mv = Mview.empty_shell ?policy store pat in
    for _ = 1 to entries do
      let count = read_varint r in
      if count < 1 then raise (Corrupt "bad derivation count");
      let cells =
        Array.init stored (fun _ ->
            let id =
              try Dewey.decode (read_string r)
              with Invalid_argument m -> raise (Corrupt m)
            in
            let value = read_opt r in
            let content = read_opt r in
            { Mview.cell_id = id; cell_value = value; cell_content = content })
      in
      Mview.restore_entry mv ~count ~cells
    done;
    if r.pos <> r.limit then raise (Corrupt "trailing bytes");
    if Mview.cardinality mv <> entries then raise (Corrupt "duplicate tuple");
    mv
  with
  | Corrupt _ as e -> raise e
  | Invalid_argument m | Failure m -> raise (Corrupt m)

(* Crash-safe: the image lands in a temp file first and is renamed over
   [path] only after it is fully written and fsynced, so an interrupted
   save can never clobber the previous good image. *)
let save_to_file mv path =
  let data = save mv in
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     let n = String.length data in
     let written = ref 0 in
     while !written < n do
       written := !written + Unix.write_substring fd data !written (n - !written)
     done;
     Unix.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load_from_file ?policy store pat path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  load ?policy store pat data
