(** Materialized views with derivation counts.

    A materialized view keeps, per distinct projected tuple (the stored
    attributes of the annotated pattern nodes), a derivation count — the
    number of embeddings projecting to it (Section 2.2) — plus the
    materialized [val] / [cont] payloads. Depending on the materialization
    {e policy} (Section 6.7) it also keeps auxiliary snowcap tables:

    - [Snowcaps]: one snowcap per lattice level (the preorder-prefix
      chain) is materialized, besides the lattice leaves (the canonical
      relations held by the store);
    - [Leaves]: nothing is materialized; interior joins are recomputed
      from the canonical relations on the fly. *)

type policy =
  | Snowcaps  (** one snowcap per lattice level (the preorder-prefix chain) *)
  | Leaves  (** nothing materialized; interior joins recomputed on the fly *)
  | Chosen of Lattice.nset list
      (** an explicit set of snowcaps, e.g. from the cost-based
          {!Advisor}. Each set must be a snowcap of the pattern. *)

type cell = {
  cell_id : Dewey.t;
  mutable cell_value : string option;
  mutable cell_content : string option;
}

type entry = { mutable count : int; cells : cell array }

(** Label footprint of the pattern, cached at materialization: the set of
    exact tags plus whether any node is the wildcard [*].  The batch
    engine's relevance pre-filter intersects this with the update's label
    set (see [Batch]). *)
type footprint = { fp_star : bool; fp_tags : string array }

type t = private {
  pat : Pattern.t;
  store : Store.t;
  policy : policy;
  stored : int array;  (** annotated pattern nodes, preorder *)
  cvn : int array;  (** pattern nodes storing val or cont *)
  all_snowcaps : Lattice.nset list;  (** cached, ascending size *)
  footprint : footprint;  (** cached label footprint of [pat] *)
  mutable mats : (Lattice.nset * Tuple_table.t) list;
  entries : (string, entry) Hashtbl.t;
}

(** [materialize ?policy store pat] evaluates the pattern algebraically
    over the committed relations and materializes the view and (under
    [Snowcaps], the default) its auxiliary snowcap tables. *)
val materialize : ?policy:policy -> Store.t -> Pattern.t -> t

(** [rebuild mv] discards the view contents and snowcap tables and
    re-evaluates them from the store's committed relations — the exact
    fallback used when an update changes the string value of an existing
    node watched by a value predicate (see [Maint]). *)
val rebuild : t -> unit

(** {1 Contents} *)

(** Number of distinct (projected) tuples. *)
val cardinality : t -> int

(** Sum of derivation counts = number of embeddings. *)
val total_count : t -> int

val iter_entries : t -> (entry -> unit) -> unit

(** Deterministic dump [(key, count, cells)] sorted by key — for tests and
    display; the key is the concatenated encoding of the stored IDs. *)
val dump : t -> (string * int * cell array) list

(** {1 Maintenance primitives} (used by [Maint]) *)

(** Projection key of a full binding. *)
val key_of : t -> (int -> Dewey.t) -> string

(** [add_binding mv get] registers one new embedding; [get] maps pattern
    node index to the bound identifier. Creates the entry (computing
    payloads from the current document) or bumps its count. *)
val add_binding : t -> (int -> Dewey.t) -> unit

(** [remove_binding mv get] decrements the derivation count of the
    projected tuple, removing it at zero.
    @raise Invalid_argument if the tuple is absent (view out of sync). *)
val remove_binding : t -> (int -> Dewey.t) -> unit

(** Materialized table for exactly this snowcap, if any. *)
val mat_for : t -> Lattice.nset -> Tuple_table.t option

(** Replace the materialized snowcap tables. *)
val set_mats : t -> (Lattice.nset * Tuple_table.t) list -> unit

(** Recompute the [val] / [cont] payload of [cell] from the current
    document; returns [true] if it was present and refreshed. *)
val refresh_cell : t -> stored_node:int -> cell -> bool

(** {1 Restoration primitives} (used by [Mview_codec])

    [empty_shell] builds a view with no tuples but with the auxiliary
    snowcap tables of the given policy evaluated from the store;
    [restore_entry] injects one persisted tuple verbatim.
    @raise Invalid_argument on a cell-arity mismatch. *)

val empty_shell : ?policy:policy -> Store.t -> Pattern.t -> t

val restore_entry : t -> count:int -> cells:cell array -> unit
