(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected), table-driven.
   Used as the integrity footer of the view-persistence format so that
   [Mview_codec.load] can reject corrupted images before interpreting
   them. Self-contained: the dependency cone has no checksum library. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.string";
  update 0 s ~pos ~len
