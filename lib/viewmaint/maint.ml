type report = {
  timing : Timing.breakdown;
  terms_developed : int;
  terms_surviving : int;
  embeddings_added : int;
  embeddings_removed : int;
  tuples_modified : int;
  fallback_recompute : bool;
  skipped_irrelevant : bool;
}

type applied =
  | Ins of Update.applied_insert
  | Del of Update.applied_delete
  | Repl of Update.applied_delete * Update.applied_insert

type kind = KInsert | KDelete

(* Global phase timers mirror the paper's Fig. 18/19 taxonomy; the
   per-report [Timing.breakdown] stays the primary record, these cells
   just make the same spans visible through the process-wide registry. *)
let obs_phase = Obs.Scope.v "maint.phase"
let t_find = Obs.Scope.timer obs_phase "find_target"
let t_apply = Obs.Scope.timer obs_phase "apply_doc"
let t_delta = Obs.Scope.timer obs_phase "compute_delta"
let t_expr = Obs.Scope.timer obs_phase "get_expression"
let t_exec = Obs.Scope.timer obs_phase "execute"
let t_aux = Obs.Scope.timer obs_phase "update_aux"

let obs_work = Obs.Scope.v "maint.work"
let c_terms_developed = Obs.Scope.counter obs_work "terms_developed"
let c_terms_surviving = Obs.Scope.counter obs_work "terms_surviving"
let c_emb_added = Obs.Scope.counter obs_work "embeddings_added"
let c_emb_removed = Obs.Scope.counter obs_work "embeddings_removed"
let c_tuples_modified = Obs.Scope.counter obs_work "tuples_modified"
let c_fallbacks = Obs.Scope.counter obs_work "fallback_recomputes"
let c_skipped = Obs.Scope.counter obs_work "skipped_irrelevant"

let set_find b t =
  b.Timing.find_target <- b.Timing.find_target +. t;
  Obs.Timer.add_span t_find t

let set_apply b t =
  b.Timing.apply_doc <- b.Timing.apply_doc +. t;
  Obs.Timer.add_span t_apply t

let set_delta b t =
  b.Timing.compute_delta <- b.Timing.compute_delta +. t;
  Obs.Timer.add_span t_delta t

let set_expr b t =
  b.Timing.get_expression <- b.Timing.get_expression +. t;
  Obs.Timer.add_span t_expr t

let set_exec b t =
  b.Timing.execute <- b.Timing.execute +. t;
  Obs.Timer.add_span t_exec t

let set_aux b t =
  b.Timing.update_aux <- b.Timing.update_aux +. t;
  Obs.Timer.add_span t_aux t

(* Every [report] exit flows through here so the registry sees the same
   work totals the caller gets back. *)
let emit r =
  Obs.Counter.add c_terms_developed r.terms_developed;
  Obs.Counter.add c_terms_surviving r.terms_surviving;
  Obs.Counter.add c_emb_added r.embeddings_added;
  Obs.Counter.add c_emb_removed r.embeddings_removed;
  Obs.Counter.add c_tuples_modified r.tuples_modified;
  if r.fallback_recompute then Obs.Counter.incr c_fallbacks;
  if r.skipped_irrelevant then Obs.Counter.incr c_skipped;
  r

(* Report for a view the batch engine's relevance pre-filter proved
   untouched by the update: no propagation work was performed at all. *)
let skipped_report () =
  emit {
    timing = Timing.zero ();
    terms_developed = 0;
    terms_surviving = 0;
    embeddings_added = 0;
    embeddings_removed = 0;
    tuples_modified = 0;
    fallback_recompute = false;
    skipped_irrelevant = true;
  }

let apply_only store u =
  let b = Timing.zero () in
  let targets = Timing.timed b set_find (fun () -> Update.targets store u) in
  let applied =
    Timing.timed b set_apply (fun () ->
        match u with
        | Update.Insert _ -> Ins (Update.apply_insert store u ~targets)
        | Update.Delete _ -> Del (Update.apply_delete store ~targets)
        | Update.Replace_value { text; _ } ->
          let d, i = Update.apply_replace store ~text ~targets in
          Repl (d, i))
  in
  (applied, b)

(* {1 Value-predicate guard}

   Inserting or deleting text below an existing node can change the
   node's string value and thereby flip a [[val = c]] selection the delta
   model assumes stable. The only nodes at risk are ancestors-or-self of
   the update targets whose tag matches a vpred-carrying view node; their
   pre-update status is recorded before the mutation and re-checked
   afterwards. Attribute and text values are immutable, so only element
   tags are watched. *)

type watches = (int * Dewey.t * bool) list

let vpred_watches mv targets =
  let pat = mv.Mview.pat in
  let store = mv.Mview.store in
  let vnodes = ref [] in
  Array.iteri
    (fun i vp ->
      match vp with
      | Some _ when String.length pat.Pattern.tags.(i) > 0 && pat.Pattern.tags.(i).[0] <> '@' ->
        vnodes := i :: !vnodes
      | Some _ | None -> ())
    pat.Pattern.vpreds;
  if !vnodes = [] then []
  else begin
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    let watch node =
      if not (Hashtbl.mem seen node.Xml_tree.serial) then begin
        Hashtbl.add seen node.Xml_tree.serial ();
        List.iter
          (fun i ->
            if Pattern.tag_matches pat.Pattern.tags.(i) node then
              out := (i, Store.id_of store node, Pattern.vpred_holds pat i node) :: !out)
          !vnodes
      end
    in
    let rec up node =
      watch node;
      match node.Xml_tree.parent with None -> () | Some p -> up p
    in
    List.iter up targets;
    !out
  end

let watches_flipped mv watches =
  List.exists
    (fun (i, id, pre) ->
      match Store.node_of mv.Mview.store id with
      | None -> false (* deleted: the structural deltas cover it *)
      | Some node -> Pattern.vpred_holds mv.Mview.pat i node <> pre)
    watches

(* {1 Union terms: candidates, pruning, evaluation} *)

(* Candidate terms for maintaining the sub-pattern [scope]: by Prop 3.12
   one per snowcap strictly inside [scope], plus the all-Δ term (the empty
   R-part). *)
let candidate_terms mv ~scope =
  Lattice.empty mv.Mview.pat
  :: List.filter
       (fun s -> Lattice.subset s scope && not (Lattice.equal s scope))
       mv.Mview.all_snowcaps

(* Data-driven pruning: Props 3.6 / 3.8 for insertions, the Δ⁻ pruning of
   Section 4.3 (Prop 4.7) for deletions. The update-independent pruning of
   Props 3.3 / 4.2 is already encoded in the snowcap enumeration. *)
let term_survives mv (delta : Delta.t) ~scope ~kind s =
  let pat = mv.Mview.pat in
  let dict = Store.dict mv.Mview.store in
  let ok = ref true in
  Array.iteri
    (fun j in_scope ->
      if !ok && in_scope && not s.(j) then
        if not (Delta.nonempty delta j) then ok := false
        else begin
          (* Crossing edge: R-parent above a Δ-child. *)
          let p = pat.Pattern.parents.(j) in
          if p >= 0 && s.(p) && pat.Pattern.tags.(p) <> "*" then begin
            let ptag = pat.Pattern.tags.(p) in
            let survives =
              match kind with
              | KInsert -> (
                (* Prop 3.8: some insertion point must carry [ptag] on its
                   root path ([//] edge) or be labeled [ptag] ([/] edge: a
                   new child of an old node is an inserted root, whose
                   parent is the insertion point itself). *)
                match pat.Pattern.axes.(j) with
                | Pattern.Descendant ->
                  List.exists
                    (fun tid ->
                      Path_ops.has_label_ancestor ~self:true dict ~label:ptag tid)
                    delta.Delta.target_ids
                | Pattern.Child -> (
                  match Label_dict.find dict ptag with
                  | None -> false
                  | Some code ->
                    List.exists (fun tid -> Dewey.label tid = code) delta.Delta.target_ids))
              | KDelete -> (
                (* Prop 4.7, strengthened: some deleted [j]-node must have
                   an ancestor (resp. parent) labeled [ptag] that {e
                   survives} the deletion — a witness inside the deleted
                   region is itself gone (the argument of Prop 4.2), so
                   such terms are empty too. An ancestor of a deleted node
                   survives iff it is a strict ancestor of the node's
                   deletion root. *)
                let region = delta.Delta.region in
                let rows = Tuple_table.rows delta.Delta.tables.(j) in
                match pat.Pattern.axes.(j) with
                | Pattern.Descendant ->
                  Array.exists
                    (fun row ->
                      let anchor =
                        match Id_region.root_of region row.(0) with
                        | Some r -> r
                        | None -> row.(0)
                      in
                      Path_ops.has_label_ancestor ~self:false dict ~label:ptag anchor)
                    rows
                | Pattern.Child -> (
                  match Label_dict.find dict ptag with
                  | None -> false
                  | Some code ->
                    Array.exists
                      (fun row ->
                        match Dewey.parent row.(0) with
                        | None -> false
                        | Some pid ->
                          Dewey.label pid = code && not (Id_region.mem region pid))
                      rows))
            in
            if not survives then ok := false
          end
        end)
    scope;
  !ok

(* Evaluate one union term over [scope]: the R-part is the snowcap [s_set]
   (materialized table when available, otherwise recomputed from the
   lattice leaves), the Δ-part is the rest of [scope], joined along the
   crossing edges. For deletions ([survivors_only]) the R-part is
   restricted to nodes outside the deleted region: R \ Δ⁻. *)
let eval_term mv (delta : Delta.t) ~scope ~s_set ~survivors_only =
  let pat = mv.Mview.pat in
  let store = mv.Mview.store in
  let datom i = delta.Delta.tables.(i) in
  let d_set = Array.mapi (fun i in_scope -> in_scope && not s_set.(i)) scope in
  if Lattice.size s_set = 0 then
    Plan.eval_subtree pat ~atom:datom ~within:(Lattice.mem d_set) ~root:0
  else begin
    let region = delta.Delta.region in
    let survivor_row row =
      Array.for_all (fun id -> not (Id_region.mem region id)) row
    in
    let s_table =
      match Mview.mat_for mv s_set with
      | Some table ->
        if survivors_only then begin
          let t = Tuple_table.copy table in
          Tuple_table.filter t survivor_row;
          t
        end
        else table
      | None ->
        let atom i =
          let a = Plan.atom_of_store store pat i in
          if survivors_only then
            Tuple_table.filter a (fun row -> not (Id_region.mem region row.(0)));
          a
        in
        Plan.eval_subtree pat ~atom ~within:(Lattice.mem s_set) ~root:0
    in
    let result = ref s_table in
    List.iter
      (fun j ->
        if not (Tuple_table.is_empty !result) then begin
          let d = Plan.eval_subtree pat ~atom:datom ~within:(Lattice.mem d_set) ~root:j in
          result :=
            Struct_join.join !result d ~parent:pat.Pattern.parents.(j) ~child:j
              ~axis:pat.Pattern.axes.(j)
        end)
      (Lattice.tops pat ~inside:d_set);
    !result
  end

(* {1 Tuple modification: PIMT (Alg. 4) and PDMT} *)

let refresh_affected mv affected =
  if Array.length mv.Mview.cvn = 0 || Hashtbl.length affected = 0 then 0
  else begin
    let modified = ref 0 in
    Mview.iter_entries mv (fun e ->
        Array.iteri
          (fun p i ->
            let a = mv.Mview.pat.Pattern.annots.(i) in
            if a.Pattern.store_val || a.Pattern.store_cont then begin
              let cell = e.Mview.cells.(p) in
              if Hashtbl.mem affected (Dewey.encode cell.Mview.cell_id) then
                if Mview.refresh_cell mv ~stored_node:i cell then incr modified
            end)
          mv.Mview.stored);
    !modified
  end

let pimt mv (app : Update.applied_insert) =
  (* Content / value of a node changes iff it is an insertion point or one
     of its ancestors. *)
  let affected = Hashtbl.create 64 in
  List.iter
    (fun (tid, _) ->
      Hashtbl.replace affected (Dewey.encode tid) ();
      List.iter (fun a -> Hashtbl.replace affected (Dewey.encode a) ()) (Dewey.ancestors tid))
    app.Update.pairs;
  refresh_affected mv affected

let pdmt mv (app : Update.applied_delete) =
  (* Only strict ancestors of a deleted root survive with changed
     content. *)
  let affected = Hashtbl.create 64 in
  List.iter
    (fun root ->
      List.iter (fun a -> Hashtbl.replace affected (Dewey.encode a) ()) (Dewey.ancestors root))
    app.Update.roots;
  refresh_affected mv affected

let refresh_payloads mv = function
  | Ins app | Repl (_, app) -> pimt mv app
  | Del app -> pdmt mv app

(* {1 Snowcap (auxiliary structure) maintenance} *)

let align_rows table ~to_cols =
  if Tuple_table.is_empty table then [||]
  else begin
    let positions = Array.map (fun c -> Tuple_table.col_pos table c) to_cols in
    Array.map
      (fun row -> Array.map (fun p -> row.(p)) positions)
      (Tuple_table.rows table)
  end

(* Prop 3.13: each materialized snowcap is maintained from smaller
   snowcaps, lattice leaves and Δ⁺ tables. All additions are computed
   against the pre-update state before any table is touched. *)
let maintain_mats_insert mv delta =
  let additions =
    List.map
      (fun (scope, table) ->
        let terms =
          List.filter
            (term_survives mv delta ~scope ~kind:KInsert)
            (candidate_terms mv ~scope)
        in
        let rows =
          List.concat_map
            (fun s ->
              let t = eval_term mv delta ~scope ~s_set:s ~survivors_only:false in
              Array.to_list (align_rows t ~to_cols:(Tuple_table.cols table)))
            terms
        in
        (table, rows))
      mv.Mview.mats
  in
  List.iter
    (fun (table, rows) -> Tuple_table.append_rows table (Array.of_list rows))
    additions

let maintain_mats_delete mv (delta : Delta.t) =
  let region = delta.Delta.region in
  List.iter
    (fun (_scope, table) ->
      Tuple_table.filter table (fun row ->
          Array.for_all (fun id -> not (Id_region.mem region id)) row))
    mv.Mview.mats

(* {1 Drivers} *)

let full_scope mv = Lattice.full mv.Mview.pat

let propagate_applied ?(commit = true) ?(watches = []) ?(prune = true) ?shared mv
    applied =
  let b = Timing.zero () in
  let store = mv.Mview.store in
  if watches_flipped mv watches then begin
    (* Exact fallback: a predicate flipped on an existing node, outside
       the delta model; rebuild from the (committed) relations. *)
    Timing.timed b set_exec (fun () ->
        Store.commit store;
        Mview.rebuild mv);
    emit {
      timing = b;
      terms_developed = 0;
      terms_surviving = 0;
      embeddings_added = 0;
      embeddings_removed = 0;
      tuples_modified = 0;
      fallback_recompute = true;
      skipped_irrelevant = false;
    }
  end
  else
  match applied with
  | Repl (_app_del, app_ins) ->
    if Array.exists (( = ) "#text") mv.Mview.pat.Pattern.tags then begin
      (* Text nodes participate structurally in this view: take the exact
         rebuild path (replace-value swaps text nodes wholesale). *)
      Timing.timed b set_exec (fun () ->
          Store.commit store;
          Mview.rebuild mv);
      emit {
        timing = b;
        terms_developed = 0;
        terms_surviving = 0;
        embeddings_added = 0;
        embeddings_removed = 0;
        tuples_modified = 0;
        fallback_recompute = true;
      skipped_irrelevant = false;
      }
    end
    else begin
      (* A pure value change: no element or attribute binding appears or
         disappears (predicate flips were guarded above), so no embedding
         is created or destroyed — only val/cont payloads of the targets
         and their ancestors need refreshing. *)
      let modified = ref 0 in
      Timing.timed b set_exec (fun () -> modified := pimt mv app_ins);
      Timing.timed b set_aux (fun () -> if commit then Store.commit store);
      emit {
        timing = b;
        terms_developed = 0;
        terms_surviving = 0;
        embeddings_added = 0;
        embeddings_removed = 0;
        tuples_modified = !modified;
        fallback_recompute = false;
      skipped_irrelevant = false;
      }
    end
  | Ins app ->
    let delta =
      Timing.timed b set_delta (fun () ->
          match shared with
          | Some sh -> Delta.of_shared sh mv.Mview.pat
          | None -> Delta.of_insert store mv.Mview.pat app)
    in
    let scope = full_scope mv in
    let candidates = candidate_terms mv ~scope in
    let terms =
      Timing.timed b set_expr (fun () ->
          if prune then
            List.filter (term_survives mv delta ~scope ~kind:KInsert) candidates
          else candidates)
    in
    let added = ref 0 and modified = ref 0 in
    Timing.timed b set_exec (fun () ->
        List.iter
          (fun s ->
            let t = eval_term mv delta ~scope ~s_set:s ~survivors_only:false in
            (* Cell-wise access: on columnar tables this reads handle
               columns directly, with no boxed row materialization. *)
            for r = 0 to Tuple_table.length t - 1 do
              Mview.add_binding mv (fun i ->
                  Tuple_table.cell_id t r (Tuple_table.col_pos t i));
              incr added
            done)
          terms;
        modified := pimt mv app);
    Timing.timed b set_aux (fun () ->
        maintain_mats_insert mv delta;
        if commit then Store.commit store);
    emit {
      timing = b;
      terms_developed = List.length candidates;
      terms_surviving = List.length terms;
      embeddings_added = !added;
      embeddings_removed = 0;
      tuples_modified = !modified;
      fallback_recompute = false;
      skipped_irrelevant = false;
    }
  | Del app ->
    let delta =
      Timing.timed b set_delta (fun () ->
          match shared with
          | Some sh -> Delta.of_shared sh mv.Mview.pat
          | None -> Delta.of_delete store mv.Mview.pat app)
    in
    let scope = full_scope mv in
    let candidates = candidate_terms mv ~scope in
    let terms =
      Timing.timed b set_expr (fun () ->
          if prune then
            List.filter (term_survives mv delta ~scope ~kind:KDelete) candidates
          else candidates)
    in
    let removed = ref 0 and modified = ref 0 in
    Timing.timed b set_exec (fun () ->
        List.iter
          (fun s ->
            let t = eval_term mv delta ~scope ~s_set:s ~survivors_only:true in
            for r = 0 to Tuple_table.length t - 1 do
              Mview.remove_binding mv (fun i ->
                  Tuple_table.cell_id t r (Tuple_table.col_pos t i));
              incr removed
            done)
          terms;
        modified := pdmt mv app);
    Timing.timed b set_aux (fun () ->
        maintain_mats_delete mv delta;
        if commit then Store.commit store);
    emit {
      timing = b;
      terms_developed = List.length candidates;
      terms_surviving = List.length terms;
      embeddings_added = 0;
      embeddings_removed = !removed;
      tuples_modified = !modified;
      fallback_recompute = false;
      skipped_irrelevant = false;
    }

let propagate ?prune mv u =
  let b = Timing.zero () in
  let store = mv.Mview.store in
  let targets = Timing.timed b set_find (fun () -> Update.targets store u) in
  let watches = vpred_watches mv targets in
  let applied =
    Timing.timed b set_apply (fun () ->
        match u with
        | Update.Insert _ -> Ins (Update.apply_insert store u ~targets)
        | Update.Delete _ -> Del (Update.apply_delete store ~targets)
        | Update.Replace_value { text; _ } ->
          let d, i = Update.apply_replace store ~text ~targets in
          Repl (d, i))
  in
  let r = propagate_applied ~commit:true ~watches ?prune mv applied in
  r.timing.Timing.find_target <- b.Timing.find_target;
  r.timing.Timing.apply_doc <- b.Timing.apply_doc;
  r

let propagate_insert ?prune mv u =
  match u with
  | Update.Insert _ -> propagate ?prune mv u
  | Update.Delete _ | Update.Replace_value _ ->
    invalid_arg "Maint.propagate_insert: not an insertion"

let propagate_delete ?prune mv u =
  match u with
  | Update.Delete _ -> propagate ?prune mv u
  | Update.Insert _ | Update.Replace_value _ ->
    invalid_arg "Maint.propagate_delete: not a deletion"

module Terms = struct
  let candidates mv ~scope = candidate_terms mv ~scope

  let survives mv delta ~scope ~kind s =
    let kind = match kind with `Insert -> KInsert | `Delete -> KDelete in
    term_survives mv delta ~scope ~kind s

  let eval mv delta ~scope ~s_set ~survivors_only =
    eval_term mv delta ~scope ~s_set ~survivors_only
end
