(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) over strings.
    Integrity footer of the {!Mview_codec} v2 format. *)

(** [string ?pos ?len s] is the CRC-32 of the given substring (default:
    all of [s]), as a non-negative int in [0, 2^32).
    @raise Invalid_argument on an out-of-bounds range. *)
val string : ?pos:int -> ?len:int -> string -> int
