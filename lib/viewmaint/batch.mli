(** Shared-work batch maintenance helpers for [View_set].

    Two ingredients: the {e relevance pre-filter} — decide from an
    [Mview]'s cached label footprint whether an update can possibly touch
    it — and the {e domain pool} used to propagate an update to many
    clean views in parallel.

    Read-only-store contract: tasks handed to {!parallel_map} run on
    child domains and therefore must not mutate shared state. View
    propagation with [~commit:false] qualifies: it reads the store's
    committed relations and writes only view-private structures
    ({!Store.commit} additionally raises off the main domain). Obs
    counter/timer increments performed inside tasks are buffered
    per-domain and merged into the registry before [parallel_map]
    returns. *)

(** The label set an applied update touches: for inserts/deletes, the
    shared index's label map; for replace-value, only text contents
    change. *)
type update_labels =
  | Labels of Delta.Shared.t
  | Text_only

(** [touches labels tag]: the update region contains a node matching
    [tag] ([*] matches any element). *)
val touches : update_labels -> string -> bool

(** [relevant mv labels]: the view's footprint intersects the update's
    labels. Views with a [*] node are always relevant. *)
val relevant : Mview.t -> update_labels -> bool

(** [can_skip mv labels]: propagation for [mv] would provably be a no-op
    — disjoint footprint and no stored val/cont payloads ([cvn] empty).
    The caller must additionally check its value-predicate watches; a
    flipped watch forces the rebuild path regardless. *)
val can_skip : Mview.t -> update_labels -> bool

(** [routes_heavy ~heavy mv labels]: the update's delta reaches [mv]
    through a label the [heavy] predicate classifies as heavy — the
    adaptive maintenance path defers such deltas into the view's side
    buffer instead of propagating eagerly. *)
val routes_heavy : heavy:(string -> bool) -> Mview.t -> update_labels -> bool

(** [parallel_map ~jobs tasks] runs the thunks across [jobs] domains
    (round-robin striping, stripe 0 on the calling domain) and returns
    their results in task order. [jobs] is clamped to
    [1 .. Array.length tasks], so [jobs <= 1] — including zero and
    negative values — degenerates to a plain sequential map on the
    calling domain: same results, no spawning.

    Worker domains come from a lazily-grown persistent pool (spawned
    once, parked between calls, stopped at exit) rather than a fresh
    [Domain.spawn] per call; stripe assignment, Obs contribution merge
    order and exception selection are by stripe index either way, so
    results are bit-identical to the unpooled implementation.
    If a task raises, the exception is re-raised after all stripes have
    been awaited and their Obs contributions merged. *)
val parallel_map : jobs:int -> (unit -> 'a) array -> 'a array

(** Persistent worker domains currently in the pool (for tests). *)
val pool_size : unit -> int
