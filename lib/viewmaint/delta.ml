type t = {
  tables : Tuple_table.t array;
  region : Id_region.t;
  target_ids : Dewey.t list;
}

(* [nodes] counts update-region nodes scanned during extraction (inserted
   nodes for Δ⁺, region-span entries for Δ⁻); [rows] counts the delta-table
   rows produced. Both are bounded by the update's subtree size times the
   pattern width — never by the document. With a shared index, [nodes] and
   [extractions] are charged once per update (at index build time) while
   [rows] is still charged per consuming view, so the scan-work counters
   are independent of the number of registered views. *)
let obs = Obs.Scope.v "maint.delta"
let c_nodes = Obs.Scope.counter obs "nodes"
let c_rows = Obs.Scope.counter obs "rows"
let c_extractions = Obs.Scope.counter obs "extractions"

let flush_rows tables =
  if Obs.enabled () then
    Obs.Counter.add c_rows
      (Array.fold_left (fun acc tb -> acc + Tuple_table.length tb) 0 tables)

(* Shared update-region index: the label → sorted-entries map over the
   update region, built once per applied update. Per-view Δ extraction
   ({!of_shared}) then reduces to a hash lookup per pattern node plus the
   view-specific vpred/anchor filter — no re-walk of the inserted forest
   and no re-extraction of relation spans. *)
module Shared = struct
  (* Entries are stored alongside the parallel array of arena handles
     so that columnar Δ extraction never re-interns; the boxed view
     simply ignores the handle halves. *)
  type nonrec t = {
    sh_region : Id_region.t;
    sh_targets : Dewey.t list;
    sh_arena : Dewey_arena.t;
    sh_by_label : (string, Store.entry array * int array) Hashtbl.t;
        (* each array pair in document order *)
    sh_star : Store.entry array * int array;
        (* element entries only, document order *)
  }

  let region t = t.sh_region
  let target_ids t = t.sh_targets
  let arena t = t.sh_arena
  let mem_label t l = Hashtbl.mem t.sh_by_label l
  let has_elements t = Array.length (fst t.sh_star) > 0

  let exists_label t pred =
    Hashtbl.fold (fun l _ acc -> acc || pred l) t.sh_by_label false

  let label_counts t =
    Hashtbl.fold
      (fun l (es, _) acc -> (l, Array.length es) :: acc)
      t.sh_by_label []

  let is_element_label l =
    String.length l = 0 || (l.[0] <> '@' && l.[0] <> '#')

  let lookup t tag =
    if tag = "*" then t.sh_star
    else
      match Hashtbl.find_opt t.sh_by_label tag with
      | Some a -> a
      | None -> ([||], [||])

  (* One Xml_tree.iter pass over the attached forests, one sort, one
     stable group-by-label. Grouping by Xml_tree.label is equivalent to
     Pattern.tag_matches for exact tags: elements group under their name,
     attributes under "@name", text under "#text". *)
  let split_pairs pairs =
    (Array.map fst pairs, Array.map snd pairs)

  let of_insert store (applied : Update.applied_insert) =
    let entries = ref [] and count = ref 0 and roots = ref [] in
    List.iter
      (fun (_target_id, forest) ->
        List.iter
          (fun tree ->
            roots := Store.id_of store tree :: !roots;
            Xml_tree.iter
              (fun n ->
                incr count;
                entries :=
                  ({ Store.id = Store.id_of store n; node = n },
                   Store.handle_of_node store n)
                  :: !entries)
              tree)
          forest)
      applied.Update.pairs;
    let arr = Array.of_list !entries in
    Array.sort (fun (a, _) (b, _) -> Dewey.compare a.Store.id b.Store.id) arr;
    Obs.Counter.add c_nodes !count;
    Obs.Counter.incr c_extractions;
    let groups = Hashtbl.create 16 in
    Array.iter
      (fun ((e, _) as p) ->
        let l = Xml_tree.label e.Store.node in
        match Hashtbl.find_opt groups l with
        | Some acc -> acc := p :: !acc
        | None -> Hashtbl.add groups l (ref [ p ]))
      arr;
    let by_label = Hashtbl.create 16 in
    Hashtbl.iter
      (fun l acc ->
        Hashtbl.replace by_label l
          (split_pairs (Array.of_list (List.rev !acc))))
      groups;
    let star =
      split_pairs
        (Array.of_list
           (List.filter
              (fun (e, _) -> e.Store.node.Xml_tree.kind = Xml_tree.Element)
              (Array.to_list arr)))
    in
    {
      sh_region = Id_region.of_roots !roots;
      sh_targets = List.map fst applied.Update.pairs;
      sh_arena = Store.arena store;
      sh_by_label = by_label;
      sh_star = star;
    }

  (* Region-span extraction keyed by label: every relation's slice inside
     the deleted region, via binary-searched spans — O(labels × roots ×
     log |R| + region) once per update, however many views consume it.

     [wanted] narrows the indexed labels to the callers' interests (the
     union of the consuming views' pattern tags, ["*"] standing for every
     element label): extracting slices for labels no view can mention is
     pure waste, and on label-rich documents it dominates the build.
     Labels outside [wanted] are absent from the index, so callers must
     not look them up. *)
  let of_delete ?wanted store (applied : Update.applied_delete) =
    let labels =
      match wanted with
      | None -> Store.relation_labels store
      | Some tags ->
        let star = List.mem "*" tags in
        List.filter
          (fun l -> (star && is_element_label l) || List.mem l tags)
          (Store.relation_labels store)
    in
    let region = Id_region.of_roots applied.Update.roots in
    let by_label = Hashtbl.create 16 in
    let star_groups = ref [] and total = ref 0 in
    List.iter
      (fun label ->
        let (entries, handles) = Plan.region_slices_handles store label region in
        if Array.length entries > 0 then begin
          total := !total + Array.length entries;
          Hashtbl.replace by_label label (entries, handles);
          if is_element_label label then
            star_groups := Array.map2 (fun e h -> (e, h)) entries handles :: !star_groups
        end)
      labels;
    Obs.Counter.add c_nodes !total;
    Obs.Counter.incr c_extractions;
    let star = Array.concat !star_groups in
    Array.sort (fun (a, _) (b, _) -> Dewey.compare a.Store.id b.Store.id) star;
    {
      sh_region = region;
      sh_targets = applied.Update.roots;
      sh_arena = Store.arena store;
      sh_by_label = by_label;
      sh_star = split_pairs star;
    }
end

(* extr-pattern against the shared index: per pattern node, a label lookup
   plus the view's value-predicate and root-anchor filter. Entries arrive
   already in document order, so no per-table sort is needed. *)
let of_shared (sh : Shared.t) pat =
  let k = Pattern.node_count pat in
  let columnar = Tuple_table.columnar_enabled () in
  let tables =
    Array.init k (fun i ->
        let entries, handles = Shared.lookup sh pat.Pattern.tags.(i) in
        if columnar then begin
          (* Handles come pre-interned from the shared index, so this
             per-view extraction is allocation-lean and safe to run from
             child domains: a filter over an int column. *)
          let buf = Array.make (Array.length handles) 0 in
          let kept = ref 0 in
          Array.iteri
            (fun idx e ->
              if
                Pattern.vpred_holds pat i e.Store.node
                && Plan.root_anchor_ok pat i e.Store.id
              then begin
                buf.(!kept) <- handles.(idx);
                incr kept
              end)
            entries;
          Tuple_table.of_handles ~sorted:true ~arena:(Shared.arena sh) ~node:i
            (Array.sub buf 0 !kept)
        end
        else begin
          let matching = ref [] in
          Array.iter
            (fun e ->
              if
                Pattern.vpred_holds pat i e.Store.node
                && Plan.root_anchor_ok pat i e.Store.id
              then matching := e.Store.id :: !matching)
            entries;
          Tuple_table.of_ids ~sorted:true ~node:i
            (Array.of_list (List.rev !matching))
        end)
  in
  flush_rows tables;
  {
    tables;
    region = Shared.region sh;
    target_ids = Shared.target_ids sh;
  }

let of_insert store pat (applied : Update.applied_insert) =
  of_shared (Shared.of_insert store applied) pat

(* Δ⁻ extraction is set-oriented: the deleted [l]-nodes are exactly the
   entries of the (pre-update) canonical relation R_l lying inside the
   deleted region. Each table is built from the region's binary-searched
   relation spans, so the cost is bounded by the update's subtree — not
   the size of the label relation. *)
let of_delete store pat (applied : Update.applied_delete) =
  let region = Id_region.of_roots applied.Update.roots in
  let k = Pattern.node_count pat in
  let columnar = Tuple_table.columnar_enabled () in
  let tables =
    Array.init k (fun i ->
        if columnar then begin
          let entries, handles = Plan.entries_in_region_handles store pat i region in
          Obs.Counter.add c_nodes (Array.length entries);
          let buf = Array.make (Array.length handles) 0 in
          let kept = ref 0 in
          Array.iteri
            (fun idx e ->
              if
                Pattern.vpred_holds pat i e.Store.node
                && Plan.root_anchor_ok pat i e.Store.id
              then begin
                buf.(!kept) <- handles.(idx);
                incr kept
              end)
            entries;
          Tuple_table.of_handles ~sorted:true ~arena:(Store.arena store) ~node:i
            (Array.sub buf 0 !kept)
        end
        else begin
          let entries = Plan.entries_in_region store pat i region in
          Obs.Counter.add c_nodes (Array.length entries);
          let matching = ref [] in
          Array.iter
            (fun e ->
              if
                Pattern.vpred_holds pat i e.Store.node
                && Plan.root_anchor_ok pat i e.Store.id
              then matching := e.Store.id :: !matching)
            entries;
          Tuple_table.of_ids ~sorted:true ~node:i
            (Array.of_list (List.rev !matching))
        end)
  in
  Obs.Counter.incr c_extractions;
  flush_rows tables;
  { tables; region; target_ids = applied.Update.roots }

let nonempty t i = not (Tuple_table.is_empty t.tables.(i))
