type t = {
  tables : Tuple_table.t array;
  region : Id_region.t;
  target_ids : Dewey.t list;
}

(* [nodes] counts update-region nodes scanned during extraction (inserted
   nodes for Δ⁺, region-span entries for Δ⁻); [rows] counts the delta-table
   rows produced. Both are bounded by the update's subtree size times the
   pattern width — never by the document. *)
let obs = Obs.Scope.v "maint.delta"
let c_nodes = Obs.Scope.counter obs "nodes"
let c_rows = Obs.Scope.counter obs "rows"
let c_extractions = Obs.Scope.counter obs "extractions"

let flush_tables tables =
  if Obs.enabled () then begin
    Obs.Counter.incr c_extractions;
    Obs.Counter.add c_rows
      (Array.fold_left (fun acc tb -> acc + Tuple_table.length tb) 0 tables)
  end

(* extr-pattern over a list of (id, node) pairs: one pass per pattern node
   keeps each table in insertion order; a final sort restores document
   order. *)
let build_tables pat pairs =
  let k = Pattern.node_count pat in
  Array.init k (fun i ->
      let matching =
        List.filter_map
          (fun (id, node) ->
            if
              Pattern.tag_matches pat.Pattern.tags.(i) node
              && Pattern.vpred_holds pat i node
              && Plan.root_anchor_ok pat i id
            then Some id
            else None)
          pairs
      in
      let arr = Array.of_list matching in
      Array.sort Dewey.compare arr;
      Tuple_table.of_ids ~sorted:true ~node:i arr)

let of_insert store pat (applied : Update.applied_insert) =
  let pairs = ref [] in
  let roots = ref [] in
  List.iter
    (fun (_target_id, forest) ->
      List.iter
        (fun tree ->
          roots := Store.id_of store tree :: !roots;
          Xml_tree.iter (fun n -> pairs := (Store.id_of store n, n) :: !pairs) tree)
        forest)
    applied.Update.pairs;
  let tables = build_tables pat (List.rev !pairs) in
  Obs.Counter.add c_nodes (List.length !pairs);
  flush_tables tables;
  {
    tables;
    region = Id_region.of_roots !roots;
    target_ids = List.map fst applied.Update.pairs;
  }

(* Δ⁻ extraction is set-oriented: the deleted [l]-nodes are exactly the
   entries of the (pre-update) canonical relation R_l lying inside the
   deleted region. Each table is built from the region's binary-searched
   relation spans, so the cost is bounded by the update's subtree — not
   the size of the label relation. *)
let of_delete store pat (applied : Update.applied_delete) =
  let region = Id_region.of_roots applied.Update.roots in
  let k = Pattern.node_count pat in
  let tables =
    Array.init k (fun i ->
        let entries = Plan.entries_in_region store pat i region in
        Obs.Counter.add c_nodes (Array.length entries);
        let matching = ref [] in
        Array.iter
          (fun e ->
            if
              Pattern.vpred_holds pat i e.Store.node
              && Plan.root_anchor_ok pat i e.Store.id
            then matching := e.Store.id :: !matching)
          entries;
        Tuple_table.of_ids ~sorted:true ~node:i
          (Array.of_list (List.rev !matching)))
  in
  flush_tables tables;
  { tables; region; target_ids = applied.Update.roots }

let nonempty t i = not (Tuple_table.is_empty t.tables.(i))
