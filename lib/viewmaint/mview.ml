type policy = Snowcaps | Leaves | Chosen of Lattice.nset list

type cell = {
  cell_id : Dewey.t;
  mutable cell_value : string option;
  mutable cell_content : string option;
}

type entry = { mutable count : int; cells : cell array }

(* The label footprint is cached at materialization time so the batch
   engine's relevance pre-filter is a pure lookup per update. *)
type footprint = { fp_star : bool; fp_tags : string array }

type t = {
  pat : Pattern.t;
  store : Store.t;
  policy : policy;
  stored : int array;
  cvn : int array;
  all_snowcaps : Lattice.nset list;
  footprint : footprint;
  mutable mats : (Lattice.nset * Tuple_table.t) list;
  entries : (string, entry) Hashtbl.t;
}

let footprint_of pat =
  let star = ref false in
  let tags = Hashtbl.create 8 in
  Array.iter
    (fun tag -> if tag = "*" then star := true else Hashtbl.replace tags tag ())
    pat.Pattern.tags;
  { fp_star = !star; fp_tags = Array.of_seq (Hashtbl.to_seq_keys tags) }

(* Dewey encodings are self-delimiting, so their concatenation is an
   injective key for the projected tuple. *)
let key_of mv get =
  let buf = Buffer.create 32 in
  Array.iter (fun i -> Buffer.add_string buf (Dewey.encode (get i))) mv.stored;
  Buffer.contents buf

let make_cell mv i id =
  let annot = mv.pat.Pattern.annots.(i) in
  let node = Store.node_of mv.store id in
  let value =
    if annot.Pattern.store_val then Option.map Xml_tree.string_value node else None
  in
  let content =
    if annot.Pattern.store_cont then Option.map Xml_tree.serialize node else None
  in
  { cell_id = id; cell_value = value; cell_content = content }

let add_binding mv get =
  let key = key_of mv get in
  match Hashtbl.find_opt mv.entries key with
  | Some e -> e.count <- e.count + 1
  | None ->
    let cells = Array.map (fun i -> make_cell mv i (get i)) mv.stored in
    Hashtbl.add mv.entries key { count = 1; cells }

let remove_binding mv get =
  let key = key_of mv get in
  match Hashtbl.find_opt mv.entries key with
  | None -> invalid_arg "Mview.remove_binding: tuple not in view"
  | Some e ->
    e.count <- e.count - 1;
    if e.count <= 0 then Hashtbl.remove mv.entries key

let mat_for mv s =
  List.find_map
    (fun (set, table) -> if Lattice.equal set s then Some table else None)
    mv.mats

let set_mats mv mats = mv.mats <- mats

let refresh_cell mv ~stored_node cell =
  match Store.node_of mv.store cell.cell_id with
  | None -> false
  | Some node ->
    let annot = mv.pat.Pattern.annots.(stored_node) in
    if annot.Pattern.store_val then cell.cell_value <- Some (Xml_tree.string_value node);
    if annot.Pattern.store_cont then cell.cell_content <- Some (Xml_tree.serialize node);
    annot.Pattern.store_val || annot.Pattern.store_cont

let populate_mats mv =
  let pat = mv.pat and store = mv.store in
  let materialize_sets sets =
    mv.mats <-
      List.map
        (fun s ->
          let table =
            Plan.eval_subtree pat
              ~atom:(fun i -> Plan.atom_of_store store pat i)
              ~within:(Lattice.mem s) ~root:0
          in
          (s, table))
        sets
  in
  match mv.policy with
  | Leaves -> ()
  | Snowcaps -> materialize_sets (Lattice.chain pat)
  | Chosen sets ->
    let all = mv.all_snowcaps in
    List.iter
      (fun s ->
        if not (List.exists (Lattice.equal s) all) then
          invalid_arg "Mview.materialize: Chosen set is not a snowcap of the view")
      sets;
    materialize_sets sets

let populate mv =
  let pat = mv.pat and store = mv.store in
  let full = Plan.eval store pat in
  let positions = Array.map (fun i -> Tuple_table.col_pos full i) mv.stored in
  for r = 0 to Tuple_table.length full - 1 do
    (* [get] is only consulted on stored nodes; cell-wise access skips
       boxed row materialization on columnar tables. *)
    let get i =
      let rec find p =
        if mv.stored.(p) = i then Tuple_table.cell_id full r positions.(p)
        else find (p + 1)
      in
      find 0
    in
    add_binding mv get
  done;
  populate_mats mv

let materialize ?(policy = Snowcaps) store pat =
  let mv =
    {
      pat;
      store;
      policy;
      stored = Array.of_list (Pattern.stored_nodes pat);
      cvn = Array.of_list (Pattern.cvn pat);
      all_snowcaps = Lattice.snowcaps pat;
      footprint = footprint_of pat;
      mats = [];
      entries = Hashtbl.create 1024;
    }
  in
  populate mv;
  mv

let rebuild mv =
  Hashtbl.reset mv.entries;
  mv.mats <- [];
  populate mv

let empty_shell ?(policy = Snowcaps) store pat =
  let mv =
    {
      pat;
      store;
      policy;
      stored = Array.of_list (Pattern.stored_nodes pat);
      cvn = Array.of_list (Pattern.cvn pat);
      all_snowcaps = Lattice.snowcaps pat;
      footprint = footprint_of pat;
      mats = [];
      entries = Hashtbl.create 1024;
    }
  in
  populate_mats mv;
  mv

let restore_entry mv ~count ~cells =
  if Array.length cells <> Array.length mv.stored then
    invalid_arg "Mview.restore_entry: cell arity mismatch";
  let buf = Buffer.create 32 in
  Array.iter (fun c -> Buffer.add_string buf (Dewey.encode c.cell_id)) cells;
  Hashtbl.replace mv.entries (Buffer.contents buf) { count; cells }

let cardinality mv = Hashtbl.length mv.entries

let total_count mv = Hashtbl.fold (fun _ e acc -> acc + e.count) mv.entries 0

let iter_entries mv f = Hashtbl.iter (fun _ e -> f e) mv.entries

let dump mv =
  let items =
    Hashtbl.fold (fun key e acc -> (key, e.count, e.cells) :: acc) mv.entries []
  in
  List.sort (fun (a, _, _) (b, _, _) -> Stdlib.compare a b) items
