(** A set of materialized views over one store, maintained together: each
    update statement locates its targets and mutates the document {e
    once}, then propagates to every view (the canonical relations commit
    after the last propagation). This is the "several views materialized"
    deployment the paper's Section 3.5 discusses. *)

type t

val create : Store.t -> t

val store : t -> Store.t

(** [add set ?policy pat] materializes a new view in the set and returns
    it. Views are keyed by their pattern's [name].
    @raise Invalid_argument if a view with the same name exists. *)
val add : t -> ?policy:Mview.policy -> Pattern.t -> Mview.t

(** [add_view set mv] installs an already-materialized view (e.g. one
    restored from an {!Mview_codec} image by the recovery path).
    @raise Invalid_argument if a view with the same name exists or [mv]
    was materialized over a different store. *)
val add_view : t -> Mview.t -> unit

(** [set_journal set hook] installs (or, with [None], removes) a
    write-ahead hook: {!update} calls it with the statement {e before}
    any document mutation, so a crash between journaling and commit
    replays the statement in full. The durability layer ([Durable])
    points this at its log appender. *)
val set_journal : t -> (Update.t -> unit) option -> unit

(** [set_independence set prover] installs (or removes) a static
    query-update independence prover, e.g.
    [Answer.Independence.prover dtd] partially applied to a DTD the
    document is valid for. During {!update}, every view the prover
    discharges is skipped {e before} target location, watch recording or
    delta-index construction — it gets a zeroed report with
    [Maint.skipped_irrelevant] set, exactly like the label-footprint
    skip. The prover must be sound: a wrongly-discharged view silently
    diverges from the document (the differential oracle
    [Difftest.run_indep] exists to catch unsound provers). *)
val set_independence : t -> (Update.t -> Mview.t -> bool) option -> unit

(** [find set name] — the view named [name], if any. O(1): views are
    name-indexed in a hash table besides the insertion-ordered list. *)
val find : t -> string -> Mview.t option

(** [remove set name] drops a view from the set (the store is
    untouched). *)
val remove : t -> string -> unit

(** Views in insertion order. *)
val views : t -> Mview.t list

(** [update ?jobs set u] applies [u] to the document once and maintains
    every view from a shared update-region index ({!Delta.Shared}, built
    once per update); reports are in view insertion order. The shared
    work — target location, document mutation, index build, the single
    store commit — is timed into the first report.

    Views whose label footprint is provably untouched by the update are
    skipped outright and get a zeroed report with
    [Maint.skipped_irrelevant] set.

    [jobs] (default [1]) fans clean-view propagation out across that
    many OCaml domains; values [<= 1] (including zero and negative,
    which are clamped) run sequentially on the calling domain. Propagation before the commit is read-only on
    the store and views are pairwise independent, so the results are
    {e bit-identical} to [jobs = 1] (timing fields aside) — reports are
    reassembled in insertion order and per-domain Obs counters are
    merged back into the registry. Views needing a rebuild (flipped
    value-predicate watch, or a replace-value against a view with
    structural ["#text"] nodes) always run sequentially on the calling
    domain, after the commit. *)
val update : ?jobs:int -> t -> Update.t -> (Mview.t * Maint.report) list
