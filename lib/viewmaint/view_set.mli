(** A set of materialized views over one store, maintained together: each
    update statement locates its targets and mutates the document {e
    once}, then propagates to every view (the canonical relations commit
    after the last propagation). This is the "several views materialized"
    deployment the paper's Section 3.5 discusses. *)

type t

val create : Store.t -> t

val store : t -> Store.t

(** [add set ?policy pat] materializes a new view in the set and returns
    it. Views are keyed by their pattern's [name].
    @raise Invalid_argument if a view with the same name exists. *)
val add : t -> ?policy:Mview.policy -> Pattern.t -> Mview.t

(** [add_view set mv] installs an already-materialized view (e.g. one
    restored from an {!Mview_codec} image by the recovery path).
    @raise Invalid_argument if a view with the same name exists or [mv]
    was materialized over a different store. *)
val add_view : t -> Mview.t -> unit

(** [set_journal set hook] installs (or, with [None], removes) a
    write-ahead hook: {!update} calls it with the statement {e before}
    any document mutation, so a crash between journaling and commit
    replays the statement in full. The durability layer ([Durable])
    points this at its log appender. *)
val set_journal : t -> (Update.t -> unit) option -> unit

(** [set_independence set prover] installs (or removes) a static
    query-update independence prover, e.g.
    [Answer.Independence.prover dtd] partially applied to a DTD the
    document is valid for. During {!update}, every view the prover
    discharges is skipped {e before} target location, watch recording or
    delta-index construction — it gets a zeroed report with
    [Maint.skipped_irrelevant] set, exactly like the label-footprint
    skip. The prover must be sound: a wrongly-discharged view silently
    diverges from the document (the differential oracle
    [Difftest.run_indep] exists to catch unsound provers). *)
val set_independence : t -> (Update.t -> Mview.t -> bool) option -> unit

(** {1 Adaptive (heavy-light) maintenance}

    With a classifier installed ({!set_adaptive}), {!update} defers
    propagation for any view the update's delta reaches through a
    heavy-partitioned label (see [Hl] and [Batch.routes_heavy]): the
    view is marked {e stale}, its report is the zeroed skipped report,
    and the deferred delta work is accounted against the classifier's
    drain budget. No payload is buffered — a drain is an exact
    [Mview.rebuild] from the committed store, so it reconciles any mix
    of deferred inserts, deletes, replaces and value-predicate flips.
    Drains happen when a view's accumulated work crosses the budget, or
    explicitly via {!drain_view} / {!drain_all} — which readers
    (snapshot publication in [Serve], any direct [Mview] consumer) must
    call before trusting view contents. Non-heavy-routing updates take
    the usual eager path, so on documents with no heavy labels adaptive
    maintenance behaves exactly like eager maintenance. *)

(** [set_adaptive set hl] installs (or, with [None], removes) the
    heavy-light classifier. Any stale views are drained first, and the
    previous classifier's store partition is detached. *)
val set_adaptive : t -> Hl.t option -> unit

(** The installed classifier, if any. *)
val adaptive : t -> Hl.t option

(** Names of views whose materialized image is stale (deferred work
    pending), in insertion order. *)
val stale : t -> string list

(** [drain_view set name] rebuilds the named view from the committed
    store if it was stale. Returns whether a drain happened. *)
val drain_view : t -> string -> bool

(** Drain every stale view; returns the drained names in insertion
    order. *)
val drain_all : t -> string list

(** [find set name] — the view named [name], if any. O(1): views are
    name-indexed in a hash table besides the insertion-ordered list. *)
val find : t -> string -> Mview.t option

(** [remove set name] drops a view from the set (the store is
    untouched). *)
val remove : t -> string -> unit

(** Views in insertion order. *)
val views : t -> Mview.t list

(** [update ?jobs set u] applies [u] to the document once and maintains
    every view from a shared update-region index ({!Delta.Shared}, built
    once per update); reports are in view insertion order. The shared
    work — target location, document mutation, index build, the single
    store commit — is timed into the first report.

    Views whose label footprint is provably untouched by the update are
    skipped outright and get a zeroed report with
    [Maint.skipped_irrelevant] set.

    [jobs] (default [1]) fans clean-view propagation out across that
    many OCaml domains; values [<= 1] (including zero and negative,
    which are clamped) run sequentially on the calling domain. Propagation before the commit is read-only on
    the store and views are pairwise independent, so the results are
    {e bit-identical} to [jobs = 1] (timing fields aside) — reports are
    reassembled in insertion order and per-domain Obs counters are
    merged back into the registry. Views needing a rebuild (flipped
    value-predicate watch, or a replace-value against a view with
    structural ["#text"] nodes) always run sequentially on the calling
    domain, after the commit. *)
val update : ?jobs:int -> t -> Update.t -> (Mview.t * Maint.report) list
