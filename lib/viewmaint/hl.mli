(** Heavy-light label classifier for adaptive maintenance (following the
    heavy-light partitioning of Kara–Olteanu-style IVM, transposed to
    the paper's algebra): a label is {e heavy} when its canonical
    relation is large or its same-label sibling fan-out is extreme —
    exactly the labels whose materialized snowcap tables make eager
    per-update propagation expensive. The classifier installs a
    partition predicate into the store ({!Store.set_partition}), so
    commits buffer heavy-label batches in pending tails, and tracks
    threshold crossings with hysteresis, migrating labels between the
    partitions with amortized cost accounting (fan-out is rescanned only
    after a label's cardinality drifts by a constant fraction).

    Counters under the [maint.hl] scope: [promotions] / [demotions]
    (partition migrations), [rescans] / [rescan_rows] (amortized
    statistics work). *)

type t

type config = {
  heavy_count : int;  (** heavy when the relation has ≥ this many rows *)
  heavy_fanout : int;  (** … or some parent has ≥ this many same-label children *)
  demote_factor : float;
      (** hysteresis: demote only below [factor ×] both thresholds *)
  drain_budget : int;
      (** deferred work units a view buffers before a forced drain
          (consumed by [View_set]) *)
  tail_budget : int;
      (** pending rows a relation buffers before commit force-merges *)
}

(** Count threshold effectively off (2^20), fan-out 64, demote at half,
    view drain budget 256, store tail budget 4096. *)
val default_config : config

(** [create ?config store] scans every relation once, classifies, and
    installs the partition predicate into [store]. *)
val create : ?config:config -> Store.t -> t

val config : t -> config
val is_heavy : t -> string -> bool

(** Heavy labels, sorted. *)
val heavy_labels : t -> string list

(** Partition migrations (promotions + demotions) since creation. *)
val migrations : t -> int

(** [rebalance t] refreshes every label's statistics (cheap count check
    per label; fan-out rescan only after significant drift) and migrates
    threshold-crossers. Demotion drains the label's pending tail. Call
    once per applied update, after {!Store.commit}. *)
val rebalance : t -> unit

(** Remove the partition predicate from the store (drains all tails). *)
val detach : t -> unit
