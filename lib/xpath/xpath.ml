type axis = Child | Descendant

type test = Name of string | Star | Attr of string

type pred =
  | Exists of path
  | Eq of path * string
  | And of pred * pred
  | Or of pred * pred

and step = { axis : axis; test : test; preds : pred list }

and path = step list

exception Parse_error of string

(* {1 Parsing} *)

type lexer = { src : string; mutable pos : int }

let lex_fail lx msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d in %S" msg lx.pos lx.src))

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let skip_ws lx =
  while (match peek lx with Some (' ' | '\t' | '\n') -> true | Some _ | None -> false) do
    lx.pos <- lx.pos + 1
  done

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name lx =
  let start = lx.pos in
  while (match peek lx with Some c -> is_name_char c | None -> false) do
    lx.pos <- lx.pos + 1
  done;
  if lx.pos = start then lex_fail lx "expected a name";
  String.sub lx.src start (lx.pos - start)

let eat lx s =
  let n = String.length s in
  if lx.pos + n <= String.length lx.src && String.sub lx.src lx.pos n = s then begin
    lx.pos <- lx.pos + n;
    true
  end
  else false

let read_literal lx =
  let quote =
    match peek lx with
    | Some (('"' | '\'') as q) ->
      lx.pos <- lx.pos + 1;
      q
    | Some _ | None -> lex_fail lx "expected a string literal"
  in
  let start = lx.pos in
  while (match peek lx with Some c -> c <> quote | None -> false) do
    lx.pos <- lx.pos + 1
  done;
  if peek lx = None then lex_fail lx "unterminated string literal";
  let s = String.sub lx.src start (lx.pos - start) in
  lx.pos <- lx.pos + 1;
  s

(* A bare word in a predicate: either a keyword ('and' / 'or') boundary or a
   path start. We parse paths first and let the caller handle keywords. *)

let rec parse_steps lx ~first_axis =
  let axis = ref first_axis in
  let steps = ref [] in
  let continue = ref true in
  while !continue do
    skip_ws lx;
    let test =
      if eat lx "@" then Attr (read_name lx)
      else if eat lx "*" then Star
      else Name (read_name lx)
    in
    let preds = ref [] in
    skip_ws lx;
    while peek lx = Some '[' do
      lx.pos <- lx.pos + 1;
      let p = parse_or lx in
      skip_ws lx;
      if not (eat lx "]") then lex_fail lx "expected ']'";
      preds := p :: !preds;
      skip_ws lx
    done;
    steps := { axis = !axis; test; preds = List.rev !preds } :: !steps;
    if eat lx "//" then axis := Descendant
    else if eat lx "/" then axis := Child
    else continue := false
  done;
  List.rev !steps

and parse_or lx =
  let left = parse_and lx in
  skip_ws lx;
  if keyword lx "or" then Or (left, parse_or lx) else left

and parse_and lx =
  let left = parse_primary lx in
  skip_ws lx;
  if keyword lx "and" then And (left, parse_and lx) else left

and keyword lx kw =
  skip_ws lx;
  let n = String.length kw in
  if
    lx.pos + n <= String.length lx.src
    && String.sub lx.src lx.pos n = kw
    && (lx.pos + n = String.length lx.src || not (is_name_char lx.src.[lx.pos + n]))
  then begin
    lx.pos <- lx.pos + n;
    true
  end
  else false

and parse_primary lx =
  skip_ws lx;
  if eat lx "(" then begin
    let p = parse_or lx in
    skip_ws lx;
    if not (eat lx ")") then lex_fail lx "expected ')'";
    p
  end
  else if eat lx "." then begin
    skip_ws lx;
    if eat lx "=" then begin
      skip_ws lx;
      Eq ([], read_literal lx)
    end
    else lex_fail lx "expected '=' after '.'"
  end
  else begin
    let axis = if eat lx "//" then Descendant else (ignore (eat lx "/") ; Child) in
    let p = parse_steps lx ~first_axis:axis in
    skip_ws lx;
    if eat lx "=" then begin
      skip_ws lx;
      Eq (p, read_literal lx)
    end
    else Exists p
  end

let parse s =
  let lx = { src = s; pos = 0 } in
  skip_ws lx;
  let first_axis =
    if eat lx "//" then Descendant
    else if eat lx "/" then Child
    else lex_fail lx "expected '/' or '//'"
  in
  let p = parse_steps lx ~first_axis in
  skip_ws lx;
  if lx.pos <> String.length s then lex_fail lx "trailing input";
  p

(* {1 Printing} *)

let test_to_string = function
  | Name n -> n
  | Star -> "*"
  | Attr a -> "@" ^ a

let rec pred_to_string = function
  | Exists p -> rel_to_string p
  | Eq ([], lit) -> Printf.sprintf ".='%s'" lit
  | Eq (p, lit) -> Printf.sprintf "%s='%s'" (rel_to_string p) lit
  | And (a, b) -> Printf.sprintf "(%s and %s)" (pred_to_string a) (pred_to_string b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (pred_to_string a) (pred_to_string b)

and step_to_string s =
  test_to_string s.test
  ^ String.concat "" (List.map (fun p -> "[" ^ pred_to_string p ^ "]") s.preds)

and rel_to_string p =
  match p with
  | [] -> "."
  | first :: rest ->
    let sep s = match s.axis with Child -> "/" | Descendant -> "//" in
    step_to_string first
    ^ String.concat "" (List.map (fun s -> sep s ^ step_to_string s) rest)

let to_string p =
  match p with
  | [] -> "/"
  | first :: _ ->
    let lead = match first.axis with Child -> "/" | Descendant -> "//" in
    lead ^ rel_to_string p

(* {1 Evaluation} *)

let test_matches test (n : Xml_tree.node) =
  match (test, n.Xml_tree.kind) with
  | Name name, Xml_tree.Element -> n.Xml_tree.name = name
  | Star, Xml_tree.Element -> true
  | Attr name, Xml_tree.Attribute -> n.Xml_tree.name = name
  | (Name _ | Star), (Xml_tree.Attribute | Xml_tree.Text) -> false
  | Attr _, (Xml_tree.Element | Xml_tree.Text) -> false

let rec holds node pred =
  match pred with
  | Exists p -> matches_from node p <> []
  | Eq ([], lit) -> Xml_tree.string_value node = lit
  | Eq (p, lit) ->
    List.exists (fun n -> Xml_tree.string_value n = lit) (matches_from node p)
  | And (a, b) -> holds node a && holds node b
  | Or (a, b) -> holds node a || holds node b

(* One evaluation step from a single context node; result order follows the
   traversal, i.e. document order for that context. *)
and step_from node step =
  let candidates =
    match step.axis with
    | Child -> node.Xml_tree.children
    | Descendant ->
      let acc = ref [] in
      let rec walk n =
        List.iter
          (fun c ->
            acc := c :: !acc;
            walk c)
          n.Xml_tree.children
      in
      walk node;
      List.rev !acc
  in
  List.filter
    (fun c -> test_matches step.test c && List.for_all (holds c) step.preds)
    candidates

and matches_from node path =
  match path with
  | [] -> [ node ]
  | step :: rest ->
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    let rec go ctx remaining =
      match remaining with
      | [] ->
        if not (Hashtbl.mem seen ctx.Xml_tree.serial) then begin
          Hashtbl.add seen ctx.Xml_tree.serial ();
          out := ctx :: !out
        end
      | s :: rest -> List.iter (fun n -> go n rest) (step_from ctx s)
    in
    List.iter (fun n -> go n rest) (step_from node step);
    List.rev !out

(* When context nodes nest (e.g. after a descendant step), depth-first
   expansion is not globally document-ordered, so [eval] sorts its final
   result. Rather than ranking the whole document (O(document) per query,
   however small the result), each result gets a root-path signature of
   sibling positions; lexicographic order on signatures is preorder, and
   an ancestor's signature is a strict prefix of its descendants'. Cost
   is O(results × (depth + fanout on the path)). *)

let path_signature n =
  let rec up n acc =
    match n.Xml_tree.parent with
    | None -> acc
    | Some p ->
      let rec index i = function
        | [] -> invalid_arg "Xpath: node missing from its parent"
        | c :: rest -> if c == n then i else index (i + 1) rest
      in
      up p (index 0 p.Xml_tree.children :: acc)
  in
  Array.of_list (up n [])

let signature_compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Stdlib.compare (a.(i) : int) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let eval root path =
  let results =
    match path with
    | [] -> [ root ]
    | first :: rest ->
      let ctx0 =
        match first.axis with
        | Child ->
          if
            test_matches first.test root
            && List.for_all (holds root) first.preds
          then [ root ]
          else []
        | Descendant ->
          List.filter
            (fun n ->
              test_matches first.test n && List.for_all (holds n) first.preds)
            (Xml_tree.descendants_or_self root)
      in
      let seen = Hashtbl.create 64 in
      let out = ref [] in
      List.iter
        (fun c ->
          List.iter
            (fun n ->
              if not (Hashtbl.mem seen n.Xml_tree.serial) then begin
                Hashtbl.add seen n.Xml_tree.serial ();
                out := n :: !out
              end)
            (matches_from c rest))
        ctx0;
      List.rev !out
  in
  (* Sort into document order by root-path signature. *)
  match results with
  | [] | [ _ ] -> results
  | _ ->
    List.map (fun n -> (path_signature n, n)) results
    |> List.sort (fun (a, _) (b, _) -> signature_compare a b)
    |> List.map snd
