type axis = Child | Descendant

type annot = { store_id : bool; store_val : bool; store_cont : bool }

let no_annot = { store_id = false; store_val = false; store_cont = false }

type t = {
  name : string;
  tags : string array;
  axes : axis array;
  parents : int array;
  annots : annot array;
  vpreds : string option array;
}

type spec = {
  s_tag : string;
  s_axis : axis;
  s_annot : annot;
  s_vpred : string option;
  s_children : spec list;
}

let n ?(axis = Descendant) ?(id = false) ?(value = false) ?(content = false) ?vpred
    tag children =
  {
    s_tag = tag;
    s_axis = axis;
    s_annot = { store_id = id; store_val = value; store_cont = content };
    s_vpred = vpred;
    s_children = children;
  }

(* cvn nodes must also store IDs (Section 3.6). *)
let force_id a =
  if (a.store_val || a.store_cont) && not a.store_id then { a with store_id = true }
  else a

let compile ~name root =
  let count =
    let rec sz s = List.fold_left (fun acc c -> acc + sz c) 1 s.s_children in
    sz root
  in
  let tags = Array.make count "" in
  let axes = Array.make count Descendant in
  let parents = Array.make count (-1) in
  let annots = Array.make count no_annot in
  let vpreds = Array.make count None in
  let next = ref 0 in
  let rec fill s parent =
    let i = !next in
    incr next;
    tags.(i) <- s.s_tag;
    axes.(i) <- s.s_axis;
    parents.(i) <- parent;
    annots.(i) <- force_id s.s_annot;
    vpreds.(i) <- s.s_vpred;
    List.iter (fun c -> fill c i) s.s_children
  in
  fill root (-1);
  { name; tags; axes; parents; annots; vpreds }

let node_count t = Array.length t.tags

let children t i =
  let out = ref [] in
  for j = Array.length t.parents - 1 downto 0 do
    if t.parents.(j) = i then out := j :: !out
  done;
  !out

let stored_nodes t =
  let out = ref [] in
  for i = Array.length t.annots - 1 downto 0 do
    let a = t.annots.(i) in
    if a.store_id || a.store_val || a.store_cont then out := i :: !out
  done;
  !out

let cvn t =
  let out = ref [] in
  for i = Array.length t.annots - 1 downto 0 do
    let a = t.annots.(i) in
    if a.store_val || a.store_cont then out := i :: !out
  done;
  !out

let descendants t i =
  (* Preorder layout: descendants of [i] are the contiguous indices after
     [i] whose parent chain reaches [i]. *)
  let out = ref [] in
  let n = node_count t in
  let rec reaches j = j <> -1 && (j = i || reaches t.parents.(j)) in
  for j = n - 1 downto i + 1 do
    if reaches t.parents.(j) then out := j :: !out
  done;
  !out

let tag_matches tag (node : Xml_tree.node) =
  match node.Xml_tree.kind with
  | Xml_tree.Element -> tag = "*" || tag = node.Xml_tree.name
  | Xml_tree.Attribute ->
    String.length tag > 1 && tag.[0] = '@'
    && String.sub tag 1 (String.length tag - 1) = node.Xml_tree.name
  | Xml_tree.Text -> tag = "#text"

let tag_subsumes general specific =
  general = specific
  || general = "*"
     && specific <> "#text"
     && not (String.length specific > 0 && specific.[0] = '@')

let subpattern t i ~name =
  if i < 0 || i >= node_count t then invalid_arg "Pattern.subpattern";
  (* Preorder layout: the subtree of [i] is the contiguous index range
     [i .. i + |desc i|], so new index = old index - i. *)
  let desc = descendants t i in
  let count = 1 + List.length desc in
  let sub f = Array.init count (fun j -> f (i + j)) in
  {
    name;
    tags = sub (fun j -> t.tags.(j));
    axes = sub (fun j -> if j = i then Descendant else t.axes.(j));
    parents = sub (fun j -> if j = i then -1 else t.parents.(j) - i);
    annots =
      sub (fun j ->
          if j = i then { store_id = true; store_val = false; store_cont = false }
          else t.annots.(j));
    vpreds = sub (fun j -> t.vpreds.(j));
  }

let prune t i ~name =
  if i < 0 || i >= node_count t then invalid_arg "Pattern.prune";
  let drop = descendants t i in
  let keep = ref [] in
  for j = node_count t - 1 downto 0 do
    if not (List.mem j drop) then keep := j :: !keep
  done;
  let keep = Array.of_list !keep in
  let pos = Array.make (node_count t) (-1) in
  Array.iteri (fun new_i old_i -> pos.(old_i) <- new_i) keep;
  {
    name;
    tags = Array.map (fun j -> t.tags.(j)) keep;
    axes = Array.map (fun j -> t.axes.(j)) keep;
    parents =
      Array.map (fun j -> if t.parents.(j) = -1 then -1 else pos.(t.parents.(j))) keep;
    annots =
      Array.map
        (fun j -> if j = i then { t.annots.(j) with store_id = true } else t.annots.(j))
        keep;
    vpreds = Array.map (fun j -> t.vpreds.(j)) keep;
  }

let vpred_holds t i node =
  match t.vpreds.(i) with
  | None -> true
  | Some c -> Xml_tree.string_value node = c

let to_string t =
  let buf = Buffer.create 64 in
  let annot_str i =
    let a = t.annots.(i) in
    let parts =
      (if a.store_id then [ "id" ] else [])
      @ (if a.store_val then [ "val" ] else [])
      @ if a.store_cont then [ "cont" ] else []
    in
    if parts = [] then "" else "{" ^ String.concat "," parts ^ "}"
  in
  let rec render i =
    Buffer.add_string buf (match t.axes.(i) with Child -> "/" | Descendant -> "//");
    Buffer.add_string buf t.tags.(i);
    (match t.vpreds.(i) with
    | Some c -> Buffer.add_string buf (Printf.sprintf "[val='%s']" c)
    | None -> ());
    Buffer.add_string buf (annot_str i);
    List.iter
      (fun j ->
        Buffer.add_char buf '[';
        render j;
        Buffer.add_char buf ']')
      (children t i)
  in
  render 0;
  Buffer.contents buf

let rename t name = { t with name }

let with_annots t annots =
  if Array.length annots <> node_count t then
    invalid_arg "Pattern.with_annots: length mismatch";
  { t with annots = Array.map force_id annots }
