(** Tree patterns — the view dialect {b P} of the paper (Section 2.2).

    A pattern is a rooted tree. Each node carries an element/attribute
    label (or [*]), the axis of the edge to its parent ([/] or [//]; for
    the root, the axis from a virtual node above the document root), an
    optional value predicate [[val = c]], and {e stored attributes}
    declaring which items the view materializes for that node: its
    structural [ID], its string [val]ue, and/or its serialized [cont]ent.

    Nodes are indexed in preorder: node [0] is the root. *)

type axis = Child | Descendant

type annot = { store_id : bool; store_val : bool; store_cont : bool }

val no_annot : annot

type t = private {
  name : string;
  tags : string array;
  axes : axis array;  (** [axes.(0)] anchors the root below a virtual root *)
  parents : int array;  (** [parents.(0) = -1] *)
  annots : annot array;
  vpreds : string option array;
}

(** {1 Construction} *)

type spec

(** [n tag children] describes one pattern node. [axis] defaults to
    [Descendant]. [id], [value], [content] select stored attributes;
    [vpred] attaches a [[val = c]] predicate. *)
val n :
  ?axis:axis ->
  ?id:bool ->
  ?value:bool ->
  ?content:bool ->
  ?vpred:string ->
  string ->
  spec list ->
  spec

(** [compile ~name root] freezes a spec tree into a pattern. Nodes storing
    [val] or [cont] are implicitly given [ID] storage as well, as required
    by the tuple-modification algorithms (Section 3.6). *)
val compile : name:string -> spec -> t

(** {1 Inspection} *)

val node_count : t -> int

(** Children of a node, in preorder. *)
val children : t -> int -> int list

(** Indices of nodes with at least one stored attribute, in preorder. *)
val stored_nodes : t -> int list

(** Indices of nodes storing [val] or [cont] (the set {e cvn} of the
    paper), in preorder. *)
val cvn : t -> int list

(** Descendant node indices of [i] (strict), in preorder. *)
val descendants : t -> int -> int list

(** [tag_matches tag node] — does a pattern tag accept this document
    node? [*] accepts any element; ["@x"] accepts attribute [x]. *)
val tag_matches : string -> Xml_tree.node -> bool

(** [tag_subsumes general specific]: every document node accepted by
    [specific] is accepted by [general] — equality, or [general = "*"]
    with [specific] an element tag (attributes and ["#text"] are not
    elements). The label-level test of the containment checker. *)
val tag_subsumes : string -> string -> bool

(** [subpattern pat i ~name] is the subtree of [pat] rooted at node [i]
    as a standalone pattern: the root's axis becomes [Descendant] (a
    standalone evaluation must reach the node anywhere in the document)
    and its stored attributes are reduced to [ID] alone — the join key
    the intersection planner stitches on. Descendant nodes keep their
    axes, predicates and stored attributes. *)
val subpattern : t -> int -> name:string -> t

(** [prune pat i ~name] is [pat] with the strict descendants of node [i]
    removed; node [i] additionally stores its [ID] (again the join key).
    @raise Invalid_argument if [i] is out of range. *)
val prune : t -> int -> name:string -> t

(** [vpred_holds pat i node]: value predicate of node [i] (if any) holds
    on [node]. *)
val vpred_holds : t -> int -> Xml_tree.node -> bool

(** Compact rendering, e.g. ["//a{id}[//b]//c{id,val}"]. *)
val to_string : t -> string

(** [rename pat name] is [pat] with a different display name. *)
val rename : t -> string -> t

(** [with_annots pat annots] replaces stored attributes (array indexed by
    node); val/cont nodes again get implicit ID storage.
    @raise Invalid_argument on a length mismatch. *)
val with_annots : t -> annot array -> t
