(* The serving loop: a mutex/condition admission queue drained on the
   main domain, with snapshot publication through Atomics. See the mli
   for the domain discipline. *)

let scope = Obs.Scope.v "serve"
let c_applied = Obs.Scope.counter scope "applied"
let c_batches = Obs.Scope.counter scope "batches"
let c_epochs = Obs.Scope.counter scope "epochs"
let t_batch = Obs.Scope.timer scope "batch"

type publication = {
  p_epoch : int;
  p_applied : int;
  p_durable_seq : int;
  p_time : float;
}

type t = {
  set : View_set.t;
  jobs : int;
  max_batch : int;
  durable : Durable.t option;
  checkpoint_requested : bool Atomic.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : Update.t Queue.t;
  mutable stopping : bool;  (* under [mutex] *)
  published : Snapshot.t Atomic.t;
  published_metrics : Obs.snapshot Atomic.t;
  (* Main-domain-only bookkeeping. *)
  mutable applied : int;
  mutable batch_count : int;
  mutable log : publication list;  (* newest first *)
}

let create ?(jobs = 1) ?(max_batch = 64) ?durable set =
  {
    set;
    jobs = max 1 jobs;
    max_batch = max 1 max_batch;
    durable;
    checkpoint_requested = Atomic.make false;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    stopping = false;
    published = Atomic.make (Snapshot.initial set);
    published_metrics = Atomic.make (Obs.snapshot ());
    applied = 0;
    batch_count = 0;
    log = [];
  }

let submit t u =
  Mutex.lock t.mutex;
  let admitted = not t.stopping in
  if admitted then begin
    Queue.push u t.queue;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.mutex;
  admitted

let stop t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let snapshot t = Atomic.get t.published
let metrics t = Atomic.get t.published_metrics

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let batches t = t.batch_count
let publish_log t = List.rev t.log

(* A view is unchanged by a statement when the relevance pre-filter
   skipped it, or when propagation touched nothing: no embeddings in or
   out, no payload refresh, and no rebuild (a rebuild can rewrite
   payloads without being itemized in the counts). *)
let report_changes r =
  (not r.Maint.skipped_irrelevant)
  && (r.Maint.embeddings_added > 0
     || r.Maint.embeddings_removed > 0
     || r.Maint.tuples_modified > 0
     || r.Maint.fallback_recompute)

let drain_batch t =
  (* Caller holds [t.mutex]. *)
  let batch = ref [] in
  let k = ref 0 in
  while (not (Queue.is_empty t.queue)) && !k < t.max_batch do
    batch := Queue.pop t.queue :: !batch;
    incr k
  done;
  List.rev !batch

let apply_batch t batch =
  let changed = Hashtbl.create 16 in
  Obs.Timer.time t_batch (fun () ->
      List.iter
        (fun u ->
          let reports = View_set.update ~jobs:t.jobs t.set u in
          List.iter
            (fun (mv, r) ->
              if report_changes r then
                Hashtbl.replace changed mv.Mview.pat.Pattern.name ())
            reports;
          t.applied <- t.applied + 1;
          Obs.Counter.incr c_applied)
        batch);
  t.batch_count <- t.batch_count + 1;
  Obs.Counter.incr c_batches;
  Obs.Counter.incr c_epochs;
  (* Snapshot publication is a read: under adaptive (heavy-light)
     maintenance any view with deferred work must be drained before its
     image is captured, and a drained view is a changed view. No-op
     without a classifier installed. *)
  List.iter
    (fun name -> Hashtbl.replace changed name ())
    (View_set.drain_all t.set);
  (* Durable ack: the batch's journal records are group-committed to
     disk {e before} the snapshot publishes. Publication is the
     acknowledgement — a reader can never observe state a crash would
     forget. *)
  let durable_seq =
    match t.durable with
    | None -> -1
    | Some d ->
      Durable.sync d;
      Durable.durable_seq d
  in
  let prev = Atomic.get t.published in
  let snap =
    Snapshot.advance prev ~applied:t.applied ~changed:(Hashtbl.mem changed)
      t.set
  in
  (* Data first, then metrics: a reader pairing the two can see metrics
     at most one epoch behind, never ahead. *)
  Atomic.set t.published snap;
  if Obs.enabled () then Atomic.set t.published_metrics (Obs.snapshot ());
  t.log <-
    {
      p_epoch = snap.Snapshot.epoch;
      p_applied = snap.Snapshot.applied;
      p_durable_seq = durable_seq;
      p_time = Obs.now ();
    }
    :: t.log

(* Checkpoints run on the writer domain, between batches — always at a
   statement boundary. *)
let service_checkpoint t =
  if Atomic.exchange t.checkpoint_requested false then
    match t.durable with
    | None -> ()
    | Some d ->
      (* A checkpoint persists view images; stale (deferred) images
         must never reach disk or recovery would resurrect them. *)
      ignore (View_set.drain_all t.set);
      Durable.checkpoint d t.set

let request_checkpoint t =
  Atomic.set t.checkpoint_requested true;
  (* Wake a blocked [step]; the broadcast is taken under the mutex so it
     cannot land in the window between its predicate check and wait. *)
  Mutex.lock t.mutex;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let durable_seq t =
  match t.durable with None -> -1 | Some d -> Durable.durable_seq d

let step ?(block = false) t =
  Mutex.lock t.mutex;
  if block then
    while
      Queue.is_empty t.queue && (not t.stopping)
      && not (Atomic.get t.checkpoint_requested)
    do
      Condition.wait t.nonempty t.mutex
    done;
  let batch = drain_batch t in
  Mutex.unlock t.mutex;
  match batch with
  | [] ->
    service_checkpoint t;
    0
  | _ ->
    apply_batch t batch;
    service_checkpoint t;
    List.length batch

let run t =
  let rec loop () =
    let n = step ~block:true t in
    if n > 0 then loop ()
    else begin
      Mutex.lock t.mutex;
      let finished = t.stopping && Queue.is_empty t.queue in
      Mutex.unlock t.mutex;
      if not finished then loop ()
    end
  in
  loop ()

let prometheus t =
  let metrics_snap = Atomic.get t.published_metrics in
  let s = Atomic.get t.published in
  let b = Buffer.create 4096 in
  Buffer.add_string b (Obs.to_prometheus ~snapshot:metrics_snap ());
  let gauge name v =
    Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %d\n" name name v)
  in
  gauge "xvm_serve_epoch" s.Snapshot.epoch;
  gauge "xvm_serve_applied_statements" s.Snapshot.applied;
  gauge "xvm_serve_pending_updates" (pending t);
  gauge "xvm_serve_node_count" s.Snapshot.node_count;
  if Array.length s.Snapshot.views > 0 then begin
    Buffer.add_string b "# TYPE xvm_serve_view_tuples gauge\n";
    Array.iter
      (fun v ->
        Buffer.add_string b
          (Printf.sprintf "xvm_serve_view_tuples{view=%S} %d\n"
             v.Snapshot.v_name
             (Array.length v.Snapshot.v_tuples)))
      s.Snapshot.views
  end;
  Buffer.contents b
