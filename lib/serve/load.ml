type config = {
  readers : int;
  duration : float;
  write_rate : float;
  closed_loop : bool;
  jobs : int;
  max_batch : int;
  seed : int;
}

let default =
  {
    readers = 2;
    duration = 1.0;
    write_rate = 0.;
    closed_loop = false;
    jobs = 1;
    max_batch = 64;
    seed = 0;
  }

type latency = { p50 : float; p95 : float; p99 : float; mean : float; max : float }

type report = {
  wall_s : float;
  epochs : int;
  reads : int;
  read_rps : float;
  read_ms : latency option;
  writes_submitted : int;
  writes_rejected : int;
  writes_applied : int;
  write_visible_ms : latency option;
  max_batch_fill : int;
}

(* Growable float buffer: latencies are recorded on hot reader loops. *)
module Fbuf = struct
  type t = { mutable data : float array; mutable len : int }

  let create () = { data = Array.make 1024 0.; len = 0 }

  let push b x =
    if b.len = Array.length b.data then begin
      let d = Array.make (2 * b.len) 0. in
      Array.blit b.data 0 d 0 b.len;
      b.data <- d
    end;
    b.data.(b.len) <- x;
    b.len <- b.len + 1

  let contents b = Array.sub b.data 0 b.len
end

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Load.percentile: empty";
  let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let digest samples =
  if Array.length samples = 0 then None
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let n = Array.length sorted in
    let sum = Array.fold_left ( +. ) 0. sorted in
    Some
      {
        p50 = percentile sorted 0.5;
        p95 = percentile sorted 0.95;
        p99 = percentile sorted 0.99;
        mean = sum /. float_of_int n;
        max = sorted.(n - 1);
      }
  end

(* One reader iteration against the published snapshot. The mix touches
   every read path: point lookup + key membership, bounded count scan,
   aggregates, relation cardinalities. Results flow through
   [Sys.opaque_identity] so the work is not dead-code-eliminated. *)
let read_op rnd snap =
  let open Snapshot in
  let sink = ref 0 in
  let views = snap.views in
  let nviews = Array.length views in
  (if nviews = 0 then sink := snap.node_count
   else
     let v = views.(Random.State.int rnd nviews) in
     let card = Array.length v.v_tuples in
     match Random.State.int rnd 10 with
     | 0 | 1 | 2 | 3 ->
       if card > 0 then begin
         let tu = v.v_tuples.(Random.State.int rnd card) in
         sink := !sink + tu.t_count + Array.length tu.t_cells;
         if mem v tu.t_key then incr sink
       end
     | 4 | 5 | 6 ->
       if card > 0 then begin
         let off = Random.State.int rnd card in
         let stop = min card (off + 64) in
         for i = off to stop - 1 do
           sink := !sink + v.v_tuples.(i).t_count
         done
       end
     | 7 | 8 -> sink := !sink + v.v_total + card
     | _ ->
       let rels = snap.relations in
       if Array.length rels > 0 then begin
         let label, _ = rels.(Random.State.int rnd (Array.length rels)) in
         sink := !sink + relation_count snap label
       end);
  ignore (Sys.opaque_identity !sink)

let reader_loop server stop_flag seed idx =
  let rnd = Random.State.make [| seed; idx; 0x5eed |] in
  let lats = Fbuf.create () in
  let count = ref 0 in
  while not (Atomic.get stop_flag) do
    let t0 = Obs.now () in
    read_op rnd (Server.snapshot server);
    let t1 = Obs.now () in
    Fbuf.push lats ((t1 -. t0) *. 1000.);
    incr count
  done;
  (Fbuf.contents lats, !count)

(* The submitter records the wall-clock submit time of each {e admitted}
   statement (1-based index = the server's [applied] watermark once
   visible), so visibility latency can be joined against the publication
   log after the run. A statement the server turns away at admission
   (post-[stop] shutdown race) is counted as {e rejected}, never as
   submitted — so [writes_applied < writes_submitted] always means a
   statement was genuinely lost in flight. *)
let submitter_loop server stop_flag ~gen ~rate ~closed_loop ~deadline =
  let times = Fbuf.create () in
  let rejected = ref 0 in
  let start = Obs.now () in
  let continue_ () = (not (Atomic.get stop_flag)) && Obs.now () < deadline in
  let i = ref 0 in
  (try
     while continue_ () do
       if closed_loop then begin
         let u = gen !i in
         let t = Obs.now () in
         if not (Server.submit server u) then begin
           incr rejected;
           raise Exit
         end;
         Fbuf.push times t;
         incr i;
         let target = !i in
         (* Wait until the statement is visible in a published epoch. *)
         while
           continue_ ()
           && (Server.snapshot server).Snapshot.applied < target
         do
           Domain.cpu_relax ()
         done
       end
       else begin
         (* Open loop: the [i]-th submission is scheduled at
            [start + i/rate] regardless of service progress. *)
         let due = start +. (float_of_int !i /. rate) in
         let now = Obs.now () in
         if now < due then Unix.sleepf (min (due -. now) 0.01)
         else begin
           let u = gen !i in
           let t = Obs.now () in
           if not (Server.submit server u) then begin
             incr rejected;
             raise Exit
           end;
           Fbuf.push times t;
           incr i
         end
       end
     done
   with Exit -> ());
  (Fbuf.contents times, !rejected)

(* Join submit times against the publication log: statements with index
   in (applied_prev, applied] became visible when that epoch was
   published. *)
let visibility_latencies submit_times log =
  let lats = Fbuf.create () in
  let prev = ref 0 in
  List.iter
    (fun p ->
      let applied = p.Server.p_applied in
      for i = !prev to applied - 1 do
        if i < Array.length submit_times then
          Fbuf.push lats ((p.Server.p_time -. submit_times.(i)) *. 1000.)
      done;
      prev := max !prev applied)
    log;
  Fbuf.contents lats

let max_batch_fill log =
  let prev = ref 0 and m = ref 0 in
  List.iter
    (fun p ->
      m := max !m (p.Server.p_applied - !prev);
      prev := p.Server.p_applied)
    log;
  !m

let run ?on_server config set ~gen =
  let config = { config with jobs = max 1 config.jobs } in
  let server = Server.create ~jobs:config.jobs ~max_batch:config.max_batch set in
  Option.iter (fun f -> f server) on_server;
  let stop_flag = Atomic.make false in
  let t0 = Obs.now () in
  let deadline = t0 +. config.duration in
  let readers =
    Array.init (max 0 config.readers) (fun idx ->
        Domain.spawn (fun () -> reader_loop server stop_flag config.seed idx))
  in
  let writing = config.write_rate > 0. || config.closed_loop in
  let submitter =
    if writing then
      Some
        (Domain.spawn (fun () ->
             submitter_loop server stop_flag ~gen ~rate:config.write_rate
               ~closed_loop:config.closed_loop ~deadline))
    else None
  in
  let timer =
    Domain.spawn (fun () ->
        let rec wait () =
          let remaining = deadline -. Obs.now () in
          if remaining > 0. then begin
            Unix.sleepf (min remaining 0.05);
            wait ()
          end
        in
        wait ();
        Atomic.set stop_flag true;
        Server.stop server)
  in
  (* The serving loop itself runs here: this is the store's writer. *)
  Server.run server;
  Domain.join timer;
  let submit_times, rejected =
    match submitter with Some d -> Domain.join d | None -> ([||], 0)
  in
  let reader_results = Array.map Domain.join readers in
  let wall = Obs.now () -. t0 in
  let reads = Array.fold_left (fun acc (_, c) -> acc + c) 0 reader_results in
  let all_lats =
    Array.concat (Array.to_list (Array.map fst reader_results))
  in
  let log = Server.publish_log server in
  let final = Server.snapshot server in
  {
    wall_s = wall;
    epochs = Server.batches server;
    reads;
    read_rps = (if wall > 0. then float_of_int reads /. wall else 0.);
    read_ms = digest all_lats;
    writes_submitted = Array.length submit_times;
    writes_rejected = rejected;
    writes_applied = final.Snapshot.applied;
    write_visible_ms = digest (visibility_latencies submit_times log);
    max_batch_fill = max_batch_fill log;
  }
