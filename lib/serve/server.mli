(** The always-on serving loop.

    One {!Server.t} owns a {!View_set} and runs the paper's maintenance
    machinery as a long-lived writer: update statements are {e admitted}
    from any domain into a pending queue ({!submit}), and the main
    domain drains them in batches ({!step} / {!run}), applying each
    through {!View_set.update} — shared Δ index, relevance skip,
    optional domain fan-out — then publishing one fresh
    {!Snapshot.t} per batch.

    Reader domains call {!snapshot} (a single [Atomic.get]) and answer
    queries from the returned immutable epoch; they never take the
    queue lock and never block on {!Store.commit}. Writes and reads
    meet only at the two [Atomic] publication cells (data snapshot and
    metrics snapshot).

    Main-domain discipline: {!step}, {!run} and {!stop}'s drain run on
    the domain that owns the store ({!Store.commit} enforces this);
    {!submit}, {!snapshot}, {!metrics}, {!prometheus} and {!pending}
    are safe from any domain. *)

type t

(** One publication-log entry. [p_durable_seq] is the durable-epoch
    watermark: the highest WAL sequence fsynced before this epoch
    published ([-1] on a non-durable server) — every statement visible
    in the epoch survives a crash. *)
type publication = {
  p_epoch : int;
  p_applied : int;
  p_durable_seq : int;
  p_time : float;
}

(** [create ?jobs ?max_batch ?durable set] wraps a committed view set
    and publishes epoch 0. [jobs] (default 1, clamped to >= 1) is passed
    to {!View_set.update}; [max_batch] (default 64, clamped to >= 1)
    caps how many queued statements one {!step} applies before
    publishing. [durable] attaches a durability engine whose journal
    hook is already installed on [set] (see [Durable.init] /
    [Durable.recover]): each batch is group-committed to the log —
    one fsync — {e before} its snapshot publishes, so publication
    doubles as the durable acknowledgement. *)
val create : ?jobs:int -> ?max_batch:int -> ?durable:Durable.t -> View_set.t -> t

(** [submit t u] enqueues a statement; returns [false] (statement
    dropped) once {!stop} has been called. Any domain. *)
val submit : t -> Update.t -> bool

(** [step ?block t] drains up to [max_batch] pending statements, applies
    them, publishes the next epoch and returns the batch size. With
    [block] (default [false]) an empty queue waits on the condition
    variable until a statement arrives or {!stop} is called; otherwise
    an empty queue returns 0 immediately. *)
val step : ?block:bool -> t -> int

(** [run t] loops [step ~block:true] until {!stop} has been called {e
    and} the queue is drained — every statement admitted before [stop]
    is applied and published before [run] returns. *)
val run : t -> unit

(** Signal termination; wakes a blocked {!step}. Any domain,
    idempotent. *)
val stop : t -> unit

(** The current published snapshot. Any domain. *)
val snapshot : t -> Snapshot.t

(** The Obs registry snapshot taken at the last publication (empty if
    the registry is disabled). Any domain. *)
val metrics : t -> Obs.snapshot

(** Queue length right now. Any domain. *)
val pending : t -> int

(** Batches published so far (main domain, or after {!run} returned). *)
val batches : t -> int

(** Publication log, oldest first. Read it after {!run} returned (or
    from the main domain between steps). *)
val publish_log : t -> publication list

(** Highest WAL sequence known durable ([-1] on a non-durable server).
    Main domain (or after {!run} returned). *)
val durable_seq : t -> int

(** Ask the writer loop to checkpoint at the next statement boundary
    (after the in-flight batch, or immediately when idle). No-op on a
    non-durable server. Any domain; wakes a blocked {!step}. *)
val request_checkpoint : t -> unit

(** Prometheus text-format exposition (version 0.0.4): every Obs
    counter and timer from the last published metrics snapshot
    ({!Obs.to_prometheus}), followed by [xvm_serve_*] gauges — epoch,
    applied statements, pending queue length, node count and per-view
    tuple counts. Any domain. *)
val prometheus : t -> string
