(** Epoch-tagged immutable snapshots of a {!View_set}.

    The serving loop ({!Server}) applies update statements on the main
    domain and, after each batch, {e publishes} a snapshot through one
    [Atomic.set]. Reader domains load the current snapshot with one
    [Atomic.get] and answer every query from it without ever touching
    the live store or views — so readers never block on
    {!Store.commit} and never observe a half-applied batch.

    A snapshot is plain immutable data: per view, the canonical dump
    (sorted by projection key) copied into arrays of {!tuple}; plus the
    committed canonical-relation cardinalities. Publication safety
    follows from the OCaml memory model: immutable data fully written
    before an [Atomic.set] is visible after the matching [Atomic.get].

    Snapshots {e structure-share} across epochs: {!advance} re-captures
    only the views the batch actually changed (per the caller's
    [changed] predicate) and reuses the previous epoch's arrays for the
    rest, so the steady-state cost of an epoch bump is proportional to
    the touched views, not the total materialized state. *)

(** One projected view tuple: the injective projection key (concatenated
    {!Dewey.encode} of the stored identifiers), its derivation count,
    and per stored pattern node the identifier with its materialized
    [val] / [cont] payloads. *)
type tuple = {
  t_key : string;
  t_count : int;
  t_cells : (Dewey.t * string option * string option) array;
}

(** An immutable copy of one materialized view, tuples sorted by
    [t_key]. *)
type view = {
  v_name : string;
  v_pattern : string;  (** [Pattern.to_string] rendering *)
  v_tuples : tuple array;
  v_total : int;  (** sum of derivation counts *)
}

type t = {
  epoch : int;  (** 0 for {!initial}, +1 per {!advance} *)
  applied : int;  (** update statements applied so far *)
  views : view array;  (** view-set insertion order *)
  relations : (string * int) array;  (** committed label cardinalities, sorted *)
  node_count : int;
}

(** Capture every view of the set. Main domain; the set must be
    committed (no staged store changes). *)
val initial : View_set.t -> t

(** [advance prev ~applied ~changed set] is the next epoch: views for
    which [changed name] is [false] reuse [prev]'s arrays, the rest are
    re-captured from the live views. Main domain, between batches. *)
val advance : t -> applied:int -> changed:(string -> bool) -> View_set.t -> t

(** {1 Reads} — safe from any domain on a published snapshot. *)

val find_view : t -> string -> view option
val view_names : t -> string array

val cardinality : view -> int

(** [mem v key] — binary search over the sorted tuples. *)
val mem : view -> string -> bool

(** [relation_count t label] is the committed cardinality of [label]'s
    canonical relation (0 for unseen labels). *)
val relation_count : t -> string -> int

(** {1 Comparison} — the snapshot-isolation oracle.

    [view_equal] is bit-for-bit: keys, counts, identifiers and payloads
    must all agree. [view_diff] renders the first discrepancy for test
    failure messages. *)

val view_equal : view -> view -> bool
val view_diff : view -> view -> string option
