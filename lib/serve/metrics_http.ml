type t = {
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  dom : unit Domain.t;
  mutable stopped : bool;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* First index after the blank line terminating an HTTP head, if any. *)
let head_end s =
  let n = String.length s in
  let rec go i =
    if i >= n then None
    else if s.[i] <> '\n' then go (i + 1)
    else if i + 1 < n && s.[i + 1] = '\n' then Some (i + 2)
    else if i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n' then Some (i + 3)
    else go (i + 1)
  in
  go 0

(* Read until the blank line ending the request head (or EOF, or a 4 KiB
   cap — we only ever need the request line). *)
let read_head fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf < 4096 && head_end (Buffer.contents buf) = None then begin
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      end
    end
  in
  (try go () with Unix.Unix_error _ -> ());
  Buffer.contents buf

let request_path head =
  let line =
    match String.index_opt head '\n' with
    | None -> String.trim head
    | Some i -> String.trim (String.sub head 0 i)
  in
  match String.split_on_char ' ' line with
  | meth :: path :: _ when String.uppercase_ascii meth = "GET" -> Some path
  | _ -> None

let respond fd ~status ~body =
  let code, reason = status in
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 %d %s\r\n\
        Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
        Content-Length: %d\r\n\
        Connection: close\r\n\
        \r\n\
        %s"
       code reason (String.length body) body)

let serve_client fd body =
  match request_path (read_head fd) with
  | Some ("/metrics" | "/") -> respond fd ~status:(200, "OK") ~body:(body ())
  | Some _ -> respond fd ~status:(404, "Not Found") ~body:"not found\n"
  | None -> respond fd ~status:(400, "Bad Request") ~body:"bad request\n"

let start ?(addr = Unix.inet_addr_loopback) ~port body =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (addr, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stopping = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        let rec loop () =
          match Unix.accept sock with
          | exception _ -> if not (Atomic.get stopping) then loop ()
          | client, _ ->
            (try serve_client client body with _ -> ());
            (try Unix.close client with _ -> ());
            if not (Atomic.get stopping) then loop ()
        in
        loop ())
  in
  { sock; port; stopping; dom; stopped = false }

let port t = t.port

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    (* Closing the listening socket makes the blocked [accept] raise,
       which the loop treats as shutdown. *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with _ -> ());
    (try Unix.close t.sock with _ -> ());
    Domain.join t.dom
  end

let get ?(host = "127.0.0.1") ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      write_all sock
        (Printf.sprintf
           "GET %s HTTP/1.0\r\nHost: %s\r\nConnection: close\r\n\r\n" path host);
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      let resp = Buffer.contents buf in
      let code =
        match String.split_on_char ' ' resp with
        | _http :: code :: _ -> (
          match int_of_string_opt code with
          | Some c -> c
          | None -> failwith "Metrics_http.get: bad status line")
        | _ -> failwith "Metrics_http.get: bad status line"
      in
      let body =
        match head_end resp with
        | Some i -> String.sub resp i (String.length resp - i)
        | None -> failwith "Metrics_http.get: no header terminator"
      in
      (code, body))
