(** A pgbench-style load driver for {!Server}.

    Runs, for a fixed wall-clock duration:

    - [readers] reader domains, each looping snapshot queries (point
      tuple lookups, bounded scans, aggregates) against the currently
      published epoch and recording per-operation latencies;
    - at most one {e submitter} domain feeding generated update
      statements — {e open-loop} at a target arrival rate
      ([write_rate] > 0: submissions are scheduled by the clock,
      backlog reveals saturation) or {e closed-loop}
    ([closed_loop = true]: the next statement is submitted only once
      the previous one is visible in a published snapshot);
    - the serving loop itself on the {e calling} domain (the store's
      writer), plus a small timer domain that stops it at the deadline.

    The report carries read throughput and p50/p95/p99 latencies, and —
    when writing — applied-statement counts, batch sizes, and the
    submit-to-published {e visibility} latency distribution computed
    from the server's publication log. *)

type config = {
  readers : int;  (** reader domains; >= 0 *)
  duration : float;  (** seconds of wall-clock load *)
  write_rate : float;  (** target statements/s for open loop; 0 = none *)
  closed_loop : bool;  (** submit-wait-visible instead of paced *)
  jobs : int;  (** {!View_set.update} fan-out, clamped to >= 1 *)
  max_batch : int;  (** statements per published batch, >= 1 *)
  seed : int;  (** reader/op-mix determinism *)
}

val default : config

(** Latency digest in milliseconds. *)
type latency = { p50 : float; p95 : float; p99 : float; mean : float; max : float }

type report = {
  wall_s : float;
  epochs : int;  (** published epochs (= batches) *)
  reads : int;
  read_rps : float;
  read_ms : latency option;  (** [None] when [readers = 0] *)
  writes_submitted : int;  (** statements the server {e admitted} *)
  writes_rejected : int;
      (** statements turned away at admission (post-[stop] shutdown
          race) — distinct from submitted, so
          [writes_applied < writes_submitted] always means a statement
          was genuinely lost in flight *)
  writes_applied : int;
  write_visible_ms : latency option;
      (** submit → first snapshot containing the statement; [None] when
          nothing was written *)
  max_batch_fill : int;  (** largest published batch *)
}

(** [percentile sorted q] with [q] in [0,1]; [sorted] ascending,
    non-empty (nearest-rank). Exposed for tests. *)
val percentile : float array -> float -> float

(** [run config set ~gen] drives the load. [gen i] must produce the
    [i]-th update statement (0-based); it runs on the submitter domain,
    so it must not touch the store or views — build statements from
    pre-rendered strings via {!Update.parse}, or pure constructors.
    Must be called on the main domain (it runs {!Server.run}). The view
    set is mutated by the applied statements.

    [on_server] is called with the freshly created server before any
    load starts — the hook for attaching a {!Metrics_http} endpoint to
    the run. The server outlives [run] only for reads (snapshot /
    prometheus); it is stopped and drained by the time [run] returns. *)
val run :
  ?on_server:(Server.t -> unit) -> config -> View_set.t ->
  gen:(int -> Update.t) -> report
