type tuple = {
  t_key : string;
  t_count : int;
  t_cells : (Dewey.t * string option * string option) array;
}

type view = {
  v_name : string;
  v_pattern : string;
  v_tuples : tuple array;
  v_total : int;
}

type t = {
  epoch : int;
  applied : int;
  views : view array;
  relations : (string * int) array;
  node_count : int;
}

(* [Mview.dump] is already sorted by key; copy cells out of the mutable
   view records so the snapshot owns plain immutable data. *)
let capture_view mv =
  let total = ref 0 in
  let tuples =
    mv |> Mview.dump
    |> List.map (fun (key, count, cells) ->
           total := !total + count;
           {
             t_key = key;
             t_count = count;
             t_cells =
               Array.map
                 (fun c ->
                   (c.Mview.cell_id, c.Mview.cell_value, c.Mview.cell_content))
                 cells;
           })
    |> Array.of_list
  in
  {
    v_name = mv.Mview.pat.Pattern.name;
    v_pattern = Pattern.to_string mv.Mview.pat;
    v_tuples = tuples;
    v_total = !total;
  }

let capture_relations store =
  Store.relation_labels store
  |> List.sort compare
  |> List.map (fun l -> (l, Array.length (Store.relation store l)))
  |> Array.of_list

let initial set =
  let store = View_set.store set in
  {
    epoch = 0;
    applied = 0;
    views = Array.of_list (List.map capture_view (View_set.views set));
    relations = capture_relations store;
    node_count = Store.node_count store;
  }

let advance prev ~applied ~changed set =
  let by_name = Hashtbl.create 16 in
  Array.iter (fun v -> Hashtbl.replace by_name v.v_name v) prev.views;
  let views =
    View_set.views set
    |> List.map (fun mv ->
           let name = mv.Mview.pat.Pattern.name in
           match Hashtbl.find_opt by_name name with
           | Some v when not (changed name) -> v
           | _ -> capture_view mv)
    |> Array.of_list
  in
  let store = View_set.store set in
  {
    epoch = prev.epoch + 1;
    applied;
    views;
    relations = capture_relations store;
    node_count = Store.node_count store;
  }

let find_view t name =
  Array.find_opt (fun v -> String.equal v.v_name name) t.views

let view_names t = Array.map (fun v -> v.v_name) t.views

let cardinality v = Array.length v.v_tuples

let mem v key =
  let tuples = v.v_tuples in
  let lo = ref 0 and hi = ref (Array.length tuples) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = compare key tuples.(mid).t_key in
    if c = 0 then found := true
    else if c < 0 then hi := mid
    else lo := mid + 1
  done;
  !found

let relation_count t label =
  let rels = t.relations in
  let lo = ref 0 and hi = ref (Array.length rels) in
  let count = ref 0 in
  while !count = 0 && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let l, n = rels.(mid) in
    let c = compare label l in
    if c = 0 then count := n
    else if c < 0 then hi := mid
    else lo := mid + 1
  done;
  !count

let cells_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (ia, va, ca) (ib, vb, cb) ->
         Dewey.equal ia ib
         && Option.equal String.equal va vb
         && Option.equal String.equal ca cb)
       a b

let tuple_equal a b =
  String.equal a.t_key b.t_key && a.t_count = b.t_count
  && cells_equal a.t_cells b.t_cells

let view_equal a b =
  Array.length a.v_tuples = Array.length b.v_tuples
  && Array.for_all2 tuple_equal a.v_tuples b.v_tuples

let view_diff a b =
  if Array.length a.v_tuples <> Array.length b.v_tuples then
    Some
      (Printf.sprintf "cardinality %d vs %d" (Array.length a.v_tuples)
         (Array.length b.v_tuples))
  else
    let n = Array.length a.v_tuples in
    let rec go i =
      if i >= n then None
      else
        let ta = a.v_tuples.(i) and tb = b.v_tuples.(i) in
        if tuple_equal ta tb then go (i + 1)
        else
          let opt = function None -> "-" | Some s -> Printf.sprintf "%S" s in
          let render t =
            Printf.sprintf "count=%d cells=[%s]" t.t_count
              (String.concat "; "
                 (Array.to_list
                    (Array.map
                       (fun (id, v, c) ->
                         Printf.sprintf "%s val=%s cont=%s" (Dewey.to_string id)
                           (opt v) (opt c))
                       t.t_cells)))
          in
          Some
            (Printf.sprintf "tuple %d: %s <> %s (keys %S / %S)" i (render ta)
               (render tb) ta.t_key tb.t_key)
    in
    go 0
