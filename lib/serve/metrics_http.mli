(** A minimal HTTP text endpoint for Prometheus scraping.

    Deliberately tiny: blocking accept loop on its own domain, one
    HTTP/1.0 response per connection, [Connection: close]. Good enough
    for a scraper or [curl]; not a general web server. *)

type t

(** [start ?addr ~port body] binds a listening socket ([port] 0 picks an
    ephemeral port) and serves [body ()] with content type
    [text/plain; version=0.0.4] on every [GET] for [/metrics] or [/]
    (404 otherwise). [body] runs on the endpoint's domain, so it must
    only touch domain-safe state (e.g. {!Server.prometheus}).
    @raise Unix.Unix_error when the bind fails. *)
val start : ?addr:Unix.inet_addr -> port:int -> (unit -> string) -> t

(** The bound port (useful with [~port:0]). *)
val port : t -> int

(** Close the listening socket and join the endpoint domain.
    Idempotent. *)
val stop : t -> unit

(** [get ~port path] — a one-shot loopback HTTP client for tests and
    self-scrapes: returns [(status_code, body)].
    @raise Failure on a malformed response. *)
val get : ?host:string -> port:int -> string -> int * string
