(** Answering fresh tree-pattern queries from the materialized view set
    (view-based rewriting in the Cautis/Deutsch/Ileana/Onose style,
    specialized to this dialect).

    A query is answered {e tuple-for-tuple} — same projected cells, same
    derivation counts — from:

    - a {b single view} whose pattern is tree-isomorphic to the query up
      to {e compensations} executable over the stored tuples alone: a
      residual value filter where the query carries an extra [[val='c']]
      (the view must store [val] there), and a parent-of filter where the
      query's [/]-edge relaxes to the view's [//]-edge (the view must
      store [ID] at both endpoints — checked via {!Dewey.parent});
    - or the {b intersection of two views}: the query is split at a node
      [j] into [Pattern.prune q j] (the query minus [j]'s strict
      descendants) and [Pattern.subpattern q j] (the subtree of [j],
      re-anchored by [//]), each leg answered from a view as above, and
      the legs hash-joined on [j]'s stored ID with derivation counts
      multiplying — valid because embeddings of a tree pattern factor
      exactly at any node;
    - otherwise {b fallback}: algebraic recomputation over the base
      document's canonical relations.

    Exactness (not just soundness) of the single-view step requires the
    isomorphism: a mere homomorphism (see {!Containment}) would prove
    containment of the result {e sets} but not preserve counts. *)

(** One projected tuple: derivation count plus, per stored query node in
    preorder, [(id, val, cont)] — the same cell shape the serve layer's
    snapshots use. *)
type row = {
  count : int;
  cells : (Dewey.t * string option * string option) array;
}

(** A queryable view: its pattern plus a function producing the current
    tuples (cells in the pattern's stored-node preorder). Re-read at every
    execution, so a plan stays valid across maintenance. *)
type source = { src_name : string; src_pat : Pattern.t; src_rows : unit -> row list }

val source : name:string -> Pattern.t -> (unit -> row list) -> source

(** Adapt a live materialized view. *)
val source_of_mview : Mview.t -> source

(** Residual filters over a view's stored cells (positions index the
    view's stored-node list). *)
type comp =
  | Val_eq of int * string  (** stored value at position = literal *)
  | Child_of of int * int  (** first ID is a document child of the second *)
  | Root_at of int  (** stored ID is the document root *)

type single
type join

type plan = Single of single | Join of join | Fallback

(** Human-readable plan summary, e.g. ["single(Q1), 1 compensation"]. *)
val describe : plan -> string

(** [plan ~sources q] — first single-view rewriting found, else the first
    two-view intersection, else [Fallback]. *)
val plan : sources:source list -> Pattern.t -> plan

(** Execute a plan; [None] on [Fallback]. Rows are canonical (merged and
    sorted, see {!canonical}). *)
val run : plan -> row list option

(** Base-document recomputation of the query (the algebraic engine over
    the committed canonical relations), as canonical rows. *)
val base_rows : Store.t -> Pattern.t -> row list

(** [answer ?store ~sources q]: plan, then execute; falls back to
    {!base_rows} when a store is at hand, otherwise [None] on
    [Fallback]. *)
val answer : ?store:Store.t -> sources:source list -> Pattern.t -> (plan * row list) option

(** Merge rows with identical cells (summing counts) and sort
    deterministically. *)
val canonical : row list -> row list

(** First discrepancy between two canonical row lists, if any. *)
val diff : expect:row list -> got:row list -> string option

val row_to_string : ?dict:Label_dict.t -> row -> string
