module SS = Set.Make (String)

(* Label sets with a ⊤ element: a label without a DTD rule has unknown
   content, and any closure through it loses all precision. *)
type lset = Top | Fin of SS.t

let empty = Fin SS.empty
let is_empty = function Top -> false | Fin s -> SS.is_empty s
let union a b =
  match (a, b) with Top, _ | _, Top -> Top | Fin a, Fin b -> Fin (SS.union a b)

let is_attr l = String.length l > 0 && l.[0] = '@'
let is_element l = l <> "#text" && not (is_attr l)
let elements_of = function Top -> Top | Fin s -> Fin (SS.filter is_element s)

(* Possible child labels of one label. Attributes and text have none. *)
let children_of dtd l =
  if not (is_element l) then empty
  else
    match Dtd.rule dtd l with
    | None -> Top
    | Some re -> Fin (SS.of_list (Dtd.alphabet re))

let step_children dtd = function
  | Top -> Top
  | Fin s ->
    SS.fold (fun l acc -> union acc (children_of dtd l)) s empty

exception Hit_top

let desc_or_self dtd = function
  | Top -> Top
  | Fin s -> (
    try
      let rec closure acc frontier =
        if SS.is_empty frontier then Fin acc
        else
          let next =
            SS.fold
              (fun l acc2 ->
                match children_of dtd l with
                | Top -> raise Hit_top
                | Fin cs -> SS.union acc2 cs)
              frontier SS.empty
          in
          let fresh = SS.diff next acc in
          closure (SS.union acc fresh) fresh
      in
      closure s s
    with Hit_top -> Top)

let descendants dtd ls = desc_or_self dtd (step_children dtd ls)

(* Every element may carry text and attributes (content models do not
   constrain them) — add the leaf markers when closing over a deletion. *)
let add_leaves = function
  | Top -> Top
  | Fin s ->
    if SS.exists is_element s then Fin (SS.add "#text" (SS.add "@" s)) else Fin s

(* Labels from which some member of [targets] is reachable (including the
   targets themselves) — the backward half of the ancestor approximation. *)
let can_reach dtd = function
  | Top -> Top
  | Fin targets -> (
    let universe = SS.of_list (Dtd.labels dtd) |> SS.add (Dtd.root dtd) in
    let universe =
      SS.fold
        (fun l acc ->
          match children_of dtd l with Top -> acc | Fin cs -> SS.union acc cs)
        universe universe
    in
    try
      let reaches = ref targets in
      let changed = ref true in
      while !changed do
        changed := false;
        SS.iter
          (fun l ->
            if not (SS.mem l !reaches) then
              match children_of dtd l with
              | Top -> raise Hit_top
              | Fin cs ->
                if not (SS.is_empty (SS.inter cs !reaches)) then begin
                  reaches := SS.add l !reaches;
                  changed := true
                end)
          universe
      done;
      Fin !reaches
    with Hit_top -> Top)

(* Ancestors-or-self of [targets], restricted to the forward chain the
   target path actually walked: chain ∩ can-reach(targets), plus the
   targets themselves. *)
let between dtd ~chain ~targets =
  match (chain, targets, can_reach dtd (elements_of targets)) with
  | Top, _, _ | _, Top, _ | _, _, Top -> Top
  | Fin chain, Fin targets, Fin reach -> Fin (SS.union targets (SS.inter chain reach))

(* [walk dtd path] over-approximates the labels of the nodes a target
   path can select. Returns [(targets, chain, last_elems)]: the final
   label set, the union of every intermediate label set (ancestors live
   in it), and the element context of the final step (the owners, when
   the path ends on an attribute step). Predicates are ignored — a pure
   over-approximation. *)
let walk dtd (path : Xpath.path) =
  let start = Fin (SS.singleton (Dtd.root dtd)) in
  let rec go ~first current chain last_elems = function
    | [] -> (current, chain, last_elems)
    | (step : Xpath.step) :: rest ->
      let base =
        if first then
          match step.Xpath.axis with
          | Xpath.Child -> current
          | Xpath.Descendant -> desc_or_self dtd current
        else
          match step.Xpath.axis with
          | Xpath.Child -> step_children dtd current
          | Xpath.Descendant -> descendants dtd current
      in
      let filtered, owners =
        match step.Xpath.test with
        | Xpath.Name a ->
          ( (match base with
            | Top -> Fin (SS.singleton a)
            | Fin s -> Fin (SS.filter (String.equal a) s)),
            empty )
        | Xpath.Star -> (elements_of base, empty)
        | Xpath.Attr a ->
          (* Attribute candidates of a Descendant axis hang off any
             element in the descendant-or-self closure of the context. *)
          let ctx =
            match step.Xpath.axis with
            | Xpath.Child -> current
            | Xpath.Descendant ->
              if first then desc_or_self dtd current
              else desc_or_self dtd (step_children dtd current)
          in
          let ctx = elements_of ctx in
          ((if is_empty ctx then empty else Fin (SS.singleton ("@" ^ a))), ctx)
      in
      go ~first:false filtered (union chain base) owners rest
  in
  go ~first:true start start empty path

type verdict = Independent of string | Dependent of string

(* Does a view tag intersect an over-approximated label set? *)
let tag_hits tag = function
  | Top -> true
  | Fin s ->
    if tag = "*" then SS.exists is_element s
    else if is_attr tag then SS.mem tag s || SS.mem "@" s
    else SS.mem tag s

let view_hits (pat : Pattern.t) ls =
  let hit = ref None in
  Array.iteri
    (fun i tag -> if !hit = None && tag_hits tag ls then hit := Some i)
    pat.Pattern.tags;
  !hit

(* Tags of view nodes whose payload the view materializes or tests:
   [cont] is sensitive to any descendant change; [val] (and value
   predicates) to text changes. *)
let payload_tags (pat : Pattern.t) =
  let cont = ref [] and value = ref [] in
  Array.iteri
    (fun i (a : Pattern.annot) ->
      if a.Pattern.store_cont then cont := pat.Pattern.tags.(i) :: !cont;
      if a.Pattern.store_val || pat.Pattern.vpreds.(i) <> None then
        value := pat.Pattern.tags.(i) :: !value)
    pat.Pattern.annots;
  (!cont, !value)

let fragment_labels forest =
  let labels = ref SS.empty in
  List.iter
    (Xml_tree.iter (fun n ->
         labels :=
           SS.add
             (match n.Xml_tree.kind with
             | Xml_tree.Element -> n.Xml_tree.name
             | Xml_tree.Attribute -> "@" ^ n.Xml_tree.name
             | Xml_tree.Text -> "#text")
             !labels))
    forest;
  Fin !labels

let analyze dtd (u : Update.t) (pat : Pattern.t) =
  let cont_tags, val_tags = payload_tags pat in
  let dep fmt = Printf.ksprintf (fun s -> Dependent s) fmt in
  let structural ls =
    match view_hits pat ls with
    | Some i -> Some (dep "view node %d (%s) may gain or lose bindings" i pat.Pattern.tags.(i))
    | None -> None
  in
  let payload ~anc ~text_possible =
    match List.find_opt (fun t -> tag_hits t anc) cont_tags with
    | Some t -> Some (dep "cont payload of %s lies on an affected path" t)
    | None ->
      if text_possible then
        match List.find_opt (fun t -> tag_hits t anc) val_tags with
        | Some t -> Some (dep "val/vpred of %s lies on an affected path" t)
        | None -> None
      else None
  in
  let anchors targets last_elems = union (elements_of targets) last_elems in
  match u with
  | Update.Delete path -> (
    let targets, chain, last_elems = walk dtd path in
    if is_empty targets then Independent "target path unsatisfiable under the DTD"
    else
      let affected = add_leaves (union (desc_or_self dtd (elements_of targets)) targets) in
      match structural affected with
      | Some d -> d
      | None -> (
        let anc = between dtd ~chain ~targets:(anchors targets last_elems) in
        match payload ~anc ~text_possible:true with
        | Some d -> d
        | None -> Independent "deletion cannot reach the view"))
  | Update.Insert { target; template = None; _ } ->
    ignore target;
    Dependent "opaque insert_forest fragment"
  | Update.Insert { target; template = Some forest; _ } -> (
    let targets, chain, last_elems = walk dtd target in
    if is_empty targets then Independent "target path unsatisfiable under the DTD"
    else
      let frag = fragment_labels forest in
      match structural frag with
      | Some d -> d
      | None -> (
        let anc = between dtd ~chain ~targets:(anchors targets last_elems) in
        let text_possible =
          match frag with
          | Top -> true
          | Fin s -> SS.mem "#text" s || SS.exists is_attr s
        in
        match payload ~anc ~text_possible with
        | Some d -> d
        | None -> Independent "insertion cannot reach the view"))
  | Update.Replace_value { target; _ } -> (
    let targets, chain, last_elems = walk dtd target in
    if is_empty targets then Independent "target path unsatisfiable under the DTD"
    else
      match
        List.find_opt (fun t -> t = "#text") (Array.to_list pat.Pattern.tags)
      with
      | Some _ -> Dependent "view binds #text nodes; replace value rewrites them"
      | None -> (
        let anc = between dtd ~chain ~targets:(union targets (anchors targets last_elems)) in
        match payload ~anc ~text_possible:true with
        | Some d -> d
        | None -> Independent "replaced value invisible to the view"))

let independent dtd u pat =
  match analyze dtd u pat with Independent _ -> true | Dependent _ -> false

let prover dtd u mv = independent dtd u mv.Mview.pat
