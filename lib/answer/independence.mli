(** Type-based query-update independence (after Bidoit-Tollu/Colazzo/
    Ulliana): given a DTD, statically prove that an update statement
    cannot change a view's contents, so [View_set.update] can skip the
    view before any delta work — a schema-aware upgrade of the
    label-footprint relevance skip.

    The analysis over-approximates, per update, the set of {e labels}
    whose nodes may appear or disappear (structural effect) and the set
    of labels whose [val]/[cont] payloads may change (ancestors-or-self
    of the touched region, computed by intersecting the target path's
    forward label chain with backward DTD reachability). A view is
    declared independent only when neither set meets the view's node
    tags, respectively its payload-bearing or value-tested tags.
    Attributes are tracked as ["@name"] (with ["@"] the wildcard
    over-approximation) and text as ["#text"]; labels lacking a DTD rule
    have unknown content and poison the approximation to ⊤.

    Soundness assumes the document is valid for the DTD (use
    {!Dtd.infer} when no authored DTD exists — the source document is
    always valid for its inferred DTD). *)

type verdict =
  | Independent of string  (** reason, for diagnostics *)
  | Dependent of string

val analyze : Dtd.t -> Update.t -> Pattern.t -> verdict

(** [independent dtd u pat]: {!analyze} says [Independent]. *)
val independent : Dtd.t -> Update.t -> Pattern.t -> bool

(** Adapter with the shape [View_set.set_independence] expects. *)
val prover : Dtd.t -> Update.t -> Mview.t -> bool
