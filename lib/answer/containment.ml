let homomorphisms ~from ~into =
  let np = Pattern.node_count from and nq = Pattern.node_count into in
  let qparents = into.Pattern.parents in
  (* [j] a strict descendant of [pj] in [into]'s tree — every edge, [/] or
     [//], forces strict document descendancy, so any parent chain does. *)
  let strict_desc j pj =
    let rec up k = k <> -1 && (k = pj || up qparents.(k)) in
    up qparents.(j)
  in
  let h = Array.make (max np 1) (-1) in
  let out = ref [] in
  let ok i j =
    Pattern.tag_subsumes from.Pattern.tags.(i) into.Pattern.tags.(j)
    && (match from.Pattern.vpreds.(i) with
       | None -> true
       | Some c -> into.Pattern.vpreds.(j) = Some c)
    &&
    if i = 0 then
      match from.Pattern.axes.(0) with
      | Pattern.Child -> j = 0 && into.Pattern.axes.(0) = Pattern.Child
      | Pattern.Descendant -> true
    else
      let pi = from.Pattern.parents.(i) in
      match from.Pattern.axes.(i) with
      | Pattern.Child -> qparents.(j) = h.(pi) && into.Pattern.axes.(j) = Pattern.Child
      | Pattern.Descendant -> strict_desc j h.(pi)
  in
  (* Preorder: a node's parent is always assigned before the node. *)
  let rec go i =
    if i = np then out := Array.sub h 0 np :: !out
    else
      for j = 0 to nq - 1 do
        if ok i j then begin
          h.(i) <- j;
          go (i + 1);
          h.(i) <- -1
        end
      done
  in
  go 0;
  List.rev !out

let homomorphism ~from ~into =
  match homomorphisms ~from ~into with [] -> None | h :: _ -> Some h

let contains p q = homomorphism ~from:p ~into:q <> None
