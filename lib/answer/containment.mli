(** Containment of tree patterns by homomorphism (the classical
    Miklau/Suciu-style sufficient condition, exact on this dialect's
    small patterns).

    A {e homomorphism} [h] from pattern [p] into pattern [q] maps every
    [p]-node to a [q]-node such that for {e every} embedding [β] of [q]
    into a document, [β ∘ h] is an embedding of [p]:

    - labels: [p]'s tag at [i] subsumes [q]'s tag at [h i]
      ({!Pattern.tag_subsumes});
    - value predicates: a predicate on [p]'s node must appear verbatim on
      its image;
    - [/]-edges map to [/]-edges (same parent image); [//]-edges map to
      strict ancestor chains of any composition;
    - a [/]-anchored root must map to a [/]-anchored root.

    The existence of [h : p → q] therefore witnesses [q ⊆ p]: every
    document node set produced by [q] is also produced by [p]. *)

(** All homomorphisms from [from] into [into], as arrays indexed by
    [from]-node (preorder), in lexicographic order of images. The search
    is exponential in the worst case; patterns in this codebase are
    small (≤ a dozen nodes). *)
val homomorphisms : from:Pattern.t -> into:Pattern.t -> int array list

(** First homomorphism, if any. *)
val homomorphism : from:Pattern.t -> into:Pattern.t -> int array option

(** [contains p q]: a homomorphism [p → q] exists, hence [q ⊆ p]. *)
val contains : Pattern.t -> Pattern.t -> bool
