type row = {
  count : int;
  cells : (Dewey.t * string option * string option) array;
}

type source = { src_name : string; src_pat : Pattern.t; src_rows : unit -> row list }

let source ~name pat rows = { src_name = name; src_pat = pat; src_rows = rows }

let source_of_mview mv =
  {
    src_name = mv.Mview.pat.Pattern.name;
    src_pat = mv.Mview.pat;
    src_rows =
      (fun () ->
        Mview.dump mv
        |> List.map (fun (_, count, cells) ->
               {
                 count;
                 cells =
                   Array.map
                     (fun c ->
                       (c.Mview.cell_id, c.Mview.cell_value, c.Mview.cell_content))
                     cells;
               }));
  }

type comp =
  | Val_eq of int * string
  | Child_of of int * int
  | Root_at of int

type single = {
  s_src : source;
  s_comps : comp list;
  s_project : (int * Pattern.annot) array;
      (* per query stored node in preorder: the view stored position it
         comes from, and the query's annot (payloads the view stores but
         the query does not are stripped). *)
}

(* How each output cell of a join is built: a stored position in the top
   or bottom leg's projected row, plus the query's annot there. *)
type emit = From_top of int * Pattern.annot | From_bottom of int * Pattern.annot

type join = {
  j_split : int;
  j_top : single;
  j_bottom : single;
  j_top_pos : int;  (* split's position in top-leg rows *)
  j_bottom_pos : int;  (* split's position in bottom-leg rows (always 0) *)
  j_emit : emit array;
}

type plan = Single of single | Join of join | Fallback

let annot_le (a : Pattern.annot) (b : Pattern.annot) =
  ((not a.Pattern.store_id) || b.Pattern.store_id)
  && ((not a.Pattern.store_val) || b.Pattern.store_val)
  && ((not a.Pattern.store_cont) || b.Pattern.store_cont)

let stored_pos pat i =
  let rec find k = function
    | [] -> raise Not_found
    | j :: rest -> if j = i then k else find (k + 1) rest
  in
  find 0 (Pattern.stored_nodes pat)

(* Tree isomorphism of [query] onto [view] with compensations: exact tag
   equality, matching children bijectively; a query [/]-edge may map to a
   view [//]-edge when both endpoint IDs are stored (compensated by a
   [Child_of] / [Root_at] filter); an extra query value predicate is
   compensated by [Val_eq] when the view stores [val] there. Compensations
   are first recorded against view *node* indices, then resolved to stored
   positions. *)
let match_single ~(query : Pattern.t) ~(view : Pattern.t) =
  if Pattern.node_count query <> Pattern.node_count view then None
  else begin
    let m = Array.make (Pattern.node_count query) (-1) in
    let vpred_comp qi vj =
      match (query.Pattern.vpreds.(qi), view.Pattern.vpreds.(vj)) with
      | None, None -> Some []
      | Some a, Some b -> if a = b then Some [] else None
      | Some c, None ->
        if view.Pattern.annots.(vj).Pattern.store_val then Some [ `Val (vj, c) ]
        else None
      | None, Some _ -> None
    in
    let edge_comp qi vj =
      if qi = 0 then
        match (query.Pattern.axes.(0), view.Pattern.axes.(0)) with
        | Pattern.Child, Pattern.Child | Pattern.Descendant, Pattern.Descendant ->
          Some []
        | Pattern.Child, Pattern.Descendant ->
          if view.Pattern.annots.(vj).Pattern.store_id then Some [ `Root vj ]
          else None
        | Pattern.Descendant, Pattern.Child -> None
      else
        match (query.Pattern.axes.(qi), view.Pattern.axes.(vj)) with
        | Pattern.Child, Pattern.Child | Pattern.Descendant, Pattern.Descendant ->
          Some []
        | Pattern.Child, Pattern.Descendant ->
          let vp = view.Pattern.parents.(vj) in
          if
            view.Pattern.annots.(vj).Pattern.store_id
            && view.Pattern.annots.(vp).Pattern.store_id
          then Some [ `Child (vj, vp) ]
          else None
        | Pattern.Descendant, Pattern.Child -> None
    in
    let rec match_node qi vj =
      if query.Pattern.tags.(qi) <> view.Pattern.tags.(vj) then None
      else if not (annot_le query.Pattern.annots.(qi) view.Pattern.annots.(vj)) then
        None
      else
        match (vpred_comp qi vj, edge_comp qi vj) with
        | Some c1, Some c2 -> (
          m.(qi) <- vj;
          match
            match_children (Pattern.children query qi) (Pattern.children view vj)
          with
          | Some c3 -> Some (c1 @ c2 @ c3)
          | None -> None)
        | _ -> None
    and match_children qcs vcs =
      match qcs with
      | [] -> if vcs = [] then Some [] else None
      | qc :: qrest ->
        let rec try_pick before = function
          | [] -> None
          | vc :: after -> (
            match match_node qc vc with
            | Some c1 -> (
              match match_children qrest (List.rev_append before after) with
              | Some c2 -> Some (c1 @ c2)
              | None -> try_pick (vc :: before) after)
            | None -> try_pick (vc :: before) after)
        in
        try_pick [] vcs
    in
    match match_node 0 0 with
    | None -> None
    | Some comps ->
      let comps =
        List.map
          (function
            | `Val (vj, c) -> Val_eq (stored_pos view vj, c)
            | `Child (vj, vp) -> Child_of (stored_pos view vj, stored_pos view vp)
            | `Root vj -> Root_at (stored_pos view vj))
          comps
      in
      let project =
        Pattern.stored_nodes query
        |> List.map (fun s -> (stored_pos view m.(s), query.Pattern.annots.(s)))
        |> Array.of_list
      in
      Some (comps, project, Array.copy m)
  end

let single_of ~query src =
  match match_single ~query ~view:src.src_pat with
  | None -> None
  | Some (comps, project, _) -> Some { s_src = src; s_comps = comps; s_project = project }

let comp_holds cells = function
  | Val_eq (pos, c) ->
    let _, v, _ = cells.(pos) in
    v = Some c
  | Child_of (cpos, ppos) -> (
    let cid, _, _ = cells.(cpos) and pid, _, _ = cells.(ppos) in
    match Dewey.parent cid with Some p -> Dewey.equal p pid | None -> false)
  | Root_at pos ->
    let id, _, _ = cells.(pos) in
    Dewey.parent id = None

let project_cell cells (pos, (a : Pattern.annot)) =
  let id, v, c = cells.(pos) in
  ( id,
    (if a.Pattern.store_val then v else None),
    if a.Pattern.store_cont then c else None )

let run_single s =
  s.s_src.src_rows ()
  |> List.filter_map (fun r ->
         if List.for_all (comp_holds r.cells) s.s_comps then
           Some { count = r.count; cells = Array.map (project_cell r.cells) s.s_project }
         else None)

(* {1 Canonical form} *)

let cell_key (id, v, c) =
  Dewey.encode id ^ "\x02"
  ^ (match v with None -> "" | Some s -> "v" ^ s)
  ^ "\x02"
  ^ match c with None -> "" | Some s -> "c" ^ s

let row_key r = String.concat "\x01" (Array.to_list (Array.map cell_key r.cells))

let canonical rows =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let k = row_key r in
      match Hashtbl.find_opt tbl k with
      | Some r' -> Hashtbl.replace tbl k { r' with count = r'.count + r.count }
      | None -> Hashtbl.add tbl k r)
    rows;
  Hashtbl.fold (fun k r acc -> (k, r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

(* {1 Planning} *)

let plan ~sources (query : Pattern.t) =
  let rec first f = function
    | [] -> None
    | x :: rest -> ( match f x with Some _ as r -> r | None -> first f rest)
  in
  match first (single_of ~query) sources with
  | Some s -> Single s
  | None ->
    let nq = Pattern.node_count query in
    let try_split split =
      let top_pat = Pattern.prune query split ~name:(query.Pattern.name ^ "#top") in
      let bottom_pat =
        Pattern.subpattern query split ~name:(query.Pattern.name ^ "#bottom")
      in
      match first (single_of ~query:top_pat) sources with
      | None -> None
      | Some top -> (
        match first (single_of ~query:bottom_pat) sources with
        | None -> None
        | Some bottom ->
          let ndesc = List.length (Pattern.descendants query split) in
          let emit =
            Pattern.stored_nodes query
            |> List.map (fun s ->
                   let a = query.Pattern.annots.(s) in
                   if s > split && s <= split + ndesc then
                     From_bottom (stored_pos bottom_pat (s - split), a)
                   else
                     (* [prune] keeps indices [<= split] unchanged and
                        shifts the nodes after the subtree down by its
                        size. *)
                     let top_i = if s <= split then s else s - ndesc in
                     From_top (stored_pos top_pat top_i, a))
            |> Array.of_list
          in
          Some
            (Join
               {
                 j_split = split;
                 j_top = top;
                 j_bottom = bottom;
                 j_top_pos = stored_pos top_pat split;
                 j_bottom_pos = 0;
                 j_emit = emit;
               }))
    in
    let rec splits k = if k >= nq then Fallback else
      match try_split k with Some p -> p | None -> splits (k + 1)
    in
    splits 1

let run_join j =
  let top_rows = run_single j.j_top and bottom_rows = run_single j.j_bottom in
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun b ->
      let id, _, _ = b.cells.(j.j_bottom_pos) in
      let k = Dewey.encode id in
      Hashtbl.replace by_id k
        (b :: (match Hashtbl.find_opt by_id k with Some l -> l | None -> [])))
    bottom_rows;
  List.concat_map
    (fun t ->
      let id, _, _ = t.cells.(j.j_top_pos) in
      match Hashtbl.find_opt by_id (Dewey.encode id) with
      | None -> []
      | Some bs ->
        List.map
          (fun b ->
            {
              count = t.count * b.count;
              cells =
                Array.map
                  (function
                    | From_top (pos, a) -> project_cell t.cells (pos, a)
                    | From_bottom (pos, a) -> project_cell b.cells (pos, a))
                  j.j_emit;
            })
          bs)
    top_rows

let run = function
  | Single s -> Some (canonical (run_single s))
  | Join j -> Some (canonical (run_join j))
  | Fallback -> None

let base_rows store pat =
  let mv = Mview.materialize ~policy:Mview.Leaves store pat in
  Mview.dump mv
  |> List.map (fun (_, count, cells) ->
         {
           count;
           cells =
             Array.map
               (fun c -> (c.Mview.cell_id, c.Mview.cell_value, c.Mview.cell_content))
               cells;
         })
  |> canonical

let answer ?store ~sources query =
  let p = plan ~sources query in
  match run p with
  | Some rows -> Some (p, rows)
  | None -> (
    match store with
    | Some st -> Some (Fallback, base_rows st query)
    | None -> None)

let describe = function
  | Single s ->
    Printf.sprintf "single(%s), %d compensation%s" s.s_src.src_name
      (List.length s.s_comps)
      (if List.length s.s_comps = 1 then "" else "s")
  | Join j ->
    Printf.sprintf "join(%s * %s @ query node %d)" j.j_top.s_src.src_name
      j.j_bottom.s_src.src_name j.j_split
  | Fallback -> "fallback(base recompute)"

let diff ~expect ~got =
  let keyed rows = List.map (fun r -> (row_key r, r.count)) rows in
  let e = keyed expect and g = keyed got in
  if e = g then None
  else
    let summarize rows = Printf.sprintf "%d rows" (List.length rows) in
    let rec first_diff e g =
      match (e, g) with
      | [], [] -> "identical keys?"
      | (k, c) :: _, [] -> Printf.sprintf "missing row %S (count %d)" k c
      | [], (k, c) :: _ -> Printf.sprintf "extra row %S (count %d)" k c
      | (ke, ce) :: e', (kg, cg) :: g' ->
        if ke = kg then
          if ce = cg then first_diff e' g'
          else Printf.sprintf "row %S: count %d vs %d" ke ce cg
        else if ke < kg then Printf.sprintf "missing row %S (count %d)" ke ce
        else Printf.sprintf "extra row %S (count %d)" kg cg
    in
    Some
      (Printf.sprintf "expect %s, got %s; %s" (summarize expect) (summarize got)
         (first_diff e g))

let row_to_string ?dict r =
  let cell (id, v, c) =
    Dewey.to_string ?dict id
    ^ (match v with None -> "" | Some s -> Printf.sprintf " val=%S" s)
    ^ match c with None -> "" | Some s -> Printf.sprintf " cont=%S" s
  in
  Printf.sprintf "%dx [%s]" r.count
    (String.concat "; " (Array.to_list (Array.map cell r.cells)))
