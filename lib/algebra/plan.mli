(** Algebraic evaluation of tree patterns — the semantics of Figure 4: one
    canonical-relation atom per pattern node, with the node's value
    selection applied, combined bottom-up with structural joins along the
    pattern edges. *)

(** [entries_matching store pat i] is the raw canonical relation for
    pattern node [i]'s tag (a merge of every element relation for [*]),
    before value selection. *)
val entries_matching : Store.t -> Pattern.t -> int -> Store.entry array

(** [region_slices store label region] is the slice of relation [label]
    inside [region], in document order: one binary-searched
    {!Store.relation_span} per region root, concatenated.  Exposed for
    the shared update-region index (Delta.Shared), which extracts each
    label's slice once per update instead of once per view. *)
val region_slices : Store.t -> string -> Id_region.t -> Store.entry array

(** [entries_in_region store pat i region] is the subset of
    [entries_matching store pat i] lying inside [region], in document
    order — extracted with binary-search relation spans
    ({!Store.relation_span}) per region root instead of a full scan, so
    the cost is O(roots × log |R| + output) per relation. *)
val entries_in_region :
  Store.t -> Pattern.t -> int -> Id_region.t -> Store.entry array

(** Handle-paired variants for the columnar layout: the same entries as
    the boxed helpers, each paired with the parallel array of
    {!Store.arena} handles. Do not mutate the returned arrays. *)

val entries_matching_handles :
  Store.t -> Pattern.t -> int -> Store.entry array * int array

val region_slices_handles :
  Store.t -> string -> Id_region.t -> Store.entry array * int array

val entries_in_region_handles :
  Store.t -> Pattern.t -> int -> Id_region.t -> Store.entry array * int array

(** [root_anchor_ok pat i id]: when the pattern root uses the [Child]
    axis, only the document root (depth 1) may bind to node [0]; always
    true for other nodes. Used when building atoms and delta tables. *)
val root_anchor_ok : Pattern.t -> int -> Dewey.t -> bool

(** [atom_of_store store pat i] is the selected canonical relation
    [σ_i(R_i)] of pattern node [i]: all store nodes matching the node's
    tag ([*] unions every element relation) and value predicate, as a
    single-column table in document order. *)
val atom_of_store : Store.t -> Pattern.t -> int -> Tuple_table.t

(** [eval_subtree pat ~atom ~within ~root] joins the atoms of the pattern
    nodes reachable from [root] through nodes satisfying [within],
    following the pattern edges. [atom] supplies the per-node input
    tables. *)
val eval_subtree :
  Pattern.t -> atom:(int -> Tuple_table.t) -> within:(int -> bool) -> root:int ->
  Tuple_table.t

(** [eval store pat] evaluates the whole pattern against the committed
    relations of [store]; output columns are all pattern nodes. *)
val eval : Store.t -> Pattern.t -> Tuple_table.t
