(** Tuple tables: the intermediate results of the algebraic evaluation.

    A table binds a fixed set of pattern-node indices (its columns) to
    structural identifiers; every row is one partial embedding. Rows live
    in an amortized growable buffer, so repeated {!append_row} calls are
    O(1) amortized rather than O(rows).

    Two physical layouts coexist behind this interface: the original
    boxed row-major layout, and a {e columnar} struct-of-arrays layout
    of unboxed {!Dewey_arena} handle columns ({!of_handles} /
    {!of_cols}), on which structural predicates are flat int arithmetic.
    The boxed row API ({!rows}/{!get}/{!iter}) works on both — on a
    columnar table it is a materialized compatibility view — so
    operators migrate to {!columns}/{!cell_id} incrementally.

    Each table tracks {e sortedness metadata}: the column (if any) whose
    identifiers are known to be in non-decreasing document order. The
    physical operators use it to pick a sort-merge structural join over
    the hash fallback and to skip redundant sorts. *)

type t

(** {1 Layout toggle}

    Scan builders ([Plan.atom_of_store], [Delta]) consult this global
    toggle when constructing base tables. Columnar by default; boxed via
    [XVM_BOXED_TABLES=1] in the environment or {!set_columnar}[ false]
    (the [xvmcli --boxed] escape hatch). Precedence: an explicit
    {!set_columnar} call (e.g. the [--boxed] flag) always wins over the
    environment, which wins over the columnar default. *)

val columnar_enabled : unit -> bool
val set_columnar : bool -> unit

(** [boxed_requested env] — does the value of [XVM_BOXED_TABLES] request
    the boxed layout? Only the explicit truthy spellings ["1"] and
    ["true"] (case-insensitive, surrounding whitespace ignored) do; any
    other value, like an unset variable, means columnar. Pure — exposed
    so the parse is testable without touching the real environment. *)
val boxed_requested : string option -> bool

(** [create ~cols] is an empty table over [cols]. *)
val create : cols:int array -> t

(** [of_rows ?sorted_by ~cols rows] wraps [rows] (taking ownership of the
    array). [sorted_by] asserts that the rows are already in document
    order of that column. *)
val of_rows : ?sorted_by:int -> cols:int array -> Dewey.t array array -> t

(** Single-column table over pattern node [node]. [sorted] asserts the
    ids are already in document order (e.g. a canonical-relation scan). *)
val of_ids : ?sorted:bool -> node:int -> Dewey.t array -> t

(** {1 Columnar construction}

    Columnar tables reference identifiers by {!Dewey_arena} handle; all
    handle columns of one table index the same arena. *)

(** Columnar single-column table over [node]; takes ownership of
    [handles]. *)
val of_handles : ?sorted:bool -> arena:Dewey_arena.t -> node:int -> int array -> t

(** [of_cols ?sorted_by ~arena ~cols ~len data] wraps one handle array
    per column, taking ownership; the arrays share a capacity that may
    exceed [len]. An empty [cols] degrades to an empty boxed table. *)
val of_cols :
  ?sorted_by:int -> arena:Dewey_arena.t -> cols:int array -> len:int ->
  int array array -> t

(** [columns t] is [Some (arena, cols)] when the table is columnar, with
    each column compacted to [length t]. Operators use it to dispatch
    onto handle fast paths (both join inputs must return the {e same}
    arena). Do not mutate. *)
val columns : t -> (Dewey_arena.t * int array array) option

(** The arena of a columnar table. *)
val arena : t -> Dewey_arena.t option

val length : t -> int
val is_empty : t -> bool

(** Column set, in construction order. Do not mutate. *)
val cols : t -> int array

(** Snapshot of the rows as a plain array (compacted in place, O(1) when
    the buffer has no slack). Do not mutate. *)
val rows : t -> Dewey.t array array

(** [get t i] is row [i]. *)
val get : t -> int -> Dewey.t array

val iter : (Dewey.t array -> unit) -> t -> unit

(** [cell_id t i p] is the identifier at row [i], column position [p] —
    O(1) on either layout, with no row materialization on columnar
    tables. *)
val cell_id : t -> int -> int -> Dewey.t

(** [col_pos t node] is the row offset of pattern node [node].
    @raise Not_found if the node is not a column. *)
val col_pos : t -> int -> int

(** {1 Sortedness metadata} *)

(** The column whose identifiers are known to be in document order, if
    any. Kept up to date by {!append_row}/{!append_rows} (checked against
    the incoming rows), preserved by {!filter}, set by {!sort_by_node}. *)
val sorted_by : t -> int option

(** [sorted_on t node]: the rows are known to be in document order of
    column [node] (trivially true for tables of at most one row). *)
val sorted_on : t -> int -> bool

(** [mark_sorted_by t node] records that the rows are in document order
    of column [node]. Caller-asserted: used by operators whose
    construction guarantees the order (e.g. a merge join emitting in
    right-input order). *)
val mark_sorted_by : t -> int -> unit

(** {1 Mutation} *)

val append_row : t -> Dewey.t array -> unit
val append_rows : t -> Dewey.t array array -> unit

(** [append_table t src] appends every row of [src] (same column sets,
    in the same order). Columnar→columnar over one arena is a
    per-column int blit; any other combination goes through the boxed
    view. Sortedness metadata is checked like {!append_rows}. *)
val append_table : t -> t -> unit

(** [filter t keep] drops rows not satisfying [keep], in place, in one
    pass. Sortedness is preserved. *)
val filter : t -> (Dewey.t array -> bool) -> unit

(** [sort_by_node t node] sorts rows by document order of the [node]
    column; a no-op when the metadata already proves the order. *)
val sort_by_node : t -> int -> unit

val copy : t -> t
