(* {1 Hash-prefix join (fallback for unsorted inputs)}

   The ancestor side is hashed by join column; each descendant-side
   binding probes with its identifier's step-prefixes. Keys are (id,
   prefix-length) pairs hashed structurally, so no intermediate prefix or
   string is ever materialized. *)

module Prefix_key = struct
  type t = Dewey.t * int

  let equal (a, ka) (b, kb) = Dewey.prefix_equal a ka b kb
  let hash (id, k) = Dewey.prefix_hash id k
end

module Prefix_tbl = Hashtbl.Make (Prefix_key)

(* Metrics: [comparisons] counts identifier comparisons in the merge path
   and table probes in the hash path, so complexity bounds expressed over
   it hold whichever implementation a plan ends up in. *)
let obs = Obs.Scope.v "algebra.join"
let c_rows_left = Obs.Scope.counter obs "rows_left"
let c_rows_right = Obs.Scope.counter obs "rows_right"
let c_rows_out = Obs.Scope.counter obs "rows_out"
let c_comparisons = Obs.Scope.counter obs "comparisons"
let c_hash_probes = Obs.Scope.counter obs "hash_probes"
let c_merge_calls = Obs.Scope.counter obs "merge_calls"
let c_hash_calls = Obs.Scope.counter obs "hash_calls"
let c_hash_fallbacks = Obs.Scope.counter obs "hash_fallbacks"

let flush_tables left right out =
  Obs.Counter.add c_rows_left (Tuple_table.length left);
  Obs.Counter.add c_rows_right (Tuple_table.length right);
  Obs.Counter.add c_rows_out (Tuple_table.length out)

let out_cols left right =
  Array.append (Tuple_table.cols left) (Tuple_table.cols right)

(* Output rows are [left ++ right]; the single-column case (joining two
   atoms) is by far the most common, so build it without the generic
   [Array.append] machinery. *)
let combine lrow rrow =
  if Array.length lrow = 1 && Array.length rrow = 1 then [| lrow.(0); rrow.(0) |]
  else Array.append lrow rrow

let hash_join left right ~parent ~child ~axis =
  let track = Obs.enabled () in
  let probes = ref 0 in
  let ppos = Tuple_table.col_pos left parent in
  let cpos = Tuple_table.col_pos right child in
  let out = Tuple_table.create ~cols:(out_cols left right) in
  let by_parent : Dewey.t array list Prefix_tbl.t =
    Prefix_tbl.create (max 16 (Tuple_table.length left))
  in
  Tuple_table.iter
    (fun row ->
      let id = row.(ppos) in
      let key = (id, Dewey.depth id) in
      let prev = try Prefix_tbl.find by_parent key with Not_found -> [] in
      Prefix_tbl.replace by_parent key (row :: prev))
    left;
  let probe rrow cid k =
    if track then incr probes;
    match Prefix_tbl.find_opt by_parent (cid, k) with
    | None -> ()
    | Some lrows ->
      List.iter (fun lrow -> Tuple_table.append_row out (combine lrow rrow)) lrows
  in
  Tuple_table.iter
    (fun rrow ->
      let cid = rrow.(cpos) in
      let depth = Dewey.depth cid in
      match axis with
      | Pattern.Child -> if depth > 1 then probe rrow cid (depth - 1)
      | Pattern.Descendant ->
        for k = depth - 1 downto 1 do
          probe rrow cid k
        done)
    right;
  (* Rows are emitted in right-input order, so the output inherits the
     right side's document order on the child column. *)
  if Tuple_table.sorted_on right child then Tuple_table.mark_sorted_by out child;
  if track then begin
    Obs.Counter.incr c_hash_calls;
    Obs.Counter.add c_hash_probes !probes;
    Obs.Counter.add c_comparisons !probes;
    flush_tables left right out
  end;
  out

(* {1 Sort-merge join}

   Stack-Tree on Dewey identifiers. Both inputs are sorted in document
   order of their join columns; equal ancestor-side identifiers form
   consecutive runs. The stack holds (id, run-start, run-stop) frames
   whose identifiers are nested prefixes of one another — exactly the
   ancestor-side nodes lying on the root path of the current descendant.
   Document order guarantees a frame popped once can never match again
   (a subtree is a contiguous document-order interval), so every frame is
   pushed and popped exactly once: O(|L| + |R| + |out|) overall. *)

let merge_join_boxed left right ~parent ~child ~axis =
  let track = Obs.enabled () in
  let cmps = ref 0 in
  let cmp a b =
    if track then incr cmps;
    Dewey.compare a b
  in
  let anc a b =
    if track then incr cmps;
    Dewey.is_ancestor_or_self a b
  in
  let ppos = Tuple_table.col_pos left parent in
  let cpos = Tuple_table.col_pos right child in
  let lrows = Tuple_table.rows left and rrows = Tuple_table.rows right in
  let nl = Array.length lrows and nr = Array.length rrows in
  let out = Tuple_table.create ~cols:(out_cols left right) in
  if nl = 0 || nr = 0 then begin
    Tuple_table.mark_sorted_by out child;
    if track then begin
      Obs.Counter.incr c_merge_calls;
      flush_tables left right out
    end;
    out
  end
  else begin
  (* Stack frames, parallel arrays; depths are strictly increasing. *)
  let cap = ref 16 in
  let st_id = ref (Array.make !cap lrows.(0).(ppos)) in
  let st_lo = ref (Array.make !cap 0) in
  let st_hi = ref (Array.make !cap 0) in
  let sp = ref 0 in
  let push id lo hi =
    if !sp >= !cap then begin
      let cap' = 2 * !cap in
      let id' = Array.make cap' id and lo' = Array.make cap' 0 and hi' = Array.make cap' 0 in
      Array.blit !st_id 0 id' 0 !sp;
      Array.blit !st_lo 0 lo' 0 !sp;
      Array.blit !st_hi 0 hi' 0 !sp;
      st_id := id';
      st_lo := lo';
      st_hi := hi';
      cap := cap'
    end;
    !st_id.(!sp) <- id;
    !st_lo.(!sp) <- lo;
    !st_hi.(!sp) <- hi;
    incr sp
  in
  let top_id () = !st_id.(!sp - 1) in
  let emit s rrow =
    for r = !st_lo.(s) to !st_hi.(s) - 1 do
      Tuple_table.append_row out (combine lrows.(r) rrow)
    done
  in
  let i = ref 0 in
  for j = 0 to nr - 1 do
    let rrow = rrows.(j) in
    let d = rrow.(cpos) in
    (* Shift every ancestor-side run at or before [d] onto the stack. *)
    while !i < nl && cmp lrows.(!i).(ppos) d <= 0 do
      let gid = lrows.(!i).(ppos) in
      let lo = !i in
      incr i;
      while !i < nl && cmp lrows.(!i).(ppos) gid = 0 do
        incr i
      done;
      while !sp > 0 && not (anc (top_id ()) gid) do
        decr sp
      done;
      push gid lo !i
    done;
    (* Drop frames whose subtrees we have left for good. *)
    while !sp > 0 && not (anc (top_id ()) d) do
      decr sp
    done;
    (* Every remaining frame is a prefix of [d]; only a depth-equal top
       frame (d itself) is not a strict ancestor. *)
    (match axis with
    | Pattern.Descendant ->
      let dd = Dewey.depth d in
      let stop =
        if !sp > 0 && Dewey.depth (top_id ()) = dd then !sp - 1 else !sp
      in
      for s = 0 to stop - 1 do
        emit s rrow
      done
    | Pattern.Child ->
      (* Frame depths are strictly increasing: binary-search the parent. *)
      let target = Dewey.depth d - 1 in
      if target >= 1 && !sp > 0 then begin
        let lo = ref 0 and hi = ref (!sp - 1) and found = ref (-1) in
        while !lo <= !hi do
          if track then incr cmps;
          let mid = (!lo + !hi) / 2 in
          let md = Dewey.depth !st_id.(mid) in
          if md = target then begin
            found := mid;
            lo := !hi + 1
          end
          else if md < target then lo := mid + 1
          else hi := mid - 1
        done;
        if !found >= 0 then emit !found rrow
      end)
  done;
  Tuple_table.mark_sorted_by out child;
  if track then begin
    Obs.Counter.incr c_merge_calls;
    Obs.Counter.add c_comparisons !cmps;
    flush_tables left right out
  end;
  out
  end

(* Columnar Stack-Tree merge: the same loop as {!merge_join_boxed}, but
   the join columns are unboxed arena-handle arrays, compare/is_prefix
   are flat int arithmetic, and output rows are emitted as column-slice
   batches — one [Array.blit] per left column and one [Array.fill] per
   right column per stack frame, instead of a boxed row per output
   tuple. The comparison counter is charged identically to the boxed
   path, so complexity bounds expressed over it are layout-independent. *)
let merge_join_cols arena lcols rcols left right ~parent ~child ~axis =
  let track = Obs.enabled () in
  let cmps = ref 0 in
  let cmp a b =
    if track then incr cmps;
    Dewey_arena.compare arena a b
  in
  let anc a b =
    if track then incr cmps;
    Dewey_arena.is_prefix arena a b
  in
  let ppos = Tuple_table.col_pos left parent in
  let cpos = Tuple_table.col_pos right child in
  let la = lcols.(ppos) and rc = rcols.(cpos) in
  let nl = Array.length la and nr = Array.length rc in
  let nlc = Array.length lcols and nrc = Array.length rcols in
  let nout = nlc + nrc in
  let ocols = out_cols left right in
  (* Growable output columns sharing one capacity. *)
  let obuf = ref (Array.make nout [||]) in
  let ocap = ref 0 and olen = ref 0 in
  let finish () =
    let out = Tuple_table.of_cols ~arena ~cols:ocols ~len:!olen !obuf in
    Tuple_table.mark_sorted_by out child;
    if track then begin
      Obs.Counter.incr c_merge_calls;
      Obs.Counter.add c_comparisons !cmps;
      flush_tables left right out
    end;
    out
  in
  if nl = 0 || nr = 0 then finish ()
  else begin
    let ensure extra =
      let need = !olen + extra in
      if need > !ocap then begin
        let cap' = max need (max 16 (2 * !ocap)) in
        obuf :=
          Array.map
            (fun a ->
              let a' = Array.make cap' 0 in
              Array.blit a 0 a' 0 !olen;
              a')
            !obuf;
        ocap := cap'
      end
    in
    (* Stack frames, parallel arrays; depths are strictly increasing. *)
    let cap = ref 16 in
    let st_id = ref (Array.make !cap 0) in
    let st_lo = ref (Array.make !cap 0) in
    let st_hi = ref (Array.make !cap 0) in
    let sp = ref 0 in
    let push id lo hi =
      if !sp >= !cap then begin
        let cap' = 2 * !cap in
        let id' = Array.make cap' 0 and lo' = Array.make cap' 0 and hi' = Array.make cap' 0 in
        Array.blit !st_id 0 id' 0 !sp;
        Array.blit !st_lo 0 lo' 0 !sp;
        Array.blit !st_hi 0 hi' 0 !sp;
        st_id := id';
        st_lo := lo';
        st_hi := hi';
        cap := cap'
      end;
      !st_id.(!sp) <- id;
      !st_lo.(!sp) <- lo;
      !st_hi.(!sp) <- hi;
      incr sp
    in
    let top_id () = !st_id.(!sp - 1) in
    let emit s j =
      let lo = !st_lo.(s) in
      let run = !st_hi.(s) - lo in
      ensure run;
      let b = !obuf in
      for c = 0 to nlc - 1 do
        Array.blit lcols.(c) lo b.(c) !olen run
      done;
      for c = 0 to nrc - 1 do
        Array.fill b.(nlc + c) !olen run rcols.(c).(j)
      done;
      olen := !olen + run
    in
    let i = ref 0 in
    for j = 0 to nr - 1 do
      let d = rc.(j) in
      (* Shift every ancestor-side run at or before [d] onto the stack. *)
      while !i < nl && cmp la.(!i) d <= 0 do
        let gid = la.(!i) in
        let lo = !i in
        incr i;
        while !i < nl && cmp la.(!i) gid = 0 do
          incr i
        done;
        while !sp > 0 && not (anc (top_id ()) gid) do
          decr sp
        done;
        push gid lo !i
      done;
      (* Drop frames whose subtrees we have left for good. *)
      while !sp > 0 && not (anc (top_id ()) d) do
        decr sp
      done;
      (* Every remaining frame is a prefix of [d]; only a depth-equal top
         frame (d itself) is not a strict ancestor. *)
      match axis with
      | Pattern.Descendant ->
        let dd = Dewey_arena.depth arena d in
        let stop =
          if !sp > 0 && Dewey_arena.depth arena (top_id ()) = dd then !sp - 1 else !sp
        in
        for s = 0 to stop - 1 do
          emit s j
        done
      | Pattern.Child ->
        (* Frame depths are strictly increasing: binary-search the parent. *)
        let target = Dewey_arena.depth arena d - 1 in
        if target >= 1 && !sp > 0 then begin
          let lo = ref 0 and hi = ref (!sp - 1) and found = ref (-1) in
          while !lo <= !hi do
            if track then incr cmps;
            let mid = (!lo + !hi) / 2 in
            let md = Dewey_arena.depth arena !st_id.(mid) in
            if md = target then begin
              found := mid;
              lo := !hi + 1
            end
            else if md < target then lo := mid + 1
            else hi := mid - 1
          done;
          if !found >= 0 then emit !found j
        end
    done;
    finish ()
  end

let merge_join left right ~parent ~child ~axis =
  match (Tuple_table.columns left, Tuple_table.columns right) with
  | Some (a, lcols), Some (a', rcols) when a == a' ->
    merge_join_cols a lcols rcols left right ~parent ~child ~axis
  | _ -> merge_join_boxed left right ~parent ~child ~axis

let join left right ~parent ~child ~axis =
  if Tuple_table.sorted_on left parent && Tuple_table.sorted_on right child then
    merge_join left right ~parent ~child ~axis
  else begin
    Obs.Counter.incr c_hash_fallbacks;
    hash_join left right ~parent ~child ~axis
  end
