(** Structural joins over tuple tables.

    Two physical implementations are provided:

    - {!merge_join}: a stack-based sort-merge structural join (the
      Stack-Tree algorithm recast on Dewey identifiers). Both inputs are
      walked once in document order; a stack holds the ancestor-side
      groups lying on the current root path, so both [Child] and
      [Descendant] axes complete in O(|left| + |right| + |output|)
      comparisons. Requires both inputs sorted on their join columns.
    - {!hash_join}: the ancestor side is hashed by join column; each
      descendant-side binding probes with its identifier's step-prefixes
      ((id, prefix-length) keys hashed structurally, so no intermediate
      prefix is materialized). Needs no sort, but the [Descendant] axis
      costs O(rows × depth) probes.

    {!join} dispatches on the inputs' sortedness metadata: merge when both
    sides are known sorted on the join columns, hash otherwise. *)

(** [join left right ~parent ~child ~axis] joins on the structural
    predicate [left.parent ≺ right.child] (axis [Child]) or
    [left.parent ≺≺ right.child] (axis [Descendant]). Output columns are
    [left.cols @ right.cols]; when [right] is sorted on [child], the
    output is sorted on [child] too (and marked so).
    @raise Not_found if [parent] (resp. [child]) is not a column of
    [left] (resp. [right]). *)
val join :
  Tuple_table.t ->
  Tuple_table.t ->
  parent:int ->
  child:int ->
  axis:Pattern.axis ->
  Tuple_table.t

(** Sort-merge implementation. The caller must guarantee both inputs are
    sorted on their join columns ({!Tuple_table.sorted_on}); the result is
    unspecified otherwise. *)
val merge_join :
  Tuple_table.t ->
  Tuple_table.t ->
  parent:int ->
  child:int ->
  axis:Pattern.axis ->
  Tuple_table.t

(** Hash-prefix implementation; correct for any row order. *)
val hash_join :
  Tuple_table.t ->
  Tuple_table.t ->
  parent:int ->
  child:int ->
  axis:Pattern.axis ->
  Tuple_table.t
