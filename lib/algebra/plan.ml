let entries_matching store pat i =
  let tag = pat.Pattern.tags.(i) in
  if tag = "*" then begin
    (* Union of all element relations, re-sorted into document order. *)
    let all =
      List.concat_map
        (fun label ->
          if String.length label > 0 && (label.[0] = '@' || label.[0] = '#') then []
          else Array.to_list (Store.relation store label))
        (Store.relation_labels store)
    in
    let arr = Array.of_list all in
    Array.sort (fun a b -> Dewey.compare a.Store.id b.Store.id) arr;
    arr
  end
  else Store.relation store tag

(* Region-pruned variant: only the slices of the canonical relations lying
   inside the region's subtrees, extracted by binary search instead of a
   full scan. Region roots are disjoint and document-ordered, so the
   per-root spans concatenate back into document order. *)
let region_slices store label region =
  let roots = Id_region.roots region in
  match Array.length roots with
  | 0 -> [||]
  | 1 -> Store.relation_span store label ~root:roots.(0)
  | _ ->
    Array.concat
      (Array.to_list
         (Array.map (fun r -> Store.relation_span store label ~root:r) roots))

let entries_in_region store pat i region =
  let tag = pat.Pattern.tags.(i) in
  if tag = "*" then begin
    let all =
      List.concat_map
        (fun label ->
          if String.length label > 0 && (label.[0] = '@' || label.[0] = '#') then []
          else Array.to_list (region_slices store label region))
        (Store.relation_labels store)
    in
    let arr = Array.of_list all in
    Array.sort (fun a b -> Dewey.compare a.Store.id b.Store.id) arr;
    arr
  end
  else region_slices store tag region

(* Handle-paired variants of the scan helpers, for the columnar layout:
   each returns the matching entries alongside the parallel array of
   arena handles, both in document order. *)

let sort_pairs arena (entries : Store.entry array) (handles : int array) =
  let n = Array.length handles in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> Dewey_arena.compare arena handles.(a) handles.(b)) idx;
  (Array.map (fun j -> entries.(j)) idx, Array.map (fun j -> handles.(j)) idx)

let entries_matching_handles store pat i =
  let tag = pat.Pattern.tags.(i) in
  if tag = "*" then begin
    let parts =
      List.filter_map
        (fun label ->
          if String.length label > 0 && (label.[0] = '@' || label.[0] = '#') then None
          else Some (Store.relation_handles store label))
        (Store.relation_labels store)
    in
    let entries = Array.concat (List.map fst parts) in
    let handles = Array.concat (List.map snd parts) in
    sort_pairs (Store.arena store) entries handles
  end
  else Store.relation_handles store tag

let region_slices_handles store label region =
  let roots = Id_region.roots region in
  match Array.length roots with
  | 0 -> ([||], [||])
  | 1 -> Store.relation_span_handles store label ~root:roots.(0)
  | _ ->
    let parts =
      Array.to_list
        (Array.map (fun r -> Store.relation_span_handles store label ~root:r) roots)
    in
    (Array.concat (List.map fst parts), Array.concat (List.map snd parts))

let entries_in_region_handles store pat i region =
  let tag = pat.Pattern.tags.(i) in
  if tag = "*" then begin
    let parts =
      List.filter_map
        (fun label ->
          if String.length label > 0 && (label.[0] = '@' || label.[0] = '#') then None
          else Some (region_slices_handles store label region))
        (Store.relation_labels store)
    in
    let entries = Array.concat (List.map fst parts) in
    let handles = Array.concat (List.map snd parts) in
    sort_pairs (Store.arena store) entries handles
  end
  else region_slices_handles store tag region

let root_anchor_ok pat i id =
  i <> 0 || pat.Pattern.axes.(0) = Pattern.Descendant || Dewey.depth id = 1

let atom_keep pat i e =
  root_anchor_ok pat i e.Store.id
  &&
  match pat.Pattern.vpreds.(i) with
  | None -> true
  | Some c -> Xml_tree.string_value e.Store.node = c

let atom_of_store store pat i =
  if Tuple_table.columnar_enabled () then begin
    let entries, handles = entries_matching_handles store pat i in
    let n = Array.length handles in
    if
      pat.Pattern.vpreds.(i) = None
      && (i <> 0 || pat.Pattern.axes.(0) = Pattern.Descendant)
    then
      (* No selection: the relation's handle column verbatim (copied —
         tables own their columns). *)
      Tuple_table.of_handles ~sorted:true ~arena:(Store.arena store) ~node:i
        (Array.copy handles)
    else begin
      let buf = Array.make n 0 in
      let k = ref 0 in
      Array.iteri
        (fun idx e ->
          if atom_keep pat i e then begin
            buf.(!k) <- handles.(idx);
            incr k
          end)
        entries;
      Tuple_table.of_handles ~sorted:true ~arena:(Store.arena store) ~node:i
        (Array.sub buf 0 !k)
    end
  end
  else begin
    let entries = entries_matching store pat i in
    let selected =
      Array.of_seq (Seq.filter (atom_keep pat i) (Array.to_seq entries))
    in
    (* Canonical relations are in document order; selection preserves it. *)
    Tuple_table.of_ids ~sorted:true ~node:i (Array.map (fun e -> e.Store.id) selected)
  end

(* Columns an evaluation of the subtree at [j] would produce. *)
let rec subtree_cols pat ~within j =
  j
  :: List.concat_map
       (fun c -> if within c then subtree_cols pat ~within c else [])
       (Pattern.children pat j)

let rec eval_subtree pat ~atom ~within ~root =
  let table = ref (atom root) in
  List.iter
    (fun j ->
      if within j then
        if Tuple_table.is_empty !table then
          (* Short-circuit, but keep the column set complete so that
             consumers can still address every pattern node. *)
          table :=
            Tuple_table.create
              ~cols:
                (Array.append
                   (Tuple_table.cols !table)
                   (Array.of_list (subtree_cols pat ~within j)))
        else begin
          let sub = eval_subtree pat ~atom ~within ~root:j in
          (* Both operands are owned by this evaluation (atoms are fresh
             single-column tables, sub-results fresh join outputs), so
             in-place sorting is safe; the sorts are no-ops whenever the
             metadata already proves document order — atoms and the first
             join per subtree take the merge path with no sort at all. *)
          Tuple_table.sort_by_node !table root;
          Tuple_table.sort_by_node sub j;
          table :=
            Struct_join.join !table sub ~parent:root ~child:j
              ~axis:pat.Pattern.axes.(j)
        end)
    (Pattern.children pat root);
  !table

let eval store pat =
  eval_subtree pat
    ~atom:(fun i -> atom_of_store store pat i)
    ~within:(fun _ -> true)
    ~root:0
