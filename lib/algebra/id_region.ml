(* Roots are normalized to a disjoint, document-ordered set (a root nested
   inside another is dropped). For disjoint roots, the only root that can
   be an ancestor-or-self of [id] is [id]'s predecessor in document order:
   any other prefix root would have to contain that predecessor too. This
   makes membership a binary search plus one prefix test, with no
   allocation. *)

type t = Dewey.t array

let of_roots roots =
  let sorted = List.sort_uniq Dewey.compare roots in
  let keep = ref [] in
  List.iter
    (fun id ->
      match !keep with
      | last :: _ when Dewey.is_ancestor_or_self last id -> ()
      | _ -> keep := id :: !keep)
    sorted;
  Array.of_list (List.rev !keep)

let is_empty t = Array.length t = 0
let roots t = t

(* Greatest root ≤ id in document order, if any. *)
let predecessor t id =
  let lo = ref 0 and hi = ref (Array.length t - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if Dewey.compare t.(mid) id <= 0 then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !best

let mem t id =
  Array.length t > 0
  &&
  let p = predecessor t id in
  p >= 0 && Dewey.is_ancestor_or_self t.(p) id

let strictly_inside t id =
  Array.length t > 0
  &&
  let p = predecessor t id in
  p >= 0 && Dewey.is_ancestor t.(p) id

let root_of t id =
  if Array.length t = 0 then None
  else
    let p = predecessor t id in
    if p >= 0 && Dewey.is_ancestor_or_self t.(p) id then Some t.(p) else None
