(** Membership tests against a set of subtree roots, given by identifier:
    "is this node inside one of the (possibly nested) deleted/inserted
    subtrees?" — answered from the ID alone, without touching the tree. *)

type t

val of_roots : Dewey.t list -> t

val is_empty : t -> bool

(** The normalized subtree roots: disjoint, in document order. Do not
    mutate. Each root covers a contiguous document-order interval, which
    is what makes binary-search range extraction over sorted relations
    possible ({!Store.relation_span}). *)
val roots : t -> Dewey.t array

(** [mem region id]: [id] is one of the roots or a descendant of one. *)
val mem : t -> Dewey.t -> bool

(** [strictly_inside region id]: some strict ancestor of [id] is in the
    region — i.e. [id] lies strictly inside one of the subtrees. *)
val strictly_inside : t -> Dewey.t -> bool

(** [root_of region id] is the (normalized) subtree root containing [id],
    if any. *)
val root_of : t -> Dewey.t -> Dewey.t option
