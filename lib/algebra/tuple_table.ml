(* Two physical layouts share one logical table type:

   - [Boxed]: row-major [Dewey.t array array] — the original layout,
     kept as the escape hatch (--boxed / XVM_BOXED_TABLES=1) and for
     tables built away from any arena;
   - [Cols]: struct-of-arrays over [Dewey_arena] handles — one unboxed
     int column per pattern node, so the join/delta hot loops run over
     contiguous ints.

   The boxed row API ([rows]/[get]/[iter]/[filter]) stays available on
   columnar tables as a compatibility view (rows are materialized from
   the handle columns, and cached by [rows]), so operators migrate to
   the columnar fast paths incrementally. *)

type repr =
  | Boxed of boxed
  | Cols of colstore

and boxed = { mutable buf : Dewey.t array array (* capacity = Array.length buf *) }

and colstore = {
  arena : Dewey_arena.t;
  mutable data : int array array;
      (* one per column; shared capacity = Array.length data.(0) *)
  mutable cache : Dewey.t array array option; (* boxed compatibility view *)
}

type t = {
  tcols : int array;
  mutable repr : repr;
  mutable len : int;
  mutable sorted : int option; (* column in non-decreasing document order *)
}

(* Global layout toggle: columnar by default, boxed via the environment
   escape hatch or [set_columnar false] (xvmcli --boxed). Consulted by
   the scan builders (Plan, Delta), not by existing tables.

   Only the explicit truthy spellings "1" and "true" (case-insensitive,
   surrounding whitespace ignored) request the boxed layout; any other
   value — including "0", "false", "", "on" — leaves the default
   columnar layout, exactly like an unset variable. The parse is a pure
   function of the variable's value so tests can cover it without
   mutating the process environment. *)
let boxed_requested env =
  match env with
  | None -> false
  | Some s -> (
    match String.lowercase_ascii (String.trim s) with
    | "1" | "true" -> true
    | _ -> false)

let columnar = ref (not (boxed_requested (Sys.getenv_opt "XVM_BOXED_TABLES")))

let columnar_enabled () = !columnar
let set_columnar b = columnar := b

let dummy_row : Dewey.t array = [||]

let create ~cols = { tcols = cols; repr = Boxed { buf = [||] }; len = 0; sorted = None }

let of_rows ?sorted_by ~cols rows =
  { tcols = cols; repr = Boxed { buf = rows }; len = Array.length rows; sorted = sorted_by }

let of_ids ?(sorted = false) ~node ids =
  {
    tcols = [| node |];
    repr = Boxed { buf = Array.map (fun id -> [| id |]) ids };
    len = Array.length ids;
    sorted = (if sorted then Some node else None);
  }

let of_handles ?(sorted = false) ~arena ~node handles =
  {
    tcols = [| node |];
    repr = Cols { arena; data = [| handles |]; cache = None };
    len = Array.length handles;
    sorted = (if sorted then Some node else None);
  }

let of_cols ?sorted_by ~arena ~cols ~len data =
  if Array.length data <> Array.length cols then
    invalid_arg "Tuple_table.of_cols: column count mismatch";
  if Array.length cols = 0 then
    { tcols = cols; repr = Boxed { buf = [||] }; len = 0; sorted = sorted_by }
  else
    { tcols = cols; repr = Cols { arena; data; cache = None }; len; sorted = sorted_by }

let length t = t.len
let is_empty t = t.len = 0
let cols t = t.tcols

let compact_cols t c =
  if Array.length c.data > 0 && Array.length c.data.(0) <> t.len then
    c.data <- Array.map (fun a -> Array.sub a 0 t.len) c.data

let columns t =
  match t.repr with
  | Boxed _ -> None
  | Cols c ->
    compact_cols t c;
    Some (c.arena, c.data)

let arena t = match t.repr with Boxed _ -> None | Cols c -> Some c.arena

let build_row c i =
  Array.map (fun col -> Dewey_arena.to_dewey c.arena col.(i)) c.data

let rows t =
  match t.repr with
  | Boxed b ->
    if Array.length b.buf <> t.len then b.buf <- Array.sub b.buf 0 t.len;
    b.buf
  | Cols c -> (
    match c.cache with
    | Some r -> r
    | None ->
      let r = Array.init t.len (fun i -> build_row c i) in
      c.cache <- Some r;
      r)

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Tuple_table.get";
  match t.repr with
  | Boxed b -> b.buf.(i)
  | Cols c -> ( match c.cache with Some r -> r.(i) | None -> build_row c i)

let iter f t =
  match t.repr with
  | Boxed b ->
    for i = 0 to t.len - 1 do
      f b.buf.(i)
    done
  | Cols c -> (
    match c.cache with
    | Some r -> Array.iter f r
    | None ->
      for i = 0 to t.len - 1 do
        f (build_row c i)
      done)

let cell_id t i p =
  if i < 0 || i >= t.len then invalid_arg "Tuple_table.cell_id";
  match t.repr with
  | Boxed b -> b.buf.(i).(p)
  | Cols c -> Dewey_arena.to_dewey c.arena c.data.(p).(i)

let col_pos t node =
  let n = Array.length t.tcols in
  let rec go i =
    if i >= n then raise Not_found else if t.tcols.(i) = node then i else go (i + 1)
  in
  go 0

let sorted_by t = t.sorted
let sorted_on t node = t.len <= 1 || t.sorted = Some node
let mark_sorted_by t node = t.sorted <- Some node

let ensure_capacity t extra =
  let need = t.len + extra in
  match t.repr with
  | Boxed b ->
    let cap = Array.length b.buf in
    if need > cap then begin
      let cap' = max need (max 8 (2 * cap)) in
      let buf = Array.make cap' dummy_row in
      Array.blit b.buf 0 buf 0 t.len;
      b.buf <- buf
    end
  | Cols c ->
    let cap = if Array.length c.data = 0 then 0 else Array.length c.data.(0) in
    if need > cap then begin
      let cap' = max need (max 8 (2 * cap)) in
      c.data <-
        Array.map
          (fun a ->
            let a' = Array.make cap' 0 in
            Array.blit a 0 a' 0 t.len;
            a')
          c.data
    end

(* Appends keep the metadata honest with one comparison per boundary: the
   incoming row must not sort before the current last one. *)
let still_sorted_after t row =
  match t.sorted with
  | None -> None
  | Some c ->
    if t.len = 0 then Some c
    else begin
      let p = col_pos t c in
      let last =
        match t.repr with
        | Boxed b -> b.buf.(t.len - 1).(p)
        | Cols cs -> Dewey_arena.to_dewey cs.arena cs.data.(p).(t.len - 1)
      in
      if Dewey.compare last row.(p) <= 0 then Some c else None
    end

let append_row t row =
  t.sorted <- still_sorted_after t row;
  ensure_capacity t 1;
  (match t.repr with
  | Boxed b -> b.buf.(t.len) <- row
  | Cols c ->
    (* Row cells coming from any live table originate in the store, so
       off the main domain these interns are guaranteed lookups. *)
    Array.iteri (fun p col -> col.(t.len) <- Dewey_arena.intern c.arena row.(p)) c.data;
    c.cache <- None);
  t.len <- t.len + 1

let append_rows t rows =
  let n = Array.length rows in
  if n > 0 then begin
    (match t.sorted with
    | None -> ()
    | Some c ->
      let p = col_pos t c in
      let ok = ref (still_sorted_after t rows.(0) <> None) in
      let i = ref 1 in
      while !ok && !i < n do
        if Dewey.compare rows.(!i - 1).(p) rows.(!i).(p) > 0 then ok := false;
        incr i
      done;
      if not !ok then t.sorted <- None);
    ensure_capacity t n;
    (match t.repr with
    | Boxed b -> Array.blit rows 0 b.buf t.len n
    | Cols c ->
      for i = 0 to n - 1 do
        let row = rows.(i) in
        Array.iteri
          (fun p col -> col.(t.len + i) <- Dewey_arena.intern c.arena row.(p))
          c.data
      done;
      c.cache <- None);
    t.len <- t.len + n
  end

let same_cols a b =
  Array.length a.tcols = Array.length b.tcols
  && Array.for_all2 ( = ) a.tcols b.tcols

(* Bulk append of a whole table; columnar→columnar over one arena is a
   per-column blit with int-only order checks, anything else goes
   through the boxed view. *)
let append_table t src =
  match (t.repr, src.repr) with
  | Cols c, Cols cs when c.arena == cs.arena && same_cols t src ->
    if src.len > 0 then begin
      compact_cols src cs;
      (match t.sorted with
      | None -> ()
      | Some cl ->
        let p = col_pos t cl in
        let col = cs.data.(p) in
        let ok =
          ref
            (t.len = 0
            || Dewey_arena.compare c.arena c.data.(p).(t.len - 1) col.(0) <= 0)
        in
        if !ok && not (sorted_on src cl) then begin
          let i = ref 1 in
          while !ok && !i < src.len do
            if Dewey_arena.compare c.arena col.(!i - 1) col.(!i) > 0 then ok := false;
            incr i
          done
        end;
        if not !ok then t.sorted <- None);
      ensure_capacity t src.len;
      Array.iteri (fun p col -> Array.blit cs.data.(p) 0 col t.len src.len) c.data;
      c.cache <- None;
      t.len <- t.len + src.len
    end
  | _ -> append_rows t (rows src)

let filter t keep =
  match t.repr with
  | Boxed b ->
    let k = ref 0 in
    for i = 0 to t.len - 1 do
      let row = b.buf.(i) in
      if keep row then begin
        b.buf.(!k) <- row;
        incr k
      end
    done;
    if !k < t.len then begin
      Array.fill b.buf !k (t.len - !k) dummy_row;
      t.len <- !k
    end
  | Cols c ->
    let ncols = Array.length c.data in
    let k = ref 0 in
    for i = 0 to t.len - 1 do
      if keep (build_row c i) then begin
        if !k < i then
          for p = 0 to ncols - 1 do
            c.data.(p).(!k) <- c.data.(p).(i)
          done;
        incr k
      end
    done;
    if !k < t.len then t.len <- !k;
    c.cache <- None

let sort_by_node t node =
  let pos = col_pos t node in
  if not (sorted_on t node) then begin
    match t.repr with
    | Boxed _ ->
      let r = rows t in
      Array.sort (fun a b -> Dewey.compare a.(pos) b.(pos)) r
    | Cols c ->
      compact_cols t c;
      let key = c.data.(pos) in
      let perm = Array.init t.len Fun.id in
      Array.sort (fun i j -> Dewey_arena.compare c.arena key.(i) key.(j)) perm;
      c.data <- Array.map (fun col -> Array.map (fun i -> col.(i)) perm) c.data;
      c.cache <- None
  end;
  t.sorted <- Some node

let copy t =
  let repr =
    match t.repr with
    | Boxed b -> Boxed { buf = Array.sub b.buf 0 t.len }
    | Cols c ->
      Cols
        {
          arena = c.arena;
          data = Array.map (fun a -> Array.sub a 0 t.len) c.data;
          cache = None;
        }
  in
  { tcols = t.tcols; repr; len = t.len; sorted = t.sorted }
