type t = {
  tcols : int array;
  mutable buf : Dewey.t array array; (* capacity = Array.length buf *)
  mutable len : int;
  mutable sorted : int option; (* column in non-decreasing document order *)
}

let dummy_row : Dewey.t array = [||]

let create ~cols = { tcols = cols; buf = [||]; len = 0; sorted = None }

let of_rows ?sorted_by ~cols rows =
  { tcols = cols; buf = rows; len = Array.length rows; sorted = sorted_by }

let of_ids ?(sorted = false) ~node ids =
  {
    tcols = [| node |];
    buf = Array.map (fun id -> [| id |]) ids;
    len = Array.length ids;
    sorted = (if sorted then Some node else None);
  }

let length t = t.len
let is_empty t = t.len = 0
let cols t = t.tcols

let rows t =
  if Array.length t.buf <> t.len then t.buf <- Array.sub t.buf 0 t.len;
  t.buf

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Tuple_table.get";
  t.buf.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

let col_pos t node =
  let n = Array.length t.tcols in
  let rec go i =
    if i >= n then raise Not_found else if t.tcols.(i) = node then i else go (i + 1)
  in
  go 0

let sorted_by t = t.sorted
let sorted_on t node = t.len <= 1 || t.sorted = Some node
let mark_sorted_by t node = t.sorted <- Some node

let ensure_capacity t extra =
  let need = t.len + extra in
  let cap = Array.length t.buf in
  if need > cap then begin
    let cap' = max need (max 8 (2 * cap)) in
    let buf = Array.make cap' dummy_row in
    Array.blit t.buf 0 buf 0 t.len;
    t.buf <- buf
  end

(* Appends keep the metadata honest with one comparison per boundary: the
   incoming row must not sort before the current last one. *)
let still_sorted_after t row =
  match t.sorted with
  | None -> None
  | Some c ->
    if t.len = 0 then Some c
    else begin
      let p = col_pos t c in
      if Dewey.compare t.buf.(t.len - 1).(p) row.(p) <= 0 then Some c else None
    end

let append_row t row =
  t.sorted <- still_sorted_after t row;
  ensure_capacity t 1;
  t.buf.(t.len) <- row;
  t.len <- t.len + 1

let append_rows t rows =
  let n = Array.length rows in
  if n > 0 then begin
    (match t.sorted with
    | None -> ()
    | Some c ->
      let p = col_pos t c in
      let ok = ref (t.len = 0 || Dewey.compare t.buf.(t.len - 1).(p) rows.(0).(p) <= 0) in
      let i = ref 1 in
      while !ok && !i < n do
        if Dewey.compare rows.(!i - 1).(p) rows.(!i).(p) > 0 then ok := false;
        incr i
      done;
      if not !ok then t.sorted <- None);
    ensure_capacity t n;
    Array.blit rows 0 t.buf t.len n;
    t.len <- t.len + n
  end

let filter t keep =
  let k = ref 0 in
  for i = 0 to t.len - 1 do
    let row = t.buf.(i) in
    if keep row then begin
      t.buf.(!k) <- row;
      incr k
    end
  done;
  if !k < t.len then begin
    Array.fill t.buf !k (t.len - !k) dummy_row;
    t.len <- !k
  end

let sort_by_node t node =
  let pos = col_pos t node in
  if not (sorted_on t node) then begin
    let r = rows t in
    Array.sort (fun a b -> Dewey.compare a.(pos) b.(pos)) r
  end;
  t.sorted <- Some node

let copy t =
  {
    tcols = t.tcols;
    buf = Array.sub t.buf 0 t.len;
    len = t.len;
    sorted = t.sorted;
  }
