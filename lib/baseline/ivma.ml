type report = {
  elapsed : float;
  invocations : int;
  embeddings_added : int;
  embeddings_removed : int;
  fallback_recompute : bool;
}

let obs = Obs.Scope.v "ivma"
let t_propagate = Obs.Scope.timer obs "propagate"
let c_invocations = Obs.Scope.counter obs "invocations"
let c_emb_added = Obs.Scope.counter obs "embeddings_added"
let c_emb_removed = Obs.Scope.counter obs "embeddings_removed"
let c_fallbacks = Obs.Scope.counter obs "fallback_recomputes"

(* Every [report] exit flows through here, mirroring [Maint.emit]. *)
let emit r =
  Obs.Timer.add_span t_propagate r.elapsed;
  Obs.Counter.add c_invocations r.invocations;
  Obs.Counter.add c_emb_added r.embeddings_added;
  Obs.Counter.add c_emb_removed r.embeddings_removed;
  if r.fallback_recompute then Obs.Counter.incr c_fallbacks;
  r

let node_matches pat i id node =
  Pattern.tag_matches pat.Pattern.tags.(i) node
  && Pattern.vpred_holds pat i node
  && Plan.root_anchor_ok pat i id

(* Evaluate the view with pattern position [fixed] bound to exactly [id],
   and every other position bound to its canonical relation amended by
   [extra] (nodes already processed in this node-at-a-time run) minus
   [excluded]. *)
let eval_with_fixed mv ~fixed ~id ~extra ~excluded =
  let pat = mv.Mview.pat in
  let store = mv.Mview.store in
  let atom j =
    if j = fixed then Tuple_table.of_ids ~node:j [| id |]
    else begin
      let base = Plan.atom_of_store store pat j in
      let rows =
        Array.of_seq
          (Seq.filter
             (fun row -> not (Hashtbl.mem excluded (Dewey.encode row.(0))))
             (Array.to_seq (Tuple_table.rows base)))
      in
      let extra_rows =
        List.filter_map
          (fun (xid, xnode) ->
            if node_matches pat j xid xnode then Some [| xid |] else None)
          extra
      in
      Tuple_table.of_rows ~cols:[| j |] (Array.append rows (Array.of_list extra_rows))
    end
  in
  Plan.eval_subtree pat ~atom ~within:(fun _ -> true) ~root:0

let binding_key pat t row =
  let buf = Buffer.create 32 in
  for i = 0 to Pattern.node_count pat - 1 do
    Buffer.add_string buf (Dewey.encode row.(Tuple_table.col_pos t i))
  done;
  Buffer.contents buf

let no_excluded : (string, unit) Hashtbl.t = Hashtbl.create 1

(* The exact fallback shared by both branches: a value predicate flipped
   on a node that stays in the document, which the node-at-a-time delta
   model cannot see. Same discipline as [Maint.propagate_applied]. *)
let rebuild_fallback mv ~invocations =
  let store = mv.Mview.store in
  let (), elapsed =
    Timing.duration (fun () ->
        Store.commit store;
        Mview.rebuild mv)
  in
  emit {
    elapsed;
    invocations;
    embeddings_added = 0;
    embeddings_removed = 0;
    fallback_recompute = true;
  }

let propagate mv u =
  let pat = mv.Mview.pat in
  let store = mv.Mview.store in
  let targets = Update.targets store u in
  let watches = Maint.vpred_watches mv targets in
  match u with
  | Update.Replace_value _ ->
    invalid_arg "Ivma.propagate: replace-value is not a node-level operation"
  | Update.Insert _ ->
    let app = Update.apply_insert store u ~targets in
    if Maint.watches_flipped mv watches then rebuild_fallback mv ~invocations:0
    else
    let new_nodes =
      List.concat_map
        (fun (_tid, forest) ->
          List.concat_map
            (fun tree ->
              List.map
                (fun n -> (Store.id_of store n, n))
                (Xml_tree.descendants_or_self tree))
            forest)
        app.Update.pairs
    in
    let new_nodes =
      List.sort (fun (a, _) (b, _) -> Dewey.compare a b) new_nodes
    in
    let added = ref 0 in
    let (), elapsed =
      Timing.duration (fun () ->
          let seen = Hashtbl.create 64 in
          let processed = ref [] in
          List.iter
            (fun (id, node) ->
              for i = 0 to Pattern.node_count pat - 1 do
                if node_matches pat i id node then begin
                  (* The node being propagated must be visible at every
                     other pattern position too: one inserted node can be
                     bound at several positions of the same embedding
                     (e.g. [/d[//d][//d]] gaining a single [<d/>]). *)
                  let t =
                    eval_with_fixed mv ~fixed:i ~id
                      ~extra:((id, node) :: !processed)
                      ~excluded:no_excluded
                  in
                  Tuple_table.iter
                    (fun row ->
                      let key = binding_key pat t row in
                      if not (Hashtbl.mem seen key) then begin
                        Hashtbl.add seen key ();
                        Mview.add_binding mv (fun j ->
                            row.(Tuple_table.col_pos t j));
                        incr added
                      end)
                    t
                end
              done;
              processed := (id, node) :: !processed)
            new_nodes;
          ignore (Maint.refresh_payloads mv (Maint.Ins app));
          Store.commit store)
    in
    emit {
      elapsed;
      invocations = List.length new_nodes;
      embeddings_added = !added;
      embeddings_removed = 0;
      fallback_recompute = false;
    }
  | Update.Delete _ ->
    let app = Update.apply_delete store ~targets in
    if Maint.watches_flipped mv watches then rebuild_fallback mv ~invocations:0
    else
    (* Bottom-up: remove one node at a time, leaves first. *)
    let doomed =
      List.sort (fun (a, _) (b, _) -> Dewey.compare b a) (Lazy.force app.Update.deleted)
    in
    let removed_count = ref 0 in
    let (), elapsed =
      Timing.duration (fun () ->
          let seen = Hashtbl.create 64 in
          let removed = Hashtbl.create 64 in
          List.iter
            (fun (id, node) ->
              for i = 0 to Pattern.node_count pat - 1 do
                if node_matches pat i id node then begin
                  let t =
                    eval_with_fixed mv ~fixed:i ~id ~extra:[] ~excluded:removed
                  in
                  Tuple_table.iter
                    (fun row ->
                      let key = binding_key pat t row in
                      if not (Hashtbl.mem seen key) then begin
                        Hashtbl.add seen key ();
                        Mview.remove_binding mv (fun j ->
                            row.(Tuple_table.col_pos t j));
                        incr removed_count
                      end)
                    t
                end
              done;
              Hashtbl.replace removed (Dewey.encode id) ())
            doomed;
          ignore (Maint.refresh_payloads mv (Maint.Del app));
          Store.commit store)
    in
    emit {
      elapsed;
      invocations = List.length doomed;
      embeddings_added = 0;
      embeddings_removed = !removed_count;
      fallback_recompute = false;
    }
