(** Node-at-a-time incremental view maintenance — a re-implementation of
    the IVMA algorithm of Sawires et al. (SIGMOD 2005) on our store, used
    as the paper's closest competitor (Section 6.6).

    IVMA propagates {e one node} insertion/removal per invocation: a bulk
    update adding or removing [n] nodes triggers [n] consecutive
    maintenance calls, each of which checks the node against every view
    position and recomputes the matching bindings. Use it on a view
    materialized with the [Leaves] policy (it maintains no snowcaps). *)

type report = {
  elapsed : float;  (** total propagation time, seconds *)
  invocations : int;  (** number of per-node maintenance calls *)
  embeddings_added : int;
  embeddings_removed : int;
  fallback_recompute : bool;
      (** [true] when a value-predicate flip on an {e existing} node
          forced a full rebuild — the same guard [Maint] applies: the
          node-at-a-time delta model only sees inserted/deleted nodes,
          so a [[val = c]] selection flipping on a node that stays in
          the document is invisible to it. *)
}

(** [propagate mv u] applies [u] to the document and maintains [mv] by
    repeated node-level propagation. Like [Maint.propagate], it guards
    the value predicates of the view: if the update flips the selection
    status of an existing watched node, the view is rebuilt exactly
    instead ([fallback_recompute] is set). *)
val propagate : Mview.t -> Update.t -> report
