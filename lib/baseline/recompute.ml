let obs = Obs.Scope.v "recompute"
let t_materialize = Obs.Scope.timer obs "materialize"
let c_runs = Obs.Scope.counter obs "runs"

let recompute_after store u ~pat =
  let targets = Update.targets store u in
  (match u with
  | Update.Insert _ -> ignore (Update.apply_insert store u ~targets)
  | Update.Delete _ -> ignore (Update.apply_delete store ~targets)
  | Update.Replace_value { text; _ } ->
    ignore (Update.apply_replace store ~text ~targets));
  Store.commit store;
  let mv, elapsed =
    Timing.duration (fun () -> Mview.materialize ~policy:Mview.Leaves store pat)
  in
  Obs.Counter.incr c_runs;
  Obs.Timer.add_span t_materialize elapsed;
  (mv, elapsed)

let cell_repr (c : Mview.cell) =
  (Dewey.encode c.Mview.cell_id, c.Mview.cell_value, c.Mview.cell_content)

let dump_repr mv =
  List.map
    (fun (key, count, cells) ->
      (key, count, Array.to_list (Array.map cell_repr cells)))
    (Mview.dump mv)

let equal a b = dump_repr a = dump_repr b

let diff a b =
  let da = dump_repr a and db = dump_repr b in
  if da = db then None
  else begin
    let summarize side (key, count, cells) =
      Some
        (Printf.sprintf "%s: key=%s count=%d cells=%d" side
           (String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                (List.init (String.length key) (String.get key))))
           count (List.length cells))
    in
    let rec first_diff la lb =
      match (la, lb) with
      | [], [] -> Some "views differ (unlocated)"
      | x :: _, [] -> summarize "only-left" x
      | [], y :: _ -> summarize "only-right" y
      | x :: ra, y :: rb ->
        if x = y then first_diff ra rb
        else if x < y then summarize "only-left" x
        else summarize "only-right" y
    in
    first_diff da db
  end
