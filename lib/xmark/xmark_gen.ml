let words =
  [|
    "auction"; "bid"; "rare"; "vintage"; "collector"; "mint"; "condition";
    "shipping"; "priority"; "estate"; "antique"; "original"; "boxed";
    "limited"; "edition"; "signed"; "certificate"; "guarantee"; "payment";
    "quality"; "bronze"; "silver"; "golden"; "ivory"; "amber"; "walnut";
    "maple"; "engraved"; "imported"; "handmade"; "restored"; "pristine";
  |]

let continents = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

let cities = [| "Lille"; "Glasgow"; "Paris"; "Potenza"; "Berlin"; "Oslo"; "Porto" |]

let el ?(children = []) name = Xml_tree.element ~children name
let txt s = Xml_tree.text s
let attr = Xml_tree.attribute

let rand_words st n =
  let buf = Buffer.create 32 in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf words.(Random.State.int st (Array.length words))
  done;
  Buffer.contents buf

let maybe st p node = if Random.State.float st 1.0 < p then [ node () ] else []

let increase_values = [| "1.50"; "3.00"; "4.50"; "6.00"; "7.50"; "9.00"; "13.50" |]

(* {1 Skew}

   Knobs for the two-regime documents the heavy-light bench needs: a
   Zipfian distribution of bidders across open auctions (extreme
   same-label sibling fan-out under a few hot auctions), concentration
   of the skew budget on the hottest labels, and a Zipfian draw over
   the increase/current value pool (skewed value distributions, hence
   skewed self-join selectivity). [document ~skew:None] consumes the
   RNG exactly as before, so existing seeds keep their documents. *)

type skew = { zipf_alpha : float; hot_share : float; value_alpha : float }

let default_skew = { zipf_alpha = 1.1; hot_share = 0.5; value_alpha = 1.2 }

(* Draw 0..n-1 with P(i) ∝ 1/(i+1)^alpha — O(n) inversion, fine for the
   small pools the generator draws from. *)
let zipf_index st ~alpha ~n =
  let total = ref 0. in
  for i = 0 to n - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (i + 1)) alpha)
  done;
  let u = Random.State.float st !total in
  let acc = ref 0. and chosen = ref (n - 1) and i = ref 0 in
  while !i < n && !chosen = n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (!i + 1)) alpha);
    if u < !acc && !chosen = n - 1 then chosen := !i;
    incr i
  done;
  !chosen

(* Integer shares of [total] proportional to Zipf weights over [n]
   ranks: rank 0 (the hot auction) takes the lion's share. *)
let zipf_shares ~alpha ~n ~total =
  let w = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) alpha) in
  let sum = Array.fold_left ( +. ) 0. w in
  Array.map (fun wi -> int_of_float (float_of_int total *. wi /. sum)) w

let gen_person st i =
  let profile () =
    el "profile"
      ~children:
        ((if Random.State.float st 1.0 < 0.7 then
            [ attr "income" (string_of_int (20000 + Random.State.int st 80000)) ]
          else [])
        @ [ el "business" ~children:[ txt "Yes" ] ]
        @ maybe st 0.5 (fun () -> el "gender" ~children:[ txt "male" ])
        @ maybe st 0.5 (fun () ->
              el "age" ~children:[ txt (string_of_int (18 + Random.State.int st 60)) ])
        @ maybe st 0.6 (fun () ->
              el "interest"
                ~children:[ attr "category" (Printf.sprintf "category%d" (Random.State.int st 20)) ]))
  in
  el "person"
    ~children:
      ([
         attr "id" (Printf.sprintf "person%d" i);
         el "name" ~children:[ txt (rand_words st 2) ];
         el "emailaddress" ~children:[ txt (Printf.sprintf "mailto:p%d@auctions.example" i) ];
       ]
      @ maybe st 0.5 (fun () ->
            el "phone" ~children:[ txt (Printf.sprintf "+33 %07d" (Random.State.int st 9999999)) ])
      @ maybe st 0.6 (fun () ->
            el "address"
              ~children:
                [
                  el "street" ~children:[ txt (rand_words st 2) ];
                  el "city"
                    ~children:[ txt cities.(Random.State.int st (Array.length cities)) ];
                  el "country" ~children:[ txt "France" ];
                  el "zipcode" ~children:[ txt (string_of_int (10000 + Random.State.int st 89999)) ];
                ])
      @ maybe st 0.5 (fun () ->
            el "homepage"
              ~children:[ txt (Printf.sprintf "https://people.example/p%d" i) ])
      @ maybe st 0.5 (fun () ->
            el "creditcard" ~children:[ txt (Printf.sprintf "%04d %04d" (Random.State.int st 9999) (Random.State.int st 9999)) ])
      @ maybe st 0.8 profile
      @ maybe st 0.3 (fun () -> el "watches"))

let gen_item st ~continent:_ i =
  el "item"
    ~children:
      ([ attr "id" (Printf.sprintf "item%d" i);
         el "location" ~children:[ txt cities.(Random.State.int st (Array.length cities)) ];
         el "quantity" ~children:[ txt (string_of_int (1 + Random.State.int st 5)) ] ]
      @ maybe st 0.95 (fun () -> el "name" ~children:[ txt (rand_words st 3) ])
      @ [ el "payment" ~children:[ txt "Creditcard, Personal Check, Cash" ] ]
      @ maybe st 0.9 (fun () ->
            el "description"
              ~children:
                [
                  el "parlist"
                    ~children:
                      [
                        el "listitem" ~children:[ txt (rand_words st 12) ];
                        el "listitem" ~children:[ txt (rand_words st 8) ];
                      ];
                ])
      @ maybe st 0.5 (fun () ->
            el "mailbox"
              ~children:
                [
                  el "mail"
                    ~children:
                      [
                        el "from" ~children:[ txt (rand_words st 2) ];
                        el "to" ~children:[ txt (rand_words st 2) ];
                        el "date" ~children:[ txt "07/05/2026" ];
                        el "text" ~children:[ txt (rand_words st 10) ];
                      ];
                ]))

(* [inc] draws one value from the increase pool — uniform by default,
   Zipf-skewed under a skew profile. *)
let uniform_inc st = increase_values.(Random.State.int st (Array.length increase_values))

let gen_bidder st ~inc ~n_persons =
  el "bidder"
    ~children:
      [
        el "date" ~children:[ txt "07/05/2026" ];
        el "time" ~children:[ txt (Printf.sprintf "%02d:%02d:00" (Random.State.int st 24) (Random.State.int st 60)) ];
        (* Bidders favour a small pool of frequent buyers so that selective
           references (e.g. Q4's person12) keep matching at any scale. *)
        el "personref"
          ~children:
            [ attr "person" (Printf.sprintf "person%d" (Random.State.int st (min 40 n_persons))) ];
        el "increase" ~children:[ txt (inc st) ];
      ]

let gen_open_auction st i ~inc ~extra_bidders ~n_persons ~n_items =
  let bidders =
    List.init
      (Random.State.int st 5 + extra_bidders)
      (fun _ -> gen_bidder st ~inc ~n_persons)
  in
  el "open_auction"
    ~children:
      ([ attr "id" (Printf.sprintf "open_auction%d" i);
         el "initial" ~children:[ txt increase_values.(Random.State.int st 3) ] ]
      @ maybe st 0.5 (fun () -> el "reserve" ~children:[ txt "25.00" ])
      @ bidders
      @ [ el "current" ~children:[ txt increase_values.(Random.State.int st (Array.length increase_values)) ] ]
      @ maybe st 0.5 (fun () -> el "privacy" ~children:[ txt "Yes" ])
      @ [
          el "itemref" ~children:[ attr "item" (Printf.sprintf "item%d" (Random.State.int st (max 1 n_items))) ];
          el "seller" ~children:[ attr "person" (Printf.sprintf "person%d" (Random.State.int st n_persons)) ];
          el "annotation"
            ~children:
              [
                el "author" ~children:[ attr "person" (Printf.sprintf "person%d" (Random.State.int st n_persons)) ];
                el "description" ~children:[ txt (rand_words st 8) ];
              ];
          el "quantity" ~children:[ txt "1" ];
          el "type" ~children:[ txt "Regular" ];
          el "interval"
            ~children:
              [
                el "start" ~children:[ txt "07/01/2026" ];
                el "end" ~children:[ txt "08/01/2026" ];
              ];
        ])

let gen_closed_auction st ~n_persons ~n_items =
  el "closed_auction"
    ~children:
      [
        el "seller" ~children:[ attr "person" (Printf.sprintf "person%d" (Random.State.int st n_persons)) ];
        el "buyer" ~children:[ attr "person" (Printf.sprintf "person%d" (Random.State.int st n_persons)) ];
        el "itemref" ~children:[ attr "item" (Printf.sprintf "item%d" (Random.State.int st (max 1 n_items))) ];
        el "price" ~children:[ txt increase_values.(Random.State.int st (Array.length increase_values)) ];
        el "date" ~children:[ txt "06/15/2026" ];
        el "quantity" ~children:[ txt "1" ];
        el "type" ~children:[ txt "Regular" ];
        el "annotation" ~children:[ el "description" ~children:[ txt (rand_words st 6) ] ];
      ]

let gen_category st i =
  el "category"
    ~children:
      [
        attr "id" (Printf.sprintf "category%d" i);
        el "name" ~children:[ txt (rand_words st 2) ];
        el "description" ~children:[ txt (rand_words st 6) ];
      ]

(* Approximate serialized bytes per generated entity, used to derive
   counts from the size target; the actual size is within ~20 %. *)
let person_bytes = 330
let item_bytes = 460
let open_bytes = 560
let closed_bytes = 330
let category_bytes = 110
let bidder_bytes = 180

let gen_document ?skew ~seed ~target_kb () =
  let st = Random.State.make [| seed; target_kb |] in
  let full_budget = target_kb * 1024 in
  (* Under a skew profile, the hot share of the byte budget is spent on
     extra Zipf-distributed bidders instead of base entities, so skewed
     and uniform documents of the same [target_kb] stay comparable in
     total size. *)
  let budget =
    match skew with
    | None -> full_budget
    | Some sk ->
      int_of_float (float_of_int full_budget *. (1. -. sk.hot_share))
  in
  let n_persons = max 14 (budget * 25 / 100 / person_bytes) in
  let n_items = max 6 (budget * 30 / 100 / item_bytes) in
  let n_open = max 4 (budget * 25 / 100 / open_bytes) in
  let n_closed = max 2 (budget * 12 / 100 / closed_bytes) in
  let n_categories = max 2 (budget * 4 / 100 / category_bytes) in
  let inc =
    match skew with
    | None -> uniform_inc
    | Some sk ->
      fun st ->
        increase_values.(zipf_index st ~alpha:sk.value_alpha
                           ~n:(Array.length increase_values))
  in
  let extra_bidders =
    match skew with
    | None -> Array.make n_open 0
    | Some sk ->
      let total = (full_budget - budget) / bidder_bytes in
      zipf_shares ~alpha:sk.zipf_alpha ~n:n_open ~total
  in
  let regions =
    el "regions"
      ~children:
        (Array.to_list
           (Array.mapi
              (fun r continent ->
                let count = (n_items / Array.length continents) + (if r < n_items mod Array.length continents then 1 else 0) in
                el continent
                  ~children:(List.init count (fun i -> gen_item st ~continent (r + (i * Array.length continents)))))
              continents))
  in
  let categories =
    el "categories" ~children:(List.init n_categories (gen_category st))
  in
  let people = el "people" ~children:(List.init n_persons (gen_person st)) in
  let open_auctions =
    el "open_auctions"
      ~children:
        (List.init n_open (fun i ->
             gen_open_auction st i ~inc ~extra_bidders:extra_bidders.(i)
               ~n_persons ~n_items))
  in
  let closed_auctions =
    el "closed_auctions"
      ~children:(List.init n_closed (fun _ -> gen_closed_auction st ~n_persons ~n_items))
  in
  el "site" ~children:[ regions; categories; people; open_auctions; closed_auctions ]

let document ~seed ~target_kb = gen_document ~seed ~target_kb ()

let document_skewed ?(skew = default_skew) ~seed ~target_kb () =
  gen_document ~skew ~seed ~target_kb ()

let actual_bytes = Xml_tree.serialized_size
