(** Bounded-growth update mix for the serving benchmarks.

    A cyclic statement stream for driving a long-lived {!Server} over
    an XMark document: insertions add small fragments (person phones,
    auction bidders) and the paired deletions remove exactly those
    label populations, so the document size stays bounded no matter how
    long the stream runs. The mix alternates footprints that are
    relevant and irrelevant to the typical Q1–Q17 views, exercising
    both the propagation and the relevance-skip paths. *)

(** [statement i] is the [i]-th statement of the stream (0-based,
    deterministic). *)
val statement : int -> Update.t

(** The cycle length of the mix. *)
val period : int
