let period = 6

(* Each insert/delete pair targets one label population: the deletion
   removes every node the paired insertion (and the generator's initial
   document) put there, so repeated cycles reach a steady state instead
   of growing without bound. Paths and fragments follow the Appendix A
   idiom (see [Xmark_updates]). *)
let statement i =
  match (i mod period + period) mod period with
  | 0 -> Update.insert ~into:"/site/people/person" "<phone>+1-555-0199</phone>"
  | 1 -> Update.delete "/site/people/person/phone"
  | 2 ->
    Update.insert ~into:"/site/open_auctions/open_auction"
      "<bidder><date>01/01/2000</date><increase>7.50</increase></bidder>"
  | 3 -> Update.delete "/site/open_auctions/open_auction/bidder"
  | 4 ->
    (* A label no generated document or view mentions: propagation is
       provably irrelevant to every view, exercising the skip path. *)
    Update.insert ~into:"/site/categories" "<edge from=\"c0\" to=\"c1\"/>"
  | _ -> Update.delete "/site/categories/edge"
