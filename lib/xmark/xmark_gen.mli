(** Deterministic XMark-style document generator.

    Emits auction documents with the element vocabulary the paper's views
    and updates touch — [site/people/person] (with optional [phone],
    [address], [homepage], [creditcard], [profile@income]),
    [site/open_auctions/open_auction] (with [bidder/increase],
    [personref], [privacy], [reserve], …), [site/regions/<continent>/item]
    (with [name], [description], [mailbox], …), categories and closed
    auctions — scaled to an approximate serialized size. Same seed and
    size ⇒ same document. *)

(** [document ~seed ~target_kb] generates a document whose serialization
    is roughly [target_kb] kilobytes. *)
val document : seed:int -> target_kb:int -> Xml_tree.node

(** {1 Skewed documents}

    Knobs for two-regime documents (the heavy-light maintenance bench):
    bidders are redistributed across open auctions by a Zipfian law —
    the hottest auction concentrates an extreme same-label sibling
    fan-out of [bidder] children — and increase/current values are
    drawn Zipf-skewed from the value pool, skewing self-join
    selectivity. The hot share of the byte budget is carved out of the
    base entities, so a skewed document stays roughly the same total
    size as the uniform document of the same [target_kb]. *)

type skew = {
  zipf_alpha : float;  (** Zipf exponent of the bidder-per-auction law *)
  hot_share : float;  (** byte-budget fraction spent on hot bidders (0..1) *)
  value_alpha : float;  (** Zipf exponent of the increase-value draw *)
}

(** [zipf_alpha = 1.1], [hot_share = 0.5], [value_alpha = 1.2]. *)
val default_skew : skew

(** [document_skewed ?skew ~seed ~target_kb ()] — like {!document} with
    the skew profile applied (default {!default_skew}). *)
val document_skewed :
  ?skew:skew -> seed:int -> target_kb:int -> unit -> Xml_tree.node

(** Serialized size of a generated document, in bytes (convenience
    re-export of [Xml_tree.serialized_size]). *)
val actual_bytes : Xml_tree.node -> int
