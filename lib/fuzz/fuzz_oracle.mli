(** Round-trip fuzzing oracle for the ingestion & persistence boundary.

    Deterministic (seeded) generators check two properties:
    {ul
    {- [parse (serialize t) = t] over randomized canonical XML trees
       with attributes, mixed content, entity-escaping-critical and
       CDATA-worthy text, and multi-byte UTF-8;}
    {- "Corrupt-or-correct": truncations, bit-flips, splices, random
       bytes and checksum-repaired mutations of a valid
       {!Mview_codec.save} image either raise [Mview_codec.Corrupt] or
       load a view semantically equal to the original.}}

    Exposed to the test suite ([test/test_fuzz.ml]), the CLI
    ([xvmcli fuzz]) and the bench harness (section [fuzz]). *)

type report = Qgen.report = {
  iterations : int;
  failed : int;
  failures : string list;  (** first few failure descriptions *)
}

val ok : report -> bool

(** [summary label r] — one line when green, failure details otherwise. *)
val summary : string -> report -> string

(** [random_document rnd] — one randomized canonical tree (attributes
    first, no adjacent or whitespace-only text siblings). *)
val random_document : Random.State.t -> Xml_tree.node

(** [roundtrip_trees ~seed ~count] checks [parse ∘ serialize = id] and
    serialization fixpointness on [count] random trees. *)
val roundtrip_trees : seed:int -> count:int -> report

(** [codec_corrupt ~seed ~count] feeds [count] mutated/random byte
    strings (plus the pristine image) to {!Mview_codec.load}. *)
val codec_corrupt : seed:int -> count:int -> report

(** [wal_corrupt ~seed ~count] builds [count] valid write-ahead-log
    images and damages each one — torn writes, truncations, bit flips,
    spliced garbage, forged-CRC payloads, forged sequence numbers. The
    {!Wal} scanner must never raise; stale-CRC damage must yield an
    exact prefix of the original records; a forged sequence must stop
    the scan at exactly that record; and [Wal.repair_file] must leave a
    file that rescans clean with the same records, idempotently. *)
val wal_corrupt : seed:int -> count:int -> report
