(* Round-trip fuzzing oracle for the ingestion & persistence boundary.

   Two properties are checked, both with deterministic seeds so every
   run (tests, CLI, CI smoke) is reproducible:

   - parse ∘ serialize = id over randomized canonical trees whose text
     exercises entity escaping, CDATA-worthy sequences, multi-byte
     UTF-8, and mixed content;
   - "Corrupt-or-correct" for the view codec: any mutation of a valid
     [Mview_codec.save] image either raises [Corrupt] or loads a view
     semantically equal to the original — no other exception, crash, or
     silently wrong view.

   Trees are generated canonical — attributes before content, no
   adjacent text siblings, no whitespace-only text — because those are
   exactly the invariants the parser normalizes to; on canonical trees
   the round trip must be the identity node-for-node. *)

type report = {
  iterations : int;
  failed : int;
  failures : string list;  (* capped at [max_reported] *)
}

let max_reported = 5

let ok r = r.failed = 0

let summary label r =
  if ok r then Printf.sprintf "%s: %d/%d ok" label r.iterations r.iterations
  else
    Printf.sprintf "%s: %d/%d FAILED\n%s" label r.failed r.iterations
      (String.concat "\n" (List.map (fun f -> "  " ^ f) r.failures))

type recorder = { mutable n : int; mutable msgs : string list }

let fresh_recorder () = { n = 0; msgs = [] }

let record rc msg =
  rc.n <- rc.n + 1;
  if rc.n <= max_reported then rc.msgs <- msg :: rc.msgs

let report_of rc ~iterations =
  { iterations; failed = rc.n; failures = List.rev rc.msgs }

let abbrev s =
  if String.length s <= 160 then s else String.sub s 0 160 ^ "…"

(* {1 Random canonical trees} *)

let labels = [| "a"; "site"; "item-x"; "n.s"; "long_name2"; "B"; "p:q" |]
let attr_names = [| "k"; "id"; "data-v"; "x.y" |]

(* Every piece is non-blank, so any concatenation survives the parser's
   whitespace-only-text dropping. The pieces cover the escaping-critical
   alphabet: markup characters, both quote kinds, "]]>" (CDATA-worthy),
   a CDATA opener as plain text, and 2/3/4-byte UTF-8 sequences. *)
let text_pieces =
  [|
    "x"; "hello world"; "<&>"; "\"q\" & 'a'"; "]]>"; "a]]>b"; "<![CDATA[";
    "\xC3\xA9t\xC3\xA9"; "\xE2\x98\x83"; "\xF0\x9D\x84\x9E"; "tab\there";
    "line\nbreak"; "1 < 2 && 3 > 2"; "--"; "?>";
  |]

let pick rnd arr = arr.(Random.State.int rnd (Array.length arr))

let gen_text rnd =
  let n = 1 + Random.State.int rnd 3 in
  let b = Buffer.create 16 in
  for _ = 1 to n do
    if Buffer.length b > 0 then Buffer.add_char b ' ';
    Buffer.add_string b (pick rnd text_pieces)
  done;
  Buffer.contents b

let gen_attrs rnd =
  let n = Random.State.int rnd (Array.length attr_names + 1) in
  (* Distinct names: walk a rotated copy of the pool. *)
  let start = Random.State.int rnd (Array.length attr_names) in
  List.init n (fun i ->
      let name = attr_names.((start + i) mod Array.length attr_names) in
      Xml_tree.attribute name (gen_text rnd))

let rec gen_element rnd depth =
  let attrs = gen_attrs rnd in
  let n_items = Random.State.int rnd (if depth = 0 then 2 else 5) in
  let items = ref [] and last_text = ref false in
  for _ = 1 to n_items do
    if depth > 0 && (!last_text || Random.State.bool rnd) then begin
      items := gen_element rnd (depth - 1) :: !items;
      last_text := false
    end
    else if not !last_text then begin
      items := Xml_tree.text (gen_text rnd) :: !items;
      last_text := true
    end
  done;
  Xml_tree.element ~children:(attrs @ List.rev !items) (pick rnd labels)

let random_document rnd = gen_element rnd (1 + Random.State.int rnd 3)

(* {1 Property 1: parse ∘ serialize = id} *)

let roundtrip_trees ~seed ~count =
  let rnd = Random.State.make [| seed; 0x7ee5 |] in
  let rc = fresh_recorder () in
  for i = 1 to count do
    let t = random_document rnd in
    let s = Xml_tree.serialize t in
    match Xml_parse.document s with
    | exception Xml_parse.Parse_error m ->
      record rc (Printf.sprintf "tree %d: parse error: %s on %s" i m (abbrev s))
    | t' ->
      if not (Xml_tree.equal t t') then
        record rc
          (Printf.sprintf "tree %d: reparse differs structurally on %s" i (abbrev s))
      else begin
        let s' = Xml_tree.serialize t' in
        if s' <> s then
          record rc
            (Printf.sprintf "tree %d: serialization not a fixpoint: %s vs %s" i
               (abbrev s) (abbrev s'))
      end
  done;
  report_of rc ~iterations:count

(* {1 Property 2: the codec is Corrupt-or-correct} *)

(* A small document/view pair with all three stored-attribute kinds so a
   saved image contains ids, val payloads and cont payloads. *)
let fuzz_view () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<a id=\"root\">";
  for i = 1 to 24 do
    Buffer.add_string buf "<c>";
    for j = 0 to i mod 3 do
      Buffer.add_string buf (Printf.sprintf "<b>v%d-%d&#x2603;</b>" i j)
    done;
    Buffer.add_string buf "</c>"
  done;
  Buffer.add_string buf "</a>";
  let store = Store.of_document (Xml_parse.document (Buffer.contents buf)) in
  let pat =
    Pattern.compile ~name:"fuzz"
      (Pattern.n "a" ~id:true
         [ Pattern.n "c" ~id:true ~content:true [ Pattern.n "b" ~id:true ~value:true [] ] ])
  in
  let mv = Mview.materialize store pat in
  (store, pat, mv)

let random_bytes rnd n = String.init n (fun _ -> Char.chr (Random.State.int rnd 256))

let flip_bits rnd s =
  let b = Bytes.of_string s in
  let flips = 1 + Random.State.int rnd 4 in
  for _ = 1 to flips do
    let i = Random.State.int rnd (Bytes.length b) in
    let bit = 1 lsl Random.State.int rnd 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit))
  done;
  Bytes.to_string b

let splice rnd s =
  let len = String.length s in
  let at = Random.State.int rnd len in
  let n = 1 + Random.State.int rnd (min 16 (len - at)) in
  String.sub s 0 at ^ random_bytes rnd n ^ String.sub s (at + n) (len - at - n)

(* Re-footer a mutated body with a fresh, VALID checksum: this is the
   adversarial case that drives execution past the CRC gate and into the
   varint/length/count validation of the decoder itself. *)
let refooter body =
  let crc = Crc32.string body in
  let footer =
    String.init 4 (fun i -> Char.chr ((crc lsr (8 * (3 - i))) land 0xff))
  in
  body ^ footer

(* [`Raw] mutations leave the stored checksum stale, so a successful
   load implies (modulo a 2^-32 CRC collision) the image decodes to the
   original view. [`Forged] mutations recompute a valid footer over the
   mutated body — such an image is indistinguishable from a legitimate
   save of DIFFERENT data, so only the no-escaped-exception half of the
   property applies; they exist to drive the decoder past the CRC gate
   into varint/length/count validation. *)
let mutate rnd data =
  let len = String.length data in
  let body_len = len - 4 in
  match Random.State.int rnd 7 with
  | 0 -> (`Raw, random_bytes rnd (Random.State.int rnd (len + 16)))
  | 1 -> (`Raw, String.sub data 0 (Random.State.int rnd len))
  | 2 -> (`Raw, flip_bits rnd data)
  | 3 -> (`Raw, splice rnd data)
  | 4 -> (`Raw, data ^ random_bytes rnd (1 + Random.State.int rnd 8))
  | 5 -> (`Forged, refooter (flip_bits rnd (String.sub data 0 body_len)))
  | _ -> (`Forged, refooter (String.sub data 0 (Random.State.int rnd body_len)))

let codec_corrupt ~seed ~count =
  let rnd = Random.State.make [| seed; 0xc0dec |] in
  let rc = fresh_recorder () in
  let store, pat, mv = fuzz_view () in
  let data = Mview_codec.save mv in
  (match Mview_codec.load store pat data with
  | exception e ->
    record rc ("pristine image rejected: " ^ Printexc.to_string e)
  | loaded -> (
    match Recompute.diff mv loaded with
    | None -> ()
    | Some d -> record rc ("pristine image loads differently: " ^ d)));
  for i = 1 to count do
    let kind, mutated = mutate rnd data in
    match Mview_codec.load store pat mutated with
    | exception Mview_codec.Corrupt _ -> ()
    | exception e ->
      record rc
        (Printf.sprintf "input %d: escaped exception %s" i (Printexc.to_string e))
    | loaded -> (
      (* Without a forged footer, a valid load must mean intact data. *)
      match kind with
      | `Forged -> ()
      | `Raw -> (
        match Recompute.diff mv loaded with
        | None -> ()
        | Some d ->
          record rc (Printf.sprintf "input %d: garbage accepted as a view: %s" i d)))
  done;
  report_of rc ~iterations:(count + 1)
