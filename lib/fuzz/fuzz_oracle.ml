(* Round-trip fuzzing oracle for the ingestion & persistence boundary.

   Two properties are checked, both with deterministic seeds so every
   run (tests, CLI, CI smoke) is reproducible:

   - parse ∘ serialize = id over randomized canonical trees whose text
     exercises entity escaping, CDATA-worthy sequences, multi-byte
     UTF-8, and mixed content;
   - "Corrupt-or-correct" for the view codec: any mutation of a valid
     [Mview_codec.save] image either raises [Corrupt] or loads a view
     semantically equal to the original — no other exception, crash, or
     silently wrong view.

   The tree generator and failure recorder live in [Qgen], shared with
   the differential-maintenance harness ([Difftest]): canonical trees —
   attributes before content, no adjacent text siblings, no
   whitespace-only text — are exactly what the parser normalizes to, so
   on them the round trip must be the identity node-for-node. *)

type report = Qgen.report = {
  iterations : int;
  failed : int;
  failures : string list;
}

let ok = Qgen.ok
let summary = Qgen.summary

(* {1 Random canonical trees} *)

let random_document rnd = Qgen.random_document ~profile:Qgen.ingestion rnd

(* Each iteration runs under an [Obs.with_scope] snapshot; a failure
   message carries the iteration's counter profile, so replaying the
   seed reproduces the work alongside the verdict. *)
let work_digest snap =
  match Obs.kv_line snap with "" -> "(no counters)" | s -> s

let record_with rc snap msg = Qgen.record rc (msg ^ "\n  work: " ^ work_digest snap)

(* {1 Property 1: parse ∘ serialize = id} *)

let roundtrip_trees ~seed ~count =
  let rnd = Random.State.make [| seed; 0x7ee5 |] in
  let rc = Qgen.fresh_recorder () in
  let abbrev = Qgen.abbrev in
  for i = 1 to count do
    let t = random_document rnd in
    let verdict, snap =
      Obs.with_scope (fun () ->
          let s = Xml_tree.serialize t in
          match Xml_parse.document s with
          | exception Xml_parse.Parse_error m ->
            Some (Printf.sprintf "tree %d: parse error: %s on %s" i m (abbrev s))
          | t' ->
            if not (Xml_tree.equal t t') then
              Some
                (Printf.sprintf "tree %d: reparse differs structurally on %s" i
                   (abbrev s))
            else begin
              let s' = Xml_tree.serialize t' in
              if s' <> s then
                Some
                  (Printf.sprintf "tree %d: serialization not a fixpoint: %s vs %s"
                     i (abbrev s) (abbrev s'))
              else None
            end)
    in
    match verdict with
    | None -> ()
    | Some msg -> record_with rc snap msg
  done;
  Qgen.report_of rc ~iterations:count

(* {1 Property 2: the codec is Corrupt-or-correct} *)

(* A small document/view pair with all three stored-attribute kinds so a
   saved image contains ids, val payloads and cont payloads. *)
let fuzz_view () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<a id=\"root\">";
  for i = 1 to 24 do
    Buffer.add_string buf "<c>";
    for j = 0 to i mod 3 do
      Buffer.add_string buf (Printf.sprintf "<b>v%d-%d&#x2603;</b>" i j)
    done;
    Buffer.add_string buf "</c>"
  done;
  Buffer.add_string buf "</a>";
  let store = Store.of_document (Xml_parse.document (Buffer.contents buf)) in
  let pat =
    Pattern.compile ~name:"fuzz"
      (Pattern.n "a" ~id:true
         [ Pattern.n "c" ~id:true ~content:true [ Pattern.n "b" ~id:true ~value:true [] ] ])
  in
  let mv = Mview.materialize store pat in
  (store, pat, mv)

let random_bytes rnd n = String.init n (fun _ -> Char.chr (Random.State.int rnd 256))

let flip_bits rnd s =
  let b = Bytes.of_string s in
  let flips = 1 + Random.State.int rnd 4 in
  for _ = 1 to flips do
    let i = Random.State.int rnd (Bytes.length b) in
    let bit = 1 lsl Random.State.int rnd 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit))
  done;
  Bytes.to_string b

let splice rnd s =
  let len = String.length s in
  let at = Random.State.int rnd len in
  let n = 1 + Random.State.int rnd (min 16 (len - at)) in
  String.sub s 0 at ^ random_bytes rnd n ^ String.sub s (at + n) (len - at - n)

(* Re-footer a mutated body with a fresh, VALID checksum: this is the
   adversarial case that drives execution past the CRC gate and into the
   varint/length/count validation of the decoder itself. *)
let refooter body =
  let crc = Crc32.string body in
  let footer =
    String.init 4 (fun i -> Char.chr ((crc lsr (8 * (3 - i))) land 0xff))
  in
  body ^ footer

(* [`Raw] mutations leave the stored checksum stale, so a successful
   load implies (modulo a 2^-32 CRC collision) the image decodes to the
   original view. [`Forged] mutations recompute a valid footer over the
   mutated body — such an image is indistinguishable from a legitimate
   save of DIFFERENT data, so only the no-escaped-exception half of the
   property applies; they exist to drive the decoder past the CRC gate
   into varint/length/count validation. *)
let mutate rnd data =
  let len = String.length data in
  let body_len = len - 4 in
  match Random.State.int rnd 7 with
  | 0 -> (`Raw, random_bytes rnd (Random.State.int rnd (len + 16)))
  | 1 -> (`Raw, String.sub data 0 (Random.State.int rnd len))
  | 2 -> (`Raw, flip_bits rnd data)
  | 3 -> (`Raw, splice rnd data)
  | 4 -> (`Raw, data ^ random_bytes rnd (1 + Random.State.int rnd 8))
  | 5 -> (`Forged, refooter (flip_bits rnd (String.sub data 0 body_len)))
  | _ -> (`Forged, refooter (String.sub data 0 (Random.State.int rnd body_len)))

let codec_corrupt ~seed ~count =
  let rnd = Random.State.make [| seed; 0xc0dec |] in
  let rc = Qgen.fresh_recorder () in
  let store, pat, mv = fuzz_view () in
  let data = Mview_codec.save mv in
  (match Mview_codec.load store pat data with
  | exception e ->
    Qgen.record rc ("pristine image rejected: " ^ Printexc.to_string e)
  | loaded -> (
    match Recompute.diff mv loaded with
    | None -> ()
    | Some d -> Qgen.record rc ("pristine image loads differently: " ^ d)));
  for i = 1 to count do
    let kind, mutated = mutate rnd data in
    let verdict, snap =
      Obs.with_scope (fun () ->
          match Mview_codec.load store pat mutated with
          | exception Mview_codec.Corrupt _ -> None
          | exception e ->
            Some
              (Printf.sprintf "input %d: escaped exception %s" i
                 (Printexc.to_string e))
          | loaded -> (
            (* Without a forged footer, a valid load must mean intact data. *)
            match kind with
            | `Forged -> None
            | `Raw -> (
              match Recompute.diff mv loaded with
              | None -> None
              | Some d ->
                Some
                  (Printf.sprintf "input %d: garbage accepted as a view: %s" i d))))
    in
    match verdict with
    | None -> ()
    | Some msg -> record_with rc snap msg
  done;
  Qgen.report_of rc ~iterations:(count + 1)
