(* Round-trip fuzzing oracle for the ingestion & persistence boundary.

   Two properties are checked, both with deterministic seeds so every
   run (tests, CLI, CI smoke) is reproducible:

   - parse ∘ serialize = id over randomized canonical trees whose text
     exercises entity escaping, CDATA-worthy sequences, multi-byte
     UTF-8, and mixed content;
   - "Corrupt-or-correct" for the view codec: any mutation of a valid
     [Mview_codec.save] image either raises [Corrupt] or loads a view
     semantically equal to the original — no other exception, crash, or
     silently wrong view.

   The tree generator and failure recorder live in [Qgen], shared with
   the differential-maintenance harness ([Difftest]): canonical trees —
   attributes before content, no adjacent text siblings, no
   whitespace-only text — are exactly what the parser normalizes to, so
   on them the round trip must be the identity node-for-node. *)

type report = Qgen.report = {
  iterations : int;
  failed : int;
  failures : string list;
}

let ok = Qgen.ok
let summary = Qgen.summary

(* {1 Random canonical trees} *)

let random_document rnd = Qgen.random_document ~profile:Qgen.ingestion rnd

(* Each iteration runs under an [Obs.with_scope] snapshot; a failure
   message carries the iteration's counter profile, so replaying the
   seed reproduces the work alongside the verdict. *)
let work_digest snap =
  match Obs.kv_line snap with "" -> "(no counters)" | s -> s

let record_with rc snap msg = Qgen.record rc (msg ^ "\n  work: " ^ work_digest snap)

(* {1 Property 1: parse ∘ serialize = id} *)

let roundtrip_trees ~seed ~count =
  let rnd = Random.State.make [| seed; 0x7ee5 |] in
  let rc = Qgen.fresh_recorder () in
  let abbrev = Qgen.abbrev in
  for i = 1 to count do
    let t = random_document rnd in
    let verdict, snap =
      Obs.with_scope (fun () ->
          let s = Xml_tree.serialize t in
          match Xml_parse.document s with
          | exception Xml_parse.Parse_error m ->
            Some (Printf.sprintf "tree %d: parse error: %s on %s" i m (abbrev s))
          | t' ->
            if not (Xml_tree.equal t t') then
              Some
                (Printf.sprintf "tree %d: reparse differs structurally on %s" i
                   (abbrev s))
            else begin
              let s' = Xml_tree.serialize t' in
              if s' <> s then
                Some
                  (Printf.sprintf "tree %d: serialization not a fixpoint: %s vs %s"
                     i (abbrev s) (abbrev s'))
              else None
            end)
    in
    match verdict with
    | None -> ()
    | Some msg -> record_with rc snap msg
  done;
  Qgen.report_of rc ~iterations:count

(* {1 Property 2: the codec is Corrupt-or-correct} *)

(* A small document/view pair with all three stored-attribute kinds so a
   saved image contains ids, val payloads and cont payloads. *)
let fuzz_view () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<a id=\"root\">";
  for i = 1 to 24 do
    Buffer.add_string buf "<c>";
    for j = 0 to i mod 3 do
      Buffer.add_string buf (Printf.sprintf "<b>v%d-%d&#x2603;</b>" i j)
    done;
    Buffer.add_string buf "</c>"
  done;
  Buffer.add_string buf "</a>";
  let store = Store.of_document (Xml_parse.document (Buffer.contents buf)) in
  let pat =
    Pattern.compile ~name:"fuzz"
      (Pattern.n "a" ~id:true
         [ Pattern.n "c" ~id:true ~content:true [ Pattern.n "b" ~id:true ~value:true [] ] ])
  in
  let mv = Mview.materialize store pat in
  (store, pat, mv)

let random_bytes rnd n = String.init n (fun _ -> Char.chr (Random.State.int rnd 256))

let flip_bits rnd s =
  let b = Bytes.of_string s in
  let flips = 1 + Random.State.int rnd 4 in
  for _ = 1 to flips do
    let i = Random.State.int rnd (Bytes.length b) in
    let bit = 1 lsl Random.State.int rnd 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit))
  done;
  Bytes.to_string b

let splice rnd s =
  let len = String.length s in
  let at = Random.State.int rnd len in
  let n = 1 + Random.State.int rnd (min 16 (len - at)) in
  String.sub s 0 at ^ random_bytes rnd n ^ String.sub s (at + n) (len - at - n)

(* Re-footer a mutated body with a fresh, VALID checksum: this is the
   adversarial case that drives execution past the CRC gate and into the
   varint/length/count validation of the decoder itself. *)
let refooter body =
  let crc = Crc32.string body in
  let footer =
    String.init 4 (fun i -> Char.chr ((crc lsr (8 * (3 - i))) land 0xff))
  in
  body ^ footer

(* [`Raw] mutations leave the stored checksum stale, so a successful
   load implies (modulo a 2^-32 CRC collision) the image decodes to the
   original view. [`Forged] mutations recompute a valid footer over the
   mutated body — such an image is indistinguishable from a legitimate
   save of DIFFERENT data, so only the no-escaped-exception half of the
   property applies; they exist to drive the decoder past the CRC gate
   into varint/length/count validation. *)
let mutate rnd data =
  let len = String.length data in
  let body_len = len - 4 in
  match Random.State.int rnd 7 with
  | 0 -> (`Raw, random_bytes rnd (Random.State.int rnd (len + 16)))
  | 1 -> (`Raw, String.sub data 0 (Random.State.int rnd len))
  | 2 -> (`Raw, flip_bits rnd data)
  | 3 -> (`Raw, splice rnd data)
  | 4 -> (`Raw, data ^ random_bytes rnd (1 + Random.State.int rnd 8))
  | 5 -> (`Forged, refooter (flip_bits rnd (String.sub data 0 body_len)))
  | _ -> (`Forged, refooter (String.sub data 0 (Random.State.int rnd body_len)))

(* {1 Property 3: the WAL scanner is corrupt-or-correct}

   Torn, truncated, bit-flipped and checksum-forged images of a valid
   write-ahead log. The scanner must never raise; with a stale CRC
   ([`Raw] mutations) every record it returns must be an exact prefix of
   the original sequence; a forged out-of-order sequence number must
   stop the scan at exactly that record; and [Wal.repair_file] must
   leave a file that rescans clean with the same records — idempotently
   (repairing twice changes nothing). *)

let wal_records rnd =
  let n = 2 + Random.State.int rnd 6 in
  List.init n (fun i ->
      let payload =
        match Random.State.int rnd 4 with
        | 0 -> ""
        | 1 -> Printf.sprintf "delete //item[%d]" i
        | 2 -> String.make (1 + Random.State.int rnd 200) 'x'
        | _ -> random_bytes rnd (Random.State.int rnd 64)
      in
      (i + 1, payload))

let wal_image records =
  let buf = Buffer.create 512 in
  Buffer.add_string buf Wal.header;
  List.iter
    (fun (seq, p) -> Buffer.add_string buf (Wal.encode_record ~seq p))
    records;
  Buffer.contents buf

(* [`Raw] leaves some stored CRC stale; [`Forged_payload k] re-encodes
   record [k] with a different payload and a freshly valid CRC (framing
   cannot tell it from a legitimate write); [`Forged_seq k] re-encodes
   record [k] with a jumped sequence number and a valid CRC, which the
   contiguity check must stop at. *)
let mutate_wal rnd records image =
  let len = String.length image in
  let hlen = String.length Wal.header in
  let n = List.length records in
  let rebuild f = wal_image (List.mapi (fun i r -> f i r) records) in
  match Random.State.int rnd 8 with
  | 0 -> (`Raw, random_bytes rnd (Random.State.int rnd (len + 16)))
  | 1 -> (`Raw, String.sub image 0 (Random.State.int rnd (len + 1)))
  | 2 -> (`Raw, flip_bits rnd image)
  | 3 -> (`Raw, splice rnd image)
  | 4 -> (`Raw, image ^ random_bytes rnd (1 + Random.State.int rnd 20))
  | 5 ->
    (`Raw, flip_bits rnd (String.sub image 0 hlen) ^ String.sub image hlen (len - hlen))
  | 6 ->
    let k = Random.State.int rnd n in
    ( `Forged_payload k,
      rebuild (fun i (seq, p) ->
          if i = k then (seq, random_bytes rnd (1 + Random.State.int rnd 32))
          else (seq, p)) )
  | _ ->
    let k = Random.State.int rnd n in
    let jump = 2 + Random.State.int rnd 5 in
    ( `Forged_seq k,
      rebuild (fun i (seq, p) -> if i = k then (seq + jump, p) else (seq, p)) )

let wal_prefix_diff originals scan =
  let got = scan.Wal.records in
  if Array.length got > Array.length originals then
    Some
      (Printf.sprintf "scan returned %d records from a %d-record image"
         (Array.length got) (Array.length originals))
  else begin
    let d = ref None in
    Array.iteri
      (fun i (seq, payload) ->
        if !d = None then
          let oseq, opayload = originals.(i) in
          if seq <> oseq || payload <> opayload then
            d := Some (Printf.sprintf "record %d is not the original (seq %d vs %d)" i seq oseq))
      got;
    !d
  end

let wal_corrupt ~seed ~count =
  let rnd = Random.State.make [| seed; 0x3a1 |] in
  let rc = Qgen.fresh_recorder () in
  let path = Filename.temp_file "xvm-fuzz-wal" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let write_image data =
    let oc = open_out_bin path in
    output_string oc data;
    close_out oc
  in
  let read_back () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  for i = 1 to count do
    let records = wal_records rnd in
    let originals = Array.of_list records in
    let image = wal_image records in
    (* The pristine image must scan fully and cleanly. *)
    (match Wal.scan_bytes ~expect_seq:1 image with
    | s when s.Wal.damage <> None ->
      Qgen.record rc
        (Printf.sprintf "input %d: pristine image reported damage: %s" i
           (Wal.damage_to_string (Option.get s.Wal.damage)))
    | s when Array.length s.Wal.records <> Array.length originals ->
      Qgen.record rc (Printf.sprintf "input %d: pristine image lost records" i)
    | _ -> ()
    | exception e ->
      Qgen.record rc
        (Printf.sprintf "input %d: scanner raised on pristine image: %s" i
           (Printexc.to_string e)));
    let kind, mutated = mutate_wal rnd records image in
    match Wal.scan_bytes ~expect_seq:1 mutated with
    | exception e ->
      Qgen.record rc
        (Printf.sprintf "input %d: scanner raised: %s" i (Printexc.to_string e))
    | scan -> (
      let verdict =
        if Array.length scan.Wal.records <> Array.length scan.Wal.offsets then
          Some "records/offsets length mismatch"
        else if scan.Wal.valid_bytes > scan.Wal.file_bytes then
          Some "valid prefix longer than the file"
        else
          match kind with
          | `Raw ->
            (* A stale checksum cannot survive the CRC gate: whatever the
               scanner keeps is an exact prefix of what was written. *)
            wal_prefix_diff originals scan
          | `Forged_seq k ->
            if Array.length scan.Wal.records <> k then
              Some
                (Printf.sprintf
                   "forged sequence at record %d: scan kept %d records" k
                   (Array.length scan.Wal.records))
            else if scan.Wal.damage = None then
              Some
                (Printf.sprintf "forged sequence at record %d went undetected" k)
            else None
          | `Forged_payload _ ->
            (* Indistinguishable from a legitimate write at this layer;
               contiguity must still hold through it. *)
            if scan.Wal.damage <> None then
              Some
                (Printf.sprintf "forged-CRC record rejected: %s"
                   (Wal.damage_to_string (Option.get scan.Wal.damage)))
            else None
      in
      match verdict with
      | Some msg -> Qgen.record rc (Printf.sprintf "input %d: %s" i msg)
      | None -> (
        (* Repair must truncate to the valid prefix, rescan clean, and be
           idempotent. (A zero-byte file stays empty by design.) *)
        write_image mutated;
        match Wal.repair_file ~expect_seq:1 path with
        | exception e ->
          Qgen.record rc
            (Printf.sprintf "input %d: repair raised: %s" i (Printexc.to_string e))
        | s1 -> (
          let s2 = Wal.scan_file ~expect_seq:1 path in
          let d2 = read_back () in
          ignore (Wal.repair_file ~expect_seq:1 path);
          let d3 = read_back () in
          if s2.Wal.records <> s1.Wal.records then
            Qgen.record rc
              (Printf.sprintf "input %d: repair changed the valid records" i)
          else if s2.Wal.damage <> None && String.length mutated > 0 then
            Qgen.record rc
              (Printf.sprintf "input %d: repaired file still reports damage: %s" i
                 (Wal.damage_to_string (Option.get s2.Wal.damage)))
          else if d3 <> d2 then
            Qgen.record rc (Printf.sprintf "input %d: repair is not idempotent" i)))
      )
  done;
  Qgen.report_of rc ~iterations:count

let codec_corrupt ~seed ~count =
  let rnd = Random.State.make [| seed; 0xc0dec |] in
  let rc = Qgen.fresh_recorder () in
  let store, pat, mv = fuzz_view () in
  let data = Mview_codec.save mv in
  (match Mview_codec.load store pat data with
  | exception e ->
    Qgen.record rc ("pristine image rejected: " ^ Printexc.to_string e)
  | loaded -> (
    match Recompute.diff mv loaded with
    | None -> ()
    | Some d -> Qgen.record rc ("pristine image loads differently: " ^ d)));
  for i = 1 to count do
    let kind, mutated = mutate rnd data in
    let verdict, snap =
      Obs.with_scope (fun () ->
          match Mview_codec.load store pat mutated with
          | exception Mview_codec.Corrupt _ -> None
          | exception e ->
            Some
              (Printf.sprintf "input %d: escaped exception %s" i
                 (Printexc.to_string e))
          | loaded -> (
            (* Without a forged footer, a valid load must mean intact data. *)
            match kind with
            | `Forged -> None
            | `Raw -> (
              match Recompute.diff mv loaded with
              | None -> None
              | Some d ->
                Some
                  (Printf.sprintf "input %d: garbage accepted as a view: %s" i d))))
    in
    match verdict with
    | None -> ()
    | Some msg -> record_with rc snap msg
  done;
  Qgen.report_of rc ~iterations:(count + 1)
