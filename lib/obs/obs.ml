(* Process-wide metrics registry.  See obs.mli for the contract.

   Design constraints:
   - the disabled path must be a single bool load per increment site
     (no allocation, no hashing, no clock read);
   - cells are created once at module-init time and then mutated in
     place, so hot loops touch only record fields. *)

let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* Monotonic clock (CLOCK_MONOTONIC via the C stub): seconds since an
   arbitrary fixed origin, immune to wall-clock steps.  A backwards step
   of the old gettimeofday source could flatten spans to zero, which
   would silently corrupt latency percentiles.  The non-decreasing
   contract is still enforced by a CAS-max clamp — it makes [now] safe
   against any residual source anomaly and keeps reads from concurrent
   domains totally ordered. *)
external monotonic_ns : unit -> int64 = "xvm_obs_monotonic_ns"

let last = Atomic.make 0.

let now () =
  let t = Int64.to_float (monotonic_ns ()) *. 1e-9 in
  let rec clamp () =
    let prev = Atomic.get last in
    if t <= prev then prev
    else if Atomic.compare_and_set last prev t then t
    else clamp ()
  in
  clamp ()

let duration f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

type counter = { c_key : string; mutable count : int }
type timer = { t_key : string; mutable secs : float; mutable nspans : int }

(* Cells are plain mutable records owned by the main domain.  Increments
   from child domains would race, so off the main domain they go to a
   per-domain key-indexed buffer instead; the spawning code drains each
   child's buffer ({!Par.drain}) and folds it into the real cells on the
   main domain ({!Par.merge}).  The disabled path is still a single bool
   load; the enabled main-domain path adds only [Domain.is_main_domain]. *)
type par_buf = {
  pb_counters : (string, int ref) Hashtbl.t;
  pb_timers : (string, float ref * int ref) Hashtbl.t;
}

let par_key : par_buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { pb_counters = Hashtbl.create 16; pb_timers = Hashtbl.create 16 })

let par_buf () = Domain.DLS.get par_key

let par_add_count key n =
  let b = par_buf () in
  match Hashtbl.find_opt b.pb_counters key with
  | Some r -> r := !r + n
  | None -> Hashtbl.add b.pb_counters key (ref n)

let par_add_span key s =
  let b = par_buf () in
  match Hashtbl.find_opt b.pb_timers key with
  | Some (secs, n) ->
    secs := !secs +. s;
    incr n
  | None -> Hashtbl.add b.pb_timers key (ref s, ref 1)

module Counter = struct
  type t = counter

  let incr c =
    if !on then
      if Domain.is_main_domain () then c.count <- c.count + 1
      else par_add_count c.c_key 1

  let add c n =
    if !on then
      if Domain.is_main_domain () then c.count <- c.count + n
      else par_add_count c.c_key n

  let value c = c.count
  let key c = c.c_key
end

module Timer = struct
  type t = timer

  let add_span tm s =
    if !on then
      if Domain.is_main_domain () then begin
        tm.secs <- tm.secs +. s;
        tm.nspans <- tm.nspans + 1
      end
      else par_add_span tm.t_key s

  let time tm f =
    if !on then begin
      let r, s = duration f in
      add_span tm s;
      r
    end
    else f ()

  let seconds tm = tm.secs
  let spans tm = tm.nspans
  let key tm = tm.t_key
end

(* Registry: scope name -> cells, in registration order per scope. *)
type cell = C of counter | T of timer

let registry : (string, cell list ref) Hashtbl.t = Hashtbl.create 32

module Scope = struct
  type t = string

  let v name =
    if not (Hashtbl.mem registry name) then Hashtbl.add registry name (ref []);
    name

  let name s = s

  let cells s =
    match Hashtbl.find_opt registry s with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add registry s l;
      l

  let counter s metric =
    let key = s ^ "." ^ metric in
    let l = cells s in
    let rec find = function
      | C c :: _ when c.c_key = key -> Some c
      | _ :: rest -> find rest
      | [] -> None
    in
    match find !l with
    | Some c -> c
    | None ->
      let c = { c_key = key; count = 0 } in
      l := !l @ [ C c ];
      c

  let timer s metric =
    let key = s ^ "." ^ metric in
    let l = cells s in
    let rec find = function
      | T t :: _ when t.t_key = key -> Some t
      | _ :: rest -> find rest
      | [] -> None
    in
    match find !l with
    | Some t -> t
    | None ->
      let t = { t_key = key; secs = 0.; nspans = 0 } in
      l := !l @ [ T t ];
      t
end

(* Cross-domain aggregation: a child domain drains its buffer into a
   [contrib] value just before returning; the main domain merges it into
   the registry cells.  Keys are ["<scope>.<metric>"] with the split at
   the last dot (scope names themselves contain dots). *)
module Par = struct
  type contrib = {
    ctr : (string * int) list;
    tmr : (string * float * int) list;
  }

  let empty = { ctr = []; tmr = [] }

  let drain () =
    let b = par_buf () in
    let cs = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) b.pb_counters [] in
    let ts =
      Hashtbl.fold (fun k (s, n) acc -> (k, !s, !n) :: acc) b.pb_timers []
    in
    Hashtbl.reset b.pb_counters;
    Hashtbl.reset b.pb_timers;
    { ctr = cs; tmr = ts }

  let split_key key =
    match String.rindex_opt key '.' with
    | Some i ->
      (String.sub key 0 i, String.sub key (i + 1) (String.length key - i - 1))
    | None -> ("", key)

  let merge contrib =
    List.iter
      (fun (key, n) ->
        let scope, metric = split_key key in
        let c = Scope.counter (Scope.v scope) metric in
        c.count <- c.count + n)
      contrib.ctr;
    List.iter
      (fun (key, secs, n) ->
        let scope, metric = split_key key in
        let t = Scope.timer (Scope.v scope) metric in
        t.secs <- t.secs +. secs;
        t.nspans <- t.nspans + n)
      contrib.tmr
end

let scopes () =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])

let iter_cells f =
  List.iter (fun s -> List.iter f !(Scope.cells s)) (scopes ())

let reset () =
  iter_cells (function
    | C c -> c.count <- 0
    | T t ->
      t.secs <- 0.;
      t.nspans <- 0)

(* Snapshots *)

type snapshot = {
  snap_counters : (string * int) list; (* sorted by key *)
  snap_timers : (string * float * int) list; (* sorted by key *)
}

let snapshot () =
  let cs = ref [] and ts = ref [] in
  iter_cells (function
    | C c -> cs := (c.c_key, c.count) :: !cs
    | T t -> ts := (t.t_key, t.secs, t.nspans) :: !ts);
  {
    snap_counters = List.sort compare !cs;
    snap_timers = List.sort compare !ts;
  }

(* [b] was taken after [a]; cells only ever get added, so walk [b] and
   subtract [a]'s value when the key existed before. *)
let diff a b =
  let base_c = Hashtbl.create 64 and base_t = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace base_c k v) a.snap_counters;
  List.iter (fun (k, s, n) -> Hashtbl.replace base_t k (s, n)) a.snap_timers;
  {
    snap_counters =
      List.map
        (fun (k, v) ->
          match Hashtbl.find_opt base_c k with
          | Some v0 -> (k, v - v0)
          | None -> (k, v))
        b.snap_counters;
    snap_timers =
      List.map
        (fun (k, s, n) ->
          match Hashtbl.find_opt base_t k with
          | Some (s0, n0) -> (k, s -. s0, n - n0)
          | None -> (k, s, n))
        b.snap_timers;
  }

let with_scope ?(enable = true) f =
  let prev = !on in
  let before = snapshot () in
  on := (if enable then true else prev);
  let restore () = on := prev in
  let r =
    try f ()
    with e ->
      restore ();
      raise e
  in
  restore ();
  (r, diff before (snapshot ()))

let counters s = s.snap_counters
let timers s = s.snap_timers

let counter_value s key =
  match List.assoc_opt key s.snap_counters with Some v -> v | None -> 0

let timer_find s key =
  List.find_opt (fun (k, _, _) -> k = key) s.snap_timers

let timer_seconds s key =
  match timer_find s key with Some (_, secs, _) -> secs | None -> 0.

let timer_spans s key =
  match timer_find s key with Some (_, _, n) -> n | None -> 0

let nonzero_counters s = List.filter (fun (_, v) -> v <> 0) s.snap_counters

(* Export *)

let strip_scope scope key =
  let p = scope ^ "." in
  let lp = String.length p in
  if String.length key > lp && String.sub key 0 lp = p then
    String.sub key lp (String.length key - lp)
  else key

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let to_json ?snapshot:snap () =
  let s = match snap with Some s -> s | None -> snapshot () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"version\":1,\"enabled\":%b,\"scopes\":{" !on);
  let first_scope = ref true in
  List.iter
    (fun scope ->
      if not !first_scope then Buffer.add_char buf ',';
      first_scope := false;
      Buffer.add_string buf (Printf.sprintf "\"%s\":{" (json_escape scope));
      let prefix = scope ^ "." in
      let mine key =
        String.length key > String.length prefix
        && String.sub key 0 (String.length prefix) = prefix
      in
      let cs = List.filter (fun (k, _) -> mine k) s.snap_counters in
      let ts = List.filter (fun (k, _, _) -> mine k) s.snap_timers in
      Buffer.add_string buf "\"counters\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":%d" (json_escape (strip_scope scope k)) v))
        cs;
      Buffer.add_string buf "},\"timers\":{";
      List.iteri
        (fun i (k, secs, n) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":{\"seconds\":%s,\"spans\":%d}"
               (json_escape (strip_scope scope k))
               (json_float secs) n))
        ts;
      Buffer.add_string buf "}}")
    (scopes ());
  Buffer.add_string buf "}}";
  Buffer.contents buf

let dump_kv ?snapshot:snap () =
  let s = match snap with Some s -> s | None -> snapshot () in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s=%d\n" k v))
    s.snap_counters;
  List.iter
    (fun (k, secs, n) ->
      Buffer.add_string buf (Printf.sprintf "%s_s=%.6f\n%s_spans=%d\n" k secs k n))
    s.snap_timers;
  Buffer.contents buf

let kv_line s =
  String.concat " "
    (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (nonzero_counters s))

(* Prometheus text exposition format (0.0.4). Every registry cell
   becomes its own metric family: counters as [xvm_<key>_total], timers
   as the [_seconds_total] / [_spans_total] pair. Cell keys are dotted
   ("dewey.arena.interned"); metric names allow [A-Za-z0-9_:] only, so
   every other character maps to '_'. *)
let prometheus_name key =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    key

let to_prometheus ?snapshot:snap () =
  let s = match snap with Some s -> s | None -> snapshot () in
  let buf = Buffer.create 2048 in
  let emit name value =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
    Buffer.add_string buf name;
    Buffer.add_char buf ' ';
    Buffer.add_string buf value;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (k, v) ->
      emit ("xvm_" ^ prometheus_name k ^ "_total") (string_of_int v))
    s.snap_counters;
  List.iter
    (fun (k, secs, n) ->
      let base = "xvm_" ^ prometheus_name k in
      emit (base ^ "_seconds_total") (Printf.sprintf "%.9f" secs);
      emit (base ^ "_spans_total") (string_of_int n))
    s.snap_timers;
  Buffer.contents buf

(* Shared helpers for bench/tests *)

module Stats = struct
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then 0.
    else if n mod 2 = 1 then a.(n / 2)
    else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

  let time_median ?(repeats = 9) ?(iters = 40) f =
    for _ = 1 to 2 do
      ignore (Sys.opaque_identity (f ()))
    done;
    median
      (List.init repeats (fun _ ->
           let t0 = now () in
           for _ = 1 to iters do
             ignore (Sys.opaque_identity (f ()))
           done;
           (now () -. t0) /. float_of_int iters))
end

module Fmt = struct
  let phase_header ?(label_width = 8) label cols =
    Printf.printf "  %-*s" label_width label;
    List.iter (fun c -> Printf.printf " %9s" c) cols;
    Printf.printf " %10s\n" "total(ms)"

  let phase_row ?(label_width = 8) label secs =
    Printf.printf "  %-*s" label_width label;
    List.iter (fun s -> Printf.printf " %9.2f" (s *. 1000.)) secs;
    Printf.printf " %10.2f\n%!" (1000. *. List.fold_left ( +. ) 0. secs)
end
