/* Monotonic clock stub for Obs.now.

   CLOCK_MONOTONIC is immune to wall-clock steps (NTP slews, manual
   resets), which matters because every latency percentile in the
   serving benchmarks is a difference of two Obs.now reads: a backwards
   step of the wall clock would silently flatten spans to zero. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value xvm_obs_monotonic_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
