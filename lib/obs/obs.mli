(** Process-wide metrics & tracing registry.

    Monotonic [Counter] and [Timer] cells are grouped into named [Scope]s;
    the full key of a cell is ["<scope>.<metric>"], e.g.
    ["algebra.join.comparisons"].  Cells are created once, at module
    initialisation time, and incremented from hot paths.  When the registry
    is disabled (the default) every increment reduces to a single load of
    one [bool ref] — no allocation, no hashing, no clock reads. *)

(** {1 Global enable switch} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Monotonic clock}

    [now] reads the operating system's monotonic clock
    ([CLOCK_MONOTONIC]): seconds since an arbitrary fixed origin — {e
    not} a wall-clock time — immune to NTP slews and manual clock
    resets, and additionally clamped to be non-decreasing across calls
    (from any domain), so durations derived from it are never
    negative. *)

val now : unit -> float

(** [duration f] runs [f] and returns its result paired with the elapsed
    seconds measured with {!now}. *)
val duration : (unit -> 'a) -> 'a * float

(** {1 Cells} *)

module Counter : sig
  type t

  val incr : t -> unit
  (** No-op while the registry is disabled. *)

  val add : t -> int -> unit
  (** No-op while the registry is disabled. *)

  val value : t -> int
  val key : t -> string
end

module Timer : sig
  type t

  val add_span : t -> float -> unit
  (** Record one span of the given length in seconds.  No-op while the
      registry is disabled. *)

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk, recording one span.  When disabled, runs the thunk
      directly without reading the clock. *)

  val seconds : t -> float
  val spans : t -> int
  val key : t -> string
end

module Scope : sig
  type t

  val v : string -> t
  (** [v name] creates (or finds) the scope [name].  Names follow the
      ["layer.operator"] convention, e.g. ["algebra.join"]. *)

  val name : t -> string

  val counter : t -> string -> Counter.t
  (** Create-or-find; the cell's key is ["<scope>.<metric>"]. *)

  val timer : t -> string -> Timer.t
end

(** {1 Cross-domain aggregation}

    Registry cells are plain mutable records owned by the main domain.
    [Counter]/[Timer] increments performed on a child domain are routed
    to a per-domain buffer instead of the shared cells; a child should
    call {!Par.drain} just before terminating and hand the result back
    to the main domain, which folds it into the registry with
    {!Par.merge}.  The disabled fast path is unchanged (one bool load). *)

module Par : sig
  type contrib
  (** Buffered increments of one domain, keyed by full cell key. *)

  val empty : contrib

  val drain : unit -> contrib
  (** Take (and clear) the calling domain's buffered increments.  On the
      main domain the buffer is always empty. *)

  val merge : contrib -> unit
  (** Fold a drained contribution into the registry cells.  Must be
      called on the main domain. *)
end

val scopes : unit -> string list
(** All registered scope names, sorted. *)

val reset : unit -> unit
(** Zero every cell in the registry.  Cells stay registered. *)

(** {1 Snapshots} *)

type snapshot
(** An immutable view of (a delta of) the registry. *)

val with_scope : ?enable:bool -> (unit -> 'a) -> 'a * snapshot
(** [with_scope f] runs [f] with the registry enabled (unless
    [~enable:false]) and returns its result together with a snapshot of
    exactly the counter/timer increments performed during the call.  The
    previous enabled state is restored afterwards, including on
    exceptions.  Nesting is supported: an inner [with_scope]'s increments
    are also visible to the outer one. *)

val snapshot : unit -> snapshot
(** Absolute snapshot of current cell values. *)

val counters : snapshot -> (string * int) list
(** All counters (including zeros), as [full_key, value], sorted by key. *)

val timers : snapshot -> (string * float * int) list
(** All timers as [full_key, seconds, spans], sorted by key. *)

val counter_value : snapshot -> string -> int
(** Value of a counter by full key; [0] when absent. *)

val timer_seconds : snapshot -> string -> float
val timer_spans : snapshot -> string -> int

val nonzero_counters : snapshot -> (string * int) list
(** Counters with a non-zero value, sorted by key. *)

(** {1 Export} *)

val to_json : ?snapshot:snapshot -> unit -> string
(** Single-line JSON object:
    [{"version":1,"enabled":bool,
      "scopes":{"<scope>":{"counters":{...},
                           "timers":{"<m>":{"seconds":s,"spans":n}}}}}]
    Defaults to the live registry contents. *)

val dump_kv : ?snapshot:snapshot -> unit -> string
(** Flat dump, one ["key=value"] line per cell; timers emit
    ["key_s"] (seconds) and ["key_spans"] lines. *)

val kv_line : snapshot -> string
(** Space-separated ["key=value"] digest of the non-zero counters of a
    snapshot — compact enough for failure messages. *)

val prometheus_name : string -> string
(** Sanitize a dotted cell key into a valid Prometheus metric-name
    fragment: every character outside [[A-Za-z0-9_]] becomes ['_']. *)

val to_prometheus : ?snapshot:snapshot -> unit -> string
(** Prometheus text exposition format (0.0.4): one metric family per
    cell — counters as [xvm_<key>_total], timers as the
    [xvm_<key>_seconds_total] / [xvm_<key>_spans_total] pair — each
    preceded by its [# TYPE … counter] line.  Defaults to the live
    registry contents. *)

(** {1 Shared numeric/printing helpers} *)

module Stats : sig
  val median : float list -> float

  val time_median : ?repeats:int -> ?iters:int -> (unit -> 'a) -> float
  (** Median over [repeats] trials of the mean time of [iters] calls,
      after two warm-up calls.  Uses the monotonic {!now}. *)
end

module Fmt : sig
  val phase_header : ?label_width:int -> string -> string list -> unit
  (** Print an aligned header: the label column then one 9-char column
      per phase name, then a ["total(ms)"] column. *)

  val phase_row : ?label_width:int -> string -> float list -> unit
  (** Print one row of phase durations (given in seconds, shown in ms)
      followed by their sum. *)
end
