(** Differential maintenance oracle.

    The paper's whole claim is an equivalence: after any bulk insertion
    or deletion, the incrementally maintained view
    (PINT/PIMT/ET-INS/CD+/PDDT/PDMT/CD-) must equal the view recomputed
    from scratch. This harness checks that equivalence on {e randomized}
    inputs: a seeded generator draws (document, view, update) triples —
    tree patterns over the labels actually present in the document,
    bulk insertions/deletions including the degenerate shapes where IVM
    bugs hide (empty target sets, root-adjacent targets,
    nested/overlapping subtrees) — and a three-way oracle applies the
    update via [Maint] (the paper's algorithms), [Recompute] (the
    ground truth) and [Ivma] (the node-at-a-time competitor), comparing
    the resulting view extents tuple-for-tuple under a canonical sort.

    A failing triple is greedily {e shrunk} — subtrees dropped from the
    document, nodes dropped from the view, steps and predicates dropped
    from the update — before being reported, together with an
    [xvmcli difftest --replay] command line that reproduces it.

    Exposed to the test suite ([test/test_difftest.ml]), the CLI
    ([xvmcli difftest]) and the bench harness (section [difftest]). *)

(** {1 Triples} *)

type triple = {
  doc : Xml_tree.node;  (** the pristine pre-update document *)
  view : Pattern.t;
  update : string;
      (** textual statement, ["delete PATH"] or
          ["insert into PATH FRAGMENT"] ({!Update.parse} syntax) *)
}

(** Number of nodes of the triple's document (the shrinker's measure). *)
val doc_nodes : triple -> int

(** [gen_triple rnd] — one random triple: a canonical document over the
    {!Qgen.plain} vocabulary, a view pattern drawn over the labels
    present in it, and a bulk update statement. *)
val gen_triple : Random.State.t -> triple

(** {1 Engines}

    An engine materializes the triple's view over a {e fresh} store of a
    copy of the document, applies the update, and returns the resulting
    view. Engines never share state: each sees its own pristine copy. *)

type engine = {
  ename : string;
  eval : Xml_tree.node -> Pattern.t -> Update.t -> Mview.t;
}

val recompute_engine : engine  (** the ground truth; listed first *)

val maint_engine : engine  (** the paper's algorithms, [Snowcaps] policy *)

val ivma_engine : engine  (** node-at-a-time baseline, [Leaves] policy *)

(** [[recompute; maint; ivma]] — the head of the list is the reference
    every other engine is compared against. *)
val default_engines : engine list

(** {1 The oracle} *)

type mismatch = {
  cx : triple;  (** the (possibly shrunk) counterexample *)
  left : string;  (** name of the disagreeing engine *)
  right : string;  (** name of the reference engine *)
  detail : string;  (** first differing tuple, or an escaped exception *)
  work : (string * int) list;
      (** non-zero {!Obs} counters recorded while checking this triple —
          the counterexample's work profile, replayed with it *)
}

(** [check triple] runs every engine and compares each view against the
    reference (head engine) tuple-for-tuple — projected IDs, derivation
    counts and val/cont payloads, under the canonical dump sort. An
    exception escaping an engine is a mismatch too. The check runs under
    an {!Obs.with_scope} snapshot; a mismatch carries its work profile. *)
val check : ?engines:engine list -> triple -> mismatch option

(** [work_profile triple] — the non-zero counter profile of checking the
    triple (deterministic for a given triple and engine list, whether or
    not the engines agree): the basis of replay-equality tests. *)
val work_profile : ?engines:engine list -> triple -> (string * int) list

(** [shrink m] greedily minimizes the counterexample: candidate
    reductions of the document (drop a subtree, hoist children), the
    view (drop a leaf node, a predicate, an annotation) and the update
    (drop a step, a predicate, part of the inserted fragment) are
    accepted whenever the reduced triple still fails the oracle. *)
val shrink : ?engines:engine list -> mismatch -> mismatch

(** Structured multi-line report: engines, view, update, document,
    first differing tuple, and the replay command line. *)
val describe : mismatch -> string

(** {1 Replay}

    A reproducer is a printable, length-prefixed encoding of a triple
    (view in the compact pattern syntax, update statement, document
    XML) fit for a command line. *)

val repro_of_triple : triple -> string

(** @raise Invalid_argument on a malformed reproducer. *)
val triple_of_repro : string -> triple

(** The [xvmcli difftest --replay '…'] line, shell-quoted. *)
val replay_command : triple -> string

(** [view_of_compact ~name s] parses the compact rendering of
    {!Pattern.to_string} (e.g. ["//a{id}[//b[val='x']]//c{id,val}"])
    back into a pattern — the inverse used by {!triple_of_repro}.
    @raise Invalid_argument on malformed input. *)
val view_of_compact : name:string -> string -> Pattern.t

(** {1 Batch runs} *)

(** [run ~seed ~iters] draws and checks [iters] triples; every mismatch
    is shrunk and recorded (first few) in the report's failure list. *)
val run : ?engines:engine list -> seed:int -> iters:int -> unit -> Qgen.report

(** {1 Multi-view sets}

    The batch-maintenance oracle: a random 2–4-view set over one store,
    maintained by a single [View_set.update] — shared update-region
    index, relevance skipping, hoisted commit, domain fan-out — is
    cross-checked tuple-for-tuple against one-by-one [Maint] propagation
    of the same update on a fresh store per view, and [jobs > 1] is
    additionally required to be bit-identical (tables and non-timing
    report counters) to [jobs = 1]. *)

type set_triple = {
  sdoc : Xml_tree.node;
  sviews : Pattern.t list;  (** 2–4 views with distinct names v0, v1, … *)
  supdate : string;
}

type set_mismatch = { scx : set_triple; sdetail : string }

val gen_set_triple : Random.State.t -> set_triple

(** [check_set ?jobs t] (default [jobs = 2]): batched [jobs=1] vs the
    per-view oracle, then batched [jobs] vs batched [jobs=1]. [jobs <= 1]
    skips the parallel cross-check. *)
val check_set : ?jobs:int -> set_triple -> set_mismatch option

(** Greedy minimization; whole views are dropped first, then document
    subtrees, update steps, and nodes inside the surviving views. *)
val shrink_set : ?jobs:int -> set_mismatch -> set_mismatch

val describe_set : set_mismatch -> string

(** Reproducer codec for view sets
    (["xvmdtm1|k|len:view…|len:update|len:doc"]); the CLI replay
    dispatches on the prefix. *)
val repro_of_set : set_triple -> string

(** @raise Invalid_argument on a malformed reproducer. *)
val set_of_repro : string -> set_triple

(** [run_sets ?jobs ~seed ~iters] draws and checks [iters] view sets;
    mismatches are shrunk and recorded in the report's failure list. *)
val run_sets : ?jobs:int -> seed:int -> iters:int -> unit -> Qgen.report

(** {1 Heavy-light adaptive maintenance oracle}

    The adaptive path's correctness claim: with a heavy-light
    classifier installed ([View_set.set_adaptive]), every {e read} —
    a drain of one view or of the whole set — observes view contents
    tuple-for-tuple identical to eager maintenance of the same
    statement sequence, whatever partition migrations, budget-forced
    drains and store tail merges happened in between. Cases draw
    skewed or uniform random documents, deliberately tiny thresholds
    (so rebalance storms and drains fire constantly), and seeded read
    points that interleave single-view drains with further deferred
    updates; after the final statement everything is drained and the
    documents must serialize identically too. *)

type heavy_case = {
  hc_set : set_triple;  (** document, views, first statement *)
  hc_stmts : string list;  (** full statement sequence, head = [supdate] *)
  hc_reads : (int * int) list;
      (** (statement index, view index or [-1] for all): drain+compare *)
  hc_count : int;  (** [Hl.heavy_count] — deliberately tiny *)
  hc_fanout : int;  (** [Hl.heavy_fanout] *)
  hc_budget : int;  (** [Hl.drain_budget] *)
  hc_tailb : int;  (** store tail budget *)
}

type heavy_mismatch = { hcx : heavy_case; hdetail : string }

val gen_heavy_case : Random.State.t -> heavy_case

(** [check_heavy c]: adaptive vs eager on [c]; [None] when every read
    point (and the final full drain) agreed. *)
val check_heavy : heavy_case -> heavy_mismatch option

val shrink_heavy : heavy_mismatch -> heavy_mismatch

val describe_heavy : heavy_mismatch -> string

(** Reproducer codec
    (["xvmdth1|len:cfg|len:reads|k|len:view…|n|len:stmt…|len:doc"]);
    the CLI replay dispatches on the prefix. *)
val repro_of_heavy : heavy_case -> string

(** @raise Invalid_argument on a malformed reproducer. *)
val heavy_of_repro : string -> heavy_case

(** [run_heavy ~seed ~iters] draws and checks [iters] heavy cases;
    mismatches are shrunk and recorded in the report's failure list. *)
val run_heavy : seed:int -> iters:int -> unit -> Qgen.report

(** {1 Serve snapshot-isolation oracle}

    The live-server counterpart of {!run_sets}: a random view set plus a
    {e sequence} of 2–5 update statements is fed through a running
    {!Server} by a submitter domain while a concurrent reader domain
    polls published snapshots. Every observed epoch — including those
    captured mid-run, between batches — must be bit-identical
    (tuple-for-tuple, payloads included) to a {e sequential} replay of
    exactly the first [applied] statements on a fresh store; epochs must
    be observed in publication order and no admitted statement may be
    lost. This is the snapshot-isolation guarantee: a reader never sees
    a half-committed batch, a torn view, or a stale share of a view that
    actually changed. *)

type serve_case = {
  sc_set : set_triple;
  sc_stmts : string list;  (** applied in order; 2–5 statements *)
}

val gen_serve_case : Random.State.t -> serve_case

(** [check_serve ?jobs c] (default [jobs = 1]) runs the live server on
    the calling domain ([max_batch = 2], forcing multi-epoch runs) with
    a submitter and a polling reader domain; [Some message] describes
    the first isolation violation. *)
val check_serve : ?jobs:int -> serve_case -> string option

val run_serve : ?jobs:int -> seed:int -> iters:int -> unit -> Qgen.report

(** {1 Kill-and-recover durability oracle}

    The durability guarantee, differentially: a run killed at a seeded
    statement boundary and recovered from its last checkpoint plus the
    write-ahead log must be tuple-for-tuple identical — every view
    payload, then the document itself — to a sequential run that was
    never interrupted. Cases vary the crash point, the checkpoint
    boundary (including none, and exactly at the crash point), and
    whether a final statement was journaled but never synced (a real
    kill loses it; recovery must agree). The recovered engine then
    finishes the statement sequence and is killed and recovered a
    second time, proving appends resume contiguously into a recovered
    log segment. *)

type recover_case = {
  rc_set : set_triple;
  rc_stmts : string list;  (** 3–8 journalable statements, in order *)
  rc_crash_after : int;  (** statements applied and synced before the kill *)
  rc_checkpoint_at : int option;
      (** checkpoint boundary, [<= rc_crash_after]; [None] = log only *)
  rc_unsynced_tail : bool;
      (** when set, one more statement is journaled but never synced *)
}

val gen_recover_case : Random.State.t -> recover_case

(** [check_recover ?jobs c] (default [jobs = 1]) runs the durable
    engine in a fresh temporary directory, kills and recovers it twice,
    and compares against the uninterrupted oracle; [Some message]
    describes the first divergence. The directory is removed on exit
    either way. *)
val check_recover : ?jobs:int -> recover_case -> string option

val run_recover : ?jobs:int -> seed:int -> iters:int -> unit -> Qgen.report

(** {1 Answer-from-views oracle}

    The rewriting planner's claim, differentially: a query answered from
    the materialized view set ([Answer.answer] — single view with
    compensations, two-view intersection, or base fallback) is
    tuple-for-tuple equal (cells, payloads, derivation counts) to
    brute-force embedding enumeration over the document, both {e before}
    and {e after} a maintenance round through [View_set.update]. The
    generator mixes verbatim-view queries, weakened view derivatives,
    queries whose [prune]/[subpattern] legs are planted as extra views
    (so intersection plans fire), and unrelated queries (fallback). *)

type answer_case = { aset : set_triple; aquery : Pattern.t }

type answer_mismatch = { acx : answer_case; adetail : string }

val gen_answer_case : Random.State.t -> answer_case

(** [Some message] describes the first divergence, tagged with the plan
    that produced it and the phase (before/after the update). *)
val check_answer : answer_case -> answer_mismatch option

val shrink_answer : answer_mismatch -> answer_mismatch

(** [xvmdta1|k|views…|query|update|doc] — replayed by
    [xvmcli difftest --replay]. *)
val repro_of_answer : answer_case -> string

val answer_of_repro : string -> answer_case

val describe_answer : answer_mismatch -> string

val run_answer : seed:int -> iters:int -> unit -> Qgen.report

(** {1 Independence-safety oracle}

    Whenever the static type-based analysis ([Independence.analyze] over
    a DTD inferred from the document) declares an (update, view) pair
    independent, maintenance must be a no-op: zero delta tuples, zero
    payload refreshes, no rebuild, an image identical before and after —
    and identical to recomputation from scratch. Half the generated
    updates target labels the view never mentions, so a working analyzer
    discharges a substantial fraction (exercising the check rather than
    vacuously passing). The analyzer is pluggable: handing
    [run_indep ~analyzer:(fun _ _ _ -> true)] a deliberately unsound
    prover must produce (shrunk) counterexamples. *)

type indep_analyzer = Dtd.t -> Update.t -> Pattern.t -> bool

type indep_mismatch = { icx : triple; idetail : string }

val gen_indep_triple : Random.State.t -> triple

(** [check_indep ?analyzer t] (default [Independence.independent]):
    [None] when the analyzer declares the pair dependent {e or} the
    declared independence is confirmed; [Some mismatch] when a declared
    independence is refuted by maintenance or recomputation. *)
val check_indep : ?analyzer:indep_analyzer -> triple -> indep_mismatch option

val shrink_indep : ?analyzer:indep_analyzer -> indep_mismatch -> indep_mismatch

val describe_indep : indep_mismatch -> string

val run_indep : ?analyzer:indep_analyzer -> seed:int -> iters:int -> unit -> Qgen.report
