(* Differential maintenance oracle: randomized (document, view, update)
   triples cross-checked through three maintenance engines.

   The generators draw from the [Qgen.plain] vocabulary so that random
   views actually match random documents; the update generator forces
   the degenerate shapes where IVM bugs hide — empty target sets,
   root-adjacent targets, nested/overlapping target subtrees. A failing
   triple is greedily shrunk before being reported: every candidate
   reduction (document subtree dropped or hoisted, view node dropped,
   update step or predicate dropped) strictly shrinks the triple, so
   the loop terminates without an iteration bound, though a budget caps
   pathological cases anyway. *)

let profile = Qgen.plain

type triple = {
  doc : Xml_tree.node;
  view : Pattern.t;
  update : string;
}

let doc_nodes t = Xml_tree.size t.doc

(* {1 Engines} *)

type engine = {
  ename : string;
  eval : Xml_tree.node -> Pattern.t -> Update.t -> Mview.t;
}

let recompute_engine =
  {
    ename = "recompute";
    eval =
      (fun doc pat u ->
        let store = Store.of_document doc in
        fst (Recompute.recompute_after store u ~pat));
  }

let maint_engine =
  {
    ename = "maint";
    eval =
      (fun doc pat u ->
        let store = Store.of_document doc in
        let mv = Mview.materialize ~policy:Mview.Snowcaps store pat in
        ignore (Maint.propagate mv u);
        mv);
  }

let ivma_engine =
  {
    ename = "ivma";
    eval =
      (fun doc pat u ->
        let store = Store.of_document doc in
        let mv = Mview.materialize ~policy:Mview.Leaves store pat in
        ignore (Ivma.propagate mv u);
        mv);
  }

let default_engines = [ recompute_engine; maint_engine; ivma_engine ]

(* {1 The oracle} *)

type mismatch = {
  cx : triple;
  left : string;
  right : string;
  detail : string;
  work : (string * int) list;
}

let check0 ?(engines = default_engines) t =
  match engines with
  | [] | [ _ ] -> invalid_arg "Difftest.check: need at least two engines"
  | reference :: others ->
    let run_engine e =
      (* Fresh parse and fresh document copy per engine: no shared
         mutable state between the runs being compared. *)
      match e.eval (Xml_tree.copy t.doc) t.view (Update.parse t.update) with
      | mv -> Ok mv
      | exception exn -> Error (Printexc.to_string exn)
    in
    (match run_engine reference with
    | Error msg ->
      Some
        {
          cx = t;
          left = reference.ename;
          right = reference.ename;
          detail = "escaped exception: " ^ msg;
          work = [];
        }
    | Ok ref_mv ->
      List.fold_left
        (fun acc e ->
          match acc with
          | Some _ -> acc
          | None -> (
            match run_engine e with
            | Error msg ->
              Some
                {
                  cx = t;
                  left = e.ename;
                  right = reference.ename;
                  detail = "escaped exception: " ^ msg;
                  work = [];
                }
            | Ok mv -> (
              match Recompute.diff mv ref_mv with
              | None -> None
              | Some d ->
                Some
                  {
                    cx = t;
                    left = e.ename;
                    right = reference.ename;
                    detail = d;
                    work = [];
                  })))
        None others)

(* Running the comparison under a snapshot serves two purposes: a
   mismatch carries the work profile of its counterexample (so a shrunk
   reproducer also reproduces the work), and agreeing runs still yield a
   deterministic per-triple profile for replay-equality tests. *)
let check ?engines t =
  let res, snap = Obs.with_scope (fun () -> check0 ?engines t) in
  match res with
  | None -> None
  | Some m -> Some { m with work = Obs.nonzero_counters snap }

let work_profile ?engines t =
  let _, snap = Obs.with_scope (fun () -> ignore (check0 ?engines t)) in
  Obs.nonzero_counters snap

(* {1 Generators} *)

let gen_word rnd =
  if Random.State.int rnd 10 < 7 then Qgen.pick rnd profile.Qgen.text_pieces
  else
    Qgen.pick rnd profile.Qgen.text_pieces
    ^ " "
    ^ Qgen.pick rnd profile.Qgen.text_pieces

let doc_labels doc =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  Xml_tree.iter
    (fun n ->
      if n.Xml_tree.kind = Xml_tree.Element && not (Hashtbl.mem seen n.Xml_tree.name)
      then begin
        Hashtbl.add seen n.Xml_tree.name ();
        out := n.Xml_tree.name :: !out
      end)
    doc;
  Array.of_list (List.rev !out)

(* A label guaranteed absent from every generated document: the plain
   profile never emits it, so paths over it have empty target sets. *)
let absent_label = "zz"

(* {2 Views} *)

let rec gen_vnode rnd ~labels depth =
  let tag =
    let r = Random.State.int rnd 20 in
    if r < 14 then Qgen.pick rnd labels
    else if r < 16 then "*"
    else if r < 18 then Qgen.pick rnd profile.Qgen.labels
    else "@" ^ Qgen.pick rnd profile.Qgen.attr_names
  in
  let attr = tag.[0] = '@' in
  let axis = if Random.State.int rnd 3 = 0 then Pattern.Child else Pattern.Descendant in
  let id, value, content =
    match Random.State.int rnd 6 with
    | 0 | 1 | 2 -> (true, false, false)
    | 3 -> (true, true, false)
    | 4 -> (true, false, true)
    | _ -> (false, false, false)
  in
  let vpred =
    if (not attr) && Random.State.int rnd 6 = 0 then Some (gen_word rnd) else None
  in
  let kids =
    if attr || depth <= 0 then []
    else
      List.init (Random.State.int rnd 3) (fun _ -> gen_vnode rnd ~labels (depth - 1))
  in
  Pattern.n ~axis ~id ~value ~content ?vpred tag kids

let gen_view rnd ~labels =
  Pattern.compile ~name:"difftest" (gen_vnode rnd ~labels 2)

(* {2 Updates} *)

let gen_pred rnd ~pick_label =
  match Random.State.int rnd 5 with
  | 0 -> Printf.sprintf "[%s]" (pick_label ())
  | 1 -> Printf.sprintf "[%s or %s]" (pick_label ()) (pick_label ())
  | 2 -> Printf.sprintf "[%s and %s]" (pick_label ()) (pick_label ())
  | 3 -> Printf.sprintf "[%s='%s']" (pick_label ()) (Qgen.pick rnd profile.Qgen.text_pieces)
  | _ -> Printf.sprintf "[@%s]" (Qgen.pick rnd profile.Qgen.attr_names)

let gen_path rnd ~labels ~root_label ~allow_attr =
  let pick_label () =
    let r = Random.State.int rnd 10 in
    if r < 7 then Qgen.pick rnd labels
    else if r < 8 then "*"
    else if r < 9 then Qgen.pick rnd profile.Qgen.labels
    else absent_label
  in
  match Random.State.int rnd 10 with
  | 0 -> "/" ^ root_label (* the document root itself *)
  | 1 -> "/" ^ root_label ^ "/" ^ pick_label () (* root children *)
  | 2 ->
    (* Nested/overlapping target subtrees: a label below itself. *)
    let l = Qgen.pick rnd labels in
    Printf.sprintf "//%s//%s" l l
  | 3 -> "//" ^ absent_label (* provably empty target set *)
  | _ ->
    let steps = 1 + Random.State.int rnd 3 in
    let b = Buffer.create 24 in
    for i = 1 to steps do
      Buffer.add_string b (if Random.State.bool rnd then "//" else "/");
      if i = steps && allow_attr && Random.State.int rnd 8 = 0 then
        Buffer.add_string b ("@" ^ Qgen.pick rnd profile.Qgen.attr_names)
      else begin
        Buffer.add_string b (pick_label ());
        if Random.State.int rnd 4 = 0 then
          Buffer.add_string b (gen_pred rnd ~pick_label)
      end
    done;
    Buffer.contents b

let gen_fragment rnd =
  let n = 1 + Random.State.int rnd 2 in
  String.concat ""
    (List.init n (fun _ ->
         Xml_tree.serialize (Qgen.gen_element profile rnd (Random.State.int rnd 2))))

let gen_update rnd ~labels ~root_label =
  let delete = Random.State.bool rnd in
  let path = gen_path rnd ~labels ~root_label ~allow_attr:delete in
  let stmt =
    if delete then "delete " ^ path
    else "insert into " ^ path ^ " " ^ gen_fragment rnd
  in
  (* The generator must only emit statements the replay path can parse. *)
  ignore (Update.parse stmt);
  stmt

let gen_triple rnd =
  let doc = Qgen.random_document ~profile rnd in
  let labels = doc_labels doc in
  let view = gen_view rnd ~labels in
  let update = gen_update rnd ~labels ~root_label:doc.Xml_tree.name in
  { doc; view; update }

(* {1 Compact view syntax}

   The inverse of [Pattern.to_string]: axis, tag, optional [val='…']
   selection, optional {id,val,cont} stored-attribute set, then every
   child bracketed. A child always starts with "[/", a value predicate
   with "[val='", so one token of lookahead disambiguates. *)

let view_of_compact ~name s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    invalid_arg
      (Printf.sprintf "Difftest.view_of_compact: %s at offset %d in %S" msg !pos s)
  in
  let peek p =
    !pos + String.length p <= n && String.sub s !pos (String.length p) = p
  in
  let eat p = if peek p then pos := !pos + String.length p else fail ("expected " ^ p) in
  let rec node () =
    let axis =
      if peek "//" then begin
        eat "//";
        Pattern.Descendant
      end
      else if peek "/" then begin
        eat "/";
        Pattern.Child
      end
      else fail "expected / or //"
    in
    let start = !pos in
    while
      !pos < n && (match s.[!pos] with '[' | '{' | ']' | '/' -> false | _ -> true)
    do
      incr pos
    done;
    let tag = String.sub s start (!pos - start) in
    if tag = "" then fail "empty tag";
    let vpred =
      if peek "[val='" then begin
        eat "[val='";
        let st = !pos in
        while !pos < n && s.[!pos] <> '\'' do
          incr pos
        done;
        let v = String.sub s st (!pos - st) in
        eat "']";
        Some v
      end
      else None
    in
    let id = ref false and value = ref false and content = ref false in
    if peek "{" then begin
      eat "{";
      let continue = ref true in
      while !continue do
        let st = !pos in
        while !pos < n && s.[!pos] <> ',' && s.[!pos] <> '}' do
          incr pos
        done;
        (match String.sub s st (!pos - st) with
        | "id" -> id := true
        | "val" -> value := true
        | "cont" -> content := true
        | x -> fail ("unknown stored attribute " ^ x));
        if peek "," then eat ","
        else begin
          eat "}";
          continue := false
        end
      done
    end;
    let kids = ref [] in
    while peek "[" do
      eat "[";
      kids := node () :: !kids;
      eat "]"
    done;
    Pattern.n ~axis ~id:!id ~value:!value ~content:!content ?vpred tag
      (List.rev !kids)
  in
  let spec = node () in
  if !pos <> n then fail "trailing input";
  Pattern.compile ~name spec

(* {1 Replay} *)

let repro_of_triple t =
  let part s = Printf.sprintf "%d:%s" (String.length s) s in
  String.concat "|"
    [
      "xvmdt1";
      part (Pattern.to_string t.view);
      part t.update;
      part (Xml_tree.serialize t.doc);
    ]

let triple_of_repro s =
  let fail () = invalid_arg "Difftest.triple_of_repro: malformed reproducer" in
  let n = String.length s in
  if not (n > 7 && String.sub s 0 7 = "xvmdt1|") then fail ();
  let pos = ref 7 in
  let expect c = if !pos < n && s.[!pos] = c then incr pos else fail () in
  let part () =
    let st = !pos in
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
      incr pos
    done;
    if !pos = st then fail ();
    let len = int_of_string (String.sub s st (!pos - st)) in
    expect ':';
    if !pos + len > n then fail ();
    let r = String.sub s !pos len in
    pos := !pos + len;
    r
  in
  let view_s = part () in
  expect '|';
  let update = part () in
  expect '|';
  let doc_s = part () in
  if !pos <> n then fail ();
  ignore (Update.parse update);
  {
    doc = Xml_parse.document doc_s;
    view = view_of_compact ~name:"replay" view_s;
    update;
  }

let shell_quote s =
  "'" ^ String.concat "'\\''" (String.split_on_char '\'' s) ^ "'"

let replay_command t =
  "xvmcli difftest --replay " ^ shell_quote (repro_of_triple t)

let describe m =
  let t = m.cx in
  let work =
    match m.work with
    | [] -> "(none)"
    | w -> String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) w)
  in
  Printf.sprintf
    "%s vs %s disagree\n\
    \  view:   %s\n\
    \  update: %s\n\
    \  doc:    %s (%d nodes)\n\
    \  first differing tuple: %s\n\
    \  work:   %s\n\
    \  replay: %s"
    m.left m.right (Pattern.to_string t.view) t.update
    (Qgen.abbrev (Xml_tree.serialize t.doc))
    (doc_nodes t) m.detail work (replay_command t)

(* {1 The shrinker} *)

(* Candidate documents go through a serialize∘parse round trip: removing
   an element can leave adjacent text siblings, which only the parser's
   normalization merges back into canonical form. A canonical candidate
   is exactly what its replayed serialization parses to, so a shrunk
   counterexample reproduces verbatim. *)
let canonical_doc d = Xml_parse.document (Xml_tree.serialize d)

let copy_without doc ~skip =
  let rec go n =
    if n.Xml_tree.serial = skip then None
    else
      Some
        (match n.Xml_tree.kind with
        | Xml_tree.Element ->
          Xml_tree.element
            ~children:(List.filter_map go n.Xml_tree.children)
            n.Xml_tree.name
        | Xml_tree.Attribute -> Xml_tree.attribute n.Xml_tree.name n.Xml_tree.text
        | Xml_tree.Text -> Xml_tree.text n.Xml_tree.text)
  in
  go doc

(* Replace the [target] element by its non-attribute children. *)
let copy_hoisting doc ~target =
  let rec go n =
    match n.Xml_tree.kind with
    | Xml_tree.Element when n.Xml_tree.serial = target ->
      List.concat_map go
        (List.filter
           (fun c -> c.Xml_tree.kind <> Xml_tree.Attribute)
           n.Xml_tree.children)
    | Xml_tree.Element ->
      [ Xml_tree.element ~children:(List.concat_map go n.Xml_tree.children) n.Xml_tree.name ]
    | Xml_tree.Attribute -> [ Xml_tree.attribute n.Xml_tree.name n.Xml_tree.text ]
    | Xml_tree.Text -> [ Xml_tree.text n.Xml_tree.text ]
  in
  match go doc with [ d ] -> Some d | _ -> None

(* Canonicalized reduced documents, largest cuts first — shared between
   the single-triple and the view-set shrinkers. *)
let doc_variants doc =
  let nodes = ref [] in
  Xml_tree.iter
    (fun nd -> if nd.Xml_tree.serial <> doc.Xml_tree.serial then nodes := nd :: !nodes)
    doc;
  (* Largest subtrees first: successful big cuts converge fastest. *)
  let nodes =
    List.sort (fun a b -> compare (Xml_tree.size b) (Xml_tree.size a)) !nodes
  in
  let drops =
    List.filter_map (fun nd -> copy_without doc ~skip:nd.Xml_tree.serial) nodes
  in
  let hoists =
    List.filter_map
      (fun nd ->
        if nd.Xml_tree.kind = Xml_tree.Element && Xml_tree.element_children nd <> []
        then copy_hoisting doc ~target:nd.Xml_tree.serial
        else None)
      nodes
  in
  List.filter_map
    (fun d -> match canonical_doc d with d -> Some d | exception _ -> None)
    (drops @ hoists)

let doc_candidates t =
  List.map (fun d -> { t with doc = d }) (doc_variants t.doc)

(* Rebuild a pattern spec from the compiled arrays, optionally dropping
   the subtree at [drop], clearing the predicate at [clear_vpred], or
   erasing the stored attributes at [weaken]. *)
let respec pat ?(drop = -1) ?(clear_vpred = -1) ?(weaken = -1) () =
  let rec build i =
    let kids = List.filter (fun j -> j <> drop) (Pattern.children pat i) in
    let a = if i = weaken then Pattern.no_annot else pat.Pattern.annots.(i) in
    let vp = if i = clear_vpred then None else pat.Pattern.vpreds.(i) in
    Pattern.n ~axis:pat.Pattern.axes.(i) ~id:a.Pattern.store_id
      ~value:a.Pattern.store_val ~content:a.Pattern.store_cont ?vpred:vp
      pat.Pattern.tags.(i) (List.map build kids)
  in
  Pattern.compile ~name:pat.Pattern.name (build 0)

let view_variants pat =
  let k = Pattern.node_count pat in
  let out = ref [] in
  for i = k - 1 downto 1 do
    out := respec pat ~drop:i () :: !out
  done;
  for i = k - 1 downto 0 do
    if pat.Pattern.vpreds.(i) <> None then
      out := respec pat ~clear_vpred:i () :: !out;
    if pat.Pattern.annots.(i) <> Pattern.no_annot then
      out := respec pat ~weaken:i () :: !out
  done;
  !out

let view_candidates t =
  List.map (fun v -> { t with view = v }) (view_variants t.view)

type ustmt = UDel of Xpath.path | UIns of Xpath.path * Xml_tree.node list

let ustmt_of_string s =
  let s = String.trim s in
  let strip p =
    if String.length s >= String.length p && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  match strip "delete " with
  | Some rest -> UDel (Xpath.parse (String.trim rest))
  | None -> (
    match strip "insert into " with
    | Some rest -> (
      match String.index_opt rest '<' with
      | None -> invalid_arg "Difftest: insert without fragment"
      | Some i ->
        UIns
          ( Xpath.parse (String.trim (String.sub rest 0 i)),
            Xml_parse.fragment (String.sub rest i (String.length rest - i)) ))
    | None -> invalid_arg "Difftest: unrecognized update statement")

let ustmt_to_string = function
  | UDel p -> "delete " ^ Xpath.to_string p
  | UIns (p, frag) ->
    "insert into " ^ Xpath.to_string p ^ " "
    ^ String.concat "" (List.map Xml_tree.serialize frag)

let without_nth l n = List.filteri (fun i _ -> i <> n) l

let path_candidates path =
  let out = ref [] in
  let steps = List.length path in
  if steps > 1 then
    for i = steps - 1 downto 0 do
      out := without_nth path i :: !out
    done;
  List.iteri
    (fun i (step : Xpath.step) ->
      List.iteri
        (fun j pred ->
          let with_preds preds =
            List.mapi (fun k st -> if k = i then { step with Xpath.preds } else st) path
          in
          out := with_preds (without_nth step.Xpath.preds j) :: !out;
          match pred with
          | Xpath.And (a, b) | Xpath.Or (a, b) ->
            let swap p =
              List.mapi (fun k q -> if k = j then p else q) step.Xpath.preds
            in
            out := with_preds (swap a) :: with_preds (swap b) :: !out
          | Xpath.Exists _ | Xpath.Eq _ -> ())
        step.Xpath.preds)
    path;
  !out

let fragment_candidates frag =
  let out = ref [] in
  if List.length frag > 1 then
    List.iteri (fun i _ -> out := without_nth frag i :: !out) frag;
  List.iteri
    (fun i root ->
      Xml_tree.iter
        (fun nd ->
          if nd.Xml_tree.serial <> root.Xml_tree.serial then
            match copy_without root ~skip:nd.Xml_tree.serial with
            | Some r ->
              out := List.mapi (fun k x -> if k = i then r else Xml_tree.copy x) frag :: !out
            | None -> ())
        root)
    frag;
  !out

let update_variants update =
  match ustmt_of_string update with
  | exception _ -> []
  | stmt ->
    let rebuilt =
      match stmt with
      | UDel p -> List.map (fun p' -> UDel p') (path_candidates p)
      | UIns (p, frag) ->
        List.map (fun p' -> UIns (p', frag)) (path_candidates p)
        @ List.map (fun f' -> UIns (p, f')) (fragment_candidates frag)
    in
    List.filter_map
      (fun st ->
        match ustmt_to_string st with
        | s -> (
          (* Keep only candidates the replay parser accepts verbatim. *)
          match Update.parse s with
          | _ -> Some s
          | exception _ -> None)
        | exception _ -> None)
      rebuilt

let update_candidates t =
  List.map (fun u -> { t with update = u }) (update_variants t.update)

let shrink ?(engines = default_engines) m =
  let current = ref m in
  let budget = ref 3000 in
  let improved = ref true in
  while !improved && !budget > 0 do
    improved := false;
    let t = !current.cx in
    let candidates = doc_candidates t @ update_candidates t @ view_candidates t in
    (try
       List.iter
         (fun c ->
           if !budget > 0 then begin
             decr budget;
             match check ~engines c with
             | Some m' ->
               current := m';
               improved := true;
               raise Exit
             | None -> ()
           end)
         candidates
     with Exit -> ())
  done;
  !current

(* {1 Batch runs} *)

let run ?(engines = default_engines) ~seed ~iters () =
  let rnd = Random.State.make [| seed; 0xd1ff |] in
  let rc = Qgen.fresh_recorder () in
  for _ = 1 to iters do
    let t = gen_triple rnd in
    match check ~engines t with
    | None -> ()
    | Some m -> Qgen.record rc (describe (shrink ~engines m))
  done;
  Qgen.report_of rc ~iterations:iters

(* {1 Multi-view sets}

   The batch-maintenance oracle: a random 2–4-view set over one store,
   maintained in one [View_set.update] call — shared update-region index,
   relevance skipping, hoisted commit, optional domain fan-out — must be
   tuple-for-tuple identical to one-by-one [Maint] propagation of the
   same update on a fresh store per view, and [jobs > 1] must be
   bit-identical (tables and non-timing report counters) to [jobs = 1]. *)

type set_triple = {
  sdoc : Xml_tree.node;
  sviews : Pattern.t list;
  supdate : string;
}

type set_mismatch = { scx : set_triple; sdetail : string }

let gen_set_triple rnd =
  let doc = Qgen.random_document ~profile rnd in
  let labels = doc_labels doc in
  let k = 2 + Random.State.int rnd 3 in
  let views =
    List.init k (fun i ->
        Pattern.compile ~name:(Printf.sprintf "v%d" i) (gen_vnode rnd ~labels 2))
  in
  let update = gen_update rnd ~labels ~root_label:doc.Xml_tree.name in
  { sdoc = doc; sviews = views; supdate = update }

(* Everything except the timing floats. *)
let report_sig (r : Maint.report) =
  ( r.Maint.terms_developed,
    r.Maint.terms_surviving,
    r.Maint.embeddings_added,
    r.Maint.embeddings_removed,
    r.Maint.tuples_modified,
    r.Maint.fallback_recompute,
    r.Maint.skipped_irrelevant )

let check_set0 ~jobs t =
  let batched jobs =
    let store = Store.of_document (Xml_tree.copy t.sdoc) in
    let set = View_set.create store in
    List.iter (fun pat -> ignore (View_set.add set pat)) t.sviews;
    View_set.update ~jobs set (Update.parse t.supdate)
  in
  try
    let seq = batched 1 in
    let mismatch = ref None in
    let note i msg =
      if !mismatch = None then
        mismatch := Some (Printf.sprintf "view %d (%s): %s" i
                            (Pattern.to_string (List.nth t.sviews i)) msg)
    in
    (* One-by-one propagation on a fresh store per view: the oracle. *)
    List.iteri
      (fun i ((mv, _), pat) ->
        if !mismatch = None then
          let omv = maint_engine.eval (Xml_tree.copy t.sdoc) pat (Update.parse t.supdate) in
          match Recompute.diff mv omv with
          | None -> ()
          | Some d -> note i ("batched vs one-by-one: " ^ d))
      (List.combine seq t.sviews);
    (* jobs > 1 must be bit-identical to jobs = 1. *)
    if !mismatch = None && jobs > 1 then begin
      let par = batched jobs in
      List.iteri
        (fun i ((mv1, r1), (mv2, r2)) ->
          if !mismatch = None then
            if report_sig r1 <> report_sig r2 then
              note i (Printf.sprintf "jobs=%d report differs from jobs=1" jobs)
            else
              match Recompute.diff mv2 mv1 with
              | None -> ()
              | Some d -> note i (Printf.sprintf "jobs=%d vs jobs=1: %s" jobs d))
        (List.combine seq par)
    end;
    !mismatch
  with exn -> Some ("escaped exception: " ^ Printexc.to_string exn)

let check_set ?(jobs = 2) t =
  Option.map (fun d -> { scx = t; sdetail = d }) (check_set0 ~jobs t)

(* {2 Set replay} *)

let repro_of_set t =
  let part s = Printf.sprintf "%d:%s" (String.length s) s in
  String.concat "|"
    (("xvmdtm1" :: string_of_int (List.length t.sviews)
      :: List.map (fun v -> part (Pattern.to_string v)) t.sviews)
    @ [ part t.supdate; part (Xml_tree.serialize t.sdoc) ])

let set_of_repro s =
  let fail () = invalid_arg "Difftest.set_of_repro: malformed reproducer" in
  let n = String.length s in
  if not (n > 8 && String.sub s 0 8 = "xvmdtm1|") then fail ();
  let pos = ref 8 in
  let expect c = if !pos < n && s.[!pos] = c then incr pos else fail () in
  let number () =
    let st = !pos in
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
      incr pos
    done;
    if !pos = st then fail ();
    int_of_string (String.sub s st (!pos - st))
  in
  let part () =
    let len = number () in
    expect ':';
    if !pos + len > n then fail ();
    let r = String.sub s !pos len in
    pos := !pos + len;
    r
  in
  let k = number () in
  if k < 1 || k > 64 then fail ();
  let views =
    List.init k (fun i ->
        expect '|';
        view_of_compact ~name:(Printf.sprintf "v%d" i) (part ()))
  in
  expect '|';
  let update = part () in
  expect '|';
  let doc_s = part () in
  if !pos <> n then fail ();
  ignore (Update.parse update);
  { sdoc = Xml_parse.document doc_s; sviews = views; supdate = update }

let describe_set m =
  let t = m.scx in
  Printf.sprintf
    "multi-view batch disagreement\n\
    \  views:  %s\n\
    \  update: %s\n\
    \  doc:    %s (%d nodes)\n\
    \  detail: %s\n\
    \  replay: xvmcli difftest --replay %s"
    (String.concat "  ;  " (List.map Pattern.to_string t.sviews))
    t.supdate
    (Qgen.abbrev (Xml_tree.serialize t.sdoc))
    (Xml_tree.size t.sdoc) m.sdetail
    (shell_quote (repro_of_set t))

(* {2 Set shrinking: drop whole views first, then the document, the
   update, and finally nodes inside the surviving views.} *)

let shrink_set ?(jobs = 2) m =
  let current = ref m in
  let budget = ref 2000 in
  let improved = ref true in
  while !improved && !budget > 0 do
    improved := false;
    let t = !current.scx in
    let replace_view i v =
      { t with sviews = List.mapi (fun k q -> if k = i then v else q) t.sviews }
    in
    let drop_views =
      if List.length t.sviews > 1 then
        List.mapi (fun i _ -> { t with sviews = without_nth t.sviews i }) t.sviews
      else []
    in
    let docs =
      List.map (fun d -> { t with sdoc = d }) (doc_variants t.sdoc)
    in
    let updates =
      List.map (fun u -> { t with supdate = u }) (update_variants t.supdate)
    in
    let view_shrinks =
      List.concat
        (List.mapi
           (fun i pat -> List.map (replace_view i) (view_variants pat))
           t.sviews)
    in
    let candidates = drop_views @ docs @ updates @ view_shrinks in
    (try
       List.iter
         (fun c ->
           if !budget > 0 then begin
             decr budget;
             match check_set ~jobs c with
             | Some m' ->
               current := m';
               improved := true;
               raise Exit
             | None -> ()
           end)
         candidates
     with Exit -> ())
  done;
  !current

let run_sets ?(jobs = 2) ~seed ~iters () =
  let rnd = Random.State.make [| seed; 0xd1f5 |] in
  let rc = Qgen.fresh_recorder () in
  for _ = 1 to iters do
    let t = gen_set_triple rnd in
    match check_set ~jobs t with
    | None -> ()
    | Some m -> Qgen.record rc (describe_set (shrink_set ~jobs m))
  done;
  Qgen.report_of rc ~iterations:iters

(* {1 Serve snapshot-isolation oracle}

   The serving loop's correctness claim is stronger than batch
   equivalence: a reader loading published snapshots *while* the writer
   is applying statements must only ever observe committed epochs, and
   every observed epoch must be bit-identical to a sequential replay of
   exactly the statements it claims to contain. A torn epoch — a
   snapshot taken mid-commit, a stale view shared when it actually
   changed, a lost statement — shows up as a tuple-level diff against
   the replay oracle. *)

type serve_case = { sc_set : set_triple; sc_stmts : string list }

let gen_serve_case rnd =
  let t = gen_set_triple rnd in
  let labels = doc_labels t.sdoc in
  let extra =
    List.init
      (1 + Random.State.int rnd 4)
      (fun _ -> gen_update rnd ~labels ~root_label:t.sdoc.Xml_tree.name)
  in
  { sc_set = t; sc_stmts = t.supdate :: extra }

let build_serve_set t =
  let store = Store.of_document (Xml_tree.copy t.sdoc) in
  let set = View_set.create store in
  List.iter (fun pat -> ignore (View_set.add set pat)) t.sviews;
  set

let describe_serve c ~epoch ~applied ~detail =
  Printf.sprintf
    "serve isolation violation\n\
    \  epoch %d (applied %d of %d statements): %s\n\
    \  views:  %s\n\
    \  statements: %s\n\
    \  doc:    %s (%d nodes)\n\
    \  set replay (first statement): xvmcli difftest --replay %s"
    epoch applied (List.length c.sc_stmts) detail
    (String.concat "  ;  " (List.map Pattern.to_string c.sc_set.sviews))
    (String.concat "  ;  " c.sc_stmts)
    (Qgen.abbrev (Xml_tree.serialize c.sc_set.sdoc))
    (Xml_tree.size c.sc_set.sdoc)
    (shell_quote (repro_of_set c.sc_set))

let check_serve ?(jobs = 1) c =
  try
    let stmts = List.map Update.parse c.sc_stmts in
    let server = Server.create ~jobs ~max_batch:2 (build_serve_set c.sc_set) in
    let stop_reader = Atomic.make false in
    (* The concurrent reader: poll the published snapshot, keep the
       first observation of every epoch, in observation order. *)
    let reader =
      Domain.spawn (fun () ->
          let seen = Hashtbl.create 16 in
          let acc = ref [] in
          while not (Atomic.get stop_reader) do
            let s = Server.snapshot server in
            if not (Hashtbl.mem seen s.Snapshot.epoch) then begin
              Hashtbl.add seen s.Snapshot.epoch ();
              acc := s :: !acc
            end;
            Domain.cpu_relax ()
          done;
          List.rev !acc)
    in
    let submitter =
      Domain.spawn (fun () ->
          List.iter (fun u -> ignore (Server.submit server u)) stmts;
          Server.stop server)
    in
    Server.run server;
    Domain.join submitter;
    Atomic.set stop_reader true;
    let observed = Domain.join reader in
    let final = Server.snapshot server in
    let observed =
      if
        List.exists (fun s -> s.Snapshot.epoch = final.Snapshot.epoch) observed
      then observed
      else observed @ [ final ]
    in
    (* Observation order must respect publication order. *)
    let monotone =
      let rec go = function
        | a :: (b :: _ as rest) ->
          if a.Snapshot.epoch < b.Snapshot.epoch
             && a.Snapshot.applied <= b.Snapshot.applied
          then go rest
          else
            Some
              (describe_serve c ~epoch:b.Snapshot.epoch
                 ~applied:b.Snapshot.applied
                 ~detail:
                   (Printf.sprintf
                      "non-monotone observation after epoch %d (applied %d)"
                      a.Snapshot.epoch a.Snapshot.applied))
        | _ -> None
      in
      go observed
    in
    if monotone <> None then monotone
    else if final.Snapshot.applied <> List.length stmts then
      Some
        (describe_serve c ~epoch:final.Snapshot.epoch
           ~applied:final.Snapshot.applied
           ~detail:"statements lost: final epoch misses admitted statements")
    else
      (* Every observed epoch must equal a sequential replay of exactly
         the statements it claims to contain. *)
      List.find_map
        (fun s ->
          let oset = build_serve_set c.sc_set in
          List.iteri
            (fun i stmt ->
              if i < s.Snapshot.applied then
                ignore (View_set.update oset (Update.parse stmt)))
            c.sc_stmts;
          let oracle = Snapshot.initial oset in
          let pairs =
            Array.combine s.Snapshot.views oracle.Snapshot.views
          in
          Array.fold_left
            (fun acc (got, want) ->
              match acc with
              | Some _ -> acc
              | None -> (
                match Snapshot.view_diff got want with
                | None -> None
                | Some d ->
                  Some
                    (describe_serve c ~epoch:s.Snapshot.epoch
                       ~applied:s.Snapshot.applied
                       ~detail:
                         (Printf.sprintf "view %s: %s" got.Snapshot.v_name d))))
            None pairs)
        observed
  with exn ->
    Some
      (describe_serve c ~epoch:(-1) ~applied:(-1)
         ~detail:("escaped exception: " ^ Printexc.to_string exn))

let run_serve ?(jobs = 1) ~seed ~iters () =
  let rnd = Random.State.make [| seed; 0x5e7e |] in
  let rc = Qgen.fresh_recorder () in
  for _ = 1 to iters do
    let c = gen_serve_case rnd in
    match check_serve ~jobs c with
    | None -> ()
    | Some msg -> Qgen.record rc msg
  done;
  Qgen.report_of rc ~iterations:iters

(* {1 Kill-and-recover durability oracle}

   The durability claim: killing the process at any synced statement
   boundary and recovering from the last checkpoint plus the log yields
   a state tuple-for-tuple identical to a run that was never
   interrupted. Each case runs a random view set through the durable
   engine, kills it after a seeded number of statements (optionally with
   an extra statement journaled but never synced — which a real crash
   loses, and so must recovery), recovers into the same directory, and
   compares every view and the document against an uninterrupted
   sequential oracle. The surviving engine then finishes the statement
   sequence and is killed and recovered a second time, proving that
   appends resume contiguously into a recovered log. *)

type recover_case = {
  rc_set : set_triple;
  rc_stmts : string list;
  rc_crash_after : int;
  rc_checkpoint_at : int option;
  rc_unsynced_tail : bool;
}

(* The journal persists [Update.to_string] renderings, so the recovery
   oracle must draw from every journalable statement form — not just the
   delete/insert-into mix of [gen_update]. *)
let gen_recover_stmt rnd ~labels ~root_label =
  let stmt =
    match Random.State.int rnd 6 with
    | 0 ->
      Printf.sprintf "insert before %s %s"
        (gen_path rnd ~labels ~root_label ~allow_attr:false)
        (gen_fragment rnd)
    | 1 ->
      Printf.sprintf "insert after %s %s"
        (gen_path rnd ~labels ~root_label ~allow_attr:false)
        (gen_fragment rnd)
    | 2 ->
      Printf.sprintf "replace value of %s with %S"
        (gen_path rnd ~labels ~root_label ~allow_attr:true)
        (Qgen.pick rnd profile.Qgen.text_pieces)
    | _ -> gen_update rnd ~labels ~root_label
  in
  ignore (Update.parse stmt);
  stmt

let gen_recover_case rnd =
  let t = gen_set_triple rnd in
  let labels = doc_labels t.sdoc in
  let extra =
    List.init
      (2 + Random.State.int rnd 5)
      (fun _ -> gen_recover_stmt rnd ~labels ~root_label:t.sdoc.Xml_tree.name)
  in
  let stmts = t.supdate :: extra in
  let n = List.length stmts in
  let crash_after = Random.State.int rnd (n + 1) in
  let checkpoint_at =
    if Random.State.bool rnd then Some (Random.State.int rnd (crash_after + 1))
    else None
  in
  {
    rc_set = t;
    rc_stmts = stmts;
    rc_crash_after = crash_after;
    rc_checkpoint_at = checkpoint_at;
    rc_unsynced_tail = crash_after < n && Random.State.int rnd 3 = 0;
  }

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_tmp_dir f =
  let path = Filename.temp_file "xvm-recover" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let describe_recover c ~detail =
  Printf.sprintf
    "kill-and-recover disagreement\n\
    \  crash after %d of %d statements, checkpoint at %s%s\n\
    \  detail: %s\n\
    \  views:  %s\n\
    \  statements: %s\n\
    \  doc:    %s (%d nodes)\n\
    \  set replay (first statement): xvmcli difftest --replay %s"
    c.rc_crash_after
    (List.length c.rc_stmts)
    (match c.rc_checkpoint_at with None -> "-" | Some k -> string_of_int k)
    (if c.rc_unsynced_tail then ", one unsynced statement in flight" else "")
    detail
    (String.concat "  ;  " (List.map Pattern.to_string c.rc_set.sviews))
    (String.concat "  ;  " c.rc_stmts)
    (Qgen.abbrev (Xml_tree.serialize c.rc_set.sdoc))
    (Xml_tree.size c.rc_set.sdoc)
    (shell_quote (repro_of_set c.rc_set))

(* Tuple-for-tuple: every view payload included, then the document. *)
let diff_view_sets got want =
  let gs = Snapshot.initial got and ws = Snapshot.initial want in
  if Array.length gs.Snapshot.views <> Array.length ws.Snapshot.views then
    Some "view count differs"
  else begin
    let r = ref None in
    Array.iter2
      (fun g w ->
        if !r = None then
          match Snapshot.view_diff g w with
          | Some d -> r := Some (Printf.sprintf "view %s: %s" g.Snapshot.v_name d)
          | None -> ())
      gs.Snapshot.views ws.Snapshot.views;
    if
      !r = None
      && not
           (Xml_tree.equal
              (Store.root (View_set.store got))
              (Store.root (View_set.store want)))
    then r := Some "recovered document differs from the oracle document";
    !r
  end

let check_recover ?(jobs = 1) c =
  let fail detail = Some (describe_recover c ~detail) in
  try
    with_tmp_dir @@ fun dir ->
    let stmts = Array.of_list c.rc_stmts in
    let n = Array.length stmts in
    let crash_at = c.rc_crash_after in
    (* The durable run: journal (via the installed hook), apply, sync at
       each statement boundary, checkpoint where the case says, kill. *)
    let set = build_serve_set c.rc_set in
    let d = Durable.init ~dir set in
    for i = 0 to crash_at - 1 do
      ignore (View_set.update ~jobs set (Update.parse stmts.(i)));
      Durable.sync d;
      if c.rc_checkpoint_at = Some (i + 1) then Durable.checkpoint d set
    done;
    if c.rc_unsynced_tail then
      (* Journaled and applied in memory, but never synced: a real kill
         loses this statement, and recovery must agree that it did. *)
      ignore (View_set.update ~jobs set (Update.parse stmts.(crash_at)));
    Durable.crash d;
    let parse_pattern ~name s = view_of_compact ~name s in
    (* Checkpoint at 0 (or at a boundary where nothing was journaled
       since) is a no-op: generation 0 from [init] already covers it. *)
    let expect_ck =
      match c.rc_checkpoint_at with Some k when k >= 1 -> k | _ -> 0
    in
    match Durable.recover ~dir ~parse_pattern ~jobs () with
    | None -> fail "no manifest found after the crash"
    | Some o ->
      if o.Durable.ck_seq <> expect_ck then
        fail
          (Printf.sprintf "recovered from checkpoint %d, expected %d"
             o.Durable.ck_seq expect_ck)
      else if o.Durable.replayed <> crash_at - expect_ck then
        fail
          (Printf.sprintf "replayed %d statements, expected %d"
             o.Durable.replayed (crash_at - expect_ck))
      else if o.Durable.skipped <> 0 then
        fail
          (Printf.sprintf "%d already-covered records survived segment GC"
             o.Durable.skipped)
      else if o.Durable.truncated <> [] then
        fail
          (Printf.sprintf "clean log reported damage: %s"
             (String.concat "; "
                (List.map
                   (fun (f, dmg) -> f ^ ": " ^ Wal.damage_to_string dmg)
                   o.Durable.truncated)))
      else if o.Durable.rebuilt_views <> [] then
        fail
          (Printf.sprintf "intact images reported corrupt: %s"
             (String.concat ", " o.Durable.rebuilt_views))
      else begin
        (* The oracle: the same prefix applied sequentially, never
           interrupted. *)
        let oset = build_serve_set c.rc_set in
        for i = 0 to crash_at - 1 do
          ignore (View_set.update oset (Update.parse stmts.(i)))
        done;
        match diff_view_sets o.Durable.set oset with
        | Some m -> fail ("after first recovery: " ^ m)
        | None -> (
          (* Finish the sequence on the recovered engine — appends must
             resume contiguously in the recovered segment — then kill
             and recover once more. *)
          let d2 = o.Durable.engine in
          for i = crash_at to n - 1 do
            ignore (View_set.update ~jobs o.Durable.set (Update.parse stmts.(i)));
            Durable.sync d2
          done;
          Durable.crash d2;
          match Durable.recover ~dir ~parse_pattern ~jobs () with
          | None -> fail "no manifest found on second recovery"
          | Some o2 ->
            if o2.Durable.replayed <> n - expect_ck then
              fail
                (Printf.sprintf
                   "second recovery replayed %d statements, expected %d"
                   o2.Durable.replayed (n - expect_ck))
            else if o2.Durable.truncated <> [] then
              fail "second recovery reported damage in a clean log"
            else begin
              for i = crash_at to n - 1 do
                ignore (View_set.update oset (Update.parse stmts.(i)))
              done;
              let r =
                match diff_view_sets o2.Durable.set oset with
                | Some m -> fail ("after second recovery: " ^ m)
                | None -> None
              in
              Durable.close o2.Durable.engine;
              r
            end)
      end
  with exn -> fail ("escaped exception: " ^ Printexc.to_string exn)

(* {1 Answer-from-views oracle}

   The rewriting planner's claim: a query answered from the materialized
   view set — single-view with compensations, two-view intersection, or
   base fallback — is tuple-for-tuple equal (cells, payloads, derivation
   counts) to independent brute-force evaluation over the document, both
   before and after a maintenance round. The brute side goes through
   [Embed], not the algebraic evaluator, so the comparison also
   re-validates the view contents the rewriting consumed. *)

type answer_case = { aset : set_triple; aquery : Pattern.t }

type answer_mismatch = { acx : answer_case; adetail : string }

(* Brute-force query evaluation: enumerate embeddings, project stored
   nodes, compute payloads straight off the document. *)
let brute_rows store (pat : Pattern.t) =
  let stored = Pattern.stored_nodes pat in
  (* After a root deletion the store's tree handle dangles (cf.
     [Update.targets]); the document is empty, so no embeddings. *)
  if not (Store.mem store (Store.root store)) then []
  else
    Embed.embeddings store pat
  |> List.map (fun (binding : Dewey.t array) ->
         {
           Answer.count = 1;
           cells =
             stored
             |> List.map (fun s ->
                    let id = binding.(s) in
                    let a = pat.Pattern.annots.(s) in
                    let node =
                      match Store.node_of store id with
                      | Some nd -> nd
                      | None -> failwith "brute_rows: dangling identifier"
                    in
                    ( id,
                      (if a.Pattern.store_val then
                         Some (Xml_tree.string_value node)
                       else None),
                      if a.Pattern.store_cont then Some (Xml_tree.serialize node)
                      else None ))
             |> Array.of_list;
         })
  |> Answer.canonical

let gen_answer_case rnd =
  let t = gen_set_triple rnd in
  let views = Array.of_list t.sviews in
  let pick_view () = views.(Random.State.int rnd (Array.length views)) in
  let fresh_query () =
    Pattern.compile ~name:"q" (gen_vnode rnd ~labels:(doc_labels t.sdoc) 2)
  in
  let t, q =
    match Random.State.int rnd 4 with
    | 0 ->
      (* Verbatim view: an exact single-view rewriting must exist. *)
      (t, Pattern.rename (pick_view ()) "q")
    | 1 ->
      (* Derivative of a view: weakened annotations still rewrite (with
         payload stripping); dropped subtrees force the fallback. *)
      let v = pick_view () in
      let q =
        match view_variants v with
        | [] -> v
        | vs -> Qgen.pick rnd (Array.of_list vs)
      in
      (t, Pattern.rename q "q")
    | 2 ->
      (* Plant the two legs of a split as extra views so an intersection
         rewriting exists for a query matching no single view. *)
      let q = fresh_query () in
      if Pattern.node_count q < 2 then (t, q)
      else begin
        let split = 1 + Random.State.int rnd (Pattern.node_count q - 1) in
        let k = List.length t.sviews in
        let top = Pattern.prune q split ~name:(Printf.sprintf "v%d" k) in
        let bottom =
          Pattern.subpattern q split ~name:(Printf.sprintf "v%d" (k + 1))
        in
        ({ t with sviews = t.sviews @ [ top; bottom ] }, q)
      end
    | _ ->
      (* Unrelated query: usually the fallback, sometimes an accidental
         rewriting. *)
      (t, fresh_query ())
  in
  { aset = t; aquery = q }

let check_answer c =
  let detail = ref None in
  let note phase msg =
    if !detail = None then detail := Some (phase ^ ": " ^ msg)
  in
  (try
     let store = Store.of_document (Xml_tree.copy c.aset.sdoc) in
     let set = View_set.create store in
     List.iter (fun pat -> ignore (View_set.add set pat)) c.aset.sviews;
     let sources = List.map Answer.source_of_mview (View_set.views set) in
     let compare_now phase =
       let want = brute_rows store c.aquery in
       match Answer.answer ~store ~sources c.aquery with
       | None -> note phase "no plan and no fallback (unreachable with a store)"
       | Some (plan, got) -> (
         match Answer.diff ~expect:want ~got with
         | None -> ()
         | Some d -> note phase (Printf.sprintf "[%s] %s" (Answer.describe plan) d))
     in
     compare_now "before update";
     if !detail = None then begin
       ignore (View_set.update set (Update.parse c.aset.supdate));
       compare_now "after update"
     end
   with exn -> note "check" ("escaped exception: " ^ Printexc.to_string exn));
  Option.map (fun d -> { acx = c; adetail = d }) !detail

(* {2 Answer replay} *)

let repro_of_answer c =
  let part s = Printf.sprintf "%d:%s" (String.length s) s in
  String.concat "|"
    (("xvmdta1"
      :: string_of_int (List.length c.aset.sviews)
      :: List.map (fun v -> part (Pattern.to_string v)) c.aset.sviews)
    @ [
        part (Pattern.to_string c.aquery);
        part c.aset.supdate;
        part (Xml_tree.serialize c.aset.sdoc);
      ])

let answer_of_repro s =
  let fail () = invalid_arg "Difftest.answer_of_repro: malformed reproducer" in
  let n = String.length s in
  if not (n > 8 && String.sub s 0 8 = "xvmdta1|") then fail ();
  let pos = ref 8 in
  let expect c = if !pos < n && s.[!pos] = c then incr pos else fail () in
  let number () =
    let st = !pos in
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
      incr pos
    done;
    if !pos = st then fail ();
    int_of_string (String.sub s st (!pos - st))
  in
  let part () =
    let len = number () in
    expect ':';
    if !pos + len > n then fail ();
    let r = String.sub s !pos len in
    pos := !pos + len;
    r
  in
  let k = number () in
  if k < 1 || k > 64 then fail ();
  let views =
    List.init k (fun i ->
        expect '|';
        view_of_compact ~name:(Printf.sprintf "v%d" i) (part ()))
  in
  expect '|';
  let query = view_of_compact ~name:"q" (part ()) in
  expect '|';
  let update = part () in
  expect '|';
  let doc_s = part () in
  if !pos <> n then fail ();
  ignore (Update.parse update);
  {
    aset = { sdoc = Xml_parse.document doc_s; sviews = views; supdate = update };
    aquery = query;
  }

let describe_answer m =
  let c = m.acx in
  Printf.sprintf
    "answer-from-views disagreement\n\
    \  views:  %s\n\
    \  query:  %s\n\
    \  update: %s\n\
    \  doc:    %s (%d nodes)\n\
    \  detail: %s\n\
    \  replay: xvmcli difftest --replay %s"
    (String.concat "  ;  " (List.map Pattern.to_string c.aset.sviews))
    (Pattern.to_string c.aquery) c.aset.supdate
    (Qgen.abbrev (Xml_tree.serialize c.aset.sdoc))
    (Xml_tree.size c.aset.sdoc) m.adetail
    (shell_quote (repro_of_answer c))

let shrink_answer m =
  let current = ref m in
  let budget = ref 2000 in
  let improved = ref true in
  while !improved && !budget > 0 do
    improved := false;
    let c = !current.acx in
    let t = c.aset in
    let replace_view i v =
      { c with
        aset =
          { t with sviews = List.mapi (fun k q -> if k = i then v else q) t.sviews }
      }
    in
    let drop_views =
      (* Dropping a view can only steer the plan toward the fallback; the
         case stays well-formed. *)
      if List.length t.sviews > 1 then
        List.mapi
          (fun i _ -> { c with aset = { t with sviews = without_nth t.sviews i } })
          t.sviews
      else []
    in
    let docs =
      List.map (fun d -> { c with aset = { t with sdoc = d } }) (doc_variants t.sdoc)
    in
    let updates =
      List.map
        (fun u -> { c with aset = { t with supdate = u } })
        (update_variants t.supdate)
    in
    let queries =
      List.map (fun q -> { c with aquery = q }) (view_variants c.aquery)
    in
    let view_shrinks =
      List.concat
        (List.mapi
           (fun i pat -> List.map (replace_view i) (view_variants pat))
           t.sviews)
    in
    let candidates = drop_views @ docs @ updates @ queries @ view_shrinks in
    (try
       List.iter
         (fun cand ->
           if !budget > 0 then begin
             decr budget;
             match check_answer cand with
             | Some m' ->
               current := m';
               improved := true;
               raise Exit
             | None -> ()
           end)
         candidates
     with Exit -> ())
  done;
  !current

let run_answer ~seed ~iters () =
  let rnd = Random.State.make [| seed; 0xa457 |] in
  let rc = Qgen.fresh_recorder () in
  for _ = 1 to iters do
    let c = gen_answer_case rnd in
    match check_answer c with
    | None -> ()
    | Some m -> Qgen.record rc (describe_answer (shrink_answer m))
  done;
  Qgen.report_of rc ~iterations:iters

(* {1 Independence-safety oracle}

   Whenever the static analysis declares an (update, view) pair
   independent, full maintenance on that view must be a no-op: zero delta
   tuples, zero payload refreshes, no rebuild, an image identical before
   and after — and, as ground truth, identical to recomputation from
   scratch. The analyzer is pluggable so a deliberately broken one can be
   proven catchable (and its counterexamples shrinkable). *)

type indep_analyzer = Dtd.t -> Update.t -> Pattern.t -> bool

type indep_mismatch = { icx : triple; idetail : string }

(* Projection of a dump that ignores cell mutability. *)
let dump_sig mv =
  Mview.dump mv
  |> List.map (fun (key, count, cells) ->
         ( key,
           count,
           Array.to_list
             (Array.map
                (fun c -> (c.Mview.cell_value, c.Mview.cell_content))
                cells) ))

let check_indep ?(analyzer : indep_analyzer = Independence.independent) t =
  let fail d = Some { icx = t; idetail = d } in
  match
    let doc = Xml_tree.copy t.doc in
    let dtd = Dtd.infer doc in
    let u = Update.parse t.update in
    if not (analyzer dtd u t.view) then None
    else begin
      let store = Store.of_document doc in
      let mv = Mview.materialize store t.view in
      let before = dump_sig mv in
      let r = Maint.propagate mv u in
      (* [tuples_modified] alone is not a violation: maintenance may
         conservatively refresh a payload to the same value (e.g. a text-
         free insert below a [val] node); the image comparison right
         after catches any refresh that actually changed something. *)
      if
        r.Maint.embeddings_added <> 0
        || r.Maint.embeddings_removed <> 0
        || r.Maint.fallback_recompute
      then
        fail
          (Printf.sprintf
             "declared independent, but maintenance produced delta tuples: \
              +%d -%d embeddings, rebuild=%b"
             r.Maint.embeddings_added r.Maint.embeddings_removed
             r.Maint.fallback_recompute)
      else if dump_sig mv <> before then
        fail "declared independent, but the view image changed"
      else begin
        (* Ground truth: the untouched view must equal recomputation. *)
        let omv =
          recompute_engine.eval (Xml_tree.copy t.doc) t.view (Update.parse t.update)
        in
        match Recompute.diff mv omv with
        | None -> None
        | Some d -> fail ("declared independent, but recomputation differs: " ^ d)
      end
    end
  with
  | r -> r
  | exception exn ->
    fail ("escaped exception: " ^ Printexc.to_string exn)

(* Bias half the triples toward updates over labels the view never
   mentions — those are the pairs a useful analyzer should discharge. *)
let gen_indep_triple rnd =
  let t = gen_triple rnd in
  if Random.State.bool rnd then t
  else begin
    let vtags = Array.to_list t.view.Pattern.tags in
    let unused =
      Array.to_list (doc_labels t.doc)
      |> List.filter (fun l -> not (List.mem l vtags))
    in
    let pool = Array.of_list (absent_label :: unused) in
    let l = Qgen.pick rnd pool in
    let stmt =
      if Random.State.bool rnd then "delete //" ^ l
      else "insert into //" ^ l ^ " " ^ gen_fragment rnd
    in
    ignore (Update.parse stmt);
    { t with update = stmt }
  end

let describe_indep m =
  let t = m.icx in
  Printf.sprintf
    "independence-safety violation (DTD inferred from the document)\n\
    \  view:   %s\n\
    \  update: %s\n\
    \  doc:    %s (%d nodes)\n\
    \  detail: %s"
    (Pattern.to_string t.view) t.update
    (Qgen.abbrev (Xml_tree.serialize t.doc))
    (doc_nodes t) m.idetail

let shrink_indep ?analyzer m =
  let current = ref m in
  let budget = ref 2000 in
  let improved = ref true in
  while !improved && !budget > 0 do
    improved := false;
    let t = !current.icx in
    let candidates = doc_candidates t @ update_candidates t @ view_candidates t in
    (try
       List.iter
         (fun c ->
           if !budget > 0 then begin
             decr budget;
             match check_indep ?analyzer c with
             | Some m' ->
               current := m';
               improved := true;
               raise Exit
             | None -> ()
           end)
         candidates
     with Exit -> ())
  done;
  !current

let run_indep ?analyzer ~seed ~iters () =
  let rnd = Random.State.make [| seed; 0x1dec |] in
  let rc = Qgen.fresh_recorder () in
  for _ = 1 to iters do
    let t = gen_indep_triple rnd in
    match check_indep ?analyzer t with
    | None -> ()
    | Some m -> Qgen.record rc (describe_indep (shrink_indep ?analyzer m))
  done;
  Qgen.report_of rc ~iterations:iters

let run_recover ?(jobs = 1) ~seed ~iters () =
  let rnd = Random.State.make [| seed; 0xc4a5 |] in
  let rc = Qgen.fresh_recorder () in
  for _ = 1 to iters do
    let c = gen_recover_case rnd in
    match check_recover ~jobs c with
    | None -> ()
    | Some msg -> Qgen.record rc msg
  done;
  Qgen.report_of rc ~iterations:iters

(* {1 Heavy-light adaptive maintenance oracle}

   Adaptive (heavy-light partitioned) maintenance claims observational
   equivalence with eager maintenance: at every read point — after
   draining deferred work — each view is tuple-for-tuple identical to
   its eagerly-maintained twin, whatever mix of partition migrations
   (rebalance storms under deliberately tiny thresholds), budget-forced
   drains, store tail merges and drain-on-read interleavings happened in
   between. Each case runs one statement sequence through two view sets
   over copies of the same document — one with a classifier installed,
   one eager — draining and comparing at seeded read points (a random
   single view or the whole set) and once more at the end, where the
   documents must also serialize identically. *)

type heavy_case = {
  hc_set : set_triple; (* document, views, first statement *)
  hc_stmts : string list; (* full statement sequence, head = supdate *)
  hc_reads : (int * int) list;
      (* (statement index, view index or -1 for all): drain + compare *)
  hc_count : int; (* Hl.heavy_count — deliberately tiny *)
  hc_fanout : int; (* Hl.heavy_fanout *)
  hc_budget : int; (* Hl.drain_budget *)
  hc_tailb : int; (* store tail budget *)
}

type heavy_mismatch = { hcx : heavy_case; hdetail : string }

let gen_heavy_case rnd =
  let doc =
    if Random.State.bool rnd then Qgen.skewed_document ~profile rnd
    else Qgen.random_document ~profile rnd
  in
  let labels = doc_labels doc in
  let k = 2 + Random.State.int rnd 3 in
  let views =
    List.init k (fun i ->
        Pattern.compile ~name:(Printf.sprintf "v%d" i) (gen_vnode rnd ~labels 2))
  in
  let nstmts = 2 + Random.State.int rnd 6 in
  let stmts =
    List.init nstmts (fun _ ->
        gen_recover_stmt rnd ~labels ~root_label:doc.Xml_tree.name)
  in
  let reads =
    List.concat
      (List.mapi
         (fun i _ ->
           if Random.State.int rnd 3 = 0 then
             [ (i, if Random.State.bool rnd then -1 else Random.State.int rnd k) ]
           else [])
         stmts)
  in
  {
    hc_set = { sdoc = doc; sviews = views; supdate = List.hd stmts };
    hc_stmts = stmts;
    hc_reads = reads;
    hc_count = 1 + Random.State.int rnd 16;
    hc_fanout = 1 + Random.State.int rnd 6;
    hc_budget = 1 + Random.State.int rnd 16;
    hc_tailb = 1 + Random.State.int rnd 8;
  }

let check_heavy0 c =
  try
    let build () =
      let store = Store.of_document (Xml_tree.copy c.hc_set.sdoc) in
      let set = View_set.create store in
      List.iter (fun pat -> ignore (View_set.add set pat)) c.hc_set.sviews;
      set
    in
    let aset = build () and eset = build () in
    let cfg =
      {
        Hl.default_config with
        Hl.heavy_count = c.hc_count;
        Hl.heavy_fanout = c.hc_fanout;
        Hl.drain_budget = c.hc_budget;
        Hl.tail_budget = c.hc_tailb;
      }
    in
    View_set.set_adaptive aset
      (Some (Hl.create ~config:cfg (View_set.store aset)));
    let mismatch = ref None in
    let note msg = if !mismatch = None then mismatch := Some msg in
    let compare_view ~at i =
      if !mismatch = None then
        let amv = List.nth (View_set.views aset) i in
        let emv = List.nth (View_set.views eset) i in
        match Recompute.diff amv emv with
        | None -> ()
        | Some d ->
          note
            (Printf.sprintf "after statement %d, view %d (%s): %s" at i
               (Pattern.to_string (List.nth c.hc_set.sviews i))
               d)
    in
    let nviews = List.length c.hc_set.sviews in
    let read ~at which =
      if which < 0 then begin
        ignore (View_set.drain_all aset);
        for i = 0 to nviews - 1 do
          compare_view ~at i
        done
      end
      else begin
        (* Drain exactly one view: the others may legitimately stay
           stale, so only the drained one is compared. *)
        ignore
          (View_set.drain_view aset
             (List.nth c.hc_set.sviews which).Pattern.name);
        compare_view ~at which
      end
    in
    List.iteri
      (fun i stmt ->
        if !mismatch = None then begin
          let u = Update.parse stmt in
          ignore (View_set.update aset u);
          ignore (View_set.update eset u);
          List.iter
            (fun (ri, which) ->
              if ri = i && !mismatch = None then read ~at:i which)
            c.hc_reads
        end)
      c.hc_stmts;
    if !mismatch = None then begin
      read ~at:(List.length c.hc_stmts - 1) (-1);
      if !mismatch = None then begin
        (match View_set.stale aset with
        | [] -> ()
        | l ->
          note
            (Printf.sprintf "stale views survived drain_all: %s"
               (String.concat ", " l)));
        let adoc = Xml_tree.serialize (Store.root (View_set.store aset)) in
        let edoc = Xml_tree.serialize (Store.root (View_set.store eset)) in
        if adoc <> edoc then note "documents diverged between the two engines"
      end
    end;
    !mismatch
  with exn -> Some ("escaped exception: " ^ Printexc.to_string exn)

let check_heavy c =
  Option.map (fun d -> { hcx = c; hdetail = d }) (check_heavy0 c)

(* {2 Heavy replay} *)

let repro_of_heavy c =
  let part s = Printf.sprintf "%d:%s" (String.length s) s in
  let cfg =
    Printf.sprintf "%d,%d,%d,%d" c.hc_count c.hc_fanout c.hc_budget c.hc_tailb
  in
  let reads =
    String.concat ","
      (List.map (fun (i, w) -> Printf.sprintf "%d/%d" i w) c.hc_reads)
  in
  String.concat "|"
    (("xvmdth1" :: part cfg :: part reads
      :: string_of_int (List.length c.hc_set.sviews)
      :: List.map (fun v -> part (Pattern.to_string v)) c.hc_set.sviews)
    @ (string_of_int (List.length c.hc_stmts) :: List.map part c.hc_stmts)
    @ [ part (Xml_tree.serialize c.hc_set.sdoc) ])

let heavy_of_repro s =
  let fail () = invalid_arg "Difftest.heavy_of_repro: malformed reproducer" in
  let n = String.length s in
  if not (n > 8 && String.sub s 0 8 = "xvmdth1|") then fail ();
  let pos = ref 8 in
  let expect c = if !pos < n && s.[!pos] = c then incr pos else fail () in
  let number () =
    let st = !pos in
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
      incr pos
    done;
    if !pos = st then fail ();
    int_of_string (String.sub s st (!pos - st))
  in
  let part () =
    let len = number () in
    expect ':';
    if !pos + len > n then fail ();
    let r = String.sub s !pos len in
    pos := !pos + len;
    r
  in
  let int_of str =
    match int_of_string_opt str with Some v -> v | None -> fail ()
  in
  let ints_of sep str =
    if str = "" then []
    else List.map int_of (String.split_on_char sep str)
  in
  let cfg = ints_of ',' (part ()) in
  let count, fanout, budget, tailb =
    match cfg with
    | [ a; b; c; d ] when a > 0 && b > 0 && c > 0 && d > 0 -> (a, b, c, d)
    | _ -> fail ()
  in
  expect '|';
  let reads_s = part () in
  let reads =
    if reads_s = "" then []
    else
      List.map
        (fun p ->
          match String.split_on_char '/' p with
          | [ i; w ] -> (int_of i, int_of w)
          | _ -> fail ())
        (String.split_on_char ',' reads_s)
  in
  expect '|';
  let k = number () in
  if k < 1 || k > 64 then fail ();
  let views =
    List.init k (fun i ->
        expect '|';
        view_of_compact ~name:(Printf.sprintf "v%d" i) (part ()))
  in
  expect '|';
  let m = number () in
  if m < 1 || m > 256 then fail ();
  let stmts =
    List.init m (fun _ ->
        expect '|';
        part ())
  in
  expect '|';
  let doc_s = part () in
  if !pos <> n then fail ();
  List.iter (fun st -> ignore (Update.parse st)) stmts;
  List.iter
    (fun (i, w) -> if i < 0 || i >= m || w < -1 || w >= k then fail ())
    reads;
  {
    hc_set =
      { sdoc = Xml_parse.document doc_s; sviews = views; supdate = List.hd stmts };
    hc_stmts = stmts;
    hc_reads = reads;
    hc_count = count;
    hc_fanout = fanout;
    hc_budget = budget;
    hc_tailb = tailb;
  }

let describe_heavy m =
  let c = m.hcx in
  Printf.sprintf
    "heavy-light adaptive maintenance disagreement\n\
    \  thresholds: count %d, fanout %d, drain budget %d, tail budget %d\n\
    \  views:  %s\n\
    \  statements: %s\n\
    \  reads:  %s\n\
    \  doc:    %s (%d nodes)\n\
    \  detail: %s\n\
    \  replay: xvmcli difftest --replay %s"
    c.hc_count c.hc_fanout c.hc_budget c.hc_tailb
    (String.concat "  ;  " (List.map Pattern.to_string c.hc_set.sviews))
    (String.concat "  ;  " c.hc_stmts)
    (String.concat ", "
       (List.map
          (fun (i, w) ->
            if w < 0 then Printf.sprintf "after %d: all" i
            else Printf.sprintf "after %d: v%d" i w)
          c.hc_reads))
    (Qgen.abbrev (Xml_tree.serialize c.hc_set.sdoc))
    (Xml_tree.size c.hc_set.sdoc) m.hdetail
    (shell_quote (repro_of_heavy c))

(* {2 Heavy shrinking: drop reads, then whole statements (remapping the
   read points), then whole views (remapping single-view reads), then
   the document, the statements' paths/fragments, and finally nodes
   inside the surviving views.} *)

let shrink_heavy m =
  let current = ref m in
  let budget = ref 2000 in
  let improved = ref true in
  while !improved && !budget > 0 do
    improved := false;
    let c = !current.hcx in
    let with_stmts c stmts =
      {
        c with
        hc_stmts = stmts;
        hc_set = { c.hc_set with supdate = List.hd stmts };
        hc_reads =
          List.filter (fun (i, _) -> i < List.length stmts) c.hc_reads;
      }
    in
    let drop_reads =
      List.mapi
        (fun j _ -> { c with hc_reads = without_nth c.hc_reads j })
        c.hc_reads
    in
    let drop_stmts =
      if List.length c.hc_stmts > 1 then
        List.mapi
          (fun j _ ->
            let stmts = without_nth c.hc_stmts j in
            let reads =
              List.filter_map
                (fun (i, w) ->
                  if i = j then None
                  else if i > j then Some (i - 1, w)
                  else Some (i, w))
                c.hc_reads
            in
            { (with_stmts c stmts) with hc_reads = reads })
          c.hc_stmts
      else []
    in
    let drop_views =
      if List.length c.hc_set.sviews > 1 then
        List.mapi
          (fun j _ ->
            let reads =
              List.filter_map
                (fun (i, w) ->
                  if w = j then Some (i, -1)
                  else if w > j then Some (i, w - 1)
                  else Some (i, w))
                c.hc_reads
            in
            {
              c with
              hc_set =
                { c.hc_set with sviews = without_nth c.hc_set.sviews j };
              hc_reads = reads;
            })
          c.hc_set.sviews
      else []
    in
    let docs =
      List.map
        (fun d -> { c with hc_set = { c.hc_set with sdoc = d } })
        (doc_variants c.hc_set.sdoc)
    in
    let stmt_shrinks =
      List.concat
        (List.mapi
           (fun j stmt ->
             List.map
               (fun u ->
                 with_stmts c
                   (List.mapi
                      (fun i q -> if i = j then u else q)
                      c.hc_stmts))
               (update_variants stmt))
           c.hc_stmts)
    in
    let view_shrinks =
      List.concat
        (List.mapi
           (fun j pat ->
             List.map
               (fun v ->
                 {
                   c with
                   hc_set =
                     {
                       c.hc_set with
                       sviews =
                         List.mapi
                           (fun i q -> if i = j then v else q)
                           c.hc_set.sviews;
                     };
                 })
               (view_variants pat))
           c.hc_set.sviews)
    in
    let candidates =
      drop_reads @ drop_stmts @ drop_views @ docs @ stmt_shrinks @ view_shrinks
    in
    (try
       List.iter
         (fun cand ->
           if !budget > 0 then begin
             decr budget;
             match check_heavy cand with
             | Some m' ->
               current := m';
               improved := true;
               raise Exit
             | None -> ()
           end)
         candidates
     with Exit -> ())
  done;
  !current

let run_heavy ~seed ~iters () =
  let rnd = Random.State.make [| seed; 0x4ea7 |] in
  let rc = Qgen.fresh_recorder () in
  for _ = 1 to iters do
    let c = gen_heavy_case rnd in
    match check_heavy c with
    | None -> ()
    | Some m -> Qgen.record rc (describe_heavy (shrink_heavy m))
  done;
  Qgen.report_of rc ~iterations:iters
