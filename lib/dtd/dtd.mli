(** DTDs as extended context-free grammars (Section 3.3): one rule per
    element label, whose right-hand side is a regular expression over
    child labels. Used to detect, at update time and by reasoning on the
    Δ⁺ tables, insertions that would invalidate the document.

    Only element children participate in content models; attributes and
    text are transparent. *)

type regex =
  | Empty  (** the empty language *)
  | Epsilon  (** the empty word *)
  | Sym of string
  | Seq of regex * regex
  | Alt of regex * regex
  | Star of regex
  | Plus of regex
  | Opt of regex

type t

(** [create ~root rules]: one [(label, content-model)] pair per element;
    labels without a rule accept any content. *)
val create : root:string -> (string * regex) list -> t

val root : t -> string

(** [rule dtd label] is the content model of [label], if constrained. *)
val rule : t -> string -> regex option

(** Labels having a rule, sorted. *)
val labels : t -> string list

exception Parse_error of string

(** [parse s] reads a compact textual syntax, one rule per line:
    [label = expr] with [,] for concatenation, [|] for alternation,
    postfix [* + ?], parentheses and [EMPTY] for the empty word; the first
    rule's label is the root. Lines starting with [#] are comments.
    @raise Parse_error on malformed input. *)
val parse : string -> t

(** {1 Regex semantics} (Brzozowski derivatives) *)

val nullable : regex -> bool
val deriv : regex -> string -> regex

(** [word_matches re w]: [w] ∈ L([re]). *)
val word_matches : regex -> string list -> bool

(** Symbols occurring in {e every} word of the language — the mandatory
    children used to derive Δ⁺ constraints (Examples 3.9 / 3.10). *)
val mandatory : regex -> string list

(** All symbols occurring in the expression, sorted — the
    over-approximation of possible children used by the query-update
    independence analysis. *)
val alphabet : regex -> string list

(** [infer doc] builds the coarsest DTD the document satisfies: one
    [Star (Alt …)] rule per element label over every child label observed
    anywhere under that label. [doc] always validates against it, and
    label reachability is exact for [doc] — good enough to drive the
    independence analysis when no authored DTD is available. *)
val infer : Xml_tree.node -> t

(** {1 Δ⁺ reasoning} *)

(** Transitively closed implications [(a, b)]: any inserted [a] element
    must come with a [b] element in the same forest
    ([Δ⁺a ≠ ∅ ⇒ Δ⁺b ≠ ∅]). *)
val delta_constraints : t -> (string * string) list

(** [check_delta dtd ~present] evaluates the Δ⁺ constraints against the
    set of labels present in the inserted forests; returns the violated
    pairs. *)
val check_delta : t -> present:(string -> bool) -> (string * string) list

(** {1 Full validation} *)

(** [validate_tree dtd node] checks every element of the subtree against
    its content model. *)
val validate_tree : t -> Xml_tree.node -> (unit, string) result

(** [check_insert dtd ~parent ~forest] decides whether appending [forest]
    under [parent] keeps the document valid: the parent's new child word
    must match its model and every inserted tree must be internally
    valid. *)
val check_insert :
  t -> parent:Xml_tree.node -> forest:Xml_tree.node list -> (unit, string) result
