type regex =
  | Empty
  | Epsilon
  | Sym of string
  | Seq of regex * regex
  | Alt of regex * regex
  | Star of regex
  | Plus of regex
  | Opt of regex

type t = { root : string; rules : (string, regex) Hashtbl.t }

let create ~root rules =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (label, re) -> Hashtbl.replace tbl label re) rules;
  { root; rules = tbl }

let root t = t.root
let rule t label = Hashtbl.find_opt t.rules label

let labels t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.rules [] |> List.sort_uniq compare

exception Parse_error of string

(* {1 Textual syntax} *)

let parse text =
  let parse_rule line =
    match String.index_opt line '=' with
    | None -> raise (Parse_error (Printf.sprintf "missing '=' in rule %S" line))
    | Some eq ->
      let label = String.trim (String.sub line 0 eq) in
      let body = String.sub line (eq + 1) (String.length line - eq - 1) in
      let lx = ref 0 in
      let src = body in
      let len = String.length src in
      let peek () = if !lx < len then Some src.[!lx] else None in
      let skip_ws () =
        while (match peek () with Some (' ' | '\t') -> true | _ -> false) do incr lx done
      in
      let fail msg = raise (Parse_error (Printf.sprintf "%s in rule %S" msg line)) in
      let is_word c =
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true | _ -> false
      in
      let read_word () =
        let start = !lx in
        while (match peek () with Some c -> is_word c | None -> false) do incr lx done;
        if !lx = start then fail "expected a name";
        String.sub src start (!lx - start)
      in
      (* expr := alt ; alt := seq ('|' seq)* ; seq := post (',' post)* ;
         post := prim [*+?] ; prim := name | EMPTY | '(' expr ')' *)
      let rec parse_alt () =
        let left = parse_seq () in
        skip_ws ();
        if peek () = Some '|' then begin
          incr lx;
          Alt (left, parse_alt ())
        end
        else left
      and parse_seq () =
        let left = parse_post () in
        skip_ws ();
        if peek () = Some ',' then begin
          incr lx;
          Seq (left, parse_seq ())
        end
        else left
      and parse_post () =
        let prim = parse_prim () in
        skip_ws ();
        match peek () with
        | Some '*' -> incr lx; Star prim
        | Some '+' -> incr lx; Plus prim
        | Some '?' -> incr lx; Opt prim
        | Some _ | None -> prim
      and parse_prim () =
        skip_ws ();
        match peek () with
        | Some '(' ->
          incr lx;
          let e = parse_alt () in
          skip_ws ();
          if peek () <> Some ')' then fail "expected ')'";
          incr lx;
          e
        | Some c when is_word c ->
          let w = read_word () in
          if w = "EMPTY" then Epsilon else Sym w
        | Some _ | None -> fail "expected a name, EMPTY or '('"
      in
      let re = parse_alt () in
      skip_ws ();
      if !lx <> len then fail "trailing input";
      (label, re)
  in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match List.map parse_rule lines with
  | [] -> raise (Parse_error "empty DTD")
  | ((root, _) :: _) as rules -> create ~root rules

(* {1 Brzozowski derivatives} *)

let rec nullable = function
  | Empty | Sym _ -> false
  | Epsilon | Star _ | Opt _ -> true
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Plus a -> nullable a

let rec deriv re sym =
  match re with
  | Empty | Epsilon -> Empty
  | Sym s -> if s = sym then Epsilon else Empty
  | Seq (a, b) ->
    let da = Seq (deriv a sym, b) in
    if nullable a then Alt (da, deriv b sym) else da
  | Alt (a, b) -> Alt (deriv a sym, deriv b sym)
  | Star a -> Seq (deriv a sym, Star a)
  | Plus a -> Seq (deriv a sym, Star a)
  | Opt a -> deriv a sym

let word_matches re w = nullable (List.fold_left deriv re w)

let rec mandatory = function
  | Empty | Epsilon | Star _ | Opt _ -> []
  | Sym s -> [ s ]
  | Seq (a, b) -> List.sort_uniq compare (mandatory a @ mandatory b)
  | Alt (a, b) -> List.filter (fun s -> List.mem s (mandatory b)) (mandatory a)
  | Plus a -> mandatory a

let alphabet re =
  let rec go acc = function
    | Empty | Epsilon -> acc
    | Sym s -> if List.mem s acc then acc else s :: acc
    | Seq (a, b) | Alt (a, b) -> go (go acc a) b
    | Star a | Plus a | Opt a -> go acc a
  in
  List.sort compare (go [] re)

let infer node =
  (* One [Star (Alt ...)] rule per label over every child label ever
     observed; leaf-only labels get [Epsilon]. The source document always
     validates, and reachability between labels is exact for it. *)
  let children : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let seen label = if not (Hashtbl.mem children label) then Hashtbl.add children label (ref []) in
  Xml_tree.iter
    (fun n ->
      match n.Xml_tree.kind with
      | Xml_tree.Element ->
        seen n.Xml_tree.name;
        let kids = Hashtbl.find children n.Xml_tree.name in
        List.iter
          (fun c ->
            match c.Xml_tree.kind with
            | Xml_tree.Element ->
              if not (List.mem c.Xml_tree.name !kids) then kids := c.Xml_tree.name :: !kids
            | Xml_tree.Attribute | Xml_tree.Text -> ())
          n.Xml_tree.children
      | Xml_tree.Attribute | Xml_tree.Text -> ())
    node;
  let rules =
    Hashtbl.fold
      (fun label kids acc ->
        let re =
          match List.sort compare !kids with
          | [] -> Epsilon
          | first :: rest ->
            Star (List.fold_left (fun r s -> Alt (r, Sym s)) (Sym first) rest)
        in
        (label, re) :: acc)
      children []
  in
  let root_label =
    match node.Xml_tree.kind with
    | Xml_tree.Element -> node.Xml_tree.name
    | Xml_tree.Attribute | Xml_tree.Text -> "#root"
  in
  create ~root:root_label rules

(* {1 Δ⁺ reasoning} *)

let delta_constraints t =
  (* Direct implications, then transitive closure. *)
  let direct =
    Hashtbl.fold
      (fun label re acc -> List.map (fun m -> (label, m)) (mandatory re) @ acc)
      t.rules []
  in
  let pairs = ref (List.sort_uniq compare direct) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (a, b) ->
        List.iter
          (fun (b', c) ->
            if b = b' && a <> c && not (List.mem (a, c) !pairs) then begin
              pairs := (a, c) :: !pairs;
              changed := true
            end)
          !pairs)
      !pairs
  done;
  List.sort_uniq compare !pairs

let check_delta t ~present =
  List.filter (fun (a, b) -> present a && not (present b)) (delta_constraints t)

(* {1 Full validation} *)

let child_word node =
  List.filter_map
    (fun c ->
      match c.Xml_tree.kind with
      | Xml_tree.Element -> Some c.Xml_tree.name
      | Xml_tree.Attribute | Xml_tree.Text -> None)
    node.Xml_tree.children

let check_node t node =
  match node.Xml_tree.kind with
  | Xml_tree.Attribute | Xml_tree.Text -> Ok ()
  | Xml_tree.Element -> (
    match rule t node.Xml_tree.name with
    | None -> Ok ()
    | Some re ->
      let w = child_word node in
      if word_matches re w then Ok ()
      else
        Error
          (Printf.sprintf "element <%s>: children (%s) do not match its content model"
             node.Xml_tree.name (String.concat ", " w)))

let validate_tree t node =
  let failure = ref None in
  Xml_tree.iter
    (fun n ->
      if !failure = None then
        match check_node t n with Ok () -> () | Error e -> failure := Some e)
    node;
  match !failure with None -> Ok () | Some e -> Error e

let check_insert t ~parent ~forest =
  match parent.Xml_tree.kind with
  | Xml_tree.Attribute | Xml_tree.Text ->
    Error "cannot insert element content under a non-element node"
  | Xml_tree.Element -> (
    let new_word =
      child_word parent
      @ List.filter_map
          (fun n ->
            match n.Xml_tree.kind with
            | Xml_tree.Element -> Some n.Xml_tree.name
            | Xml_tree.Attribute | Xml_tree.Text -> None)
          forest
    in
    let parent_ok =
      match rule t parent.Xml_tree.name with
      | None -> Ok ()
      | Some re ->
        if word_matches re new_word then Ok ()
        else
          Error
            (Printf.sprintf
               "insertion under <%s> yields children (%s) violating its content model"
               parent.Xml_tree.name
               (String.concat ", " new_word))
    in
    match parent_ok with
    | Error _ as e -> e
    | Ok () ->
      let rec first_error = function
        | [] -> Ok ()
        | tree :: rest -> (
          match validate_tree t tree with Ok () -> first_error rest | Error _ as e -> e)
      in
      first_error forest)
