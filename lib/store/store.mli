(** Document store: assigns structural Dewey identifiers to every node of a
    document and maintains the {e virtual canonical relations} [R_a] — for
    each label [a], the list of [(ID, node)] entries of the [a]-labeled
    nodes in document order (Section 2.2 of the paper; [val] and [cont] are
    computed from the node on demand).

    Updates follow a two-phase discipline so that view-maintenance code can
    evaluate algebraic terms against the {e pre-update} canonical relations
    while the tree (and the IDs of freshly inserted nodes) already reflect
    the update:

    + {!attach} / {!detach} mutate the tree, assign or invalidate IDs, and
      stage the change;
    + {!commit} folds staged changes into the canonical relations. *)

type t

type entry = { id : Dewey.t; node : Xml_tree.node }

(** [of_document ?dict ?ord_of root] indexes a document. [ord_of], when
    given, supplies the sibling ordinal of each non-root node instead of
    the canonical [1..n] numbering; checkpoint recovery uses it (with a
    restored dictionary) to re-intern exactly the identifiers a previous
    store had minted, including the fractional ordinals of sibling
    insertions — so identifiers persisted beside the document (view
    images, logs) stay valid. *)
val of_document :
  ?dict:Label_dict.t -> ?ord_of:(Xml_tree.node -> Dewey.Ord.o) ->
  Xml_tree.node -> t

val root : t -> Xml_tree.node
val dict : t -> Label_dict.t

(** The store's Dewey intern arena. One per store, populated at
    registration time (every live identifier and all its ancestors are
    interned), append-only, and shared read-only across domain-parallel
    view propagation. *)
val arena : t -> Dewey_arena.t

(** [handle_of_node store node] is the arena handle of [node]'s
    identifier — a pure hash lookup, safe from any domain.
    @raise Not_found if [node] does not belong to the store. *)
val handle_of_node : t -> Xml_tree.node -> int

(** Total number of indexed (live) nodes. *)
val node_count : t -> int

(** [id_of store node].
    @raise Not_found if [node] does not belong to the store. *)
val id_of : t -> Xml_tree.node -> Dewey.t

(** [mem store node]: the node is live (indexed and not detached). *)
val mem : t -> Xml_tree.node -> bool

(** [node_of store id] finds a live node by identifier. *)
val node_of : t -> Dewey.t -> Xml_tree.node option

(** [relation store label] is the committed canonical relation of [label],
    sorted in document order. Returns [||] for unseen labels. *)
val relation : t -> string -> entry array

(** [relation_span store label ~root] is the contiguous block of
    [relation store label] lying inside the subtree rooted at [root]
    (descendants-or-self), located by binary search on the two interval
    endpoints: O(log |R| + output) instead of a full relation scan. *)
val relation_span : t -> string -> root:Dewey.t -> entry array

(** [relation_handles store label] is the committed canonical relation
    paired with the parallel array of arena handles, both in document
    order. Columnar scans build handle columns from it directly. Do not
    mutate either array. *)
val relation_handles : t -> string -> entry array * int array

(** {!relation_span} returning the entries paired with their parallel
    arena-handle slice. *)
val relation_span_handles :
  t -> string -> root:Dewey.t -> entry array * int array

(** Labels having a non-empty committed relation. *)
val relation_labels : t -> string list

(** Committed rows of [label] (main part + pending tail). *)
val relation_size : t -> string -> int

(** {1 Heavy-light partitioning}

    Each canonical relation is physically two sorted runs: an eagerly
    merge-maintained main part and a (normally empty) pending tail.
    With no partition predicate installed — the default — the tail is
    never populated and the store behaves exactly as before. With a
    predicate, {!commit} routes the staged batches of {e heavy} labels
    into the tail (cost O(|tail| + |batch|) instead of O(|R|)), folding
    the tail into the main run only when it crosses the configured
    budget or on an explicit drain. Readers always see the union of the
    two runs, in document order, and never mutate the relation — a
    non-empty tail costs them a fresh merged copy, so drains should
    happen at the serialization points the caller controls. *)

(** [set_partition store ?tail_budget pred] installs (or, with [None],
    removes) the heavy-label predicate, first draining every pending
    tail so routing invariants restart clean. [tail_budget] caps the
    pending rows a single relation may buffer before {!commit}
    force-merges it (default: unbounded). *)
val set_partition : t -> ?tail_budget:int -> (string -> bool) option -> unit

(** Total rows currently buffered in pending tails. *)
val pending_rows : t -> int

(** Fold [label]'s pending tail into its main run. *)
val drain_label : t -> string -> unit

(** Fold every pending tail into its main run. *)
val drain_all : t -> unit

(** Commit counter: bumped by every {!commit} that changed the
    canonical relations (staged insertions or sweeps of detached
    subtrees). A stable generation means the document is unchanged —
    derived artifacts keyed on it (inferred DTDs, statistics) stay
    valid. *)
val generation : t -> int

(** {1 Per-label statistics} *)

type label_stat = {
  ls_count : int;  (** live nodes with this label *)
  ls_parents : int;  (** distinct parents of those nodes *)
  ls_max_fanout : int;  (** max same-label siblings under one parent *)
}

(** [label_stat store label] scans the relation once — O(|R_label|);
    callers amortize (see [Viewmaint.Hl]). *)
val label_stat : t -> string -> label_stat

(** Statistics for every label with a non-empty relation. *)
val label_stats : t -> (string * label_stat) list

(** {1 Updates} *)

(** [attach store ~parent forest] appends the trees of [forest] as the last
    children of [parent], assigns IDs to every new node and stages them for
    {!commit}. The forest nodes must be detached (no parent). *)
val attach : t -> parent:Xml_tree.node -> Xml_tree.node list -> unit

(** [attach_beside store ~sibling ~where forest] inserts the trees of
    [forest] immediately before or after [sibling], assigning fresh
    ordinals strictly between the neighbours' — no existing identifier is
    touched (the dynamic-Dewey "no relabeling" property).
    @raise Invalid_argument if [sibling] has no parent. *)
val attach_beside :
  t -> sibling:Xml_tree.node -> where:[ `Before | `After ] ->
  Xml_tree.node list -> unit

(** [detach store node] removes the subtree rooted at [node] from the tree
    and stages the removal of all its nodes. IDs of detached nodes resolve
    to [None] immediately. *)
val detach : t -> Xml_tree.node -> unit

(** Folds staged insertions and removals into the canonical relations.

    Must be called from the main domain: domain-parallel view
    propagation (see [Batch] / [View_set]) reads the store from child
    domains under the contract that nothing mutates it concurrently.
    @raise Invalid_argument when called from a child domain. *)
val commit : t -> unit
