type entry = { id : Dewey.t; node : Xml_tree.node }

let obs_span = Obs.Scope.v "store.span"
let c_span_calls = Obs.Scope.counter obs_span "calls"
let c_span_probes = Obs.Scope.counter obs_span "probes"
let c_span_rows = Obs.Scope.counter obs_span "rows"
let obs_scan = Obs.Scope.v "store.scan"
let c_scan_calls = Obs.Scope.counter obs_scan "calls"
let c_scan_rows = Obs.Scope.counter obs_scan "rows"
let obs_hl = Obs.Scope.v "store.hl"
let c_hl_routed = Obs.Scope.counter obs_hl "routed_tail"
let c_hl_drains = Obs.Scope.counter obs_hl "drains"
let c_hl_drain_rows = Obs.Scope.counter obs_hl "drain_rows"
let c_hl_merge_copies = Obs.Scope.counter obs_hl "merge_copies"

module Dewey_tbl = Hashtbl.Make (struct
  type t = Dewey.t

  let equal = Dewey.equal
  let hash = Dewey.hash
end)

(* [handles] is parallel to [sorted]: the arena handle of each entry's
   identifier, maintained through the same merge/purge passes so that
   columnar scans ({!relation_handles}) never re-intern. A relation is
   physically two sorted runs: the [sorted]/[handles] main part plus a
   (normally empty) [tail]/[tail_h] pending part holding committed rows
   of heavy-partitioned labels that have not yet been merged into the
   main arrays — readers see their union, in document order. *)
type rel = {
  mutable sorted : entry array;
  mutable handles : int array;
  mutable tail : entry array;
  mutable tail_h : int array;
}

type t = {
  root : Xml_tree.node;
  dict : Label_dict.t;
  arena : Dewey_arena.t; (* intern arena: one per store, append-only *)
  ids : (int, Dewey.t) Hashtbl.t; (* node serial -> id *)
  hids : (int, int) Hashtbl.t; (* node serial -> arena handle *)
  nodes : Xml_tree.node Dewey_tbl.t; (* id -> node *)
  rels : (int, rel) Hashtbl.t; (* label code -> canonical relation *)
  mutable staged_adds : entry list; (* newest first *)
  detached : Xml_tree.node Dewey_tbl.t;
      (* detached subtree roots, unregistered at commit *)
  mutable live : int;
  mutable partition : (string -> bool) option;
      (* heavy-label predicate: commit routes staged rows of heavy
         labels into the pending tail instead of the main merge *)
  mutable tail_budget : int; (* force a tail merge past this many rows *)
  mutable generation : int; (* bumped by every effective commit *)
}

let root t = t.root
let dict t = t.dict
let arena t = t.arena

(* A node inside a detached-but-uncommitted subtree is already dead for
   the outside world; its identifier still resolves internally so that
   Δ⁻ tables can be extracted from the subtree. The ancestors-or-self of
   an identifier are its step-prefixes, so the probe is O(depth). *)
let in_detached t id =
  Dewey_tbl.length t.detached > 0
  && (Dewey_tbl.mem t.detached id
     || List.exists (fun a -> Dewey_tbl.mem t.detached a) (Dewey.ancestors id))

let raw_id t node = Hashtbl.find t.ids node.Xml_tree.serial

let id_of = raw_id

let mem t node =
  match Hashtbl.find_opt t.ids node.Xml_tree.serial with
  | None -> false
  | Some id -> not (in_detached t id)

let node_of t id =
  if in_detached t id then None else Dewey_tbl.find_opt t.nodes id

let node_count t = t.live

let rel_of t lab_code =
  match Hashtbl.find_opt t.rels lab_code with
  | Some r -> r
  | None ->
    let r = { sorted = [||]; handles = [||]; tail = [||]; tail_h = [||] } in
    Hashtbl.add t.rels lab_code r;
    r

(* Merge two aligned sorted (entry, handle) runs into fresh arrays. *)
let merge_runs (a, ah) (b, bh) =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then (b, bh)
  else if nb = 0 then (a, ah)
  else begin
    let merged = Array.make (na + nb) a.(0) in
    let mergedh = Array.make (na + nb) 0 in
    let i = ref 0 and j = ref 0 in
    for k = 0 to na + nb - 1 do
      if !j >= nb || (!i < na && Dewey.compare a.(!i).id b.(!j).id <= 0) then begin
        merged.(k) <- a.(!i);
        mergedh.(k) <- ah.(!i);
        incr i
      end
      else begin
        merged.(k) <- b.(!j);
        mergedh.(k) <- bh.(!j);
        incr j
      end
    done;
    (merged, mergedh)
  end

(* Readers never mutate the relation: stripe 0 of domain-parallel
   propagation runs on the main domain, so an in-place drain on read
   would race with child-domain scans of the same arrays. A non-empty
   tail costs a fresh merged copy until an explicit {!drain_label} /
   {!drain_all} (or a budget-crossing commit) folds it in. *)
let rel_view r =
  if Array.length r.tail = 0 then (r.sorted, r.handles)
  else begin
    Obs.Counter.incr c_hl_merge_copies;
    merge_runs (r.sorted, r.handles) (r.tail, r.tail_h)
  end

let drain_rel r =
  let n = Array.length r.tail in
  if n > 0 then begin
    let merged, mergedh = merge_runs (r.sorted, r.handles) (r.tail, r.tail_h) in
    r.sorted <- merged;
    r.handles <- mergedh;
    r.tail <- [||];
    r.tail_h <- [||];
    Obs.Counter.incr c_hl_drains;
    Obs.Counter.add c_hl_drain_rows n
  end

(* Interning at registration time keeps every live identifier (and all
   its ancestors) in the arena, so scans hand pre-interned handles to
   the joins and every intern during parallel propagation is a pure
   lookup. *)
let register t node id =
  Hashtbl.replace t.ids node.Xml_tree.serial id;
  Hashtbl.replace t.hids node.Xml_tree.serial (Dewey_arena.intern t.arena id);
  Dewey_tbl.replace t.nodes id node;
  t.live <- t.live + 1

let unregister t node =
  let serial = node.Xml_tree.serial in
  match Hashtbl.find_opt t.ids serial with
  | None -> ()
  | Some id ->
    Hashtbl.remove t.ids serial;
    Hashtbl.remove t.hids serial;
    Dewey_tbl.remove t.nodes id

let handle_of_node t node = Hashtbl.find t.hids node.Xml_tree.serial

(* Assign IDs to [node] (child of the node identified by [parent_id], with
   ordinal [ord]) and all its descendants; stage every new entry. [ord_of],
   when given, overrides the canonical 1..n child numbering — checkpoint
   recovery uses it to re-intern the exact dynamic ordinals the crashed
   store had minted, so persisted view images keep resolving. *)
let rec assign t ?ord_of node ~parent_id ~ord =
  let lab = Label_dict.code t.dict (Xml_tree.label node) in
  let id =
    match parent_id with
    | None -> Dewey.root ~lab
    | Some pid -> Dewey.child pid ~lab ~ord
  in
  register t node id;
  t.staged_adds <- { id; node } :: t.staged_adds;
  List.iteri
    (fun i child ->
      let ord = match ord_of with None -> [| i + 1 |] | Some f -> f child in
      assign t ?ord_of child ~parent_id:(Some id) ~ord)
    node.Xml_tree.children

let of_document ?dict ?ord_of root =
  let dict = match dict with Some d -> d | None -> Label_dict.create () in
  let t =
    {
      root;
      dict;
      arena = Dewey_arena.create ();
      ids = Hashtbl.create 4096;
      hids = Hashtbl.create 4096;
      nodes = Dewey_tbl.create 4096;
      rels = Hashtbl.create 64;
      staged_adds = [];
      detached = Dewey_tbl.create 16;
      live = 0;
      partition = None;
      tail_budget = max_int;
      generation = 0;
    }
  in
  assign t ?ord_of root ~parent_id:None ~ord:Dewey.Ord.first;
  (* Inline commit of the initial load. *)
  let by_label = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let lab = Dewey.label e.id in
      let prev = try Hashtbl.find by_label lab with Not_found -> [] in
      Hashtbl.replace by_label lab (e :: prev))
    t.staged_adds;
  Hashtbl.iter
    (fun lab entries ->
      let arr = Array.of_list entries in
      Array.sort (fun a b -> Dewey.compare a.id b.id) arr;
      let r = rel_of t lab in
      r.sorted <- arr;
      r.handles <- Array.map (fun e -> Hashtbl.find t.hids e.node.Xml_tree.serial) arr)
    by_label;
  t.staged_adds <- [];
  t

let find_rel t label =
  match Label_dict.find t.dict label with
  | None -> None
  | Some code -> Hashtbl.find_opt t.rels code

let relation t label =
  match find_rel t label with
  | None -> [||]
  | Some r ->
    let sorted, _ = rel_view r in
    Obs.Counter.incr c_scan_calls;
    Obs.Counter.add c_scan_rows (Array.length sorted);
    sorted

let relation_handles t label =
  match find_rel t label with
  | None -> ([||], [||])
  | Some r ->
    let (sorted, _) as v = rel_view r in
    Obs.Counter.incr c_scan_calls;
    Obs.Counter.add c_scan_rows (Array.length sorted);
    v

(* Subtrees are contiguous document-order intervals, so the entries of a
   sorted relation lying under [root] form one block: binary-search its
   two endpoints instead of scanning the relation. *)
(* Subtree bounds of [root] in the sorted array: [start, stop). *)
let span_bounds arr ~root =
  let track = Obs.enabled () in
  let probes = ref 0 in
  let n = Array.length arr in
  (* First index with id >= root. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    if track then incr probes;
    let mid = (!lo + !hi) / 2 in
    if Dewey.compare arr.(mid).id root < 0 then lo := mid + 1 else hi := mid
  done;
  let start = !lo in
  (* First index past the subtree: id > root and not below it. *)
  let lo = ref start and hi = ref n in
  while !lo < !hi do
    if track then incr probes;
    let mid = (!lo + !hi) / 2 in
    if Dewey.is_ancestor_or_self root arr.(mid).id then lo := mid + 1
    else hi := mid
  done;
  let stop = !lo in
  if track then begin
    Obs.Counter.incr c_span_calls;
    Obs.Counter.add c_span_probes !probes;
    Obs.Counter.add c_span_rows (max 0 (stop - start))
  end;
  (start, stop)

let relation_span t label ~root =
  match find_rel t label with
  | None -> [||]
  | Some r ->
    let sorted, _ = rel_view r in
    let start, stop = span_bounds sorted ~root in
    if stop <= start then [||] else Array.sub sorted start (stop - start)

let relation_span_handles t label ~root =
  match find_rel t label with
  | None -> ([||], [||])
  | Some r ->
    let sorted, handles = rel_view r in
    let start, stop = span_bounds sorted ~root in
    if stop <= start then ([||], [||])
    else
      ( Array.sub sorted start (stop - start),
        Array.sub handles start (stop - start) )

let relation_labels t =
  Hashtbl.fold
    (fun code r acc ->
      if Array.length r.sorted > 0 || Array.length r.tail > 0 then
        Label_dict.label t.dict code :: acc
      else acc)
    t.rels []

let relation_size t label =
  match find_rel t label with
  | None -> 0
  | Some r -> Array.length r.sorted + Array.length r.tail

let pending_rows t =
  Hashtbl.fold (fun _ r acc -> acc + Array.length r.tail) t.rels 0

let drain_label t label =
  match find_rel t label with None -> () | Some r -> drain_rel r

let drain_all t = Hashtbl.iter (fun _ r -> drain_rel r) t.rels

let set_partition t ?tail_budget pred =
  (* Changing the predicate invalidates the routing of already-buffered
     rows; fold everything in first so invariants restart clean. *)
  drain_all t;
  t.partition <- pred;
  t.tail_budget <-
    (match tail_budget with
    | Some b when b > 0 -> b
    | Some _ | None -> max_int)

let generation t = t.generation

(* {2 Per-label statistics}

   Frequency and sibling fan-out of each label over the live identifier
   set, computed by one pass over the (merged) relation: every entry's
   parent prefix is counted in a scratch table. O(|R_label|) per call —
   callers (the heavy-light rebalancer) are expected to amortize. *)
type label_stat = { ls_count : int; ls_parents : int; ls_max_fanout : int }

let stat_of_arrays sorted tail =
  let fanout = Dewey_tbl.create 64 in
  let bump e =
    match Dewey.parent e.id with
    | None -> ()
    | Some p ->
      let prev = try Dewey_tbl.find fanout p with Not_found -> 0 in
      Dewey_tbl.replace fanout p (prev + 1)
  in
  Array.iter bump sorted;
  Array.iter bump tail;
  let parents = Dewey_tbl.length fanout in
  let max_fanout = Dewey_tbl.fold (fun _ n acc -> max n acc) fanout 0 in
  {
    ls_count = Array.length sorted + Array.length tail;
    ls_parents = parents;
    ls_max_fanout = max_fanout;
  }

let label_stat t label =
  match find_rel t label with
  | None -> { ls_count = 0; ls_parents = 0; ls_max_fanout = 0 }
  | Some r -> stat_of_arrays r.sorted r.tail

let label_stats t =
  List.map (fun lab -> (lab, label_stat t lab)) (relation_labels t)

let attach t ~parent forest =
  let parent_id = id_of t parent in
  (* Ordinal of the first new child: strictly after the last existing one. *)
  let last_ord =
    match List.rev parent.Xml_tree.children with
    | [] -> None
    | last :: _ -> Some (Dewey.last_ord (id_of t last))
  in
  let ord = ref (match last_ord with None -> Dewey.Ord.first | Some o -> Dewey.Ord.after o) in
  List.iter
    (fun tree ->
      assign t tree ~parent_id:(Some parent_id) ~ord:!ord;
      ord := Dewey.Ord.after !ord)
    forest;
  Xml_tree.append_children parent forest

let attach_beside t ~sibling ~where forest =
  let parent =
    match sibling.Xml_tree.parent with
    | Some p -> p
    | None -> invalid_arg "Store.attach_beside: sibling has no parent"
  in
  let parent_id = id_of t parent in
  let sib_ord = Dewey.last_ord (id_of t sibling) in
  (* Bounds: the neighbours' ordinals on the chosen side. *)
  let neighbour =
    let rec scan prev = function
      | [] -> None
      | c :: rest ->
        if c == sibling then
          match where with
          | `Before -> prev
          | `After -> ( match rest with [] -> None | n :: _ -> Some n)
        else scan (Some c) rest
    in
    scan None parent.Xml_tree.children
  in
  let lo, hi =
    match where with
    | `Before -> (Option.map (fun n -> Dewey.last_ord (id_of t n)) neighbour, Some sib_ord)
    | `After -> (Some sib_ord, Option.map (fun n -> Dewey.last_ord (id_of t n)) neighbour)
  in
  let fresh_ord lo hi =
    match (lo, hi) with
    | Some lo, Some hi -> Dewey.Ord.between lo hi
    | None, Some hi -> Dewey.Ord.before hi
    | Some lo, None -> Dewey.Ord.after lo
    | None, None -> Dewey.Ord.first
  in
  let lo = ref lo in
  List.iter
    (fun tree ->
      let ord = fresh_ord !lo hi in
      assign t tree ~parent_id:(Some parent_id) ~ord;
      lo := Some ord)
    forest;
  Xml_tree.insert_children parent ~anchor:sibling ~where forest

(* Detaching is O(1) apart from the tree unlink: the subtree stays
   internally resolvable (for Δ⁻ extraction) until [commit] sweeps it. *)
let detach t node =
  (match node.Xml_tree.parent with
  | Some parent -> Xml_tree.remove_child parent node
  | None -> ());
  match Hashtbl.find_opt t.ids node.Xml_tree.serial with
  | None -> ()
  | Some id -> Dewey_tbl.replace t.detached id node

let commit t =
  (* Read-only parallel contract: domain-parallel view propagation (see
     Batch / View_set) relies on the store being immutable while child
     domains read it, so folding staged changes into the relations is a
     main-domain-only operation. *)
  if not (Domain.is_main_domain ()) then
    invalid_arg "Store.commit: must be called from the main domain";
  if t.staged_adds <> [] || Dewey_tbl.length t.detached > 0 then
    t.generation <- t.generation + 1;
  if t.staged_adds <> [] then begin
    let by_label = Hashtbl.create 16 in
    List.iter
      (fun e ->
        (* An entry staged and then detached before commit must not enter
           the relation. *)
        if Hashtbl.mem t.ids e.node.Xml_tree.serial && not (in_detached t e.id) then begin
          let lab = Dewey.label e.id in
          let prev = try Hashtbl.find by_label lab with Not_found -> [] in
          Hashtbl.replace by_label lab (e :: prev)
        end)
      t.staged_adds;
    Hashtbl.iter
      (fun lab entries ->
        let r = rel_of t lab in
        let fresh = Array.of_list entries in
        Array.sort (fun a b -> Dewey.compare a.id b.id) fresh;
        let freshh =
          Array.map (fun e -> Hashtbl.find t.hids e.node.Xml_tree.serial) fresh
        in
        let heavy =
          match t.partition with
          | None -> false
          | Some pred -> pred (Label_dict.label t.dict lab)
        in
        if heavy then begin
          (* Heavy label: buffer the batch in the pending tail — O(|tail|
             + |batch|) instead of O(|R|) — and only fold into the main
             run once the tail crosses its amortization budget. *)
          let tail, tail_h = merge_runs (r.tail, r.tail_h) (fresh, freshh) in
          r.tail <- tail;
          r.tail_h <- tail_h;
          Obs.Counter.add c_hl_routed (Array.length fresh);
          if Array.length tail >= t.tail_budget then drain_rel r
        end
        else begin
          (* Light label: the eager path. A label freshly demoted from
             heavy may still carry a tail — fold it in first so the
             single merge below sees one sorted main run. *)
          drain_rel r;
          let merged, mergedh = merge_runs (r.sorted, r.handles) (fresh, freshh) in
          r.sorted <- merged;
          r.handles <- mergedh
        end)
      by_label;
    t.staged_adds <- []
  end;
  if Dewey_tbl.length t.detached > 0 then begin
    (* Sweep the detached subtrees out of the identifier indexes, noting
       which labels lost nodes; only those relations need purging. *)
    let touched = Hashtbl.create 16 in
    Dewey_tbl.iter
      (fun _ subtree ->
        Xml_tree.iter
          (fun n ->
            match Hashtbl.find_opt t.ids n.Xml_tree.serial with
            | None -> ()
            | Some id ->
              Hashtbl.replace touched (Dewey.label id) ();
              unregister t n;
              t.live <- t.live - 1)
          subtree)
      t.detached;
    Dewey_tbl.reset t.detached;
    Hashtbl.iter
      (fun lab () ->
        match Hashtbl.find_opt t.rels lab with
        | None -> ()
        | Some r ->
          (* Single pass: compact live entries toward the front in place,
             then truncate — no pre-scan, no Seq allocation. The pending
             tail is purged the same way: a heavy-buffered row can be
             detached before its tail is ever drained. *)
          let purge arr h set =
            let n = Array.length arr in
            let k = ref 0 in
            for i = 0 to n - 1 do
              let e = arr.(i) in
              if Hashtbl.mem t.ids e.node.Xml_tree.serial then begin
                if !k < i then begin
                  arr.(!k) <- e;
                  h.(!k) <- h.(i)
                end;
                incr k
              end
            done;
            if !k < n then set (Array.sub arr 0 !k) (Array.sub h 0 !k)
          in
          purge r.sorted r.handles (fun a h ->
              r.sorted <- a;
              r.handles <- h);
          purge r.tail r.tail_h (fun a h ->
              r.tail <- a;
              r.tail_h <- h))
      touched
  end
