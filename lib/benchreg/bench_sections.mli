(** The single registry of benchmark-harness sections.

    The bench executable derives both its [--only] validation list and
    its dispatch order from {!all}, and [xvmcli workload] prints the
    same list — one definition, so the two sides cannot drift: a
    section added here is validated, dispatched, and documented at
    once, and a section missing from here cannot run at all. *)

(** [(name, one-line description)] in dispatch order. *)
val all : (string * string) list

(** [List.map fst all]. *)
val names : string list

(** [mem name] — is [name] a registered section? *)
val mem : string -> bool
