(* The single registry of benchmark-harness sections. The bench
   executable derives both its [--only] validation list and its dispatch
   order from [all], and [xvmcli workload] prints the same list — so a
   new section registered here cannot be silently absent from either
   side, and a section absent from here cannot run. *)

let all =
  [
    ("fig18", "PINT/PIMT time breakdown (insert propagation)");
    ("fig19", "PDDT/MT time breakdown (delete propagation)");
    ("fig20", "insert propagation, all XMark views");
    ("fig21", "delete propagation, all XMark views");
    ("fig22", "update time vs document size (Figures 22-23)");
    ("fig24", "update time vs result size");
    ("fig25", "annotation-density ablation");
    ("fig26", "PINT/PIMT vs full recomputation");
    ("fig27", "PDDT/PDMT vs full recomputation");
    ("fig28", "snowcap construction vs document size");
    ("fig29", "auxiliary-structure sizes (Figures 29-32)");
    ("fig33", "pattern-matching throughput (Figures 33-35)");
    ("ablations", "pruning / advisor / deferred-maintenance ablations");
    ("joinab", "structural-join A/B: sort-merge vs stack-tree");
    ("prims", "store primitive micro-operations");
    ("figMV", "batch maintenance of a view set (shared delta, domains)");
    ("figHL", "heavy-light adaptive maintenance under skew");
    ("fuzz", "ingestion & persistence fuzz oracle (bounded smoke)");
    ("difftest", "differential maintenance oracle (bounded smoke)");
    ("serve", "snapshot readers under a concurrent writer");
    ("wal", "write-ahead log append/replay/recovery");
    ("answer", "answering from views; DTD independence skip");
    ("micro", "Bechamel micro-benchmarks of core operators");
  ]

let names = List.map fst all

let mem name = List.mem_assoc name all
