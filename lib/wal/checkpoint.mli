(** Atomic checkpoints of a view set: the base document plus every view's
    {!Mview_codec} v2 image, committed by renaming a manifest.

    Directory layout (all inside the durability directory):

    {v
      MANIFEST            — commit point (temp-file + rename)
      ck-<seq>/doc.bin    — {!Doc_codec} base document (+ CRC in manifest)
      ck-<seq>/view-<i>.xvm — Mview_codec v2 image per view
      wal-<seq+1>.log     — the log segment continuing this checkpoint
    v}

    A checkpoint generation [ck-<seq>] captures the state after the
    statement with sequence [seq] was applied (0 = the freshly-loaded
    document). Writing a generation only creates new files; the rename
    of [MANIFEST.tmp] over [MANIFEST] is the single atomic commit point,
    after which stale generations and fully-covered log segments are
    garbage-collected. A crash anywhere leaves either the old or the new
    checkpoint fully intact. *)

exception Corrupt of string

type view_spec = {
  vs_name : string;  (** the pattern's display name *)
  vs_compact : string;  (** [Pattern.to_string] rendering *)
  vs_file : string;  (** image file name inside the generation dir *)
}

type manifest = {
  m_seq : int;  (** sequence the checkpoint state includes *)
  m_gen : string;  (** generation directory name, e.g. ["ck-42"] *)
  m_doc_crc : int;  (** CRC-32 of the serialized document *)
  m_live : bool;
      (** [false] when the document root had been deleted: the persisted
          tree is a dangling husk that recovery re-detaches *)
  m_views : view_spec list;  (** in view-set insertion order *)
}

(** Log-segment name continuing a checkpoint: ["wal-<seq+1>.log"]. *)
val segment_name : int -> string

(** [wal_segments dir] — every ["wal-<n>.log"] in [dir] with its start
    sequence, ascending. *)
val wal_segments : string -> (int * string) list

(** [write ~dir ~seq set] writes a full checkpoint generation and commits
    it by renaming the manifest; creates [dir] if needed, then deletes
    superseded generations and log segments whose every record is
    [<= seq]. The caller guarantees [seq] statements have been applied to
    [set]. *)
val write : dir:string -> seq:int -> View_set.t -> unit

(** [read_manifest dir] parses the committed manifest, if any.
    @raise Corrupt on a malformed manifest file. *)
val read_manifest : string -> manifest option

(** [load ~dir ~parse_pattern m] rebuilds a view set from checkpoint [m]:
    parses the document, re-materializes the store, and restores each
    view from its image — falling back to fresh materialization when an
    image is corrupt (the document is authoritative). Returns the set and
    the names of views that needed the fallback.
    [parse_pattern] maps a [view_spec]'s name and compact rendering back
    to a pattern (the inverse of [Pattern.to_string]; the difftest layer
    provides one).
    @raise Corrupt when the document itself is damaged — a checkpoint
    without a readable document is unrecoverable. *)
val load :
  dir:string ->
  parse_pattern:(name:string -> string -> Pattern.t) ->
  manifest ->
  View_set.t * string list
