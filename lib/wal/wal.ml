let header = "XVMWAL1\n"
let header_len = String.length header
let max_payload = 1 lsl 20

type damage =
  | Bad_header
  | Torn_length of int
  | Oversized of int * int
  | Torn_record of int
  | Crc_mismatch of int
  | Bad_sequence of int * int * int

let damage_to_string = function
  | Bad_header -> "bad file header"
  | Torn_length off -> Printf.sprintf "torn record header at offset %d" off
  | Oversized (off, len) ->
    Printf.sprintf "oversized payload length %d at offset %d" len off
  | Torn_record off -> Printf.sprintf "torn record at offset %d" off
  | Crc_mismatch off -> Printf.sprintf "CRC mismatch at offset %d" off
  | Bad_sequence (off, want, got) ->
    Printf.sprintf "sequence gap at offset %d: expected %d, found %d" off want got

type scan = {
  records : (int * string) array;
  offsets : int array;
  valid_bytes : int;
  file_bytes : int;
  damage : damage option;
}

(* Record layout: u32 payload length ‖ u64 sequence ‖ payload ‖ u32 CRC,
   all integers big-endian, the CRC covering everything before it. *)
let record_header_len = 12
let record_overhead = record_header_len + 4

let encode_record ~seq payload =
  let plen = String.length payload in
  if plen > max_payload then
    invalid_arg
      (Printf.sprintf "Wal.encode_record: payload of %d bytes exceeds cap %d"
         plen max_payload);
  if seq < 1 then invalid_arg "Wal.encode_record: sequence must be positive";
  let b = Bytes.create (record_overhead + plen) in
  Bytes.set_int32_be b 0 (Int32.of_int plen);
  Bytes.set_int64_be b 4 (Int64.of_int seq);
  Bytes.blit_string payload 0 b record_header_len plen;
  let body = Bytes.sub_string b 0 (record_header_len + plen) in
  let crc = Crc32.string body in
  Bytes.set_int32_be b (record_header_len + plen) (Int32.of_int crc);
  Bytes.unsafe_to_string b

let scan_bytes ?expect_seq data =
  let n = String.length data in
  let records = ref [] in
  let offsets = ref [] in
  let count = ref 0 in
  if n < header_len || String.sub data 0 header_len <> header then
    {
      records = [||];
      offsets = [||];
      valid_bytes = 0;
      file_bytes = n;
      damage = Some Bad_header;
    }
  else begin
    let damage = ref None in
    let pos = ref header_len in
    let expect = ref expect_seq in
    let stop = ref false in
    while not !stop do
      let off = !pos in
      if off = n then stop := true
      else if n - off < record_header_len then begin
        damage := Some (Torn_length off);
        stop := true
      end
      else begin
        let plen = Int32.to_int (String.get_int32_be data off) land 0xFFFFFFFF in
        if plen > max_payload then begin
          damage := Some (Oversized (off, plen));
          stop := true
        end
        else if n - off < record_overhead + plen then begin
          damage := Some (Torn_record off);
          stop := true
        end
        else begin
          let stored =
            Int32.to_int (String.get_int32_be data (off + record_header_len + plen))
            land 0xFFFFFFFF
          in
          let crc = Crc32.string ~pos:off ~len:(record_header_len + plen) data in
          if stored <> crc then begin
            damage := Some (Crc_mismatch off);
            stop := true
          end
          else begin
            let seq = Int64.to_int (String.get_int64_be data (off + 4)) in
            let want = match !expect with None -> seq | Some w -> w in
            if seq <> want || seq < 1 then begin
              damage := Some (Bad_sequence (off, want, seq));
              stop := true
            end
            else begin
              let payload = String.sub data (off + record_header_len) plen in
              records := (seq, payload) :: !records;
              offsets := off :: !offsets;
              incr count;
              expect := Some (seq + 1);
              pos := off + record_overhead + plen
            end
          end
        end
      end
    done;
    {
      records = Array.of_list (List.rev !records);
      offsets = Array.of_list (List.rev !offsets);
      valid_bytes = !pos;
      file_bytes = n;
      damage = !damage;
    }
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file ?expect_seq path =
  if not (Sys.file_exists path) then
    { records = [||]; offsets = [||]; valid_bytes = 0; file_bytes = 0; damage = None }
  else scan_bytes ?expect_seq (read_file path)

let truncate_at path len =
  let len = max len header_len in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.ftruncate fd len;
      Unix.fsync fd)

let repair_file ?expect_seq path =
  let scan = scan_file ?expect_seq path in
  (match scan.damage with
  | None -> ()
  | Some _ when scan.file_bytes = 0 -> ()
  | Some _ ->
    let keep = max scan.valid_bytes header_len in
    let data = read_file path in
    let prefix =
      if scan.valid_bytes = 0 then header
      else String.sub data 0 keep
    in
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let n = String.length prefix in
        let written = ref 0 in
        while !written < n do
          written :=
            !written
            + Unix.write_substring fd prefix !written (n - !written)
        done;
        Unix.fsync fd));
  scan

type writer = {
  path : string;
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable w_next_seq : int;
  mutable w_durable_seq : int;
  mutable closed : bool;
}

let create_writer ~path ~next_seq =
  if next_seq < 1 then invalid_arg "Wal.create_writer: sequence must be positive";
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  if size = 0 then begin
    let n = String.length header in
    let written = ref 0 in
    while !written < n do
      written := !written + Unix.write_substring fd header !written (n - !written)
    done;
    Unix.fsync fd
  end;
  {
    path;
    fd;
    buf = Buffer.create 4096;
    w_next_seq = next_seq;
    w_durable_seq = next_seq - 1;
    closed = false;
  }

let writer_path w = w.path
let next_seq w = w.w_next_seq
let durable_seq w = w.w_durable_seq

let append w payload =
  if w.closed then invalid_arg "Wal.append: writer is closed";
  let seq = w.w_next_seq in
  Buffer.add_string w.buf (encode_record ~seq payload);
  w.w_next_seq <- seq + 1;
  seq

let sync w =
  if w.closed then invalid_arg "Wal.sync: writer is closed";
  if w.w_durable_seq < w.w_next_seq - 1 then begin
    let data = Buffer.contents w.buf in
    Buffer.clear w.buf;
    let n = String.length data in
    let written = ref 0 in
    while !written < n do
      written := !written + Unix.write_substring w.fd data !written (n - !written)
    done;
    Unix.fsync w.fd;
    w.w_durable_seq <- w.w_next_seq - 1
  end

let close_writer w =
  if not w.closed then begin
    sync w;
    w.closed <- true;
    Unix.close w.fd
  end

let crash w =
  if not w.closed then begin
    w.closed <- true;
    Buffer.clear w.buf;
    Unix.close w.fd
  end
