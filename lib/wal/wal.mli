(** Write-ahead log of update statements — record codec, group-commit
    writer, and a corrupt-or-correct scanner.

    A log file is the 8-byte magic header {!header} followed by records:

    {v
      +------------+------------+---------------+------------+
      | length u32 |  seq  u64  |    payload    |  CRC  u32  |
      |  big-end.  |  big-end.  | length bytes  |  big-end.  |
      +------------+------------+---------------+------------+
    v}

    The CRC-32 (reusing {!Crc32}, the codec-v2 polynomial) covers the
    length, sequence and payload bytes, so a torn length prefix, a torn
    payload and a bit-flip anywhere in the record are all detected.
    Sequence numbers are monotone: consecutive records carry consecutive
    sequences. Payload length is capped at {!max_payload} so a forged
    length can never drive allocation.

    Robustness contract: {!scan_bytes} / {!scan_file} never raise on any
    byte string — they return the longest valid record prefix plus a
    description of the first damage found, and {!repair_file} truncates
    the file to exactly that prefix. *)

(** First bytes of every log file. *)
val header : string

(** Hard cap on a record's payload length (1 MiB). *)
val max_payload : int

(** Why a scan stopped before the end of the file. The [int] is the byte
    offset of the offending record's length prefix. *)
type damage =
  | Bad_header  (** file shorter than, or not starting with, {!header} *)
  | Torn_length of int  (** fewer than 12 header bytes remain *)
  | Oversized of int * int  (** declared payload length exceeds {!max_payload} *)
  | Torn_record of int  (** payload + CRC extend past end of file *)
  | Crc_mismatch of int  (** stored CRC disagrees with the bytes *)
  | Bad_sequence of int * int * int  (** offset, expected seq, found seq *)

val damage_to_string : damage -> string

type scan = {
  records : (int * string) array;  (** (sequence, payload), log order *)
  offsets : int array;
      (** byte offset of each record's length prefix (parallel to
          [records]) — lets recovery {!truncate_at} a record boundary *)
  valid_bytes : int;
      (** length of the longest valid prefix (header included) — the
          truncation point for {!repair_file} *)
  file_bytes : int;  (** total bytes examined *)
  damage : damage option;  (** [None] iff the whole file is valid *)
}

(** [encode_record ~seq payload] is the exact byte string {!append}
    writes.
    @raise Invalid_argument if [payload] exceeds {!max_payload}. *)
val encode_record : seq:int -> string -> string

(** [scan_bytes ?expect_seq data] decodes records until end-of-data or
    the first damage. [expect_seq] (default: accept any) pins the first
    record's sequence; later records must each follow their predecessor
    by exactly one. Never raises. *)
val scan_bytes : ?expect_seq:int -> string -> scan

(** [scan_file ?expect_seq path] — {!scan_bytes} over a file's contents.
    A missing file scans as an empty, undamaged log of zero bytes. *)
val scan_file : ?expect_seq:int -> string -> scan

(** [repair_file path] truncates [path] to its longest valid prefix (a
    header-only file if even the header is damaged) and returns the scan
    that justified the cut. A missing file is left missing. *)
val repair_file : ?expect_seq:int -> string -> scan

(** [truncate_at path len] truncates the file to exactly [len] bytes
    (never below the header) and fsyncs — used by recovery to drop a
    CRC-valid but semantically unusable tail at a record boundary. *)
val truncate_at : string -> int -> unit

(** {1 Group-commit writer}

    [append] buffers a record; [sync] flushes the batch and issues one
    [fsync] — the group-commit point. Nothing is durable until [sync]
    returns. *)

type writer

(** [create_writer ~path ~next_seq] opens [path] for appending (creating
    it with the header when absent or empty). The caller is responsible
    for having scanned/repaired the file first; [next_seq] is the
    sequence the next appended record will carry. *)
val create_writer : path:string -> next_seq:int -> writer

val writer_path : writer -> string

(** Sequence the next {!append} will assign. *)
val next_seq : writer -> int

(** Highest sequence known durable (0 before any [sync]). *)
val durable_seq : writer -> int

(** [append w payload] buffers one record and returns its sequence.
    @raise Invalid_argument if [payload] exceeds {!max_payload}. *)
val append : writer -> string -> int

(** [sync w] flushes buffered records and fsyncs the file; afterwards
    [durable_seq w = next_seq w - 1]. No-op on an already-synced log. *)
val sync : writer -> unit

(** [close_writer w] syncs and closes the descriptor. *)
val close_writer : writer -> unit

(** [crash w] closes the descriptor {e without} flushing buffered
    records — simulating a process kill for recovery testing. Records
    never acknowledged by {!sync} are lost, exactly as a real crash
    loses them. *)
val crash : writer -> unit
