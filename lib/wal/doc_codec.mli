(** Identifier-faithful document persistence for checkpoints.

    XML text is not a faithful store format for a {e live} document.
    Two things are lost that incremental maintenance depends on:
    {ul
    {- node boundaries — after a deletion leaves two text siblings
       adjacent, serialize∘parse merges them into one node, shifting the
       Dewey ordinals of every following sibling;}
    {- identifiers — sibling insertions mint {e fractional} dynamic
       ordinals, and re-indexing a reloaded document canonically would
       renumber them, invalidating the identifiers persisted inside the
       checkpoint's view images and diverging from the never-restarted
       run.}}

    This codec therefore writes the exact tree (kind, name, text, child
    list, preorder) {e plus} each node's Dewey sibling ordinal and the
    store's label dictionary in code order, with varint framing.
    Re-indexing with [Store.of_document ~dict ~ord_of] then reproduces
    precisely the identifiers the crashed store had minted.

    Robustness contract: {!decode} on arbitrary bytes either returns an
    image or raises {!Corrupt} — lengths and counts are validated
    against the remaining bytes before any allocation. *)

exception Corrupt of string

type image = {
  labels : string list;  (** dictionary labels in code order *)
  root : Xml_tree.node;
  ord_of : Xml_tree.node -> int array;
      (** sibling ordinal of each decoded node (root's is vestigial) *)
}

(** [encode ~labels ~ord root]: [ord n] must give node [n]'s sibling
    ordinal; [labels] the dictionary in code order. *)
val encode :
  labels:string list -> ord:(Xml_tree.node -> int array) ->
  Xml_tree.node -> string

(** @raise Corrupt on malformed input. *)
val decode : string -> image
