exception Corrupt of string

type view_spec = { vs_name : string; vs_compact : string; vs_file : string }

type manifest = {
  m_seq : int;
  m_gen : string;
  m_doc_crc : int;
  m_live : bool;
  m_views : view_spec list;
}

let manifest_magic = "XVMCK1"
let manifest_file = "MANIFEST"

let gen_name seq = Printf.sprintf "ck-%d" seq
let segment_name seq = Printf.sprintf "wal-%d.log" seq

let wal_segments dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           match Scanf.sscanf_opt f "wal-%d.log%!" (fun n -> n) with
           | Some n when n >= 1 -> Some (n, f)
           | _ -> None)
    |> List.sort compare

(* Small write-a-whole-file helper with an fsync before close: checkpoint
   files must be on disk before the manifest rename publishes them. *)
let write_file path data =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length data in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write_substring fd data !written (n - !written)
      done;
      Unix.fsync fd)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let manifest_to_string m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf manifest_magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "seq %d\n" m.m_seq);
  Buffer.add_string buf (Printf.sprintf "doc %d\n" m.m_doc_crc);
  if not m.m_live then Buffer.add_string buf "root dead\n";
  List.iter
    (fun vs ->
      Buffer.add_string buf
        (Printf.sprintf "view %s %S %S\n" vs.vs_file vs.vs_name vs.vs_compact))
    m.m_views;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let manifest_of_string data =
  let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt in
  match String.split_on_char '\n' data with
  | magic :: rest when magic = manifest_magic ->
    let seq = ref (-1) and doc_crc = ref (-1) in
    let live = ref true in
    let views = ref [] in
    let ended = ref false in
    List.iter
      (fun line ->
        if !ended || line = "" then ()
        else if line = "end" then ended := true
        else if line = "root dead" then live := false
        else
          match Scanf.sscanf_opt line "seq %d%!" (fun n -> n) with
          | Some n -> seq := n
          | None -> (
            match Scanf.sscanf_opt line "doc %d%!" (fun c -> c) with
            | Some c -> doc_crc := c
            | None -> (
              match
                Scanf.sscanf_opt line "view %s %S %S%!" (fun f n c -> (f, n, c))
              with
              | Some (vs_file, vs_name, vs_compact) ->
                views := { vs_file; vs_name; vs_compact } :: !views
              | None -> fail "manifest: unrecognized line %S" line)))
      rest;
    if not !ended then fail "manifest: missing end marker (torn write?)";
    if !seq < 0 then fail "manifest: missing seq";
    if !doc_crc < 0 then fail "manifest: missing doc CRC";
    {
      m_seq = !seq;
      m_gen = gen_name !seq;
      m_doc_crc = !doc_crc;
      m_live = !live;
      m_views = List.rev !views;
    }
  | _ -> fail "manifest: bad magic"

let read_manifest dir =
  let path = Filename.concat dir manifest_file in
  if not (Sys.file_exists path) then None
  else Some (manifest_of_string (read_file path))

let write ~dir ~seq set =
  ensure_dir dir;
  let gen = gen_name seq in
  let gen_dir = Filename.concat dir gen in
  (* A half-written generation from an earlier crash is garbage: the
     manifest never pointed at it. Start clean. *)
  rm_rf gen_dir;
  ensure_dir gen_dir;
  (* [Doc_codec], not XML text: a live document can hold adjacent text
     siblings (after deletions) that serialize∘parse would merge, and
     sibling insertions mint fractional Dewey ordinals that canonical
     re-indexing would renumber — either way shifting identifiers out
     from under the view images persisted beside the document. The codec
     therefore carries each node's exact ordinal plus the label
     dictionary in code order. A deleted root leaves the store's tree
     handle dangling; the tree is still written (replay needs nothing
     from it) but flagged so recovery re-kills it. *)
  let store = View_set.store set in
  let root = Store.root store in
  let live = Store.mem store root in
  let dict = Store.dict store in
  let labels = List.init (Label_dict.size dict) (Label_dict.label dict) in
  let ord n = if live then Dewey.last_ord (Store.id_of store n) else [| 1 |] in
  let doc = Doc_codec.encode ~labels ~ord root in
  write_file (Filename.concat gen_dir "doc.bin") doc;
  let views =
    List.mapi
      (fun i mv ->
        let vs_file = Printf.sprintf "view-%d.xvm" i in
        Mview_codec.save_to_file mv (Filename.concat gen_dir vs_file);
        {
          vs_file;
          vs_name = mv.Mview.pat.Pattern.name;
          vs_compact = Pattern.to_string mv.Mview.pat;
        })
      (View_set.views set)
  in
  let m =
    { m_seq = seq; m_gen = gen; m_doc_crc = Crc32.string doc; m_live = live;
      m_views = views }
  in
  (* Commit point: the manifest rename. Everything before is invisible to
     recovery; everything after is garbage collection. *)
  let tmp = Filename.concat dir (manifest_file ^ ".tmp") in
  write_file tmp (manifest_to_string m);
  Sys.rename tmp (Filename.concat dir manifest_file);
  Array.iter
    (fun f ->
      if f <> gen && String.length f > 3 && String.sub f 0 3 = "ck-" then
        rm_rf (Filename.concat dir f))
    (Sys.readdir dir);
  (* Log segments are rotated by [Durable] before the manifest commits,
     so every segment starting at or below [seq] holds only covered
     records. *)
  List.iter
    (fun (start, f) ->
      if start <= seq then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (wal_segments dir)

let load ~dir ~parse_pattern m =
  let gen_dir = Filename.concat dir m.m_gen in
  let doc_path = Filename.concat gen_dir "doc.bin" in
  let doc =
    try read_file doc_path
    with Sys_error e -> raise (Corrupt ("checkpoint document unreadable: " ^ e))
  in
  if Crc32.string doc <> m.m_doc_crc then
    raise (Corrupt "checkpoint document fails its CRC");
  let img =
    try Doc_codec.decode doc
    with Doc_codec.Corrupt e -> raise (Corrupt ("checkpoint document: " ^ e))
  in
  (* Restore the dictionary code-for-code, then re-intern the exact
     identifiers the crashed store had minted. *)
  let dict = Label_dict.create () in
  List.iter (fun l -> ignore (Label_dict.code dict l)) img.Doc_codec.labels;
  let store =
    Store.of_document ~dict ~ord_of:img.Doc_codec.ord_of img.Doc_codec.root
  in
  if not m.m_live then begin
    Store.detach store img.Doc_codec.root;
    Store.commit store
  end;
  let set = View_set.create store in
  let rebuilt = ref [] in
  List.iter
    (fun vs ->
      let pat = parse_pattern ~name:vs.vs_name vs.vs_compact in
      let path = Filename.concat gen_dir vs.vs_file in
      match Mview_codec.load_from_file store pat path with
      | mv -> View_set.add_view set mv
      | exception (Mview_codec.Corrupt _ | Sys_error _) ->
        (* The document is authoritative; a damaged image costs a
           re-materialization, never correctness. *)
        rebuilt := vs.vs_name :: !rebuilt;
        ignore (View_set.add set pat))
    m.m_views;
  (set, List.rev !rebuilt)
