exception Corrupt of string

type image = {
  labels : string list;
  root : Xml_tree.node;
  ord_of : Xml_tree.node -> int array;
}

let magic = "XVMDOC1\n"
let magic_len = String.length magic

let add_varint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

(* Ordinal components can be negative (ordinals minted before a first
   sibling): zig-zag them into non-negative varints. *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag v = (v lsr 1) lxor (- (v land 1))

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let add_ord buf ord =
  add_varint buf (Array.length ord);
  Array.iter (fun c -> add_varint buf (zigzag c)) ord

let tag_of_kind = function
  | Xml_tree.Element -> 0
  | Xml_tree.Attribute -> 1
  | Xml_tree.Text -> 2

(* Preorder, explicit child counts: no recursion on the encode side
   either — an explicit stack keeps deep documents safe. *)
let encode ~labels ~ord root =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  add_varint buf (List.length labels);
  List.iter (fun l -> add_string buf l) labels;
  let stack = ref [ root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | n :: rest ->
      stack := n.Xml_tree.children @ rest;
      add_varint buf (tag_of_kind n.Xml_tree.kind);
      add_string buf n.Xml_tree.name;
      add_string buf n.Xml_tree.text;
      add_ord buf (ord n);
      add_varint buf (List.length n.Xml_tree.children)
  done;
  Buffer.contents buf

let decode data =
  let n = String.length data in
  if n < magic_len || String.sub data 0 magic_len <> magic then
    raise (Corrupt "doc image: bad magic");
  let pos = ref magic_len in
  let read_varint () =
    let v = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      if !pos >= n then raise (Corrupt "doc image: truncated varint");
      if !shift > 56 then raise (Corrupt "doc image: oversized varint");
      let b = Char.code data.[!pos] in
      incr pos;
      v := !v lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      if b land 0x80 = 0 then continue := false
    done;
    !v
  in
  let read_string () =
    let len = read_varint () in
    if len < 0 || len > n - !pos then raise (Corrupt "doc image: bad string length");
    let s = String.sub data !pos len in
    pos := !pos + len;
    s
  in
  let read_ord () =
    let count = read_varint () in
    (* Each component needs at least one byte. *)
    if count < 0 || count > n - !pos then
      raise (Corrupt "doc image: ordinal exceeds remaining bytes");
    Array.init count (fun _ -> unzigzag (read_varint ()))
  in
  let nlabels = read_varint () in
  if nlabels < 0 || nlabels > n - !pos then
    raise (Corrupt "doc image: label count exceeds remaining bytes");
  let labels = List.init nlabels (fun _ -> read_string ()) in
  let ords : (int, int array) Hashtbl.t = Hashtbl.create 256 in
  (* One node, then recursively its declared children. Recursion depth =
     tree depth (same as the XML parser's). *)
  let rec read_node () =
    let kind =
      match read_varint () with
      | 0 -> Xml_tree.Element
      | 1 -> Xml_tree.Attribute
      | 2 -> Xml_tree.Text
      | k -> raise (Corrupt (Printf.sprintf "doc image: unknown node kind %d" k))
    in
    let name = read_string () in
    let text = read_string () in
    let ord = read_ord () in
    let count = read_varint () in
    (* Each child needs >= 5 bytes (kind, three counts, a length): a
       forged count cannot drive allocation past the bytes that remain. *)
    if count < 0 || count > (n - !pos) / 5 + 1 then
      raise (Corrupt "doc image: child count exceeds remaining bytes");
    (* Attribute and text nodes can legitimately carry children in a
       live tree (value replacement attaches fresh text under its
       target), so only the element/text-payload invariant — enforced by
       the [Xml_tree] constructors themselves — is checked. *)
    let node =
      match kind with
      | Xml_tree.Element ->
        if text <> "" then raise (Corrupt "doc image: element with text payload");
        Xml_tree.element name
      | Xml_tree.Attribute -> Xml_tree.attribute name text
      | Xml_tree.Text -> Xml_tree.text text
    in
    for _ = 1 to count do
      Xml_tree.append_child node (read_node ())
    done;
    Hashtbl.replace ords node.Xml_tree.serial ord;
    node
  in
  let root = read_node () in
  if !pos <> n then raise (Corrupt "doc image: trailing bytes");
  let ord_of node =
    match Hashtbl.find_opt ords node.Xml_tree.serial with
    | Some o -> o
    | None -> raise (Corrupt "doc image: node without an ordinal")
  in
  { labels; root; ord_of }
