let scope = Obs.Scope.v "wal"
let c_journal = Obs.Scope.counter scope "journal.records"
let c_replay = Obs.Scope.counter scope "replay.records"
let c_checkpoints = Obs.Scope.counter scope "checkpoints"
let t_sync = Obs.Scope.timer scope "sync"
let t_checkpoint = Obs.Scope.timer scope "checkpoint"
let t_recover = Obs.Scope.timer scope "recover"

type t = {
  dir : string;
  mutable writer : Wal.writer;
  mutable ck_seq : int;
}

type outcome = {
  set : View_set.t;
  engine : t;
  ck_seq : int;
  replayed : int;
  skipped : int;
  rebuilt_views : string list;
  truncated : (string * Wal.damage) list;
}

let last_seq t = Wal.next_seq t.writer - 1
let durable_seq t = Wal.durable_seq t.writer
let checkpoint_seq (t : t) = t.ck_seq

let journal t u =
  if not (Update.journalable u) then
    invalid_arg "Durable.journal: statement is not journalable (opaque forest)";
  Obs.Counter.incr c_journal;
  Wal.append t.writer (Update.to_string u)

let sync t =
  Obs.Timer.time t_sync @@ fun () -> Wal.sync t.writer

let install t set = View_set.set_journal set (Some (fun u -> ignore (journal t u)))

let init ~dir set =
  (match Checkpoint.read_manifest dir with
  | Some _ -> invalid_arg (Printf.sprintf "Durable.init: %s already has a manifest" dir)
  | None | (exception Checkpoint.Corrupt _) -> ());
  Checkpoint.write ~dir ~seq:0 set;
  let writer =
    Wal.create_writer
      ~path:(Filename.concat dir (Checkpoint.segment_name 1))
      ~next_seq:1
  in
  let t = { dir; writer; ck_seq = 0 } in
  install t set;
  t

let checkpoint t set =
  let seq = last_seq t in
  if seq > t.ck_seq then begin
    Obs.Timer.time t_checkpoint @@ fun () ->
    Wal.sync t.writer;
    (* Rotate before the manifest commits: the old segment's records are
       all <= seq, so [Checkpoint.write]'s segment GC is safe, and a
       crash between rotation and commit only leaves an extra (still
       contiguous) segment for replay to walk. *)
    let next_path = Filename.concat t.dir (Checkpoint.segment_name (seq + 1)) in
    if Wal.writer_path t.writer <> next_path then begin
      Wal.close_writer t.writer;
      t.writer <- Wal.create_writer ~path:next_path ~next_seq:(seq + 1)
    end;
    Checkpoint.write ~dir:t.dir ~seq set;
    t.ck_seq <- seq;
    Obs.Counter.incr c_checkpoints
  end

let close t = Wal.close_writer t.writer
let crash t = Wal.crash t.writer

let recover ~dir ~parse_pattern ?jobs () =
  match Checkpoint.read_manifest dir with
  | None -> None
  | Some m ->
    Obs.Timer.time t_recover @@ fun () ->
    let set, rebuilt_views = Checkpoint.load ~dir ~parse_pattern m in
    let ck_seq = m.Checkpoint.m_seq in
    let replayed = ref 0 and skipped = ref 0 in
    let truncated = ref [] in
    let applied = ref ck_seq in
    (* Walk segments in start order; the scanner enforces that each is
       internally contiguous from its named start sequence. Damage or an
       unusable record truncates its segment at the record boundary and
       ends replay; segments past the cut (unreachable by sequence) are
       deleted so they cannot resurrect under a reused name later. In
       practice the only cut is a torn tail on the newest segment. *)
    let segments = Checkpoint.wal_segments dir in
    let stop = ref false in
    (* The segment appends resume into: the last one replay walked and
       kept. [None] = start a fresh segment at [applied + 1]. *)
    let resume = ref None in
    List.iter
      (fun (start, file) ->
        let path = Filename.concat dir file in
        if !stop then
          (* Replay ended early: this segment's records are unreachable. *)
          Sys.remove path
        else if start > !applied + 1 then begin
          (* A sequence gap between segments (stale future segment from
             an interrupted checkpoint): nothing in it can be applied. *)
          truncated := (file, Wal.Bad_sequence (0, !applied + 1, start)) :: !truncated;
          stop := true;
          Sys.remove path
        end
        else begin
          let scan = Wal.repair_file ~expect_seq:start path in
          resume := Some path;
          Array.iteri
            (fun i (seq, payload) ->
              if !stop then ()
              else if seq <= ck_seq then begin
                (* Covered by the checkpoint: a checked no-op. The record
                   must still parse — it was journaled by this engine. *)
                match Update.parse payload with
                | _ -> incr skipped
                | exception _ ->
                  truncated := (file, Wal.Crc_mismatch scan.Wal.offsets.(i)) :: !truncated;
                  Wal.truncate_at path scan.Wal.offsets.(i);
                  stop := true
              end
              else begin
                (* Scanner contiguity + the gap check above guarantee
                   [seq = applied + 1] here. *)
                assert (seq = !applied + 1);
                match Update.parse payload with
                | u ->
                  ignore (View_set.update ?jobs set u);
                  applied := seq;
                  incr replayed;
                  Obs.Counter.incr c_replay
                | exception _ ->
                  (* CRC-valid but unparseable — a forged record. Cut
                     here: never apply what cannot be proven. *)
                  truncated := (file, Wal.Crc_mismatch scan.Wal.offsets.(i)) :: !truncated;
                  Wal.truncate_at path scan.Wal.offsets.(i);
                  stop := true
              end)
            scan.Wal.records;
          match scan.Wal.damage with
          | Some d when not !stop ->
            truncated := (file, d) :: !truncated;
            stop := true
          | _ -> ()
        end)
      segments;
    (* Resume appending where replay stopped: in the last kept segment
       (possibly just truncated), or a fresh one when none survived. *)
    let writer =
      match !resume with
      | Some path -> Wal.create_writer ~path ~next_seq:(!applied + 1)
      | None ->
        Wal.create_writer
          ~path:(Filename.concat dir (Checkpoint.segment_name (!applied + 1)))
          ~next_seq:(!applied + 1)
    in
    let engine = { dir; writer; ck_seq } in
    install engine set;
    Some
      {
        set;
        engine;
        ck_seq;
        replayed = !replayed;
        skipped = !skipped;
        rebuilt_views;
        truncated = List.rev !truncated;
      }
