(** The durability engine: checkpoint + write-ahead log + recovery.

    Protocol (write-ahead ordering):
    + a statement is journaled ({!journal}, installed as the view set's
      [View_set.set_journal] hook) {e before} any document mutation;
    + after a batch of statements is applied, {!sync} makes their records
      durable with one group fsync — only then may the batch be
      acknowledged or published;
    + {!checkpoint} persists the full state at the current statement
      boundary, rotates to a fresh log segment, and garbage-collects
      everything the new checkpoint covers.

    {!recover} rebuilds the state after a crash: load the last committed
    checkpoint, then replay every logged statement above the checkpoint
    sequence through [View_set.update]. Damaged log tails (torn writes,
    bit flips, forged CRCs) are detected by the {!Wal} scanner and
    truncated at the last valid record — recovery never applies a record
    it cannot prove intact, and never raises on corrupt input. *)

type t

(** Recovery summary: what was rebuilt and how. *)
type outcome = {
  set : View_set.t;  (** the recovered view set, journal hook installed *)
  engine : t;
  ck_seq : int;  (** checkpoint sequence replay started from *)
  replayed : int;  (** statements re-applied from the log *)
  skipped : int;  (** records at or below [ck_seq] — checked no-ops *)
  rebuilt_views : string list;
      (** views whose image was corrupt and were re-materialized *)
  truncated : (string * Wal.damage) list;
      (** damaged log segments (file name, first damage), truncated at
          their last valid record *)
}

(** [init ~dir set] starts durability for a fresh view set: writes
    checkpoint generation 0 (the current state), opens log segment
    [wal-1.log], and installs the journal hook on [set]. [dir] is
    created if missing; it must not already contain a manifest. *)
val init : dir:string -> View_set.t -> t

(** [recover ~dir ~parse_pattern ()] rebuilds state from [dir]: [None]
    when no checkpoint was ever committed there, otherwise the recovered
    set with every intact logged statement re-applied (via
    [View_set.update ?jobs]) and the journal hook re-installed. Corrupt
    log tails are truncated on disk; appending resumes after the last
    valid record.
    @raise Checkpoint.Corrupt when the checkpoint document itself is
    unreadable — that state is unrecoverable by design. *)
val recover :
  dir:string ->
  parse_pattern:(name:string -> string -> Pattern.t) ->
  ?jobs:int ->
  unit ->
  outcome option

(** Last sequence handed out by {!journal} (equals the checkpoint
    sequence right after {!init}/{!recover}/{!checkpoint}). *)
val last_seq : t -> int

(** Highest sequence known to be on disk ({!sync} moves it). *)
val durable_seq : t -> int

(** Sequence of the last committed checkpoint. *)
val checkpoint_seq : t -> int

(** [journal t u] appends the statement to the log (buffered — not yet
    durable) and returns its sequence. This is what the view-set hook
    calls; use {!sync} to make a batch durable.
    @raise Invalid_argument on a non-journalable statement (an opaque
    [Update.insert_forest]). *)
val journal : t -> Update.t -> int

(** [sync t] group-commits every buffered record (single fsync). *)
val sync : t -> unit

(** [checkpoint t set] persists the current state at the current
    statement boundary: syncs the log, writes generation
    [ck-]{!last_seq}, rotates to segment [wal-<last_seq+1>.log], commits
    the manifest, and garbage-collects covered segments and stale
    generations. No-op fast path when nothing was journaled since the
    last checkpoint. *)
val checkpoint : t -> View_set.t -> unit

(** [close t] syncs and releases the log descriptor (the hook stays; a
    subsequent [journal] raises). *)
val close : t -> unit

(** [crash t] drops every unsynced record and closes the descriptor —
    simulating a process kill at this instant, for recovery testing.
    What {!sync} acknowledged stays on disk; nothing else does. *)
val crash : t -> unit
