(** Ordered labeled XML trees: element, attribute and text nodes.

    Nodes are mutable (children and parent links) so that XQuery-Update
    style modifications can be applied in place. Every node carries a
    process-unique serial, used by stores to attach identifiers without
    polluting the tree representation. *)

type kind = Element | Attribute | Text

type node = private {
  serial : int;
  kind : kind;
  name : string;  (** element / attribute name; ["#text"] for text nodes *)
  text : string;  (** attribute value or text content; [""] for elements *)
  mutable children : node list;  (** attributes first, then content nodes *)
  mutable parent : node option;
}

(** {1 Construction} *)

val element : ?children:node list -> string -> node
val text : string -> node
val attribute : string -> string -> node

(** [append_child parent child] attaches [child] as the last child.
    @raise Invalid_argument if [child] already has a parent. *)
val append_child : node -> node -> unit

(** [append_children parent kids] bulk variant of {!append_child}. *)
val append_children : node -> node list -> unit

(** [remove_child parent child] detaches [child]; no-op if absent. *)
val remove_child : node -> node -> unit

(** [insert_children parent ~anchor ~where kids] splices [kids] into
    [parent]'s child list immediately before or after [anchor].
    @raise Invalid_argument if [anchor] is not a child of [parent] or a
    kid is already attached. *)
val insert_children :
  node -> anchor:node -> where:[ `Before | `After ] -> node list -> unit

(** [remove_children parent pred] detaches all children satisfying [pred]
    in one pass. *)
val remove_children : node -> (node -> bool) -> unit

(** Deep copy with fresh serials and no parent. *)
val copy : node -> node

(** {1 Inspection} *)

(** Label as used in identifiers: element name, ["@" ^ name] for
    attributes, ["#text"] for text nodes. *)
val label : node -> string

(** XPath string value: attribute value, text content, or concatenation of
    the text descendants of an element in document order. *)
val string_value : node -> string

(** [iter f n] applies [f] to [n] and all its descendants in document
    order (attributes before element content). *)
val iter : (node -> unit) -> node -> unit

(** All descendants-or-self in document order. *)
val descendants_or_self : node -> node list

(** Children that are elements (excludes attributes and text). *)
val element_children : node -> node list

(** Attribute child with the given name, if any. *)
val attribute_node : node -> string -> node option

(** Number of descendant-or-self nodes. *)
val size : node -> int

(** [is_ancestor a d]: [a] is a strict ancestor of [d] via parent links. *)
val is_ancestor : node -> node -> bool

(** [equal a b]: structural equality — kind, name, text and children,
    recursively — ignoring serials and parent links. This is the
    round-trip oracle's notion of "same tree". *)
val equal : node -> node -> bool

(** {1 Serialization} *)

(** [serialize ?decl n] renders the subtree as XML text. *)
val serialize : ?decl:bool -> node -> string

val add_to_buffer : Buffer.t -> node -> unit

(** Byte length of {!serialize} output without materializing it. *)
val serialized_size : node -> int
