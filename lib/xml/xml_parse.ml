(* Position-tracked recursive-descent XML lexer/parser.

   The ingestion boundary of the whole system: every document, update
   fragment and CLI input comes through here, so the parser must accept
   the real-world constructs the rest of the pipeline assumes away
   (CDATA sections, full Unicode character references, DOCTYPE internal
   subsets, processing instructions with quoted pseudo-attributes) and
   must reject everything else with a precise line/column diagnostic
   instead of silently corrupting data. *)

exception Parse_error of string

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;  (* 1-based line of [pos] *)
  mutable bol : int;   (* offset of the first byte of the current line *)
}

let fail st msg =
  raise
    (Parse_error
       (Printf.sprintf "%s at line %d, column %d" msg st.line (st.pos - st.bol + 1)))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

(* Every position move goes through [advance] so line/column tracking can
   never drift from the cursor. *)
let advance st =
  if st.pos < String.length st.src && st.src.[st.pos] = '\n' then begin
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  end;
  st.pos <- st.pos + 1

let advance_n st n =
  for _ = 1 to n do
    advance st
  done

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let expect st prefix =
  if looking_at st prefix then advance_n st (String.length prefix)
  else fail st (Printf.sprintf "expected %S" prefix)

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | Some _ | None -> false
  do
    advance st
  done

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name st =
  let start = st.pos in
  while (match peek st with Some c -> is_name_char c | None -> false) do
    advance st
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

(* {1 Character and entity references} *)

(* XML 1.0 Char production: #x9 | #xA | #xD | [#x20-#xD7FF] |
   [#xE000-#xFFFD] | [#x10000-#x10FFFF]. Surrogate code points and
   control characters are not XML characters at all. *)
let is_xml_char code =
  code = 0x9 || code = 0xA || code = 0xD
  || (code >= 0x20 && code <= 0xD7FF)
  || (code >= 0xE000 && code <= 0xFFFD)
  || (code >= 0x10000 && code <= 0x10FFFF)

let utf8_encode buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

(* Strict digit-string decoding — [int_of_string] would accept '_'
   separators and sign characters, both of which are name characters and
   would otherwise slip through "&#…;". The accumulator stops growing
   once it exceeds the Unicode range so arbitrarily long digit strings
   cannot overflow; the range check rejects them anyway. *)
let decode_code_point st digits ~hex =
  if digits = "" then fail st "malformed character reference";
  let value = ref 0 in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' when hex -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' when hex -> Char.code c - Char.code 'A' + 10
        | _ -> fail st "malformed character reference"
      in
      if !value <= 0x110000 then value := (!value * if hex then 16 else 10) + d)
    digits;
  !value

let read_entity st =
  expect st "&";
  let buf = Buffer.create 8 in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some ';' ->
      advance st;
      continue := false
    | Some c when is_name_char c || c = '#' ->
      Buffer.add_char buf c;
      advance st
    | Some _ | None -> fail st "malformed entity reference"
  done;
  match Buffer.contents buf with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | n when String.length n > 1 && n.[0] = '#' ->
    let code =
      if String.length n > 2 && n.[1] = 'x' then
        decode_code_point st (String.sub n 2 (String.length n - 2)) ~hex:true
      else decode_code_point st (String.sub n 1 (String.length n - 1)) ~hex:false
    in
    if not (is_xml_char code) then
      fail st (Printf.sprintf "character reference U+%04X outside the XML character range" code);
    let b = Buffer.create 4 in
    utf8_encode b code;
    Buffer.contents b
  | _ -> fail st "unknown entity"

let read_quoted st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
      advance st;
      q
    | Some _ | None -> fail st "expected a quoted value"
  in
  let buf = Buffer.create 16 in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some c when c = quote ->
      advance st;
      continue := false
    | Some '&' -> Buffer.add_string buf (read_entity st)
    | Some c ->
      Buffer.add_char buf c;
      advance st
    | None -> fail st "unterminated attribute value"
  done;
  Buffer.contents buf

(* {1 Markup that carries no content: comments, PIs, DOCTYPE} *)

let skip_comment st =
  expect st "<!--";
  let continue = ref true in
  while !continue do
    if looking_at st "-->" then begin
      advance_n st 3;
      continue := false
    end
    else if st.pos >= String.length st.src then fail st "unterminated comment"
    else advance st
  done

(* A literal inside a PI or DOCTYPE: skip to the matching quote so a '>'
   (or '?>' / brackets) inside it cannot terminate the construct. *)
let skip_literal st quote =
  advance st;
  let continue = ref true in
  while !continue do
    match peek st with
    | Some c when c = quote ->
      advance st;
      continue := false
    | Some _ -> advance st
    | None -> fail st "unterminated quoted literal"
  done

let skip_pi st =
  expect st "<?";
  let continue = ref true in
  while !continue do
    if looking_at st "?>" then begin
      advance_n st 2;
      continue := false
    end
    else
      match peek st with
      | Some (('"' | '\'') as q) -> skip_literal st q
      | Some _ -> advance st
      | None -> fail st "unterminated processing instruction"
  done

(* "<!DOCTYPE name SYSTEM "…" [ internal subset ]>" — the internal subset
   may contain markup declarations full of '>', comments and quoted
   literals, so termination is the first '>' at bracket depth 0 outside
   any literal. *)
let skip_doctype st =
  expect st "<!DOCTYPE";
  let depth = ref 0 in
  let continue = ref true in
  while !continue do
    if looking_at st "<!--" then skip_comment st
    else
      match peek st with
      | Some '[' ->
        incr depth;
        advance st
      | Some ']' ->
        if !depth = 0 then fail st "unbalanced ']' in doctype";
        decr depth;
        advance st
      | Some (('"' | '\'') as q) -> skip_literal st q
      | Some '>' when !depth = 0 ->
        advance st;
        continue := false
      | Some _ -> advance st
      | None -> fail st "unterminated doctype"
  done

let skip_misc st =
  let continue = ref true in
  while !continue do
    skip_ws st;
    if looking_at st "<!--" then skip_comment st
    else if looking_at st "<?" then skip_pi st
    else if looking_at st "<!DOCTYPE" then skip_doctype st
    else continue := false
  done

let is_blank s =
  let n = String.length s in
  let rec go i =
    i >= n || (match s.[i] with ' ' | '\t' | '\n' | '\r' -> go (i + 1) | _ -> false)
  in
  go 0

(* {1 Elements and content} *)

let rec read_element st =
  expect st "<";
  let name = read_name st in
  let attrs = ref [] in
  let rec read_attrs () =
    skip_ws st;
    match peek st with
    | Some c when is_name_char c ->
      let attr_name = read_name st in
      skip_ws st;
      expect st "=";
      skip_ws st;
      let value = read_quoted st in
      attrs := Xml_tree.attribute attr_name value :: !attrs;
      read_attrs ()
    | Some _ | None -> ()
  in
  read_attrs ();
  skip_ws st;
  if looking_at st "/>" then begin
    expect st "/>";
    Xml_tree.element ~children:(List.rev !attrs) name
  end
  else begin
    expect st ">";
    let content = read_content st in
    expect st "</";
    let close = read_name st in
    if close <> name then
      fail st (Printf.sprintf "mismatched </%s> (expected </%s>)" close name);
    skip_ws st;
    expect st ">";
    Xml_tree.element ~children:(List.rev !attrs @ content) name
  end

and read_cdata st buf =
  expect st "<![CDATA[";
  let continue = ref true in
  while !continue do
    if looking_at st "]]>" then begin
      advance_n st 3;
      continue := false
    end
    else
      match peek st with
      | Some c ->
        Buffer.add_char buf c;
        advance st
      | None -> fail st "unterminated CDATA section"
  done

and read_content st =
  let items = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      if not (is_blank s) then items := Xml_tree.text s :: !items
    end
  in
  let continue = ref true in
  while !continue do
    if looking_at st "</" then begin
      flush_text ();
      continue := false
    end
      (* Comments, PIs and CDATA do not flush the text buffer: the
         character data around them merges into one text node, keeping
         parsed trees canonical (no adjacent text siblings). *)
    else if looking_at st "<!--" then skip_comment st
    else if looking_at st "<![CDATA[" then read_cdata st buf
    else if looking_at st "<?" then skip_pi st
    else
      match peek st with
      | Some '<' ->
        flush_text ();
        items := read_element st :: !items
      | Some '&' -> Buffer.add_string buf (read_entity st)
      | Some c ->
        Buffer.add_char buf c;
        advance st
      | None -> fail st "unterminated element content"
  done;
  List.rev !items

let init src = { src; pos = 0; line = 1; bol = 0 }

let obs = Obs.Scope.v "xml.parse"
let c_bytes = Obs.Scope.counter obs "bytes"
let c_nodes = Obs.Scope.counter obs "nodes"
let c_documents = Obs.Scope.counter obs "documents"
let c_fragments = Obs.Scope.counter obs "fragments"

(* [Xml_tree.size] is a full traversal: only pay for it when tracking. *)
let record_document s root =
  if Obs.enabled () then begin
    Obs.Counter.incr c_documents;
    Obs.Counter.add c_bytes (String.length s);
    Obs.Counter.add c_nodes (Xml_tree.size root)
  end

let record_fragment s roots =
  if Obs.enabled () then begin
    Obs.Counter.incr c_fragments;
    Obs.Counter.add c_bytes (String.length s);
    List.iter (fun r -> Obs.Counter.add c_nodes (Xml_tree.size r)) roots
  end

let document s =
  let st = init s in
  skip_misc st;
  let root = read_element st in
  skip_misc st;
  if st.pos <> String.length s then fail st "trailing content after root element";
  record_document s root;
  root

let fragment s =
  let st = init s in
  let roots = ref [] in
  skip_misc st;
  while st.pos < String.length s do
    roots := read_element st :: !roots;
    skip_misc st
  done;
  let roots = List.rev !roots in
  record_fragment s roots;
  roots
