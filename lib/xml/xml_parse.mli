(** Position-tracked XML parser — the hardened ingestion boundary.

    Supported subset: elements, attributes, character data, the five
    named entities, decimal/hexadecimal character references for any XML
    code point (emitted as UTF-8 bytes), CDATA sections, comments,
    processing instructions (skipped; quoted pseudo-attributes may
    contain ["?>"]), and DOCTYPE declarations whose internal subset
    [[ … ]] is skipped with bracket- and quote-awareness. Out of scope:
    namespaces (prefixes parse as part of the name), external entity
    expansion, and attribute-value normalization.

    Error-reporting contract: every rejection raises {!Parse_error} with
    a message ending in ["at line L, column C"] (1-based, bytes within
    the line). Character references outside the XML [Char] production —
    surrogates, out-of-range, most control characters — are rejected
    rather than replaced. *)

exception Parse_error of string

(** [document s] parses a full document (one root element, optionally
    surrounded by prolog, DOCTYPE, comments and PIs).
    Whitespace-only text between elements is dropped; character data
    around comments/PIs/CDATA merges into a single text node.
    @raise Parse_error on malformed input, with line/column. *)
val document : string -> Xml_tree.node

(** [fragment s] parses a forest of sibling elements, e.g. the [xml]
    operand of an insertion statement.
    @raise Parse_error on malformed input, with line/column. *)
val fragment : string -> Xml_tree.node list
