type kind = Element | Attribute | Text

type node = {
  serial : int;
  kind : kind;
  name : string;
  text : string;
  mutable children : node list;
  mutable parent : node option;
}

let next_serial =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let make kind name text =
  { serial = next_serial (); kind; name; text; children = []; parent = None }

let append_child parent child =
  (match child.parent with
  | Some _ -> invalid_arg "Xml_tree.append_child: child already attached"
  | None -> ());
  child.parent <- Some parent;
  parent.children <- parent.children @ [ child ]

let append_children parent kids =
  List.iter
    (fun child ->
      match child.parent with
      | Some _ -> invalid_arg "Xml_tree.append_children: child already attached"
      | None -> child.parent <- Some parent)
    kids;
  parent.children <- parent.children @ kids

let element ?(children = []) name =
  let n = make Element name "" in
  append_children n children;
  n

let text s = make Text "#text" s
let attribute name value = make Attribute name value

let remove_children parent pred =
  let keep, drop = List.partition (fun c -> not (pred c)) parent.children in
  List.iter (fun c -> c.parent <- None) drop;
  parent.children <- keep

let remove_child parent child =
  remove_children parent (fun c -> c == child)

let insert_children parent ~anchor ~where kids =
  if not (List.memq anchor parent.children) then
    invalid_arg "Xml_tree.insert_children: anchor is not a child";
  List.iter
    (fun kid ->
      match kid.parent with
      | Some _ -> invalid_arg "Xml_tree.insert_children: kid already attached"
      | None -> kid.parent <- Some parent)
    kids;
  parent.children <-
    List.concat_map
      (fun c ->
        if c == anchor then
          match where with `Before -> kids @ [ c ] | `After -> c :: kids
        else [ c ])
      parent.children

let rec copy n =
  let fresh = make n.kind n.name n.text in
  append_children fresh (List.map copy n.children);
  fresh

let label n =
  match n.kind with
  | Element -> n.name
  | Attribute -> "@" ^ n.name
  | Text -> "#text"

let rec iter f n =
  f n;
  List.iter (iter f) n.children

let descendants_or_self n =
  let acc = ref [] in
  iter (fun m -> acc := m :: !acc) n;
  List.rev !acc

let element_children n = List.filter (fun c -> c.kind = Element) n.children
let attribute_node n name =
  List.find_opt (fun c -> c.kind = Attribute && c.name = name) n.children

let size n =
  let count = ref 0 in
  iter (fun _ -> incr count) n;
  !count

let string_value n =
  match n.kind with
  | Attribute | Text -> n.text
  | Element ->
    let buf = Buffer.create 32 in
    iter (fun m -> if m.kind = Text then Buffer.add_string buf m.text) n;
    Buffer.contents buf

let rec equal a b =
  a.kind = b.kind && a.name = b.name && a.text = b.text
  && List.compare_lengths a.children b.children = 0
  && List.for_all2 equal a.children b.children

let is_ancestor a d =
  let rec up n = match n.parent with
    | None -> false
    | Some p -> p == a || up p
  in
  up d

let escape buf s ~attr =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let rec add_to_buffer buf n =
  match n.kind with
  | Text -> escape buf n.text ~attr:false
  | Attribute ->
    Buffer.add_char buf ' ';
    Buffer.add_string buf n.name;
    Buffer.add_string buf "=\"";
    escape buf n.text ~attr:true;
    Buffer.add_char buf '"'
  | Element ->
    let attrs, content = List.partition (fun c -> c.kind = Attribute) n.children in
    Buffer.add_char buf '<';
    Buffer.add_string buf n.name;
    List.iter (add_to_buffer buf) attrs;
    if content = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      List.iter (add_to_buffer buf) content;
      Buffer.add_string buf "</";
      Buffer.add_string buf n.name;
      Buffer.add_char buf '>'
    end

let serialize ?(decl = false) n =
  let buf = Buffer.create 1024 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  add_to_buffer buf n;
  Buffer.contents buf

let serialized_size n =
  (* Cheap upper-bound-free estimate: serialize into a throwaway buffer is
     avoided; count tag and text bytes directly. *)
  let total = ref 0 in
  iter
    (fun m ->
      match m.kind with
      | Text -> total := !total + String.length m.text
      | Attribute -> total := !total + String.length m.name + String.length m.text + 4
      | Element ->
        let has_content = List.exists (fun c -> c.kind <> Attribute) m.children in
        let tag = String.length m.name in
        total := !total + (if has_content then (2 * tag) + 5 else tag + 3))
    n;
  !total
